package cross_test

import (
	"fmt"

	"cross"
)

// Example demonstrates the two layers of the library: functional HE
// (encrypt → square → decrypt) and the simulated TPU lowering.
func Example() {
	ctx, err := cross.NewContext(cross.ContextOptions{LogN: 10, Limbs: 4})
	if err != nil {
		panic(err)
	}
	x := make([]complex128, ctx.Slots())
	x[0] = 3
	ct, err := ctx.EncryptValues(x)
	if err != nil {
		panic(err)
	}
	sq, err := ctx.MulRescale(ct, ct)
	if err != nil {
		panic(err)
	}
	fmt.Printf("3² ≈ %.2f\n", real(ctx.DecryptValues(sq)[0]))

	comp, err := cross.NewCompiler(cross.NewDevice(cross.TPUv6e()), cross.SetD())
	if err != nil {
		panic(err)
	}
	ops := comp.MeasureHEOps()
	fmt.Printf("simulated HE-Mult is %.0f× HE-Add\n", ops.Mult/ops.Add)
	// Output:
	// 3² ≈ 9.00
	// simulated HE-Mult is 238× HE-Add
}

// ExampleNewPod demonstrates the pod-scale lowering: the same HE-Mult
// schedule lowered onto one core and onto a 4-core pod, where the
// limb- and digit-parallel work shards across cores and only the
// collective phases pay inter-chip (ICI) cost.
func ExampleNewPod() {
	single, err := cross.NewPod(cross.TPUv6e(), 1)
	if err != nil {
		panic(err)
	}
	quad, err := cross.NewPod(cross.TPUv6e(), 4)
	if err != nil {
		panic(err)
	}
	one, err := cross.NewShardedCompiler(single, cross.SetD())
	if err != nil {
		panic(err)
	}
	four, err := cross.NewShardedCompiler(quad, cross.SetD())
	if err != nil {
		panic(err)
	}
	fmt.Println(quad.Name(), "cores:", four.NumCores())
	fmt.Println("4-core HE-Mult faster:", four.Snapshot(four.CostHEMult) < one.Snapshot(one.CostHEMult))
	// Output:
	// TPUv6e-4 cores: 4
	// 4-core HE-Mult faster: true
}

// ExampleCompiler_LowerSharded re-targets an existing single-core
// compiler at a pod and shows that a one-core pod reproduces the
// single-core model exactly (the sharded lowering is a strict
// generalisation).
func ExampleCompiler_LowerSharded() {
	comp, err := cross.NewCompiler(cross.NewDevice(cross.TPUv5p()), cross.SetC())
	if err != nil {
		panic(err)
	}
	pod, err := cross.NewPod(cross.TPUv5p(), 1)
	if err != nil {
		panic(err)
	}
	sharded, err := comp.LowerSharded(pod)
	if err != nil {
		panic(err)
	}
	fmt.Println(sharded.Snapshot(sharded.CostHEMult) == comp.Snapshot(comp.CostHEMult))
	// Output: true
}

// ExampleCompile demonstrates the unified Target interface: the same
// Compile call lowers onto a bare tensor core and onto a pod, and a
// 1-core pod's schedule is bit-identical to the device's — one
// lowering code path for both.
func ExampleCompile() {
	onCore, err := cross.Compile(cross.NewDevice(cross.TPUv6e()), cross.SetD())
	if err != nil {
		panic(err)
	}
	pod, err := cross.NewPod(cross.TPUv6e(), 1)
	if err != nil {
		panic(err)
	}
	onPod, err := cross.Compile(pod, cross.SetD())
	if err != nil {
		panic(err)
	}
	fmt.Println("1-core pod ≡ device:", onPod.LowerHEMult().Total == onCore.LowerHEMult().Total)

	quad, err := cross.NewPod(cross.TPUv6e(), 4)
	if err != nil {
		panic(err)
	}
	onQuad, err := cross.Compile(quad, cross.SetD())
	if err != nil {
		panic(err)
	}
	sched := onQuad.LowerHEMult()
	fmt.Println("4-core target:", sched.Target, "— faster:", sched.Total < onCore.LowerHEMult().Total,
		"— collective time priced:", sched.Collective > 0)
	// Output:
	// 1-core pod ≡ device: true
	// 4-core target: TPUv6e-4 — faster: true — collective time priced: true
}

// ExampleNewProgram composes a multi-operator HE workload into one
// costed, memoized schedule — the Program face of the Schedule IR.
func ExampleNewProgram() {
	comp, err := cross.Compile(cross.NewDevice(cross.TPUv6e()), cross.SetC())
	if err != nil {
		panic(err)
	}
	prog := cross.NewProgram(comp).HEMultN(3).Rotate(1).Rescale().Batch(8)
	sched := prog.Lower()
	fmt.Println(sched.Op)
	fmt.Println("ops:", prog.OpCount())
	fmt.Println("total equals 8× the single batch:",
		sched.Total == 8*cross.NewProgram(comp).HEMultN(3).Rotate(1).Rescale().Lower().Total)
	// Output:
	// 8×Program[3×HE-Mult + Rotate + Rescale]
	// ops: 40
	// total equals 8× the single batch: true
}

// ExampleCompileScalarBAT shows BAT's core transformation: a pre-known
// scalar becomes a dense K×K uint8 matrix whose INT8 matrix-vector
// product computes the modular multiplication (paper Fig. 7).
func ExampleCompileScalarBAT() {
	m, err := cross.NewModulus(268369921) // 28-bit NTT prime
	if err != nil {
		panic(err)
	}
	plan, err := cross.CompileScalarBAT(m, 123456789%m.Q)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Mul(42) == m.MulMod(123456789%m.Q, 42))
	// Output: true
}
