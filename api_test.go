package cross

import (
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
)

func TestContextEndToEnd(t *testing.T) {
	ctx, err := NewContext(ContextOptions{LogN: 10, Limbs: 4, Rotations: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	z1 := make([]complex128, ctx.Slots())
	z2 := make([]complex128, ctx.Slots())
	for i := range z1 {
		z1[i] = complex(rng.Float64(), rng.Float64())
		z2[i] = complex(rng.Float64(), rng.Float64())
	}
	ct1, err := ctx.EncryptValues(z1)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ctx.EncryptValues(z2)
	if err != nil {
		t.Fatal(err)
	}

	sum, err := ctx.Evaluator.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.DecryptValues(sum)
	for i := range z1 {
		if cmplx.Abs(got[i]-(z1[i]+z2[i])) > 1e-4 {
			t.Fatalf("slot %d add error", i)
		}
	}

	prod, err := ctx.MulRescale(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	got = ctx.DecryptValues(prod)
	for i := range z1 {
		if cmplx.Abs(got[i]-z1[i]*z2[i]) > 1e-2 {
			t.Fatalf("slot %d mul error %g", i, cmplx.Abs(got[i]-z1[i]*z2[i]))
		}
	}

	rot, err := ctx.Evaluator.Rotate(ct1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got = ctx.DecryptValues(rot)
	for i := range z1 {
		if cmplx.Abs(got[i]-z1[(i+2)%len(z1)]) > 1e-2 {
			t.Fatalf("slot %d rotate error", i)
		}
	}
}

func TestContextDefaults(t *testing.T) {
	ctx, err := NewContext(ContextOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Slots() != 1<<11 {
		t.Errorf("default slots = %d", ctx.Slots())
	}
	if ctx.Params.MaxLevel() != 5 {
		t.Errorf("default max level = %d", ctx.Params.MaxLevel())
	}
}

func TestCompilerFacade(t *testing.T) {
	c, err := NewCompiler(NewDevice(TPUv6e()), SetD())
	if err != nil {
		t.Fatal(err)
	}
	ops := c.MeasureHEOps()
	if ops.Mult <= ops.Add {
		t.Error("mult should dominate add")
	}
	if _, err := NewCompiler(NewDevice(TPUv4()), Params{}); err == nil {
		t.Error("expected validation error for zero params")
	}
}

func TestBATFacade(t *testing.T) {
	m, err := NewModulus(268369921)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileScalarBAT(m, 123456)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.Mul(654321), m.MulMod(123456, 654321); got != want {
		t.Fatalf("facade BAT mul = %d want %d", got, want)
	}
	mm, err := CompileMatMulBAT(m, []uint64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mm.Mul([]uint64{5, 6, 7, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != m.AddMod(m.MulMod(1, 5), m.MulMod(2, 7)) {
		t.Error("facade matmul wrong")
	}
}

func TestRingFacade(t *testing.T) {
	primes, err := NTTFriendlyPrimes(28, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(256, primes)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewMatNTTPlan(r, 16, 16, LayoutBitRev)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]uint64, 256)
	in[1] = 42
	out := make([]uint64, 256)
	plan.ForwardLimb(0, in, out)
	want := append([]uint64(nil), in...)
	r.NTTLimb(0, want)
	for i := range out {
		if out[i] != want[i] {
			t.Fatal("facade NTT != radix-2 NTT")
		}
	}
}

func TestPodFacade(t *testing.T) {
	if _, err := NewPod(TPUv6e(), 0); err == nil {
		t.Error("expected error for zero-core pod")
	}
	pod, err := NewPod(TPUv6e(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if pod.AllReduceTime(1<<20) <= 0 || pod.BroadcastTime(1<<20) <= 0 {
		t.Error("collectives free on an 8-core pod")
	}
	sc, err := NewShardedCompiler(pod, SetD())
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewCompiler(NewDevice(TPUv6e()), SetD())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Snapshot(sc.CostHEMult) >= single.Snapshot(single.CostHEMult) {
		t.Error("8-core sharded HE-Mult should beat single-core")
	}
	if _, err := single.LowerSharded(pod); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(ids))
	}
	exp, err := ExperimentByID("Table V")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exp.Notes, "VIOLATED") {
		t.Errorf("Table V violated: %s", exp.Notes)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestExperimentByIDErrorPath(t *testing.T) {
	for _, id := range []string{"", "Table Z", "fig99", "TABLE V EXTRA"} {
		exp, err := ExperimentByID(id)
		if err == nil {
			t.Fatalf("ExperimentByID(%q): expected error", id)
		}
		if exp.ID != "" || exp.Body != "" {
			t.Errorf("ExperimentByID(%q): non-zero report on error: %+v", id, exp)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown experiment") {
			t.Errorf("ExperimentByID(%q): error %q missing diagnosis", id, msg)
		}
		// The error must be actionable: it lists the valid identifiers.
		if !strings.Contains(msg, "Table V") || !strings.Contains(msg, "Core Scaling") {
			t.Errorf("ExperimentByID(%q): error %q does not list valid IDs", id, msg)
		}
	}
}

func TestTargetFacade(t *testing.T) {
	// Both public target types satisfy the exported interface, and one
	// Compile call covers both.
	var targets []Target
	targets = append(targets, NewDevice(TPUv6e()))
	pod, err := NewPod(TPUv6e(), 2)
	if err != nil {
		t.Fatal(err)
	}
	targets = append(targets, pod)
	for _, tgt := range targets {
		c, err := Compile(tgt, SetB())
		if err != nil {
			t.Fatal(err)
		}
		s := c.LowerHEMult()
		if s.Total <= 0 || s.Cores != tgt.NumCores() || s.Target != tgt.Name() {
			t.Errorf("%s: degenerate schedule %+v", tgt.Name(), s)
		}
	}
}

func TestProgramFacade(t *testing.T) {
	c, err := Compile(NewDevice(TPUv6e()), MNISTParams())
	if err != nil {
		t.Fatal(err)
	}
	// The MNIST estimator and its Program must agree exactly.
	_, perImage := EstimateMNIST(c)
	if got := MNISTProgram(c).Lower().Total; got != perImage {
		t.Errorf("MNISTProgram total %g != EstimateMNIST per-image %g", got, perImage)
	}
	cD, err := Compile(NewDevice(TPUv6e()), SetD())
	if err != nil {
		t.Fatal(err)
	}
	if got := HELRProgram(cD).Lower().Total; got != EstimateHELR(cD) {
		t.Error("HELRProgram total != EstimateHELR")
	}
	// Bootstrap composes into programs too.
	s := NewProgram(cD).Bootstrap(DefaultBootstrapSchedule(SetD())).Lower()
	if s.Total <= 0 || s.Kernels.NTTs == 0 {
		t.Errorf("bootstrap program degenerate: %+v", s)
	}
}

func TestSweepFacade(t *testing.T) {
	recs, err := Sweep(SweepConfig{
		Sets:     []string{"A", "D"},
		Specs:    []string{"TPUv6e"},
		Cores:    []int{1, 4},
		Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 5; len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	// The sweep's single-workload records agree exactly with a direct
	// lowering on an equivalent target.
	pod, err := NewPod(TPUv6e(), 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(pod, SetD())
	if err != nil {
		t.Fatal(err)
	}
	want := c.LowerHEMult().Total
	found := false
	for _, r := range recs {
		if r.ID == "SetD/TPUv6e-4/HE-Mult" {
			found = true
			if r.TotalS != want {
				t.Errorf("sweep HE-Mult %g != direct lowering %g", r.TotalS, want)
			}
		}
	}
	if !found {
		t.Error("SetD/TPUv6e-4/HE-Mult missing from sweep")
	}

	// SweepDiff: +1% injected latency gates, −1% reports improvement.
	bumped := append([]SweepRecord(nil), recs...)
	bumped[0].TotalS *= 1.01
	bumped[1].TotalS *= 0.99
	d := SweepDiff(recs, bumped, 0.005)
	if !d.HasRegressions() || len(d.Regressions) != 1 || d.Regressions[0].ID != recs[0].ID {
		t.Errorf("+1%% not gated: %+v", d.Regressions)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].ID != recs[1].ID {
		t.Errorf("−1%% not reported as improvement: %+v", d.Improvements)
	}
}

func TestWorkloadFacade(t *testing.T) {
	c, err := NewCompiler(NewDevice(TPUv6e()), MNISTParams())
	if err != nil {
		t.Fatal(err)
	}
	total, perImage := EstimateMNIST(c)
	if total <= 0 || perImage <= 0 || total < perImage {
		t.Error("MNIST estimate degenerate")
	}
	cD, err := NewCompiler(NewDevice(TPUv6e()), SetD())
	if err != nil {
		t.Fatal(err)
	}
	if EstimateHELR(cD) <= 0 {
		t.Error("HELR estimate degenerate")
	}
}

func TestServeFacade(t *testing.T) {
	r, err := Serve(ServeConfig{
		Seed: 2, Spec: "TPUv5e", Pods: 2, Policy: ServeLeastLoaded,
		HorizonS: 0.02, MaxBatch: 4,
		Mix: []ServeMixEntry{{Workload: "HE-Mult", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 || r.Completed != r.Requests {
		t.Fatalf("serve run degenerate: %d/%d", r.Completed, r.Requests)
	}
	if r.CapacityRate <= 0 || r.AchievedRate <= 0 || r.Latency.P99S < r.Latency.P50S {
		t.Errorf("serve record inconsistent: %+v", r)
	}
	if _, err := Serve(ServeConfig{Policy: "teleport"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestServeFaultsFacade(t *testing.T) {
	r, err := Serve(ServeConfig{
		Seed: 2, Spec: "TPUv5e", Pods: 3, HorizonS: 0.05, MaxBatch: 4,
		Mix:    []ServeMixEntry{{Workload: "HE-Mult", Weight: 1}},
		Faults: &FaultConfig{Seed: 4, MTBFS: 0.01, MaxRetries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Availability == nil || r.Availability.Crashes == 0 {
		t.Fatalf("fault run recorded no crashes: %+v", r.Availability)
	}
	chaos, err := ServeChaos(ServeChaosConfig{
		Serve: ServeConfig{
			Seed: 2, Spec: "TPUv5e", Pods: 2, HorizonS: 0.02, MaxBatch: 4,
			Mix: []ServeMixEntry{{Workload: "HE-Mult", Weight: 1}},
		},
		MTBFGrid: []float64{0, 0.005},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chaos.Points) != 2 || chaos.Points[0].MTBFS != 0 {
		t.Fatalf("chaos sweep malformed: %+v", chaos.Points)
	}
	if chaos.Points[1].Crashes == 0 {
		t.Error("chaos harsh cell crash-free")
	}
	if chaos.Summary() == "" {
		t.Error("empty chaos summary")
	}
	if _, err := Serve(ServeConfig{
		HorizonS: 0.01, Faults: &FaultConfig{MTBFS: -1},
	}); err == nil {
		t.Error("invalid fault config accepted")
	}
}

func TestServeFleetFacade(t *testing.T) {
	fleet, err := ServeParseFleet("TPUv6e:1:2+H100:1:1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Serve(ServeConfig{
		Seed: 2, Fleet: fleet, Policy: ServeCheapest,
		HorizonS: 0.02, MaxBatch: 4, Stats: ServeStatsStreaming,
		Mix: []ServeMixEntry{{Workload: "HE-Mult", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != r.Requests || r.Cost == nil || r.Cost.DollarPerHour <= 0 {
		t.Fatalf("hetero-fleet facade run degenerate: %d/%d cost %+v", r.Completed, r.Requests, r.Cost)
	}
	if _, err := ServeParseFleets("TPUv6e:1:1,bogus"); err == nil {
		t.Error("malformed fleet list accepted")
	}
}

func TestServeSLOAndTraceFacade(t *testing.T) {
	r, err := Serve(ServeConfig{
		Seed: 2, Spec: "TPUv5e", Pods: 2, HorizonS: 0.02, MaxBatch: 4,
		Mix: []ServeMixEntry{
			{Workload: "HE-Mult", Weight: 2, Class: "interactive"},
			{Workload: "MNIST", Weight: 1, Class: "batch"},
		},
		Classes: []ServeSLOClass{
			{Name: "interactive", Priority: 5},
			{Name: "batch"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 2 || r.Classes[0].Class != "interactive" {
		t.Fatalf("class sections malformed: %+v", r.Classes)
	}
	tr, err := Serve(ServeConfig{
		Seed: 2, Spec: "TPUv5e", Pods: 1, MaxBatch: 2,
		TraceEvents: []ServeTraceEvent{
			{T: 0.001, Workload: "HE-Mult"},
			{T: 0.002, Workload: "HE-Mult"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests != 2 || tr.Completed != 2 {
		t.Fatalf("trace facade run degenerate: %+v", tr)
	}
	if _, err := ServeLoadTrace("/nonexistent/trace.json"); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestServePlanFacade(t *testing.T) {
	pr, err := ServePlan(ServePlanConfig{
		Base: ServeConfig{
			Seed: 2, Spec: "TPUv5e", HorizonS: 0.02, MaxBatch: 4,
			Mix: []ServeMixEntry{{Workload: "HE-Mult", Weight: 1}},
		},
		Fleets:     [][]ServeFleetGroup{{{Device: "TPUv5e", Cores: 1, Count: 2}}},
		TargetP99S: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Points) != 1 || !pr.Points[0].Feasible || pr.Points[0].RPSPerDollarHour <= 0 {
		t.Fatalf("plan facade frontier malformed: %+v", pr.Points)
	}
	if pr.Summary() == "" {
		t.Error("empty plan summary")
	}
	if _, err := ServePlan(ServePlanConfig{TargetP99S: 0}); err == nil {
		t.Error("zero plan target accepted")
	}
}

func TestCalibFacade(t *testing.T) {
	// PredictKernel prices every calibration kernel on any target, and
	// a non-default Calibration changes the price.
	c, err := Compile(NewDevice(TPUv6e()), SetB())
	if err != nil {
		t.Fatal(err)
	}
	if len(CalibKernels()) != 9 {
		t.Fatalf("expected 9 calibration kernels, got %d", len(CalibKernels()))
	}
	for _, k := range CalibKernels() {
		s, err := c.PredictKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		if s.Total <= 0 {
			t.Errorf("%s: non-positive predicted time", k)
		}
	}
	spec := TPUv6e()
	spec.Calib = Calibration{LaunchOverhead: 1e-4, HBMFraction: 0.5, VMEMFraction: 0.5, NTTEfficiency: 0.5}
	slow, err := Compile(NewDevice(spec), SetB())
	if err != nil {
		t.Fatal(err)
	}
	sDefault, _ := c.PredictKernel("ntt_inplace")
	sSlow, _ := slow.PredictKernel("ntt_inplace")
	if sSlow.Total <= sDefault.Total {
		t.Errorf("derated calibration did not slow the model: %g <= %g", sSlow.Total, sDefault.Total)
	}

	// CalibDiff gates injected model drift on a published record.
	mk := func() *CalibReport {
		return &CalibReport{Records: []CalibRecord{
			{ID: "TPUv4/ntt_throughput/N4096", Spec: "TPUv4", Source: "published", RelErrFitted: 0.05},
		}}
	}
	old, cur := mk(), mk()
	cur.Records[0].RelErrFitted = 0.40
	if d := CalibDiff(old, cur, 0.10); !d.HasRegressions() {
		t.Error("injected model drift not gated")
	}
	if d := CalibDiff(old, mk(), 0.10); d.HasRegressions() {
		t.Error("self-diff not clean")
	}

	// Host-file diffing surfaces environment mismatches as warnings.
	recs := []HostBenchRecord{{ID: "ntt_inplace/N8192", NsPerOp: 100}}
	a := HostBenchFile{Env: HostBenchEnvironment{GoVersion: "go1.23.0"}, Records: recs}
	b := HostBenchFile{Env: HostBenchEnvironment{GoVersion: "go1.24.0"}, Records: recs}
	d := HostBenchDiffFiles(a, b, 0.25)
	if d.HasRegressions() {
		t.Error("env mismatch must not gate")
	}
	if len(d.EnvWarnings) == 0 {
		t.Error("expected an environment warning")
	}
}

func TestGPUBackendFacade(t *testing.T) {
	// Registry: any registered name instantiates through one call.
	if !strings.Contains(TargetNames(), "H100") || !strings.Contains(TargetNames(), "TPUv6e") {
		t.Fatalf("TargetNames() missing devices: %s", TargetNames())
	}
	if got := len(RegisteredTargets()); got != 7 {
		t.Fatalf("expected 7 registered devices (4 TPU + 3 GPU), got %d", got)
	}
	tgt, err := TargetByName("H100", 8)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(tgt, SetD())
	if err != nil {
		t.Fatal(err)
	}
	s := comp.LowerHEMult()
	if s.Total <= 0 || s.Collective <= 0 || s.OverlappedTotal() > s.Total {
		t.Errorf("GPU node schedule degenerate: %+v", s)
	}
	if _, err := TargetByName("Hopper", 8); err == nil {
		t.Error("unknown device accepted")
	}

	// Direct constructors match the registry path.
	node, err := NewGPUNode(H100(), 8)
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := Compile(node, SetD())
	if err != nil {
		t.Fatal(err)
	}
	if got := comp2.LowerHEMult().Total; got != s.Total {
		t.Errorf("NewGPUNode lowering %g != registry lowering %g", got, s.Total)
	}
	dcomp, err := Compile(NewGPUDevice(A100_40GB()), SetB())
	if err != nil {
		t.Fatal(err)
	}
	if ds := dcomp.LowerHEMult(); ds.Total <= 0 || ds.Collective != 0 {
		t.Errorf("single GPU schedule degenerate: %+v", ds)
	}
}
