// Benchmarks regenerating the paper's tables and figures (§V). Two
// kinds of numbers appear here:
//
//   - wall-clock ns/op: real CPU time of the functional kernels on this
//     host (the reproduction's "CPU platform");
//   - sim_us / sim_kNTT_s / … custom metrics: the TPU simulator's
//     estimates, which are the reproduction of the paper's TPU
//     measurements (compare shapes, not absolutes — see EXPERIMENTS.md).
//
// One benchmark exists per paper table/figure; `go test -bench=.` runs
// the whole evaluation.
package cross_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cross"
	"cross/internal/bat"
	icross "cross/internal/cross"
	"cross/internal/gpusim"
	"cross/internal/modarith"
	"cross/internal/ring"
	"cross/internal/tpusim"
	"cross/internal/workload"
)

func mustCompiler(b *testing.B, spec tpusim.Spec, p icross.Params) *icross.Compiler {
	b.Helper()
	c, err := icross.New(tpusim.NewDevice(spec), p)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTableV regenerates Tab. V: BAT vs sparse-baseline ModMatMul.
// Simulated latencies are attached as metrics; the functional BAT
// pipeline is executed at a reduced size for real ns/op.
func BenchmarkTableV(b *testing.B) {
	b.ReportAllocs()
	sizes := [][3]int{{512, 256, 256}, {2048, 256, 256}, {2048, 2048, 2048}}
	for _, hvw := range sizes {
		hvw := hvw
		b.Run(fmt.Sprintf("H%d_V%d_W%d", hvw[0], hvw[1], hvw[2]), func(b *testing.B) {
			b.ReportAllocs()
			c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
			var base, batT float64
			for i := 0; i < b.N; i++ {
				base = c.Snapshot(func() float64 { return c.CostMatModMulBaseline(hvw[0], hvw[1], hvw[2]) })
				batT = c.Snapshot(func() float64 { return c.CostMatModMulBAT(hvw[0], hvw[1], hvw[2]) })
			}
			b.ReportMetric(base*1e6, "sim_base_us")
			b.ReportMetric(batT*1e6, "sim_bat_us")
			b.ReportMetric(base/batT, "sim_speedup")
		})
	}
	// Functional execution (small size, real time).
	b.Run("functional_64x64x64", func(b *testing.B) {
		b.ReportAllocs()
		m := modarith.MustModulus(268369921)
		rng := rand.New(rand.NewSource(1))
		a := make([]uint64, 64*64)
		x := make([]uint64, 64*64)
		for i := range a {
			a[i], x[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
		}
		plan, err := bat.OfflineCompileLeft(m, a, 64, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Mul(x, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableVI regenerates Tab. VI: BConv step 2 with/without BAT.
func BenchmarkTableVI(b *testing.B) {
	b.ReportAllocs()
	for _, ll := range [][2]int{{12, 28}, {12, 36}, {16, 40}, {24, 56}} {
		ll := ll
		b.Run(fmt.Sprintf("l%d_to_%d", ll[0], ll[1]), func(b *testing.B) {
			b.ReportAllocs()
			c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
			var with, without float64
			for i := 0; i < b.N; i++ {
				with = c.Snapshot(func() float64 { return c.CostBConv(1<<16, ll[0], ll[1], true) })
				without = c.Snapshot(func() float64 { return c.CostBConv(1<<16, ll[0], ll[1], false) })
			}
			b.ReportMetric(with*1e6, "sim_bat_us")
			b.ReportMetric(without*1e6, "sim_base_us")
			b.ReportMetric(without/with, "sim_speedup")
		})
	}
}

// BenchmarkTableVII regenerates Tab. VII / Fig. 11a: peak NTT throughput
// per TPU generation at the paper's three degrees.
func BenchmarkTableVII(b *testing.B) {
	b.ReportAllocs()
	for _, spec := range tpusim.AllSpecs() {
		for _, set := range []icross.Params{icross.SetA(), icross.SetB(), icross.SetC()} {
			spec, set := spec, set
			b.Run(fmt.Sprintf("%s_N2e%d", spec.Name, set.LogN), func(b *testing.B) {
				b.ReportAllocs()
				c := mustCompiler(b, spec, set)
				var thr float64
				for i := 0; i < b.N; i++ {
					_, thr = c.BestNTTBatch(128)
				}
				b.ReportMetric(thr/1e3, "sim_kNTT_s_core")
			})
		}
	}
}

// BenchmarkFig11b regenerates the batch-size sweep on TPUv6e.
func BenchmarkFig11b(b *testing.B) {
	b.ReportAllocs()
	for _, name := range []string{"A", "B", "C", "D"} {
		name := name
		b.Run("Set"+name, func(b *testing.B) {
			b.ReportAllocs()
			p, err := icross.NamedSet(name)
			if err != nil {
				b.Fatal(err)
			}
			c := mustCompiler(b, tpusim.TPUv6e(), p)
			var best int
			var gain float64
			for i := 0; i < b.N; i++ {
				base := c.NTTThroughput(1)
				var thr float64
				best, thr = c.BestNTTBatch(128)
				gain = thr / base
			}
			b.ReportMetric(float64(best), "sim_best_batch")
			b.ReportMetric(gain, "sim_gain")
		})
	}
}

// BenchmarkTableVIII regenerates the HE-operator latencies on a
// simulated v6e core for the paper's default Set D.
func BenchmarkTableVIII(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
	var ops icross.HEOpLatencies
	for i := 0; i < b.N; i++ {
		ops = c.MeasureHEOps()
	}
	b.ReportMetric(ops.Add*1e6, "sim_add_us")
	b.ReportMetric(ops.Mult*1e6, "sim_mult_us")
	b.ReportMetric(ops.Rescale*1e6, "sim_rescale_us")
	b.ReportMetric(ops.Rotate*1e6, "sim_rotate_us")
}

// BenchmarkFig12 regenerates the HE-Mult breakdown shares.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
	var vecShare float64
	for i := 0; i < b.N; i++ {
		c.Dev.Trace.Reset()
		c.CostHEMult()
		vecShare = c.Dev.Trace.Seconds(tpusim.CatVecModOps) / c.Dev.Trace.Total()
	}
	b.ReportMetric(vecShare*100, "sim_vecmod_pct")
}

// BenchmarkTableIX regenerates the packed-bootstrapping estimate.
func BenchmarkTableIX(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
	sched := icross.DefaultBootstrapSchedule(icross.SetD())
	var lat float64
	for i := 0; i < b.N; i++ {
		lat = c.Snapshot(func() float64 { return c.CostBootstrap(sched) })
	}
	b.ReportMetric(lat/8*1e3, "sim_v6e8_ms") // amortised over 8 cores
}

// BenchmarkFig13a regenerates the VecModMul reduction ablation.
func BenchmarkFig13a(b *testing.B) {
	b.ReportAllocs()
	p := icross.SetD()
	elems := 2 * p.L * p.N()
	for _, alg := range []modarith.ReduceAlgorithm{modarith.Barrett, modarith.Montgomery, modarith.Shoup, modarith.BATLazy} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			pp := p
			pp.Red = alg
			c := mustCompiler(b, tpusim.TPUv6e(), pp)
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = c.Snapshot(func() float64 { return c.CostVecModMul(elems) })
			}
			b.ReportMetric(lat*1e6, "sim_us")
		})
	}
}

// BenchmarkFig13b regenerates the NTT reduction ablation.
func BenchmarkFig13b(b *testing.B) {
	b.ReportAllocs()
	for _, alg := range []modarith.ReduceAlgorithm{modarith.Barrett, modarith.Montgomery, modarith.Shoup, modarith.BATLazy} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = c.Snapshot(func() float64 { return c.CostNTTMatWithRed(8, alg) })
			}
			b.ReportMetric(lat*1e6, "sim_us")
		})
	}
}

// BenchmarkTableX regenerates radix-2 vs MAT NTT on TPUv4 and also runs
// both functionally on the CPU for real wall times (the §V-B CPU-CROSS
// datapoint).
func BenchmarkTableX(b *testing.B) {
	b.ReportAllocs()
	b.Run("simulated_N2e14", func(b *testing.B) {
		b.ReportAllocs()
		p := icross.SetC()
		c := mustCompiler(b, tpusim.TPUv4(), p)
		var r2, mat float64
		for i := 0; i < b.N; i++ {
			r2 = c.Snapshot(func() float64 { return c.CostNTTRadix2(128) })
			mat = c.Snapshot(func() float64 { return c.CostNTTMat(128) })
		}
		b.ReportMetric(r2*1e6, "sim_radix2_us")
		b.ReportMetric(mat*1e6, "sim_mat_us")
		b.ReportMetric(r2/mat, "sim_speedup")
	})

	n := 1 << 12
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	rg := ring.MustRing(n, primes)
	data := make([]uint64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range data {
		data[i] = rng.Uint64() % primes[0]
	}
	b.Run("cpu_radix2_N2e12", func(b *testing.B) {
		b.ReportAllocs()
		buf := append([]uint64(nil), data...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rg.NTTLimb(0, buf)
		}
	})
	b.Run("cpu_mat3step_N2e12", func(b *testing.B) {
		b.ReportAllocs()
		plan, err := ring.NewMatNTTPlan(rg, 64, 64, ring.LayoutBitRev)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]uint64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.ForwardLimb(0, data, out)
		}
	})
}

// BenchmarkMNIST regenerates the §V-D MNIST estimate.
func BenchmarkMNIST(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), workload.MNISTParams())
	var perImage float64
	for i := 0; i < b.N; i++ {
		_, perImage = workload.EstimateMNIST(c)
	}
	b.ReportMetric(perImage*1e3, "sim_ms_per_image")
}

// BenchmarkLogReg regenerates the §V-D HELR estimate.
func BenchmarkLogReg(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
	var iter float64
	for i := 0; i < b.N; i++ {
		iter = workload.EstimateHELR(c)
	}
	b.ReportMetric(iter*1e3, "sim_ms_per_iter")
}

// BenchmarkCPUHEOps times the functional CKKS operators on this host —
// the reproduction's CPU platform row of Tab. VIII (Fig. 14's source).
func BenchmarkCPUHEOps(b *testing.B) {
	b.ReportAllocs()
	ctx, err := cross.NewContext(cross.ContextOptions{LogN: 12, Limbs: 6, Rotations: []int{1}})
	if err != nil {
		b.Fatal(err)
	}
	z := make([]complex128, ctx.Slots())
	for i := range z {
		z[i] = complex(float64(i%7)/7, 0)
	}
	ct1, err := ctx.EncryptValues(z)
	if err != nil {
		b.Fatal(err)
	}
	ct2, err := ctx.EncryptValues(z)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("HE-Add", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Evaluator.Add(ct1, ct2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HE-Mult", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Evaluator.MulRelin(ct1, ct2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rescale", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Evaluator.Rescale(ct1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rotate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Evaluator.Rotate(ct1, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCPUKernels times the primitive kernels (Fig. 14's CPU
// profile inputs).
func BenchmarkCPUKernels(b *testing.B) {
	b.ReportAllocs()
	n := 1 << 13
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 2)
	if err != nil {
		b.Fatal(err)
	}
	rg := ring.MustRing(n, primes)
	m := rg.Moduli[0]
	rng := rand.New(rand.NewSource(3))
	a := make([]uint64, n)
	c := make([]uint64, n)
	for i := range a {
		a[i], c[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
	}
	dst := make([]uint64, n)

	b.Run("NTT", func(b *testing.B) {
		b.ReportAllocs()
		buf := append([]uint64(nil), a...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rg.NTTLimb(0, buf)
		}
	})
	b.Run("INTT", func(b *testing.B) {
		b.ReportAllocs()
		buf := append([]uint64(nil), a...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rg.INTTLimb(0, buf)
		}
	})
	b.Run("VecModMul_Barrett", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.VecMulMod(dst, a, c, modarith.Barrett)
		}
	})
	b.Run("VecModMul_Montgomery", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.VecMulMod(dst, a, c, modarith.Montgomery)
		}
	})
	b.Run("VecModMul_Shoup", func(b *testing.B) {
		b.ReportAllocs()
		ws := m.ShoupPrecomputeVec(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.VecMulModShoup(dst, a, c, ws)
		}
	})
	b.Run("VecModAdd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.VecAddMod(dst, a, c)
		}
	})
	b.Run("Automorphism", func(b *testing.B) {
		b.ReportAllocs()
		idx, err := rg.AutomorphismNTTIndex(5)
		if err != nil {
			b.Fatal(err)
		}
		in := ring.NewPoly(1, n)
		copy(in.Coeffs[0], a)
		out := ring.NewPoly(1, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rg.AutomorphismNTT(in, out, idx)
		}
	})
}

// BenchmarkHoisting is the rotation-hoisting ablation (DESIGN.md §5):
// simulated cost of k rotations with and without a shared
// decomposition.
func BenchmarkHoisting(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), icross.SetD())
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run(fmt.Sprintf("rot%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var plain, hoisted float64
			for i := 0; i < b.N; i++ {
				plain = c.Snapshot(func() float64 {
					var t float64
					for j := 0; j < k; j++ {
						t += c.CostRotate()
					}
					return t
				})
				hoisted = c.Snapshot(func() float64 { return c.CostRotateHoisted(k) })
			}
			b.ReportMetric(plain*1e6, "sim_plain_us")
			b.ReportMetric(hoisted*1e6, "sim_hoisted_us")
			b.ReportMetric(plain/hoisted, "sim_speedup")
		})
	}
}

// BenchmarkCoreScaling regenerates the pod scaling sweep's headline
// numbers: sharded HE-Mult latency at 1/2/4/8 cores for Set D.
func BenchmarkCoreScaling(b *testing.B) {
	b.ReportAllocs()
	p := icross.SetD()
	single := mustCompiler(b, tpusim.TPUv6e(), p)
	base := single.Snapshot(single.CostHEMult)
	for _, cores := range []int{1, 2, 4, 8} {
		cores := cores
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			b.ReportAllocs()
			pod := tpusim.MustPod(tpusim.TPUv6e(), cores)
			sc, err := icross.NewSharded(pod, p)
			if err != nil {
				b.Fatal(err)
			}
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = sc.Snapshot(sc.CostHEMult)
			}
			b.ReportMetric(lat*1e6, "sim_mult_us")
			b.ReportMetric(base/lat, "sim_speedup")
		})
	}
}

// BenchmarkProgramLower times the Schedule IR's workload composition:
// the full MNIST CNN as ONE memoized program (each distinct operator
// lowered once for the whole network) against per-layer pricing, where
// every layer re-lowers its own operators from scratch. Both compute
// the same simulated total; the memoized program does ~1/9th the
// lowering work, which is what makes it the serving-scale substrate.
func BenchmarkProgramLower(b *testing.B) {
	b.ReportAllocs()
	c := mustCompiler(b, tpusim.TPUv6e(), workload.MNISTParams())
	b.Run("memoized_program", func(b *testing.B) {
		b.ReportAllocs()
		var total float64
		for i := 0; i < b.N; i++ {
			total = workload.MNISTProgram(c).Batch(workload.MNISTBatch).Lower().Total
		}
		b.ReportMetric(total*1e3, "sim_batch_ms")
	})
	b.Run("per_layer_lowering", func(b *testing.B) {
		b.ReportAllocs()
		var total float64
		for i := 0; i < b.N; i++ {
			total = 0
			for _, layer := range workload.MNISTNetwork() {
				total += workload.EstimateLatency(c, layer)
			}
			total *= workload.MNISTBatch
		}
		b.ReportMetric(total*1e3, "sim_batch_ms")
	})
}

// BenchmarkPodSchedule times pod-target lowering through the unified
// Compile path (the old ShardedCompiler code path, now just a Target).
func BenchmarkPodSchedule(b *testing.B) {
	b.ReportAllocs()
	pod := tpusim.MustPod(tpusim.TPUv6e(), 4)
	c, err := icross.Compile(pod, icross.SetD())
	if err != nil {
		b.Fatal(err)
	}
	var s *icross.Schedule
	for i := 0; i < b.N; i++ {
		s = c.LowerHEMult()
	}
	b.ReportMetric(s.Total*1e6, "sim_mult_us")
	b.ReportMetric(s.Collective*1e6, "sim_ici_us")
}

// BenchmarkGPUNodeSchedule times GPU-node lowering through the same
// unified Compile path: an 8-GPU H100 NVSwitch node next to
// BenchmarkPodSchedule's 4-core pod, the cross-hardware smoke pair.
func BenchmarkGPUNodeSchedule(b *testing.B) {
	b.ReportAllocs()
	node := gpusim.MustNode(gpusim.H100(), 8)
	c, err := icross.Compile(node, icross.SetD())
	if err != nil {
		b.Fatal(err)
	}
	var s *icross.Schedule
	for i := 0; i < b.N; i++ {
		s = c.LowerHEMult()
	}
	b.ReportMetric(s.Total*1e6, "sim_mult_us")
	b.ReportMetric(s.Collective*1e6, "sim_nvlink_us")
}

// BenchmarkParallelNTT times the host-side limb-parallel NTT worker
// pool (real wall time — the `go test -bench` comparison of the
// Parallelism option).
func BenchmarkParallelNTT(b *testing.B) {
	b.ReportAllocs()
	n := 1 << 14
	limbs := 16
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), limbs)
	if err != nil {
		b.Fatal(err)
	}
	rg := ring.MustRing(n, primes)
	rng := rand.New(rand.NewSource(9))
	src := ring.NewPoly(limbs, n)
	for i := range src.Coeffs {
		for k := range src.Coeffs[i] {
			src.Coeffs[i][k] = rng.Uint64() % primes[i]
		}
	}
	for _, workers := range []int{1, 2, ring.DefaultParallelism()} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			rp := rg.WithParallelism(workers)
			buf := src.CopyNew()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rp.NTT(buf)
				rp.INTT(buf)
			}
		})
	}
}

// BenchmarkParallelBATMatMul times the row-sharded BAT matmul pipeline
// against the serial path (real wall time).
func BenchmarkParallelBATMatMul(b *testing.B) {
	b.ReportAllocs()
	m := modarith.MustModulus(268369921)
	rng := rand.New(rand.NewSource(10))
	h, v, w := 256, 128, 128
	a := make([]uint64, h*v)
	x := make([]uint64, v*w)
	for i := range a {
		a[i] = rng.Uint64() % m.Q
	}
	for i := range x {
		x[i] = rng.Uint64() % m.Q
	}
	plan, err := bat.OfflineCompileLeft(m, a, h, v)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, bat.DefaultParallelism()} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.MulParallel(x, w, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBATScalar times the three scalar-multiplication routes the
// paper contrasts (Fig. 7, Fig. 16).
func BenchmarkBATScalar(b *testing.B) {
	b.ReportAllocs()
	m := modarith.MustModulus(268369921)
	plan, err := bat.DirectScalarBAT(m, 123456789%m.Q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BAT_dense", func(b *testing.B) {
		b.ReportAllocs()
		var s uint64
		for i := 0; i < b.N; i++ {
			s += plan.Mul(uint64(i))
		}
		_ = s
	})
	b.Run("sparse_toeplitz", func(b *testing.B) {
		b.ReportAllocs()
		var s uint64
		for i := 0; i < b.N; i++ {
			s += bat.SparseScalarMul(m, 123456789%m.Q, uint64(i)%m.Q)
		}
		_ = s
	})
	b.Run("conv1d_fallback", func(b *testing.B) {
		b.ReportAllocs()
		var s uint64
		for i := 0; i < b.N; i++ {
			s += bat.Conv1DScalarMul(m, 123456789%m.Q, uint64(i)%m.Q)
		}
		_ = s
	})
}
