module cross

go 1.24
