module cross

go 1.23
