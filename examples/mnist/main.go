// Command mnist reproduces the paper's §V-D encrypted-inference
// workload in two stages:
//
//  1. a functionally-verified encrypted convolution + square activation
//     on a synthetic 8×8 image (the real MNIST data and trained weights
//     are substituted per DESIGN.md §2 — the latency estimate depends
//     only on the operator schedule);
//  2. the paper-scale schedule (2×{Conv-ReLU-AvgPool}→FC→ReLU→FC at
//     N=2^13, L=18) priced on a simulated TPUv6e using the paper's
//     kernel-count × profiled-latency methodology (§V-A).
//
// Run with: go run ./examples/mnist
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"cross"
)

const imgSize = 8 // synthetic image side; 64 pixels packed in slots

// convPlain is the plaintext reference: the rotation-based HE schedule
// rotates the full slot vector (image in slots [0, 64), zeros beyond),
// so the reference convolves over the same padded vector, followed by a
// square activation.
func convPlain(img []float64, kernel [9]float64, slots int) []float64 {
	padded := make([]float64, slots)
	copy(padded, img)
	out := make([]float64, len(img))
	for p := 0; p < len(img); p++ {
		var acc float64
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				shift := dy*imgSize + dx
				acc += kernel[dy*3+dx] * padded[(p+shift)%slots]
			}
		}
		out[p] = acc * acc
	}
	return out
}

func main() {
	// Rotation amounts needed by the 3×3 kernel taps.
	var rotations []int
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			rotations = append(rotations, dy*imgSize+dx)
		}
	}
	ctx, err := cross.NewContext(cross.ContextOptions{
		LogN: 10, Limbs: 5, Rotations: rotations, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic image and kernel (substitute for MNIST data + trained
	// weights; see DESIGN.md §2).
	rng := rand.New(rand.NewSource(7))
	img := make([]float64, imgSize*imgSize)
	for i := range img {
		img[i] = rng.Float64()
	}
	var kernel [9]float64
	for i := range kernel {
		kernel[i] = rng.Float64()*2 - 1
	}

	// Encrypt the packed image.
	slots := make([]complex128, ctx.Slots())
	for i, v := range img {
		slots[i] = complex(v, 0)
	}
	ct, err := ctx.EncryptValues(slots)
	if err != nil {
		log.Fatal(err)
	}

	// Encrypted convolution: rotate-and-accumulate with plaintext taps,
	// then one ciphertext multiplication as the square activation —
	// exactly the ConvLayer/ActLayer schedule the estimator prices.
	var acc *cross.Ciphertext
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			shift := dy*imgSize + dx
			rot := ct
			if shift != 0 {
				if rot, err = ctx.Evaluator.Rotate(ct, shift); err != nil {
					log.Fatal(err)
				}
			}
			tapVals := make([]complex128, ctx.Slots())
			for i := range tapVals {
				tapVals[i] = complex(kernel[dy*3+dx], 0)
			}
			tap, err := ctx.Encoder.Encode(tapVals)
			if err != nil {
				log.Fatal(err)
			}
			term, err := ctx.Evaluator.MulPlain(rot, tap)
			if err != nil {
				log.Fatal(err)
			}
			if acc == nil {
				acc = term
			} else if acc, err = ctx.Evaluator.Add(acc, term); err != nil {
				log.Fatal(err)
			}
		}
	}
	conv, err := ctx.Evaluator.Rescale(acc)
	if err != nil {
		log.Fatal(err)
	}
	squared, err := ctx.MulRescale(conv, conv)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the plaintext reference.
	want := convPlain(img, kernel, ctx.Slots())
	got := ctx.DecryptValues(squared)
	var worst float64
	for i := range want {
		if e := cmplx.Abs(got[i] - complex(want[i], 0)); e > worst {
			worst = e
		}
	}
	fmt.Printf("encrypted Conv3x3 + square on %d pixels: max error %.2e\n", len(img), worst)
	if worst > 1e-2 {
		log.Fatalf("functional verification FAILED (error %g)", worst)
	}
	fmt.Println("functional verification PASSED")

	// Paper-scale estimate (§V-D: 270 ms/image on v6e-8): the whole CNN
	// as one Program, lowered into a costed Schedule.
	comp, err := cross.Compile(cross.NewDevice(cross.TPUv6e()), cross.MNISTParams())
	if err != nil {
		log.Fatal(err)
	}
	prog := cross.MNISTProgram(comp)
	perImage := prog.Lower().Total
	batch := prog.Batch(64).Lower()
	fmt.Printf("\npaper-scale CNN (N=2^13, L=18, dnum=3) on simulated TPUv6e:\n")
	fmt.Printf("  per-image latency:  %.0f ms   (paper: 270 ms amortised)\n", perImage*1e3)
	fmt.Printf("  batch-64 total:     %.1f s  (%d HE operators)\n", batch.Total, prog.OpCount())
	fmt.Printf("  Orion baseline:     2700 ms/image — CROSS wins %.1f×\n", 2700/(perImage*1e3))
}
