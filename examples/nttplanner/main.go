// Command nttplanner explores the design space of the layout-invariant
// 3-step NTT (§V-A's configuration sweep): for every TPU generation it
// sweeps the (R, C) matrix split and the batch size, printing the
// throughput surface and the configuration CROSS would select. It also
// runs the functional plan once per split to re-verify correctness
// against the radix-2 oracle before trusting any number.
//
// Run with: go run ./examples/nttplanner [-logn 13]
package main

import (
	"flag"
	"fmt"
	"log"

	"cross"
)

func main() {
	logN := flag.Int("logn", 13, "ring degree exponent (12–16)")
	flag.Parse()
	if *logN < 8 || *logN > 16 {
		log.Fatalf("logn %d out of range [8, 16]", *logN)
	}
	n := 1 << *logN

	// Functional verification at a testable size: every split must
	// reproduce the radix-2 output bit-exactly.
	verifyN := 1 << 10
	primes, err := cross.NTTFriendlyPrimes(28, uint64(verifyN), 1)
	if err != nil {
		log.Fatal(err)
	}
	rg, err := cross.NewRing(verifyN, primes)
	if err != nil {
		log.Fatal(err)
	}
	for r := 4; r <= verifyN/4; r <<= 1 {
		plan, err := cross.NewMatNTTPlan(rg, r, verifyN/r, cross.LayoutBitRev)
		if err != nil {
			log.Fatal(err)
		}
		in := make([]uint64, verifyN)
		for i := range in {
			in[i] = uint64(i * 31)
		}
		got := make([]uint64, verifyN)
		plan.ForwardLimb(0, in, got)
		want := append([]uint64(nil), in...)
		rg.NTTLimb(0, want)
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("split (%d,%d): MAT NTT diverges from radix-2 at slot %d", r, verifyN/r, i)
			}
		}
	}
	fmt.Printf("functional check: all (R,C) splits at N=%d match radix-2 bit-exactly\n\n", verifyN)

	// Throughput planning surface.
	specs := []cross.DeviceSpec{cross.TPUv4(), cross.TPUv5e(), cross.TPUv5p(), cross.TPUv6e()}
	fmt.Printf("NTT planning surface at N=2^%d (single tensor core, kNTT/s at best batch):\n\n", *logN)
	fmt.Printf("%-8s", "R×C")
	for _, s := range specs {
		fmt.Printf("%12s", s.Name)
	}
	fmt.Println()
	type bestCfg struct {
		r, c, batch int
		thr         float64
	}
	best := map[string]bestCfg{}
	for r := 64; r <= 1024 && n/r >= 64; r <<= 1 {
		c := n / r
		fmt.Printf("%-8s", fmt.Sprintf("%dx%d", r, c))
		for _, spec := range specs {
			p := cross.SetA()
			p.LogN = *logN
			p.R, p.C = r, c
			comp, err := cross.NewCompiler(cross.NewDevice(spec), p)
			if err != nil {
				log.Fatal(err)
			}
			batch, thr := comp.BestNTTBatch(128)
			fmt.Printf("%9.0f b%-2d", thr/1e3, batch)
			if b, ok := best[spec.Name]; !ok || thr > b.thr {
				best[spec.Name] = bestCfg{r, c, batch, thr}
			}
		}
		fmt.Println()
	}
	fmt.Println("\nselected configurations:")
	for _, spec := range specs {
		b := best[spec.Name]
		fmt.Printf("  %-8s R=%d C=%d batch=%d  → %.0f kNTT/s/core\n",
			spec.Name, b.r, b.c, b.batch, b.thr/1e3)
	}
	fmt.Println("\n(paper §V-A pins R=128 for standalone NTT to fill the 128 lanes;")
	fmt.Println(" the sweep shows why: splits with R or C below the lane count pay tile padding.)")
}
