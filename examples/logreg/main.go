// Command logreg reproduces the paper's §V-D HELR workload: one
// iteration of encrypted logistic-regression training.
//
//  1. Functional stage: a gradient step on synthetic data — encrypted
//     inner product via rotations, degree-3 polynomial sigmoid, weight
//     update — verified against the plaintext computation.
//  2. Estimation stage: the HELR schedule (196 features, batch 1024)
//     priced on a simulated TPUv6e core (paper: 84 ms/iteration).
//
// Run with: go run ./examples/logreg
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cross"
)

const features = 16 // functional demo size (paper's HELR uses 196)

// sigmoidPoly is the degree-3 least-squares approximation of the
// sigmoid on [-8, 8] used by HELR [30]: σ(z) ≈ 0.5 + 0.15·z − 0.0015·z³.
func sigmoidPoly(z float64) float64 {
	return 0.5 + 0.15*z - 0.0015*z*z*z
}

func main() {
	// Rotations for the log-tree inner-product sum.
	var rotations []int
	for s := 1; s < features; s <<= 1 {
		rotations = append(rotations, s)
	}
	ctx, err := cross.NewContext(cross.ContextOptions{
		LogN: 10, Limbs: 6, Rotations: rotations, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	xRow := make([]float64, features) // one training example
	w := make([]float64, features)    // current weights
	for i := 0; i < features; i++ {
		xRow[i] = rng.Float64()*2 - 1
		w[i] = rng.Float64() * 0.5
	}
	label := 1.0

	// Plaintext reference: z = ⟨x, w⟩, p = σ(z), g_i = (p − y)·x_i.
	var z float64
	for i := range xRow {
		z += xRow[i] * w[i]
	}
	p := sigmoidPoly(z)
	wantGrad := make([]float64, features)
	for i := range wantGrad {
		wantGrad[i] = (p - label) * xRow[i]
	}

	// Encrypted gradient step. Features are packed periodically across
	// the whole slot vector (HELR's replication trick): a 16-periodic
	// vector stays 16-periodic under rotation, so the log-tree sum
	// broadcasts z = ⟨x, w⟩ into every slot.
	xs := make([]complex128, ctx.Slots())
	ws := make([]complex128, ctx.Slots())
	for i := range xs {
		xs[i] = complex(xRow[i%features], 0)
		ws[i] = complex(w[i%features], 0)
	}
	ctX, err := ctx.EncryptValues(xs)
	if err != nil {
		log.Fatal(err)
	}
	ctW, err := ctx.EncryptValues(ws)
	if err != nil {
		log.Fatal(err)
	}

	// z broadcast to all slots: elementwise product then log-tree sum.
	zCt, err := ctx.MulRescale(ctX, ctW)
	if err != nil {
		log.Fatal(err)
	}
	for s := 1; s < features; s <<= 1 {
		rot, err := ctx.Evaluator.Rotate(zCt, s)
		if err != nil {
			log.Fatal(err)
		}
		if zCt, err = ctx.Evaluator.Add(zCt, rot); err != nil {
			log.Fatal(err)
		}
	}
	// Every slot now holds z (periodic packing makes each 16-slot
	// window a complete inner product).

	// σ(z) ≈ 0.5 + 0.15 z − 0.0015 z³ homomorphically.
	encodeConst := func(v float64, level int, scale float64) *cross.Plaintext {
		vals := make([]complex128, ctx.Slots())
		for i := range vals {
			vals[i] = complex(v, 0)
		}
		pt, err := ctx.Encoder.EncodeAtLevel(vals, level, scale)
		if err != nil {
			log.Fatal(err)
		}
		return pt
	}
	z2, err := ctx.MulRescale(zCt, zCt)
	if err != nil {
		log.Fatal(err)
	}
	zAligned, err := ctx.Evaluator.DropLevel(zCt, z2.Level)
	if err != nil {
		log.Fatal(err)
	}
	z3, err := ctx.MulRescale(z2, zAligned)
	if err != nil {
		log.Fatal(err)
	}

	// 0.15·z at z3's level.
	zAt3, err := ctx.Evaluator.DropLevel(zCt, z3.Level+1)
	if err != nil {
		log.Fatal(err)
	}
	linTerm, err := ctx.Evaluator.MulPlain(zAt3, encodeConst(0.15, zAt3.Level, ctx.Params.Scale))
	if err != nil {
		log.Fatal(err)
	}
	linTerm, err = ctx.Evaluator.Rescale(linTerm)
	if err != nil {
		log.Fatal(err)
	}
	cubTerm, err := ctx.Evaluator.MulPlain(z3, encodeConst(-0.0015, z3.Level, linTerm.Scale*float64(ctx.Params.QPrimes[z3.Level])/z3.Scale))
	if err != nil {
		log.Fatal(err)
	}
	cubTerm, err = ctx.Evaluator.Rescale(cubTerm)
	if err != nil {
		log.Fatal(err)
	}

	// Align the two terms to the lower level before combining.
	if linTerm.Level > cubTerm.Level {
		if linTerm, err = ctx.Evaluator.DropLevel(linTerm, cubTerm.Level); err != nil {
			log.Fatal(err)
		}
	}
	sig, err := ctx.Evaluator.Add(linTerm, cubTerm)
	if err != nil {
		log.Fatal(err)
	}
	sig, err = ctx.Evaluator.AddPlain(sig, encodeConst(0.5, sig.Level, sig.Scale))
	if err != nil {
		log.Fatal(err)
	}
	// (σ(z) − y) · x.
	sig, err = ctx.Evaluator.AddPlain(sig, encodeConst(-label, sig.Level, sig.Scale))
	if err != nil {
		log.Fatal(err)
	}
	xAligned, err := ctx.Evaluator.DropLevel(ctX, sig.Level)
	if err != nil {
		log.Fatal(err)
	}
	grad, err := ctx.Evaluator.MulRelin(sig, xAligned)
	if err != nil {
		log.Fatal(err)
	}
	grad, err = ctx.Evaluator.Rescale(grad)
	if err != nil {
		log.Fatal(err)
	}

	got := ctx.DecryptValues(grad)
	var worst float64
	for i := 0; i < features; i++ {
		if e := math.Abs(real(got[i]) - wantGrad[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("encrypted LR gradient (%d features): max error %.2e\n", features, worst)
	if worst > 5e-2 {
		log.Fatalf("functional verification FAILED (error %g)", worst)
	}
	fmt.Println("functional verification PASSED")

	// Paper-scale estimate: one training iteration as a Program.
	comp, err := cross.Compile(cross.NewDevice(cross.TPUv6e()), cross.SetD())
	if err != nil {
		log.Fatal(err)
	}
	sched := cross.HELRProgram(comp).Lower()
	fmt.Printf("\nHELR schedule (196 features, batch 1024) on simulated TPUv6e core:\n")
	fmt.Printf("  per-iteration latency: %.0f ms   (paper: 84 ms)\n", sched.Total*1e3)
	fmt.Printf("  kernel launches:       %s\n", sched.Kernels)
}
