// Command quickstart demonstrates the two faces of the CROSS
// reproduction in one run:
//
//  1. the functional HE layer — encrypt two vectors, add, multiply,
//     rotate, and decrypt, verifying against plaintext arithmetic;
//  2. the compiler layer — lower the same operators onto a simulated
//     TPUv6e tensor core and print the paper-style latency breakdown
//     (Fig. 12).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"cross"
)

func main() {
	// --- Functional HE layer ---
	ctx, err := cross.NewContext(cross.ContextOptions{
		LogN: 11, Limbs: 5, Rotations: []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CKKS context: N=2^11, %d slots, %d levels, scale 2^28\n",
		ctx.Slots(), ctx.Params.MaxLevel()+1)

	rng := rand.New(rand.NewSource(42))
	x := make([]complex128, ctx.Slots())
	y := make([]complex128, ctx.Slots())
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
		y[i] = complex(rng.Float64(), 0)
	}

	ctX, err := ctx.EncryptValues(x)
	if err != nil {
		log.Fatal(err)
	}
	ctY, err := ctx.EncryptValues(y)
	if err != nil {
		log.Fatal(err)
	}

	sum, err := ctx.Evaluator.Add(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	prod, err := ctx.MulRescale(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	rot, err := ctx.Evaluator.Rotate(ctX, 1)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, ct *cross.Ciphertext, want func(i int) complex128) {
		got := ctx.DecryptValues(ct)
		var worst float64
		for i := range got {
			if e := cmplx.Abs(got[i] - want(i)); e > worst {
				worst = e
			}
		}
		fmt.Printf("  %-10s slot0 = %7.4f  (max error %.2e)\n", name, real(got[0]), worst)
	}
	fmt.Println("encrypted arithmetic vs plaintext:")
	report("x + y", sum, func(i int) complex128 { return x[i] + y[i] })
	report("x * y", prod, func(i int) complex128 { return x[i] * y[i] })
	report("rot(x,1)", rot, func(i int) complex128 { return x[(i+1)%len(x)] })

	// --- Compiler layer ---
	dev := cross.NewDevice(cross.TPUv6e())
	comp, err := cross.NewCompiler(dev, cross.SetD())
	if err != nil {
		log.Fatal(err)
	}
	ops := comp.MeasureHEOps()
	fmt.Println("\nsimulated TPUv6e (1 tensor core, Set D: N=2^16, L=51):")
	fmt.Printf("  HE-Add   %10.1f µs\n", ops.Add*1e6)
	fmt.Printf("  HE-Mult  %10.1f µs\n", ops.Mult*1e6)
	fmt.Printf("  Rescale  %10.1f µs\n", ops.Rescale*1e6)
	fmt.Printf("  Rotate   %10.1f µs\n", ops.Rotate*1e6)

	dev.Trace.Reset()
	comp.CostHEMult()
	fmt.Println("\nHE-Mult latency breakdown (Fig. 12 style):")
	fmt.Println(dev.Trace.Breakdown())
}
