// Command quickstart demonstrates the two faces of the CROSS
// reproduction in one run:
//
//  1. the functional HE layer — encrypt two vectors, add, multiply,
//     rotate, and decrypt, verifying against plaintext arithmetic;
//  2. the compiler layer — Compile the same operators for a simulated
//     TPUv6e target, compose them into a Program, and print the
//     resulting Schedule with its paper-style latency breakdown
//     (Fig. 12). The same Compile call accepts a multi-core Pod.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"cross"
)

func main() {
	// --- Functional HE layer ---
	ctx, err := cross.NewContext(cross.ContextOptions{
		LogN: 11, Limbs: 5, Rotations: []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CKKS context: N=2^11, %d slots, %d levels, scale 2^28\n",
		ctx.Slots(), ctx.Params.MaxLevel()+1)

	rng := rand.New(rand.NewSource(42))
	x := make([]complex128, ctx.Slots())
	y := make([]complex128, ctx.Slots())
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
		y[i] = complex(rng.Float64(), 0)
	}

	ctX, err := ctx.EncryptValues(x)
	if err != nil {
		log.Fatal(err)
	}
	ctY, err := ctx.EncryptValues(y)
	if err != nil {
		log.Fatal(err)
	}

	sum, err := ctx.Evaluator.Add(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	prod, err := ctx.MulRescale(ctX, ctY)
	if err != nil {
		log.Fatal(err)
	}
	rot, err := ctx.Evaluator.Rotate(ctX, 1)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, ct *cross.Ciphertext, want func(i int) complex128) {
		got := ctx.DecryptValues(ct)
		var worst float64
		for i := range got {
			if e := cmplx.Abs(got[i] - want(i)); e > worst {
				worst = e
			}
		}
		fmt.Printf("  %-10s slot0 = %7.4f  (max error %.2e)\n", name, real(got[0]), worst)
	}
	fmt.Println("encrypted arithmetic vs plaintext:")
	report("x + y", sum, func(i int) complex128 { return x[i] + y[i] })
	report("x * y", prod, func(i int) complex128 { return x[i] * y[i] })
	report("rot(x,1)", rot, func(i int) complex128 { return x[(i+1)%len(x)] })

	// --- Compiler layer: Compile a target, lower Schedules ---
	comp, err := cross.Compile(cross.NewDevice(cross.TPUv6e()), cross.SetD())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated TPUv6e (1 tensor core, Set D: N=2^16, L=51):")
	for _, sched := range []*cross.Schedule{
		comp.LowerHEAdd(), comp.LowerHEMult(), comp.LowerRescale(), comp.LowerRotate(),
	} {
		fmt.Printf("  %-8s %10.1f µs  (%d kernel launches)\n",
			sched.Op, sched.Total*1e6, sched.Kernels.Total())
	}

	mult := comp.LowerHEMult()
	fmt.Println("\nHE-Mult latency breakdown (Fig. 12 style):")
	fmt.Println(mult.Breakdown())

	// --- Program builder: the workload face of the same API ---
	// The encrypted pipeline above (add, mult, rotate) as one costed
	// schedule, replicated over a 64-request batch.
	prog := cross.NewProgram(comp).HEAdd().HEMult().Rotate(1).Batch(64)
	sched := prog.Lower()
	fmt.Printf("%s:\n  total %.2f ms for %d ops\n", sched.Op, sched.Total*1e3, prog.OpCount())

	// The identical program lowered onto a 4-core pod: one code path,
	// collective cost appears as first-class metadata.
	pod, err := cross.NewPod(cross.TPUv6e(), 4)
	if err != nil {
		log.Fatal(err)
	}
	pcomp, err := cross.Compile(pod, cross.SetD())
	if err != nil {
		log.Fatal(err)
	}
	psched := cross.NewProgram(pcomp).HEAdd().HEMult().Rotate(1).Batch(64).Lower()
	fmt.Printf("  on %s: %.2f ms (%.2f ms collective), %.2f× speedup\n",
		psched.Target, psched.Total*1e3, psched.Collective*1e3, sched.Total/psched.Total)
}
