//go:build !race

package bat

// See race_enabled_test.go.
const raceEnabled = false
