package bat

import (
	"fmt"
	"math/bits"
	"sync"

	"cross/internal/modarith"
)

// MatMulPlan is the offline-compiled BAT form of a high-precision
// (H,V,W)-ModMatMul with a pre-known left operand A (Fig. 8, Alg. 2):
// A is expanded into a dense KH×KV uint8 matrix once at compile time;
// at runtime the right operand is chunk-stacked to KV×W, a single
// low-precision matrix multiplication runs on the matrix engine, and the
// K-row groups of the int32 result are merged and reduced.
type MatMulPlan struct {
	H, V, K int
	m       *modarith.Modulus
	// ADense is the KH×KV compiled left operand (row-major). Each K×K
	// block [hK:(h+1)K, vK:(v+1)K] is DirectScalarBAT(A[h][v]).
	ADense []uint8

	// Scratch pools for the runtime pipeline: the chunk-stacked right
	// operand (uint8) and the int32 partial-sum matrix. Buffers are
	// sized for the last W seen and regrown on demand, so steady-state
	// MulInto calls allocate nothing.
	bPool sync.Pool // *[]uint8
	zPool sync.Pool // *[]int32
}

// getB borrows a chunk-stack buffer of at least size bytes.
func (p *MatMulPlan) getB(size int) *[]uint8 {
	if b, ok := p.bPool.Get().(*[]uint8); ok && cap(*b) >= size {
		*b = (*b)[:size]
		return b
	}
	b := make([]uint8, size)
	return &b
}

// getZ borrows a zeroed partial-sum buffer of at least size entries.
func (p *MatMulPlan) getZ(size int) *[]int32 {
	if z, ok := p.zPool.Get().(*[]int32); ok && cap(*z) >= size {
		*z = (*z)[:size]
		for i := range *z {
			(*z)[i] = 0
		}
		return z
	}
	z := make([]int32, size)
	return &z
}

// OfflineCompileLeft compiles the pre-known left matrix A (flat H×V
// row-major, entries reduced mod q) into its dense low-precision form
// (Alg. 2 OFFLINECOMPILELEFT).
func OfflineCompileLeft(m *modarith.Modulus, a []uint64, h, v int) (*MatMulPlan, error) {
	if err := validateModulus(m.Q); err != nil {
		return nil, err
	}
	if len(a) != h*v {
		return nil, fmt.Errorf("bat: left matrix is %d elements, want %d×%d", len(a), h, v)
	}
	k := NumChunks(m.Bits)
	p := &MatMulPlan{H: h, V: v, K: k, m: m, ADense: make([]uint8, (k*h)*(k*v))}
	kv := k * v
	for hh := 0; hh < h; hh++ {
		for vv := 0; vv < v; vv++ {
			sub, err := DirectScalarBAT(m, a[hh*v+vv])
			if err != nil {
				return nil, err
			}
			for i := 0; i < k; i++ {
				copy(p.ADense[(hh*k+i)*kv+vv*k:(hh*k+i)*kv+vv*k+k], sub.M[i*k:(i+1)*k])
			}
		}
	}
	return p, nil
}

// CompileRight chunk-stacks the runtime right operand B (flat V×W
// row-major) into its KV×W low-precision layout (Alg. 2
// RUNTIMECOMPILERIGHT). This is the 4% "type conversion" overhead the
// paper's Fig. 12 breakdown attributes to BAT.
func (p *MatMulPlan) CompileRight(b []uint64, w int) ([]uint8, error) {
	if len(b) != p.V*w {
		return nil, fmt.Errorf("bat: right matrix is %d elements, want %d×%d", len(b), p.V, w)
	}
	out := make([]uint8, p.K*p.V*w)
	p.compileRightInto(out, b, w)
	return out, nil
}

// compileRightInto chunk-stacks b into dst (len K·V·W, fully
// overwritten).
func (p *MatMulPlan) compileRightInto(dst []uint8, b []uint64, w int) {
	k := p.K
	for vv := 0; vv < p.V; vv++ {
		for ww := 0; ww < w; ww++ {
			x := b[vv*w+ww] % p.m.Q
			for kk := 0; kk < k; kk++ {
				dst[(vv*k+kk)*w+ww] = uint8((x >> (uint(kk) * BP)) & chunkMask)
			}
		}
	}
}

// psumBits returns the accumulator width 2·bp + log2(K·V) the paper
// checks against the engine's accumulator precision (Fig. 8 caption).
func (p *MatMulPlan) psumBits() uint {
	bits := uint(2 * BP)
	for kv := p.K * p.V; kv > 1; kv >>= 1 {
		bits++
	}
	return bits
}

// PsumBits exposes the partial-sum width for plan validation and for the
// simulator's overflow check.
func (p *MatMulPlan) PsumBits() uint { return p.psumBits() }

// MatMulLowPrec runs the KH×KV by KV×W uint8 matrix multiplication with
// int32 accumulation — the exact arithmetic of the MXU systolic array.
// It returns the KH×W int32 partial-sum matrix.
func (p *MatMulPlan) MatMulLowPrec(bDense []uint8, w int) ([]int32, error) {
	return p.MatMulLowPrecParallel(bDense, w, 1)
}

// matMulRows computes output rows [i0, i1) of the low-precision
// product into z — the unit of work both the serial path and the
// parallel row-sharded path execute identically.
func (p *MatMulPlan) matMulRows(bDense []uint8, w, i0, i1 int, z []int32) {
	kv := p.K * p.V
	for i := i0; i < i1; i++ {
		arow := p.ADense[i*kv : (i+1)*kv]
		zrow := z[i*w : (i+1)*w]
		for kk := 0; kk < kv; kk++ {
			av := int32(arow[kk])
			if av == 0 {
				continue
			}
			brow := bDense[kk*w : (kk+1)*w]
			for j := 0; j < w; j++ {
				zrow[j] += av * int32(brow[j])
			}
		}
	}
}

// MergeReduce merges each K-row group of the int32 partial-sum matrix
// into a word and reduces it mod q (Alg. 2 MAIN lines 33–36), returning
// the H×W result of the original high-precision ModMatMul.
func (p *MatMulPlan) MergeReduce(z []int32, w int) []uint64 {
	return p.MergeReduceParallel(z, w, 1)
}

// mergeReduceRows merges output rows [h0, h1) into out. The K partial
// sums live in a fixed stack array (K ≤ 8 for any ≤61-bit modulus at
// BP=8... in practice K ≤ 4 for the ≤32-bit BAT moduli), so concurrent
// row ranges share no state and the merge allocates nothing.
func (p *MatMulPlan) mergeReduceRows(z []int32, w, h0, h1 int, out []uint64) {
	k := p.K
	var psums [8]int32
	for hh := h0; hh < h1; hh++ {
		for ww := 0; ww < w; ww++ {
			for i := 0; i < k; i++ {
				psums[i] = z[(hh*k+i)*w+ww]
			}
			out[hh*w+ww] = p.m.Reduce(ChunkMergeWide(psums[:k]))
		}
	}
}

// Mul executes the full pipeline (Alg. 2 MAIN-FULLMATMUL): compile the
// right operand, run the low-precision MatMul, merge and reduce.
func (p *MatMulPlan) Mul(b []uint64, w int) ([]uint64, error) {
	return p.MulParallel(b, w, 1)
}

// MulInto is Mul with a caller-provided destination (len H·W) and all
// intermediates drawn from the plan's scratch pools: the steady state
// performs zero allocations. workers < 1 is clamped to the serial
// path, matching MulParallel.
func (p *MatMulPlan) MulInto(dst []uint64, b []uint64, w, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if w <= 0 || len(b) != p.V*w {
		return fmt.Errorf("bat: right matrix is %d elements, want %d×%d", len(b), p.V, w)
	}
	if len(dst) != p.H*w {
		return fmt.Errorf("bat: destination is %d elements, want %d×%d", len(dst), p.H, w)
	}
	if p.psumBits() > 31 {
		return fmt.Errorf("bat: partial sums need %d bits, exceeding the 32-bit MXU accumulator", p.psumBits())
	}
	kh, kv := p.K*p.H, p.K*p.V
	bb := p.getB(kv * w)
	p.compileRightInto(*bb, b, w)
	zz := p.getZ(kh * w)
	z := *zz
	if workers == 1 {
		// Serial fast path: no range slices, no goroutine closures —
		// the steady state stays allocation-free.
		p.matMulRows(*bb, w, 0, kh, z)
		p.mergeReduceRows(z, w, 0, p.H, dst)
	} else {
		runRanges(rowRanges(kh, workers), func(start, end int) {
			p.matMulRows(*bb, w, start, end, z)
		})
		runRanges(rowRanges(p.H, workers), func(start, end int) {
			p.mergeReduceRows(z, w, start, end, dst)
		})
	}
	p.bPool.Put(bb)
	p.zPool.Put(zz)
	return nil
}

// ModMatMulDirect is the high-precision reference: out = A·B mod q
// computed directly with word arithmetic, accumulating each output in
// 128 bits via bits.Mul64 and reducing once (lazy accumulation; a
// rare near-overflow fold keeps the high word bounded for ≥62-bit
// running sums). It is both the correctness oracle for the BAT
// pipeline and the VPU-mapped baseline of Tab. V.
func ModMatMulDirect(m *modarith.Modulus, a []uint64, h, v int, b []uint64, w int) []uint64 {
	out := make([]uint64, h*w)
	for i := 0; i < h; i++ {
		arow := a[i*v : (i+1)*v]
		for j := 0; j < w; j++ {
			var hi, lo uint64
			for kk := 0; kk < v; kk++ {
				ph, pl := bits.Mul64(arow[kk], b[kk*w+j])
				var c uint64
				lo, c = bits.Add64(lo, pl, 0)
				hi += ph + c
				if hi >= 1<<62 {
					lo = m.ReduceWide(hi, lo)
					hi = 0
				}
			}
			out[i*w+j] = m.ReduceWide(hi, lo)
		}
	}
	return out
}

// SparseMatMulBaseline multiplies A·B mod q through the GPU-style sparse
// decomposition: every scalar product a·b runs the (2K−1)×K sparse
// Toeplitz MatVecMul of Fig. 7 with its long carry chain. Functionally
// identical to BAT but with the ~43% zero-padding and double-length
// reduction the paper's Tab. V baseline pays for.
func SparseMatMulBaseline(m *modarith.Modulus, a []uint64, h, v int, b []uint64, w int) []uint64 {
	out := make([]uint64, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			var acc uint64
			for kk := 0; kk < v; kk++ {
				acc = m.AddMod(acc, SparseScalarMul(m, a[i*v+kk], b[kk*w+j]))
			}
			out[i*w+j] = acc
		}
	}
	return out
}
