package bat

import (
	"testing"

	"cross/internal/modarith"
)

// Native Go fuzz targets. In normal `go test` runs they execute the
// seed corpus; `go test -fuzz=FuzzX` explores further. Every target
// pins a BAT correctness invariant against the word-level oracle.

func FuzzScalarBATRoutes(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(268369920))
	f.Add(uint64(268369920), uint64(268369920))
	f.Add(uint64(123456789), uint64(987654321))
	m := modarith.MustModulus(268369921)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		a %= m.Q
		b %= m.Q
		want := m.MulMod(a, b)
		direct, err := DirectScalarBAT(m, a)
		if err != nil {
			t.Fatal(err)
		}
		if got := direct.Mul(b); got != want {
			t.Fatalf("DirectScalarBAT(%d).Mul(%d) = %d want %d", a, b, got, want)
		}
		alg5, err := OfflineCompileScalar(m, a)
		if err != nil {
			t.Fatal(err)
		}
		if got := alg5.Mul(b); got != want {
			t.Fatalf("Alg5(%d).Mul(%d) = %d want %d", a, b, got, want)
		}
		if got := SparseScalarMul(m, a, b); got != want {
			t.Fatalf("Sparse(%d, %d) = %d want %d", a, b, got, want)
		}
		if got := Conv1DScalarMul(m, a, b); got != want {
			t.Fatalf("Conv1D(%d, %d) = %d want %d", a, b, got, want)
		}
	})
}

func FuzzChunkRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0) >> 32)
	f.Add(uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, a uint64) {
		a &= (1 << 32) - 1
		if got := ChunkMerge(ChunkDecompose(a, 4)); got != a {
			t.Fatalf("chunk round trip %d -> %d", a, got)
		}
	})
}

func FuzzLazyReduce(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(268369921) * uint64(268369920))
	m := modarith.MustModulus(268369921)
	plan, err := NewLazyReducePlan(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, x uint64) {
		r := plan.Reduce(x)
		if r%m.Q != x%m.Q {
			t.Fatalf("lazy Reduce(%d) = %d: wrong residue", x, r)
		}
		if full := plan.ReduceFull(x); full != x%m.Q {
			t.Fatalf("ReduceFull(%d) = %d want %d", x, full, x%m.Q)
		}
	})
}
