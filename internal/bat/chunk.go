// Package bat implements Basis-Aligned Transformation (§IV-A), the
// paper's technique for converting high-precision modular arithmetic
// into dense low-precision (8-bit) matrix multiplication so that the
// MXU — idle under GPU-style HE kernels — does the heavy lifting.
//
// The package provides, for moduli up to 32 bits (the paper's setting,
// log₂q < 32):
//
//   - chunk decomposition/merging between words and bp-bit digits
//     (Alg. 2 CHUNKDECOMPOSE / CHUNKMERGE);
//   - DirectScalarBAT: the dense K×K matrix of a pre-known scalar
//     (Alg. 2), plus the full Toeplitz-fold-and-carry pipeline of
//     Alg. 5 that derives it from the sparse form;
//   - the BAT ModMatMul (Alg. 2 MAIN): OfflineCompileLeft /
//     RuntimeCompileRight and the KH×KV by KV×W low-precision product;
//   - the SoTA GPU sparse Toeplitz baseline (Fig. 7 left) that BAT is
//     measured against in Tab. V;
//   - the 1-D convolution fallback for two unknown operands (Fig. 16);
//   - BAT lazy modular reduction (§J).
package bat

import "fmt"

// BP is the chunk bit width — the operand precision of the MXU (INT8).
const BP = 8

// chunkMask extracts one bp-bit digit.
const chunkMask = (1 << BP) - 1

// NumChunks returns K = ⌈bits / bp⌉, the number of 8-bit chunks needed
// for a value of the given bit width (Tab. I, K).
func NumChunks(bits uint) int {
	return int((bits + BP - 1) / BP)
}

// ChunkDecompose splits a into k bp-bit digits, least significant first
// (Alg. 2 CHUNKDECOMPOSE).
func ChunkDecompose(a uint64, k int) []uint8 {
	out := make([]uint8, k)
	for i := 0; i < k; i++ {
		out[i] = uint8((a >> (uint(i) * BP)) & chunkMask)
	}
	return out
}

// ChunkDecomposeInto is ChunkDecompose into a caller-provided buffer.
func ChunkDecomposeInto(dst []uint8, a uint64) {
	for i := range dst {
		dst[i] = uint8((a >> (uint(i) * BP)) & chunkMask)
	}
}

// ChunkMerge reassembles digits into a word (Alg. 2 CHUNKMERGE):
// Σ_k a_k · 2^(k·bp).
func ChunkMerge(chunks []uint8) uint64 {
	var a uint64
	for k := len(chunks) - 1; k >= 0; k-- {
		a = a<<BP | uint64(chunks[k])
	}
	return a
}

// ChunkMergeWide reassembles wide (int32) partial sums — the raw MXU
// accumulator outputs — into a word: Σ_k psum_k · 2^(k·bp). The paper's
// carry-add chain (Fig. 7 ❺). Inputs must keep the total below 2^63.
func ChunkMergeWide(psums []int32) uint64 {
	var a uint64
	for k := len(psums) - 1; k >= 0; k-- {
		a = a<<BP + uint64(uint32(psums[k]))
	}
	return a
}

// validateModulus enforces the BAT precondition log₂q ≤ 32 (§V-A: the
// paper selects log₂q < 32 and uses double rescaling beyond).
func validateModulus(q uint64) error {
	if q == 0 || q >= 1<<32 {
		return fmt.Errorf("bat: modulus %d outside BAT's 32-bit operating range", q)
	}
	return nil
}
