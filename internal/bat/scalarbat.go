package bat

import (
	"fmt"

	"cross/internal/modarith"
)

// ScalarPlan is the offline-compiled dense K×K BAT matrix of a pre-known
// scalar a modulo q: multiplying it by the chunk vector of a runtime
// operand b and merging the K partial sums yields a·b mod q (up to one
// final reduction). This is the unit block from which every larger BAT
// operand matrix is tiled (Fig. 8).
type ScalarPlan struct {
	K int
	M []uint8 // K×K row-major: M[i][j] = chunk_i((a·2^(j·bp)) mod q)
	m *modarith.Modulus
}

// DirectScalarBAT compiles the dense matrix directly (Alg. 2
// DIRECTSCALARBAT): column j holds the chunks of (a ≪ j·bp) mod q, so
// every input-basis contribution is pre-folded through the modulus.
func DirectScalarBAT(m *modarith.Modulus, a uint64) (*ScalarPlan, error) {
	if err := validateModulus(m.Q); err != nil {
		return nil, err
	}
	k := NumChunks(m.Bits)
	p := &ScalarPlan{K: k, M: make([]uint8, k*k), m: m}
	a %= m.Q
	for j := 0; j < k; j++ {
		val := m.Reduce(a << (uint(j) * BP)) // shift stays < 2^60 for k≤4
		for i := 0; i < k; i++ {
			p.M[i*k+j] = uint8((val >> (uint(i) * BP)) & chunkMask)
		}
	}
	return p, nil
}

// Mul computes a·b mod q from the compiled plan: a K×1 dense
// MatVecMul in 8-bit (the MXU path) followed by the shortened carry-add
// chain (Fig. 7 ❹→❺) and one final Barrett reduction.
func (p *ScalarPlan) Mul(b uint64) uint64 {
	var chunks [8]uint8
	ChunkDecomposeInto(chunks[:p.K], b%p.m.Q)
	var psums [8]int32
	k := p.K
	for i := 0; i < k; i++ {
		var acc int32
		row := p.M[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			acc += int32(row[j]) * int32(chunks[j])
		}
		psums[i] = acc
	}
	return p.m.Reduce(ChunkMergeWide(psums[:k]))
}

// --- Alg. 5: deriving the dense matrix from the sparse Toeplitz form ---

// ConstructToeplitz builds the sparse (2K−1)×K left matrix of the SoTA
// GPU decomposition (Fig. 7 ❶): X[i+j, j] = a_i. Entries are widened to
// uint64 because the fold-and-carry pipeline temporarily exceeds 8 bits.
func ConstructToeplitz(chunks []uint8) [][]uint64 {
	k := len(chunks)
	x := make([][]uint64, 2*k-1)
	for r := range x {
		x[r] = make([]uint64, k)
	}
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			x[i+j][j] = uint64(chunks[i])
		}
	}
	return x
}

// foldBottomBlock applies the BAT step of Alg. 5: every non-zero entry
// X[K+i, j] of the bottom block contributes X[K+i,j]·2^((K+i)·bp) to the
// product; that contribution is reduced mod q offline and its chunks are
// added back into column j of the top block.
func foldBottomBlock(m *modarith.Modulus, x [][]uint64, k int) bool {
	changed := false
	for r := k; r < 2*k-1; r++ {
		for j := 0; j < k; j++ {
			if x[r][j] == 0 {
				continue
			}
			changed = true
			// proj = (X[r,j] << (r·bp)) mod q, computed exactly via
			// 128-bit reduction since r·bp can reach 48 bits of shift.
			shift := uint(r) * BP
			var hi, lo uint64
			if shift >= 64 {
				hi, lo = x[r][j]<<(shift-64), 0
			} else {
				hi = x[r][j] >> (64 - shift)
				lo = x[r][j] << shift
			}
			proj := m.ReduceWide(hi, lo)
			x[r][j] = 0
			for i := 0; i < k; i++ {
				x[i][j] += (proj >> (uint(i) * BP)) & chunkMask
			}
		}
	}
	return changed
}

// carryPropagate normalises all columns so every entry fits in bp bits
// (Alg. 5 CARRYPROPAGATION), pushing carries to the next row (the next
// output basis).
func carryPropagate(x [][]uint64, k int) {
	rows := 2*k - 1
	for j := 0; j < k; j++ {
		for r := 0; r < rows-1; r++ {
			if x[r][j] > chunkMask {
				carry := x[r][j] >> BP
				x[r][j] &= chunkMask
				x[r+1][j] += carry
			}
		}
		// The top row's carry would leave the matrix; by construction
		// (values < q are folded before carries accumulate) it is zero.
		if x[rows-1][j] > chunkMask {
			panic("bat: carry escaped the Toeplitz matrix")
		}
	}
}

// OfflineCompileScalar runs the full Alg. 5 pipeline — Toeplitz
// construction, bottom-block folding, and carry propagation iterated to
// a fixed point — and returns the resulting dense K×K plan. It is the
// constructive counterpart of DirectScalarBAT; the two compile routes
// may produce different (equally valid) digit matrices, and both satisfy
// Mul(b) = a·b mod q.
func OfflineCompileScalar(m *modarith.Modulus, a uint64) (*ScalarPlan, error) {
	if err := validateModulus(m.Q); err != nil {
		return nil, err
	}
	k := NumChunks(m.Bits)
	x := ConstructToeplitz(ChunkDecompose(a%m.Q, k))
	for iter := 0; ; iter++ {
		if iter > 64 {
			return nil, fmt.Errorf("bat: Alg. 5 fold did not converge for a=%d q=%d", a, m.Q)
		}
		carryPropagate(x, k)
		if !foldBottomBlock(m, x, k) {
			break
		}
	}
	p := &ScalarPlan{K: k, M: make([]uint8, k*k), m: m}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p.M[i*k+j] = uint8(x[i][j])
		}
	}
	return p, nil
}

// --- SoTA GPU sparse baseline (Fig. 7 left) ---

// SparseScalarMul multiplies a·b mod q the way GPU HE libraries
// decompose it (TensorFHE's flow): a sparse (2K−1)×K Toeplitz
// MatVecMul over 8-bit chunks — ~43% zeros — followed by the full-length
// seven-step carry-add chain and a final reduction. It exists as the
// baseline against which BAT's 2× density win is measured.
func SparseScalarMul(m *modarith.Modulus, a, b uint64) uint64 {
	k := NumChunks(m.Bits)
	ach := ChunkDecompose(a%m.Q, k)
	bch := ChunkDecompose(b%m.Q, k)
	x := ConstructToeplitz(ach)
	// psum_r = Σ_j X[r,j]·b_j  (sparse MatVecMul, 12/28 zeros for K=4)
	var z uint64
	for r := 0; r < 2*k-1; r++ {
		var psum uint64
		for j := 0; j < k; j++ {
			psum += x[r][j] * uint64(bch[j])
		}
		// shifted accumulation (carry-add chain); r·bp ≤ 48 for K=4 so
		// the running sum is exactly a·b < 2^64.
		z += psum << (uint(r) * BP)
	}
	return m.Reduce(z)
}

// SparseZeroFraction returns the fraction of structural zeros in the
// sparse Toeplitz operand — 12/28 ≈ 43% for K=4 (Fig. 7), the compute
// and memory waste BAT eliminates.
func SparseZeroFraction(k int) float64 {
	total := (2*k - 1) * k
	nonzero := k * k
	return float64(total-nonzero) / float64(total)
}
