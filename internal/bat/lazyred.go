package bat

import (
	"fmt"

	"cross/internal/modarith"
)

// BAT lazy modular reduction (§J): compress a 64-bit product psum back
// into the 32-bit pipeline range by applying BAT only to the "overflow"
// bytes above bit 32. The high K bytes c_{K..2K-1} are multiplied by the
// precomputed K×K matrix LC[j][k] = chunk_k(2^(8(j+K)) mod q) — a
// low-precision MatMul — and added to the untouched low 32 bits.
//
// The paper evaluates this as the "BAT lazy" reduction of Fig. 13 and
// finds it unprofitable on the TPU (the K=4 reduction dimension starves
// the 128×128 MXU) but profitable on finer-grained engines; the
// simulator reproduces exactly that crossover.

// LazyReducePlan is the compiled LC matrix for one modulus.
type LazyReducePlan struct {
	K  int
	m  *modarith.Modulus
	LC []uint8 // K×K row-major: LC[j][k] = chunk_k(2^(8(j+K)) mod q)
}

// NewLazyReducePlan compiles the reduction matrix for q (log₂q ≤ 32).
func NewLazyReducePlan(m *modarith.Modulus) (*LazyReducePlan, error) {
	if err := validateModulus(m.Q); err != nil {
		return nil, err
	}
	k := NumChunks(m.Bits)
	// The plan compresses values below 2^(16·k ≥ 64 is not needed): the
	// input is a 64-bit psum, so the high part spans bytes k..7; we fold
	// all of them, giving an 8−k row matrix in general. For the paper's
	// K=4 this is exactly the K×K matrix of §J.
	rows := 8 - k
	p := &LazyReducePlan{K: k, m: m, LC: make([]uint8, rows*k)}
	for j := 0; j < rows; j++ {
		shift := uint(j+k) * BP
		var hi, lo uint64
		if shift >= 64 {
			hi, lo = 1<<(shift-64), 0
		} else {
			hi, lo = 0, 1<<shift
		}
		lc := m.ReduceWide(hi, lo) // 2^(8(j+K)) mod q
		for kk := 0; kk < k; kk++ {
			p.LC[j*k+kk] = uint8((lc >> (uint(kk) * BP)) & chunkMask)
		}
	}
	return p, nil
}

// Reduce compresses a 64-bit value into the 32-bit range with the lazy
// guarantee out ≡ x (mod q) and out < 2^32 (not necessarily < q). One
// K-dimension MatVecMul plus the low-word add (§J's final formula).
func (p *LazyReducePlan) Reduce(x uint64) uint64 {
	k := p.K
	low := x & ((1 << (uint(k) * BP)) - 1)
	rows := 8 - k
	var folded uint64
	for j := 0; j < rows; j++ {
		cj := (x >> (uint(j+k) * BP)) & chunkMask
		if cj == 0 {
			continue
		}
		// c_{j+K} · LC_j accumulated chunk-wise (int32 psums on MXU).
		row := p.LC[j*k : (j+1)*k]
		for kk := 0; kk < k; kk++ {
			folded += cj * uint64(row[kk]) << (uint(kk) * BP)
		}
	}
	out := folded + low
	// folded ≤ (8−K)·255·(2^32) ≈ 2^42: one more pass brings it under
	// 2^32 for the paper's K=4 moduli; iterate until it fits.
	for out >= 1<<(uint(k)*BP) && out >= p.m.Q {
		next := out&((1<<(uint(k)*BP))-1) + p.foldHigh(out)
		if next >= out {
			// No progress possible below q·something; finish exactly.
			return p.m.Reduce(out)
		}
		out = next
	}
	return out
}

func (p *LazyReducePlan) foldHigh(x uint64) uint64 {
	k := p.K
	rows := 8 - k
	var folded uint64
	for j := 0; j < rows; j++ {
		cj := (x >> (uint(j+k) * BP)) & chunkMask
		if cj == 0 {
			continue
		}
		row := p.LC[j*k : (j+1)*k]
		for kk := 0; kk < k; kk++ {
			folded += cj * uint64(row[kk]) << (uint(kk) * BP)
		}
	}
	return folded
}

// ReduceFull is Reduce followed by an exact final reduction to [0, q) —
// the Barrett step CROSS appends at the end of a lazy chain (§G).
func (p *LazyReducePlan) ReduceFull(x uint64) uint64 {
	return p.m.Reduce(p.Reduce(x))
}

// MulLazy multiplies two 32-bit-range values and lazily reduces the
// 64-bit product — the ablation datapoint of Fig. 13a.
func (p *LazyReducePlan) MulLazy(a, b uint64) (uint64, error) {
	if a >= 1<<32 || b >= 1<<32 {
		return 0, fmt.Errorf("bat: lazy reduction operands must fit 32 bits")
	}
	return p.Reduce(a * b), nil
}
