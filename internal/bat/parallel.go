package bat

import (
	"fmt"
	"runtime"
	"sync"
)

// Host-side parallelism for the BAT matmul pipeline. Output rows are
// independent (each is an inner product over the shared operands), so
// both the low-precision product and the merge/reduce pass shard their
// row ranges across a goroutine pool. Results are bit-exact versus the
// serial path: every row range runs the identical integer kernel
// (matMulRows / mergeReduceRows) into disjoint output slices, so the
// partition cannot change any value.

// DefaultParallelism is the worker count MulParallel callers typically
// want: one worker per CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// rowRanges splits n rows into ≤ workers contiguous [start, end)
// chunks of near-equal size.
func rowRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// runRanges executes f over each range on its own goroutine.
func runRanges(ranges [][2]int, f func(start, end int)) {
	if len(ranges) == 1 {
		f(ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for _, r := range ranges {
		go func(start, end int) {
			defer wg.Done()
			f(start, end)
		}(r[0], r[1])
	}
	wg.Wait()
}

// MatMulLowPrecParallel is MatMulLowPrec with the KH output rows
// sharded across up to `workers` goroutines. workers ≤ 1 is the serial
// path.
func (p *MatMulPlan) MatMulLowPrecParallel(bDense []uint8, w, workers int) ([]int32, error) {
	if p.psumBits() > 31 {
		return nil, fmt.Errorf("bat: partial sums need %d bits, exceeding the 32-bit MXU accumulator", p.psumBits())
	}
	kh, kv := p.K*p.H, p.K*p.V
	if len(bDense) != kv*w {
		return nil, fmt.Errorf("bat: dense right matrix is %d elements, want %d×%d", len(bDense), kv, w)
	}
	z := make([]int32, kh*w)
	runRanges(rowRanges(kh, workers), func(start, end int) {
		p.matMulRows(bDense, w, start, end, z)
	})
	return z, nil
}

// MergeReduceParallel is MergeReduce with the H output rows sharded
// across up to `workers` goroutines.
func (p *MatMulPlan) MergeReduceParallel(z []int32, w, workers int) []uint64 {
	out := make([]uint64, p.H*w)
	runRanges(rowRanges(p.H, workers), func(start, end int) {
		p.mergeReduceRows(z, w, start, end, out)
	})
	return out
}

// MulParallel executes the full BAT pipeline (Alg. 2 MAIN-FULLMATMUL)
// with the matmul and merge stages row-sharded across up to `workers`
// goroutines. Worker counts below 1 (0, negatives) are invalid and
// clamp to the serial path rather than silently misbehaving; the
// result is bit-identical to Mul for every worker count. Intermediates
// come from the plan's scratch pools — only the returned H×W result is
// a fresh allocation (use MulInto to avoid even that).
func (p *MatMulPlan) MulParallel(b []uint64, w, workers int) ([]uint64, error) {
	if workers < 1 {
		workers = 1
	}
	if w <= 0 || len(b) != p.V*w {
		return nil, fmt.Errorf("bat: right matrix is %d elements, want %d×%d", len(b), p.V, w)
	}
	out := make([]uint64, p.H*w)
	if err := p.MulInto(out, b, w, workers); err != nil {
		return nil, err
	}
	return out, nil
}
