package bat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cross/internal/modarith"
)

// 28-bit NTT-friendly prime, the paper's default log₂q (Tab. IV).
var q28 = modarith.MustModulus(268369921)

// a 31-bit prime to stress the top of BAT's operating range.
var q31 = modarith.MustModulus(2147483647)

func TestChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k := 1 + rng.Intn(8)
		a := rng.Uint64() & ((1 << (uint(k) * BP)) - 1)
		if got := ChunkMerge(ChunkDecompose(a, k)); got != a {
			t.Fatalf("k=%d: merge(decompose(%d)) = %d", k, a, got)
		}
	}
}

func TestNumChunks(t *testing.T) {
	cases := map[uint]int{1: 1, 8: 1, 9: 2, 16: 2, 28: 4, 32: 4, 59: 8}
	for bits, want := range cases {
		if got := NumChunks(bits); got != want {
			t.Errorf("NumChunks(%d) = %d want %d", bits, got, want)
		}
	}
}

func TestChunkMergeWide(t *testing.T) {
	psums := []int32{0x12, 0x3456, 0x789, 0x1}
	want := uint64(0x12) + uint64(0x3456)<<8 + uint64(0x789)<<16 + uint64(0x1)<<24
	if got := ChunkMergeWide(psums); got != want {
		t.Fatalf("ChunkMergeWide = %#x want %#x", got, want)
	}
}

func TestDirectScalarBAT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []*modarith.Modulus{q28, q31} {
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % m.Q
			plan, err := DirectScalarBAT(m, a)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 20; j++ {
				b := rng.Uint64() % m.Q
				if got, want := plan.Mul(b), m.MulMod(a, b); got != want {
					t.Fatalf("q=%d a=%d b=%d: BAT %d want %d", m.Q, a, b, got, want)
				}
			}
		}
	}
}

func TestDirectScalarBATEdgeCases(t *testing.T) {
	for _, a := range []uint64{0, 1, q28.Q - 1, 255, 256, 1 << 27} {
		plan, err := DirectScalarBAT(q28, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []uint64{0, 1, q28.Q - 1, 1 << 20} {
			if got, want := plan.Mul(b), q28.MulMod(a, b); got != want {
				t.Fatalf("a=%d b=%d: %d want %d", a, b, got, want)
			}
		}
	}
}

func TestOfflineCompileScalarMatchesDirect(t *testing.T) {
	// Alg. 5 (Toeplitz + fold + carry) and Alg. 2 (direct) must agree as
	// *functions*, not necessarily as digit matrices.
	rng := rand.New(rand.NewSource(3))
	for _, m := range []*modarith.Modulus{q28, q31} {
		for i := 0; i < 100; i++ {
			a := rng.Uint64() % m.Q
			viaAlg5, err := OfflineCompileScalar(m, a)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 10; j++ {
				b := rng.Uint64() % m.Q
				if got, want := viaAlg5.Mul(b), m.MulMod(a, b); got != want {
					t.Fatalf("q=%d a=%d b=%d: Alg5 %d want %d", m.Q, a, b, got, want)
				}
			}
		}
	}
}

func TestConstructToeplitz(t *testing.T) {
	chunks := []uint8{1, 2, 3, 4}
	x := ConstructToeplitz(chunks)
	if len(x) != 7 || len(x[0]) != 4 {
		t.Fatalf("toeplitz shape %d×%d", len(x), len(x[0]))
	}
	// X[i+j, j] = a_i
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			if x[i+j][j] != uint64(chunks[i]) {
				t.Fatalf("X[%d][%d] = %d want %d", i+j, j, x[i+j][j], chunks[i])
			}
		}
	}
	// Zero fraction is 12/28 ≈ 43% (Fig. 7).
	var zeros int
	for _, row := range x {
		for _, v := range row {
			if v == 0 && true {
				zeros++
			}
		}
	}
	// chunks are nonzero here, so structural zeros only.
	if zeros != 12 {
		t.Fatalf("structural zeros = %d want 12", zeros)
	}
	if f := SparseZeroFraction(4); f < 0.42 || f > 0.44 {
		t.Fatalf("SparseZeroFraction(4) = %f", f)
	}
}

func TestSparseScalarMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range []*modarith.Modulus{q28, q31} {
		for i := 0; i < 300; i++ {
			a, b := rng.Uint64()%m.Q, rng.Uint64()%m.Q
			if got, want := SparseScalarMul(m, a, b), m.MulMod(a, b); got != want {
				t.Fatalf("q=%d SparseScalarMul(%d,%d)=%d want %d", m.Q, a, b, got, want)
			}
		}
	}
}

func TestConv1DScalarMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []*modarith.Modulus{q28, q31} {
		for i := 0; i < 300; i++ {
			a, b := rng.Uint64()%m.Q, rng.Uint64()%m.Q
			if got, want := Conv1DScalarMul(m, a, b), m.MulMod(a, b); got != want {
				t.Fatalf("q=%d Conv1D(%d,%d)=%d want %d", m.Q, a, b, got, want)
			}
		}
	}
}

func TestConv1DVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i], b[i] = rng.Uint64()%q28.Q, rng.Uint64()%q28.Q
	}
	dst := make([]uint64, n)
	Conv1DVecMul(q28, dst, a, b)
	for i := range dst {
		if dst[i] != q28.MulMod(a[i], b[i]) {
			t.Fatalf("Conv1DVecMul[%d] mismatch", i)
		}
	}
}

func TestMatMulPlanMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ h, v, w int }{{1, 1, 1}, {2, 3, 4}, {8, 8, 8}, {16, 5, 7}, {4, 32, 2}}
	for _, m := range []*modarith.Modulus{q28, q31} {
		for _, tc := range cases {
			a := make([]uint64, tc.h*tc.v)
			b := make([]uint64, tc.v*tc.w)
			for i := range a {
				a[i] = rng.Uint64() % m.Q
			}
			for i := range b {
				b[i] = rng.Uint64() % m.Q
			}
			plan, err := OfflineCompileLeft(m, a, tc.h, tc.v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Mul(b, tc.w)
			if err != nil {
				t.Fatal(err)
			}
			want := ModMatMulDirect(m, a, tc.h, tc.v, b, tc.w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d (%d,%d,%d) elem %d: BAT %d direct %d", m.Q, tc.h, tc.v, tc.w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSparseMatMulBaselineMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h, v, w := 4, 6, 5
	a := make([]uint64, h*v)
	b := make([]uint64, v*w)
	for i := range a {
		a[i] = rng.Uint64() % q28.Q
	}
	for i := range b {
		b[i] = rng.Uint64() % q28.Q
	}
	got := SparseMatMulBaseline(q28, a, h, v, b, w)
	want := ModMatMulDirect(q28, a, h, v, b, w)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestMatMulPlanValidation(t *testing.T) {
	wide := modarith.MustModulus(1152921504606830593) // 60-bit
	if _, err := OfflineCompileLeft(wide, []uint64{1}, 1, 1); err == nil {
		t.Error("expected error for >32-bit modulus")
	}
	if _, err := OfflineCompileLeft(q28, []uint64{1, 2, 3}, 2, 2); err == nil {
		t.Error("expected error for shape mismatch")
	}
	plan, err := OfflineCompileLeft(q28, []uint64{1, 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.CompileRight([]uint64{1, 2, 3}, 1); err == nil {
		t.Error("expected error for right shape mismatch")
	}
	if _, err := plan.MatMulLowPrec([]uint8{1}, 1); err == nil {
		t.Error("expected error for dense right shape mismatch")
	}
}

func TestPsumBits(t *testing.T) {
	plan, err := OfflineCompileLeft(q28, make([]uint64, 256), 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	// 2·8 + log2(4·256) = 16 + 10 = 26.
	if got := plan.PsumBits(); got != 26 {
		t.Fatalf("PsumBits = %d want 26", got)
	}
}

func TestLazyReducePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range []*modarith.Modulus{q28, q31} {
		plan, err := NewLazyReducePlan(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			x := rng.Uint64()
			r := plan.Reduce(x)
			if r%m.Q != x%m.Q {
				t.Fatalf("q=%d lazy Reduce(%d) wrong residue", m.Q, x)
			}
			if full := plan.ReduceFull(x); full != x%m.Q {
				t.Fatalf("q=%d ReduceFull(%d) = %d want %d", m.Q, x, full, x%m.Q)
			}
		}
		// Lazy multiply.
		for i := 0; i < 200; i++ {
			a, b := rng.Uint64()%m.Q, rng.Uint64()%m.Q
			r, err := plan.MulLazy(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if r%m.Q != m.MulMod(a, b) {
				t.Fatalf("q=%d MulLazy(%d,%d) wrong residue", m.Q, a, b)
			}
		}
		if _, err := plan.MulLazy(1<<33, 1); err == nil {
			t.Error("expected error for oversized operand")
		}
	}
}

func TestValidateModulusRejectsWide(t *testing.T) {
	wide := modarith.MustModulus(1152921504606830593)
	if _, err := DirectScalarBAT(wide, 1); err == nil {
		t.Error("DirectScalarBAT accepted 60-bit modulus")
	}
	if _, err := OfflineCompileScalar(wide, 1); err == nil {
		t.Error("OfflineCompileScalar accepted 60-bit modulus")
	}
	if _, err := NewLazyReducePlan(wide); err == nil {
		t.Error("NewLazyReducePlan accepted 60-bit modulus")
	}
}

// Property: all four scalar multiplication routes agree.
func TestScalarRoutesAgreeQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= q28.Q
		b %= q28.Q
		want := q28.MulMod(a, b)
		direct, err := DirectScalarBAT(q28, a)
		if err != nil {
			return false
		}
		alg5, err := OfflineCompileScalar(q28, a)
		if err != nil {
			return false
		}
		return direct.Mul(b) == want &&
			alg5.Mul(b) == want &&
			SparseScalarMul(q28, a, b) == want &&
			Conv1DScalarMul(q28, a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
