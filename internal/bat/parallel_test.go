package bat

import (
	"math/rand"
	"runtime"
	"testing"

	"cross/internal/modarith"
)

// The Parallelism guard for the BAT pipeline: every worker count must
// reproduce the serial result bit for bit (ISSUE acceptance).
func TestMulParallelBitExact(t *testing.T) {
	m := modarith.MustModulus(268369921)
	rng := rand.New(rand.NewSource(5))
	h, v, w := 33, 17, 29 // deliberately not worker-divisible
	a := make([]uint64, h*v)
	b := make([]uint64, v*w)
	for i := range a {
		a[i] = rng.Uint64() % m.Q
	}
	for i := range b {
		b[i] = rng.Uint64() % m.Q
	}
	plan, err := OfflineCompileLeft(m, a, h, v)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plan.Mul(b, w)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ModMatMulDirect(m, a, h, v, b, w)

	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		got, err := plan.MulParallel(b, w, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: element %d = %d, serial %d", workers, i, got[i], serial[i])
			}
			if got[i] != oracle[i] {
				t.Fatalf("workers=%d: element %d = %d, oracle %d", workers, i, got[i], oracle[i])
			}
		}
	}
}

func TestMulParallelValidation(t *testing.T) {
	m := modarith.MustModulus(268369921)
	plan, err := OfflineCompileLeft(m, []uint64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.MulParallel([]uint64{1, 2, 3}, 2, 4); err == nil {
		t.Error("expected size-mismatch error")
	}
	if _, err := plan.MatMulLowPrecParallel(make([]uint8, 3), 2, 4); err == nil {
		t.Error("expected dense size-mismatch error")
	}
}

func TestRowRanges(t *testing.T) {
	for _, tc := range []struct{ n, workers, want int }{
		{10, 4, 4}, {3, 8, 3}, {7, 1, 1}, {0, 4, 0}, {16, 0, 1},
	} {
		ranges := rowRanges(tc.n, tc.workers)
		if len(ranges) > tc.want && tc.want > 0 {
			t.Errorf("rowRanges(%d,%d) = %d chunks, want ≤ %d", tc.n, tc.workers, len(ranges), tc.want)
		}
		covered := 0
		prevEnd := 0
		for _, r := range ranges {
			if r[0] != prevEnd {
				t.Errorf("rowRanges(%d,%d): gap before %v", tc.n, tc.workers, r)
			}
			covered += r[1] - r[0]
			prevEnd = r[1]
		}
		if covered != tc.n {
			t.Errorf("rowRanges(%d,%d) covers %d rows", tc.n, tc.workers, covered)
		}
	}
}
