package bat

import (
	"math/rand"
	"runtime"
	"testing"

	"cross/internal/modarith"
)

// The Parallelism guard for the BAT pipeline: every worker count must
// reproduce the serial result bit for bit (ISSUE acceptance).
func TestMulParallelBitExact(t *testing.T) {
	m := modarith.MustModulus(268369921)
	rng := rand.New(rand.NewSource(5))
	h, v, w := 33, 17, 29 // deliberately not worker-divisible
	a := make([]uint64, h*v)
	b := make([]uint64, v*w)
	for i := range a {
		a[i] = rng.Uint64() % m.Q
	}
	for i := range b {
		b[i] = rng.Uint64() % m.Q
	}
	plan, err := OfflineCompileLeft(m, a, h, v)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plan.Mul(b, w)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ModMatMulDirect(m, a, h, v, b, w)

	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		got, err := plan.MulParallel(b, w, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: element %d = %d, serial %d", workers, i, got[i], serial[i])
			}
			if got[i] != oracle[i] {
				t.Fatalf("workers=%d: element %d = %d, oracle %d", workers, i, got[i], oracle[i])
			}
		}
	}
}

func TestMulParallelValidation(t *testing.T) {
	m := modarith.MustModulus(268369921)
	plan, err := OfflineCompileLeft(m, []uint64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.MulParallel([]uint64{1, 2, 3}, 2, 4); err == nil {
		t.Error("expected size-mismatch error")
	}
	if _, err := plan.MatMulLowPrecParallel(make([]uint8, 3), 2, 4); err == nil {
		t.Error("expected dense size-mismatch error")
	}
}

func TestRowRanges(t *testing.T) {
	for _, tc := range []struct{ n, workers, want int }{
		{10, 4, 4}, {3, 8, 3}, {7, 1, 1}, {0, 4, 0}, {16, 0, 1},
	} {
		ranges := rowRanges(tc.n, tc.workers)
		if len(ranges) > tc.want && tc.want > 0 {
			t.Errorf("rowRanges(%d,%d) = %d chunks, want ≤ %d", tc.n, tc.workers, len(ranges), tc.want)
		}
		covered := 0
		prevEnd := 0
		for _, r := range ranges {
			if r[0] != prevEnd {
				t.Errorf("rowRanges(%d,%d): gap before %v", tc.n, tc.workers, r)
			}
			covered += r[1] - r[0]
			prevEnd = r[1]
		}
		if covered != tc.n {
			t.Errorf("rowRanges(%d,%d) covers %d rows", tc.n, tc.workers, covered)
		}
	}
}

// TestMulParallelClampsInvalidWorkers is the error-path contract of
// MulParallel: zero and negative worker counts clamp to the serial
// path and stay bit-identical to Mul.
func TestMulParallelClampsInvalidWorkers(t *testing.T) {
	m := modarith.MustModulus(268369921)
	rng := rand.New(rand.NewSource(13))
	h, v, w := 8, 8, 8
	a := make([]uint64, h*v)
	x := make([]uint64, v*w)
	for i := range a {
		a[i] = rng.Uint64() % m.Q
	}
	for i := range x {
		x[i] = rng.Uint64() % m.Q
	}
	plan, err := OfflineCompileLeft(m, a, h, v)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Mul(x, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -1, -42} {
		got, err := plan.MulParallel(x, w, workers)
		if err != nil {
			t.Fatalf("MulParallel(workers=%d) errored: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MulParallel(workers=%d) diverges at %d", workers, i)
			}
		}
	}
}

// TestMulIntoZeroAllocsSteadyState pins the pooled pipeline's
// allocation-free contract (after one warmup to populate the pools).
func TestMulIntoZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; pooled paths cannot hold 0 allocs/op")
	}
	m := modarith.MustModulus(268369921)
	rng := rand.New(rand.NewSource(14))
	h, v, w := 16, 16, 16
	a := make([]uint64, h*v)
	x := make([]uint64, v*w)
	for i := range a {
		a[i] = rng.Uint64() % m.Q
	}
	for i := range x {
		x[i] = rng.Uint64() % m.Q
	}
	plan, err := OfflineCompileLeft(m, a, h, v)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, h*w)
	if err := plan.MulInto(dst, x, w, 1); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := plan.MulInto(dst, x, w, 1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("MulInto allocates %.2f/op, want 0", avg)
	}
}

// TestMulRejectsInvalidWidth pins the error-return contract on bad w:
// non-positive widths must error, never panic (regression guard for
// the MulInto refactor).
func TestMulRejectsInvalidWidth(t *testing.T) {
	m := modarith.MustModulus(268369921)
	a := make([]uint64, 4)
	plan, err := OfflineCompileLeft(m, a, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{-1, 0} {
		if _, err := plan.Mul(a, w); err == nil {
			t.Fatalf("Mul(w=%d) should error", w)
		}
		if _, err := plan.MulParallel(a, w, 2); err == nil {
			t.Fatalf("MulParallel(w=%d) should error", w)
		}
		if err := plan.MulInto(make([]uint64, 4), a, w, 1); err == nil {
			t.Fatalf("MulInto(w=%d) should error", w)
		}
	}
}
