package bat

import "cross/internal/modarith"

// Fallback path for products of two runtime (unknown) operands (§H,
// Fig. 16): BAT needs a pre-known operand to fold the modulus offline,
// so when both inputs are fresh data CROSS schedules the chunk-wise
// multiplication as a 1-D convolution over the 2K−1 output bases,
// followed by the temporal shift-and-add chain and a final reduction.

// Conv1DScalarMul multiplies a·b mod q via the 1-D convolution schedule:
// pad a's chunk vector with K−1 zeros on both sides, slide b's reversed
// chunk vector across it over 2K−1 temporal steps, and shift-accumulate
// the partial sums (Fig. 16 ❶–❸).
func Conv1DScalarMul(m *modarith.Modulus, a, b uint64) uint64 {
	k := NumChunks(m.Bits)
	ach := ChunkDecompose(a%m.Q, k)
	bch := ChunkDecompose(b%m.Q, k)

	// padded a: K−1 zeros, chunks, K−1 zeros.
	padded := make([]uint64, k-1+k+k-1)
	for i, c := range ach {
		padded[k-1+i] = uint64(c)
	}

	var z uint64
	for step := 0; step < 2*k-1; step++ {
		// psum_step = Σ_j padded[step+j]·b_{K−1−j}: each chunk-wise
		// product is ≤ (2^bp−1)², the reduction of K terms adds
		// log2(K) bits — 18 bits total for K=4 (Fig. 16 ❷).
		var psum uint64
		for j := 0; j < k; j++ {
			psum += padded[step+j] * uint64(bch[k-1-j])
		}
		z += psum << (uint(step) * BP)
	}
	return m.Reduce(z)
}

// Conv1DVecMul applies the convolution schedule element-wise to two
// runtime vectors — the shape CROSS uses for ciphertext×ciphertext
// VecModMul when neither side is a compile-time parameter.
func Conv1DVecMul(m *modarith.Modulus, dst, a, b []uint64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("bat: vector length mismatch")
	}
	for i := range dst {
		dst[i] = Conv1DScalarMul(m, a[i], b[i])
	}
}
