// Package refdata embeds the published baseline numbers the paper
// compares against. The paper itself does not re-run OpenFHE, WarpDrive,
// FIDESlib, FAB, HEAP, Cheddar, BASALISC, or CraterLake — it quotes
// their publications (the gray rows of Tab. VIII, the columns of
// Tab. VII, Tab. IX, and the device landscape of Fig. 5) and scales TPU
// tensor-core counts to match each platform's power envelope (§V-A).
// This package reproduces that methodology: quoted numbers in, ratio
// tables out.
package refdata

// HEBaseline is one comparison platform's published HE-operator
// latencies (µs) under its own best security configuration (Tab. VIII
// gray rows).
type HEBaseline struct {
	Name     string
	Platform string
	Config   string  // L, log2q, dnum as printed in Tab. VIII
	PowerW   float64 // platform TDP used for the power-matched scaling
	// Latencies in µs; 0 means not reported (N/A).
	Add, Mult, Rescale, Rotate float64
	// TPU tensor cores whose summed power ≈ PowerW (§V-A: 4 TCs vs
	// A100/U280/ASICs, 2 vs CPU, 8 vs RTX4090/HEAP).
	MatchedCores int
	// CrossConfig is the CROSS-side security configuration used in the
	// power-matched comparison (paper chooses the double-rescaling
	// equivalent of the baseline's parameters).
	CrossL, CrossDnum int
	CrossLogN         int
}

// HEBaselines returns the Tab. VIII comparison set (public devices
// first, then the unavailable ASICs).
func HEBaselines() []HEBaseline {
	return []HEBaseline{
		{Name: "OpenFHE", Platform: "AMD 9950X3D (CPU)", Config: "51,28,3", PowerW: 170,
			Add: 15390, Mult: 417651, Rescale: 22670, Rotate: 397798, MatchedCores: 2, CrossL: 51, CrossDnum: 3, CrossLogN: 16},
		{Name: "FIDESlib", Platform: "RTX 4090 (GPU)", Config: "30,59,3", PowerW: 450,
			Add: 51, Mult: 1084, Rescale: 156, Rotate: 1107, MatchedCores: 8, CrossL: 60, CrossDnum: 3, CrossLogN: 16},
		{Name: "Cheddar", Platform: "RTX 4090 (GPU)", Config: "48,≤31,12", PowerW: 450,
			Add: 48, Mult: 533, Rescale: 68, Rotate: 476, MatchedCores: 8, CrossL: 48, CrossDnum: 3, CrossLogN: 16},
		{Name: "WarpDrive", Platform: "A100 (GPU)", Config: "34,28,?", PowerW: 400,
			Add: 61, Mult: 4284, Rescale: 241, Rotate: 5659, MatchedCores: 4, CrossL: 36, CrossDnum: 3, CrossLogN: 16},
		{Name: "FAB", Platform: "Alveo U280 (FPGA)", Config: "32,52,4", PowerW: 225,
			Add: 40, Mult: 1710, Rescale: 190, Rotate: 1570, MatchedCores: 4, CrossL: 64, CrossDnum: 4, CrossLogN: 16},
		{Name: "HEAP", Platform: "8×U280 (FPGA)", Config: "N=2^13,logQ=216", PowerW: 1800,
			Add: 1, Mult: 28, Rescale: 10, Rotate: 25, MatchedCores: 8, CrossL: 8, CrossDnum: 3, CrossLogN: 13},
		{Name: "BASALISC", Platform: "HE ASIC", Config: "32,40,3", PowerW: 160,
			Add: 8, Mult: 312, Rescale: 0, Rotate: 313, MatchedCores: 4, CrossL: 47, CrossDnum: 3, CrossLogN: 16},
		{Name: "CraterLake", Platform: "HE ASIC", Config: "51,28,3", PowerW: 320,
			Add: 9, Mult: 35, Rescale: 9, Rotate: 27, MatchedCores: 4, CrossL: 51, CrossDnum: 3, CrossLogN: 16},
	}
}

// PaperEfficiencyRatios quotes the paper's headline throughput-per-watt
// improvements over each public baseline (abstract / Tab. VIII footer),
// keyed by baseline name: geometric mean across HE operators.
var PaperEfficiencyRatios = map[string]float64{
	"OpenFHE":   451,
	"WarpDrive": 7.81,
	"FIDESlib":  1.83,
	"FAB":       1.31,
	"HEAP":      1.86,
	"Cheddar":   1.15,
}

// NTTBaseline is one row of Tab. VII (kNTT/s at three degrees).
type NTTBaseline struct {
	Name     string
	Platform string
	// Throughput in kNTT/s for N = 2^12, 2^13, 2^14.
	KNTTs [3]float64
}

// NTTBaselines returns the published GPU NTT-throughput rows of
// Tab. VII.
func NTTBaselines() []NTTBaseline {
	return []NTTBaseline{
		{Name: "TensorFHE+", Platform: "A100", KNTTs: [3]float64{1116, 546, 276}},
		{Name: "WarpDrive", Platform: "A100", KNTTs: [3]float64{12181, 4675, 2088}},
	}
}

// PaperNTTTPU quotes the paper's measured TPU rows of Tab. VII
// (kNTT/s for N = 2^12, 2^13, 2^14 on the listed multi-core setups).
var PaperNTTTPU = map[string][3]float64{
	"TPUv4":  {1284, 323, 75},
	"TPUv5e": {4878, 1276, 223},
	"TPUv5p": {7274, 1812, 407},
	"TPUv6e": {14668, 3850, 793},
}

// BootstrapBaseline is one column of Tab. IX (packed bootstrapping
// latency, ms).
type BootstrapBaseline struct {
	Name      string
	Platform  string
	LatencyMs float64
}

// BootstrapBaselines returns the Tab. IX comparison points.
func BootstrapBaselines() []BootstrapBaseline {
	return []BootstrapBaseline{
		{Name: "FIDESlib", Platform: "RTX 4090", LatencyMs: 169},
		{Name: "Cheddar", Platform: "RTX 4090", LatencyMs: 31.6},
		{Name: "CraterLake", Platform: "HE ASIC", LatencyMs: 3.91},
	}
}

// PaperBootstrapTPU quotes the paper's estimated TPU bootstrapping
// latencies (ms, Tab. IX).
var PaperBootstrapTPU = map[string]float64{
	"TPUv4":  129.8,
	"TPUv5e": 59.2,
	"TPUv5p": 68.3,
	"TPUv6e": 21.5,
}

// DevicePoint is one point of the Fig. 5 efficiency landscape.
type DevicePoint struct {
	Name     string
	Class    string // "GPU", "AI ASIC", "FPGA"
	PowerW   float64
	INT8TOPs float64
}

// DeviceLandscape returns the Fig. 5 scatter (public spec-sheet values).
func DeviceLandscape() []DevicePoint {
	return []DevicePoint{
		{"AMD MI100", "GPU", 300, 184},
		{"NVIDIA A100", "GPU", 400, 624},
		{"AMD Alveo U280", "FPGA", 225, 24.5},
		{"TPUv4", "AI ASIC", 192, 275},
		{"MTIA", "AI ASIC", 25, 102},
		{"AMD MI250X", "GPU", 560, 383},
		{"NVIDIA H100", "GPU", 700, 1979},
		{"NVIDIA L40s", "GPU", 350, 733},
		{"TPU v5e", "AI ASIC", 170, 394},
		{"MTIA v2", "AI ASIC", 90, 354},
		{"AMD MI300X", "GPU", 750, 1307},
		{"NVIDIA B100", "GPU", 700, 3500},
		{"NVIDIA RTX 4090", "GPU", 450, 661},
		{"NVIDIA GB200", "GPU", 1200, 5000},
		{"TPU v6e", "AI ASIC", 170, 918},
	}
}

// PaperMNIST quotes the §V-D MNIST result: 270 ms amortised inference,
// 10× over Orion, 98% accuracy.
type PaperMNIST struct{}

// MNISTLatencyMs is the paper's amortised per-image latency on v6e-8.
const MNISTLatencyMs = 270.0

// OrionMNISTLatencyMs is the Orion baseline the paper compares against.
const OrionMNISTLatencyMs = 2700.0

// HELRIterationMs is the paper's per-iteration logistic-regression
// latency on one v6e tensor core (§V-D).
const HELRIterationMs = 84.0
