package refdata

import "testing"

func TestHEBaselinesComplete(t *testing.T) {
	bs := HEBaselines()
	if len(bs) != 8 {
		t.Fatalf("expected 8 Tab. VIII baselines, got %d", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if names[b.Name] {
			t.Errorf("duplicate baseline %q", b.Name)
		}
		names[b.Name] = true
		if b.Add <= 0 || b.Mult <= 0 || b.Rotate <= 0 {
			t.Errorf("%s: missing core latencies", b.Name)
		}
		if b.PowerW <= 0 || b.MatchedCores <= 0 {
			t.Errorf("%s: missing power-matching data", b.Name)
		}
		if b.CrossL <= 0 || b.CrossDnum <= 0 {
			t.Errorf("%s: missing CROSS config", b.Name)
		}
	}
	// BASALISC does not report Rescale (N/A in Tab. VIII).
	for _, b := range bs {
		if b.Name == "BASALISC" && b.Rescale != 0 {
			t.Error("BASALISC rescale should be unreported")
		}
	}
}

func TestEfficiencyRatiosCoverPublicDevices(t *testing.T) {
	for _, name := range []string{"OpenFHE", "WarpDrive", "FIDESlib", "FAB", "HEAP", "Cheddar"} {
		if PaperEfficiencyRatios[name] <= 1 {
			t.Errorf("paper ratio for %s missing or ≤ 1", name)
		}
	}
	// The ordering from the abstract: OpenFHE ≫ WarpDrive > HEAP >
	// FIDESlib > FAB > Cheddar.
	r := PaperEfficiencyRatios
	if !(r["OpenFHE"] > r["WarpDrive"] && r["WarpDrive"] > r["HEAP"] &&
		r["HEAP"] > r["FIDESlib"] && r["FIDESlib"] > r["FAB"] && r["FAB"] > r["Cheddar"]) {
		t.Error("paper ratio ordering corrupted")
	}
}

func TestNTTBaselines(t *testing.T) {
	for _, b := range NTTBaselines() {
		for i, v := range b.KNTTs {
			if v <= 0 {
				t.Errorf("%s degree index %d missing", b.Name, i)
			}
		}
		// Throughput falls with degree.
		if !(b.KNTTs[0] > b.KNTTs[1] && b.KNTTs[1] > b.KNTTs[2]) {
			t.Errorf("%s throughput not monotone in degree", b.Name)
		}
	}
	for name, row := range PaperNTTTPU {
		if !(row[0] > row[1] && row[1] > row[2]) {
			t.Errorf("paper TPU row %s not monotone", name)
		}
	}
	// The headline: v6e beats WarpDrive at N=2^12 by 1.2×.
	wd := NTTBaselines()[1]
	ratio := PaperNTTTPU["TPUv6e"][0] / wd.KNTTs[0]
	if ratio < 1.1 || ratio > 1.3 {
		t.Errorf("v6e/WarpDrive NTT ratio %.2f drifted from the paper's 1.2×", ratio)
	}
}

func TestBootstrapBaselines(t *testing.T) {
	bs := BootstrapBaselines()
	if len(bs) != 3 {
		t.Fatalf("expected 3 bootstrap baselines")
	}
	// Paper: v6e-8 = 21.5 ms, 1.5× over Cheddar, 7.9× under FIDESlib.
	v6e := PaperBootstrapTPU["TPUv6e"]
	if r := bs[1].LatencyMs / v6e; r < 1.3 || r > 1.7 {
		t.Errorf("Cheddar/v6e bootstrap ratio %.2f drifted from 1.5×", r)
	}
	if r := bs[0].LatencyMs / v6e; r < 7.5 || r > 8.3 {
		t.Errorf("FIDESlib/v6e bootstrap ratio %.2f drifted from 7.9×", r)
	}
}

func TestDeviceLandscape(t *testing.T) {
	pts := DeviceLandscape()
	if len(pts) != 15 {
		t.Fatalf("Fig. 5 should have 15 devices, got %d", len(pts))
	}
	classes := map[string]int{}
	var bestGPU, bestASIC float64
	for _, p := range pts {
		if p.PowerW <= 0 || p.INT8TOPs <= 0 {
			t.Errorf("%s: missing data", p.Name)
		}
		classes[p.Class]++
		eff := p.INT8TOPs / p.PowerW
		switch p.Class {
		case "GPU":
			if eff > bestGPU {
				bestGPU = eff
			}
		case "AI ASIC":
			if eff > bestASIC {
				bestASIC = eff
			}
		}
	}
	if classes["GPU"] == 0 || classes["AI ASIC"] == 0 || classes["FPGA"] == 0 {
		t.Error("Fig. 5 classes incomplete")
	}
	// Fig. 5's takeaway: AI ASICs sit on the better TOPs/W frontier.
	if bestASIC <= bestGPU*0.8 {
		t.Errorf("AI ASIC frontier (%.2f TOPs/W) not competitive with GPUs (%.2f)", bestASIC, bestGPU)
	}
}

func TestWorkloadConstants(t *testing.T) {
	if MNISTLatencyMs != 270 || OrionMNISTLatencyMs/MNISTLatencyMs != 10 {
		t.Error("MNIST constants drifted from §V-D")
	}
	if HELRIterationMs != 84 {
		t.Error("HELR constant drifted from §V-D")
	}
}
