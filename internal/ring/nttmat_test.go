package ring

import (
	"math/rand"
	"testing"
)

func TestMatNTTPlanValidation(t *testing.T) {
	r := testRing(t, 64, 1)
	if _, err := NewMatNTTPlan(r, 8, 4, LayoutDigitSwap); err == nil {
		t.Error("expected error for split not covering N")
	}
	if _, err := NewMatNTTPlan(r, 64, 1, LayoutDigitSwap); err == nil {
		t.Error("expected error for degenerate split factor")
	}
	if _, err := NewMatNTTPlan(r, 8, 8, LayoutNatural); err == nil {
		t.Error("expected error for natural layout")
	}
	if _, err := NewMatNTTPlan(r, 8, 8, LayoutDigitSwap); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestMatNTTDigitSwapMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct{ n, r, c int }{
		{16, 4, 4}, {32, 4, 8}, {32, 8, 4}, {256, 16, 16}, {256, 4, 64},
	}
	for _, tc := range cases {
		rg := testRing(t, tc.n, 2)
		plan, err := NewMatNTTPlan(rg, tc.r, tc.c, LayoutDigitSwap)
		if err != nil {
			t.Fatal(err)
		}
		p := randPoly(rng, rg)
		for i := range rg.Moduli {
			naive := rg.NTTNaiveLimb(i, p.Coeffs[i])
			out := make([]uint64, tc.n)
			plan.ForwardLimb(i, p.Coeffs[i], out)
			// Layout: out[j2·R + j1] = naive[j2 + C·j1].
			for j2 := 0; j2 < tc.c; j2++ {
				for j1 := 0; j1 < tc.r; j1++ {
					if out[j2*tc.r+j1] != naive[j2+tc.c*j1] {
						t.Fatalf("N=%d (R=%d,C=%d) limb %d: out[%d,%d] = %d want %d",
							tc.n, tc.r, tc.c, i, j2, j1, out[j2*tc.r+j1], naive[j2+tc.c*j1])
					}
				}
			}
		}
	}
}

func TestMatNTTBitRevMatchesRadix2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ n, r, c int }{
		{16, 4, 4}, {64, 8, 8}, {256, 8, 32}, {1024, 32, 32},
	}
	for _, tc := range cases {
		rg := testRing(t, tc.n, 2)
		plan, err := NewMatNTTPlan(rg, tc.r, tc.c, LayoutBitRev)
		if err != nil {
			t.Fatal(err)
		}
		p := randPoly(rng, rg)
		for i := range rg.Moduli {
			want := append([]uint64(nil), p.Coeffs[i]...)
			rg.NTTLimb(i, want) // radix-2 CT, bit-reversed output
			got := make([]uint64, tc.n)
			plan.ForwardLimb(i, p.Coeffs[i], got)
			for k := 0; k < tc.n; k++ {
				if got[k] != want[k] {
					t.Fatalf("N=%d (R=%d,C=%d) limb %d slot %d: MAT %d, radix-2 %d",
						tc.n, tc.r, tc.c, i, k, got[k], want[k])
				}
			}
		}
	}
}

func TestMatNTTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, order := range []Layout{LayoutDigitSwap, LayoutBitRev} {
		for _, tc := range []struct{ n, r, c int }{{64, 8, 8}, {512, 8, 64}, {512, 64, 8}} {
			rg := testRing(t, tc.n, 3)
			plan, err := NewMatNTTPlan(rg, tc.r, tc.c, order)
			if err != nil {
				t.Fatal(err)
			}
			p := randPoly(rng, rg)
			orig := p.CopyNew()
			plan.Forward(p)
			plan.Inverse(p)
			if !p.Equal(orig) {
				t.Fatalf("N=%d (R=%d,C=%d) order=%v: forward∘inverse != id", tc.n, tc.r, tc.c, order)
			}
		}
	}
}

func TestMatNTTBitRevInteropWithRadix2Inverse(t *testing.T) {
	// A polynomial forward-transformed by the MAT bit-rev plan must be
	// invertible by the radix-2 INTT, proving true interoperability.
	rng := rand.New(rand.NewSource(13))
	rg := testRing(t, 256, 2)
	plan, err := NewMatNTTPlan(rg, 16, 16, LayoutBitRev)
	if err != nil {
		t.Fatal(err)
	}
	p := randPoly(rng, rg)
	orig := p.CopyNew()
	plan.Forward(p)
	rg.INTT(p)
	if !p.Equal(orig) {
		t.Fatal("radix-2 INTT does not invert MAT bitrev forward")
	}
}

func TestForward4StepNaturalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rg := testRing(t, 128, 2)
	plan, err := NewMatNTTPlan(rg, 8, 16, LayoutDigitSwap)
	if err != nil {
		t.Fatal(err)
	}
	p := randPoly(rng, rg)
	for i := range rg.Moduli {
		naive := rg.NTTNaiveLimb(i, p.Coeffs[i])
		out := make([]uint64, rg.N)
		plan.Forward4Step(i, p.Coeffs[i], out)
		for j := range out {
			if out[j] != naive[j] {
				t.Fatalf("limb %d slot %d: 4-step %d naive %d", i, j, out[j], naive[j])
			}
		}
		back := make([]uint64, rg.N)
		plan.Inverse4Step(i, out, back)
		for j := range back {
			if back[j] != p.Coeffs[i][j] {
				t.Fatalf("limb %d: Inverse4Step round trip failed at %d", i, j)
			}
		}
	}
}

func TestForward4StepPanicsOnBitRevPlan(t *testing.T) {
	rg := testRing(t, 64, 1)
	plan, err := NewMatNTTPlan(rg, 8, 8, LayoutBitRev)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	plan.Forward4Step(0, make([]uint64, 64), make([]uint64, 64))
}

func TestMatNTTInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rg := testRing(t, 64, 2)
	plan, err := NewMatNTTPlan(rg, 8, 8, LayoutDigitSwap)
	if err != nil {
		t.Fatal(err)
	}
	p := randPoly(rng, rg)
	want := make([]uint64, 64)
	plan.ForwardLimb(0, p.Coeffs[0], want)
	plan.ForwardLimb(0, p.Coeffs[0], p.Coeffs[0]) // in-place
	for k := range want {
		if p.Coeffs[0][k] != want[k] {
			t.Fatal("in-place forward differs from out-of-place")
		}
	}
}

func TestLayoutString(t *testing.T) {
	for l, want := range map[Layout]string{
		LayoutNatural: "natural", LayoutBitRev: "bitrev",
		LayoutDigitSwap: "digitswap", Layout(9): "unknown",
	} {
		if l.String() != want {
			t.Errorf("Layout(%d).String() = %q want %q", l, l.String(), want)
		}
	}
}

func TestMatricesAccessors(t *testing.T) {
	rg := testRing(t, 64, 1)
	plan, err := NewMatNTTPlan(rg, 8, 8, LayoutDigitSwap)
	if err != nil {
		t.Fatal(err)
	}
	t1, tw, t3 := plan.Matrices(0)
	if len(t1) != 64 || len(tw) != 64 || len(t3) != 64 {
		t.Fatalf("matrix sizes %d %d %d", len(t1), len(tw), len(t3))
	}
	t3i, twi, t1i := plan.InverseMatrices(0)
	if len(t3i) != 64 || len(twi) != 64 || len(t1i) != 64 {
		t.Fatal("inverse matrix sizes")
	}
	// T3 must be symmetric: (ω^C)^{rj} = (ω^C)^{jr}.
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if t3[r*8+c] != t3[c*8+r] {
				t.Fatal("T3 not symmetric")
			}
		}
	}
}
