package ring

import "fmt"

// Automorphisms of R_Q: τ_t : a(X) ↦ a(X^t) for odd t (invertible mod
// 2N). HE rotations and conjugation are built from these maps (§III-D2).
// The paper profiles automorphism as the worst-case permutation kernel
// on TPUs — the one reordering MAT cannot always embed into computation
// (Fig. 12: 21% of Rotate latency).

// checkGaloisElement validates that t is a legal automorphism exponent.
func (r *Ring) checkGaloisElement(t uint64) error {
	if t%2 == 0 || t >= uint64(2*r.N) {
		return fmt.Errorf("ring: galois element %d must be odd and < 2N=%d", t, 2*r.N)
	}
	return nil
}

// AutomorphismCoeff applies τ_t in the coefficient domain:
// coefficient a_i moves to slot (t·i mod 2N), negated when the exponent
// wraps past N (since X^N = −1). out must not alias in.
func (r *Ring) AutomorphismCoeff(in, out *Poly, t uint64) error {
	if err := r.checkGaloisElement(t); err != nil {
		return err
	}
	n := uint64(r.N)
	twoN := 2 * n
	for l := 0; l <= in.Level() && l <= out.Level(); l++ {
		m := r.Moduli[l]
		src, dst := in.Coeffs[l], out.Coeffs[l]
		for i := uint64(0); i < n; i++ {
			e := (i * t) % twoN
			if e < n {
				dst[e] = src[i]
			} else {
				dst[e-n] = m.NegMod(src[i])
			}
		}
	}
	return nil
}

// AutomorphismNTTIndex returns the slot permutation implementing τ_t
// on bit-reverse-ordered NTT vectors (the output convention of
// NTTInPlace): out[k] = in[index[k]]. Tables are built once per galois
// element and cached in the ring's arena (shared across AtLevel and
// WithParallelism views), so repeated calls — one per key-switch hop —
// allocate nothing. The returned slice is the live cache entry and
// must not be mutated.
//
// Derivation: array slot p holds the evaluation at root ψ^(2·brv(p)+1).
// τ_t maps the evaluation at exponent e to the evaluation at t·e mod 2N,
// so slot p of the output must read the input slot holding exponent
// t·(2·brv(p)+1).
func (r *Ring) AutomorphismNTTIndex(t uint64) ([]int, error) {
	if err := r.checkGaloisElement(t); err != nil {
		return nil, err
	}
	if cached, ok := r.scratch.auto.Load(t); ok {
		return cached.([]int), nil
	}
	n := uint64(r.N)
	twoN := 2 * n
	logN := r.LogN
	index := make([]int, n)
	for p := uint64(0); p < n; p++ {
		j := bitReverse(p, logN)    // natural evaluation index of slot p
		e := (t * (2*j + 1)) % twoN // source exponent
		jSrc := (e - 1) / 2         // natural index holding that exponent
		index[p] = int(bitReverse(jSrc, logN))
	}
	actual, _ := r.scratch.auto.LoadOrStore(t, index)
	return actual.([]int), nil
}

// AutomorphismNTT applies τ_t to a polynomial in the NTT domain using a
// precomputed index from AutomorphismNTTIndex. out must not alias in.
func (r *Ring) AutomorphismNTT(in, out *Poly, index []int) {
	for l := 0; l <= in.Level() && l <= out.Level(); l++ {
		src, dst := in.Coeffs[l], out.Coeffs[l]
		for k := range dst {
			dst[k] = src[index[k]]
		}
	}
}

// GaloisElementForRotation returns the automorphism exponent that
// implements a rotation by k slots of the CKKS canonical embedding:
// g = 5^k mod 2N (5 generates the subgroup acting on the slot order).
func (r *Ring) GaloisElementForRotation(k int) uint64 {
	twoN := uint64(2 * r.N)
	g := uint64(1)
	step := uint64(5)
	// Normalise k to [0, N/2): rotations are cyclic in the half-size
	// slot group.
	halfSlots := r.N / 2
	kk := ((k % halfSlots) + halfSlots) % halfSlots
	for i := 0; i < kk; i++ {
		g = (g * step) % twoN
	}
	return g
}

// GaloisElementForConjugation returns 2N−1, the exponent implementing
// complex conjugation of the CKKS slots.
func (r *Ring) GaloisElementForConjugation() uint64 {
	return uint64(2*r.N) - 1
}
