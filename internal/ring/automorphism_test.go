package ring

import (
	"math/rand"
	"testing"
)

func TestAutomorphismCoeffAgainstDirectEval(t *testing.T) {
	// τ_t(a)(X) must equal a(X^t) reduced mod X^N+1; verify by comparing
	// the NTT evaluations of both sides.
	rng := rand.New(rand.NewSource(30))
	n := 32
	r := testRing(t, n, 2)
	a := randPoly(rng, r)
	for _, gal := range []uint64{3, 5, 2*uint64(n) - 1} {
		out := r.NewPoly()
		if err := r.AutomorphismCoeff(a, out, gal); err != nil {
			t.Fatal(err)
		}
		for i, m := range r.Moduli {
			// Direct substitution oracle: evaluate both at ψ^(2j+1).
			naiveIn := r.NTTNaiveLimb(i, a.Coeffs[i])
			naiveOut := r.NTTNaiveLimb(i, out.Coeffs[i])
			for j := 0; j < n; j++ {
				// a(X^t) at exponent e = t(2j+1): find source index.
				e := (gal * uint64(2*j+1)) % uint64(2*n)
				jSrc := (e - 1) / 2
				if naiveOut[j] != naiveIn[jSrc] {
					t.Fatalf("gal=%d limb=%d slot=%d: eval mismatch", gal, i, j)
				}
				_ = m
			}
		}
	}
}

func TestAutomorphismNTTMatchesCoeff(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 64
	r := testRing(t, n, 2)
	a := randPoly(rng, r)
	for _, gal := range []uint64{3, 9, 5, 2*uint64(n) - 1} {
		// Path 1: automorphism in coefficient domain, then NTT.
		viaCoeff := r.NewPoly()
		if err := r.AutomorphismCoeff(a, viaCoeff, gal); err != nil {
			t.Fatal(err)
		}
		r.NTT(viaCoeff)

		// Path 2: NTT, then automorphism via precomputed slot index.
		viaNTT := a.CopyNew()
		r.NTT(viaNTT)
		idx, err := r.AutomorphismNTTIndex(gal)
		if err != nil {
			t.Fatal(err)
		}
		out := r.NewPoly()
		r.AutomorphismNTT(viaNTT, out, idx)

		if !out.Equal(viaCoeff) {
			t.Fatalf("gal=%d: NTT-domain automorphism != coeff-domain", gal)
		}
	}
}

func TestAutomorphismComposition(t *testing.T) {
	// τ_s ∘ τ_t = τ_{st mod 2N}.
	rng := rand.New(rand.NewSource(32))
	n := 32
	r := testRing(t, n, 1)
	a := randPoly(rng, r)
	s, tt := uint64(3), uint64(5)
	st := (s * tt) % uint64(2*n)

	tmp, out1, out2 := r.NewPoly(), r.NewPoly(), r.NewPoly()
	if err := r.AutomorphismCoeff(a, tmp, tt); err != nil {
		t.Fatal(err)
	}
	if err := r.AutomorphismCoeff(tmp, out1, s); err != nil {
		t.Fatal(err)
	}
	if err := r.AutomorphismCoeff(a, out2, st); err != nil {
		t.Fatal(err)
	}
	if !out1.Equal(out2) {
		t.Fatal("automorphism composition law violated")
	}
}

func TestAutomorphismIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	r := testRing(t, 16, 1)
	a := randPoly(rng, r)
	out := r.NewPoly()
	if err := r.AutomorphismCoeff(a, out, 1); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(a) {
		t.Fatal("τ_1 is not the identity")
	}
}

func TestAutomorphismValidation(t *testing.T) {
	r := testRing(t, 16, 1)
	a, out := r.NewPoly(), r.NewPoly()
	if err := r.AutomorphismCoeff(a, out, 2); err == nil {
		t.Error("expected error for even galois element")
	}
	if err := r.AutomorphismCoeff(a, out, 33); err == nil {
		t.Error("expected error for galois element ≥ 2N")
	}
	if _, err := r.AutomorphismNTTIndex(4); err == nil {
		t.Error("expected error for even galois element")
	}
}

func TestGaloisElements(t *testing.T) {
	r := testRing(t, 16, 1)
	if g := r.GaloisElementForRotation(0); g != 1 {
		t.Errorf("rotation by 0 should be identity, got %d", g)
	}
	if g := r.GaloisElementForConjugation(); g != 31 {
		t.Errorf("conjugation element = %d want 31", g)
	}
	// 5^k mod 2N stays odd and in range.
	for k := -10; k <= 10; k++ {
		g := r.GaloisElementForRotation(k)
		if g%2 == 0 || g >= 32 {
			t.Errorf("rotation element %d for k=%d out of range", g, k)
		}
	}
	// Negative rotation normalisation: k and k + N/2 coincide.
	if r.GaloisElementForRotation(-3) != r.GaloisElementForRotation(-3+8) {
		t.Error("rotation normalisation broken")
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t, 1<<10, 2)
	s := NewSampler(42)

	u := r.NewPoly()
	s.Uniform(r, u)
	// Spot-check range and rough balance.
	for i, m := range r.Moduli {
		var above int
		for _, v := range u.Coeffs[i] {
			if v >= m.Q {
				t.Fatal("uniform sample out of range")
			}
			if v > m.Q/2 {
				above++
			}
		}
		if above < 400 || above > 624 {
			t.Errorf("uniform limb %d badly skewed: %d/1024 above q/2", i, above)
		}
	}

	tern := r.NewPoly()
	s.Ternary(r, tern)
	m0 := r.Moduli[0]
	counts := map[uint64]int{}
	for _, v := range tern.Coeffs[0] {
		counts[v]++
	}
	if len(counts) > 3 {
		t.Fatalf("ternary has %d distinct values", len(counts))
	}
	for k := range tern.Coeffs[0] {
		// consistency across limbs
		v0 := tern.Coeffs[0][k]
		v1 := tern.Coeffs[1][k]
		m1 := r.Moduli[1]
		var s0, s1 int64
		if v0 == m0.Q-1 {
			s0 = -1
		} else {
			s0 = int64(v0)
		}
		if v1 == m1.Q-1 {
			s1 = -1
		} else {
			s1 = int64(v1)
		}
		if s0 != s1 {
			t.Fatal("ternary limbs inconsistent")
		}
	}

	g := r.NewPoly()
	s.Gaussian(r, g)
	bound := uint64(20) // 6σ with σ=3.2
	for _, v := range g.Coeffs[0] {
		if v > bound && v < m0.Q-bound {
			t.Fatalf("gaussian sample %d outside ±%d", v, bound)
		}
	}
}

func TestSetSigned(t *testing.T) {
	r := testRing(t, 8, 2)
	s := NewSampler(1)
	p := r.NewPoly()
	vals := []int64{0, 1, -1, 5, -5, 100, -100, 0}
	s.SetSigned(r, p, vals)
	for i, m := range r.Moduli {
		for k, v := range vals {
			var want uint64
			if v >= 0 {
				want = uint64(v)
			} else {
				want = m.Q - uint64(-v)
			}
			if p.Coeffs[i][k] != want {
				t.Fatalf("limb %d coeff %d: got %d want %d", i, k, p.Coeffs[i][k], want)
			}
		}
	}
}
