package ring

import "sync"

// arena is the per-Ring scratch allocator: a sync.Pool of N-length
// uint64 buffers plus the cache of automorphism slot tables. Every hot
// path that used to `make([]uint64, n)` per call (matrix-NTT
// intermediates, 4-step transposes, aliasing scratch, rescale copies)
// borrows from here instead, so steady-state transforms allocate
// nothing. The arena is created once per NewRing and shared by pointer
// across every view (AtLevel, WithParallelism) — the views must share
// it, or per-view pools would defeat the reuse.
//
// Ownership rule: a borrowed buffer is owned by the borrower until
// PutScratch; it must not be retained afterwards, and its contents are
// undefined at Get (callers overwrite before reading). Buffers are
// pooled at full ring degree N regardless of the level of the view
// that borrowed them.
type arena struct {
	n    int
	pool sync.Pool
	auto sync.Map // galois element (uint64) → []int slot table
}

func newArena(n int) *arena {
	a := &arena{n: n}
	a.pool.New = func() any {
		b := make([]uint64, n)
		return &b
	}
	return a
}

// GetScratch borrows an N-length scratch buffer from the ring's arena.
// Contents are undefined; pair with PutScratch when done.
func (r *Ring) GetScratch() *[]uint64 {
	return r.scratch.pool.Get().(*[]uint64)
}

// PutScratch returns a buffer borrowed with GetScratch to the arena.
func (r *Ring) PutScratch(b *[]uint64) {
	if b == nil || cap(*b) < r.scratch.n {
		return
	}
	*b = (*b)[:r.scratch.n]
	r.scratch.pool.Put(b)
}
