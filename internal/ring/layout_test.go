package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLayoutInvariantMultiplication is MAT's central claim (§IV-B):
// element-wise evaluation-domain arithmetic does not care about the
// slot order, so the digit-swap layout — which requires zero runtime
// reordering — computes polynomial products bit-exactly.
func TestLayoutInvariantMultiplication(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, tc := range []struct{ n, r, c int }{{64, 8, 8}, {256, 4, 64}, {512, 32, 16}} {
		rg := testRing(t, tc.n, 2)
		plan, err := NewMatNTTPlan(rg, tc.r, tc.c, LayoutDigitSwap)
		if err != nil {
			t.Fatal(err)
		}
		a := randPoly(rng, rg)
		b := randPoly(rng, rg)
		want := rg.NewPoly()
		rg.MulPolyNaive(a, b, want)

		// Transform both operands into the digit-swap layout, multiply
		// pointwise, invert — no transpose, no bit-reverse, anywhere.
		plan.Forward(a)
		plan.Forward(b)
		got := rg.NewPoly()
		rg.MulCoeffs(a, b, got)
		plan.Inverse(got)
		if !got.Equal(want) {
			t.Fatalf("N=%d (R=%d,C=%d): layout-invariant product != negacyclic convolution", tc.n, tc.r, tc.c)
		}
	}
}

// TestMixedLayoutAddition: addition is equally layout-agnostic.
func TestLayoutInvariantAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	rg := testRing(t, 128, 2)
	plan, err := NewMatNTTPlan(rg, 8, 16, LayoutDigitSwap)
	if err != nil {
		t.Fatal(err)
	}
	a := randPoly(rng, rg)
	b := randPoly(rng, rg)
	want := rg.NewPoly()
	rg.Add(a, b, want)

	plan.Forward(a)
	plan.Forward(b)
	sum := rg.NewPoly()
	rg.Add(a, b, sum)
	plan.Inverse(sum)
	if !sum.Equal(want) {
		t.Fatal("layout-invariant addition broken")
	}
}

// Property: for random (R, C) splits and random polynomials, the MAT
// plan is a bijection (forward∘inverse = id) in both layouts.
func TestMatNTTBijectionQuick(t *testing.T) {
	rg := testRing(t, 256, 1)
	plans := []*MatNTTPlan{}
	for _, rc := range [][2]int{{4, 64}, {16, 16}, {64, 4}} {
		for _, order := range []Layout{LayoutDigitSwap, LayoutBitRev} {
			p, err := NewMatNTTPlan(rg, rc[0], rc[1], order)
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
	}
	q := rg.Moduli[0].Q
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := make([]uint64, 256)
		for i := range in {
			in[i] = r.Uint64() % q
		}
		for _, p := range plans {
			buf := append([]uint64(nil), in...)
			p.ForwardLimb(0, buf, buf)
			p.InverseLimb(0, buf, buf)
			for i := range buf {
				if buf[i] != in[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: NTT is multiplicative — NTT(a·b) = NTT(a) ⊙ NTT(b) — for
// the radix-2 path (the convolution theorem the whole HE stack rests
// on).
func TestConvolutionTheoremQuick(t *testing.T) {
	rg := testRing(t, 64, 1)
	m := rg.Moduli[0]
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := rg.NewPoly()
		b := rg.NewPoly()
		for i := range a.Coeffs[0] {
			a.Coeffs[0][i] = r.Uint64() % m.Q
			b.Coeffs[0][i] = r.Uint64() % m.Q
		}
		want := rg.NewPoly()
		rg.MulPolyNaive(a, b, want)
		rg.NTT(a)
		rg.NTT(b)
		prod := rg.NewPoly()
		rg.MulCoeffs(a, b, prod)
		rg.INTT(prod)
		return prod.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
