package ring

import (
	"math/rand"
	"runtime"
	"testing"

	"cross/internal/modarith"
)

// randomPoly fills a fresh poly with uniform coefficients below each
// limb's modulus.
func randomPoly(t *testing.T, r *Ring, seed int64) *Poly {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := r.NewPoly()
	for i, m := range r.Moduli {
		for k := range p.Coeffs[i] {
			p.Coeffs[i][k] = rng.Uint64() % m.Q
		}
	}
	return p
}

// The Parallelism guard: every worker count must produce bit-identical
// transforms (ISSUE acceptance — parallel NTT == serial NTT).
func TestParallelNTTBitExact(t *testing.T) {
	n := 1 << 10
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 6)
	if err != nil {
		t.Fatal(err)
	}
	r := MustRing(n, primes)
	ref := randomPoly(t, r, 7)

	serial := ref.CopyNew()
	r.NTT(serial)

	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		rp := r.WithParallelism(workers)
		if rp.Parallelism() != workers && workers >= 1 {
			t.Fatalf("parallelism = %d, want %d", rp.Parallelism(), workers)
		}
		got := ref.CopyNew()
		rp.NTT(got)
		if !got.Equal(serial) {
			t.Fatalf("parallel NTT (workers=%d) differs from serial", workers)
		}
		rp.INTT(got)
		if !got.Equal(ref) {
			t.Fatalf("parallel INTT (workers=%d) did not invert", workers)
		}
	}
}

func TestParallelMatNTTBitExact(t *testing.T) {
	n := 1 << 8
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 4)
	if err != nil {
		t.Fatal(err)
	}
	r := MustRing(n, primes)
	plan, err := NewMatNTTPlan(r, 16, 16, LayoutBitRev)
	if err != nil {
		t.Fatal(err)
	}
	ref := randomPoly(t, r, 11)
	serial := ref.CopyNew()
	plan.Forward(serial)

	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		rp := r.WithParallelism(workers)
		pplan, err := NewMatNTTPlan(rp, 16, 16, LayoutBitRev)
		if err != nil {
			t.Fatal(err)
		}
		got := ref.CopyNew()
		pplan.Forward(got)
		if !got.Equal(serial) {
			t.Fatalf("parallel MatNTT forward (workers=%d) differs", workers)
		}
		pplan.Inverse(got)
		if !got.Equal(ref) {
			t.Fatalf("parallel MatNTT inverse (workers=%d) did not invert", workers)
		}
	}
}

// WithParallelism must be a non-mutating view: the receiver keeps its
// serial behaviour and AtLevel carries the option.
func TestWithParallelismView(t *testing.T) {
	n := 1 << 8
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 3)
	if err != nil {
		t.Fatal(err)
	}
	r := MustRing(n, primes)
	rp := r.WithParallelism(4)
	if r.Parallelism() != 1 {
		t.Error("WithParallelism mutated the receiver")
	}
	if rp.Parallelism() != 4 {
		t.Error("view lost the worker count")
	}
	sub, err := rp.AtLevel(1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Parallelism() != 4 {
		t.Error("AtLevel dropped the worker count")
	}
	if r.WithParallelism(0).Parallelism() != 1 {
		t.Error("workers < 1 should clamp to serial")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 37
		hit := make([]int32, n)
		parallelFor(workers, n, func(i int) { hit[i]++ })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	parallelFor(4, 0, func(i int) { t.Fatal("called for n=0") })
}

// TestWithParallelismClampsInvalid is the error-path contract of
// WithParallelism: zero and negative worker counts are invalid inputs
// and must clamp to the serial path (never panic, never launch a
// zero-width pool), and the clamped view must stay bit-identical to
// the serial transforms.
func TestWithParallelismClampsInvalid(t *testing.T) {
	n := 64
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	r := MustRing(n, primes)
	rng := rand.New(rand.NewSource(12))
	ref := NewPoly(2, n)
	for i := range ref.Coeffs {
		for k := range ref.Coeffs[i] {
			ref.Coeffs[i][k] = rng.Uint64() % primes[i]
		}
	}
	want := ref.CopyNew()
	r.NTT(want)
	for _, workers := range []int{0, -1, -1000} {
		rp := r.WithParallelism(workers)
		if got := rp.Parallelism(); got != 1 {
			t.Fatalf("WithParallelism(%d).Parallelism() = %d, want clamp to 1", workers, got)
		}
		got := ref.CopyNew()
		rp.NTT(got)
		if !got.Equal(want) {
			t.Fatalf("WithParallelism(%d) NTT diverges from serial", workers)
		}
	}
}
