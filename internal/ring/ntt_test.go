package ring

import (
	"math/rand"
	"testing"

	"cross/internal/modarith"
)

func testRing(t testing.TB, n int, limbs int) *Ring {
	t.Helper()
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), limbs)
	if err != nil {
		t.Fatal(err)
	}
	return MustRing(n, primes)
}

func randPoly(rng *rand.Rand, r *Ring) *Poly {
	p := r.NewPoly()
	for i, m := range r.Moduli {
		for k := range p.Coeffs[i] {
			p.Coeffs[i][k] = rng.Uint64() % m.Q
		}
	}
	return p
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(100, []uint64{12289}); err == nil {
		t.Error("expected error for non-power-of-two degree")
	}
	if _, err := NewRing(4, []uint64{12289}); err == nil {
		t.Error("expected error for degree < 8")
	}
	// 12289 = 3·2^12 + 1 supports up to 2^12 negacyclic; degree 2^13 must fail.
	if _, err := NewRing(1<<13, []uint64{12289}); err == nil {
		t.Error("expected error for NTT-unfriendly modulus")
	}
	if _, err := NewRing(16, []uint64{15}); err == nil {
		t.Error("expected error for composite modulus")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 64, 256, 1 << 12} {
		r := testRing(t, n, 3)
		p := randPoly(rng, r)
		orig := p.CopyNew()
		r.NTT(p)
		r.INTT(p)
		if !p.Equal(orig) {
			t.Fatalf("N=%d: NTT∘INTT != id", n)
		}
	}
}

func TestNTTMatchesNaiveBitRev(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{8, 32, 128} {
		r := testRing(t, n, 2)
		p := randPoly(rng, r)
		for i := range r.Moduli {
			naive := r.NTTNaiveLimb(i, p.Coeffs[i])
			fast := append([]uint64(nil), p.Coeffs[i]...)
			r.NTTLimb(i, fast)
			for j := 0; j < n; j++ {
				if fast[bitReverse(uint64(j), r.LogN)] != naive[j] {
					t.Fatalf("N=%d limb %d: fast[brv(%d)] = %d, naive = %d",
						n, i, j, fast[bitReverse(uint64(j), r.LogN)], naive[j])
				}
			}
		}
	}
}

func TestINTTNaiveInvertsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 32
	r := testRing(t, n, 2)
	p := randPoly(rng, r)
	for i := range r.Moduli {
		fwd := r.NTTNaiveLimb(i, p.Coeffs[i])
		back := r.INTTNaiveLimb(i, fwd)
		for k := 0; k < n; k++ {
			if back[k] != p.Coeffs[i][k] {
				t.Fatalf("naive round trip limb %d coeff %d", i, k)
			}
		}
	}
}

func TestNTTPointwiseIsNegacyclicConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 64, 512} {
		r := testRing(t, n, 2)
		a := randPoly(rng, r)
		b := randPoly(rng, r)
		want := r.NewPoly()
		r.MulPolyNaive(a, b, want)

		r.NTT(a)
		r.NTT(b)
		got := r.NewPoly()
		r.MulCoeffs(a, b, got)
		r.INTT(got)
		if !got.Equal(want) {
			t.Fatalf("N=%d: NTT pointwise product != negacyclic convolution", n)
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 128
	r := testRing(t, n, 2)
	a := randPoly(rng, r)
	b := randPoly(rng, r)
	sum := r.NewPoly()
	r.Add(a, b, sum)

	r.NTT(a)
	r.NTT(b)
	r.NTT(sum)
	sum2 := r.NewPoly()
	r.Add(a, b, sum2)
	if !sum.Equal(sum2) {
		t.Fatal("NTT(a+b) != NTT(a)+NTT(b)")
	}
}

func TestRingBasicOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	r := testRing(t, n, 3)
	a := randPoly(rng, r)
	b := randPoly(rng, r)

	// a + b - b == a
	tmp := r.NewPoly()
	r.Add(a, b, tmp)
	r.Sub(tmp, b, tmp)
	if !tmp.Equal(a) {
		t.Fatal("a+b-b != a")
	}
	// a + (-a) == 0
	neg := r.NewPoly()
	r.Neg(a, neg)
	r.Add(a, neg, tmp)
	zero := r.NewPoly()
	if !tmp.Equal(zero) {
		t.Fatal("a + (-a) != 0")
	}
	// MulScalar distributes over limbs.
	c := uint64(12345)
	r.MulScalar(a, c, tmp)
	for i, m := range r.Moduli {
		for k := range tmp.Coeffs[i] {
			if tmp.Coeffs[i][k] != m.MulMod(a.Coeffs[i][k], c) {
				t.Fatalf("MulScalar limb %d coeff %d", i, k)
			}
		}
	}
	// MulCoeffsAndAdd == Mul then Add.
	acc1 := b.CopyNew()
	r.MulCoeffsAndAdd(a, a, acc1)
	prod := r.NewPoly()
	r.MulCoeffs(a, a, prod)
	acc2 := r.NewPoly()
	r.Add(b, prod, acc2)
	if !acc1.Equal(acc2) {
		t.Fatal("MulCoeffsAndAdd mismatch")
	}
}

func TestPolyHelpers(t *testing.T) {
	r := testRing(t, 16, 4)
	p := r.NewPoly()
	if p.Level() != 3 || p.N() != 16 {
		t.Fatalf("level %d n %d", p.Level(), p.N())
	}
	p.Coeffs[0][0] = 42
	q := p.CopyNew()
	q.Coeffs[0][0] = 7
	if p.Coeffs[0][0] != 42 {
		t.Fatal("CopyNew aliases")
	}
	q.Copy(p)
	if q.Coeffs[0][0] != 42 {
		t.Fatal("Copy failed")
	}
	q.Truncate(1)
	if q.Level() != 1 {
		t.Fatal("Truncate failed")
	}
	if p.Equal(q) {
		t.Fatal("Equal should fail on level mismatch")
	}
	empty := &Poly{}
	if empty.N() != 0 {
		t.Fatal("empty poly N")
	}
}

func TestAtLevel(t *testing.T) {
	r := testRing(t, 16, 4)
	r2, err := r.AtLevel(1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.L() != 2 {
		t.Fatalf("AtLevel(1).L() = %d", r2.L())
	}
	if _, err := r.AtLevel(-1); err == nil {
		t.Error("expected error for negative level")
	}
	if _, err := r.AtLevel(4); err == nil {
		t.Error("expected error for level beyond chain")
	}
}

func TestMixedLevelOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := testRing(t, 16, 4)
	a := randPoly(rng, r)
	b := randPoly(rng, r)
	b.Truncate(1) // lower level
	out := NewPoly(2, 16)
	r.Add(a, b, out) // should operate on min limb count without panic
	for i := 0; i < 2; i++ {
		for k := 0; k < 16; k++ {
			if out.Coeffs[i][k] != r.Moduli[i].AddMod(a.Coeffs[i][k], b.Coeffs[i][k]) {
				t.Fatal("mixed level add mismatch")
			}
		}
	}
}
