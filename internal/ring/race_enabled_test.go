//go:build race

package ring

// raceEnabled guards steady-state zero-allocation assertions: under
// the race detector sync.Pool intentionally drops a fraction of Puts
// (and bypasses per-P caches), so pool-backed paths re-allocate even
// in steady state. The assertions still run in the plain `go test`
// CI lane; skipping them under -race avoids nondeterministic reds.
const raceEnabled = true
