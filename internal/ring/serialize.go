package ring

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary wire format for polynomials. Layout (little-endian):
//
//	magic   uint32  "CRPo" (0x6F505243)
//	limbs   uint32
//	n       uint32
//	coeffs  limbs × n × uint64
//
// The format is deliberately self-describing and versioned through the
// magic so ciphertext/key containers can embed it.

const polyMagic uint32 = 0x6F505243

// WriteTo serialises the polynomial.
func (p *Poly) WriteTo(w io.Writer) (int64, error) {
	var written int64
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], polyMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(p.Coeffs)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(p.N()))
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 8*p.N())
	for _, limb := range p.Coeffs {
		for i, v := range limb {
			binary.LittleEndian.PutUint64(buf[8*i:], v)
		}
		n, err := w.Write(buf)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadFrom deserialises into p, reallocating as needed.
func (p *Poly) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	hdr := make([]byte, 12)
	n, err := io.ReadFull(r, hdr)
	read += int64(n)
	if err != nil {
		return read, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != polyMagic {
		return read, fmt.Errorf("ring: bad polynomial magic")
	}
	limbs := int(binary.LittleEndian.Uint32(hdr[4:]))
	nn := int(binary.LittleEndian.Uint32(hdr[8:]))
	if limbs < 0 || limbs > 1<<10 || nn < 0 || nn > 1<<20 {
		return read, fmt.Errorf("ring: implausible polynomial shape %d×%d", limbs, nn)
	}
	fresh := NewPoly(limbs, nn)
	buf := make([]byte, 8*nn)
	for i := 0; i < limbs; i++ {
		n, err := io.ReadFull(r, buf)
		read += int64(n)
		if err != nil {
			return read, err
		}
		for k := 0; k < nn; k++ {
			fresh.Coeffs[i][k] = binary.LittleEndian.Uint64(buf[8*k:])
		}
	}
	*p = *fresh
	return read, nil
}
