package ring

import (
	"math/rand"
	"testing"

	"cross/internal/modarith"
)

// benchRing builds the fixed-size ring the host benchmarks use:
// N = 2^13 with a 28-bit NTT prime (the paper's limb width).
func benchRing(b *testing.B) (*Ring, []uint64) {
	b.Helper()
	n := 1 << 13
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	rg := MustRing(n, primes)
	rng := rand.New(rand.NewSource(41))
	data := make([]uint64, n)
	for i := range data {
		data[i] = rng.Uint64() % primes[0]
	}
	return rg, data
}

// BenchmarkNTT times the steady-state in-place forward transform — the
// headline ns/op gated by BENCH_host.json.
func BenchmarkNTT(b *testing.B) {
	rg, data := benchRing(b)
	buf := append([]uint64(nil), data...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.NTTInPlace(0, buf)
	}
}

// BenchmarkINTT times the steady-state in-place inverse transform.
func BenchmarkINTT(b *testing.B) {
	rg, data := benchRing(b)
	buf := append([]uint64(nil), data...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.INTTInPlace(0, buf)
	}
}

// BenchmarkNTTStrict times the retained strict-reduction reference, so
// the lazy speedup is visible in one -bench=NTT run.
func BenchmarkNTTStrict(b *testing.B) {
	rg, data := benchRing(b)
	buf := append([]uint64(nil), data...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.NTTInPlaceStrict(0, buf)
	}
}

// BenchmarkINTTStrict times the strict inverse reference.
func BenchmarkINTTStrict(b *testing.B) {
	rg, data := benchRing(b)
	buf := append([]uint64(nil), data...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.INTTInPlaceStrict(0, buf)
	}
}

// BenchmarkMatNTTForward times the 3-step matrix NTT with the pooled
// scratch arena (steady state must not allocate).
func BenchmarkMatNTTForward(b *testing.B) {
	rg, data := benchRing(b)
	plan, err := NewMatNTTPlan(rg, 128, 64, LayoutBitRev)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]uint64, rg.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.ForwardLimb(0, data, out)
	}
}

// BenchmarkAutomorphismNTT times the cached-index slot permutation.
func BenchmarkAutomorphismNTT(b *testing.B) {
	rg, data := benchRing(b)
	idx, err := rg.AutomorphismNTTIndex(5)
	if err != nil {
		b.Fatal(err)
	}
	in := NewPoly(1, rg.N)
	copy(in.Coeffs[0], data)
	out := NewPoly(1, rg.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.AutomorphismNTT(in, out, idx)
	}
}
