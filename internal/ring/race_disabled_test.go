//go:build !race

package ring

// See race_enabled_test.go.
const raceEnabled = false
