package ring

import (
	"math"
	"math/rand"
)

// Sampler draws the random polynomials RLWE needs: uniform masks,
// ternary secrets, and discrete-Gaussian errors (§II-A). The source is
// an explicit seeded PRNG so that experiments are reproducible run to
// run; the reproduction targets performance fidelity, not cryptographic
// key generation, exactly as the paper's artifact does.
type Sampler struct {
	rng   *rand.Rand
	sigma float64
}

// DefaultSigma is the RLWE error standard deviation used by the
// homomorphic encryption standard and by OpenFHE's default profile.
const DefaultSigma = 3.2

// NewSampler returns a Sampler seeded deterministically.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed)), sigma: DefaultSigma}
}

// NewSamplerWithSigma overrides the Gaussian parameter.
func NewSamplerWithSigma(seed int64, sigma float64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed)), sigma: sigma}
}

// Uniform fills p with coefficients uniform in [0, q_i) per limb.
func (s *Sampler) Uniform(r *Ring, p *Poly) {
	for i := 0; i <= p.Level(); i++ {
		q := r.Moduli[i].Q
		for k := range p.Coeffs[i] {
			p.Coeffs[i][k] = s.rng.Uint64() % q
		}
	}
}

// Ternary fills p with a ternary polynomial (coefficients in {-1,0,1},
// uniform) represented consistently across all limbs.
func (s *Sampler) Ternary(r *Ring, p *Poly) {
	n := p.N()
	vals := make([]int8, n)
	for k := range vals {
		vals[k] = int8(s.rng.Intn(3)) - 1
	}
	for i := 0; i <= p.Level(); i++ {
		m := r.Moduli[i]
		for k, v := range vals {
			switch v {
			case 1:
				p.Coeffs[i][k] = 1
			case -1:
				p.Coeffs[i][k] = m.Q - 1
			default:
				p.Coeffs[i][k] = 0
			}
		}
	}
}

// Gaussian fills p with a rounded-Gaussian error polynomial, the same
// small value embedded consistently in every limb.
func (s *Sampler) Gaussian(r *Ring, p *Poly) {
	n := p.N()
	vals := make([]int64, n)
	bound := int64(math.Ceil(6 * s.sigma)) // 6σ tail cut, standard practice
	for k := range vals {
		v := int64(math.Round(s.rng.NormFloat64() * s.sigma))
		if v > bound {
			v = bound
		}
		if v < -bound {
			v = -bound
		}
		vals[k] = v
	}
	s.setSigned(r, p, vals)
}

// SetSigned embeds small signed integers into all limbs of p.
func (s *Sampler) SetSigned(r *Ring, p *Poly, vals []int64) {
	s.setSigned(r, p, vals)
}

func (s *Sampler) setSigned(r *Ring, p *Poly, vals []int64) {
	for i := 0; i <= p.Level(); i++ {
		m := r.Moduli[i]
		for k, v := range vals {
			if v >= 0 {
				p.Coeffs[i][k] = uint64(v) % m.Q
			} else {
				p.Coeffs[i][k] = m.Q - uint64(-v)%m.Q
			}
		}
	}
}
