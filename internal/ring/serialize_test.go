package ring

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestPolySerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	r := testRing(t, 64, 3)
	p := randPoly(rng, r)

	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	// 12-byte header + limbs×n×8 bytes.
	if want := int64(12 + 3*64*8); n != want {
		t.Fatalf("serialised size %d, want %d", n, want)
	}

	var q Poly
	m, err := q.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d of %d bytes", m, n)
	}
	if !q.Equal(p) {
		t.Fatal("round trip corrupted coefficients")
	}
}

func TestPolyDeserializeRejectsGarbage(t *testing.T) {
	var p Poly
	if _, err := p.ReadFrom(bytes.NewReader([]byte("garbage header bytes"))); err == nil {
		t.Error("expected magic error")
	}
	if _, err := p.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("expected EOF")
	}
	// Implausible shape: craft a header claiming 2^30 coefficients.
	hdr := make([]byte, 12)
	copy(hdr, []byte{0x43, 0x52, 0x50, 0x6F}) // magic little-endian
	hdr[4] = 1
	hdr[8], hdr[9], hdr[10], hdr[11] = 0, 0, 0, 0x40
	if _, err := p.ReadFrom(bytes.NewReader(hdr)); err == nil {
		t.Error("expected implausible-shape error")
	}
	// Truncated body.
	r := testRing(t, 16, 1)
	good := r.NewPoly()
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadFrom(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("expected truncation error")
	}
}
