package ring

import (
	"math/rand"
	"testing"

	"cross/internal/modarith"
)

// The allocation-free discipline of the hot paths is part of the API
// contract (ISSUE 4 / DESIGN.md §11): steady-state transforms must not
// touch the heap. These tests pin that with testing.AllocsPerRun; the
// hostbench CI gate additionally holds allocs/op at zero drift.

func TestNTTInPlaceZeroAllocs(t *testing.T) {
	n := 1 << 10
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	rg := MustRing(n, primes)
	rng := rand.New(rand.NewSource(5))
	buf := make([]uint64, n)
	for i := range buf {
		buf[i] = rng.Uint64() % primes[0]
	}
	if avg := testing.AllocsPerRun(100, func() { rg.NTTInPlace(0, buf) }); avg != 0 {
		t.Fatalf("NTTInPlace allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { rg.INTTInPlace(0, buf) }); avg != 0 {
		t.Fatalf("INTTInPlace allocates %.2f/op, want 0", avg)
	}
}

func TestMatNTTZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; pooled paths cannot hold 0 allocs/op")
	}
	n := 1 << 10
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	rg := MustRing(n, primes)
	plan, err := NewMatNTTPlan(rg, 32, 32, LayoutBitRev)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	in := make([]uint64, n)
	for i := range in {
		in[i] = rng.Uint64() % primes[0]
	}
	out := make([]uint64, n)
	// Warm the arena so the pool holds its buffers before measuring.
	plan.ForwardLimb(0, in, out)
	plan.InverseLimb(0, out, out)
	if avg := testing.AllocsPerRun(100, func() { plan.ForwardLimb(0, in, out) }); avg != 0 {
		t.Fatalf("MatNTT ForwardLimb allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { plan.InverseLimb(0, out, out) }); avg != 0 {
		t.Fatalf("MatNTT InverseLimb (in-place) allocates %.2f/op, want 0", avg)
	}
}

func TestAutomorphismNTTZeroAllocs(t *testing.T) {
	n := 1 << 10
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	rg := MustRing(n, primes)
	idx, err := rg.AutomorphismNTTIndex(5)
	if err != nil {
		t.Fatal(err)
	}
	in, out := NewPoly(1, n), NewPoly(1, n)
	if avg := testing.AllocsPerRun(100, func() { rg.AutomorphismNTT(in, out, idx) }); avg != 0 {
		t.Fatalf("AutomorphismNTT allocates %.2f/op, want 0", avg)
	}
	// The cached index lookup itself must also be free after the first
	// build (one table per galois element, shared across views).
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := rg.AutomorphismNTTIndex(5); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("cached AutomorphismNTTIndex allocates %.2f/op, want 0", avg)
	}
}
