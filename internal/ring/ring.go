// Package ring implements the negacyclic polynomial ring
// R_Q = Z_Q[x]/(x^N + 1) over an RNS basis — the algebraic substrate of
// RLWE-based HE (§II-A1). It provides the ring arithmetic, coefficient
// sampling, automorphisms, and all NTT algorithm variants the paper
// compares:
//
//   - radix-2 Cooley–Tukey butterfly NTT (Alg. 3), the GPU-favoured
//     O(N log N) algorithm with per-stage bit-complement shuffles;
//   - a naive O(N²) evaluation transform used as the correctness oracle;
//   - the 4-step matrix NTT with explicit transpose and bit-reverse
//     (the SoTA GPU tensor-core algorithm, Fig. 10 row 1);
//   - the MAT layout-invariant 3-step matrix NTT (Fig. 10 row 2) in
//     nttmat.go, whose matrix multiplications BAT lowers to the MXU.
package ring

import (
	"fmt"

	"cross/internal/modarith"
)

// Ring is an RNS negacyclic polynomial ring of degree N over the primes
// of a basis. It owns the per-modulus NTT twiddle tables. A Ring is
// immutable after construction and safe for concurrent use.
type Ring struct {
	N      int
	LogN   uint
	Moduli []*modarith.Modulus
	tables []*nttTable
	// parallelism is the worker count for whole-polynomial transforms
	// (0/1 = serial); set via WithParallelism, never mutated in place.
	parallelism int
	// scratch is the shared buffer arena + automorphism-table cache;
	// held by pointer so AtLevel/WithParallelism views pool together.
	scratch *arena
}

// NewRing constructs the ring of degree n (a power of two ≥ 8) over the
// given primes, each of which must satisfy q ≡ 1 (mod 2n).
func NewRing(n int, primes []uint64) (*Ring, error) {
	if n < 8 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d must be a power of two ≥ 8", n)
	}
	moduli, err := modarith.NewModuli(primes)
	if err != nil {
		return nil, err
	}
	r := &Ring{
		N:       n,
		Moduli:  moduli,
		tables:  make([]*nttTable, len(moduli)),
		scratch: newArena(n),
	}
	for n>>r.LogN != 1 {
		r.LogN++
	}
	for i, m := range moduli {
		if (m.Q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: modulus %d is not NTT-friendly for degree %d", m.Q, n)
		}
		tbl, err := newNTTTable(m, n)
		if err != nil {
			return nil, err
		}
		r.tables[i] = tbl
	}
	return r, nil
}

// MustRing is NewRing that panics on error.
func MustRing(n int, primes []uint64) *Ring {
	r, err := NewRing(n, primes)
	if err != nil {
		panic(err)
	}
	return r
}

// L returns the number of RNS limbs.
func (r *Ring) L() int { return len(r.Moduli) }

// Primes returns the prime chain.
func (r *Ring) Primes() []uint64 {
	out := make([]uint64, len(r.Moduli))
	for i, m := range r.Moduli {
		out[i] = m.Q
	}
	return out
}

// AtLevel returns a view of the ring restricted to the first level+1
// limbs (level counts surviving rescales, so level = L-1 is fresh).
func (r *Ring) AtLevel(level int) (*Ring, error) {
	if level < 0 || level >= len(r.Moduli) {
		return nil, fmt.Errorf("ring: level %d out of range [0, %d]", level, len(r.Moduli)-1)
	}
	return &Ring{
		N:           r.N,
		LogN:        r.LogN,
		Moduli:      r.Moduli[:level+1],
		tables:      r.tables[:level+1],
		parallelism: r.parallelism,
		scratch:     r.scratch,
	}, nil
}

// Psi returns the primitive 2N-th root of unity for limb i.
func (r *Ring) Psi(i int) uint64 { return r.tables[i].psi }

// Omega returns the primitive N-th root (ψ²) for limb i.
func (r *Ring) Omega(i int) uint64 { return r.tables[i].omega }

// Poly is a polynomial with limb-major RNS coefficients: Coeffs[i][k] is
// coefficient k modulo prime i. The number of limbs may be smaller than
// the ring's (polynomials at lower levels).
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial with l limbs of n coefficients in
// one contiguous backing array.
func NewPoly(l, n int) *Poly {
	backing := make([]uint64, l*n)
	coeffs := make([][]uint64, l)
	for i := range coeffs {
		coeffs[i], backing = backing[:n:n], backing[n:]
	}
	return &Poly{Coeffs: coeffs}
}

// NewPoly allocates a zero polynomial spanning all limbs of the ring.
func (r *Ring) NewPoly() *Poly { return NewPoly(len(r.Moduli), r.N) }

// Level returns the polynomial's level (limb count − 1).
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// N returns the coefficient count.
func (p *Poly) N() int {
	if len(p.Coeffs) == 0 {
		return 0
	}
	return len(p.Coeffs[0])
}

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	q := NewPoly(len(p.Coeffs), p.N())
	for i := range p.Coeffs {
		copy(q.Coeffs[i], p.Coeffs[i])
	}
	return q
}

// Copy copies src into p; the shapes must match.
func (p *Poly) Copy(src *Poly) {
	if len(p.Coeffs) != len(src.Coeffs) {
		panic("ring: limb count mismatch in Copy")
	}
	for i := range p.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
}

// Truncate drops limbs beyond level (used after rescale).
func (p *Poly) Truncate(level int) {
	p.Coeffs = p.Coeffs[:level+1]
}

// Equal reports deep equality.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		if len(p.Coeffs[i]) != len(q.Coeffs[i]) {
			return false
		}
		for k := range p.Coeffs[i] {
			if p.Coeffs[i][k] != q.Coeffs[i][k] {
				return false
			}
		}
	}
	return true
}

// limbCount bounds an operation to the limbs present in all operands.
func limbCount(ps ...*Poly) int {
	n := ps[0].Level() + 1
	for _, p := range ps[1:] {
		if l := p.Level() + 1; l < n {
			n = l
		}
	}
	return n
}

// Add computes p3 = p1 + p2 limb-wise over the shared limbs.
func (r *Ring) Add(p1, p2, p3 *Poly) {
	for i := 0; i < limbCount(p1, p2, p3); i++ {
		r.Moduli[i].VecAddMod(p3.Coeffs[i], p1.Coeffs[i], p2.Coeffs[i])
	}
}

// Sub computes p3 = p1 - p2 limb-wise.
func (r *Ring) Sub(p1, p2, p3 *Poly) {
	for i := 0; i < limbCount(p1, p2, p3); i++ {
		r.Moduli[i].VecSubMod(p3.Coeffs[i], p1.Coeffs[i], p2.Coeffs[i])
	}
}

// Neg computes p2 = -p1 limb-wise.
func (r *Ring) Neg(p1, p2 *Poly) {
	for i := 0; i < limbCount(p1, p2); i++ {
		r.Moduli[i].VecNegMod(p2.Coeffs[i], p1.Coeffs[i])
	}
}

// MulCoeffs computes the element-wise (Hadamard) product p3 = p1 ⊙ p2 —
// polynomial multiplication when both operands are in the NTT domain.
func (r *Ring) MulCoeffs(p1, p2, p3 *Poly) {
	for i := 0; i < limbCount(p1, p2, p3); i++ {
		r.Moduli[i].VecMulMod(p3.Coeffs[i], p1.Coeffs[i], p2.Coeffs[i], modarith.Barrett)
	}
}

// MulCoeffsAndAdd computes p3 += p1 ⊙ p2.
func (r *Ring) MulCoeffsAndAdd(p1, p2, p3 *Poly) {
	for i := 0; i < limbCount(p1, p2, p3); i++ {
		r.Moduli[i].VecMulAddMod(p3.Coeffs[i], p1.Coeffs[i], p2.Coeffs[i])
	}
}

// MulScalar computes p2 = c · p1 for a word-size scalar.
func (r *Ring) MulScalar(p1 *Poly, c uint64, p2 *Poly) {
	for i := 0; i < limbCount(p1, p2); i++ {
		r.Moduli[i].VecScalarMulMod(p2.Coeffs[i], p1.Coeffs[i], c)
	}
}

// MulScalarVec multiplies limb i by scalars[i] (per-limb constants, e.g.
// rescale factors).
func (r *Ring) MulScalarVec(p1 *Poly, scalars []uint64, p2 *Poly) {
	for i := 0; i < limbCount(p1, p2); i++ {
		r.Moduli[i].VecScalarMulMod(p2.Coeffs[i], p1.Coeffs[i], scalars[i])
	}
}

// MulPolyNaive multiplies two coefficient-domain polynomials by the
// O(N²) negacyclic schoolbook rule — the convention-free correctness
// oracle for every NTT variant.
func (r *Ring) MulPolyNaive(p1, p2, p3 *Poly) {
	n := r.N
	for i := 0; i < limbCount(p1, p2, p3); i++ {
		m := r.Moduli[i]
		out := make([]uint64, n)
		a, b := p1.Coeffs[i], p2.Coeffs[i]
		for x := 0; x < n; x++ {
			if a[x] == 0 {
				continue
			}
			for y := 0; y < n; y++ {
				t := m.MulMod(a[x], b[y])
				k := x + y
				if k < n {
					out[k] = m.AddMod(out[k], t)
				} else {
					out[k-n] = m.SubMod(out[k-n], t) // x^N = -1
				}
			}
		}
		copy(p3.Coeffs[i], out)
	}
}
