package ring

import (
	"math/rand"
	"testing"

	"cross/internal/modarith"
)

// Fuzzing pins the lazy-reduction transforms to the retained strict
// references across the modulus generator's whole output range
// (modarith/primes.go): for every degree/width combination and any
// coefficient vector, NTTInPlace/INTTInPlace must be bit-identical to
// NTTInPlaceStrict/INTTInPlaceStrict, and the round trip must be the
// identity.

// fuzzRings builds one ring per (degree, prime width) combination —
// widths span the paper's 28-bit primes up to the 60-bit ceiling where
// the lazy bounds are tightest, degrees cover every specialized stage
// shape (radix-4 opening/closing, fused middle, n=8 fallback).
func fuzzRings(tb testing.TB) []*Ring {
	tb.Helper()
	var rings []*Ring
	for _, n := range []int{8, 16, 32, 256} {
		for _, bits := range []uint{28, 45, 60} {
			primes, err := modarith.GenerateNTTPrimes(bits, uint64(n), 1)
			if err != nil {
				tb.Fatal(err)
			}
			rings = append(rings, MustRing(n, primes))
		}
	}
	return rings
}

func FuzzNTTLazyVsStrict(f *testing.F) {
	rings := fuzzRings(f)
	f.Add(uint8(0), int64(1))
	f.Add(uint8(5), int64(-7))
	f.Add(uint8(255), int64(0))
	f.Fuzz(func(t *testing.T, ridx uint8, seed int64) {
		rg := rings[int(ridx)%len(rings)]
		n := rg.N
		q := rg.Moduli[0].Q
		rng := rand.New(rand.NewSource(seed))
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % q
		}
		lazy := append([]uint64(nil), a...)
		strict := append([]uint64(nil), a...)
		rg.NTTInPlace(0, lazy)
		rg.NTTInPlaceStrict(0, strict)
		for i := range lazy {
			if lazy[i] != strict[i] {
				t.Fatalf("n=%d q=%d: forward lazy/strict diverge at %d: %d vs %d", n, q, i, lazy[i], strict[i])
			}
			if lazy[i] >= q {
				t.Fatalf("n=%d q=%d: forward output %d not reduced: %d", n, q, i, lazy[i])
			}
		}
		rg.INTTInPlace(0, lazy)
		rg.INTTInPlaceStrict(0, strict)
		for i := range lazy {
			if lazy[i] != strict[i] {
				t.Fatalf("n=%d q=%d: inverse lazy/strict diverge at %d: %d vs %d", n, q, i, lazy[i], strict[i])
			}
			if lazy[i] != a[i] {
				t.Fatalf("n=%d q=%d: round trip diverges at %d: %d vs %d", n, q, i, lazy[i], a[i])
			}
		}
	})
}
