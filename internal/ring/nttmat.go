package ring

import (
	"fmt"

	"cross/internal/modarith"
)

// Layout identifies the ordering of an evaluation-domain vector. The
// whole point of MAT (§IV-B) is that element-wise HE arithmetic is
// layout-agnostic, so a kernel may leave its output in whatever order
// falls out of the computation — as long as every operand agrees and the
// inverse transform knows how to read it.
type Layout int

const (
	// LayoutNatural: slot j holds the evaluation at ψ^(2j+1).
	LayoutNatural Layout = iota
	// LayoutBitRev: slot brv(j) holds evaluation j (radix-2 CT output).
	LayoutBitRev
	// LayoutDigitSwap: slot j2·R+j1 holds evaluation j2+C·j1 — the
	// native output of the 3-step matrix NTT with no reordering at all.
	LayoutDigitSwap
)

func (l Layout) String() string {
	switch l {
	case LayoutNatural:
		return "natural"
	case LayoutBitRev:
		return "bitrev"
	case LayoutDigitSwap:
		return "digitswap"
	default:
		return "unknown"
	}
}

// MatNTTPlan is the offline-compiled matrix form of the negacyclic NTT
// for one (R, C) split of N = R·C (Fig. 10). The forward transform is
//
//	Y = (T1 @ X) ⊙ TW @ T3
//
// with X the C×R row-major reshaping of the input, T1 the C×C
// column-NTT twiddle matrix, TW the C×R element-wise twist, and T3 the
// R×R row-NTT matrix. MAT's two tricks are both applied offline:
//
//   - transpose elimination: the output stays in the C×R layout
//     (LayoutDigitSwap), or — when bit-reversed order is required for
//     interoperability — the bit-reversal is folded into T1's rows, TW's
//     rows, and T3's columns (LayoutBitRev), never executed at runtime;
//   - all matrices carry precomputed Shoup quotients, the CPU analogue
//     of storing BAT-compiled operands.
type MatNTTPlan struct {
	R, C  int
	Order Layout // LayoutDigitSwap or LayoutBitRev
	ring  *Ring
	limbs []*matNTTLimb
}

type matNTTLimb struct {
	m *modarith.Modulus

	t1, t1S       []uint64 // C×C forward step-1 matrix (+ Shoup)
	tw, twS       []uint64 // C×R forward element-wise twist
	t3, t3S       []uint64 // R×R forward step-3 matrix
	t3Inv, t3InvS []uint64 // R×R inverse step-1'
	twInv, twInvS []uint64 // C×R inverse twist
	t1Inv, t1InvS []uint64 // C×C inverse step-3' (carries 1/N)
}

// NewMatNTTPlan compiles the matrix NTT for the ring with split (r, c).
// order selects the runtime output layout; LayoutNatural is rejected
// because producing it requires a runtime transpose — that is exactly
// the 4-step baseline, available as Forward4Step.
func NewMatNTTPlan(rg *Ring, r, c int, order Layout) (*MatNTTPlan, error) {
	if r*c != rg.N {
		return nil, fmt.Errorf("ring: split %d×%d does not cover degree %d", r, c, rg.N)
	}
	if r < 2 || c < 2 || r&(r-1) != 0 || c&(c-1) != 0 {
		return nil, fmt.Errorf("ring: split factors (%d, %d) must be powers of two ≥ 2", r, c)
	}
	if order != LayoutDigitSwap && order != LayoutBitRev {
		return nil, fmt.Errorf("ring: matrix NTT emits %v or %v only; natural order needs the 4-step transpose", LayoutDigitSwap, LayoutBitRev)
	}
	p := &MatNTTPlan{R: r, C: c, Order: order, ring: rg, limbs: make([]*matNTTLimb, rg.L())}
	for i := range rg.Moduli {
		p.limbs[i] = p.compileLimb(i)
	}
	return p, nil
}

// compileLimb builds the six matrices of one modulus. All the offline
// work of MAT — twiddle generation, permutation folding, Shoup
// precomputation — happens here, once, exactly as the paper's compiler
// does it ahead of time.
func (p *MatNTTPlan) compileLimb(i int) *matNTTLimb {
	m := p.ring.Moduli[i]
	tbl := p.ring.tables[i]
	r, c := p.R, p.C
	n := p.ring.N
	psi, psiInv := tbl.psi, tbl.psiInv
	omega := tbl.omega
	omegaInv := m.InvMod(omega)
	nInv := tbl.nInv

	lm := &matNTTLimb{m: m}

	// Row/column permutations: identity for DigitSwap, bit-reversal for
	// BitRev (brv_C on the C dimension, brv_R on the R dimension).
	rowPerm := make([]int, c)
	colPerm := make([]int, r)
	logC, logR := log2(c), log2(r)
	for j := range rowPerm {
		rowPerm[j] = j
	}
	for j := range colPerm {
		colPerm[j] = j
	}
	if p.Order == LayoutBitRev {
		for j := range rowPerm {
			rowPerm[j] = int(bitReverse(uint64(j), logC))
		}
		for j := range colPerm {
			colPerm[j] = int(bitReverse(uint64(j), logR))
		}
	}

	// T1[j2][cc] = ψ^{R·cc·(2·j2+1)}   (C×C), rows permuted offline.
	lm.t1 = make([]uint64, c*c)
	for j2 := 0; j2 < c; j2++ {
		src := rowPerm[j2]
		for cc := 0; cc < c; cc++ {
			e := uint64(r) * uint64(cc) % uint64(2*n) * uint64(2*src+1) % uint64(2*n)
			lm.t1[j2*c+cc] = m.PowMod(psi, e)
		}
	}

	// TW[j2][rr] = ψ^{rr·(2·j2+1)}   (C×R), rows permuted offline.
	lm.tw = make([]uint64, c*r)
	for j2 := 0; j2 < c; j2++ {
		src := rowPerm[j2]
		for rr := 0; rr < r; rr++ {
			e := uint64(rr) * uint64(2*src+1) % uint64(2*n)
			lm.tw[j2*r+rr] = m.PowMod(psi, e)
		}
	}

	// T3[rr][j1] = (ω^C)^{rr·j1}   (R×R), columns permuted offline.
	omegaC := m.PowMod(omega, uint64(c))
	lm.t3 = make([]uint64, r*r)
	for rr := 0; rr < r; rr++ {
		for j1 := 0; j1 < r; j1++ {
			lm.t3[rr*r+j1] = m.PowMod(omegaC, uint64(rr)*uint64(colPerm[j1])%uint64(n))
		}
	}

	// Inverse matrices, reading the forward output layout directly.
	// T3inv[p1][rr] = (ω^C)^{-brv(p1)·rr}  (row-permuted).
	omegaCInv := m.PowMod(omegaInv, uint64(c))
	lm.t3Inv = make([]uint64, r*r)
	for p1 := 0; p1 < r; p1++ {
		src := colPerm[p1]
		for rr := 0; rr < r; rr++ {
			lm.t3Inv[p1*r+rr] = m.PowMod(omegaCInv, uint64(src)*uint64(rr)%uint64(n))
		}
	}

	// TWinv[p2][rr] = ψ^{-rr·(2·brv(p2)+1)}  (row-permuted).
	lm.twInv = make([]uint64, c*r)
	for p2 := 0; p2 < c; p2++ {
		src := rowPerm[p2]
		for rr := 0; rr < r; rr++ {
			e := uint64(rr) * uint64(2*src+1) % uint64(2*n)
			lm.twInv[p2*r+rr] = m.PowMod(psiInv, e)
		}
	}

	// T1inv[cc][p2] = (1/N)·ψ^{-R·cc·(2·brv(p2)+1)}  (column-permuted).
	lm.t1Inv = make([]uint64, c*c)
	for cc := 0; cc < c; cc++ {
		for p2 := 0; p2 < c; p2++ {
			src := rowPerm[p2]
			e := uint64(r) * uint64(cc) % uint64(2*n) * uint64(2*src+1) % uint64(2*n)
			lm.t1Inv[cc*c+p2] = m.MulMod(m.PowMod(psiInv, e), nInv)
		}
	}

	lm.t1S = shoupVec(m, lm.t1)
	lm.twS = shoupVec(m, lm.tw)
	lm.t3S = shoupVec(m, lm.t3)
	lm.t3InvS = shoupVec(m, lm.t3Inv)
	lm.twInvS = shoupVec(m, lm.twInv)
	lm.t1InvS = shoupVec(m, lm.t1Inv)
	return lm
}

func shoupVec(m *modarith.Modulus, v []uint64) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = m.ShoupPrecompute(x)
	}
	return out
}

func log2(x int) uint {
	var l uint
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

// Matrices exposes the forward step matrices of limb i (T1, TW, T3) for
// the CROSS compiler's BAT pass. The returned slices are the live plan
// tables and must not be mutated.
func (p *MatNTTPlan) Matrices(i int) (t1, tw, t3 []uint64) {
	lm := p.limbs[i]
	return lm.t1, lm.tw, lm.t3
}

// InverseMatrices exposes the inverse step matrices of limb i.
func (p *MatNTTPlan) InverseMatrices(i int) (t3Inv, twInv, t1Inv []uint64) {
	lm := p.limbs[i]
	return lm.t3Inv, lm.twInv, lm.t1Inv
}

// ForwardLimb transforms one limb: in (natural coefficient order, length
// N) to the plan's evaluation layout. in and out may alias. Scratch
// comes from the ring's arena, so steady-state calls allocate nothing.
func (p *MatNTTPlan) ForwardLimb(i int, in, out []uint64) {
	lm := p.limbs[i]
	r, c := p.R, p.C
	ar := p.ring.scratch
	tb := p.ring.GetScratch()
	tmp := (*tb)[:c*r]
	// Step 1: A = T1 @ X, X[cc][rr] = in[cc·R+rr].
	matMulConstLeft(lm.m, lm.t1, lm.t1S, c, c, in, r, tmp, ar)
	// Step 2: A ⊙ TW (VPU-mapped element-wise twist).
	lm.m.VecMulModShoup(tmp, tmp, lm.tw, lm.twS)
	// Step 3: Y = Ã @ T3.
	matMulConstRight(lm.m, tmp, c, r, lm.t3, lm.t3S, r, out, ar)
	p.ring.PutScratch(tb)
}

// InverseLimb inverts ForwardLimb: evaluation layout back to natural
// coefficient order. in and out may alias.
func (p *MatNTTPlan) InverseLimb(i int, in, out []uint64) {
	lm := p.limbs[i]
	r, c := p.R, p.C
	ar := p.ring.scratch
	tb := p.ring.GetScratch()
	tmp := (*tb)[:c*r]
	// Step 1': U = Z @ T3inv.
	matMulConstRight(lm.m, in, c, r, lm.t3Inv, lm.t3InvS, r, tmp, ar)
	// Step 2': ⊙ TWinv.
	lm.m.VecMulModShoup(tmp, tmp, lm.twInv, lm.twInvS)
	// Step 3': X = T1inv @ Ũ.
	matMulConstLeft(lm.m, lm.t1Inv, lm.t1InvS, c, c, tmp, r, out, ar)
	p.ring.PutScratch(tb)
}

// Forward transforms every limb of p into the plan's layout,
// limb-parallel when the plan's ring has WithParallelism configured.
func (p *MatNTTPlan) Forward(poly *Poly) {
	parallelFor(p.ring.Parallelism(), poly.Level()+1, func(i int) {
		p.ForwardLimb(i, poly.Coeffs[i], poly.Coeffs[i])
	})
}

// Inverse inverts every limb of p (limb-parallel like Forward).
func (p *MatNTTPlan) Inverse(poly *Poly) {
	parallelFor(p.ring.Parallelism(), poly.Level()+1, func(i int) {
		p.InverseLimb(i, poly.Coeffs[i], poly.Coeffs[i])
	})
}

// Forward4Step is the SoTA GPU baseline (Fig. 10 row 1): the same
// matrix pipeline followed by an explicit runtime transpose to natural
// order — the data reordering MAT exists to remove. Only defined for
// plans compiled with LayoutDigitSwap (the un-permuted twiddles).
func (p *MatNTTPlan) Forward4Step(i int, in, out []uint64) {
	if p.Order != LayoutDigitSwap {
		panic("ring: Forward4Step requires a LayoutDigitSwap plan")
	}
	r, c := p.R, p.C
	yb := p.ring.GetScratch()
	y := (*yb)[:c*r]
	p.ForwardLimb(i, in, y)
	// Explicit transpose: natural out[j1·C+j2] = Y[j2][j1].
	for j2 := 0; j2 < c; j2++ {
		for j1 := 0; j1 < r; j1++ {
			out[j1*c+j2] = y[j2*r+j1]
		}
	}
	p.ring.PutScratch(yb)
}

// Inverse4Step inverts Forward4Step from natural order.
func (p *MatNTTPlan) Inverse4Step(i int, in, out []uint64) {
	if p.Order != LayoutDigitSwap {
		panic("ring: Inverse4Step requires a LayoutDigitSwap plan")
	}
	r, c := p.R, p.C
	yb := p.ring.GetScratch()
	y := (*yb)[:c*r]
	for j2 := 0; j2 < c; j2++ {
		for j1 := 0; j1 < r; j1++ {
			y[j2*r+j1] = in[j1*c+j2]
		}
	}
	p.InverseLimb(i, y, out)
	p.ring.PutScratch(yb)
}

// lazyAccumBound reports how many [0,2q) terms can be summed in a uint64
// before overflow.
func lazyAccumBound(q uint64) int {
	maxTerms := ^uint64(0) / (2 * q)
	if maxTerms > 1<<30 {
		return 1 << 30
	}
	return int(maxTerms)
}

// aliasScratch resolves the destination for an in-place matrix product:
// when x and out share backing, the result is staged in an arena buffer
// (or a fresh one if no arena fits) and copied out at the end.
func aliasScratch(x, out []uint64, size int, ar *arena) (res []uint64, borrowed *[]uint64) {
	if !sameBacking(x, out) {
		return out, nil
	}
	if ar != nil && size <= ar.n {
		b := ar.pool.Get().(*[]uint64)
		return (*b)[:size], b
	}
	return make([]uint64, size), nil
}

// matMulConstLeft computes out = A @ X where A (rows×inner, with Shoup
// table AS) is a compile-time constant and X is inner×cols runtime data.
// All matrices are flat row-major. ar supplies aliasing scratch (nil
// falls back to allocation).
func matMulConstLeft(m *modarith.Modulus, a, aS []uint64, rows, inner int, x []uint64, cols int, out []uint64, ar *arena) {
	if lazyAccumBound(m.Q) < inner {
		matMulConstLeftSafe(m, a, rows, inner, x, cols, out, ar)
		return
	}
	res, borrowed := aliasScratch(x, out, rows*cols, ar)
	for i := 0; i < rows; i++ {
		arow := a[i*inner : (i+1)*inner]
		asrow := aS[i*inner : (i+1)*inner]
		for j := 0; j < cols; j++ {
			var acc uint64
			for k := 0; k < inner; k++ {
				acc += m.ShoupMul(x[k*cols+j], arow[k], asrow[k])
			}
			res[i*cols+j] = m.Reduce(acc)
		}
	}
	if borrowed != nil || sameBacking(x, out) {
		copy(out, res)
	}
	if borrowed != nil && ar != nil {
		ar.pool.Put(borrowed)
	}
}

// matMulConstLeftSafe is the wide-modulus fallback with per-term
// reduction.
func matMulConstLeftSafe(m *modarith.Modulus, a []uint64, rows, inner int, x []uint64, cols int, out []uint64, ar *arena) {
	res, borrowed := aliasScratch(x, out, rows*cols, ar)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var acc uint64
			for k := 0; k < inner; k++ {
				acc = m.AddMod(acc, m.MulMod(a[i*inner+k], x[k*cols+j]))
			}
			res[i*cols+j] = acc
		}
	}
	if borrowed != nil || sameBacking(x, out) {
		copy(out, res)
	}
	if borrowed != nil && ar != nil {
		ar.pool.Put(borrowed)
	}
}

// matMulConstRight computes out = X @ B where B (inner×cols, with Shoup
// table BS) is a compile-time constant and X is rows×inner runtime data.
func matMulConstRight(m *modarith.Modulus, x []uint64, rows, inner int, b, bS []uint64, cols int, out []uint64, ar *arena) {
	safe := lazyAccumBound(m.Q) < inner
	res, borrowed := aliasScratch(x, out, rows*cols, ar)
	for i := 0; i < rows; i++ {
		xrow := x[i*inner : (i+1)*inner]
		for j := 0; j < cols; j++ {
			var acc uint64
			if safe {
				for k := 0; k < inner; k++ {
					acc = m.AddMod(acc, m.MulMod(xrow[k], b[k*cols+j]))
				}
			} else {
				for k := 0; k < inner; k++ {
					acc += m.ShoupMul(xrow[k], b[k*cols+j], bS[k*cols+j])
				}
				acc = m.Reduce(acc)
			}
			res[i*cols+j] = acc
		}
	}
	if borrowed != nil || sameBacking(x, out) {
		copy(out, res)
	}
	if borrowed != nil && ar != nil {
		ar.pool.Put(borrowed)
	}
}

// sameBacking reports whether two slices share their first element —
// sufficient aliasing detection for the in-place call patterns above.
func sameBacking(a, b []uint64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}
