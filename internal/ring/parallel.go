package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Host-side parallelism (the CPU analogue of the pod's limb sharding).
// RNS limbs are fully independent through the NTT, so the transforms
// fan limbs out over a goroutine worker pool. Parallel execution is
// bit-exact by construction: each limb runs the unchanged serial
// kernel, only the assignment of limbs to workers varies — there is no
// floating point and no cross-limb state, so results are independent
// of scheduling.

// WithParallelism returns a view of the ring whose whole-polynomial
// transforms (NTT, INTT, and MatNTTPlan.Forward/Inverse on plans built
// from the view) distribute limbs across up to `workers` goroutines.
// workers ≤ 1 selects the serial path; the view shares all twiddle
// tables with the receiver.
func (r *Ring) WithParallelism(workers int) *Ring {
	cp := *r
	if workers < 1 {
		workers = 1
	}
	cp.parallelism = workers
	return &cp
}

// Parallelism reports the ring's configured worker count (≥ 1).
func (r *Ring) Parallelism() int {
	if r.parallelism < 1 {
		return 1
	}
	return r.parallelism
}

// DefaultParallelism is the worker count WithParallelism callers
// typically want: one worker per CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// parallelFor runs f(0..n-1), fanning out over up to `workers`
// goroutines. Iterations must be independent; work is claimed from an
// atomic counter so uneven iteration costs balance.
func parallelFor(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
