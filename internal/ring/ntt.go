package ring

import (
	"fmt"
	"math/bits"

	"cross/internal/modarith"
)

// nttTable holds the per-modulus twiddle factors for the radix-2
// Cooley–Tukey NTT (Alg. 3). Powers of ψ (primitive 2N-th root) are
// stored in bit-reversed order with Shoup quotients, the layout used by
// the merged negacyclic butterfly (Longa–Naehrig).
type nttTable struct {
	n       int
	psi     uint64 // primitive 2N-th root of unity
	psiInv  uint64 // ψ⁻¹
	omega   uint64 // ψ², primitive N-th root
	nInv    uint64 // N⁻¹ mod q
	nInvSho uint64
	// Merged last-stage INTT twiddle ψ^-brv(1)·N⁻¹: folding the final
	// N⁻¹ scaling into the last Gentleman–Sande stage removes the whole
	// normalization pass (Longa–Naehrig merged butterfly).
	nInvPsi    uint64
	nInvPsiSho uint64

	psiRev       []uint64 // ψ^brv(i), i ∈ [0, N)
	psiRevSho    []uint64
	psiInvRev    []uint64 // ψ^-brv(i)
	psiInvRevSho []uint64
}

func newNTTTable(m *modarith.Modulus, n int) (*nttTable, error) {
	psi, err := m.PrimitiveRootOfUnity(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ring: modulus %d: %w", m.Q, err)
	}
	t := &nttTable{
		n:            n,
		psi:          psi,
		psiInv:       m.InvMod(psi),
		omega:        m.MulMod(psi, psi),
		nInv:         m.InvMod(uint64(n)),
		psiRev:       make([]uint64, n),
		psiRevSho:    make([]uint64, n),
		psiInvRev:    make([]uint64, n),
		psiInvRevSho: make([]uint64, n),
	}
	t.nInvSho = m.ShoupPrecompute(t.nInv)
	logN := uint(bits.Len(uint(n)) - 1)
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := int(bitReverse(uint64(i), logN))
		t.psiRev[r] = fwd
		t.psiInvRev[r] = inv
		fwd = m.MulMod(fwd, psi)
		inv = m.MulMod(inv, t.psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiRevSho[i] = m.ShoupPrecompute(t.psiRev[i])
		t.psiInvRevSho[i] = m.ShoupPrecompute(t.psiInvRev[i])
	}
	t.nInvPsi = m.MulMod(t.psiInvRev[1], t.nInv)
	t.nInvPsiSho = m.ShoupPrecompute(t.nInvPsi)
	return t, nil
}

// bitReverse reverses the low `width` bits of x.
func bitReverse(x uint64, width uint) uint64 {
	return bits.Reverse64(x) >> (64 - width)
}

// BitReverse exposes the bit-reversal helper used throughout the NTT
// algorithm family (MAT builds its offline permutations from it).
func BitReverse(x uint64, width uint) uint64 { return bitReverse(x, width) }

// NTTInPlace performs the in-place forward negacyclic NTT of one limb
// via merged Longa–Naehrig/Harvey butterflies (Alg. 3). Input is in
// natural coefficient order with coefficients in [0, q); output is the
// evaluation vector in bit-reversed order, fully reduced to [0, q):
// out[brv(j)] = Σ_i a_i ψ^{i(2j+1)}.
//
// Reduction is deferred across stages: values stay in [0, 4q) between
// stages and each butterfly corrects its first operand to [0, 2q) only
// when it is read. The final stage folds the closing correction into
// its butterflies, so no separate normalization pass runs. The inner
// loops are 4×-unrolled with hoisted modulus constants. Steady-state
// execution allocates nothing.
func (r *Ring) NTTInPlace(i int, a []uint64) {
	t := r.tables[i]
	m := r.Moduli[i]
	n := r.N
	if len(a) != n {
		panic("ring: NTTInPlace length mismatch")
	}
	q := m.Q
	twoQ := q + q

	// Opening pass. For n ≥ 16 the first two stages fuse into one
	// radix-4 sweep: each iteration loads the four strided operands,
	// runs the stage-1 butterflies (inputs < q, no correction) and both
	// stage-2 butterflies in registers, then stores — one load/store
	// pass instead of two. For n == 8 only stage 1 runs here.
	var step, half int
	if n >= 16 {
		q4 := n >> 2
		w1, w1s := t.psiRev[1], t.psiRevSho[1]
		wA, wAs := t.psiRev[2], t.psiRevSho[2]
		wB, wBs := t.psiRev[3], t.psiRevSho[3]
		x0 := a[0:q4:q4]
		x1 := a[q4 : 2*q4 : 2*q4]
		x2 := a[2*q4 : 3*q4 : 3*q4]
		x3 := a[3*q4 : 4*q4 : 4*q4]
		x1 = x1[:len(x0):len(x0)]
		x2 = x2[:len(x0):len(x0)]
		x3 = x3[:len(x0):len(x0)]
		for j := 0; j < len(x0); j++ {
			u0, u1, u2, u3 := x0[j], x1[j], x2[j], x3[j]
			// Stage 1: pairs (u0,u2), (u1,u3), twiddle ψ^brv(1).
			hv0, _ := bits.Mul64(u2, w1s)
			v0 := u2*w1 - hv0*q
			hv1, _ := bits.Mul64(u3, w1s)
			v1 := u3*w1 - hv1*q
			a0 := u0 + v0        // [0, 3q)
			a2 := u0 + twoQ - v0 // (0, 3q)
			a1 := u1 + v1
			a3 := u1 + twoQ - v1
			// Stage 2: block 0 pairs (a0,a1), block 1 pairs (a2,a3).
			if a0 >= twoQ {
				a0 -= twoQ
			}
			hA, _ := bits.Mul64(a1, wAs)
			vA := a1*wA - hA*q
			if a2 >= twoQ {
				a2 -= twoQ
			}
			hB, _ := bits.Mul64(a3, wBs)
			vB := a3*wB - hB*q
			x0[j] = a0 + vA
			x1[j] = a0 + twoQ - vA
			x2[j] = a2 + vB
			x3[j] = a2 + twoQ - vB
		}
		step = 4
		half = n >> 3
	} else {
		// n == 8: plain stage 1 (inputs < q, no correction).
		half = n >> 1
		w, ws := t.psiRev[1], t.psiRevSho[1]
		x := a[:half]
		y := a[half : 2*half]
		y = y[:len(x):len(x)]
		for j := 0; j < len(x); j++ {
			u := x[j]
			hi, _ := bits.Mul64(y[j], ws)
			v := y[j]*w - hi*q
			x[j] = u + v
			y[j] = u + twoQ - v
		}
		step = 2
		half = n >> 2
	}

	// Middle stages with half ≥ 8: generic 4×-unrolled lazy butterflies,
	// outputs in [0, 4q), first operand corrected to [0, 2q) on read.
	for ; half >= 8; step, half = step<<1, half>>1 {
		for blk := 0; blk < step; blk++ {
			w := t.psiRev[step+blk]
			ws := t.psiRevSho[step+blk]
			j1 := 2 * blk * half
			x := a[j1 : j1+half : j1+half]
			y := a[j1+half : j1+2*half : j1+2*half]
			y = y[:len(x):len(x)]
			for j := 0; j <= len(x)-4; j += 4 {
				u0, u1, u2, u3 := x[j], x[j+1], x[j+2], x[j+3]
				y0, y1, y2, y3 := y[j], y[j+1], y[j+2], y[j+3]
				if u0 >= twoQ {
					u0 -= twoQ
				}
				if u1 >= twoQ {
					u1 -= twoQ
				}
				if u2 >= twoQ {
					u2 -= twoQ
				}
				if u3 >= twoQ {
					u3 -= twoQ
				}
				h0, _ := bits.Mul64(y0, ws)
				h1, _ := bits.Mul64(y1, ws)
				h2, _ := bits.Mul64(y2, ws)
				h3, _ := bits.Mul64(y3, ws)
				v0 := y0*w - h0*q
				v1 := y1*w - h1*q
				v2 := y2*w - h2*q
				v3 := y3*w - h3*q
				x[j], x[j+1], x[j+2], x[j+3] = u0+v0, u1+v1, u2+v2, u3+v3
				y[j], y[j+1], y[j+2], y[j+3] = u0+twoQ-v0, u1+twoQ-v1, u2+twoQ-v2, u3+twoQ-v3
			}
		}
	}

	// half == 4 stage: each block is one fully-unrolled 8-word window.
	if half == 4 {
		for blk := 0; blk < step; blk++ {
			w := t.psiRev[step+blk]
			ws := t.psiRevSho[step+blk]
			p := a[blk*8 : blk*8+8 : blk*8+8]
			u0, u1, u2, u3 := p[0], p[1], p[2], p[3]
			y0, y1, y2, y3 := p[4], p[5], p[6], p[7]
			if u0 >= twoQ {
				u0 -= twoQ
			}
			if u1 >= twoQ {
				u1 -= twoQ
			}
			if u2 >= twoQ {
				u2 -= twoQ
			}
			if u3 >= twoQ {
				u3 -= twoQ
			}
			h0, _ := bits.Mul64(y0, ws)
			h1, _ := bits.Mul64(y1, ws)
			h2, _ := bits.Mul64(y2, ws)
			h3, _ := bits.Mul64(y3, ws)
			v0 := y0*w - h0*q
			v1 := y1*w - h1*q
			v2 := y2*w - h2*q
			v3 := y3*w - h3*q
			p[0], p[1], p[2], p[3] = u0+v0, u1+v1, u2+v2, u3+v3
			p[4], p[5], p[6], p[7] = u0+twoQ-v0, u1+twoQ-v1, u2+twoQ-v2, u3+twoQ-v3
		}
		step <<= 1
		half = 2
	}

	// Fused final stages (half == 2, then half == 1): each 4-word window
	// runs both stages in registers — one load/store pass instead of two
	// — and the half-1 butterflies fold the closing correction, so
	// coefficients land in [0, q) with no normalization pass at all.
	w2Row := t.psiRev[step : 2*step]
	w2sRow := t.psiRevSho[step : 2*step]
	w2sRow = w2sRow[:len(w2Row)]
	w1Row := t.psiRev[2*step : 4*step]
	w1sRow := t.psiRevSho[2*step : 4*step]
	for blk := 0; blk < len(w2Row); blk++ {
		w, ws := w2Row[blk], w2sRow[blk]
		p := a[blk*4 : blk*4+4 : blk*4+4]
		u0, u1 := p[0], p[1]
		y0, y1 := p[2], p[3]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		if u1 >= twoQ {
			u1 -= twoQ
		}
		h0, _ := bits.Mul64(y0, ws)
		h1, _ := bits.Mul64(y1, ws)
		v0 := y0*w - h0*q
		v1 := y1*w - h1*q
		x0 := u0 + v0
		x1 := u1 + v1
		z0 := u0 + twoQ - v0
		z1 := u1 + twoQ - v1

		wA, wAs := w1Row[2*blk], w1sRow[2*blk]
		wB, wBs := w1Row[2*blk+1], w1sRow[2*blk+1]
		if x0 >= twoQ {
			x0 -= twoQ
		}
		hA, _ := bits.Mul64(x1, wAs)
		vA := x1*wA - hA*q
		t0 := x0 + vA
		if t0 >= twoQ {
			t0 -= twoQ
		}
		if t0 >= q {
			t0 -= q
		}
		t1 := x0 + twoQ - vA
		if t1 >= twoQ {
			t1 -= twoQ
		}
		if t1 >= q {
			t1 -= q
		}
		if z0 >= twoQ {
			z0 -= twoQ
		}
		hB, _ := bits.Mul64(z1, wBs)
		vB := z1*wB - hB*q
		t2 := z0 + vB
		if t2 >= twoQ {
			t2 -= twoQ
		}
		if t2 >= q {
			t2 -= q
		}
		t3 := z0 + twoQ - vB
		if t3 >= twoQ {
			t3 -= twoQ
		}
		if t3 >= q {
			t3 -= q
		}
		p[0], p[1], p[2], p[3] = t0, t1, t2, t3
	}
}

// INTTInPlace performs the in-place inverse NTT of one limb via merged
// Gentleman–Sande butterflies: input in bit-reversed evaluation order
// (the output order of NTTInPlace), output in natural coefficient
// order scaled by N⁻¹, fully reduced to [0, q).
//
// Values stay lazily bounded by 2q between stages; the final stage
// folds both the N⁻¹ scaling (via the merged twiddle ψ^-brv(1)·N⁻¹)
// and the closing correction into its butterflies, eliminating the
// separate normalization pass entirely. Steady-state execution
// allocates nothing.
func (r *Ring) INTTInPlace(i int, a []uint64) {
	t := r.tables[i]
	m := r.Moduli[i]
	n := r.N
	if len(a) != n {
		panic("ring: INTTInPlace length mismatch")
	}
	q := m.Q
	twoQ := q + q

	// Fused opening stages (half == 1, then half == 2): each 4-word
	// window runs its two half-1 GS butterflies and the half-2 pair in
	// registers — one load/store pass instead of two.
	step := n >> 1
	w1Row := t.psiInvRev[step : 2*step]
	w1sRow := t.psiInvRevSho[step : 2*step]
	step >>= 1
	w2Row := t.psiInvRev[step : 2*step]
	w2sRow := t.psiInvRevSho[step : 2*step]
	w2sRow = w2sRow[:len(w2Row)]
	for blk := 0; blk < len(w2Row); blk++ {
		p := a[blk*4 : blk*4+4 : blk*4+4]
		// half == 1 butterflies on (p0,p1) and (p2,p3).
		wA, wAs := w1Row[2*blk], w1sRow[2*blk]
		wB, wBs := w1Row[2*blk+1], w1sRow[2*blk+1]
		u0, v0 := p[0], p[1]
		sA := u0 + v0
		if sA >= twoQ {
			sA -= twoQ
		}
		dA := u0 + twoQ - v0
		hA, _ := bits.Mul64(dA, wAs)
		rA := dA*wA - hA*q
		u1, v1 := p[2], p[3]
		sB := u1 + v1
		if sB >= twoQ {
			sB -= twoQ
		}
		dB := u1 + twoQ - v1
		hB, _ := bits.Mul64(dB, wBs)
		rB := dB*wB - hB*q
		// half == 2 butterflies on (sA,sB) and (rA,rB).
		w, ws := w2Row[blk], w2sRow[blk]
		s0 := sA + sB
		if s0 >= twoQ {
			s0 -= twoQ
		}
		d0 := sA + twoQ - sB
		h0, _ := bits.Mul64(d0, ws)
		s1 := rA + rB
		if s1 >= twoQ {
			s1 -= twoQ
		}
		d1 := rA + twoQ - rB
		h1, _ := bits.Mul64(d1, ws)
		p[0], p[1] = s0, s1
		p[2], p[3] = d0*w-h0*q, d1*w-h1*q
	}
	step >>= 1

	// half == 4 stage: one 8-word window per block. Runs only when this
	// stage is not already claimed by the fused closing pass (n ≥ 32).
	if step >= 4 {
		for blk := 0; blk < step; blk++ {
			w := t.psiInvRev[step+blk]
			ws := t.psiInvRevSho[step+blk]
			p := a[blk*8 : blk*8+8 : blk*8+8]
			u0, u1, u2, u3 := p[0], p[1], p[2], p[3]
			v0, v1, v2, v3 := p[4], p[5], p[6], p[7]
			s0, s1, s2, s3 := u0+v0, u1+v1, u2+v2, u3+v3
			if s0 >= twoQ {
				s0 -= twoQ
			}
			if s1 >= twoQ {
				s1 -= twoQ
			}
			if s2 >= twoQ {
				s2 -= twoQ
			}
			if s3 >= twoQ {
				s3 -= twoQ
			}
			d0 := u0 + twoQ - v0
			d1 := u1 + twoQ - v1
			d2 := u2 + twoQ - v2
			d3 := u3 + twoQ - v3
			h0, _ := bits.Mul64(d0, ws)
			h1, _ := bits.Mul64(d1, ws)
			h2, _ := bits.Mul64(d2, ws)
			h3, _ := bits.Mul64(d3, ws)
			p[0], p[1], p[2], p[3] = s0, s1, s2, s3
			p[4], p[5], p[6], p[7] = d0*w-h0*q, d1*w-h1*q, d2*w-h2*q, d3*w-h3*q
		}
		step >>= 1
	}

	// Middle stages with half ≥ 8 (step ≥ 4): generic 4×-unrolled lazy
	// GS butterflies. Three stages (half 1, 2, 4) ran above, so the
	// entry half is always 8 (half = n / 2·step throughout); the step 2
	// and step 1 stages belong to the fused closing pass.
	half := 8
	for ; step >= 4; step, half = step>>1, half<<1 {
		for blk := 0; blk < step; blk++ {
			w := t.psiInvRev[step+blk]
			ws := t.psiInvRevSho[step+blk]
			j1 := 2 * blk * half
			x := a[j1 : j1+half : j1+half]
			y := a[j1+half : j1+2*half : j1+2*half]
			y = y[:len(x):len(x)]
			for j := 0; j <= len(x)-4; j += 4 {
				u0, u1, u2, u3 := x[j], x[j+1], x[j+2], x[j+3]
				v0, v1, v2, v3 := y[j], y[j+1], y[j+2], y[j+3]
				s0, s1, s2, s3 := u0+v0, u1+v1, u2+v2, u3+v3
				if s0 >= twoQ {
					s0 -= twoQ
				}
				if s1 >= twoQ {
					s1 -= twoQ
				}
				if s2 >= twoQ {
					s2 -= twoQ
				}
				if s3 >= twoQ {
					s3 -= twoQ
				}
				d0 := u0 + twoQ - v0
				d1 := u1 + twoQ - v1
				d2 := u2 + twoQ - v2
				d3 := u3 + twoQ - v3
				h0, _ := bits.Mul64(d0, ws)
				h1, _ := bits.Mul64(d1, ws)
				h2, _ := bits.Mul64(d2, ws)
				h3, _ := bits.Mul64(d3, ws)
				x[j], x[j+1], x[j+2], x[j+3] = s0, s1, s2, s3
				y[j], y[j+1], y[j+2], y[j+3] = d0*w-h0*q, d1*w-h1*q, d2*w-h2*q, d3*w-h3*q
			}
		}
	}
	// Closing pass: the sum leg of the last stage scales by N⁻¹, the
	// difference leg by the merged twiddle ψ^-brv(1)·N⁻¹, and both legs
	// correct to [0, q) inside the butterfly — no normalization pass.
	// For n ≥ 16 the step-2 stage fuses in as well: each iteration runs
	// both its GS butterflies and both final butterflies in registers
	// on the four strided operands.
	nI, nIs := t.nInv, t.nInvSho
	wn, wns := t.nInvPsi, t.nInvPsiSho
	if n >= 16 {
		q4 := n >> 2
		wA, wAs := t.psiInvRev[2], t.psiInvRevSho[2]
		wB, wBs := t.psiInvRev[3], t.psiInvRevSho[3]
		x0 := a[0:q4:q4]
		x1 := a[q4 : 2*q4 : 2*q4]
		x2 := a[2*q4 : 3*q4 : 3*q4]
		x3 := a[3*q4 : 4*q4 : 4*q4]
		x1 = x1[:len(x0):len(x0)]
		x2 = x2[:len(x0):len(x0)]
		x3 = x3[:len(x0):len(x0)]
		for j := 0; j < len(x0); j++ {
			u0, u1, u2, u3 := x0[j], x1[j], x2[j], x3[j]
			// Step-2 stage: block 0 pairs (u0,u1), block 1 pairs (u2,u3).
			sA := u0 + u1
			if sA >= twoQ {
				sA -= twoQ
			}
			dA := u0 + twoQ - u1
			hA, _ := bits.Mul64(dA, wAs)
			rA := dA*wA - hA*q
			sB := u2 + u3
			if sB >= twoQ {
				sB -= twoQ
			}
			dB := u2 + twoQ - u3
			hB, _ := bits.Mul64(dB, wBs)
			rB := dB*wB - hB*q
			// Final stage: pairs (sA,sB) and (rA,rB), N⁻¹ folded in.
			s := sA + sB
			if s >= twoQ {
				s -= twoQ
			}
			hs, _ := bits.Mul64(s, nIs)
			rs := s*nI - hs*q
			if rs >= q {
				rs -= q
			}
			d := sA + twoQ - sB
			hd, _ := bits.Mul64(d, wns)
			rd := d*wn - hd*q
			if rd >= q {
				rd -= q
			}
			s2 := rA + rB
			if s2 >= twoQ {
				s2 -= twoQ
			}
			hs2, _ := bits.Mul64(s2, nIs)
			rs2 := s2*nI - hs2*q
			if rs2 >= q {
				rs2 -= q
			}
			d2 := rA + twoQ - rB
			hd2, _ := bits.Mul64(d2, wns)
			rd2 := d2*wn - hd2*q
			if rd2 >= q {
				rd2 -= q
			}
			x0[j], x1[j], x2[j], x3[j] = rs, rs2, rd, rd2
		}
		return
	}

	// n == 8: plain merged final stage (step == 1).
	half = n >> 1
	for j := 0; j < half; j++ {
		u, v := a[j], a[j+half]
		s := u + v
		if s >= twoQ {
			s -= twoQ
		}
		hs, _ := bits.Mul64(s, nIs)
		rs := s*nI - hs*q
		if rs >= q {
			rs -= q
		}
		d := u + twoQ - v
		hd, _ := bits.Mul64(d, wns)
		rd := d*wn - hd*q
		if rd >= q {
			rd -= q
		}
		a[j] = rs
		a[j+half] = rd
	}
}

// NTTLimb is the historical name of NTTInPlace, kept for callers of
// the pre-lazy API.
func (r *Ring) NTTLimb(i int, a []uint64) { r.NTTInPlace(i, a) }

// INTTLimb is the historical name of INTTInPlace.
func (r *Ring) INTTLimb(i int, a []uint64) { r.INTTInPlace(i, a) }

// NTTInPlaceStrict is the retained strict-reduction forward transform:
// every butterfly fully reduces both legs to [0, q) before the next
// stage reads them. It is the bit-exactness oracle the lazy
// NTTInPlace is tested and fuzzed against (slower, never used on hot
// paths).
func (r *Ring) NTTInPlaceStrict(i int, a []uint64) {
	t := r.tables[i]
	m := r.Moduli[i]
	n := r.N
	if len(a) != n {
		panic("ring: NTTInPlaceStrict length mismatch")
	}
	half := n
	for step := 1; step < n; step <<= 1 {
		half >>= 1
		for blk := 0; blk < step; blk++ {
			w := t.psiRev[step+blk]
			ws := t.psiRevSho[step+blk]
			j1 := 2 * blk * half
			for j := j1; j < j1+half; j++ {
				u := a[j]
				v := m.ShoupMulFull(a[j+half], w, ws)
				a[j] = m.AddMod(u, v)
				a[j+half] = m.SubMod(u, v)
			}
		}
	}
}

// INTTInPlaceStrict is the retained strict-reduction inverse
// transform, the oracle for INTTInPlace.
func (r *Ring) INTTInPlaceStrict(i int, a []uint64) {
	t := r.tables[i]
	m := r.Moduli[i]
	n := r.N
	if len(a) != n {
		panic("ring: INTTInPlaceStrict length mismatch")
	}
	half := 1
	for step := n >> 1; step >= 1; step >>= 1 {
		for blk := 0; blk < step; blk++ {
			w := t.psiInvRev[step+blk]
			ws := t.psiInvRevSho[step+blk]
			j1 := 2 * blk * half
			for j := j1; j < j1+half; j++ {
				u := a[j]
				v := a[j+half]
				a[j] = m.AddMod(u, v)
				a[j+half] = m.ShoupMulFull(m.SubMod(u, v), w, ws)
			}
		}
		half <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = m.ShoupMulFull(a[j], t.nInv, t.nInvSho)
	}
}

// NTT forward-transforms every limb of p in place, fanning limbs over
// the ring's worker pool when WithParallelism configured one.
func (r *Ring) NTT(p *Poly) {
	parallelFor(r.Parallelism(), p.Level()+1, func(i int) {
		r.NTTLimb(i, p.Coeffs[i])
	})
}

// INTT inverse-transforms every limb of p in place (limb-parallel like
// NTT).
func (r *Ring) INTT(p *Poly) {
	parallelFor(r.Parallelism(), p.Level()+1, func(i int) {
		r.INTTLimb(i, p.Coeffs[i])
	})
}

// NTTNaiveLimb is the O(N²) reference forward transform in natural
// output order: out[j] = Σ_i a_i ψ^{i(2j+1)}. It is the oracle against
// which every fast variant is verified.
func (r *Ring) NTTNaiveLimb(i int, a []uint64) []uint64 {
	m := r.Moduli[i]
	t := r.tables[i]
	n := r.N
	out := make([]uint64, n)
	for j := 0; j < n; j++ {
		// root = ψ^(2j+1)
		root := m.MulMod(m.PowMod(t.omega, uint64(j)), t.psi)
		var acc, pw uint64
		pw = 1
		for k := 0; k < n; k++ {
			acc = m.AddMod(acc, m.MulMod(a[k], pw))
			pw = m.MulMod(pw, root)
		}
		out[j] = acc
	}
	return out
}

// INTTNaiveLimb is the O(N²) reference inverse of NTTNaiveLimb.
func (r *Ring) INTTNaiveLimb(i int, b []uint64) []uint64 {
	m := r.Moduli[i]
	t := r.tables[i]
	n := r.N
	out := make([]uint64, n)
	for k := 0; k < n; k++ {
		var acc uint64
		for j := 0; j < n; j++ {
			// ψ^{-k(2j+1)}
			e := m.PowMod(t.psiInv, uint64(k*(2*j+1))%uint64(2*n))
			acc = m.AddMod(acc, m.MulMod(b[j], e))
		}
		out[k] = m.MulMod(acc, t.nInv)
	}
	return out
}
