package ring

import (
	"fmt"
	"math/bits"

	"cross/internal/modarith"
)

// nttTable holds the per-modulus twiddle factors for the radix-2
// Cooley–Tukey NTT (Alg. 3). Powers of ψ (primitive 2N-th root) are
// stored in bit-reversed order with Shoup quotients, the layout used by
// the merged negacyclic butterfly (Longa–Naehrig).
type nttTable struct {
	n       int
	psi     uint64 // primitive 2N-th root of unity
	psiInv  uint64 // ψ⁻¹
	omega   uint64 // ψ², primitive N-th root
	nInv    uint64 // N⁻¹ mod q
	nInvSho uint64

	psiRev       []uint64 // ψ^brv(i), i ∈ [0, N)
	psiRevSho    []uint64
	psiInvRev    []uint64 // ψ^-brv(i)
	psiInvRevSho []uint64
}

func newNTTTable(m *modarith.Modulus, n int) (*nttTable, error) {
	psi, err := m.PrimitiveRootOfUnity(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ring: modulus %d: %w", m.Q, err)
	}
	t := &nttTable{
		n:            n,
		psi:          psi,
		psiInv:       m.InvMod(psi),
		omega:        m.MulMod(psi, psi),
		nInv:         m.InvMod(uint64(n)),
		psiRev:       make([]uint64, n),
		psiRevSho:    make([]uint64, n),
		psiInvRev:    make([]uint64, n),
		psiInvRevSho: make([]uint64, n),
	}
	t.nInvSho = m.ShoupPrecompute(t.nInv)
	logN := uint(bits.Len(uint(n)) - 1)
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := int(bitReverse(uint64(i), logN))
		t.psiRev[r] = fwd
		t.psiInvRev[r] = inv
		fwd = m.MulMod(fwd, psi)
		inv = m.MulMod(inv, t.psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiRevSho[i] = m.ShoupPrecompute(t.psiRev[i])
		t.psiInvRevSho[i] = m.ShoupPrecompute(t.psiInvRev[i])
	}
	return t, nil
}

// bitReverse reverses the low `width` bits of x.
func bitReverse(x uint64, width uint) uint64 {
	return bits.Reverse64(x) >> (64 - width)
}

// BitReverse exposes the bit-reversal helper used throughout the NTT
// algorithm family (MAT builds its offline permutations from it).
func BitReverse(x uint64, width uint) uint64 { return bitReverse(x, width) }

// NTTLimb performs the in-place forward negacyclic NTT of one limb via
// radix-2 Cooley–Tukey butterflies (Alg. 3). Input is in natural
// coefficient order; output is the evaluation vector in bit-reversed
// order: out[brv(j)] = Σ_i a_i ψ^{i(2j+1)}.
//
// Butterflies operate lazily in [0, 2q); a final correction pass brings
// coefficients back to [0, q).
func (r *Ring) NTTLimb(i int, a []uint64) {
	t := r.tables[i]
	m := r.Moduli[i]
	n := r.N
	if len(a) != n {
		panic("ring: NTTLimb length mismatch")
	}
	q := m.Q
	twoQ := 2 * q

	half := n
	for step := 1; step < n; step <<= 1 {
		half >>= 1
		for blk := 0; blk < step; blk++ {
			w := t.psiRev[step+blk]
			ws := t.psiRevSho[step+blk]
			j1 := 2 * blk * half
			for j := j1; j < j1+half; j++ {
				// Harvey butterfly: inputs in [0, 2q), outputs in [0, 2q).
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := m.ShoupMul(a[j+half], w, ws) // in [0, 2q)
				a[j] = u + v
				a[j+half] = u + twoQ - v
			}
		}
	}
	for j := 0; j < n; j++ {
		x := a[j]
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		a[j] = x
	}
}

// INTTLimb performs the in-place inverse NTT of one limb via
// Gentleman–Sande butterflies: input in bit-reversed evaluation order
// (the output order of NTTLimb), output in natural coefficient order,
// scaled by N⁻¹.
func (r *Ring) INTTLimb(i int, a []uint64) {
	t := r.tables[i]
	m := r.Moduli[i]
	n := r.N
	if len(a) != n {
		panic("ring: INTTLimb length mismatch")
	}
	q := m.Q
	twoQ := 2 * q

	half := 1
	for step := n >> 1; step >= 1; step >>= 1 {
		for blk := 0; blk < step; blk++ {
			w := t.psiInvRev[step+blk]
			ws := t.psiInvRevSho[step+blk]
			j1 := 2 * blk * half
			for j := j1; j < j1+half; j++ {
				// GS butterfly, lazy in [0, 2q).
				u := a[j]
				v := a[j+half]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+half] = m.ShoupMul(u+twoQ-v, w, ws)
			}
		}
		half <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = m.ShoupMulFull(a[j], t.nInv, t.nInvSho)
	}
}

// NTT forward-transforms every limb of p in place, fanning limbs over
// the ring's worker pool when WithParallelism configured one.
func (r *Ring) NTT(p *Poly) {
	parallelFor(r.Parallelism(), p.Level()+1, func(i int) {
		r.NTTLimb(i, p.Coeffs[i])
	})
}

// INTT inverse-transforms every limb of p in place (limb-parallel like
// NTT).
func (r *Ring) INTT(p *Poly) {
	parallelFor(r.Parallelism(), p.Level()+1, func(i int) {
		r.INTTLimb(i, p.Coeffs[i])
	})
}

// NTTNaiveLimb is the O(N²) reference forward transform in natural
// output order: out[j] = Σ_i a_i ψ^{i(2j+1)}. It is the oracle against
// which every fast variant is verified.
func (r *Ring) NTTNaiveLimb(i int, a []uint64) []uint64 {
	m := r.Moduli[i]
	t := r.tables[i]
	n := r.N
	out := make([]uint64, n)
	for j := 0; j < n; j++ {
		// root = ψ^(2j+1)
		root := m.MulMod(m.PowMod(t.omega, uint64(j)), t.psi)
		var acc, pw uint64
		pw = 1
		for k := 0; k < n; k++ {
			acc = m.AddMod(acc, m.MulMod(a[k], pw))
			pw = m.MulMod(pw, root)
		}
		out[j] = acc
	}
	return out
}

// INTTNaiveLimb is the O(N²) reference inverse of NTTNaiveLimb.
func (r *Ring) INTTNaiveLimb(i int, b []uint64) []uint64 {
	m := r.Moduli[i]
	t := r.tables[i]
	n := r.N
	out := make([]uint64, n)
	for k := 0; k < n; k++ {
		var acc uint64
		for j := 0; j < n; j++ {
			// ψ^{-k(2j+1)}
			e := m.PowMod(t.psiInv, uint64(k*(2*j+1))%uint64(2*n))
			acc = m.AddMod(acc, m.MulMod(b[j], e))
		}
		out[k] = m.MulMod(acc, t.nInv)
	}
	return out
}
