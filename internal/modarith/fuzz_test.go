package modarith

import "testing"

func FuzzReductionsAgree(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(268369920), uint64(268369920))
	m := MustModulus(268369921)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		a %= m.Q
		b %= m.Q
		barrett := m.BarrettMul(a, b)
		mont := m.MontgomeryMulFull(a, m.ToMontgomery(b))
		shoup := m.ShoupMulFull(a, b, m.ShoupPrecompute(b))
		if barrett != mont || mont != shoup {
			t.Fatalf("reductions disagree on %d·%d: barrett=%d mont=%d shoup=%d",
				a, b, barrett, mont, shoup)
		}
	})
}

func FuzzReduceWide(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1), uint64(0))
	m := MustModulus(1152921504606830593)
	f.Fuzz(func(t *testing.T, hi, lo uint64) {
		got := m.ReduceWide(hi, lo)
		if got >= m.Q {
			t.Fatalf("ReduceWide out of range: %d", got)
		}
		// Verify by reconstructing: (hi·2^64 + lo) mod q via repeated
		// word reduction: hi·(2^64 mod q) + lo ≡ the same residue.
		want := m.AddMod(m.MulMod(m.Reduce(hi), m.MontR), m.Reduce(lo))
		if got != want {
			t.Fatalf("ReduceWide(%d, %d) = %d want %d", hi, lo, got, want)
		}
	})
}
