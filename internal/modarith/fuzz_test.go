package modarith

import (
	"math/rand"
	"testing"
)

func FuzzReductionsAgree(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(268369920), uint64(268369920))
	m := MustModulus(268369921)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		a %= m.Q
		b %= m.Q
		barrett := m.BarrettMul(a, b)
		mont := m.MontgomeryMulFull(a, m.ToMontgomery(b))
		shoup := m.ShoupMulFull(a, b, m.ShoupPrecompute(b))
		if barrett != mont || mont != shoup {
			t.Fatalf("reductions disagree on %d·%d: barrett=%d mont=%d shoup=%d",
				a, b, barrett, mont, shoup)
		}
	})
}

func FuzzReduceWide(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1), uint64(0))
	m := MustModulus(1152921504606830593)
	f.Fuzz(func(t *testing.T, hi, lo uint64) {
		got := m.ReduceWide(hi, lo)
		if got >= m.Q {
			t.Fatalf("ReduceWide out of range: %d", got)
		}
		// Verify by reconstructing: (hi·2^64 + lo) mod q via repeated
		// word reduction: hi·(2^64 mod q) + lo ≡ the same residue.
		want := m.AddMod(m.MulMod(m.Reduce(hi), m.MontR), m.Reduce(lo))
		if got != want {
			t.Fatalf("ReduceWide(%d, %d) = %d want %d", hi, lo, got, want)
		}
	})
}

// fuzzModuli spans the generator's width range for the lazy-kernel
// fuzz targets (28-bit paper primes up to the 60-bit lazy-bound
// ceiling), all drawn from primes.go.
func fuzzModuli(tb testing.TB) []*Modulus {
	tb.Helper()
	var out []*Modulus
	for _, bits := range []uint{28, 40, 50, 60} {
		primes, err := GenerateNTTPrimes(bits, 1<<10, 2)
		if err != nil {
			tb.Fatal(err)
		}
		for _, q := range primes {
			out = append(out, MustModulus(q))
		}
	}
	return out
}

// FuzzVecMulModShoupLazyVsStrict pins the lazy Shoup kernel (plus its
// single closing correction) and the unrolled public kernel to the
// retained strict reference across random moduli and vectors.
func FuzzVecMulModShoupLazyVsStrict(f *testing.F) {
	moduli := fuzzModuli(f)
	f.Add(uint8(0), int64(1), uint8(7))
	f.Add(uint8(3), int64(-9), uint8(0))
	f.Add(uint8(255), int64(12345), uint8(255))
	f.Fuzz(func(t *testing.T, midx uint8, seed int64, nRaw uint8) {
		m := moduli[int(midx)%len(moduli)]
		n := int(nRaw)%96 + 1 // cover all unroll tails
		rng := rand.New(rand.NewSource(seed))
		a := make([]uint64, n)
		w := make([]uint64, n)
		for i := range a {
			a[i], w[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
		}
		ws := m.ShoupPrecomputeVec(w)

		want := make([]uint64, n)
		m.VecMulModShoupStrict(want, a, w, ws)

		got := make([]uint64, n)
		m.VecMulModShoup(got, a, w, ws)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d n=%d: VecMulModShoup[%d] = %d, strict %d", m.Q, n, i, got[i], want[i])
			}
		}

		lazy := make([]uint64, n)
		m.VecMulModShoupLazy(lazy, a, w, ws)
		m.VecCorrectLazy(lazy, lazy)
		for i := range lazy {
			if lazy[i] != want[i] {
				t.Fatalf("q=%d n=%d: lazy+correct [%d] = %d, strict %d", m.Q, n, i, lazy[i], want[i])
			}
		}
	})
}

// FuzzLazyAddSubBounds checks the chaining contract of the lazy
// add/sub kernels: [0, 2q) in, [0, 2q) out, correct residues.
func FuzzLazyAddSubBounds(f *testing.F) {
	moduli := fuzzModuli(f)
	f.Add(uint8(0), uint64(0), uint64(0))
	f.Add(uint8(9), ^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, midx uint8, x, y uint64) {
		m := moduli[int(midx)%len(moduli)]
		twoQ := 2 * m.Q
		a := []uint64{x % twoQ}
		b := []uint64{y % twoQ}
		sum := make([]uint64, 1)
		m.VecAddModLazy(sum, a, b)
		if sum[0] >= twoQ {
			t.Fatalf("q=%d: lazy add out of range: %d", m.Q, sum[0])
		}
		if got, want := m.Reduce(sum[0]), m.AddMod(m.Reduce(a[0]), m.Reduce(b[0])); got != want {
			t.Fatalf("q=%d: lazy add wrong residue: %d vs %d", m.Q, got, want)
		}
		diff := make([]uint64, 1)
		m.VecSubModLazy(diff, a, b)
		if diff[0] >= twoQ {
			t.Fatalf("q=%d: lazy sub out of range: %d", m.Q, diff[0])
		}
		if got, want := m.Reduce(diff[0]), m.SubMod(m.Reduce(a[0]), m.Reduce(b[0])); got != want {
			t.Fatalf("q=%d: lazy sub wrong residue: %d vs %d", m.Q, got, want)
		}
	})
}
