package modarith

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. Products of two
// residues must fit in the 128-bit intermediates produced by bits.Mul64,
// and the Barrett precomputation needs 2·log2(q)+1 bits of headroom.
const MaxModulusBits = 61

// Modulus bundles a prime modulus q with the precomputed constants needed
// by the Barrett, Montgomery, and Shoup reduction paths. A Modulus is
// immutable after construction and safe for concurrent use.
type Modulus struct {
	Q    uint64 // the modulus itself
	Bits uint   // ⌈log2(q)⌉

	// Barrett (Alg. 4): m = ⌊2^s / q⌋ with s = 2·Bits, stored as a
	// 128-bit value (BarrettHi·2^64 + BarrettLo) so the same constants
	// also serve the 128-bit reduction of full 2·Bits products.
	BarrettShift  uint
	BarrettHi     uint64
	BarrettLo     uint64
	barrett64Hi   uint64 // ⌊2^128 / q⌋ high word, for ReduceWide
	barrett64Lo   uint64 // ⌊2^128 / q⌋ low word
	MontR         uint64 // R mod q with R = 2^64
	MontR2        uint64 // R² mod q
	MontQInvNeg   uint64 // -q⁻¹ mod 2^64
	montRInv      uint64 // R⁻¹ mod q (for exiting the Montgomery domain)
	qTimes2       uint64 // 2q, the lazy-reduction bound
	qTimes4       uint64 // 4q, bound used by fused lazy butterflies
	hasMontgomery bool   // q must be odd
}

// NewModulus constructs a Modulus for prime q. It returns an error when q
// is not an odd prime in (1, 2^MaxModulusBits).
func NewModulus(q uint64) (*Modulus, error) {
	if q < 3 {
		return nil, fmt.Errorf("modarith: modulus %d too small", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return nil, fmt.Errorf("modarith: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	if q%2 == 0 {
		return nil, fmt.Errorf("modarith: modulus %d must be odd", q)
	}
	if !IsPrime(q) {
		return nil, fmt.Errorf("modarith: modulus %d is not prime", q)
	}
	m := &Modulus{Q: q, Bits: uint(bits.Len64(q))}
	m.qTimes2 = 2 * q
	m.qTimes4 = 4 * q

	// Barrett constant ⌊2^(2·Bits) / q⌋. 2·Bits ≤ 122 so the constant
	// fits in 128 bits; compute it with a simple long division.
	m.BarrettShift = 2 * m.Bits
	m.BarrettHi, m.BarrettLo = divPow2ByQ(m.BarrettShift, q)
	m.barrett64Hi, m.barrett64Lo = divPow2ByQ(128, q)

	// Montgomery constants for R = 2^64.
	m.MontQInvNeg = negInvPow2(q)
	m.MontR = modPow2(64, q)
	m.MontR2 = m.MulMod(m.MontR, m.MontR)
	m.montRInv = m.InvMod(m.MontR)
	m.hasMontgomery = true
	return m, nil
}

// MustModulus is NewModulus that panics on error; intended for parameter
// tables and tests where the modulus is known to be valid.
func MustModulus(q uint64) *Modulus {
	m, err := NewModulus(q)
	if err != nil {
		panic(err)
	}
	return m
}

// divPow2ByQ returns ⌊2^shift / q⌋ as a 128-bit (hi, lo) pair.
func divPow2ByQ(shift uint, q uint64) (hi, lo uint64) {
	// Long division of the 1 followed by `shift` zero bits by q.
	var rem uint64
	for i := int(shift); i >= 0; i-- {
		rem <<= 1
		if i == int(shift) {
			rem |= 1
		}
		bit := uint64(0)
		if rem >= q {
			rem -= q
			bit = 1
		}
		if i >= 64 {
			hi = hi<<1 | bit
		} else {
			lo = lo<<1 | bit
		}
	}
	// For shift ≥ 64 the loop above shifted hi once per iteration in
	// [64, shift], which is shift-63 iterations; the arithmetic works
	// because hi starts at zero and q ≥ 3 keeps the quotient below
	// 2^(shift-1).
	return hi, lo
}

// modPow2 returns 2^shift mod q.
func modPow2(shift uint, q uint64) uint64 {
	r := uint64(1) % q
	for i := uint(0); i < shift; i++ {
		r <<= 1
		if r >= q {
			r -= q
		}
	}
	return r
}

// negInvPow2 returns -q⁻¹ mod 2^64 via Newton iteration (q odd).
func negInvPow2(q uint64) uint64 {
	inv := q // correct mod 2^3 for odd q? start with q: q*q ≡ 1 mod 8.
	for i := 0; i < 6; i++ {
		inv *= 2 - q*inv
	}
	return -inv
}

// AddMod returns (a + b) mod q for a, b in [0, q).
func (m *Modulus) AddMod(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// SubMod returns (a - b) mod q for a, b in [0, q).
func (m *Modulus) SubMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + m.Q - b
}

// NegMod returns -a mod q for a in [0, q).
func (m *Modulus) NegMod(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// MulMod returns (a · b) mod q using a 128-bit intermediate and the
// precomputed ⌊2^128/q⌋ Barrett constant. Inputs need not be reduced.
func (m *Modulus) MulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.ReduceWide(hi, lo)
}

// ReduceWide reduces a 128-bit value (hi·2^64 + lo) modulo q.
func (m *Modulus) ReduceWide(hi, lo uint64) uint64 {
	if hi == 0 && lo < m.Q {
		return lo
	}
	// Barrett with µ = ⌊2^128/q⌋: t = ⌊x·µ / 2^128⌋, r = x - t·q, then at
	// most two corrections. We only need the low 64 bits of r.
	t := mulHi128(hi, lo, m.barrett64Hi, m.barrett64Lo)
	// r = lo - t·q (mod 2^64); the true remainder fits in 64 bits.
	r := lo - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// mulHi128 returns ⌊(a·b) / 2^128⌋ for 128-bit operands a = aHi·2^64+aLo
// and b = bHi·2^64+bLo, assuming the product fits in 256 bits.
func mulHi128(aHi, aLo, bHi, bLo uint64) uint64 {
	// Full 256-bit product accumulated into four 64-bit words; we only
	// need word 2 (bits 128..191) because quotients here fit in 64 bits.
	c0h, _ := bits.Mul64(aLo, bLo) // bits 64..127 of aLo·bLo

	p1h, p1l := bits.Mul64(aLo, bHi)
	p2h, p2l := bits.Mul64(aHi, bLo)
	p3h, p3l := bits.Mul64(aHi, bHi)

	// word1 = c0h + p1l + p2l (with carries into word2)
	w1, carry1 := bits.Add64(c0h, p1l, 0)
	w1, carry2 := bits.Add64(w1, p2l, 0)
	_ = w1

	// word2 = p1h + p2h + p3l + carries
	w2 := p1h + p2h + p3l + carry1 + carry2
	_ = p3h // word3 unused: quotient < 2^64 by construction
	return w2
}

// PowMod returns a^e mod q by square-and-multiply.
func (m *Modulus) PowMod(a, e uint64) uint64 {
	a %= m.Q
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = m.MulMod(r, a)
		}
		a = m.MulMod(a, a)
		e >>= 1
	}
	return r
}

// InvMod returns a⁻¹ mod q (q prime) via Fermat's little theorem.
// It panics if a ≡ 0 mod q, which has no inverse.
func (m *Modulus) InvMod(a uint64) uint64 {
	a %= m.Q
	if a == 0 {
		panic("modarith: zero has no modular inverse")
	}
	return m.PowMod(a, m.Q-2)
}

// Reduce returns a mod q for any uint64 a.
func (m *Modulus) Reduce(a uint64) uint64 {
	if a < m.Q {
		return a
	}
	return a % m.Q
}

// ErrNoRoot is returned when the modulus does not support the requested
// root of unity (q ≢ 1 mod n).
var ErrNoRoot = errors.New("modarith: modulus has no primitive root of the requested order")

// PrimitiveRootOfUnity returns a primitive n-th root of unity modulo q,
// where n must be a power of two dividing q-1. The search is
// deterministic: candidates 2, 3, 4, ... are raised to (q-1)/n and the
// first result of exact order n is returned, so repeated calls and
// separate processes agree on the twiddle basis.
func (m *Modulus) PrimitiveRootOfUnity(n uint64) (uint64, error) {
	if n == 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("modarith: order %d is not a power of two", n)
	}
	if (m.Q-1)%n != 0 {
		return 0, ErrNoRoot
	}
	if n == 1 {
		return 1, nil
	}
	exp := (m.Q - 1) / n
	for g := uint64(2); g < m.Q; g++ {
		c := m.PowMod(g, exp)
		// For power-of-two n, ord(c) = n iff c^(n/2) = -1 mod q.
		if m.PowMod(c, n/2) == m.Q-1 {
			return c, nil
		}
	}
	return 0, ErrNoRoot
}

// IsPrime reports whether q is prime, using a deterministic Miller-Rabin
// witness set that is exact for all 64-bit integers.
func IsPrime(q uint64) bool {
	if q < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if q == p {
			return true
		}
		if q%p == 0 {
			return false
		}
	}
	d := q - 1
	r := uint(0)
	for d%2 == 0 {
		d /= 2
		r++
	}
	// Deterministic witnesses for n < 2^64 (Sinclair/Jaeschke).
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if !millerRabinWitness(q, a, d, r) {
			return false
		}
	}
	return true
}

func millerRabinWitness(n, a, d uint64, r uint) bool {
	x := powModGeneric(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := uint(1); i < r; i++ {
		x = mulModGeneric(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

// mulModGeneric computes a·b mod n for arbitrary 64-bit n without
// precomputation, via 128-bit division.
func mulModGeneric(a, b, n uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi == 0 {
		return lo % n
	}
	_, rem := bits.Div64(hi%n, lo, n)
	return rem
}

func powModGeneric(a, e, n uint64) uint64 {
	a %= n
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = mulModGeneric(r, a, n)
		}
		a = mulModGeneric(a, a, n)
		e >>= 1
	}
	return r
}
