package modarith

import (
	"math/rand"
	"testing"
)

// lazyTestModuli spans the supported width range: the paper's 28-bit
// BAT prime, a mid-width prime, and a near-top 60-bit prime (Harvey's
// bound is tightest there).
func lazyTestModuli(t testing.TB) []*Modulus {
	t.Helper()
	var out []*Modulus
	for _, bits := range []uint{28, 45, 60} {
		primes, err := GenerateNTTPrimes(bits, 1<<10, 1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, MustModulus(primes[0]))
	}
	return out
}

// TestLazyKernelsMatchStrict drives a lazy pipeline (mul → add → sub →
// correct) against the strict kernels element-wise over every test
// modulus: after the single closing correction the lazy chain must be
// bit-identical to the strict chain.
func TestLazyKernelsMatchStrict(t *testing.T) {
	const n = 257 // odd length exercises the unroll tails
	for _, m := range lazyTestModuli(t) {
		rng := rand.New(rand.NewSource(int64(m.Q)))
		a := make([]uint64, n)
		b := make([]uint64, n)
		w := make([]uint64, n)
		for i := range a {
			a[i], b[i], w[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q, rng.Uint64()%m.Q
		}
		ws := m.ShoupPrecomputeVec(w)

		// Strict pipeline, fully reduced at every step.
		sm := make([]uint64, n)
		m.VecMulModShoupStrict(sm, a, w, ws)
		ss := make([]uint64, n)
		m.VecAddMod(ss, sm, b)
		sd := make([]uint64, n)
		m.VecSubMod(sd, ss, a)

		// Lazy pipeline: everything stays in [0, 2q) until the end.
		lm := make([]uint64, n)
		m.VecMulModShoupLazy(lm, a, w, ws)
		for i := range lm {
			if lm[i] >= 2*m.Q {
				t.Fatalf("q=%d: lazy mul out of [0,2q) at %d: %d", m.Q, i, lm[i])
			}
		}
		ls := make([]uint64, n)
		m.VecAddModLazy(ls, lm, b)
		ld := make([]uint64, n)
		m.VecSubModLazy(ld, ls, a)
		m.VecCorrectLazy(ld, ld)

		for i := range sd {
			if sd[i] != ld[i] {
				t.Fatalf("q=%d: lazy pipeline diverges at %d: strict %d lazy %d", m.Q, i, sd[i], ld[i])
			}
		}
	}
}

// TestVecMulModShoupMatchesStrict pins the unrolled public kernel to
// the retained strict reference.
func TestVecMulModShoupMatchesStrict(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 64, 255} {
		for _, m := range lazyTestModuli(t) {
			rng := rand.New(rand.NewSource(int64(n)))
			a := make([]uint64, n)
			w := make([]uint64, n)
			for i := range a {
				a[i], w[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
			}
			ws := m.ShoupPrecomputeVec(w)
			got := make([]uint64, n)
			want := make([]uint64, n)
			m.VecMulModShoup(got, a, w, ws)
			m.VecMulModShoupStrict(want, a, w, ws)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: VecMulModShoup[%d] = %d, strict %d", n, m.Q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestVecScalarMulModShoupMatchesScalarLoop pins the unrolled scalar
// kernel against per-element ShoupMulFull.
func TestVecScalarMulModShoupMatchesScalarLoop(t *testing.T) {
	for _, m := range lazyTestModuli(t) {
		const n = 133
		rng := rand.New(rand.NewSource(77))
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % m.Q
		}
		w := rng.Uint64() % m.Q
		ws := m.ShoupPrecompute(w)
		got := make([]uint64, n)
		m.VecScalarMulModShoup(got, a, w, ws)
		for i := range got {
			if want := m.ShoupMulFull(a[i], w, ws); got[i] != want {
				t.Fatalf("q=%d: VecScalarMulModShoup[%d] = %d, want %d", m.Q, i, got[i], want)
			}
		}
	}
}

// TestVecKernelsZeroAllocs pins the allocation-free contract of the
// vector kernels.
func TestVecKernelsZeroAllocs(t *testing.T) {
	m := lazyTestModuli(t)[0]
	const n = 1 << 10
	rng := rand.New(rand.NewSource(9))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i], b[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
	}
	ws := m.ShoupPrecomputeVec(b)
	dst := make([]uint64, n)
	for name, f := range map[string]func(){
		"VecAddMod":          func() { m.VecAddMod(dst, a, b) },
		"VecSubMod":          func() { m.VecSubMod(dst, a, b) },
		"VecMulModShoup":     func() { m.VecMulModShoup(dst, a, b, ws) },
		"VecMulModBarrett":   func() { m.VecMulMod(dst, a, b, Barrett) },
		"VecAddModLazy":      func() { m.VecAddModLazy(dst, a, b) },
		"VecSubModLazy":      func() { m.VecSubModLazy(dst, a, b) },
		"VecMulModShoupLazy": func() { m.VecMulModShoupLazy(dst, a, b, ws) },
		"VecCorrectLazy":     func() { m.VecCorrectLazy(dst, a) },
	} {
		if avg := testing.AllocsPerRun(100, f); avg != 0 {
			t.Fatalf("%s allocates %.2f/op, want 0", name, avg)
		}
	}
}

// BenchmarkVecMulModShoup times the unrolled strict kernel (the gated
// VecModMul datapoint).
func BenchmarkVecMulModShoup(b *testing.B) {
	m := MustModulus(268369921)
	const n = 1 << 13
	rng := rand.New(rand.NewSource(2))
	a := make([]uint64, n)
	w := make([]uint64, n)
	for i := range a {
		a[i], w[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
	}
	ws := m.ShoupPrecomputeVec(w)
	dst := make([]uint64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.VecMulModShoup(dst, a, w, ws)
	}
}

// BenchmarkVecMulModShoupLazy times the deferred-correction variant.
func BenchmarkVecMulModShoupLazy(b *testing.B) {
	m := MustModulus(268369921)
	const n = 1 << 13
	rng := rand.New(rand.NewSource(2))
	a := make([]uint64, n)
	w := make([]uint64, n)
	for i := range a {
		a[i], w[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
	}
	ws := m.ShoupPrecomputeVec(w)
	dst := make([]uint64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.VecMulModShoupLazy(dst, a, w, ws)
	}
}
