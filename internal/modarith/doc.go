// Package modarith implements the word-level modular arithmetic substrate
// that every other layer of the CROSS reproduction builds on.
//
// It provides:
//
//   - General-purpose modular arithmetic on uint64 moduli up to 62 bits
//     (Modulus): multiplication via 128-bit intermediates, exponentiation,
//     inversion, and 2N-th primitive roots of unity.
//   - The three reduction algorithms the paper ablates in Fig. 13:
//     Barrett reduction (Alg. 4), the optimized Montgomery reduction used
//     by CROSS on the TPU VPU (Alg. 1), and Shoup multiplication with a
//     precomputed quotient for known constants.
//   - NTT-friendly prime generation (q ≡ 1 mod 2N) used to construct RNS
//     bases for the CKKS parameter sets in Tab. IV.
//   - Vectorised modular kernels (VecModAdd/Sub/Mul etc., Tab. III) that
//     model the TPU VPU's element-wise arithmetic and that also serve as
//     the native CPU execution path.
//
// Reduction outputs follow the paper's lazy-reduction convention: the
// Montgomery and Shoup kernels return values in [0, 2q) and callers
// perform a final conditional correction (Alg. 1 line 9, §G), while the
// Barrett kernels fully reduce to [0, q).
package modarith
