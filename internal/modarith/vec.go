package modarith

// Vectorised modular kernels (Tab. III primitives). These are the
// element-wise operations that the paper profiles as VecModAdd,
// VecModSub, and VecModMul (Fig. 14) and that CROSS maps to the TPU VPU.
// On the CPU they double as the native execution path; the TPU simulator
// invokes them for functional results while charging VPU cycles.
//
// Unless stated otherwise, inputs are in [0, q), outputs in [0, q), and
// dst may alias a or b. All kernels panic if the slice lengths differ —
// a length mismatch is a compiler bug, not a runtime condition.

func checkLen3(dst, a, b []uint64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("modarith: vector length mismatch")
	}
}

func checkLen2(dst, a []uint64) {
	if len(dst) != len(a) {
		panic("modarith: vector length mismatch")
	}
}

// VecAddMod computes dst[i] = (a[i] + b[i]) mod q.
func (m *Modulus) VecAddMod(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	q := m.Q
	for i := range dst {
		s := a[i] + b[i]
		if s >= q {
			s -= q
		}
		dst[i] = s
	}
}

// VecSubMod computes dst[i] = (a[i] - b[i]) mod q.
func (m *Modulus) VecSubMod(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	q := m.Q
	for i := range dst {
		d := a[i] + q - b[i]
		if d >= q {
			d -= q
		}
		dst[i] = d
	}
}

// VecNegMod computes dst[i] = -a[i] mod q.
func (m *Modulus) VecNegMod(dst, a []uint64) {
	checkLen2(dst, a)
	q := m.Q
	for i := range dst {
		if a[i] == 0 {
			dst[i] = 0
		} else {
			dst[i] = q - a[i]
		}
	}
}

// VecMulMod computes dst[i] = a[i]·b[i] mod q with the requested
// reduction algorithm (Fig. 13a ablation). Shoup requires per-element
// precomputed quotients and is therefore routed through
// VecMulModShoup; passing Shoup here falls back to Barrett.
func (m *Modulus) VecMulMod(dst, a, b []uint64, alg ReduceAlgorithm) {
	checkLen3(dst, a, b)
	switch alg {
	case Montgomery:
		m.vecMulMont(dst, a, b)
	default:
		m.vecMulBarrett(dst, a, b)
	}
}

func (m *Modulus) vecMulBarrett(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = m.BarrettMul(a[i], b[i])
	}
}

// vecMulMont multiplies via REDC: one conversion of a into the
// Montgomery domain and one lazy REDC per element, then a final
// correction — the two-multiplication pattern of §V-F2.
func (m *Modulus) vecMulMont(dst, a, b []uint64) {
	for i := range dst {
		am := m.ToMontgomery(a[i])
		dst[i] = m.MontgomeryMulFull(b[i], am)
	}
}

// VecMulModShoup computes dst[i] = a[i]·w[i] mod q where w is a
// compile-time-known vector with precomputed Shoup quotients wShoup.
func (m *Modulus) VecMulModShoup(dst, a, w, wShoup []uint64) {
	checkLen3(dst, a, w)
	if len(w) != len(wShoup) {
		panic("modarith: shoup quotient length mismatch")
	}
	for i := range dst {
		dst[i] = m.ShoupMulFull(a[i], w[i], wShoup[i])
	}
}

// VecScalarMulMod computes dst[i] = a[i]·c mod q for a runtime scalar c.
func (m *Modulus) VecScalarMulMod(dst, a []uint64, c uint64) {
	checkLen2(dst, a)
	w := c % m.Q
	ws := m.ShoupPrecompute(w)
	for i := range dst {
		dst[i] = m.ShoupMulFull(a[i], w, ws)
	}
}

// VecScalarMulAddMod computes dst[i] = (dst[i] + a[i]·c) mod q.
func (m *Modulus) VecScalarMulAddMod(dst, a []uint64, c uint64) {
	checkLen2(dst, a)
	w := c % m.Q
	ws := m.ShoupPrecompute(w)
	q := m.Q
	for i := range dst {
		s := dst[i] + m.ShoupMulFull(a[i], w, ws)
		if s >= q {
			s -= q
		}
		dst[i] = s
	}
}

// VecMulAddMod computes dst[i] = (dst[i] + a[i]·b[i]) mod q.
func (m *Modulus) VecMulAddMod(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	q := m.Q
	for i := range dst {
		s := dst[i] + m.BarrettMul(a[i], b[i])
		if s >= q {
			s -= q
		}
		dst[i] = s
	}
}

// VecReduce computes dst[i] = a[i] mod q for arbitrary uint64 inputs.
func (m *Modulus) VecReduce(dst, a []uint64) {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = m.Reduce(a[i])
	}
}

// VecToMontgomery maps a vector into the Montgomery domain.
func (m *Modulus) VecToMontgomery(dst, a []uint64) {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = m.ToMontgomery(a[i])
	}
}

// VecFromMontgomery maps a vector out of the Montgomery domain.
func (m *Modulus) VecFromMontgomery(dst, a []uint64) {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = m.FromMontgomery(a[i])
	}
}

// ShoupPrecomputeVec returns the Shoup quotients for a constant vector.
func (m *Modulus) ShoupPrecomputeVec(w []uint64) []uint64 {
	out := make([]uint64, len(w))
	for i, x := range w {
		out[i] = m.ShoupPrecompute(x)
	}
	return out
}

// InnerProductMod returns Σ a[i]·b[i] mod q. The accumulation is lazy:
// 128-bit partial sums are reduced only when the high word approaches
// overflow, mirroring the paper's lazy-reduction pipelines.
func (m *Modulus) InnerProductMod(a, b []uint64) uint64 {
	if len(a) != len(b) {
		panic("modarith: vector length mismatch")
	}
	var acc uint64
	for i := range a {
		acc = m.AddMod(acc, m.BarrettMul(a[i], b[i]))
	}
	return acc
}
