package modarith

import "math/bits"

// Vectorised modular kernels (Tab. III primitives). These are the
// element-wise operations that the paper profiles as VecModAdd,
// VecModSub, and VecModMul (Fig. 14) and that CROSS maps to the TPU VPU.
// On the CPU they double as the native execution path; the TPU simulator
// invokes them for functional results while charging VPU cycles.
//
// Unless stated otherwise, inputs are in [0, q), outputs in [0, q), and
// dst may alias a or b. All kernels panic if the slice lengths differ —
// a length mismatch is a compiler bug, not a runtime condition.

func checkLen3(dst, a, b []uint64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("modarith: vector length mismatch")
	}
}

func checkLen2(dst, a []uint64) {
	if len(dst) != len(a) {
		panic("modarith: vector length mismatch")
	}
}

// VecAddMod computes dst[i] = (a[i] + b[i]) mod q.
func (m *Modulus) VecAddMod(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	q := m.Q
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		s0 := a[i] + b[i]
		s1 := a[i+1] + b[i+1]
		s2 := a[i+2] + b[i+2]
		s3 := a[i+3] + b[i+3]
		if s0 >= q {
			s0 -= q
		}
		if s1 >= q {
			s1 -= q
		}
		if s2 >= q {
			s2 -= q
		}
		if s3 >= q {
			s3 -= q
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = s0, s1, s2, s3
	}
	for ; i < len(dst); i++ {
		s := a[i] + b[i]
		if s >= q {
			s -= q
		}
		dst[i] = s
	}
}

// VecSubMod computes dst[i] = (a[i] - b[i]) mod q.
func (m *Modulus) VecSubMod(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	q := m.Q
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		d0 := a[i] + q - b[i]
		d1 := a[i+1] + q - b[i+1]
		d2 := a[i+2] + q - b[i+2]
		d3 := a[i+3] + q - b[i+3]
		if d0 >= q {
			d0 -= q
		}
		if d1 >= q {
			d1 -= q
		}
		if d2 >= q {
			d2 -= q
		}
		if d3 >= q {
			d3 -= q
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		d := a[i] + q - b[i]
		if d >= q {
			d -= q
		}
		dst[i] = d
	}
}

// VecNegMod computes dst[i] = -a[i] mod q.
func (m *Modulus) VecNegMod(dst, a []uint64) {
	checkLen2(dst, a)
	q := m.Q
	for i := range dst {
		if a[i] == 0 {
			dst[i] = 0
		} else {
			dst[i] = q - a[i]
		}
	}
}

// VecMulMod computes dst[i] = a[i]·b[i] mod q with the requested
// reduction algorithm (Fig. 13a ablation). Shoup requires per-element
// precomputed quotients and is therefore routed through
// VecMulModShoup; passing Shoup here falls back to Barrett.
func (m *Modulus) VecMulMod(dst, a, b []uint64, alg ReduceAlgorithm) {
	checkLen3(dst, a, b)
	switch alg {
	case Montgomery:
		m.vecMulMont(dst, a, b)
	default:
		m.vecMulBarrett(dst, a, b)
	}
}

func (m *Modulus) vecMulBarrett(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = m.BarrettMul(a[i], b[i])
	}
}

// vecMulMont multiplies via REDC: one conversion of a into the
// Montgomery domain and one lazy REDC per element, then a final
// correction — the two-multiplication pattern of §V-F2.
func (m *Modulus) vecMulMont(dst, a, b []uint64) {
	for i := range dst {
		am := m.ToMontgomery(a[i])
		dst[i] = m.MontgomeryMulFull(b[i], am)
	}
}

// VecMulModShoup computes dst[i] = a[i]·w[i] mod q where w is a
// compile-time-known vector with precomputed Shoup quotients wShoup.
// Internally it runs the lazy kernel and one deferred correction pass;
// the output is fully reduced to [0, q), bit-identical to
// VecMulModShoupStrict.
func (m *Modulus) VecMulModShoup(dst, a, w, wShoup []uint64) {
	checkLen3(dst, a, w)
	if len(w) != len(wShoup) {
		panic("modarith: shoup quotient length mismatch")
	}
	q := m.Q
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		h0, _ := bits.Mul64(a[i], wShoup[i])
		h1, _ := bits.Mul64(a[i+1], wShoup[i+1])
		h2, _ := bits.Mul64(a[i+2], wShoup[i+2])
		h3, _ := bits.Mul64(a[i+3], wShoup[i+3])
		r0 := a[i]*w[i] - h0*q
		r1 := a[i+1]*w[i+1] - h1*q
		r2 := a[i+2]*w[i+2] - h2*q
		r3 := a[i+3]*w[i+3] - h3*q
		if r0 >= q {
			r0 -= q
		}
		if r1 >= q {
			r1 -= q
		}
		if r2 >= q {
			r2 -= q
		}
		if r3 >= q {
			r3 -= q
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = r0, r1, r2, r3
	}
	for ; i < len(dst); i++ {
		dst[i] = m.ShoupMulFull(a[i], w[i], wShoup[i])
	}
}

// VecMulModShoupStrict is the retained strict-reduction reference for
// VecMulModShoup: one fully-corrected Shoup multiplication per element,
// no unrolling, no laziness. It is the oracle the table-driven and
// fuzz suites compare the lazy kernels against.
func (m *Modulus) VecMulModShoupStrict(dst, a, w, wShoup []uint64) {
	checkLen3(dst, a, w)
	if len(w) != len(wShoup) {
		panic("modarith: shoup quotient length mismatch")
	}
	for i := range dst {
		dst[i] = m.ShoupMulFull(a[i], w[i], wShoup[i])
	}
}

// VecScalarMulMod computes dst[i] = a[i]·c mod q for a runtime scalar c.
func (m *Modulus) VecScalarMulMod(dst, a []uint64, c uint64) {
	w := c % m.Q
	m.VecScalarMulModShoup(dst, a, w, m.ShoupPrecompute(w))
}

// VecScalarMulModShoup computes dst[i] = a[i]·w mod q for a constant
// scalar w in [0, q) with precomputed Shoup quotient ws. The loop is
// 4×-unrolled with one deferred correction per element; the output is
// fully reduced. dst may alias a.
func (m *Modulus) VecScalarMulModShoup(dst, a []uint64, w, ws uint64) {
	checkLen2(dst, a)
	q := m.Q
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		h0, _ := bits.Mul64(a[i], ws)
		h1, _ := bits.Mul64(a[i+1], ws)
		h2, _ := bits.Mul64(a[i+2], ws)
		h3, _ := bits.Mul64(a[i+3], ws)
		r0 := a[i]*w - h0*q
		r1 := a[i+1]*w - h1*q
		r2 := a[i+2]*w - h2*q
		r3 := a[i+3]*w - h3*q
		if r0 >= q {
			r0 -= q
		}
		if r1 >= q {
			r1 -= q
		}
		if r2 >= q {
			r2 -= q
		}
		if r3 >= q {
			r3 -= q
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = r0, r1, r2, r3
	}
	for ; i < len(dst); i++ {
		dst[i] = m.ShoupMulFull(a[i], w, ws)
	}
}

// VecScalarMulAddMod computes dst[i] = (dst[i] + a[i]·c) mod q.
func (m *Modulus) VecScalarMulAddMod(dst, a []uint64, c uint64) {
	checkLen2(dst, a)
	w := c % m.Q
	ws := m.ShoupPrecompute(w)
	q := m.Q
	for i := range dst {
		s := dst[i] + m.ShoupMulFull(a[i], w, ws)
		if s >= q {
			s -= q
		}
		dst[i] = s
	}
}

// VecMulAddMod computes dst[i] = (dst[i] + a[i]·b[i]) mod q.
func (m *Modulus) VecMulAddMod(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	q := m.Q
	for i := range dst {
		s := dst[i] + m.BarrettMul(a[i], b[i])
		if s >= q {
			s -= q
		}
		dst[i] = s
	}
}

// VecReduce computes dst[i] = a[i] mod q for arbitrary uint64 inputs.
func (m *Modulus) VecReduce(dst, a []uint64) {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = m.Reduce(a[i])
	}
}

// VecToMontgomery maps a vector into the Montgomery domain.
func (m *Modulus) VecToMontgomery(dst, a []uint64) {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = m.ToMontgomery(a[i])
	}
}

// VecFromMontgomery maps a vector out of the Montgomery domain.
func (m *Modulus) VecFromMontgomery(dst, a []uint64) {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = m.FromMontgomery(a[i])
	}
}

// ShoupPrecomputeVec returns the Shoup quotients for a constant vector.
func (m *Modulus) ShoupPrecomputeVec(w []uint64) []uint64 {
	out := make([]uint64, len(w))
	for i, x := range w {
		out[i] = m.ShoupPrecompute(x)
	}
	return out
}

// InnerProductMod returns Σ a[i]·b[i] mod q. The accumulation is lazy:
// 128-bit partial sums are reduced only when the high word approaches
// overflow, mirroring the paper's lazy-reduction pipelines.
func (m *Modulus) InnerProductMod(a, b []uint64) uint64 {
	if len(a) != len(b) {
		panic("modarith: vector length mismatch")
	}
	var acc uint64
	for i := range a {
		acc = m.AddMod(acc, m.BarrettMul(a[i], b[i]))
	}
	return acc
}
