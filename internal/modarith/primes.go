package modarith

import "fmt"

// NTT-friendly prime generation. RNS-CKKS needs chains of distinct primes
// q ≡ 1 (mod 2N) so that R_q = Z_q[x]/(x^N+1) supports a negacyclic NTT
// (a primitive 2N-th root of unity must exist mod q). The paper's
// parameter sets (Tab. IV) use 28-bit primes with N up to 2^16.

// GenerateNTTPrimes returns `count` distinct primes of exactly `bitSize`
// bits satisfying q ≡ 1 (mod 2N). Primes are emitted deterministically,
// alternating below and above the midpoint 2^(bitSize-1)+2^(bitSize-2)
// so that the product Q stays close to 2^(count·bitSize) — the same
// balancing trick HE libraries use to keep the CKKS scale stable across
// rescaling levels.
func GenerateNTTPrimes(bitSize uint, n uint64, count int) ([]uint64, error) {
	if bitSize < 10 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("modarith: prime bit size %d out of range [10, %d]", bitSize, MaxModulusBits)
	}
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("modarith: ring degree %d is not a power of two", n)
	}
	m := 2 * n // required residue modulus
	lo := uint64(1) << (bitSize - 1)
	hi := uint64(1) << bitSize
	mid := lo + lo/2

	// First candidate ≡ 1 mod 2N at or below mid.
	down := mid - (mid-1)%m
	up := down + m

	primes := make([]uint64, 0, count)
	seen := make(map[uint64]bool, count)
	for len(primes) < count {
		progressed := false
		if down >= lo+1 {
			if IsPrime(down) && !seen[down] {
				primes = append(primes, down)
				seen[down] = true
			}
			if down >= m {
				down -= m
				progressed = true
			}
		}
		if len(primes) >= count {
			break
		}
		if up < hi {
			if IsPrime(up) && !seen[up] {
				primes = append(primes, up)
				seen[up] = true
			}
			up += m
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("modarith: exhausted %d-bit range finding %d NTT primes for N=%d", bitSize, count, n)
		}
	}
	return primes[:count], nil
}

// GenerateNTTPrimesAvoiding is GenerateNTTPrimes that additionally skips
// any prime present in avoid — used to build auxiliary (special) moduli
// P coprime to the ciphertext modulus chain Q.
func GenerateNTTPrimesAvoiding(bitSize uint, n uint64, count int, avoid []uint64) ([]uint64, error) {
	avoidSet := make(map[uint64]bool, len(avoid))
	for _, q := range avoid {
		avoidSet[q] = true
	}
	// Over-generate then filter; the 2N-spaced lattice of candidates in a
	// 28-bit window contains thousands of primes, so count+len(avoid) is
	// always available for the paper's parameter ranges.
	raw, err := GenerateNTTPrimes(bitSize, n, count+len(avoid))
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, count)
	for _, q := range raw {
		if !avoidSet[q] {
			out = append(out, q)
			if len(out) == count {
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("modarith: could not find %d NTT primes avoiding %d existing ones", count, len(avoid))
}

// NewModuli maps a prime list to initialised Modulus values.
func NewModuli(primes []uint64) ([]*Modulus, error) {
	out := make([]*Modulus, len(primes))
	for i, q := range primes {
		m, err := NewModulus(q)
		if err != nil {
			return nil, fmt.Errorf("modarith: prime %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}
