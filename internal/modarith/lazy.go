package modarith

import "math/bits"

// Lazy-bound vector kernels (§G's pipeline discipline on the host).
// The strict kernels in vec.go keep every intermediate in [0, q); the
// kernels here keep values in the relaxed range [0, 2q) between
// pipeline stages and defer the final conditional subtraction to one
// correction pass (VecCorrectLazy) at the end of the chain — exactly
// the lazy-reduction discipline the paper applies between NTT stages
// and across VecMod pipelines. Chaining rules:
//
//	kernel               input bound   output bound
//	VecAddModLazy        [0, 2q)       [0, 2q)
//	VecSubModLazy        [0, 2q)       [0, 2q)
//	VecMulModShoupLazy   [0, 2^64)     [0, 2q)   (Harvey's bound)
//	VecCorrectLazy       [0, 2q)       [0, q)
//
// Every kernel is 4×-unrolled; the scalar tail handles len mod 4. The
// strict kernels remain the bit-exactness oracle: for inputs in
// [0, q), lazy-kernel chains followed by VecCorrectLazy are
// bit-identical to the strict pipeline (fuzzed in fuzz_test.go).

// VecAddModLazy computes dst[i] = a[i] + b[i] keeping the lazy bound:
// inputs in [0, 2q), outputs in [0, 2q). dst may alias a or b.
func (m *Modulus) VecAddModLazy(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	twoQ := m.qTimes2
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		s0 := a[i] + b[i]
		s1 := a[i+1] + b[i+1]
		s2 := a[i+2] + b[i+2]
		s3 := a[i+3] + b[i+3]
		if s0 >= twoQ {
			s0 -= twoQ
		}
		if s1 >= twoQ {
			s1 -= twoQ
		}
		if s2 >= twoQ {
			s2 -= twoQ
		}
		if s3 >= twoQ {
			s3 -= twoQ
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = s0, s1, s2, s3
	}
	for ; i < len(dst); i++ {
		s := a[i] + b[i]
		if s >= twoQ {
			s -= twoQ
		}
		dst[i] = s
	}
}

// VecSubModLazy computes dst[i] = a[i] − b[i] (mod q) in the lazy
// range: inputs in [0, 2q), outputs in [0, 2q). dst may alias a or b.
func (m *Modulus) VecSubModLazy(dst, a, b []uint64) {
	checkLen3(dst, a, b)
	twoQ := m.qTimes2
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		d0 := a[i] + twoQ - b[i]
		d1 := a[i+1] + twoQ - b[i+1]
		d2 := a[i+2] + twoQ - b[i+2]
		d3 := a[i+3] + twoQ - b[i+3]
		if d0 >= twoQ {
			d0 -= twoQ
		}
		if d1 >= twoQ {
			d1 -= twoQ
		}
		if d2 >= twoQ {
			d2 -= twoQ
		}
		if d3 >= twoQ {
			d3 -= twoQ
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < len(dst); i++ {
		d := a[i] + twoQ - b[i]
		if d >= twoQ {
			d -= twoQ
		}
		dst[i] = d
	}
}

// VecMulModShoupLazy computes dst[i] = a[i]·w[i] mod q with the final
// conditional subtraction deferred: outputs in [0, 2q). Valid for any
// a[i] < 2^64 (Harvey's bound); w must be reduced with quotients
// wShoup. dst may alias a.
func (m *Modulus) VecMulModShoupLazy(dst, a, w, wShoup []uint64) {
	checkLen3(dst, a, w)
	if len(w) != len(wShoup) {
		panic("modarith: shoup quotient length mismatch")
	}
	q := m.Q
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		h0, _ := bits.Mul64(a[i], wShoup[i])
		h1, _ := bits.Mul64(a[i+1], wShoup[i+1])
		h2, _ := bits.Mul64(a[i+2], wShoup[i+2])
		h3, _ := bits.Mul64(a[i+3], wShoup[i+3])
		dst[i] = a[i]*w[i] - h0*q
		dst[i+1] = a[i+1]*w[i+1] - h1*q
		dst[i+2] = a[i+2]*w[i+2] - h2*q
		dst[i+3] = a[i+3]*w[i+3] - h3*q
	}
	for ; i < len(dst); i++ {
		hi, _ := bits.Mul64(a[i], wShoup[i])
		dst[i] = a[i]*w[i] - hi*q
	}
}

// VecCorrectLazy maps a lazy vector in [0, 2q) back to the canonical
// range [0, q) — the single correction pass that terminates a lazy
// chain. dst may alias a.
func (m *Modulus) VecCorrectLazy(dst, a []uint64) {
	checkLen2(dst, a)
	q := m.Q
	i := 0
	for ; i <= len(dst)-4; i += 4 {
		x0, x1, x2, x3 := a[i], a[i+1], a[i+2], a[i+3]
		if x0 >= q {
			x0 -= q
		}
		if x1 >= q {
			x1 -= q
		}
		if x2 >= q {
			x2 -= q
		}
		if x3 >= q {
			x3 -= q
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = x0, x1, x2, x3
	}
	for ; i < len(dst); i++ {
		x := a[i]
		if x >= q {
			x -= q
		}
		dst[i] = x
	}
}
