package modarith

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMontgomeryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, q := range testPrimes {
		m := MustModulus(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			if got := m.FromMontgomery(m.ToMontgomery(a)); got != a {
				t.Fatalf("q=%d Montgomery round trip %d -> %d", q, a, got)
			}
		}
	}
}

func TestMontgomeryMulMatchesBarrett(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range testPrimes {
		m := MustModulus(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			bMont := m.ToMontgomery(b)
			if got, want := m.MontgomeryMulFull(a, bMont), m.BarrettMul(a, b); got != want {
				t.Fatalf("q=%d MontgomeryMulFull(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

func TestMontgomeryLazyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, q := range testPrimes {
		m := MustModulus(q)
		for i := 0; i < 500; i++ {
			a := rng.Uint64() % (2 * q) // lazy input range
			b := rng.Uint64() % q
			bMont := m.ToMontgomery(b)
			r := m.MontgomeryMul(a, bMont)
			if r >= 2*q {
				t.Fatalf("q=%d MontgomeryMul out of lazy range: %d >= 2q", q, r)
			}
			if r%q != m.BarrettMul(a%q, b) {
				t.Fatalf("q=%d MontgomeryMul wrong residue", q)
			}
		}
	}
}

func TestShoupMulMatchesBarrett(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, q := range testPrimes {
		m := MustModulus(q)
		for i := 0; i < 300; i++ {
			a := rng.Uint64() // Harvey's bound: any 64-bit a
			w := rng.Uint64() % q
			ws := m.ShoupPrecompute(w)
			r := m.ShoupMul(a, w, ws)
			if r >= 2*q {
				t.Fatalf("q=%d ShoupMul out of lazy range: %d >= 2q", q, r)
			}
			if got, want := m.ShoupMulFull(a, w, ws), m.BarrettMul(a%q, w); got != want {
				t.Fatalf("q=%d ShoupMulFull(%d,%d)=%d want %d", q, a, w, got, want)
			}
		}
	}
}

func TestLazyHelpers(t *testing.T) {
	m := MustModulus(12289)
	q := m.Q
	for a := uint64(0); a < 2*q; a += 97 {
		want := a % q
		if got := m.LazyCorrect(a); got != want {
			t.Fatalf("LazyCorrect(%d)=%d want %d", a, got, want)
		}
	}
	for a := uint64(0); a < 4*q; a += 131 {
		want := a % q
		if got := m.Correct4Q(a); got != want {
			t.Fatalf("Correct4Q(%d)=%d want %d", a, got, want)
		}
	}
	// SubLazy keeps results positive for inputs in [0, 2q).
	for i := 0; i < 100; i++ {
		a, b := uint64(i*241)%(2*q), uint64(i*157)%(2*q)
		r := m.SubLazy(a, b)
		if r >= 4*q {
			t.Fatalf("SubLazy(%d,%d)=%d out of [0,4q)", a, b, r)
		}
		if m.Correct4Q(r) != m.SubMod(a%q, b%q) {
			t.Fatalf("SubLazy(%d,%d) wrong residue", a, b)
		}
	}
}

func TestReduceAlgorithmString(t *testing.T) {
	for alg, want := range map[ReduceAlgorithm]string{
		Barrett: "Barrett", Montgomery: "Montgomery", Shoup: "Shoup",
		BATLazy: "BATLazy", ReduceAlgorithm(99): "Unknown",
	} {
		if got := alg.String(); got != want {
			t.Errorf("%d.String() = %q want %q", alg, got, want)
		}
	}
}

// Property: the three reduction paths agree on all inputs.
func TestReductionsAgreeQuick(t *testing.T) {
	m := MustModulus(268369921)
	q := m.Q
	f := func(a, b uint64) bool {
		a %= q
		b %= q
		barrett := m.BarrettMul(a, b)
		mont := m.MontgomeryMulFull(a, m.ToMontgomery(b))
		shoup := m.ShoupMulFull(a, b, m.ShoupPrecompute(b))
		return barrett == mont && mont == shoup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
