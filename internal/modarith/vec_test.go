package modarith

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int, q uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % q
	}
	return v
}

func TestVecOpsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, q := range testPrimes {
		m := MustModulus(q)
		n := 257 // odd length to catch stride bugs
		a := randVec(rng, n, q)
		b := randVec(rng, n, q)
		dst := make([]uint64, n)

		m.VecAddMod(dst, a, b)
		for i := range dst {
			if dst[i] != m.AddMod(a[i], b[i]) {
				t.Fatalf("q=%d VecAddMod[%d] mismatch", q, i)
			}
		}
		m.VecSubMod(dst, a, b)
		for i := range dst {
			if dst[i] != m.SubMod(a[i], b[i]) {
				t.Fatalf("q=%d VecSubMod[%d] mismatch", q, i)
			}
		}
		m.VecNegMod(dst, a)
		for i := range dst {
			if dst[i] != m.NegMod(a[i]) {
				t.Fatalf("q=%d VecNegMod[%d] mismatch", q, i)
			}
		}
		for _, alg := range []ReduceAlgorithm{Barrett, Montgomery} {
			m.VecMulMod(dst, a, b, alg)
			for i := range dst {
				if dst[i] != m.BarrettMul(a[i], b[i]) {
					t.Fatalf("q=%d alg=%v VecMulMod[%d] mismatch", q, alg, i)
				}
			}
		}
	}
}

func TestVecMulModShoup(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := testPrimes[0]
	m := MustModulus(q)
	n := 128
	a := randVec(rng, n, q)
	w := randVec(rng, n, q)
	ws := m.ShoupPrecomputeVec(w)
	dst := make([]uint64, n)
	m.VecMulModShoup(dst, a, w, ws)
	for i := range dst {
		if dst[i] != m.BarrettMul(a[i], w[i]) {
			t.Fatalf("VecMulModShoup[%d] = %d want %d", i, dst[i], m.BarrettMul(a[i], w[i]))
		}
	}
}

func TestVecScalarOps(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := testPrimes[1]
	m := MustModulus(q)
	n := 100
	a := randVec(rng, n, q)
	c := rng.Uint64() % q

	dst := make([]uint64, n)
	m.VecScalarMulMod(dst, a, c)
	for i := range dst {
		if dst[i] != m.BarrettMul(a[i], c) {
			t.Fatalf("VecScalarMulMod[%d] mismatch", i)
		}
	}

	acc := randVec(rng, n, q)
	want := make([]uint64, n)
	for i := range want {
		want[i] = m.AddMod(acc[i], m.BarrettMul(a[i], c))
	}
	m.VecScalarMulAddMod(acc, a, c)
	for i := range acc {
		if acc[i] != want[i] {
			t.Fatalf("VecScalarMulAddMod[%d] mismatch", i)
		}
	}
}

func TestVecMulAddMod(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := testPrimes[0]
	m := MustModulus(q)
	n := 64
	a := randVec(rng, n, q)
	b := randVec(rng, n, q)
	acc := randVec(rng, n, q)
	want := make([]uint64, n)
	for i := range want {
		want[i] = m.AddMod(acc[i], m.BarrettMul(a[i], b[i]))
	}
	m.VecMulAddMod(acc, a, b)
	for i := range acc {
		if acc[i] != want[i] {
			t.Fatalf("VecMulAddMod[%d] mismatch", i)
		}
	}
}

func TestVecAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	q := testPrimes[0]
	m := MustModulus(q)
	n := 50
	a := randVec(rng, n, q)
	b := randVec(rng, n, q)
	want := make([]uint64, n)
	m.VecAddMod(want, a, b)
	aCopy := append([]uint64(nil), a...)
	m.VecAddMod(aCopy, aCopy, b) // dst aliases a
	for i := range want {
		if aCopy[i] != want[i] {
			t.Fatalf("aliased VecAddMod[%d] mismatch", i)
		}
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	m := MustModulus(97)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	m.VecAddMod(make([]uint64, 3), make([]uint64, 4), make([]uint64, 4))
}

func TestVecMontgomeryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	q := testPrimes[2]
	m := MustModulus(q)
	a := randVec(rng, 77, q)
	mont := make([]uint64, len(a))
	back := make([]uint64, len(a))
	m.VecToMontgomery(mont, a)
	m.VecFromMontgomery(back, mont)
	for i := range a {
		if back[i] != a[i] {
			t.Fatalf("vec Montgomery round trip[%d] mismatch", i)
		}
	}
}

func TestInnerProductMod(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	q := testPrimes[0]
	m := MustModulus(q)
	a := randVec(rng, 301, q)
	b := randVec(rng, 301, q)
	var want uint64
	for i := range a {
		want = m.AddMod(want, m.BarrettMul(a[i], b[i]))
	}
	if got := m.InnerProductMod(a, b); got != want {
		t.Fatalf("InnerProductMod = %d want %d", got, want)
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, n := range []uint64{1 << 10, 1 << 13, 1 << 16} {
		primes, err := GenerateNTTPrimes(28, n, 10)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		seen := map[uint64]bool{}
		for _, q := range primes {
			if !IsPrime(q) {
				t.Fatalf("N=%d: %d not prime", n, q)
			}
			if q%(2*n) != 1 {
				t.Fatalf("N=%d: %d not ≡ 1 mod 2N", n, q)
			}
			if q>>27 != 1 {
				t.Fatalf("N=%d: %d not 28 bits", n, q)
			}
			if seen[q] {
				t.Fatalf("N=%d: duplicate prime %d", n, q)
			}
			seen[q] = true
		}
	}
}

func TestGenerateNTTPrimesAvoiding(t *testing.T) {
	n := uint64(1 << 12)
	base, err := GenerateNTTPrimes(28, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := GenerateNTTPrimesAvoiding(28, n, 5, base)
	if err != nil {
		t.Fatal(err)
	}
	baseSet := map[uint64]bool{}
	for _, q := range base {
		baseSet[q] = true
	}
	for _, q := range aux {
		if baseSet[q] {
			t.Fatalf("auxiliary prime %d collides with base", q)
		}
	}
}

func TestGenerateNTTPrimesErrors(t *testing.T) {
	if _, err := GenerateNTTPrimes(5, 1<<10, 1); err == nil {
		t.Error("expected error for tiny bit size")
	}
	if _, err := GenerateNTTPrimes(28, 1000, 1); err == nil {
		t.Error("expected error for non-power-of-two N")
	}
	// Asking for more 14-bit primes ≡ 1 mod 2^13 than exist must fail
	// cleanly rather than loop forever.
	if _, err := GenerateNTTPrimes(14, 1<<12, 100); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestNewModuli(t *testing.T) {
	primes, err := GenerateNTTPrimes(28, 1<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	mods, err := NewModuli(primes)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 3 {
		t.Fatalf("got %d moduli", len(mods))
	}
	if _, err := NewModuli([]uint64{4}); err == nil {
		t.Error("expected error for composite")
	}
}
