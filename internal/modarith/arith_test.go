package modarith

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// testPrimes spans the modulus sizes the paper uses: 28-bit CKKS primes
// (Tab. IV), mid-size, and near the 61-bit ceiling.
var testPrimes = []uint64{
	268369921,           // 28-bit, ≡ 1 mod 2^17
	268582913,           // 28-bit
	1152921504606830593, // 60-bit, ≡ 1 mod 2^17
	97,                  // tiny, sanity
	12289,               // classic NTT prime (q ≡ 1 mod 2^12)
}

func TestNewModulusRejectsBad(t *testing.T) {
	cases := []struct {
		q    uint64
		name string
	}{
		{0, "zero"},
		{1, "one"},
		{2, "even prime too small"},
		{16, "even composite"},
		{15, "odd composite"},
		{1 << 62, "too wide"},
		{268369920, "even"},
	}
	for _, c := range cases {
		if _, err := NewModulus(c.q); err == nil {
			t.Errorf("NewModulus(%d) [%s]: expected error, got nil", c.q, c.name)
		}
	}
}

func TestIsPrimeAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := rng.Uint64() >> uint(rng.Intn(40))
		want := new(big.Int).SetUint64(n).ProbablyPrime(32)
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, big.Int says %v", n, got, want)
		}
	}
	// Known Carmichael / strong pseudoprime stress values.
	for _, n := range []uint64{561, 1105, 1729, 2465, 2821, 6601, 3215031751, 3825123056546413051} {
		if IsPrime(n) {
			t.Errorf("IsPrime(%d) = true for composite", n)
		}
	}
}

func TestBasicOpsAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range testPrimes {
		m := MustModulus(q)
		bq := new(big.Int).SetUint64(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			ba := new(big.Int).SetUint64(a)
			bb := new(big.Int).SetUint64(b)

			if got, want := m.AddMod(a, b), new(big.Int).Mod(new(big.Int).Add(ba, bb), bq).Uint64(); got != want {
				t.Fatalf("q=%d AddMod(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got, want := m.SubMod(a, b), new(big.Int).Mod(new(big.Int).Sub(ba, bb), bq).Uint64(); got != want {
				t.Fatalf("q=%d SubMod(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got, want := m.MulMod(a, b), new(big.Int).Mod(new(big.Int).Mul(ba, bb), bq).Uint64(); got != want {
				t.Fatalf("q=%d MulMod(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

func TestMulModUnreducedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range testPrimes {
		if bits.Len64(q) > 32 {
			continue // unreduced-input path is exercised with room to spare
		}
		m := MustModulus(q)
		bq := new(big.Int).SetUint64(q)
		for i := 0; i < 100; i++ {
			a := rng.Uint64() // deliberately unreduced
			b := rng.Uint64() % (4 * q)
			want := new(big.Int).Mod(new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)), bq).Uint64()
			if got := m.MulMod(a, b); got != want {
				t.Fatalf("q=%d MulMod(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

func TestReduceWideAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, q := range testPrimes {
		m := MustModulus(q)
		bq := new(big.Int).SetUint64(q)
		for i := 0; i < 300; i++ {
			hi, lo := rng.Uint64(), rng.Uint64()
			x := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
			x.Add(x, new(big.Int).SetUint64(lo))
			want := new(big.Int).Mod(x, bq).Uint64()
			if got := m.ReduceWide(hi, lo); got != want {
				t.Fatalf("q=%d ReduceWide(%d,%d)=%d want %d", q, hi, lo, got, want)
			}
		}
	}
}

func TestPowAndInv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, q := range testPrimes {
		m := MustModulus(q)
		for i := 0; i < 100; i++ {
			a := 1 + rng.Uint64()%(q-1)
			inv := m.InvMod(a)
			if got := m.MulMod(a, inv); got != 1 {
				t.Fatalf("q=%d InvMod(%d)=%d but a·inv=%d", q, a, inv, got)
			}
			// Fermat: a^(q-1) = 1.
			if got := m.PowMod(a, q-1); got != 1 {
				t.Fatalf("q=%d PowMod(%d, q-1)=%d want 1", q, a, got)
			}
		}
		if m.PowMod(0, 0) != 1 {
			t.Errorf("q=%d: 0^0 should be 1 by convention", q)
		}
	}
}

func TestInvModZeroPanics(t *testing.T) {
	m := MustModulus(97)
	defer func() {
		if recover() == nil {
			t.Fatal("InvMod(0) did not panic")
		}
	}()
	m.InvMod(0)
}

func TestPrimitiveRootOfUnity(t *testing.T) {
	for _, q := range []uint64{268369921, 12289, 1152921504606830593} {
		m := MustModulus(q)
		for n := uint64(2); n <= 1<<13 && (q-1)%n == 0; n <<= 1 {
			w, err := m.PrimitiveRootOfUnity(n)
			if err != nil {
				t.Fatalf("q=%d n=%d: %v", q, n, err)
			}
			if m.PowMod(w, n) != 1 {
				t.Fatalf("q=%d n=%d: w^n != 1", q, n)
			}
			if m.PowMod(w, n/2) != q-1 {
				t.Fatalf("q=%d n=%d: w^(n/2) != -1, order not exact", q, n)
			}
		}
	}
}

func TestPrimitiveRootErrors(t *testing.T) {
	m := MustModulus(97) // 96 = 2^5·3
	if _, err := m.PrimitiveRootOfUnity(64); err == nil {
		t.Error("expected ErrNoRoot for order 64 mod 97")
	}
	if _, err := m.PrimitiveRootOfUnity(6); err == nil {
		t.Error("expected error for non-power-of-two order")
	}
	if w, err := m.PrimitiveRootOfUnity(1); err != nil || w != 1 {
		t.Errorf("order 1 root = (%d, %v), want (1, nil)", w, err)
	}
}

// Property: the ring laws hold for the modular operations.
func TestRingLawsQuick(t *testing.T) {
	m := MustModulus(268369921)
	q := m.Q
	norm := func(x uint64) uint64 { return x % q }

	commAdd := func(a, b uint64) bool {
		a, b = norm(a), norm(b)
		return m.AddMod(a, b) == m.AddMod(b, a)
	}
	commMul := func(a, b uint64) bool {
		a, b = norm(a), norm(b)
		return m.MulMod(a, b) == m.MulMod(b, a)
	}
	assocMul := func(a, b, c uint64) bool {
		a, b, c = norm(a), norm(b), norm(c)
		return m.MulMod(m.MulMod(a, b), c) == m.MulMod(a, m.MulMod(b, c))
	}
	distrib := func(a, b, c uint64) bool {
		a, b, c = norm(a), norm(b), norm(c)
		return m.MulMod(a, m.AddMod(b, c)) == m.AddMod(m.MulMod(a, b), m.MulMod(a, c))
	}
	addInverse := func(a uint64) bool {
		a = norm(a)
		return m.AddMod(a, m.NegMod(a)) == 0
	}
	for name, f := range map[string]interface{}{
		"commAdd": commAdd, "commMul": commMul, "assocMul": assocMul,
		"distrib": distrib, "addInverse": addInverse,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDivPow2ByQ(t *testing.T) {
	for _, q := range testPrimes {
		for _, shift := range []uint{40, 56, 64, 100, 122, 128} {
			hi, lo := divPow2ByQ(shift, q)
			got := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
			got.Add(got, new(big.Int).SetUint64(lo))
			want := new(big.Int).Lsh(big.NewInt(1), shift)
			want.Div(want, new(big.Int).SetUint64(q))
			if got.Cmp(want) != 0 {
				t.Fatalf("divPow2ByQ(%d, %d) = %v want %v", shift, q, got, want)
			}
		}
	}
}

func TestNegInvPow2(t *testing.T) {
	for _, q := range testPrimes {
		inv := negInvPow2(q)
		if q*(-inv) != 1 { // q · q⁻¹ ≡ 1 (mod 2^64)
			t.Fatalf("negInvPow2(%d): q·inv != -1 mod 2^64", q)
		}
	}
}
