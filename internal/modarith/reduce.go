package modarith

import "math/bits"

// This file implements the three modular-reduction algorithms the paper
// ablates in Fig. 13 (§V-F2): Barrett (Alg. 4), the optimized Montgomery
// reduction (Alg. 1) that CROSS maps to the TPU VPU, and Shoup
// multiplication with precomputed quotients for compile-time-known
// constants (twiddle factors, CRT primes, key-switch digits).
//
// All three share the machine word R = 2^64. The paper's TPU kernels use
// R = 2^32 on 32-bit VPU lanes; the algorithms are identical and the
// simulator accounts for the narrower lanes in its cost model, so the Go
// substrate uses the full word for both speed and generality.

// ReduceAlgorithm selects the reduction flavour used by vectorised
// kernels and by the CROSS compiler's VPU lowering (Fig. 13 ablation).
type ReduceAlgorithm int

const (
	// Barrett is the fully-reducing division-free reduction of Alg. 4.
	Barrett ReduceAlgorithm = iota
	// Montgomery is the lazy REDC of Alg. 1 with outputs in [0, 2q).
	Montgomery
	// Shoup is constant-multiplication with a precomputed quotient;
	// it requires the multiplicand to be known in advance.
	Shoup
	// BATLazy reformulates reduction as a K×K low-precision MatMul
	// (§J); it is lowered to the matrix engine rather than the VPU.
	BATLazy
)

// String returns the conventional name of the algorithm.
func (r ReduceAlgorithm) String() string {
	switch r {
	case Barrett:
		return "Barrett"
	case Montgomery:
		return "Montgomery"
	case Shoup:
		return "Shoup"
	case BATLazy:
		return "BATLazy"
	default:
		return "Unknown"
	}
}

// BarrettReduce reduces the 128-bit product (hi·2^64 + lo) to [0, q)
// following Alg. 4: one high multiplication by the precomputed
// ⌊2^128/q⌋ and up to two conditional subtractions.
func (m *Modulus) BarrettReduce(hi, lo uint64) uint64 {
	return m.ReduceWide(hi, lo)
}

// BarrettMul returns (a·b) mod q in [0, q).
func (m *Modulus) BarrettMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.ReduceWide(hi, lo)
}

// MontgomeryReduce implements Alg. 1 (optimized Montgomery reduction,
// REDC): given x = hi·2^64 + lo with x < q·2^64 it returns
// B ≡ x·2^-64 (mod q) with B in [0, 2q) — the lazy range the paper keeps
// between pipeline stages (§G).
func (m *Modulus) MontgomeryReduce(hi, lo uint64) uint64 {
	// t = (lo · (-q⁻¹)) mod 2^64, then B = (x + t·q) / 2^64.
	t := lo * m.MontQInvNeg
	th, tl := bits.Mul64(t, m.Q)
	_, carry := bits.Add64(lo, tl, 0)
	return hi + th + carry
}

// MontgomeryReduceFull is MontgomeryReduce followed by the final
// conditional subtraction, returning a value in [0, q).
func (m *Modulus) MontgomeryReduceFull(hi, lo uint64) uint64 {
	b := m.MontgomeryReduce(hi, lo)
	if b >= m.Q {
		b -= m.Q
	}
	return b
}

// ToMontgomery maps a into the Montgomery domain: a·2^64 mod q.
func (m *Modulus) ToMontgomery(a uint64) uint64 {
	hi, lo := bits.Mul64(a, m.MontR2)
	return m.MontgomeryReduceFull(hi, lo)
}

// FromMontgomery maps ā = a·2^64 mod q back to a.
func (m *Modulus) FromMontgomery(a uint64) uint64 {
	return m.MontgomeryReduceFull(0, a)
}

// MontgomeryMul multiplies a by bMont (a value already in the Montgomery
// domain, e.g. a precomputed twiddle w·2^64 mod q) and returns
// a·b mod q in [0, 2q). This is the paper's trick of storing pre-known
// parameters in the Montgomery domain so runtime data never needs
// conversion.
func (m *Modulus) MontgomeryMul(a, bMont uint64) uint64 {
	hi, lo := bits.Mul64(a, bMont)
	return m.MontgomeryReduce(hi, lo)
}

// MontgomeryMulFull is MontgomeryMul with the final correction to [0, q).
func (m *Modulus) MontgomeryMulFull(a, bMont uint64) uint64 {
	b := m.MontgomeryMul(a, bMont)
	if b >= m.Q {
		b -= m.Q
	}
	return b
}

// ShoupPrecompute returns the Shoup quotient w' = ⌊w·2^64 / q⌋ for a
// constant multiplicand w in [0, q).
func (m *Modulus) ShoupPrecompute(w uint64) uint64 {
	hi, _ := bits.Div64(w, 0, m.Q)
	return hi
}

// ShoupMul returns a·w mod q in [0, 2q) using the precomputed quotient
// wShoup = ⌊w·2^64/q⌋. Valid for any a < 2^64 (Harvey's bound).
func (m *Modulus) ShoupMul(a, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(a, wShoup)
	return a*w - qhat*m.Q
}

// ShoupMulFull is ShoupMul with the final correction to [0, q).
func (m *Modulus) ShoupMulFull(a, w, wShoup uint64) uint64 {
	r := m.ShoupMul(a, w, wShoup)
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// LazyCorrect maps a value in [0, 2q) to [0, q).
func (m *Modulus) LazyCorrect(a uint64) uint64 {
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// AddLazy returns a + b without reduction; callers must track that the
// running bound stays below 4q (the fused-butterfly bound).
func (m *Modulus) AddLazy(a, b uint64) uint64 { return a + b }

// SubLazy returns a - b + 2q, keeping results non-negative for inputs in
// [0, 2q); output is in (0, 4q).
func (m *Modulus) SubLazy(a, b uint64) uint64 { return a + m.qTimes2 - b }

// Correct4Q reduces a value in [0, 4q) to [0, q).
func (m *Modulus) Correct4Q(a uint64) uint64 {
	if a >= m.qTimes2 {
		a -= m.qTimes2
	}
	if a >= m.Q {
		a -= m.Q
	}
	return a
}
