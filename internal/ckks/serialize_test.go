package ckks

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCiphertextSerializeRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(40))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	var buf bytes.Buffer
	n, err := ct.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	back, err := ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level != ct.Level || back.Scale != ct.Scale {
		t.Fatal("header fields lost")
	}
	if !back.C0.Equal(ct.C0) || !back.C1.Equal(ct.C1) {
		t.Fatal("polynomials corrupted")
	}
	// The deserialised ciphertext must still decrypt correctly.
	got := tc.enc.Decode(tc.dec.Decrypt(back))
	if e := maxErr(got, z); e > 1e-4 {
		t.Fatalf("post-round-trip decrypt error %g", e)
	}
}

func TestCiphertextSerializeAfterOps(t *testing.T) {
	// Serialise a lower-level ciphertext (post mult+rescale).
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(41))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	prod, err := tc.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ = tc.ev.Rescale(prod)

	var buf bytes.Buffer
	if _, err := prod.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = z[i] * z[i]
	}
	got := tc.enc.Decode(tc.dec.Decrypt(back))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("post-op round trip error %g", e)
	}
}

func TestReadCiphertextRejectsGarbage(t *testing.T) {
	if _, err := ReadCiphertext(bytes.NewReader([]byte("not a ciphertext at all..."))); err == nil {
		t.Error("expected magic error")
	}
	if _, err := ReadCiphertext(bytes.NewReader(nil)); err == nil {
		t.Error("expected EOF error")
	}
	// Truncated payload.
	tc := newTestContext(t, nil)
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCiphertext(bytes.NewReader(trunc)); err == nil {
		t.Error("expected truncation error")
	}
}

func TestCiphertextValidate(t *testing.T) {
	tc := newTestContext(t, nil)
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	if err := ct.Validate(tc.p); err != nil {
		t.Fatalf("fresh ciphertext invalid: %v", err)
	}
	bad := ct.CopyNew()
	bad.Scale = -1
	if err := bad.Validate(tc.p); err == nil {
		t.Error("expected scale error")
	}
	bad = ct.CopyNew()
	bad.Level = 99
	if err := bad.Validate(tc.p); err == nil {
		t.Error("expected level error")
	}
	bad = ct.CopyNew()
	bad.C0.Coeffs[0][0] = ^uint64(0) // out-of-range residue
	if err := bad.Validate(tc.p); err == nil {
		t.Error("expected residue-range error")
	}
}

// Failure injection: decrypting with the wrong key or tampering with
// ciphertext bits must scramble the message, never silently succeed.
func TestWrongKeyDecryptsGarbage(t *testing.T) {
	tc := newTestContext(t, nil)
	z := []complex128{1, 2, 3, 4}
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	otherKG := NewKeyGenerator(tc.p, 999)
	otherSK := otherKG.GenSecretKey()
	wrongDec := NewDecryptor(tc.p, otherSK)
	got := tc.enc.Decode(wrongDec.Decrypt(ct))
	want := make([]complex128, tc.p.Slots())
	copy(want, z)
	if e := maxErr(got, want); e < 1 {
		t.Fatalf("wrong-key decryption suspiciously accurate (err %g)", e)
	}
}

func TestTamperedCiphertextScrambles(t *testing.T) {
	tc := newTestContext(t, nil)
	z := []complex128{5, 6, 7}
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	tampered := ct.CopyNew()
	m := tc.p.RingQP.Moduli[0]
	tampered.C0.Coeffs[0][0] = m.AddMod(tampered.C0.Coeffs[0][0], m.Q/2)
	got := tc.enc.Decode(tc.dec.Decrypt(tampered))
	want := make([]complex128, tc.p.Slots())
	copy(want, z)
	if e := maxErr(got, want); e < 1e-3 {
		t.Fatalf("tampering went unnoticed (err %g)", e)
	}
}
