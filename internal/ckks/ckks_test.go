package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Test parameters: small enough to run the full pipeline quickly,
// structured like the paper's sets (28-bit primes, dnum=3).
func testParams(t testing.TB) *Parameters {
	t.Helper()
	return MustParameters(10, 28, 6, 3)
}

type testContext struct {
	p   *Parameters
	enc *Encoder
	kg  *KeyGenerator
	sk  *SecretKey
	pk  *PublicKey
	ctr *Encryptor
	dec *Decryptor
	ev  *Evaluator
}

func newTestContext(t testing.TB, rotations []int) *testContext {
	t.Helper()
	p := testParams(t)
	kg := NewKeyGenerator(p, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var gks map[uint64]*GaloisKey
	if len(rotations) > 0 {
		var err error
		gks, err = kg.GenRotationKeys(sk, rotations)
		if err != nil {
			t.Fatal(err)
		}
		conj, err := kg.GenGaloisKey(sk, p.RingQP.GaloisElementForConjugation())
		if err != nil {
			t.Fatal(err)
		}
		gks[conj.GaloisEl] = conj
	}
	return &testContext{
		p: p, enc: NewEncoder(p), kg: kg, sk: sk, pk: pk,
		ctr: NewEncryptor(p, pk, 11), dec: NewDecryptor(p, sk),
		ev: NewEvaluator(p, rlk, gks),
	}
}

func randomSlots(rng *rand.Rand, n int) []complex128 {
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return z
}

func maxErr(got, want []complex128) float64 {
	var m float64
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func TestParametersValidation(t *testing.T) {
	if _, err := NewParameters(2, 28, 4, 2); err == nil {
		t.Error("expected error for tiny logN")
	}
	if _, err := NewParameters(10, 28, 0, 1); err == nil {
		t.Error("expected error for L=0")
	}
	if _, err := NewParameters(10, 28, 4, 5); err == nil {
		t.Error("expected error for dnum > L")
	}
	if _, err := NewParameters(10, 50, 4, 2); err == nil {
		t.Error("expected error for oversized scale")
	}
	p := testParams(t)
	if p.Alpha != 2 {
		t.Errorf("alpha = %d want ⌈6/3⌉ = 2", p.Alpha)
	}
	if p.Slots() != 512 || p.MaxLevel() != 5 {
		t.Error("derived parameters wrong")
	}
}

func TestDigitRange(t *testing.T) {
	p := testParams(t) // L=6, alpha=2
	cases := []struct{ j, lvl, lo, hi int }{
		{0, 5, 0, 2}, {1, 5, 2, 4}, {2, 5, 4, 6},
		{0, 2, 0, 2}, {1, 2, 2, 3}, // partial top digit
	}
	for _, c := range cases {
		lo, hi, ok := p.digitRange(c.j, c.lvl)
		if !ok || lo != c.lo || hi != c.hi {
			t.Errorf("digitRange(%d, %d) = (%d,%d,%v) want (%d,%d)", c.j, c.lvl, lo, hi, ok, c.lo, c.hi)
		}
	}
	if p.NumDigits(5) != 3 || p.NumDigits(2) != 2 || p.NumDigits(0) != 1 {
		t.Error("NumDigits wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(1))
	z := randomSlots(rng, tc.p.Slots())
	pt, err := tc.enc.Encode(z)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt)
	if e := maxErr(got, z); e > 1e-6 {
		t.Fatalf("encode/decode error %g", e)
	}
}

func TestEncodePartialSlots(t *testing.T) {
	tc := newTestContext(t, nil)
	z := []complex128{1 + 2i, -3, 0.5i}
	pt, err := tc.enc.Encode(z)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt)
	want := make([]complex128, tc.p.Slots())
	copy(want, z)
	if e := maxErr(got, want); e > 1e-6 {
		t.Fatalf("partial-slot error %g", e)
	}
	if _, err := tc.enc.Encode(make([]complex128, tc.p.Slots()+1)); err == nil {
		t.Error("expected error for too many slots")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(2))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	got := tc.enc.Decode(tc.dec.Decrypt(ct))
	if e := maxErr(got, z); e > 1e-4 {
		t.Fatalf("encrypt/decrypt error %g", e)
	}
}

func TestHEAdd(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(3))
	z1 := randomSlots(rng, tc.p.Slots())
	z2 := randomSlots(rng, tc.p.Slots())
	pt1, _ := tc.enc.Encode(z1)
	pt2, _ := tc.enc.Encode(z2)
	ct1, ct2 := tc.ctr.Encrypt(pt1), tc.ctr.Encrypt(pt2)
	sum, err := tc.ev.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] + z2[i]
	}
	got := tc.enc.Decode(tc.dec.Decrypt(sum))
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("HE-Add error %g", e)
	}

	diff, err := tc.ev.Sub(sum, ct2)
	if err != nil {
		t.Fatal(err)
	}
	got = tc.enc.Decode(tc.dec.Decrypt(diff))
	if e := maxErr(got, z1); e > 1e-4 {
		t.Fatalf("HE-Sub error %g", e)
	}
}

func TestHEMultRelinRescale(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(4))
	z1 := randomSlots(rng, tc.p.Slots())
	z2 := randomSlots(rng, tc.p.Slots())
	pt1, _ := tc.enc.Encode(z1)
	pt2, _ := tc.enc.Encode(z2)
	ct1, ct2 := tc.ctr.Encrypt(pt1), tc.ctr.Encrypt(pt2)

	prod, err := tc.ev.MulRelin(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = tc.ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Level != tc.p.MaxLevel()-1 {
		t.Fatalf("level after rescale = %d", prod.Level)
	}
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] * z2[i]
	}
	got := tc.enc.Decode(tc.dec.Decrypt(prod))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("HE-Mult error %g", e)
	}
}

func TestMultChain(t *testing.T) {
	// Squaring chain x → x^4 across two levels.
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(5))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	sq, err := tc.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	sq, _ = tc.ev.Rescale(sq)
	quad, err := tc.ev.MulRelin(sq, sq)
	if err != nil {
		t.Fatal(err)
	}
	quad, _ = tc.ev.Rescale(quad)

	want := make([]complex128, len(z))
	for i := range want {
		w := z[i] * z[i]
		want[i] = w * w
	}
	got := tc.enc.Decode(tc.dec.Decrypt(quad))
	if e := maxErr(got, want); e > 5e-2 {
		t.Fatalf("x^4 chain error %g", e)
	}
}

func TestPlainOps(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(6))
	z := randomSlots(rng, tc.p.Slots())
	w := randomSlots(rng, tc.p.Slots())
	ptz, _ := tc.enc.Encode(z)
	ptw, _ := tc.enc.Encode(w)
	ct := tc.ctr.Encrypt(ptz)

	sum, err := tc.ev.AddPlain(ct, ptw)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := make([]complex128, len(z))
	for i := range wantSum {
		wantSum[i] = z[i] + w[i]
	}
	if e := maxErr(tc.enc.Decode(tc.dec.Decrypt(sum)), wantSum); e > 1e-4 {
		t.Fatalf("AddPlain error %g", e)
	}

	prod, err := tc.ev.MulPlain(ct, ptw)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ = tc.ev.Rescale(prod)
	wantProd := make([]complex128, len(z))
	for i := range wantProd {
		wantProd[i] = z[i] * w[i]
	}
	if e := maxErr(tc.enc.Decode(tc.dec.Decrypt(prod)), wantProd); e > 1e-2 {
		t.Fatalf("MulPlain error %g", e)
	}
}

func TestRotate(t *testing.T) {
	rots := []int{1, 3, 7}
	tc := newTestContext(t, rots)
	rng := rand.New(rand.NewSource(7))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	for _, k := range rots {
		rot, err := tc.ev.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, len(z))
		for i := range want {
			want[i] = z[(i+k)%len(z)]
		}
		got := tc.enc.Decode(tc.dec.Decrypt(rot))
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("rotate by %d: error %g", k, e)
		}
	}
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t, []int{1})
	rng := rand.New(rand.NewSource(8))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	conj, err := tc.ev.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = cmplx.Conj(z[i])
	}
	got := tc.enc.Decode(tc.dec.Decrypt(conj))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("conjugate error %g", e)
	}
}

func TestRotateMissingKey(t *testing.T) {
	tc := newTestContext(t, []int{1})
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	if _, err := tc.ev.Rotate(ct, 5); err == nil {
		t.Error("expected error for missing rotation key")
	}
}

func TestLevelAndScaleGuards(t *testing.T) {
	tc := newTestContext(t, nil)
	pt, _ := tc.enc.Encode([]complex128{1})
	ct1 := tc.ctr.Encrypt(pt)
	ct2, err := tc.ev.DropLevel(ct1.CopyNew(), ct1.Level-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.ev.Add(ct1, ct2); err == nil {
		t.Error("expected level-mismatch error")
	}
	bad := ct1.CopyNew()
	bad.Scale *= 2
	if _, err := tc.ev.Add(ct1, bad); err == nil {
		t.Error("expected scale-mismatch error")
	}
	at0, err := tc.ev.DropLevel(ct1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.ev.Rescale(at0); err == nil {
		t.Error("expected rescale-at-level-0 error")
	}
	if _, err := tc.ev.DropLevel(ct1, 99); err == nil {
		t.Error("expected drop-level range error")
	}
}

func TestMulWithoutRelinKey(t *testing.T) {
	tc := newTestContext(t, nil)
	ev := NewEvaluator(tc.p, nil, nil)
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	if _, err := ev.MulRelin(ct, ct); err == nil {
		t.Error("expected missing-relin-key error")
	}
}

func TestDecryptAtLowerLevels(t *testing.T) {
	// Correctness must survive the full rescale ladder.
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(9))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	for lvl := ct.Level; lvl > 0; lvl-- {
		var err error
		ct, err = tc.ev.DropLevel(ct, lvl-1)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.enc.Decode(tc.dec.Decrypt(ct))
		if e := maxErr(got, z); e > 1e-3 {
			t.Fatalf("level %d: error %g", lvl-1, e)
		}
	}
}

func TestKernelCountersMatchCrossSchedule(t *testing.T) {
	// The functional evaluator and the TPU lowering must agree on the
	// key-switch kernel counts (same Scheduling layer, §III-A).
	tc := newTestContext(t, []int{1})
	pt, _ := tc.enc.Encode([]complex128{1, 2, 3})
	ct := tc.ctr.Encrypt(pt)

	tc.ev.ResetCounters()
	if _, err := tc.ev.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	kc := tc.ev.Kc

	// Expected from the hybrid schedule at L=6, alpha=2, dnum=3:
	// keySwitch: INTT(L) + per digit NTT(ext−digit) + ModDown 2×(INTT α + NTT L).
	l, alpha, dnum := 6, 2, 3
	ext := l + alpha
	wantINTT := l + 2*alpha
	// Per digit, the ext basis has l+alpha limbs of which alpha stay in
	// the NTT domain: NTT count per digit = ext − alpha = l; ModDown
	// adds 2·l — exactly cross.Compiler's keySwitchCounts shape.
	wantNTT := dnum*(ext-alpha) + 2*l
	if kc.INTTLimbs != wantINTT {
		t.Errorf("INTT limbs = %d want %d", kc.INTTLimbs, wantINTT)
	}
	if kc.NTTLimbs != wantNTT {
		t.Errorf("NTT limbs = %d want %d", kc.NTTLimbs, wantNTT)
	}
	// dnum ModUp conversions plus one ModDown conversion per output poly.
	if kc.BConvCalls != dnum+2 {
		t.Errorf("BConv calls = %d want %d", kc.BConvCalls, dnum+2)
	}
	if kc.Automorph != 2*l {
		t.Errorf("automorphism limbs = %d want %d", kc.Automorph, 2*l)
	}
}

func TestScaleTracksThroughPipeline(t *testing.T) {
	tc := newTestContext(t, nil)
	pt, _ := tc.enc.Encode([]complex128{0.5})
	ct := tc.ctr.Encrypt(pt)
	prod, err := tc.ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prod.Scale/(ct.Scale*ct.Scale)-1) > 1e-12 {
		t.Error("mult should square the scale")
	}
	res, _ := tc.ev.Rescale(prod)
	expected := prod.Scale / float64(tc.p.QPrimes[prod.Level])
	if math.Abs(res.Scale/expected-1) > 1e-12 {
		t.Error("rescale scale bookkeeping wrong")
	}
}
