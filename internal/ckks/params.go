// Package ckks implements the leveled full-RNS CKKS scheme [15], [14]
// that every workload in the paper runs on: canonical-embedding
// encoding, RLWE encryption, and the evaluator whose operators
// (HE-Add, HE-Mult, Rescale, Rotate) the paper benchmarks in Tab. VIII.
// Key switching is the hybrid (dnum-digit) variant [37] the paper's
// configurations assume.
//
// This package is the functional (bit-exact, CPU) execution path; the
// internal/cross package independently lowers the same operator
// schedules onto the TPU simulator for latency. Implementations are
// verified against each other: cross's kernel counts are asserted to
// match the kernel invocations this package actually performs.
package ckks

import (
	"fmt"
	"math"
	"math/big"

	"cross/internal/modarith"
	"cross/internal/ring"
	"cross/internal/rns"
)

// Parameters fixes a CKKS instantiation: ring degree 2^LogN, a chain of
// L ciphertext primes of LogScale bits (the paper's log₂q = 28), and
// Alpha = ⌈L/Dnum⌉ special primes for hybrid key switching.
type Parameters struct {
	LogN     int
	LogScale uint
	L        int // ciphertext-modulus limbs
	Dnum     int
	Alpha    int // special (auxiliary) limbs

	// Scale is the default encoding scale (2^LogScale).
	Scale float64

	// RingQP spans all L+Alpha primes: limbs [0, L) are the ciphertext
	// chain Q, limbs [L, L+Alpha) the special modulus P.
	RingQP *ring.Ring

	QPrimes []uint64
	PPrimes []uint64

	bigP       *big.Int
	pModQ      []uint64 // P mod q_i, the key-switch key scaling factor
	pInvModQ   []uint64 // P⁻¹ mod q_i, the ModDown scaling factor
	convCache  map[string]*rns.Converter
	basisCache map[string]*rns.Basis
}

// NewParameters builds a parameter set. logN ≥ 3; l ≥ 1; 1 ≤ dnum ≤ l.
func NewParameters(logN int, logScale uint, l, dnum int) (*Parameters, error) {
	if logN < 3 || logN > 17 {
		return nil, fmt.Errorf("ckks: logN %d outside [3, 17]", logN)
	}
	if l < 1 {
		return nil, fmt.Errorf("ckks: need at least one ciphertext prime")
	}
	if dnum < 1 || dnum > l {
		return nil, fmt.Errorf("ckks: dnum %d outside [1, %d]", dnum, l)
	}
	if logScale < 20 || logScale > 40 {
		return nil, fmt.Errorf("ckks: logScale %d outside [20, 40]", logScale)
	}
	n := 1 << logN
	alpha := (l + dnum - 1) / dnum
	qPrimes, err := modarith.GenerateNTTPrimes(logScale, uint64(n), l)
	if err != nil {
		return nil, err
	}
	// Special primes one bit larger so P exceeds every digit's modulus,
	// keeping the ModUp error scaled down by ≥ 1 (standard practice).
	pPrimes, err := modarith.GenerateNTTPrimesAvoiding(logScale+1, uint64(n), alpha, qPrimes)
	if err != nil {
		return nil, err
	}
	all := append(append([]uint64{}, qPrimes...), pPrimes...)
	rq, err := ring.NewRing(n, all)
	if err != nil {
		return nil, err
	}
	p := &Parameters{
		LogN:       logN,
		LogScale:   logScale,
		L:          l,
		Dnum:       dnum,
		Alpha:      alpha,
		Scale:      math.Exp2(float64(logScale)),
		RingQP:     rq,
		QPrimes:    qPrimes,
		PPrimes:    pPrimes,
		convCache:  make(map[string]*rns.Converter),
		basisCache: make(map[string]*rns.Basis),
	}
	p.bigP = big.NewInt(1)
	for _, pp := range pPrimes {
		p.bigP.Mul(p.bigP, new(big.Int).SetUint64(pp))
	}
	p.pModQ = make([]uint64, l)
	p.pInvModQ = make([]uint64, l)
	for i, q := range qPrimes {
		m := rq.Moduli[i]
		pm := new(big.Int).Mod(p.bigP, new(big.Int).SetUint64(q)).Uint64()
		p.pModQ[i] = pm
		p.pInvModQ[i] = m.InvMod(pm)
	}
	return p, nil
}

// MustParameters is NewParameters that panics on error.
func MustParameters(logN int, logScale uint, l, dnum int) *Parameters {
	p, err := NewParameters(logN, logScale, l, dnum)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << p.LogN }

// Slots returns the number of complex plaintext slots (N/2).
func (p *Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns the highest ciphertext level (L−1).
func (p *Parameters) MaxLevel() int { return p.L - 1 }

// PModQ returns P mod q_i.
func (p *Parameters) PModQ(i int) uint64 { return p.pModQ[i] }

// PInvModQ returns P⁻¹ mod q_i.
func (p *Parameters) PInvModQ(i int) uint64 { return p.pInvModQ[i] }

// digitRange returns the Q-limb interval [lo, hi) of digit j at level l.
// Digits are α-blocks of the full chain; the last block at a level may
// be partial. ok is false when the digit is empty at this level.
func (p *Parameters) digitRange(j, level int) (lo, hi int, ok bool) {
	lo = j * p.Alpha
	hi = lo + p.Alpha
	if hi > level+1 {
		hi = level + 1
	}
	return lo, hi, lo <= level
}

// NumDigits returns the number of non-empty key-switch digits at level.
func (p *Parameters) NumDigits(level int) int {
	return (level + p.Alpha) / p.Alpha
}

// basisFor returns (and caches) the RNS basis over a prime subset given
// by ring limb indices.
func (p *Parameters) basisFor(idx []int) *rns.Basis {
	key := fmt.Sprint(idx)
	if b, ok := p.basisCache[key]; ok {
		return b
	}
	primes := make([]uint64, len(idx))
	for i, id := range idx {
		primes[i] = p.RingQP.Moduli[id].Q
	}
	b := rns.MustBasis(primes)
	p.basisCache[key] = b
	return b
}

// converter returns (and caches) a BConv converter between limb-index
// subsets.
func (p *Parameters) converter(src, dst []int) *rns.Converter {
	key := fmt.Sprint(src, "→", dst)
	if c, ok := p.convCache[key]; ok {
		return c
	}
	c, err := rns.NewConverter(p.basisFor(src), p.basisFor(dst))
	if err != nil {
		panic(fmt.Sprintf("ckks: converter construction: %v", err))
	}
	p.convCache[key] = c
	return c
}

// qLimbs returns the limb indices [0, level].
func qLimbs(level int) []int {
	out := make([]int, level+1)
	for i := range out {
		out[i] = i
	}
	return out
}

// pLimbs returns the special limb indices [L, L+Alpha).
func (p *Parameters) pLimbs() []int {
	out := make([]int, p.Alpha)
	for i := range out {
		out[i] = p.L + i
	}
	return out
}
