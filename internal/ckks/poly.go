package ckks

import (
	"fmt"
	"math"
)

// Polynomial evaluation and slot-summation helpers — the primitives
// behind EvalMod (bootstrapping), the HELR sigmoid, and the square
// activations of the §V-D workloads.

// EvalPoly evaluates Σ coeffs[i]·x^i on a ciphertext with Horner's
// rule: deg multiplications and deg levels. Coefficients are real.
// For the short, low-degree polynomials of the paper's workloads
// (degree ≤ 3 sigmoid, squares) Horner is within one level of optimal;
// bootstrapping-scale polynomials would use Paterson–Stockmeyer, whose
// operation counts the cross package's schedules model.
func (ev *Evaluator) EvalPoly(ct *Ciphertext, coeffs []float64, enc *Encoder) (*Ciphertext, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("ckks: empty polynomial")
	}
	deg := len(coeffs) - 1
	if deg == 0 {
		return nil, fmt.Errorf("ckks: constant polynomial needs no ciphertext")
	}
	if ct.Level < deg {
		return nil, fmt.Errorf("ckks: degree %d needs %d levels, have %d", deg, deg, ct.Level)
	}

	constPt := func(v float64, level int, scale float64) (*Plaintext, error) {
		vals := make([]complex128, ev.p.Slots())
		for i := range vals {
			vals[i] = complex(v, 0)
		}
		return enc.EncodeAtLevel(vals, level, scale)
	}

	// acc = c_deg (as a plaintext-scaled copy of x to seed Horner:
	// acc = c_deg·x + c_{deg-1}, then acc = acc·x + c_i ...).
	pt, err := constPt(coeffs[deg], ct.Level, ev.p.Scale)
	if err != nil {
		return nil, err
	}
	acc, err := ev.MulPlain(ct, pt)
	if err != nil {
		return nil, err
	}
	if acc, err = ev.Rescale(acc); err != nil {
		return nil, err
	}
	addConst := func(acc *Ciphertext, v float64) (*Ciphertext, error) {
		if v == 0 {
			return acc, nil
		}
		pt, err := constPt(v, acc.Level, acc.Scale)
		if err != nil {
			return nil, err
		}
		return ev.AddPlain(acc, pt)
	}
	if acc, err = addConst(acc, coeffs[deg-1]); err != nil {
		return nil, err
	}

	for i := deg - 2; i >= 0; i-- {
		x, err := ev.DropLevel(ct, acc.Level)
		if err != nil {
			return nil, err
		}
		if acc, err = ev.MulRelin(acc, x); err != nil {
			return nil, err
		}
		if acc, err = ev.Rescale(acc); err != nil {
			return nil, err
		}
		if acc, err = addConst(acc, coeffs[i]); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// InnerSum adds rot(ct, k·step) for k ∈ [0, count) with a log-depth
// rotation tree — the slot-summation primitive of inner products and
// pooling layers. count must be a power of two; the needed rotation
// keys are step·2^i for 2^i < count.
func (ev *Evaluator) InnerSum(ct *Ciphertext, step, count int) (*Ciphertext, error) {
	if count <= 0 || count&(count-1) != 0 {
		return nil, fmt.Errorf("ckks: InnerSum count %d must be a power of two", count)
	}
	acc := ct.CopyNew()
	for s := 1; s < count; s <<= 1 {
		rot, err := ev.Rotate(acc, s*step)
		if err != nil {
			return nil, err
		}
		if acc, err = ev.Add(acc, rot); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// InnerSumRotations lists the rotation amounts InnerSum needs, for key
// generation.
func InnerSumRotations(step, count int) []int {
	var out []int
	for s := 1; s < count; s <<= 1 {
		out = append(out, s*step)
	}
	return out
}

// MulByConst multiplies every slot by a real constant without consuming
// a level when the constant is exactly representable at scale 1 — and
// with a level otherwise (encode at the working scale, multiply,
// rescale).
func (ev *Evaluator) MulByConst(ct *Ciphertext, v float64, enc *Encoder) (*Ciphertext, error) {
	if v == math.Trunc(v) && math.Abs(v) < float64(ev.p.QPrimes[0])/2 {
		// Integer constants embed exactly at scale 1: no level cost.
		vals := make([]complex128, ev.p.Slots())
		for i := range vals {
			vals[i] = complex(v, 0)
		}
		pt, err := enc.EncodeAtLevel(vals, ct.Level, 1)
		if err != nil {
			return nil, err
		}
		out, err := ev.MulPlain(ct, pt)
		if err != nil {
			return nil, err
		}
		out.Scale = ct.Scale // scale 1 plaintext leaves it unchanged
		return out, nil
	}
	vals := make([]complex128, ev.p.Slots())
	for i := range vals {
		vals[i] = complex(v, 0)
	}
	pt, err := enc.EncodeAtLevel(vals, ct.Level, ev.p.Scale)
	if err != nil {
		return nil, err
	}
	out, err := ev.MulPlain(ct, pt)
	if err != nil {
		return nil, err
	}
	return ev.Rescale(out)
}
