package ckks

import (
	"fmt"

	"cross/internal/ring"
)

// Ciphertext is an RLWE pair (c0, c1) with c0 + c1·s ≈ m·scale, stored
// in the NTT domain at some level of the modulus chain.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Level  int
	Scale  float64
}

// CopyNew deep-copies the ciphertext.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.CopyNew(), C1: ct.C1.CopyNew(), Level: ct.Level, Scale: ct.Scale}
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	p   *Parameters
	pk  *PublicKey
	smp *ring.Sampler
}

// NewEncryptor returns a seeded public-key encryptor.
func NewEncryptor(p *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{p: p, pk: pk, smp: ring.NewSampler(seed)}
}

// Encrypt produces a fresh ciphertext at the plaintext's level:
// (b·u + e0 + pt, a·u + e1).
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	p := e.p
	rq := p.RingQP
	lvl := pt.Level
	n := p.N()

	u := ring.NewPoly(lvl+1, n)
	e.smp.Ternary(rq, u)
	rq.NTT(u)

	e0 := ring.NewPoly(lvl+1, n)
	e.smp.Gaussian(rq, e0)
	rq.NTT(e0)
	e1 := ring.NewPoly(lvl+1, n)
	e.smp.Gaussian(rq, e1)
	rq.NTT(e1)

	c0 := ring.NewPoly(lvl+1, n)
	rq.MulCoeffs(e.pk.B, u, c0)
	rq.Add(c0, e0, c0)
	rq.Add(c0, pt.Value, c0)

	c1 := ring.NewPoly(lvl+1, n)
	rq.MulCoeffs(e.pk.A, u, c1)
	rq.Add(c1, e1, c1)

	return &Ciphertext{C0: c0, C1: c1, Level: lvl, Scale: pt.Scale}
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	p  *Parameters
	sk *SecretKey
}

// NewDecryptor returns a decryptor.
func NewDecryptor(p *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{p: p, sk: sk}
}

// Decrypt computes c0 + c1·s.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := d.p.RingQP
	lvl := ct.Level
	m := ring.NewPoly(lvl+1, d.p.N())
	rq.MulCoeffs(ct.C1, d.sk.Value, m)
	rq.Add(m, ct.C0, m)
	return &Plaintext{Value: m, Level: lvl, Scale: ct.Scale}
}

// checkCompatible validates that two ciphertexts can be combined.
func checkCompatible(a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	relDiff := a.Scale/b.Scale - 1
	if relDiff < -1e-9 || relDiff > 1e-9 {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a.Scale, b.Scale)
	}
	return nil
}
