package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"cross/internal/ring"
)

// Encoder maps vectors of N/2 complex slots to ring plaintexts through
// the CKKS canonical embedding (§II-A1): slot j is the evaluation of the
// message polynomial at ζ^(5^j) with ζ = e^(iπ/N), computed with the
// "special FFT" over the 5-generated rotation group so that slot
// rotations correspond to Galois automorphisms X ↦ X^(5^k).
type Encoder struct {
	p *Parameters

	n        int          // slot count N/2
	m        int          // 2N
	rotGroup []int        // 5^j mod 2N
	ksiPows  []complex128 // e^(2πi k / 2N)
}

// NewEncoder builds the root tables for the parameter set.
func NewEncoder(p *Parameters) *Encoder {
	n := p.Slots()
	m := p.N() * 2
	e := &Encoder{p: p, n: n, m: m,
		rotGroup: make([]int, n), ksiPows: make([]complex128, m+1)}
	fivePow := 1
	for j := 0; j < n; j++ {
		e.rotGroup[j] = fivePow
		fivePow = fivePow * 5 % m
	}
	for k := 0; k <= m; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m)
		e.ksiPows[k] = cmplx.Exp(complex(0, angle))
	}
	return e
}

// bitReverseInPlace permutes vals by bit reversal (length power of two).
func bitReverseInPlace(vals []complex128) {
	n := len(vals)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// fftSpecial evaluates the message at the rotation-group roots
// (decode direction).
func (e *Encoder) fftSpecial(vals []complex128) {
	n := len(vals)
	bitReverseInPlace(vals)
	for length := 2; length <= n; length <<= 1 {
		lenh, lenq := length>>1, length<<2
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * e.m / lenq
				u := vals[i+j]
				v := vals[i+j+lenh] * e.ksiPows[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// fftSpecialInv is the inverse transform (encode direction).
func (e *Encoder) fftSpecialInv(vals []complex128) {
	n := len(vals)
	for length := n; length >= 2; length >>= 1 {
		lenh, lenq := length>>1, length<<2
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - e.rotGroup[j]%lenq) * e.m / lenq
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.ksiPows[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseInPlace(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// Plaintext is an encoded (unencrypted) message: a ring polynomial in
// the NTT domain with an attached scale.
type Plaintext struct {
	Value *ring.Poly
	Level int
	Scale float64
}

// EncodeAtLevel embeds up to N/2 complex values into a plaintext at the
// given level and scale. Missing slots are zero.
func (e *Encoder) EncodeAtLevel(values []complex128, level int, scale float64) (*Plaintext, error) {
	if len(values) > e.n {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), e.n)
	}
	if level < 0 || level > e.p.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range", level)
	}
	vals := make([]complex128, e.n)
	copy(vals, values)
	e.fftSpecialInv(vals)

	// Layout: coefficient j carries Re, coefficient j+N/2 carries Im.
	coeffs := make([]*big.Int, e.p.N())
	for j := 0; j < e.n; j++ {
		coeffs[j] = bigFromFloat(real(vals[j]) * scale)
		coeffs[j+e.n] = bigFromFloat(imag(vals[j]) * scale)
	}
	pt := &Plaintext{Value: ring.NewPoly(level+1, e.p.N()), Level: level, Scale: scale}
	e.setBigCoeffs(pt.Value, coeffs, level)
	e.p.RingQP.NTT(pt.Value)
	return pt, nil
}

// Encode embeds values at the maximum level and default scale.
func (e *Encoder) Encode(values []complex128) (*Plaintext, error) {
	return e.EncodeAtLevel(values, e.p.MaxLevel(), e.p.Scale)
}

// Decode recovers the complex slots from a plaintext.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	poly := pt.Value.CopyNew()
	e.p.RingQP.INTT(poly)
	coeffs := e.bigCoeffs(poly, pt.Level)

	vals := make([]complex128, e.n)
	for j := 0; j < e.n; j++ {
		re := floatFromBig(coeffs[j]) / pt.Scale
		im := floatFromBig(coeffs[j+e.n]) / pt.Scale
		vals[j] = complex(re, im)
	}
	e.fftSpecial(vals)
	return vals
}

// setBigCoeffs embeds signed big integers into the RNS limbs [0, level].
func (e *Encoder) setBigCoeffs(p *ring.Poly, coeffs []*big.Int, level int) {
	rq := e.p.RingQP
	tmp := new(big.Int)
	for i := 0; i <= level; i++ {
		q := new(big.Int).SetUint64(rq.Moduli[i].Q)
		for k, c := range coeffs {
			if c == nil {
				p.Coeffs[i][k] = 0
				continue
			}
			tmp.Mod(c, q) // Go big.Int Mod is Euclidean: result ≥ 0
			p.Coeffs[i][k] = tmp.Uint64()
		}
	}
}

// bigCoeffs reconstructs centered big-integer coefficients via CRT over
// limbs [0, level].
func (e *Encoder) bigCoeffs(p *ring.Poly, level int) []*big.Int {
	basis := e.p.basisFor(qLimbs(level))
	n := e.p.N()
	out := make([]*big.Int, n)
	res := make([]uint64, level+1)
	for k := 0; k < n; k++ {
		for i := 0; i <= level; i++ {
			res[i] = p.Coeffs[i][k]
		}
		out[k] = basis.DecodeCentered(res)
	}
	return out
}

// bigFromFloat rounds a float64 to the nearest big integer, exactly for
// magnitudes beyond 2^53 (needed when scale × value overflows int64).
func bigFromFloat(f float64) *big.Int {
	bf := new(big.Float).SetFloat64(f)
	i, _ := bf.Int(nil)
	// big.Float.Int truncates; adjust for rounding.
	frac := new(big.Float).Sub(bf, new(big.Float).SetInt(i))
	fr, _ := frac.Float64()
	if fr >= 0.5 {
		i.Add(i, big.NewInt(1))
	} else if fr <= -0.5 {
		i.Sub(i, big.NewInt(1))
	}
	return i
}

// floatFromBig converts a big integer to float64 (lossy for huge values;
// decode tolerances absorb it).
func floatFromBig(x *big.Int) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}
