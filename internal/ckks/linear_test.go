package ckks

import (
	"math/rand"
	"testing"
)

func TestRotateHoistedMatchesRotate(t *testing.T) {
	rots := []int{1, 3, 5}
	tc := newTestContext(t, rots)
	rng := rand.New(rand.NewSource(50))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	hoisted, err := tc.ev.RotateHoisted(ct, rots)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range rots {
		// Hoisting swaps the order of ModUp and automorphism; the
		// approximate basis conversion's overflow multiples differ, so
		// results agree up to key-switch noise, not bit-exactly. Both
		// must decrypt to the rotated slots.
		want := make([]complex128, len(z))
		for j := range want {
			want[j] = z[(j+k)%len(z)]
		}
		got := tc.enc.Decode(tc.dec.Decrypt(hoisted[i]))
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("rotation %d: hoisted error %g", k, e)
		}
		plain, err := tc.ev.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		got = tc.enc.Decode(tc.dec.Decrypt(plain))
		if e := maxErr(got, want); e > 1e-2 {
			t.Fatalf("rotation %d: plain error %g", k, e)
		}
	}
}

func TestRotateHoistedZeroIsCopy(t *testing.T) {
	tc := newTestContext(t, []int{1})
	pt, _ := tc.enc.Encode([]complex128{1, 2})
	ct := tc.ctr.Encrypt(pt)
	out, err := tc.ev.RotateHoisted(ct, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].C0.Equal(ct.C0) {
		t.Fatal("rotation by 0 should copy")
	}
}

func TestRotateHoistedMissingKey(t *testing.T) {
	tc := newTestContext(t, []int{1})
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	if _, err := tc.ev.RotateHoisted(ct, []int{7}); err == nil {
		t.Error("expected missing-key error")
	}
}

func TestLinearTransformMatVec(t *testing.T) {
	// A 3-diagonal band matrix over all slots, evaluated with BSGS and
	// checked against the plaintext matrix-vector product.
	tc0 := newTestContext(t, nil)
	slots := tc0.p.Slots()
	rng := rand.New(rand.NewSource(51))

	diagIdx := []int{0, 1, 5}
	diagonals := make(map[int][]complex128, len(diagIdx))
	for _, d := range diagIdx {
		v := make([]complex128, slots)
		for i := range v {
			v[i] = complex(rng.Float64()*2-1, 0)
		}
		diagonals[d] = v
	}

	// Build the transform first to learn the rotations it needs.
	probe := NewEvaluator(tc0.p, nil, nil)
	lt, err := probe.NewLinearTransform(tc0.enc, diagonals, tc0.p.MaxLevel(), tc0.p.Scale)
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestContext(t, lt.GaloisElementsFor())
	lt, err = tc.ev.NewLinearTransform(tc.enc, diagonals, tc.p.MaxLevel(), tc.p.Scale)
	if err != nil {
		t.Fatal(err)
	}

	z := randomSlots(rng, slots)
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	res, err := tc.ev.EvalLinearTransform(ct, lt)
	if err != nil {
		t.Fatal(err)
	}

	want := make([]complex128, slots)
	for i := 0; i < slots; i++ {
		for _, d := range diagIdx {
			want[i] += diagonals[d][i] * z[(i+d)%slots]
		}
	}
	got := tc.enc.Decode(tc.dec.Decrypt(res))
	if e := maxErr(got, want); e > 2e-2 {
		t.Fatalf("linear transform error %g", e)
	}
	if res.Level != tc.p.MaxLevel()-1 {
		t.Fatalf("transform should consume one level, got %d", res.Level)
	}
}

func TestLinearTransformValidation(t *testing.T) {
	tc := newTestContext(t, nil)
	if _, err := tc.ev.NewLinearTransform(tc.enc, nil, 0, 1); err == nil {
		t.Error("expected empty-transform error")
	}
	bad := map[int][]complex128{-1: make([]complex128, tc.p.Slots())}
	if _, err := tc.ev.NewLinearTransform(tc.enc, bad, 0, tc.p.Scale); err == nil {
		t.Error("expected negative-diagonal error")
	}
	short := map[int][]complex128{0: {1, 2}}
	if _, err := tc.ev.NewLinearTransform(tc.enc, short, 0, tc.p.Scale); err == nil {
		t.Error("expected length error")
	}
	ok := map[int][]complex128{0: make([]complex128, tc.p.Slots())}
	lt, err := tc.ev.NewLinearTransform(tc.enc, ok, tc.p.MaxLevel(), tc.p.Scale)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	lowCt, _ := tc.ev.DropLevel(ct, 0)
	if _, err := tc.ev.EvalLinearTransform(lowCt, lt); err == nil {
		t.Error("expected level-mismatch error")
	}
}

func TestLinearTransformGaloisElements(t *testing.T) {
	tc := newTestContext(t, nil)
	diags := map[int][]complex128{
		0:  make([]complex128, tc.p.Slots()),
		3:  make([]complex128, tc.p.Slots()),
		17: make([]complex128, tc.p.Slots()),
	}
	probe := NewEvaluator(tc.p, nil, nil)
	lt, err := probe.NewLinearTransform(tc.enc, diags, 0, tc.p.Scale)
	if err != nil {
		t.Fatal(err)
	}
	rots := lt.GaloisElementsFor()
	if len(rots) == 0 {
		t.Fatal("transform with off-zero diagonals needs rotations")
	}
	// BSGS: far fewer rotations than diagonals × slots.
	if len(rots) > 8 {
		t.Fatalf("BSGS should need few rotations, got %d", len(rots))
	}
}
