package ckks

import (
	"fmt"
	"sync"

	"cross/internal/ring"
)

// KernelCounters tallies HE-kernel invocations (limb-granular) so the
// functional path can be cross-checked against internal/cross's TPU
// schedule — the two faces of the compiler must agree on how much work
// each operator performs.
type KernelCounters struct {
	NTTLimbs   int
	INTTLimbs  int
	BConvCalls int
	VecMulN    int // N-length modular multiplications
	VecAddN    int // N-length modular additions/subtractions
	Automorph  int
}

// Evaluator executes CKKS operators on the CPU. It is the functional
// twin of the cross.Compiler lowering.
type Evaluator struct {
	p   *Parameters
	rlk *RelinearizationKey
	gks map[uint64]*GaloisKey
	Kc  KernelCounters

	// scratch recycles full-width (L+Alpha limb) polynomials for the
	// key-switch pipeline's intermediates (digit extraction buffers,
	// accumulators, ModUp extensions), so the steady-state operator
	// allocates only its returned ciphertext.
	scratch sync.Pool // *polyScratch
	// rowBuf/rowBufOut back the [][]uint64 row-header views handed to
	// the basis converter (headers only — no coefficient copies).
	rowBuf    [][]uint64
	rowBufOut [][]uint64
}

// polyScratch is a pooled full-width polynomial plus a truncated view
// of it; the view's limb count is set per borrow.
type polyScratch struct {
	full *ring.Poly
	view ring.Poly
}

// getPoly borrows a polynomial with the given limb count. When zero is
// set the view's limbs are cleared (accumulator use); otherwise the
// contents are undefined and the caller must overwrite before reading.
func (ev *Evaluator) getPoly(limbs int, zero bool) *polyScratch {
	sp, ok := ev.scratch.Get().(*polyScratch)
	if !ok {
		sp = &polyScratch{full: ring.NewPoly(ev.p.L+ev.p.Alpha, ev.p.N())}
	}
	sp.view.Coeffs = sp.full.Coeffs[:limbs]
	if zero {
		for i := 0; i < limbs; i++ {
			clear(sp.view.Coeffs[i])
		}
	}
	return sp
}

func (ev *Evaluator) putPoly(sp *polyScratch) { ev.scratch.Put(sp) }

// rows returns a reusable row-header slice of length l. Two distinct
// backings exist because ModUp/ModDown view source and destination
// limb sets at the same time.
func (ev *Evaluator) rows(l int) [][]uint64 {
	if cap(ev.rowBuf) < l {
		ev.rowBuf = make([][]uint64, l)
	}
	return ev.rowBuf[:l]
}

func (ev *Evaluator) rowsOut(l int) [][]uint64 {
	if cap(ev.rowBufOut) < l {
		ev.rowBufOut = make([][]uint64, l)
	}
	return ev.rowBufOut[:l]
}

// NewEvaluator builds an evaluator; rlk and gks may be nil when the
// corresponding operators are unused.
func NewEvaluator(p *Parameters, rlk *RelinearizationKey, gks map[uint64]*GaloisKey) *Evaluator {
	return &Evaluator{p: p, rlk: rlk, gks: gks}
}

// ResetCounters clears the kernel tally.
func (ev *Evaluator) ResetCounters() { ev.Kc = KernelCounters{} }

// Add returns ct1 + ct2.
func (ev *Evaluator) Add(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if err := checkCompatible(ct1, ct2); err != nil {
		return nil, err
	}
	rq := ev.p.RingQP
	out := &Ciphertext{
		C0: ring.NewPoly(ct1.Level+1, ev.p.N()), C1: ring.NewPoly(ct1.Level+1, ev.p.N()),
		Level: ct1.Level, Scale: ct1.Scale,
	}
	rq.Add(ct1.C0, ct2.C0, out.C0)
	rq.Add(ct1.C1, ct2.C1, out.C1)
	ev.Kc.VecAddN += 2 * (ct1.Level + 1)
	return out, nil
}

// Sub returns ct1 − ct2.
func (ev *Evaluator) Sub(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if err := checkCompatible(ct1, ct2); err != nil {
		return nil, err
	}
	rq := ev.p.RingQP
	out := &Ciphertext{
		C0: ring.NewPoly(ct1.Level+1, ev.p.N()), C1: ring.NewPoly(ct1.Level+1, ev.p.N()),
		Level: ct1.Level, Scale: ct1.Scale,
	}
	rq.Sub(ct1.C0, ct2.C0, out.C0)
	rq.Sub(ct1.C1, ct2.C1, out.C1)
	ev.Kc.VecAddN += 2 * (ct1.Level + 1)
	return out, nil
}

// AddPlain returns ct + pt (matching level and scale).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	out := ct.CopyNew()
	ev.p.RingQP.Add(out.C0, pt.Value, out.C0)
	ev.Kc.VecAddN += ct.Level + 1
	return out, nil
}

// MulPlain returns ct ⊙ pt; the output scale multiplies.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	rq := ev.p.RingQP
	out := ct.CopyNew()
	rq.MulCoeffs(out.C0, pt.Value, out.C0)
	rq.MulCoeffs(out.C1, pt.Value, out.C1)
	out.Scale = ct.Scale * pt.Scale
	ev.Kc.VecMulN += 2 * (ct.Level + 1)
	return out, nil
}

// MulRelin multiplies two ciphertexts and relinearises the degree-2
// term with the relinearisation key. The output scale multiplies; call
// Rescale afterwards to bring it back down (the paper's HE-Mult lowers
// tensor product + key switch + rescale, §III-A).
func (ev *Evaluator) MulRelin(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if ct1.Level != ct2.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct1.Level, ct2.Level)
	}
	if ev.rlk == nil {
		return nil, fmt.Errorf("ckks: evaluator has no relinearisation key")
	}
	rq := ev.p.RingQP
	lvl := ct1.Level
	n := ev.p.N()

	d0 := ring.NewPoly(lvl+1, n)
	d1 := ring.NewPoly(lvl+1, n)
	d2s := ev.getPoly(lvl+1, false)
	tmps := ev.getPoly(lvl+1, false)
	d2, tmp := &d2s.view, &tmps.view
	rq.MulCoeffs(ct1.C0, ct2.C0, d0)
	rq.MulCoeffs(ct1.C0, ct2.C1, d1)
	rq.MulCoeffs(ct1.C1, ct2.C0, tmp)
	rq.Add(d1, tmp, d1)
	rq.MulCoeffs(ct1.C1, ct2.C1, d2)
	ev.Kc.VecMulN += 4 * (lvl + 1)
	ev.Kc.VecAddN += lvl + 1

	ks0, ks1 := ev.keySwitch(d2, lvl, &ev.rlk.SwitchingKey)
	ev.putPoly(d2s)
	ev.putPoly(tmps)
	rq.Add(d0, ks0, d0)
	rq.Add(d1, ks1, d1)
	ev.Kc.VecAddN += 2 * (lvl + 1)

	return &Ciphertext{C0: d0, C1: d1, Level: lvl, Scale: ct1.Scale * ct2.Scale}, nil
}

// Rescale divides the ciphertext by its top prime, dropping one level
// and dividing the scale by that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0")
	}
	lvl := ct.Level
	qTop := ev.p.QPrimes[lvl]
	out := &Ciphertext{
		C0:    ev.rescalePoly(ct.C0, lvl),
		C1:    ev.rescalePoly(ct.C1, lvl),
		Level: lvl - 1,
		Scale: ct.Scale / float64(qTop),
	}
	return out, nil
}

// rescalePoly computes round(poly / q_lvl) in RNS: INTT the top limb,
// re-embed it into the remaining limbs, subtract, and multiply by
// q_lvl⁻¹ (the exact-division trick; the rounding error is folded into
// the ciphertext noise).
func (ev *Evaluator) rescalePoly(p *ring.Poly, lvl int) *ring.Poly {
	rq := ev.p.RingQP
	n := ev.p.N()
	qTop := ev.p.QPrimes[lvl]

	tb := rq.GetScratch()
	defer rq.PutScratch(tb)
	top := (*tb)[:n]
	copy(top, p.Coeffs[lvl])
	rq.INTTLimb(lvl, top)
	ev.Kc.INTTLimbs++

	out := ring.NewPoly(lvl, n)
	half := qTop >> 1
	for i := 0; i < lvl; i++ {
		m := rq.Moduli[i]
		dst := out.Coeffs[i]
		// Centered embedding of the top-limb residues into q_i.
		for k := 0; k < n; k++ {
			v := top[k]
			if v > half {
				dst[k] = m.Q - m.Reduce(qTop-v)
				if dst[k] == m.Q {
					dst[k] = 0
				}
			} else {
				dst[k] = m.Reduce(v)
			}
		}
		rq.NTTLimb(i, dst)
		ev.Kc.NTTLimbs++
		// (c_i − top) · qTop⁻¹ mod q_i
		inv := m.InvMod(m.Reduce(qTop))
		invS := m.ShoupPrecompute(inv)
		src := p.Coeffs[i]
		for k := 0; k < n; k++ {
			diff := m.SubMod(src[k], dst[k])
			dst[k] = m.ShoupMulFull(diff, inv, invS)
		}
	}
	ev.Kc.VecAddN += lvl
	ev.Kc.VecMulN += lvl
	ev.Kc.BConvCalls++
	return out
}

// Rotate rotates the plaintext slots left by k positions using the
// corresponding Galois key.
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) {
	g := ev.p.RingQP.GaloisElementForRotation(k)
	return ev.applyGalois(ct, g)
}

// Conjugate applies complex conjugation to the slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	return ev.applyGalois(ct, ev.p.RingQP.GaloisElementForConjugation())
}

func (ev *Evaluator) applyGalois(ct *Ciphertext, g uint64) (*Ciphertext, error) {
	gk, ok := ev.gks[g]
	if !ok {
		return nil, fmt.Errorf("ckks: no Galois key for element %d", g)
	}
	rq := ev.p.RingQP
	lvl := ct.Level
	n := ev.p.N()

	// The slot table is built once per galois element and cached in the
	// ring's arena; this lookup is allocation-free afterwards.
	idx, err := rq.AutomorphismNTTIndex(g)
	if err != nil {
		return nil, err
	}

	c0 := ring.NewPoly(lvl+1, n)
	c1s := ev.getPoly(lvl+1, false)
	c1 := &c1s.view
	rq.AutomorphismNTT(ct.C0, c0, idx)
	rq.AutomorphismNTT(ct.C1, c1, idx)
	ev.Kc.Automorph += 2 * (lvl + 1)

	ks0, ks1 := ev.keySwitch(c1, lvl, &gk.SwitchingKey)
	ev.putPoly(c1s)
	rq.Add(c0, ks0, c0)
	ev.Kc.VecAddN += lvl + 1
	return &Ciphertext{C0: c0, C1: ks1, Level: lvl, Scale: ct.Scale}, nil
}

// keySwitch applies the hybrid key switch (Han–Ki) to a single NTT-domain
// polynomial d at the given level, returning the (b, a) contribution
// pair at the same level. This is the kernel pipeline of §III-A:
// digit extraction → INTT → ModUp (BConv) → NTT → evk inner product →
// ModDown.
func (ev *Evaluator) keySwitch(d *ring.Poly, lvl int, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	p := ev.p
	rq := p.RingQP
	n := p.N()
	total := p.L + p.Alpha
	dnum := p.NumDigits(lvl)

	// Coefficient-domain copy of d for digit extraction.
	dCoeffS := ev.getPoly(lvl+1, false)
	dCoeff := &dCoeffS.view
	dCoeff.Copy(d)
	rq.INTT(dCoeff)
	ev.Kc.INTTLimbs += lvl + 1

	// Accumulators over Q_lvl ∪ P (full limb layout; unused limbs idle).
	acc0S := ev.getPoly(total, true)
	acc1S := ev.getPoly(total, true)
	acc0, acc1 := &acc0S.view, &acc1S.view
	extLimbs := append(qLimbs(lvl), p.pLimbs()...)

	extS := ev.getPoly(total, false)
	for j := 0; j < dnum; j++ {
		lo, hi, ok := p.digitRange(j, lvl)
		if !ok {
			break
		}
		// The digit's own limbs stay in the NTT domain (copied from d);
		// only the basis-converted limbs need a forward transform.
		ext := &extS.view
		ev.modUp(ext, d, dCoeff, lo, hi, lvl)
		// Accumulate ext ⊙ evk_j into (acc0, acc1).
		for _, i := range extLimbs {
			m := rq.Moduli[i]
			for k := 0; k < n; k++ {
				e := ext.Coeffs[i][k]
				acc0.Coeffs[i][k] = m.AddMod(acc0.Coeffs[i][k], m.BarrettMul(e, swk.B[j].Coeffs[i][k]))
				acc1.Coeffs[i][k] = m.AddMod(acc1.Coeffs[i][k], m.BarrettMul(e, swk.A[j].Coeffs[i][k]))
			}
		}
		ev.Kc.VecMulN += 2 * len(extLimbs)
		ev.Kc.VecAddN += 2 * len(extLimbs)
	}
	ev.putPoly(extS)
	ev.putPoly(dCoeffS)

	b := ev.modDown(acc0, lvl)
	a := ev.modDown(acc1, lvl)
	ev.putPoly(acc0S)
	ev.putPoly(acc1S)
	return b, a
}

// modUp extends digit limbs [lo, hi) to the full Q_lvl ∪ P basis and
// writes the result into ext (a full-width scratch polynomial): the
// digit's own limbs are copied straight from the NTT-domain input d,
// the remaining limbs come from the approximate BConv of the
// coefficient-domain dCoeff followed by a forward NTT each. The
// converter reads dCoeff's rows and writes ext's rows directly through
// reusable header views — no coefficient copies, no allocation.
func (ev *Evaluator) modUp(ext, d, dCoeff *ring.Poly, lo, hi, lvl int) {
	p := ev.p
	rq := p.RingQP

	src := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		src = append(src, i)
	}
	dst := make([]int, 0, lvl+1+p.Alpha)
	for i := 0; i <= lvl; i++ {
		if i < lo || i >= hi {
			dst = append(dst, i)
		}
	}
	dst = append(dst, p.pLimbs()...)

	for _, i := range src {
		copy(ext.Coeffs[i], d.Coeffs[i])
	}
	if len(dst) > 0 {
		conv := p.converter(src, dst)
		in := ev.rows(len(src))
		for si, i := range src {
			in[si] = dCoeff.Coeffs[i]
		}
		out := ev.rowsOut(len(dst))
		for di, i := range dst {
			out[di] = ext.Coeffs[i]
		}
		conv.ConvertApproxInto(out, in)
		for _, i := range dst {
			rq.NTTLimb(i, ext.Coeffs[i])
			ev.Kc.NTTLimbs++
		}
		ev.Kc.BConvCalls++
	}
}

// modDown divides an NTT-domain accumulator over Q_lvl ∪ P by P:
// INTT the special limbs (in place — the accumulator is keySwitch
// scratch whose P limbs are dead afterwards), convert them to Q_lvl,
// NTT, subtract, and multiply by P⁻¹ mod q_i.
func (ev *Evaluator) modDown(acc *ring.Poly, lvl int) *ring.Poly {
	p := ev.p
	rq := p.RingQP
	n := p.N()

	pIdx := p.pLimbs()
	in := ev.rows(len(pIdx))
	for si, i := range pIdx {
		in[si] = acc.Coeffs[i]
		rq.INTTLimb(i, in[si])
		ev.Kc.INTTLimbs++
	}
	conv := p.converter(pIdx, qLimbs(lvl))
	outS := ev.getPoly(lvl+1, false)
	out := ev.rowsOut(lvl + 1)
	for i := 0; i <= lvl; i++ {
		out[i] = outS.view.Coeffs[i]
	}
	conv.ConvertApproxInto(out, in)
	ev.Kc.BConvCalls++

	res := ring.NewPoly(lvl+1, n)
	for i := 0; i <= lvl; i++ {
		m := rq.Moduli[i]
		rq.NTTLimb(i, out[i])
		ev.Kc.NTTLimbs++
		inv := p.PInvModQ(i)
		invS := m.ShoupPrecompute(inv)
		for k := 0; k < n; k++ {
			diff := m.SubMod(acc.Coeffs[i][k], out[i][k])
			res.Coeffs[i][k] = m.ShoupMulFull(diff, inv, invS)
		}
	}
	ev.putPoly(outS)
	ev.Kc.VecAddN += lvl + 1
	ev.Kc.VecMulN += lvl + 1
	return res
}

// DropLevel truncates a ciphertext to a lower level without scaling
// (used to align operands).
func (ev *Evaluator) DropLevel(ct *Ciphertext, toLevel int) (*Ciphertext, error) {
	if toLevel < 0 || toLevel > ct.Level {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, toLevel)
	}
	out := ct.CopyNew()
	out.C0.Truncate(toLevel)
	out.C1.Truncate(toLevel)
	out.Level = toLevel
	return out, nil
}
