package ckks

import (
	"fmt"

	"cross/internal/ring"
	"cross/internal/rns"
)

// KernelCounters tallies HE-kernel invocations (limb-granular) so the
// functional path can be cross-checked against internal/cross's TPU
// schedule — the two faces of the compiler must agree on how much work
// each operator performs.
type KernelCounters struct {
	NTTLimbs   int
	INTTLimbs  int
	BConvCalls int
	VecMulN    int // N-length modular multiplications
	VecAddN    int // N-length modular additions/subtractions
	Automorph  int
}

// Evaluator executes CKKS operators on the CPU. It is the functional
// twin of the cross.Compiler lowering.
type Evaluator struct {
	p    *Parameters
	rlk  *RelinearizationKey
	gks  map[uint64]*GaloisKey
	Kc   KernelCounters
	auto map[uint64][]int // cached automorphism slot tables
}

// NewEvaluator builds an evaluator; rlk and gks may be nil when the
// corresponding operators are unused.
func NewEvaluator(p *Parameters, rlk *RelinearizationKey, gks map[uint64]*GaloisKey) *Evaluator {
	return &Evaluator{p: p, rlk: rlk, gks: gks, auto: make(map[uint64][]int)}
}

// ResetCounters clears the kernel tally.
func (ev *Evaluator) ResetCounters() { ev.Kc = KernelCounters{} }

// Add returns ct1 + ct2.
func (ev *Evaluator) Add(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if err := checkCompatible(ct1, ct2); err != nil {
		return nil, err
	}
	rq := ev.p.RingQP
	out := &Ciphertext{
		C0: ring.NewPoly(ct1.Level+1, ev.p.N()), C1: ring.NewPoly(ct1.Level+1, ev.p.N()),
		Level: ct1.Level, Scale: ct1.Scale,
	}
	rq.Add(ct1.C0, ct2.C0, out.C0)
	rq.Add(ct1.C1, ct2.C1, out.C1)
	ev.Kc.VecAddN += 2 * (ct1.Level + 1)
	return out, nil
}

// Sub returns ct1 − ct2.
func (ev *Evaluator) Sub(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if err := checkCompatible(ct1, ct2); err != nil {
		return nil, err
	}
	rq := ev.p.RingQP
	out := &Ciphertext{
		C0: ring.NewPoly(ct1.Level+1, ev.p.N()), C1: ring.NewPoly(ct1.Level+1, ev.p.N()),
		Level: ct1.Level, Scale: ct1.Scale,
	}
	rq.Sub(ct1.C0, ct2.C0, out.C0)
	rq.Sub(ct1.C1, ct2.C1, out.C1)
	ev.Kc.VecAddN += 2 * (ct1.Level + 1)
	return out, nil
}

// AddPlain returns ct + pt (matching level and scale).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	out := ct.CopyNew()
	ev.p.RingQP.Add(out.C0, pt.Value, out.C0)
	ev.Kc.VecAddN += ct.Level + 1
	return out, nil
}

// MulPlain returns ct ⊙ pt; the output scale multiplies.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	rq := ev.p.RingQP
	out := ct.CopyNew()
	rq.MulCoeffs(out.C0, pt.Value, out.C0)
	rq.MulCoeffs(out.C1, pt.Value, out.C1)
	out.Scale = ct.Scale * pt.Scale
	ev.Kc.VecMulN += 2 * (ct.Level + 1)
	return out, nil
}

// MulRelin multiplies two ciphertexts and relinearises the degree-2
// term with the relinearisation key. The output scale multiplies; call
// Rescale afterwards to bring it back down (the paper's HE-Mult lowers
// tensor product + key switch + rescale, §III-A).
func (ev *Evaluator) MulRelin(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if ct1.Level != ct2.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct1.Level, ct2.Level)
	}
	if ev.rlk == nil {
		return nil, fmt.Errorf("ckks: evaluator has no relinearisation key")
	}
	rq := ev.p.RingQP
	lvl := ct1.Level
	n := ev.p.N()

	d0 := ring.NewPoly(lvl+1, n)
	d1 := ring.NewPoly(lvl+1, n)
	d2 := ring.NewPoly(lvl+1, n)
	tmp := ring.NewPoly(lvl+1, n)
	rq.MulCoeffs(ct1.C0, ct2.C0, d0)
	rq.MulCoeffs(ct1.C0, ct2.C1, d1)
	rq.MulCoeffs(ct1.C1, ct2.C0, tmp)
	rq.Add(d1, tmp, d1)
	rq.MulCoeffs(ct1.C1, ct2.C1, d2)
	ev.Kc.VecMulN += 4 * (lvl + 1)
	ev.Kc.VecAddN += lvl + 1

	ks0, ks1 := ev.keySwitch(d2, lvl, &ev.rlk.SwitchingKey)
	rq.Add(d0, ks0, d0)
	rq.Add(d1, ks1, d1)
	ev.Kc.VecAddN += 2 * (lvl + 1)

	return &Ciphertext{C0: d0, C1: d1, Level: lvl, Scale: ct1.Scale * ct2.Scale}, nil
}

// Rescale divides the ciphertext by its top prime, dropping one level
// and dividing the scale by that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0")
	}
	lvl := ct.Level
	qTop := ev.p.QPrimes[lvl]
	out := &Ciphertext{
		C0:    ev.rescalePoly(ct.C0, lvl),
		C1:    ev.rescalePoly(ct.C1, lvl),
		Level: lvl - 1,
		Scale: ct.Scale / float64(qTop),
	}
	return out, nil
}

// rescalePoly computes round(poly / q_lvl) in RNS: INTT the top limb,
// re-embed it into the remaining limbs, subtract, and multiply by
// q_lvl⁻¹ (the exact-division trick; the rounding error is folded into
// the ciphertext noise).
func (ev *Evaluator) rescalePoly(p *ring.Poly, lvl int) *ring.Poly {
	rq := ev.p.RingQP
	n := ev.p.N()
	qTop := ev.p.QPrimes[lvl]

	top := append([]uint64(nil), p.Coeffs[lvl]...)
	rq.INTTLimb(lvl, top)
	ev.Kc.INTTLimbs++

	out := ring.NewPoly(lvl, n)
	half := qTop >> 1
	for i := 0; i < lvl; i++ {
		m := rq.Moduli[i]
		dst := out.Coeffs[i]
		// Centered embedding of the top-limb residues into q_i.
		for k := 0; k < n; k++ {
			v := top[k]
			if v > half {
				dst[k] = m.Q - m.Reduce(qTop-v)
				if dst[k] == m.Q {
					dst[k] = 0
				}
			} else {
				dst[k] = m.Reduce(v)
			}
		}
		rq.NTTLimb(i, dst)
		ev.Kc.NTTLimbs++
		// (c_i − top) · qTop⁻¹ mod q_i
		inv := m.InvMod(m.Reduce(qTop))
		invS := m.ShoupPrecompute(inv)
		src := p.Coeffs[i]
		for k := 0; k < n; k++ {
			diff := m.SubMod(src[k], dst[k])
			dst[k] = m.ShoupMulFull(diff, inv, invS)
		}
	}
	ev.Kc.VecAddN += lvl
	ev.Kc.VecMulN += lvl
	ev.Kc.BConvCalls++
	return out
}

// Rotate rotates the plaintext slots left by k positions using the
// corresponding Galois key.
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) {
	g := ev.p.RingQP.GaloisElementForRotation(k)
	return ev.applyGalois(ct, g)
}

// Conjugate applies complex conjugation to the slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	return ev.applyGalois(ct, ev.p.RingQP.GaloisElementForConjugation())
}

func (ev *Evaluator) applyGalois(ct *Ciphertext, g uint64) (*Ciphertext, error) {
	gk, ok := ev.gks[g]
	if !ok {
		return nil, fmt.Errorf("ckks: no Galois key for element %d", g)
	}
	rq := ev.p.RingQP
	lvl := ct.Level
	n := ev.p.N()

	idx, ok := ev.auto[g]
	if !ok {
		var err error
		idx, err = rq.AutomorphismNTTIndex(g)
		if err != nil {
			return nil, err
		}
		ev.auto[g] = idx
	}

	c0 := ring.NewPoly(lvl+1, n)
	c1 := ring.NewPoly(lvl+1, n)
	rq.AutomorphismNTT(ct.C0, c0, idx)
	rq.AutomorphismNTT(ct.C1, c1, idx)
	ev.Kc.Automorph += 2 * (lvl + 1)

	ks0, ks1 := ev.keySwitch(c1, lvl, &gk.SwitchingKey)
	rq.Add(c0, ks0, c0)
	ev.Kc.VecAddN += lvl + 1
	return &Ciphertext{C0: c0, C1: ks1, Level: lvl, Scale: ct.Scale}, nil
}

// keySwitch applies the hybrid key switch (Han–Ki) to a single NTT-domain
// polynomial d at the given level, returning the (b, a) contribution
// pair at the same level. This is the kernel pipeline of §III-A:
// digit extraction → INTT → ModUp (BConv) → NTT → evk inner product →
// ModDown.
func (ev *Evaluator) keySwitch(d *ring.Poly, lvl int, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	p := ev.p
	rq := p.RingQP
	n := p.N()
	total := p.L + p.Alpha
	dnum := p.NumDigits(lvl)

	// Coefficient-domain copy of d for digit extraction.
	dCoeff := ring.NewPoly(lvl+1, n)
	dCoeff.Copy(d)
	rq.INTT(dCoeff)
	ev.Kc.INTTLimbs += lvl + 1

	// Accumulators over Q_lvl ∪ P (full limb layout; unused limbs idle).
	acc0 := ring.NewPoly(total, n)
	acc1 := ring.NewPoly(total, n)
	extLimbs := append(qLimbs(lvl), p.pLimbs()...)

	for j := 0; j < dnum; j++ {
		lo, hi, ok := p.digitRange(j, lvl)
		if !ok {
			break
		}
		// The digit's own limbs stay in the NTT domain (copied from d);
		// only the basis-converted limbs need a forward transform.
		ext := ev.modUp(d, dCoeff, lo, hi, lvl)
		// Accumulate ext ⊙ evk_j into (acc0, acc1).
		for _, i := range extLimbs {
			m := rq.Moduli[i]
			for k := 0; k < n; k++ {
				e := ext.Coeffs[i][k]
				acc0.Coeffs[i][k] = m.AddMod(acc0.Coeffs[i][k], m.BarrettMul(e, swk.B[j].Coeffs[i][k]))
				acc1.Coeffs[i][k] = m.AddMod(acc1.Coeffs[i][k], m.BarrettMul(e, swk.A[j].Coeffs[i][k]))
			}
		}
		ev.Kc.VecMulN += 2 * len(extLimbs)
		ev.Kc.VecAddN += 2 * len(extLimbs)
	}

	return ev.modDown(acc0, lvl), ev.modDown(acc1, lvl)
}

// modUp extends digit limbs [lo, hi) to the full Q_lvl ∪ P basis: the
// digit's own limbs are copied straight from the NTT-domain input d,
// the remaining limbs come from the approximate BConv of the
// coefficient-domain dCoeff followed by a forward NTT each.
func (ev *Evaluator) modUp(d, dCoeff *ring.Poly, lo, hi, lvl int) *ring.Poly {
	p := ev.p
	rq := p.RingQP
	n := p.N()
	total := p.L + p.Alpha

	src := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		src = append(src, i)
	}
	dst := make([]int, 0, lvl+1+p.Alpha)
	for i := 0; i <= lvl; i++ {
		if i < lo || i >= hi {
			dst = append(dst, i)
		}
	}
	dst = append(dst, p.pLimbs()...)

	ext := ring.NewPoly(total, n)
	for _, i := range src {
		copy(ext.Coeffs[i], d.Coeffs[i])
	}
	if len(dst) > 0 {
		conv := p.converter(src, dst)
		in := rns.AllocLimbs(len(src), n)
		for si, i := range src {
			copy(in[si], dCoeff.Coeffs[i])
		}
		out := conv.ConvertApprox(in)
		for di, i := range dst {
			copy(ext.Coeffs[i], out[di])
			rq.NTTLimb(i, ext.Coeffs[i])
			ev.Kc.NTTLimbs++
		}
		ev.Kc.BConvCalls++
	}
	return ext
}

// modDown divides an NTT-domain accumulator over Q_lvl ∪ P by P:
// INTT the special limbs, convert them to Q_lvl, NTT, subtract, and
// multiply by P⁻¹ mod q_i.
func (ev *Evaluator) modDown(acc *ring.Poly, lvl int) *ring.Poly {
	p := ev.p
	rq := p.RingQP
	n := p.N()

	pIdx := p.pLimbs()
	in := rns.AllocLimbs(len(pIdx), n)
	for si, i := range pIdx {
		copy(in[si], acc.Coeffs[i])
		rq.INTTLimb(i, in[si])
		ev.Kc.INTTLimbs++
	}
	conv := p.converter(pIdx, qLimbs(lvl))
	out := conv.ConvertApprox(in)
	ev.Kc.BConvCalls++

	res := ring.NewPoly(lvl+1, n)
	for i := 0; i <= lvl; i++ {
		m := rq.Moduli[i]
		rq.NTTLimb(i, out[i])
		ev.Kc.NTTLimbs++
		inv := p.PInvModQ(i)
		invS := m.ShoupPrecompute(inv)
		for k := 0; k < n; k++ {
			diff := m.SubMod(acc.Coeffs[i][k], out[i][k])
			res.Coeffs[i][k] = m.ShoupMulFull(diff, inv, invS)
		}
	}
	ev.Kc.VecAddN += lvl + 1
	ev.Kc.VecMulN += lvl + 1
	return res
}

// DropLevel truncates a ciphertext to a lower level without scaling
// (used to align operands).
func (ev *Evaluator) DropLevel(ct *Ciphertext, toLevel int) (*Ciphertext, error) {
	if toLevel < 0 || toLevel > ct.Level {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, toLevel)
	}
	out := ct.CopyNew()
	out.C0.Truncate(toLevel)
	out.C1.Truncate(toLevel)
	out.Level = toLevel
	return out, nil
}
