package ckks

import (
	"fmt"

	"cross/internal/ring"
)

// Rotation hoisting (Halevi–Shoup) and the BSGS diagonal method for
// plaintext linear transforms — the building blocks of the paper's
// CoeffToSlot/SlotToCoeff bootstrapping stages and of the FC layers in
// the §V-D workloads. Hoisting shares the expensive digit
// decomposition (INTT + ModUp) across all rotations of the same
// ciphertext; the BSGS split reduces d diagonals to ~2√d rotations.

// hoistedDecomposition is the rotation-independent part of a key
// switch: the ModUp-extended digits of c1, in the NTT domain.
type hoistedDecomposition struct {
	level int
	exts  []*ring.Poly // one per digit, L+Alpha limbs
}

// decompose performs the per-ciphertext half of the key switch.
func (ev *Evaluator) decompose(c1 *ring.Poly, lvl int) *hoistedDecomposition {
	p := ev.p
	rq := p.RingQP
	dnum := p.NumDigits(lvl)

	dCoeffS := ev.getPoly(lvl+1, false)
	dCoeff := &dCoeffS.view
	dCoeff.Copy(c1)
	rq.INTT(dCoeff)
	ev.Kc.INTTLimbs += lvl + 1

	// The extended digits outlive this call (they are shared across all
	// hoisted rotations), so they are real allocations, not scratch.
	h := &hoistedDecomposition{level: lvl, exts: make([]*ring.Poly, 0, dnum)}
	for j := 0; j < dnum; j++ {
		lo, hi, ok := p.digitRange(j, lvl)
		if !ok {
			break
		}
		ext := ring.NewPoly(p.L+p.Alpha, p.N())
		ev.modUp(ext, c1, dCoeff, lo, hi, lvl)
		h.exts = append(h.exts, ext)
	}
	ev.putPoly(dCoeffS)
	return h
}

// applyHoisted finishes a key switch from a hoisted decomposition,
// optionally permuting the digits by an automorphism index first
// (τ commutes with ModUp because basis conversion is coefficient-wise).
func (ev *Evaluator) applyHoisted(h *hoistedDecomposition, idx []int, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	p := ev.p
	rq := p.RingQP
	n := p.N()
	lvl := h.level
	total := p.L + p.Alpha

	acc0S := ev.getPoly(total, true)
	acc1S := ev.getPoly(total, true)
	tmpS := ev.getPoly(total, false)
	acc0, acc1, tmp := &acc0S.view, &acc1S.view, &tmpS.view
	extLimbs := append(qLimbs(lvl), p.pLimbs()...)
	for j, ext := range h.exts {
		src := ext
		if idx != nil {
			for _, i := range extLimbs {
				dst := tmp.Coeffs[i]
				from := ext.Coeffs[i]
				for k := range dst {
					dst[k] = from[idx[k]]
				}
			}
			src = tmp
			ev.Kc.Automorph += len(extLimbs)
		}
		for _, i := range extLimbs {
			m := rq.Moduli[i]
			for k := 0; k < n; k++ {
				e := src.Coeffs[i][k]
				acc0.Coeffs[i][k] = m.AddMod(acc0.Coeffs[i][k], m.BarrettMul(e, swk.B[j].Coeffs[i][k]))
				acc1.Coeffs[i][k] = m.AddMod(acc1.Coeffs[i][k], m.BarrettMul(e, swk.A[j].Coeffs[i][k]))
			}
		}
		ev.Kc.VecMulN += 2 * len(extLimbs)
		ev.Kc.VecAddN += 2 * len(extLimbs)
	}
	ev.putPoly(tmpS)
	b := ev.modDown(acc0, lvl)
	a := ev.modDown(acc1, lvl)
	ev.putPoly(acc0S)
	ev.putPoly(acc1S)
	return b, a
}

// RotateHoisted rotates one ciphertext by several amounts, sharing the
// digit decomposition across all of them. Output order matches ks.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, ks []int) ([]*Ciphertext, error) {
	p := ev.p
	rq := p.RingQP
	lvl := ct.Level
	n := p.N()

	h := ev.decompose(ct.C1, lvl)
	out := make([]*Ciphertext, len(ks))
	for i, k := range ks {
		if k == 0 {
			out[i] = ct.CopyNew()
			continue
		}
		g := rq.GaloisElementForRotation(k)
		gk, ok := ev.gks[g]
		if !ok {
			return nil, fmt.Errorf("ckks: no Galois key for rotation %d", k)
		}
		idx, err := rq.AutomorphismNTTIndex(g)
		if err != nil {
			return nil, err
		}
		ks0, ks1 := ev.applyHoisted(h, idx, &gk.SwitchingKey)
		c0 := ring.NewPoly(lvl+1, n)
		rq.AutomorphismNTT(ct.C0, c0, idx)
		ev.Kc.Automorph += lvl + 1
		rq.Add(c0, ks0, c0)
		ev.Kc.VecAddN += lvl + 1
		out[i] = &Ciphertext{C0: c0, C1: ks1, Level: lvl, Scale: ct.Scale}
	}
	return out, nil
}

// LinearTransform is a slot-space linear map y = M·x encoded as its
// non-zero (generalised) diagonals, BSGS-split with giant step g.
type LinearTransform struct {
	diags map[int]*Plaintext // rotation amount → encoded diagonal
	giant int
	Level int
	Scale float64
}

// NewLinearTransform encodes the map given by diagonals[d][i] =
// M[i][(i+d) mod slots] at the given level. The BSGS giant step is
// chosen as ⌈√(max |d|+1)⌉ rounded to a power of two.
func (ev *Evaluator) NewLinearTransform(enc *Encoder, diagonals map[int][]complex128, level int, scale float64) (*LinearTransform, error) {
	if len(diagonals) == 0 {
		return nil, fmt.Errorf("ckks: empty linear transform")
	}
	maxD := 0
	for d := range diagonals {
		if d < 0 || d >= ev.p.Slots() {
			return nil, fmt.Errorf("ckks: diagonal index %d out of [0, slots)", d)
		}
		if d > maxD {
			maxD = d
		}
	}
	giant := 1
	for giant*giant < maxD+1 {
		giant <<= 1
	}
	lt := &LinearTransform{diags: make(map[int]*Plaintext, len(diagonals)), giant: giant, Level: level, Scale: scale}
	slots := ev.p.Slots()
	for d, diag := range diagonals {
		if len(diag) != slots {
			return nil, fmt.Errorf("ckks: diagonal %d has %d entries, want %d", d, len(diag), slots)
		}
		// BSGS pre-rotation: diagonal d = g·i + j is multiplied against
		// rot(x, j) inside giant-step group i, then the group result is
		// rotated by g·i; since rot(rot(v, −g·i), g·i) = v, the
		// plaintext is pre-rotated by −g·i.
		i := d / giant
		rotated := make([]complex128, slots)
		for k := range rotated {
			rotated[k] = diag[((k-giant*i)%slots+slots)%slots]
		}
		pt, err := enc.EncodeAtLevel(rotated, level, scale)
		if err != nil {
			return nil, err
		}
		lt.diags[d] = pt
	}
	return lt, nil
}

// GaloisElementsFor lists the rotations the evaluation needs (for key
// generation): baby steps j ∈ [1, giant) and giant steps g·i.
func (lt *LinearTransform) GaloisElementsFor() []int {
	need := map[int]bool{}
	for d := range lt.diags {
		j := d % lt.giant
		i := d / lt.giant
		if j != 0 {
			need[j] = true
		}
		if i != 0 {
			need[lt.giant*i] = true
		}
	}
	out := make([]int, 0, len(need))
	for k := range need {
		out = append(out, k)
	}
	return out
}

// EvalLinearTransform applies the transform with the BSGS algorithm:
// hoisted baby-step rotations, per-group plaintext multiply-accumulate,
// then one giant-step rotation per group.
func (ev *Evaluator) EvalLinearTransform(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, error) {
	if ct.Level != lt.Level {
		return nil, fmt.Errorf("ckks: transform level %d vs ciphertext %d", lt.Level, ct.Level)
	}
	// Baby-step rotations (hoisted: one decomposition for all).
	babySet := map[int]bool{}
	for d := range lt.diags {
		babySet[d%lt.giant] = true
	}
	babies := make([]int, 0, len(babySet))
	for j := range babySet {
		babies = append(babies, j)
	}
	rots, err := ev.RotateHoisted(ct, babies)
	if err != nil {
		return nil, err
	}
	babyCt := make(map[int]*Ciphertext, len(babies))
	for i, j := range babies {
		babyCt[j] = rots[i]
	}

	// Group by giant step.
	groups := map[int]*Ciphertext{}
	for d, pt := range lt.diags {
		i, j := d/lt.giant, d%lt.giant
		term, err := ev.MulPlain(babyCt[j], pt)
		if err != nil {
			return nil, err
		}
		if acc, ok := groups[i]; ok {
			if groups[i], err = ev.Add(acc, term); err != nil {
				return nil, err
			}
		} else {
			groups[i] = term
		}
	}

	// Giant-step rotations and final accumulation.
	var out *Ciphertext
	for i, acc := range groups {
		rotated := acc
		if i != 0 {
			if rotated, err = ev.Rotate(acc, lt.giant*i); err != nil {
				return nil, err
			}
		}
		if out == nil {
			out = rotated
		} else if out, err = ev.Add(out, rotated); err != nil {
			return nil, err
		}
	}
	return ev.Rescale(out)
}
