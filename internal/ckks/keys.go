package ckks

import (
	"fmt"

	"cross/internal/ring"
)

// SecretKey is a ternary secret s embedded in every limb of Q∪P, stored
// in the NTT domain.
type SecretKey struct {
	Value *ring.Poly
}

// PublicKey is the RLWE pair (b, a) = (−a·s + e, a) over Q at the top
// level, NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey is a hybrid key-switching key: one (b_j, a_j) RLWE pair
// over Q∪P per digit, encrypting P·q̃_j·s′ under s, where q̃_j is the
// CRT idempotent of digit block j (≡ 1 mod the block's primes, ≡ 0
// elsewhere) — so P·q̃_j reduces to "P mod q_i inside the block, zero
// outside" limb-wise.
type SwitchingKey struct {
	B, A []*ring.Poly // indexed by digit, each with L+Alpha limbs
}

// RelinearizationKey switches s² → s.
type RelinearizationKey struct{ SwitchingKey }

// GaloisKey switches τ_g(s) → s for one Galois element g.
type GaloisKey struct {
	SwitchingKey
	GaloisEl uint64
}

// KeyGenerator samples keys for a parameter set. Deterministic given
// the seed — the reproduction favours replayable experiments over
// cryptographic key hygiene (DESIGN.md §2).
type KeyGenerator struct {
	p   *Parameters
	smp *ring.Sampler
}

// NewKeyGenerator returns a seeded key generator.
func NewKeyGenerator(p *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{p: p, smp: ring.NewSampler(seed)}
}

// GenSecretKey samples a ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	rq := kg.p.RingQP
	s := rq.NewPoly()
	kg.smp.Ternary(rq, s)
	rq.NTT(s)
	return &SecretKey{Value: s}
}

// GenPublicKey samples the encryption key for sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	rq := kg.p.RingQP
	lvl := kg.p.MaxLevel()
	a := ring.NewPoly(lvl+1, kg.p.N())
	kg.smp.Uniform(rq, a) // uniform is NTT-domain-invariant

	e := ring.NewPoly(lvl+1, kg.p.N())
	kg.smp.Gaussian(rq, e)
	rq.NTT(e)

	b := ring.NewPoly(lvl+1, kg.p.N())
	rq.MulCoeffs(a, sk.Value, b) // a·s (limb counts differ; min used)
	rq.Neg(b, b)
	rq.Add(b, e, b)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds the hybrid key encrypting sPrime (NTT, L+Alpha
// limbs) under sk.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sPrime *ring.Poly) SwitchingKey {
	p := kg.p
	rq := p.RingQP
	total := p.L + p.Alpha
	dnum := p.NumDigits(p.MaxLevel())
	swk := SwitchingKey{B: make([]*ring.Poly, dnum), A: make([]*ring.Poly, dnum)}
	for j := 0; j < dnum; j++ {
		a := ring.NewPoly(total, p.N())
		kg.smp.Uniform(rq, a)
		e := ring.NewPoly(total, p.N())
		kg.smp.Gaussian(rq, e)
		rq.NTT(e)

		b := ring.NewPoly(total, p.N())
		rq.MulCoeffs(a, sk.Value, b)
		rq.Neg(b, b)
		rq.Add(b, e, b)

		// + P·q̃_j·s′: limb-wise this is (P mod q_i)·s′ inside digit
		// block j and zero elsewhere (including all special limbs).
		lo, hi, _ := p.digitRange(j, p.MaxLevel())
		for i := lo; i < hi; i++ {
			m := rq.Moduli[i]
			w := p.PModQ(i)
			ws := m.ShoupPrecompute(w)
			for k := 0; k < p.N(); k++ {
				b.Coeffs[i][k] = m.AddMod(b.Coeffs[i][k],
					m.ShoupMulFull(sPrime.Coeffs[i][k], w, ws))
			}
		}
		swk.B[j], swk.A[j] = b, a
	}
	return swk
}

// GenRelinearizationKey builds the s² → s key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	rq := kg.p.RingQP
	s2 := rq.NewPoly()
	rq.MulCoeffs(sk.Value, sk.Value, s2)
	return &RelinearizationKey{kg.genSwitchingKey(sk, s2)}
}

// GenGaloisKey builds the τ_g(s) → s key for one Galois element.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, galEl uint64) (*GaloisKey, error) {
	rq := kg.p.RingQP
	idx, err := rq.AutomorphismNTTIndex(galEl)
	if err != nil {
		return nil, err
	}
	sTau := rq.NewPoly()
	rq.AutomorphismNTT(sk.Value, sTau, idx)
	return &GaloisKey{SwitchingKey: kg.genSwitchingKey(sk, sTau), GaloisEl: galEl}, nil
}

// GenRotationKeys builds Galois keys for a set of slot rotations.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int) (map[uint64]*GaloisKey, error) {
	out := make(map[uint64]*GaloisKey, len(rotations))
	for _, k := range rotations {
		g := kg.p.RingQP.GaloisElementForRotation(k)
		if _, done := out[g]; done {
			continue
		}
		gk, err := kg.GenGaloisKey(sk, g)
		if err != nil {
			return nil, fmt.Errorf("ckks: rotation %d: %w", k, err)
		}
		out[g] = gk
	}
	return out, nil
}
