package ckks

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cross/internal/ring"
)

// Binary containers for ciphertexts and keys. Each container embeds the
// ring.Poly wire format and its own small header. Parameters themselves
// are not serialised — both endpoints of an HE protocol share them out
// of band (the standard deployment model the paper's Fig. 1 shows).

const ctMagic uint32 = 0x74435243 // "CRCt"

// WriteTo serialises the ciphertext (level, scale, c0, c1).
func (ct *Ciphertext) WriteTo(w io.Writer) (int64, error) {
	var written int64
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], ctMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ct.Level))
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(ct.Scale))
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, p := range []interface {
		WriteTo(io.Writer) (int64, error)
	}{ct.C0, ct.C1} {
		m, err := p.WriteTo(w)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadCiphertext deserialises a ciphertext.
func ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != ctMagic {
		return nil, fmt.Errorf("ckks: bad ciphertext magic")
	}
	ct := &Ciphertext{
		Level: int(binary.LittleEndian.Uint32(hdr[4:])),
		Scale: math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:])),
	}
	ct.C0 = new(ring.Poly)
	ct.C1 = new(ring.Poly)
	if _, err := ct.C0.ReadFrom(r); err != nil {
		return nil, err
	}
	if _, err := ct.C1.ReadFrom(r); err != nil {
		return nil, err
	}
	if ct.C0.Level() != ct.Level || ct.C1.Level() != ct.Level {
		return nil, fmt.Errorf("ckks: ciphertext level %d does not match polynomial limbs", ct.Level)
	}
	return ct, nil
}

// Validate performs structural sanity checks against a parameter set —
// the receiving party's defence before operating on foreign data.
func (ct *Ciphertext) Validate(p *Parameters) error {
	if ct.Level < 0 || ct.Level > p.MaxLevel() {
		return fmt.Errorf("ckks: level %d outside [0, %d]", ct.Level, p.MaxLevel())
	}
	if ct.C0.N() != p.N() || ct.C1.N() != p.N() {
		return fmt.Errorf("ckks: degree mismatch")
	}
	if ct.Scale <= 0 || math.IsNaN(ct.Scale) || math.IsInf(ct.Scale, 0) {
		return fmt.Errorf("ckks: invalid scale %v", ct.Scale)
	}
	for i := 0; i <= ct.Level; i++ {
		q := p.RingQP.Moduli[i].Q
		for _, poly := range []*ring.Poly{ct.C0, ct.C1} {
			for _, v := range poly.Coeffs[i] {
				if v >= q {
					return fmt.Errorf("ckks: limb %d residue %d ≥ q", i, v)
				}
			}
		}
	}
	return nil
}
