package ckks

import (
	"math/rand"
	"testing"
)

func TestEvalPolyAgainstPlaintext(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(70))
	z := make([]complex128, tc.p.Slots())
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, 0) // real inputs in [-1, 1]
	}
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	// The HELR sigmoid: 0.5 + 0.15·x − 0.0015·x³.
	coeffs := []float64{0.5, 0.15, 0, -0.0015}
	res, err := tc.ev.EvalPoly(ct, coeffs, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z))
	for i, x := range z {
		v := complex(0, 0)
		pw := complex(1, 0)
		for _, c := range coeffs {
			v += complex(c, 0) * pw
			pw *= x
		}
		want[i] = v
	}
	got := tc.enc.Decode(tc.dec.Decrypt(res))
	if e := maxErr(got, want); e > 5e-2 {
		t.Fatalf("EvalPoly error %g", e)
	}
	// Degree-3 Horner consumes 3 levels.
	if res.Level != tc.p.MaxLevel()-3 {
		t.Fatalf("EvalPoly consumed wrong levels: at %d", res.Level)
	}
}

func TestEvalPolyQuadratic(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(71))
	z := make([]complex128, tc.p.Slots())
	for i := range z {
		z[i] = complex(rng.Float64(), 0)
	}
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)
	res, err := tc.ev.EvalPoly(ct, []float64{1, -2, 3}, tc.enc) // 3x²−2x+1
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z))
	for i, x := range z {
		want[i] = 3*x*x - 2*x + 1
	}
	got := tc.enc.Decode(tc.dec.Decrypt(res))
	if e := maxErr(got, want); e > 2e-2 {
		t.Fatalf("quadratic error %g", e)
	}
}

func TestEvalPolyValidation(t *testing.T) {
	tc := newTestContext(t, nil)
	pt, _ := tc.enc.Encode([]complex128{1})
	ct := tc.ctr.Encrypt(pt)
	if _, err := tc.ev.EvalPoly(ct, nil, tc.enc); err == nil {
		t.Error("expected empty-polynomial error")
	}
	if _, err := tc.ev.EvalPoly(ct, []float64{5}, tc.enc); err == nil {
		t.Error("expected constant-polynomial error")
	}
	low, _ := tc.ev.DropLevel(ct, 1)
	if _, err := tc.ev.EvalPoly(low, []float64{0, 1, 2, 3}, tc.enc); err == nil {
		t.Error("expected insufficient-levels error")
	}
}

func TestInnerSum(t *testing.T) {
	count := 8
	tc := newTestContext(t, InnerSumRotations(1, count))
	rng := rand.New(rand.NewSource(72))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	sum, err := tc.ev.InnerSum(ct, 1, count)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(z))
	for i := range want {
		for k := 0; k < count; k++ {
			want[i] += z[(i+k)%len(z)]
		}
	}
	got := tc.enc.Decode(tc.dec.Decrypt(sum))
	if e := maxErr(got, want); e > 5e-2 {
		t.Fatalf("InnerSum error %g", e)
	}

	if _, err := tc.ev.InnerSum(ct, 1, 3); err == nil {
		t.Error("expected power-of-two error")
	}
	if rots := InnerSumRotations(2, 8); len(rots) != 3 || rots[0] != 2 || rots[2] != 8 {
		t.Errorf("InnerSumRotations wrong: %v", rots)
	}
}

func TestMulByConst(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(73))
	z := randomSlots(rng, tc.p.Slots())
	pt, _ := tc.enc.Encode(z)
	ct := tc.ctr.Encrypt(pt)

	// Integer constant: free (no level consumed).
	by3, err := tc.ev.MulByConst(ct, 3, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	if by3.Level != ct.Level {
		t.Fatalf("integer constant consumed a level")
	}
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = 3 * z[i]
	}
	got := tc.enc.Decode(tc.dec.Decrypt(by3))
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("×3 error %g", e)
	}

	// Fractional constant: one level.
	byHalf, err := tc.ev.MulByConst(ct, 0.5, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	if byHalf.Level != ct.Level-1 {
		t.Fatalf("fractional constant should consume one level")
	}
	for i := range want {
		want[i] = 0.5 * z[i]
	}
	got = tc.enc.Decode(tc.dec.Decrypt(byHalf))
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("×0.5 error %g", e)
	}
}
