package faults

import (
	"math"
	"testing"
)

// TestRNGDeterministic: same seed, same stream; different seeds
// diverge immediately.
func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c, d := NewRNG(1), NewRNG(2)
	if c.Next() == d.Next() {
		t.Error("different seeds produced the same first draw")
	}
	var r RNG
	for i := 0; i < 10000; i++ {
		if u := r.Float64(); u < 0 || u >= 1 {
			t.Fatalf("Float64 outside [0,1): %g", u)
		}
		if e := r.Exp(0.5); e < 0 || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("Exp draw invalid: %g", e)
		}
	}
}

// TestInjectorStreamIndependence: draining one pod's crash stream must
// not move any other stream — each pod's fault timeline is a pure
// function of (seed, pod).
func TestInjectorStreamIndependence(t *testing.T) {
	cfg := Config{Seed: 9, MTBFS: 1, MTTRS: 0.1,
		StragglerFactor: 4, StragglerMTBFS: 2, StragglerMeanS: 0.5,
		BatchErrorProb: 0.3, MaxRetries: 3, RetryBackoffS: 0.01}
	a := NewInjector(cfg, 3)
	b := NewInjector(cfg, 3)
	// Drain pod 0's streams on a only.
	for i := 0; i < 100; i++ {
		a.NextCrashDelay(0)
		a.RecoverDelay(0)
		a.NextStragglerDelay(0)
		a.StragglerDuration(0)
	}
	for i := 0; i < 10; i++ {
		d1, _ := a.NextCrashDelay(2)
		d2, _ := b.NextCrashDelay(2)
		if d1 != d2 {
			t.Fatalf("pod 2 crash stream moved by pod 0 draws: %g vs %g", d1, d2)
		}
		s1, _ := a.NextStragglerDelay(1)
		s2, _ := b.NextStragglerDelay(1)
		if s1 != s2 {
			t.Fatalf("pod 1 straggler stream moved by pod 0 draws: %g vs %g", s1, s2)
		}
		if a.LaunchFails() != b.LaunchFails() {
			t.Fatal("batch-error stream moved by pod-stream draws")
		}
		if a.RetryBackoff(i+1) != b.RetryBackoff(i+1) {
			t.Fatal("retry-jitter stream moved by pod-stream draws")
		}
	}
}

// TestInjectorDisabledDrawsNothing: disabled injectors consume no
// stream state, so enabling one injector never shifts another's
// timeline.
func TestInjectorDisabledDrawsNothing(t *testing.T) {
	in := NewInjector(Config{Seed: 5}, 2)
	if _, ok := in.NextCrashDelay(0); ok {
		t.Error("crash draw with MTBFS = 0")
	}
	if _, ok := in.NextStragglerDelay(0); ok {
		t.Error("straggler draw with factor = 0")
	}
	if in.LaunchFails() {
		t.Error("batch error with prob = 0")
	}
	// The batch stream must be untouched by the disabled calls above.
	ref := NewInjector(Config{Seed: 5, BatchErrorProb: 0.5}, 2)
	in2 := NewInjector(Config{Seed: 5, BatchErrorProb: 0.5}, 2)
	in2.NextCrashDelay(0)
	in2.NextStragglerDelay(1)
	for i := 0; i < 50; i++ {
		if ref.LaunchFails() != in2.LaunchFails() {
			t.Fatal("disabled injector calls consumed stream state")
		}
	}
}

// TestRetryBackoffShape: backoff doubles per attempt, caps at
// 2^RetryCapDoublings × base, and jitter stays within [0.5, 1) of the
// nominal value.
func TestRetryBackoffShape(t *testing.T) {
	base := 0.01
	in := NewInjector(Config{Seed: 3, MaxRetries: 20, RetryBackoffS: base}, 1)
	for k := 1; k <= 20; k++ {
		exp := k - 1
		if exp > RetryCapDoublings {
			exp = RetryCapDoublings
		}
		nominal := base * math.Pow(2, float64(exp))
		d := in.RetryBackoff(k)
		if d < 0.5*nominal || d >= nominal {
			t.Errorf("retry %d: backoff %g outside [%g, %g)", k, d, 0.5*nominal, nominal)
		}
	}
}

// TestConfigValidate pins accepted and rejected shapes.
func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{MTBFS: 1, MTTRS: 0.1},
		{StragglerFactor: 1},
		{StragglerFactor: 8, BatchErrorProb: 1},
		{DeadlineS: 0.5, MaxRetries: 3, QueueLimit: 10, Hedge: true},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{MTBFS: -1},
		{MTBFS: math.NaN()},
		{MTTRS: math.Inf(1)},
		{StragglerFactor: 0.99},
		{StragglerFactor: -2},
		{BatchErrorProb: -0.01},
		{BatchErrorProb: 1.01},
		{BatchErrorProb: math.NaN()},
		{MaxRetries: -1},
		{QueueLimit: -1},
		{DeadlineS: -0.5},
		{RetryBackoffS: -1},
		{HedgeDelayS: math.Inf(1)},
		{HeartbeatS: -3},
		{StragglerMeanS: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

// TestWithDefaults pins the horizon-relative resolution rules.
func TestWithDefaults(t *testing.T) {
	if got := (Config{}).WithDefaults(10); !got.IsZero() {
		t.Errorf("zero config grew defaults: %+v", got)
	}
	c := Config{MTBFS: 2}.WithDefaults(10)
	if c.Seed != 1 {
		t.Errorf("seed not defaulted: %d", c.Seed)
	}
	if c.MTTRS != 0.2 {
		t.Errorf("MTTR not MTBF/10: %g", c.MTTRS)
	}
	c = Config{StragglerFactor: 4}.WithDefaults(10)
	if c.StragglerMTBFS != 5 || c.StragglerMeanS != 1.25 {
		t.Errorf("straggler windows not horizon-derived: mtbf %g mean %g",
			c.StragglerMTBFS, c.StragglerMeanS)
	}
	c = Config{StragglerFactor: 4, MTBFS: 2, MTTRS: 0.5}.WithDefaults(10)
	if c.StragglerMTBFS != 2 || c.StragglerMeanS != 0.5 {
		t.Errorf("straggler windows should inherit crash timing: mtbf %g mean %g",
			c.StragglerMTBFS, c.StragglerMeanS)
	}
	// Service-time-derived fields stay zero for the serving layer.
	c = Config{MTBFS: 1, MaxRetries: 2, Hedge: true}.WithDefaults(10)
	if c.RetryBackoffS != 0 || c.HeartbeatS != 0 || c.HedgeDelayS != 0 {
		t.Errorf("pricing-derived fields resolved too early: %+v", c)
	}
	pinned := Config{MTBFS: 1, MTTRS: 3}.WithDefaults(10)
	if pinned.MTTRS != 3 {
		t.Errorf("pinned MTTR overwritten: %g", pinned.MTTRS)
	}
}

// TestPredicates pins IsZero / Crashes / Straggles.
func TestPredicates(t *testing.T) {
	if !(Config{}).IsZero() {
		t.Error("zero config not IsZero")
	}
	if (Config{Seed: 1}).IsZero() {
		t.Error("seeded config IsZero")
	}
	if !(Config{MTBFS: 1}).Crashes() || (Config{}).Crashes() {
		t.Error("Crashes predicate wrong")
	}
	if !(Config{StragglerFactor: 2}).Straggles() || (Config{StragglerFactor: 1}).Straggles() {
		t.Error("Straggles predicate wrong")
	}
}

// TestInjectorFleetSizePrefix: per-pod streams are split from the seed
// by pod index, so growing the fleet must not move any existing pod's
// fault timeline — pods 0..2 of a 3-pod injector and a 5-pod injector
// draw identical crash and straggler schedules. Heterogeneous serve
// fleets rely on this: regrouping pods into different device groups
// (same total count, or a larger fleet sharing a prefix) keeps the
// fault history of the shared prefix byte-identical.
func TestInjectorFleetSizePrefix(t *testing.T) {
	cfg := Config{Seed: 17, MTBFS: 2, MTTRS: 0.2,
		StragglerFactor: 3, StragglerMTBFS: 1, StragglerMeanS: 0.25}
	small := NewInjector(cfg, 3)
	large := NewInjector(cfg, 5)
	for pod := 0; pod < 3; pod++ {
		for i := 0; i < 200; i++ {
			ds, _ := small.NextCrashDelay(pod)
			dl, _ := large.NextCrashDelay(pod)
			if ds != dl {
				t.Fatalf("pod %d crash draw %d moved by fleet size: %g vs %g", pod, i, ds, dl)
			}
			if rs, rl := small.RecoverDelay(pod), large.RecoverDelay(pod); rs != rl {
				t.Fatalf("pod %d recover draw %d moved by fleet size: %g vs %g", pod, i, rs, rl)
			}
			ss, _ := small.NextStragglerDelay(pod)
			sl, _ := large.NextStragglerDelay(pod)
			if ss != sl {
				t.Fatalf("pod %d straggler draw %d moved by fleet size: %g vs %g", pod, i, ss, sl)
			}
		}
	}
}
