// Package faults is the deterministic fault model for the serving
// simulator (DESIGN.md §16). It owns three injectors — pod
// crash/recover (exponential MTBF/MTTR per pod), transient stragglers
// (a pod's service times are multiplied by a slowdown factor for an
// exponential-duration window), and batch-level transient errors
// (i.i.d. per-launch failure probability) — plus the client-side
// recovery knobs (per-request deadlines, capped-exponential retry
// backoff, hedged dispatch, admission control, heartbeat detection)
// that internal/serve threads through its event loop.
//
// Determinism contract: every draw comes from splitmix64 streams owned
// by this package, seeded independently of the arrival PRNG — the same
// request stream replays under different fault seeds, and the same
// fault timeline replays under different arrival seeds. Each pod gets
// its own crash stream and straggler stream (derived from the seed by
// stream splitting), so a pod's fault timeline does not depend on what
// the rest of the fleet is doing; batch-error and retry-jitter draws
// come from two more dedicated streams consumed in event order, which
// the sequential event loop makes total.
package faults

import (
	"fmt"
	"math"
)

// RNG is a splitmix64 generator — the same construction the serving
// simulator uses for arrivals, duplicated here so the fault model's
// streams depend on nothing outside this package.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded at s.
func NewRNG(s uint64) RNG { return RNG{state: s} }

// Next returns the next 64 uniform bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// 1−u ∈ (0, 1], so the log argument is never zero.
	return -math.Log(1-r.Float64()) * mean
}

// Config selects one fault-and-recovery scenario. The zero value
// disables everything: a serve run with a zero Config is bit-identical
// to a fault-free run (the serving layer drops it from the record
// echo, so the JSON is byte-identical too).
type Config struct {
	// Seed drives every injector stream; independent of the arrival
	// seed. 0 resolves to 1 when any injector is enabled.
	Seed int64 `json:"seed"`

	// Pod crash/recover injector: per-pod exponential mean time
	// between crashes (0 = no crashes) and mean time to recover
	// (0 resolves to MTBFS/10). An in-flight batch on a crashed pod is
	// lost; its requests re-enter dispatch through the retry path.
	MTBFS float64 `json:"mtbf_s"`
	MTTRS float64 `json:"mttr_s"`

	// Transient-straggler injector: while a window is open the pod's
	// service times are multiplied by StragglerFactor (> 1 enables;
	// window inter-arrival and duration are exponential with the given
	// means, defaulting to MTBFS/MTTRS or horizon-derived values).
	StragglerFactor float64 `json:"straggler_factor"`
	StragglerMTBFS  float64 `json:"straggler_mtbf_s"`
	StragglerMeanS  float64 `json:"straggler_mean_s"`

	// BatchErrorProb is the i.i.d. probability that a batch launch
	// fails transiently: it occupies the pod for the full service time
	// and then delivers nothing, sending its requests to retry.
	BatchErrorProb float64 `json:"batch_error_prob"`

	// DeadlineS is the per-request deadline measured from arrival
	// (0 = none). A request that reaches its deadline counts as timed
	// out — never as completed — even if a batch later delivers it.
	DeadlineS float64 `json:"deadline_s"`

	// MaxRetries caps how many times a request lost to a crash or a
	// batch error is re-dispatched (with capped exponential backoff and
	// deterministic jitter); past the cap it counts as failed.
	// RetryBackoffS is the backoff base (0 resolves to the mix-weighted
	// single-request service time).
	MaxRetries    int     `json:"max_retries"`
	RetryBackoffS float64 `json:"retry_backoff_s"`

	// Hedge enables hedged dispatch: if a batch is still unfinished
	// HedgeDelayS after launch, a copy launches on an idle pod and the
	// first finisher wins (the loser is cancelled). HedgeDelayS = 0
	// derives the delay per launch as HedgeAutoFactor × the batch's
	// nominal service time — beyond the fault-free p99 by construction,
	// since fault-free service times are deterministic.
	Hedge       bool    `json:"hedge"`
	HedgeDelayS float64 `json:"hedge_delay_s"`

	// QueueLimit sheds arrivals (and retries) when the dispatched-to
	// pod already holds this many queued requests (0 = unbounded) —
	// the admission control that keeps a degraded fleet's queues from
	// growing without bound.
	QueueLimit int `json:"queue_limit"`

	// HeartbeatS is the detection timeout: a crashed pod keeps
	// receiving dispatches until a heartbeat timeout this long after
	// the crash marks it down (no oracle knowledge); its queued
	// requests are then re-routed. 0 resolves to the mix-weighted
	// single-request service time.
	HeartbeatS float64 `json:"heartbeat_s"`
}

// HedgeAutoFactor is the auto-derived hedge delay in units of the
// batch's nominal service time (Config.HedgeDelayS = 0).
const HedgeAutoFactor = 2.0

// RetryCapDoublings caps the exponential backoff at
// RetryBackoffS × 2^RetryCapDoublings.
const RetryCapDoublings = 6

// IsZero reports whether the config is the all-disabled zero value.
func (c Config) IsZero() bool { return c == Config{} }

// Validate rejects configurations the simulator cannot run.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mtbf_s", c.MTBFS}, {"mttr_s", c.MTTRS},
		{"straggler_mtbf_s", c.StragglerMTBFS}, {"straggler_mean_s", c.StragglerMeanS},
		{"deadline_s", c.DeadlineS}, {"retry_backoff_s", c.RetryBackoffS},
		{"hedge_delay_s", c.HedgeDelayS}, {"heartbeat_s", c.HeartbeatS},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("faults: %s must be finite and ≥ 0, got %g", f.name, f.v)
		}
	}
	if c.StragglerFactor != 0 && c.StragglerFactor < 1 {
		return fmt.Errorf("faults: straggler factor must be ≥ 1 (or 0 = off), got %g", c.StragglerFactor)
	}
	if c.BatchErrorProb < 0 || c.BatchErrorProb > 1 || math.IsNaN(c.BatchErrorProb) {
		return fmt.Errorf("faults: batch error probability must be in [0, 1], got %g", c.BatchErrorProb)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: max retries must be ≥ 0, got %d", c.MaxRetries)
	}
	if c.QueueLimit < 0 {
		return fmt.Errorf("faults: queue limit must be ≥ 0, got %d", c.QueueLimit)
	}
	return nil
}

// Crashes reports whether the crash/recover injector is enabled.
func (c Config) Crashes() bool { return c.MTBFS > 0 }

// Straggles reports whether the straggler injector is enabled.
func (c Config) Straggles() bool { return c.StragglerFactor > 1 }

// WithDefaults resolves zero-valued timing fields against the serving
// horizon. RetryBackoffS and HeartbeatS stay zero here — they default
// to service-time-derived values the serving layer resolves after
// pricing.
func (c Config) WithDefaults(horizonS float64) Config {
	if c.IsZero() {
		return c
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Crashes() && c.MTTRS == 0 {
		c.MTTRS = c.MTBFS / 10
	}
	if c.Straggles() {
		if c.StragglerMTBFS == 0 {
			if c.MTBFS > 0 {
				c.StragglerMTBFS = c.MTBFS
			} else {
				c.StragglerMTBFS = horizonS / 2
			}
		}
		if c.StragglerMeanS == 0 {
			if c.MTTRS > 0 {
				c.StragglerMeanS = c.MTTRS
			} else {
				c.StragglerMeanS = horizonS / 8
			}
		}
	}
	return c
}

// Injector is the run-time fault source for one fleet: per-pod crash
// and straggler streams plus fleet-wide batch-error and retry-jitter
// streams, all split deterministically from the config seed.
type Injector struct {
	cfg    Config
	crash  []RNG
	strag  []RNG
	batch  RNG
	jitter RNG
}

// NewInjector splits the seed into 2×pods + 2 independent streams.
func NewInjector(cfg Config, pods int) *Injector {
	split := NewRNG(uint64(cfg.Seed))
	in := &Injector{
		cfg:   cfg,
		crash: make([]RNG, pods),
		strag: make([]RNG, pods),
	}
	for i := 0; i < pods; i++ {
		in.crash[i] = NewRNG(split.Next())
		in.strag[i] = NewRNG(split.Next())
	}
	in.batch = NewRNG(split.Next())
	in.jitter = NewRNG(split.Next())
	return in
}

// NextCrashDelay draws the time until the pod's next crash; ok is
// false when the crash injector is disabled.
func (in *Injector) NextCrashDelay(pod int) (d float64, ok bool) {
	if !in.cfg.Crashes() {
		return 0, false
	}
	return in.crash[pod].Exp(in.cfg.MTBFS), true
}

// RecoverDelay draws the pod's time-to-recover for one crash.
func (in *Injector) RecoverDelay(pod int) float64 {
	return in.crash[pod].Exp(in.cfg.MTTRS)
}

// NextStragglerDelay draws the time until the pod's next straggler
// window opens; ok is false when the injector is disabled.
func (in *Injector) NextStragglerDelay(pod int) (d float64, ok bool) {
	if !in.cfg.Straggles() {
		return 0, false
	}
	return in.strag[pod].Exp(in.cfg.StragglerMTBFS), true
}

// StragglerDuration draws how long the pod's current window stays open.
func (in *Injector) StragglerDuration(pod int) float64 {
	return in.strag[pod].Exp(in.cfg.StragglerMeanS)
}

// LaunchFails draws one batch-level transient error. No stream is
// consumed when the injector is disabled.
func (in *Injector) LaunchFails() bool {
	if in.cfg.BatchErrorProb <= 0 {
		return false
	}
	return in.batch.Float64() < in.cfg.BatchErrorProb
}

// RetryBackoff returns the jittered, capped exponential backoff before
// a request's k-th retry (k ≥ 1): min(base·2^(k−1), base·2^cap) scaled
// by a uniform draw in [0.5, 1).
func (in *Injector) RetryBackoff(k int) float64 {
	base := in.cfg.RetryBackoffS
	exp := k - 1
	if exp > RetryCapDoublings {
		exp = RetryCapDoublings
	}
	d := base * float64(uint64(1)<<exp)
	return d * (0.5 + 0.5*in.jitter.Float64())
}
