package gpusim

import (
	"math"
	"testing"

	"cross/internal/tpusim"
)

// TestSpecSanity pins the structural invariants of every modelled part:
// positive figures everywhere, read BW ≥ write BW ≥ HBM BW (the on-chip
// hierarchy is faster than off-chip), and a CoreSpec whose element-wise
// grain covers one full wave of thread blocks.
func TestSpecSanity(t *testing.T) {
	for _, s := range AllSpecs() {
		core := s.CoreSpec()
		if s.SMs <= 0 || s.ClockHz <= 0 || s.TensorINT8OPS <= 0 || s.CUDAOps <= 0 {
			t.Errorf("%s: non-positive compute figure: %+v", s.Name, s)
		}
		if !(s.SMEMBandwidth > s.L2Bandwidth && s.L2Bandwidth > s.HBMBandwidth) {
			t.Errorf("%s: memory hierarchy not ordered SMEM %g > L2 %g > HBM %g",
				s.Name, s.SMEMBandwidth, s.L2Bandwidth, s.HBMBandwidth)
		}
		if s.KernelLaunch <= 0 || s.NVLinkBandwidth <= 0 || s.NVLinkLatency <= 0 {
			t.Errorf("%s: non-positive launch/fabric figure", s.Name)
		}
		if s.NodeGPUs < 2 {
			t.Errorf("%s: NodeGPUs = %d, want a multi-GPU node size", s.Name, s.NodeGPUs)
		}
		if core.Name != s.Name {
			t.Errorf("%s: CoreSpec name %q", s.Name, core.Name)
		}
		if got := core.VPULanes * core.VPUSublanes; got != 128*s.SMs {
			t.Errorf("%s: vector grain %d, want one wave of 128-thread blocks = %d", s.Name, got, 128*s.SMs)
		}
		if core.PeakMACs != s.TensorINT8OPS/2 {
			t.Errorf("%s: PeakMACs %g, want TensorINT8OPS/2 = %g", s.Name, core.PeakMACs, s.TensorINT8OPS/2)
		}
		if core.OnChipCapacity != s.OnChipCapacity() {
			t.Errorf("%s: core capacity %d != L2+SMEM %d", s.Name, core.OnChipCapacity, s.OnChipCapacity())
		}
		if core.DispatchOverhead != s.KernelLaunch {
			t.Errorf("%s: dispatch overhead %g != kernel launch %g", s.Name, core.DispatchOverhead, s.KernelLaunch)
		}
		if core.VPUDerate != 1 {
			t.Errorf("%s: VPUDerate %g, want 1 (CUDA kernels fuse in registers)", s.Name, core.VPUDerate)
		}
	}
}

// TestTensorToCUDARatio pins the §III-B1 comparison the paper makes:
// the GPU's tensor-to-CUDA throughput ratio sits an order of magnitude
// below the TPU's MXU-to-VPU ratio (~58× on v4).
func TestTensorToCUDARatio(t *testing.T) {
	for _, s := range AllSpecs() {
		r := s.TensorToCUDARatio()
		if r < 10 || r > 70 {
			t.Errorf("%s: tensor/CUDA ratio %.1f outside the plausible [10, 70] band", s.Name, r)
		}
	}
	tpu := tpusim.TPUv4()
	if a, g := tpu.MXUToVPURatio(), A100_40GB().TensorToCUDARatio(); a <= g {
		t.Errorf("TPUv4 MXU/VPU ratio %.1f should exceed A100 tensor/CUDA ratio %.1f (§III-B1)", a, g)
	}
}

// TestSpecByName covers the lookup face.
func TestSpecByName(t *testing.T) {
	for _, want := range AllSpecs() {
		got, ok := SpecByName(want.Name)
		if !ok || got.Name != want.Name {
			t.Errorf("SpecByName(%q) = %+v, %v", want.Name, got, ok)
		}
	}
	if _, ok := SpecByName("V100"); ok {
		t.Error("SpecByName(V100) resolved an unmodelled part")
	}
}

// TestRingCollectiveShape checks the ring model on the switchless
// A100-40GB: latency terms accumulate linearly in the GPU count, so
// doubling n (at fixed payload) must *increase* the latency share while
// the wire share stays bounded.
func TestRingCollectiveShape(t *testing.T) {
	spec := A100_40GB()
	if spec.Topology != TopologyRing {
		t.Fatalf("A100-40GB should model the switchless board, got %v", spec.Topology)
	}
	const payload = 1 << 20
	var prev float64
	for _, n := range []int{2, 4, 8, 16} {
		node := MustNode(spec, n)
		got := node.AllReduceTime(payload)
		want := 2 * float64(n-1) * (float64(payload)/float64(n)/spec.NVLinkBandwidth + spec.NVLinkLatency)
		if math.Abs(got-want) > 1e-18 {
			t.Errorf("ring AllReduce(%d GPUs) = %g, want %g", n, got, want)
		}
		if got <= prev {
			t.Errorf("ring AllReduce latency should grow with GPU count at fixed payload: n=%d gave %g ≤ %g", n, got, prev)
		}
		prev = got
	}
}

// TestSwitchCollectiveShape checks the NVSwitch model on the H100: a
// constant number of fabric latencies regardless of GPU count, with the
// wire time asymptoting to B/BW — so going 2→16 GPUs adds at most the
// growth of the (n−1)/n factor, never an extra latency term.
func TestSwitchCollectiveShape(t *testing.T) {
	spec := H100()
	if spec.Topology != TopologySwitch {
		t.Fatalf("H100 should model the NVSwitch chassis, got %v", spec.Topology)
	}
	const payload = 1 << 20
	for _, n := range []int{2, 4, 8, 16} {
		node := MustNode(spec, n)
		share := float64(payload) * float64(n-1) / float64(n)
		wantAG := share/spec.NVLinkBandwidth + spec.NVLinkLatency
		if got := node.AllGatherTime(payload); math.Abs(got-wantAG) > 1e-18 {
			t.Errorf("switch AllGather(%d GPUs) = %g, want %g", n, got, wantAG)
		}
		if got, want := node.AllReduceTime(payload), 2*wantAG; math.Abs(got-want) > 1e-18 {
			t.Errorf("switch AllReduce(%d GPUs) = %g, want %g", n, got, want)
		}
		wantBC := float64(payload)/spec.NVLinkBandwidth + spec.NVLinkLatency
		if got := node.BroadcastTime(payload); math.Abs(got-wantBC) > 1e-18 {
			t.Errorf("switch Broadcast(%d GPUs) = %g, want %g (count-independent)", n, got, wantBC)
		}
	}
}

// TestSwitchBeatsRingAtScale pins the scaling story the topologies
// exist to tell: on a small payload at large n, the switch's constant
// phase count beats the ring's O(n) accumulated latencies (compared on
// one part so only the topology differs).
func TestSwitchBeatsRingAtScale(t *testing.T) {
	ring := A100_40GB()
	switched := ring
	switched.Topology = TopologySwitch
	const payload = 64 << 10
	const n = 16
	r := MustNode(ring, n).AllReduceTime(payload)
	s := MustNode(switched, n).AllReduceTime(payload)
	if s >= r {
		t.Errorf("switch AllReduce %g should beat ring %g at n=%d on a latency-bound payload", s, r, n)
	}
}

// TestNodeCollectivesChargeNVLink checks the trace category contract:
// node collectives charge CatNVLink, never the TPU's CatICI.
func TestNodeCollectivesChargeNVLink(t *testing.T) {
	node := MustNode(H100(), 8)
	node.AllReduce(1 << 20)
	node.AllGather(1 << 20)
	node.Broadcast(1 << 20)
	tr := node.CollectiveTrace()
	if got := tr.Seconds(tpusim.CatNVLink); got <= 0 {
		t.Errorf("CatNVLink total = %g, want > 0", got)
	}
	if got := tr.Seconds(tpusim.CatICI); got != 0 {
		t.Errorf("CatICI total = %g on a GPU node, want 0", got)
	}
	sum := node.AllReduceTime(1<<20) + node.AllGatherTime(1<<20) + node.BroadcastTime(1<<20)
	if got := tr.Total(); math.Abs(got-sum) > 1e-18 {
		t.Errorf("trace total %g != sum of collective times %g", got, sum)
	}
}

// TestNewNodeRejectsZero covers the constructor error path.
func TestNewNodeRejectsZero(t *testing.T) {
	if _, err := NewNode(H100(), 0); err == nil {
		t.Error("NewNode(0) should fail")
	}
	if _, err := NewNode(H100(), -3); err == nil {
		t.Error("NewNode(-3) should fail")
	}
}

// TestReset checks Reset clears compute and collective traces on both
// target shapes.
func TestReset(t *testing.T) {
	node := MustNode(A100_80GB(), 4)
	node.AllReduce(1 << 20)
	node.Core().Trace.Add(tpusim.CatVecModOps, 1e-6)
	node.Reset()
	if got := node.TotalSeconds(); got != 0 {
		t.Errorf("TotalSeconds after Reset = %g, want 0", got)
	}

	dev := NewDevice(H100())
	dev.Core().Trace.Add(tpusim.CatVecModOps, 1e-6)
	dev.Reset()
	if got := dev.Core().Trace.Total(); got != 0 {
		t.Errorf("device trace after Reset = %g, want 0", got)
	}
}
