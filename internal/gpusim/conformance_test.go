package gpusim_test

import (
	"testing"

	"cross/internal/cross"
	"cross/internal/cross/crosstest"
	"cross/internal/gpusim"
)

// TestTargetConformance runs the shared cross.Target conformance suite
// (internal/cross/crosstest) against every modelled GPU part, for both
// the bare Device and the NVLink Node — the acceptance gate that the
// GPU backend honours the same contract the compiler lowers against.
func TestTargetConformance(t *testing.T) {
	for _, spec := range gpusim.AllSpecs() {
		spec := spec
		crosstest.Conformance(t, crosstest.Backend{
			Name:      "gpusim/" + spec.Name,
			NewDevice: func() cross.Target { return gpusim.NewDevice(spec) },
			NewNode:   func(gpus int) cross.Target { return gpusim.MustNode(spec, gpus) },
		})
	}
}
