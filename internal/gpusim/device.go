package gpusim

import "cross/internal/tpusim"

// Device is one GPU as a cross.Target: the roofline core produced by
// Spec.CoreSpec plus an owned (initially empty) collective trace. A
// single GPU has no NVLink peers, so its collectives are free — the
// same degenerate shape as a 1-core tpusim Device — but the trace is
// still owned and swappable because the Schedule IR compiler installs
// its own trace to observe collective charges.
type Device struct {
	GPU  Spec
	core *tpusim.Device
	coll *tpusim.Trace
}

// NewDevice builds a Device for one GPU of the given part.
func NewDevice(spec Spec) *Device {
	return &Device{
		GPU:  spec,
		core: tpusim.NewDevice(spec.CoreSpec()),
		coll: tpusim.NewTrace(),
	}
}

// Core exposes the roofline core the kernel lowerings price against.
func (d *Device) Core() *tpusim.Device { return d.core }

// NumCores reports the target's parallelism degree: one GPU.
func (d *Device) NumCores() int { return 1 }

// Name returns the part name ("H100").
func (d *Device) Name() string { return d.GPU.Name }

// AllGather on a single GPU moves no bytes over NVLink.
func (d *Device) AllGather(bytes int64) float64 { return 0 }

// AllReduce on a single GPU moves no bytes over NVLink.
func (d *Device) AllReduce(bytes int64) float64 { return 0 }

// Broadcast on a single GPU moves no bytes over NVLink.
func (d *Device) Broadcast(bytes int64) float64 { return 0 }

// CollectiveTrace returns the trace NVLink time is charged to (never
// nil; empty on a single GPU).
func (d *Device) CollectiveTrace() *tpusim.Trace { return d.coll }

// SetCollectiveTrace swaps the collective trace, ignoring nil to keep
// the never-nil invariant.
func (d *Device) SetCollectiveTrace(t *tpusim.Trace) {
	if t != nil {
		d.coll = t
	}
}

// Reset clears the compute and collective traces.
func (d *Device) Reset() {
	d.core.Trace.Reset()
	d.coll.Reset()
}
