package gpusim

import "cross/internal/cross"

// Both gpusim targets satisfy the Target contract the compiler lowers
// against — the proof of the PR 2 one-lowering-per-abstract-machine
// claim this package exists for.
var (
	_ cross.Target = (*Device)(nil)
	_ cross.Target = (*Node)(nil)
)

// The GPU parts register into the cross device registry at init, after
// the TPUs (cross's own init runs first — Go initialises imported
// packages before the importer). cores=1 returns a bare Device rather
// than a 1-GPU Node so the degenerate case carries no fabric at all;
// the conformance suite checks the two price identically anyway.
func init() {
	for _, spec := range AllSpecs() {
		spec := spec
		cross.RegisterTarget(cross.TargetInfo{
			Name:     spec.Name,
			Family:   "gpu",
			RepCores: spec.NodeGPUs,
			New: func(gpus int) (cross.Target, error) {
				if gpus == 1 {
					return NewDevice(spec), nil
				}
				return NewNode(spec, gpus)
			},
		})
	}
}
