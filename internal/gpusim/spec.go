// Package gpusim is the second hardware backend of the reproduction: an
// analytical performance model of A100/H100-class datacenter GPUs that
// satisfies the same cross.Target contract as internal/tpusim, so every
// HE lowering written once against the Target interface runs unchanged
// on a GPU. The package exists to prove the PR 2 claim — one lowering
// per abstract machine — and to let one command answer cross-hardware
// questions ("TPUv6e pod vs H100 node for Bootstrap at Set D") that no
// HE paper reproduction currently tells.
//
// The modeling strategy mirrors mgpusim's component decomposition (a
// GPU is specs + a timing model + a driver-level interconnect, each
// separately swappable) but reuses this repo's roofline core: a Spec
// carries GPU-native figures (SM count, tensor-core INT8 throughput,
// HBM and L2/SMEM bandwidth, CUDA kernel-launch overhead) and CoreSpec
// maps them onto the tpusim.Spec roofline model that every kernel
// lowering already prices against:
//
//   - tensor cores play the MXU (dense INT8 matmul at PeakMACs, padded
//     to a much finer tile than the TPU's 128/256 systolic array);
//   - CUDA cores play the VPU (32-bit ALU ops across one full wave of
//     thread blocks, no XLA materialisation derate — CUDA HE kernels
//     fuse their modular-arithmetic stages in registers);
//   - L2 + SMEM play VMEM (reads stream from SMEM aggregate bandwidth,
//     writes drain through L2);
//   - the CUDA launch overhead plays XLA's dispatch overhead.
//
// What is genuinely different is the interconnect: a Node's collectives
// price NVLink ring phases or one-phase NVSwitch (all-to-all) exchanges
// (node.go) — not the TPU's ICI torus — and charge the CatNVLink trace
// category. Absolute times are not silicon-accurate; the comparative
// shapes (tensor-to-CUDA throughput ratio, launch-overhead batching
// knees, switch-vs-ring latency scaling) follow published part specs.
package gpusim

import "cross/internal/tpusim"

// Topology selects the Node's NVLink fabric shape, which picks the
// collective cost model (node.go).
type Topology uint8

const (
	// TopologyRing models directly-bridged NVLink (HGX-style boards
	// without an NVSwitch): collectives run bandwidth-optimal rings and
	// pay a per-hop latency per phase, like the TPU ICI torus.
	TopologyRing Topology = iota
	// TopologySwitch models an NVSwitch fabric: every GPU reaches every
	// other at full injection bandwidth through a non-blocking switch,
	// so collectives finish in a constant number of phases regardless
	// of the GPU count.
	TopologySwitch
)

// String names the topology for reports and test failures.
func (t Topology) String() string {
	if t == TopologySwitch {
		return "nvswitch"
	}
	return "ring"
}

// Spec describes one A100/H100-class GPU. Compute and bandwidth figures
// come from the published part datasheets (dense throughput — sparsity
// is useless for exact modular arithmetic); microarchitectural shape
// parameters from the architecture whitepapers.
type Spec struct {
	Name string

	// SMs is the streaming-multiprocessor count (108 on A100, 132 on
	// the H100 SXM part).
	SMs     int
	ClockHz float64 // sustained boost clock

	// TensorINT8OPS is the GPU's dense INT8 tensor-core throughput in
	// ops/s (1 MAC = 2 ops), the engine BAT's dense modular matmuls
	// run on.
	TensorINT8OPS float64

	// CUDAOps is the peak 32-bit integer ALU rate (ops/s) across all
	// CUDA cores — the VPU analogue modular reduction runs on when BAT
	// is not used.
	CUDAOps float64

	// Memory system (bytes/s).
	HBMBandwidth  float64 // off-chip HBM2e/HBM3
	L2Bandwidth   float64 // L2 slice aggregate (the VMEM write analogue)
	SMEMBandwidth float64 // shared-memory aggregate (the VMEM read analogue)

	// On-chip capacity (bytes): the unified L2 plus per-SM shared
	// memory, the working-set bound behind batching knees.
	L2Capacity int64
	SMEMPerSM  int64

	// KernelLaunch is the fixed CUDA kernel-launch overhead (seconds) —
	// the GPU's analogue of XLA's dispatch overhead and the reason
	// batching amortises small HE kernels on both backends.
	KernelLaunch float64

	WattsPerGPU float64

	// NVLink fabric joining the GPUs of a Node. NVLinkBandwidth is the
	// per-GPU unidirectional injection bandwidth (bytes/s; half the
	// marketing "total bidirectional" figure), NVLinkLatency the fixed
	// per-phase cost (link traversal + collective-runtime launch), and
	// NVLinkGen the generation the numbers come from.
	NVLinkBandwidth float64
	NVLinkLatency   float64
	NVLinkGen       int
	Topology        Topology

	// NodeGPUs is the platform's standard node size (8 for DGX/HGX
	// boards) — the representative core count registry metadata and
	// cross-hardware tables use.
	NodeGPUs int

	// Calib carries the model's fitted free constants, shared with the
	// TPU backend (tpusim.Calibration): per-launch overhead, effective
	// HBM/on-chip bandwidth fractions, NTT compute efficiency. The zero
	// value is the identity (KernelLaunch as-is, every figure at peak),
	// so an uncalibrated GPU spec prices bit-identically to the
	// pre-calibration model; CoreSpec threads the field through to the
	// shared roofline. Fitted values come from internal/calib, which
	// fits against published GPU kernel figures (internal/refdata).
	Calib tpusim.Calibration
}

// A100_40GB returns the A100-SXM4-40GB model on a directly-bridged
// (switchless) HGX board — the ring-collective end of the NVLink
// spectrum.
func A100_40GB() Spec {
	return Spec{
		Name:            "A100-40GB",
		SMs:             108,
		ClockHz:         1.41e9,
		TensorINT8OPS:   624e12,
		CUDAOps:         19.5e12,
		HBMBandwidth:    1555e9,
		L2Bandwidth:     5120e9,
		SMEMBandwidth:   19500e9, // 108 SMs × 128 B/clk × 1.41 GHz
		L2Capacity:      40 << 20,
		SMEMPerSM:       164 << 10,
		KernelLaunch:    4.5e-6,
		WattsPerGPU:     400,
		NVLinkBandwidth: 300e9, // NVLink3: 600 GB/s bidirectional
		NVLinkLatency:   2e-6,
		NVLinkGen:       3,
		Topology:        TopologyRing,
		NodeGPUs:        8,
	}
}

// A100_80GB returns the A100-SXM4-80GB model in a DGX-style NVSwitch
// chassis: same compute, HBM2e at 2.0 TB/s, switched collectives.
func A100_80GB() Spec {
	s := A100_40GB()
	s.Name = "A100-80GB"
	s.HBMBandwidth = 2039e9
	s.NVLinkLatency = 2.5e-6 // switch traversal adds to the phase cost
	s.Topology = TopologySwitch
	return s
}

// H100 returns the H100-SXM5 model (DGX H100: NVSwitch gen 3, NVLink4).
func H100() Spec {
	return Spec{
		Name:            "H100",
		SMs:             132,
		ClockHz:         1.83e9,
		TensorINT8OPS:   1979e12,
		CUDAOps:         33.5e12,
		HBMBandwidth:    3352e9,
		L2Bandwidth:     8250e9,
		SMEMBandwidth:   30900e9, // 132 SMs × 128 B/clk × 1.83 GHz
		L2Capacity:      50 << 20,
		SMEMPerSM:       228 << 10,
		KernelLaunch:    3e-6,
		WattsPerGPU:     700,
		NVLinkBandwidth: 450e9, // NVLink4: 900 GB/s bidirectional
		NVLinkLatency:   2.5e-6,
		NVLinkGen:       4,
		Topology:        TopologySwitch,
		NodeGPUs:        8,
	}
}

// AllSpecs returns the modelled GPU parts, oldest first.
func AllSpecs() []Spec {
	return []Spec{A100_40GB(), A100_80GB(), H100()}
}

// SpecByName resolves a part by name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// OnChipCapacity returns the GPU's total on-chip working-set capacity:
// unified L2 plus the aggregate per-SM shared memory.
func (s Spec) OnChipCapacity() int64 {
	return s.L2Capacity + int64(s.SMs)*s.SMEMPerSM
}

// TensorToCUDARatio returns the tensor-to-CUDA-core throughput ratio —
// the GPU counterpart of tpusim's MXUToVPURatio (§III-B1). On INT8
// tensor vs INT32 scalar rates it lands near the TPU's, which is why
// BAT pays off on both backends.
func (s Spec) TensorToCUDARatio() float64 {
	return s.TensorINT8OPS / s.CUDAOps
}

// CoreSpec maps the GPU onto the shared roofline core model: the
// tpusim.Spec every kernel lowering prices against. The mapping is the
// whole trick of the backend — one lowering, two machines:
//
//   - MXUDim 32: tensor-core GEMMs quantize to warp-level mma tiles,
//     far finer than the TPU's 128/256 systolic array, so small
//     matmuls waste much less padding on the GPU;
//   - VPULanes×VPUSublanes = one full wave of 128-thread blocks across
//     every SM — the element-wise grain a CUDA grid executes in
//     lock step;
//   - VPUDerate 1: hand-written CUDA HE kernels keep their
//     modular-arithmetic stages in registers, unlike XLA's
//     materialise-every-HLO pipeline (§V-E);
//   - VMEM read = SMEM aggregate, VMEM write = L2 (operands stream
//     from shared memory, results drain through L2);
//   - XLU analogue: shuffles move through shared memory at 32
//     elems/SM/cycle; random gathers coalesce at a quarter of that.
func (s Spec) CoreSpec() tpusim.Spec {
	return tpusim.Spec{
		Name:                s.Name,
		MXUDim:              32,
		NumMXUs:             4 * s.SMs,
		PeakMACs:            s.TensorINT8OPS / 2,
		VPULanes:            32,
		VPUSublanes:         4 * s.SMs,
		VPUOps:              s.CUDAOps,
		ClockHz:             s.ClockHz,
		HBMBandwidth:        s.HBMBandwidth,
		VMEMReadBW:          s.SMEMBandwidth,
		VMEMWriteBW:         s.L2Bandwidth,
		OnChipCapacity:      s.OnChipCapacity(),
		XLUElemsPerCycle:    32 * s.SMs,
		GatherElemsPerCycle: 8 * s.SMs,
		VPUDerate:           1,
		DispatchOverhead:    s.KernelLaunch,
		WattsPerCore:        s.WattsPerGPU,
		ICIBandwidth:        s.NVLinkBandwidth,
		ICILatency:          s.NVLinkLatency,
		Calib:               s.Calib,
	}
}

// WithCalibration returns a copy of the spec carrying the given
// calibration — the hook the fitter uses to price candidate constants.
func (s Spec) WithCalibration(c tpusim.Calibration) Spec {
	s.Calib = c
	return s
}
