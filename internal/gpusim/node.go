package gpusim

import (
	"fmt"
	"math"

	"cross/internal/tpusim"
)

// Node models a multi-GPU server: N identical GPUs of one part joined
// by an NVLink fabric. It is the gpusim sibling of tpusim.Pod and the
// place the two backends genuinely diverge — compute prices through the
// same roofline core, but the collective cost model depends on the
// fabric topology:
//
// TopologyRing (directly-bridged NVLink, no switch) uses the same
// bandwidth-optimal ring algorithms as the TPU's ICI torus: a payload
// of B bytes over n GPUs costs
//
//	AllReduce:   2(n−1) steps of B/n bytes  (reduce-scatter + all-gather)
//	AllGather:    (n−1) steps of B/n bytes
//	Broadcast: ⌈log₂n⌉ steps of B bytes     (binomial tree)
//
// with each step paying the per-hop NVLinkLatency.
//
// TopologySwitch (NVSwitch) is a non-blocking all-to-all fabric: every
// GPU sends and receives at full injection bandwidth simultaneously, so
// a collective finishes in a CONSTANT number of phases regardless of n —
// the wire time is bounded by each GPU's injection of its (n−1)/n share
// and only one (AllGather/Broadcast) or two (AllReduce) fabric
// latencies are paid:
//
//	AllGather:      (n−1)/n · B / BW + Lat
//	AllReduce:  2 · ((n−1)/n · B / BW + Lat)
//	Broadcast:            B / BW + Lat
//
// As n grows, ring collectives accumulate O(n) latency terms while
// switched collectives hold latency constant and asymptote to the same
// wire time — the scaling difference the cross-hardware report exists
// to show.
type Node struct {
	GPU  Spec
	GPUs []*Device
	// Trace accumulates collective (NVLink) time, which belongs to the
	// fabric rather than to any single GPU.
	Trace *tpusim.Trace
}

// NewNode builds an n-GPU node of one part. Every GPU gets its own
// roofline core; per-kernel latency on a symmetric (SPMD) schedule is
// the time of GPU 0 plus the node's collective time.
func NewNode(spec Spec, gpus int) (*Node, error) {
	if gpus < 1 {
		return nil, fmt.Errorf("gpusim: node needs at least one GPU, got %d", gpus)
	}
	n := &Node{GPU: spec, GPUs: make([]*Device, gpus), Trace: tpusim.NewTrace()}
	for i := range n.GPUs {
		n.GPUs[i] = NewDevice(spec)
	}
	return n, nil
}

// MustNode is NewNode that panics on error.
func MustNode(spec Spec, gpus int) *Node {
	n, err := NewNode(spec, gpus)
	if err != nil {
		panic(err)
	}
	return n
}

// NumCores returns the GPU count.
func (n *Node) NumCores() int { return len(n.GPUs) }

// Core returns the representative GPU's roofline core (GPU 0).
// Schedules are SPMD over symmetric GPUs, so GPU 0's trace stands for
// every GPU's compute time.
func (n *Node) Core() *tpusim.Device {
	if n == nil || len(n.GPUs) == 0 {
		return nil
	}
	return n.GPUs[0].Core()
}

// CollectiveTrace exposes the node's NVLink trace.
func (n *Node) CollectiveTrace() *tpusim.Trace { return n.Trace }

// SetCollectiveTrace swaps the NVLink trace — used by the compiler to
// cost schedules without polluting the live trace.
func (n *Node) SetCollectiveTrace(t *tpusim.Trace) { n.Trace = t }

// Name renders the node naming ("H100-8").
func (n *Node) Name() string { return fmt.Sprintf("%s-%d", n.GPU.Name, len(n.GPUs)) }

// Reset clears every GPU trace and the node's collective trace.
func (n *Node) Reset() {
	for _, d := range n.GPUs {
		d.Reset()
	}
	n.Trace.Reset()
}

// step is the time of one ring phase moving `bytes` over one NVLink hop.
func (n *Node) step(bytes float64) float64 {
	return bytes/n.GPU.NVLinkBandwidth + n.GPU.NVLinkLatency
}

// wire is the switched-fabric time for each GPU to inject `bytes`.
func (n *Node) wire(bytes float64) float64 {
	return bytes/n.GPU.NVLinkBandwidth + n.GPU.NVLinkLatency
}

// AllReduceTime models an all-reduce of a `bytes` payload: every GPU
// ends with the element-wise reduction of all GPUs' buffers.
func (n *Node) AllReduceTime(bytes int64) float64 {
	c := len(n.GPUs)
	if c == 1 {
		return 0
	}
	if n.GPU.Topology == TopologySwitch {
		return 2 * n.wire(float64(bytes)*float64(c-1)/float64(c))
	}
	return 2 * float64(c-1) * n.step(float64(bytes)/float64(c))
}

// AllGatherTime models an all-gather: the `bytes` payload is the FULL
// gathered buffer, of which each GPU contributes bytes/n.
func (n *Node) AllGatherTime(bytes int64) float64 {
	c := len(n.GPUs)
	if c == 1 {
		return 0
	}
	if n.GPU.Topology == TopologySwitch {
		return n.wire(float64(bytes) * float64(c-1) / float64(c))
	}
	return float64(c-1) * n.step(float64(bytes)/float64(c))
}

// BroadcastTime models a broadcast of `bytes` from one GPU to all
// others: one switched multicast phase, or a binomial tree on a ring.
func (n *Node) BroadcastTime(bytes int64) float64 {
	c := len(n.GPUs)
	if c == 1 {
		return 0
	}
	if n.GPU.Topology == TopologySwitch {
		return n.wire(float64(bytes))
	}
	steps := math.Ceil(math.Log2(float64(c)))
	return steps * n.step(float64(bytes))
}

// AllReduce charges an all-reduce to the node's NVLink trace.
func (n *Node) AllReduce(bytes int64) float64 {
	t := n.AllReduceTime(bytes)
	n.Trace.Add(tpusim.CatNVLink, t)
	return t
}

// AllGather charges an all-gather to the node's NVLink trace.
func (n *Node) AllGather(bytes int64) float64 {
	t := n.AllGatherTime(bytes)
	n.Trace.Add(tpusim.CatNVLink, t)
	return t
}

// Broadcast charges a broadcast to the node's NVLink trace.
func (n *Node) Broadcast(bytes int64) float64 {
	t := n.BroadcastTime(bytes)
	n.Trace.Add(tpusim.CatNVLink, t)
	return t
}

// TotalSeconds returns the node-level latency of the schedule executed
// so far: the busiest GPU's trace plus all collective time (the SPMD
// critical path — GPUs synchronise at every collective).
func (n *Node) TotalSeconds() float64 {
	var busiest float64
	for _, d := range n.GPUs {
		if t := d.Core().Trace.Total(); t > busiest {
			busiest = t
		}
	}
	return busiest + n.Trace.Total()
}
