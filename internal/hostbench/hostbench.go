// Package hostbench measures the real wall-clock cost (ns/op) and
// steady-state allocation count (allocs/op) of the host-side functional
// kernels — the reproduction's "CPU platform" numbers that
// bench_test.go reports per paper table. Where the sweep engine gates
// the *simulated* TPU latencies (BENCH_baseline.json), hostbench gates
// the *measured* CPU ones (BENCH_host.json): `crossbench -hostbench
// -compare BENCH_host.json` reruns every kernel at a fixed size and
// fails on regression, so a PR claiming a speedup has to carry the
// numbers that prove it.
//
// Two gates with different strictness:
//
//   - ns/op is compared against a generous fractional threshold
//     (default 25%) because shared CI runners are noisy;
//   - allocs/op is gated at exact zero drift: allocation counts are
//     deterministic, so any increase is a real regression of the
//     allocation-free discipline.
package hostbench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cross/internal/bat"
	"cross/internal/modarith"
	"cross/internal/ring"
	"cross/internal/rns"
	"cross/internal/sweep"
)

// Record is one kernel's measurement at its fixed benchmark size.
type Record struct {
	ID          string  `json:"id"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchN is the polynomial degree every ring kernel is measured at
// (2^13, the paper's mid-size degree — large enough to be
// steady-state, small enough for a quick CI gate).
const benchN = 1 << 13

// kernel is one benchmarkable host kernel: a base name (the calibration
// vocabulary shared with cross.CalibKernels), a full hostbench ID
// (base/size), and a closure running exactly one operation. The same
// set backs both Run (testing.Benchmark, allocation counting) and
// Measure (raw timing samples for the calibration harness).
type kernel struct {
	base string
	id   string
	op   func() error
}

// buildKernels constructs the gated kernel set at polynomial degree n
// (a power of two ≥ 256 so the MAT split 128×(n/128) is valid). The
// size-independent BAT matmul is included only when withBAT is set, so
// multi-size sweeps measure it once.
func buildKernels(n int, withBAT bool) ([]kernel, error) {
	if n < 256 || n&(n-1) != 0 {
		return nil, fmt.Errorf("hostbench: degree %d is not a power of two ≥ 256", n)
	}
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), 2)
	if err != nil {
		return nil, err
	}
	rg, err := ring.NewRing(n, primes)
	if err != nil {
		return nil, err
	}
	m := rg.Moduli[0]
	rng := rand.New(rand.NewSource(7))
	a := make([]uint64, n)
	c := make([]uint64, n)
	for i := range a {
		a[i], c[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
	}
	dst := make([]uint64, n)

	var ks []kernel
	add := func(base, size string, op func() error) {
		ks = append(ks, kernel{base: base, id: base + "/" + size, op: op})
	}
	sizeN := fmt.Sprintf("N%d", n)

	buf := append([]uint64(nil), a...)
	add("ntt_inplace", sizeN, func() error { rg.NTTInPlace(0, buf); return nil })
	add("intt_inplace", sizeN, func() error { rg.INTTInPlace(0, buf); return nil })
	ws := m.ShoupPrecomputeVec(c)
	add("vecmulmod_shoup", sizeN, func() error { m.VecMulModShoup(dst, a, c, ws); return nil })
	add("vecmulmod_barrett", sizeN, func() error { m.VecMulMod(dst, a, c, modarith.Barrett); return nil })
	add("vecaddmod", sizeN, func() error { m.VecAddMod(dst, a, c); return nil })

	idx, err := rg.AutomorphismNTTIndex(5)
	if err != nil {
		return nil, err
	}
	autoIn := ring.NewPoly(1, n)
	copy(autoIn.Coeffs[0], a)
	autoOut := ring.NewPoly(1, n)
	add("automorphism_ntt", sizeN, func() error { rg.AutomorphismNTT(autoIn, autoOut, idx); return nil })

	plan, err := ring.NewMatNTTPlan(rg, 128, n/128, ring.LayoutBitRev)
	if err != nil {
		return nil, err
	}
	matOut := make([]uint64, n)
	add("matntt_forward", sizeN, func() error { plan.ForwardLimb(0, a, matOut); return nil })

	if withBAT {
		// BAT ModMatMul at the reduced functional size of BenchmarkTableV.
		bm := modarith.MustModulus(268369921)
		ba := make([]uint64, 64*64)
		bx := make([]uint64, 64*64)
		for i := range ba {
			ba[i], bx[i] = rng.Uint64()%bm.Q, rng.Uint64()%bm.Q
		}
		bplan, err := bat.OfflineCompileLeft(bm, ba, 64, 64)
		if err != nil {
			return nil, err
		}
		bdst := make([]uint64, 64*64)
		add("bat_matmul", "64x64x64", func() error { return bplan.MulInto(bdst, bx, 64, 1) })
	}

	// BConv step 1+2 through the pooled converter (ModUp shape L=2→2).
	convPrimes, err := modarith.GenerateNTTPrimes(29, uint64(n), 4)
	if err != nil {
		return nil, err
	}
	from, err := rns.NewBasis(convPrimes[:2])
	if err != nil {
		return nil, err
	}
	to, err := rns.NewBasis(convPrimes[2:])
	if err != nil {
		return nil, err
	}
	conv, err := rns.NewConverter(from, to)
	if err != nil {
		return nil, err
	}
	convIn := rns.AllocLimbs(2, n)
	for i := range convIn {
		for k := range convIn[i] {
			convIn[i][k] = rng.Uint64() % convPrimes[i]
		}
	}
	convOut := rns.AllocLimbs(2, n)
	add("bconv_approx", "L2_to_2/"+sizeN, func() error { conv.ConvertApproxInto(convOut, convIn); return nil })

	return ks, nil
}

// Run measures every gated kernel and returns the records in a stable
// order (the committable BENCH_host.json record content).
func Run() ([]Record, error) {
	ks, err := buildKernels(benchN, true)
	if err != nil {
		return nil, err
	}
	recs := make([]Record, 0, len(ks))
	for _, k := range ks {
		op := k.op
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		recs = append(recs, Record{
			ID:          k.id,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
		})
	}
	return recs, nil
}

// Delta is one kernel's old-vs-new comparison.
type Delta struct {
	ID        string  `json:"id"`
	OldNs     float64 `json:"old_ns"`
	NewNs     float64 `json:"new_ns"`
	RelNs     float64 `json:"rel_ns"` // NewNs/OldNs − 1
	OldAllocs float64 `json:"old_allocs"`
	NewAllocs float64 `json:"new_allocs"`
	Class     string  `json:"class"`
}

// Delta classes (shared vocabulary with sweep.Diff).
const (
	ClassRegression  = "regression"
	ClassImprovement = "improvement"
	ClassUnchanged   = "unchanged"
)

// DiffResult is the classified comparison of two host benchmark runs.
type DiffResult struct {
	Threshold    float64 `json:"threshold"`
	Regressions  []Delta `json:"regressions"`
	Improvements []Delta `json:"improvements"`
	Unchanged    int     `json:"unchanged"`

	OnlyInOld []string `json:"only_in_old,omitempty"`
	OnlyInNew []string `json:"only_in_new,omitempty"`

	// EnvWarnings describe baseline-vs-current environment mismatches
	// (DiffFiles). Warnings only — different CI hardware explains noisy
	// timings but must not hard-fail the gate.
	EnvWarnings []string `json:"env_warnings,omitempty"`
}

// HasRegressions reports whether any kernel regressed — in wall time
// beyond the threshold, or in allocations at all.
func (d DiffResult) HasRegressions() bool { return len(d.Regressions) > 0 }

// Summary renders a human-readable gate report.
func (d DiffResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostbench diff @ ns threshold %.0f%% (allocs strict): %d regression(s), %d improvement(s), %d unchanged\n",
		d.Threshold*100, len(d.Regressions), len(d.Improvements), d.Unchanged)
	for _, r := range d.Regressions {
		fmt.Fprintf(&b, "  REGRESSION  %-28s %.0f ns → %.0f ns (%+.1f%%), %g → %g allocs\n",
			r.ID, r.OldNs, r.NewNs, r.RelNs*100, r.OldAllocs, r.NewAllocs)
	}
	for _, r := range d.Improvements {
		fmt.Fprintf(&b, "  improvement %-28s %.0f ns → %.0f ns (%+.1f%%)\n", r.ID, r.OldNs, r.NewNs, r.RelNs*100)
	}
	if len(d.OnlyInOld) > 0 {
		fmt.Fprintf(&b, "  only in baseline: %v\n", d.OnlyInOld)
	}
	if len(d.OnlyInNew) > 0 {
		fmt.Fprintf(&b, "  only in new run: %v\n", d.OnlyInNew)
	}
	for _, w := range d.EnvWarnings {
		fmt.Fprintf(&b, "  WARNING environment mismatch — %s\n", w)
	}
	return b.String()
}

// Diff compares two host benchmark runs record-by-record (matched on
// ID). Wall time is classified against the fractional threshold;
// allocs/op is gated strictly — ANY increase is a regression
// regardless of timing, because allocation counts carry no noise.
// Records appearing in only one run are reported, not classified.
func Diff(old, new []Record, threshold float64) DiffResult {
	if threshold < 0 {
		threshold = 0
	}
	d := DiffResult{Threshold: threshold}
	oldByID := make(map[string]Record, len(old))
	for _, r := range old {
		oldByID[r.ID] = r
	}
	seen := make(map[string]bool, len(new))
	for _, r := range new {
		seen[r.ID] = true
		o, ok := oldByID[r.ID]
		if !ok {
			d.OnlyInNew = append(d.OnlyInNew, r.ID)
			continue
		}
		delta := Delta{
			ID: r.ID, OldNs: o.NsPerOp, NewNs: r.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: r.AllocsPerOp,
		}
		// Wall time classifies through the same semantics as the sweep
		// gate — in particular a non-positive baseline ns/op with any
		// different new latency is a regression, never unchanged (a
		// hollowed-out BENCH_host.json must not pass silently).
		relNs, nsClass := sweep.Classify(o.NsPerOp, r.NsPerOp, threshold)
		delta.RelNs = relNs
		if r.AllocsPerOp > o.AllocsPerOp {
			delta.Class = ClassRegression
		} else {
			delta.Class = nsClass
		}
		switch delta.Class {
		case ClassRegression:
			d.Regressions = append(d.Regressions, delta)
		case ClassImprovement:
			d.Improvements = append(d.Improvements, delta)
		default:
			d.Unchanged++
		}
	}
	for _, r := range old {
		if !seen[r.ID] {
			d.OnlyInOld = append(d.OnlyInOld, r.ID)
		}
	}
	return d
}
