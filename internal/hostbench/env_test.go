package hostbench

import (
	"strings"
	"testing"
)

// Regression test for the environment-metadata hole: BENCH_host.json
// used to carry bare records, so a baseline measured on one CI machine
// gated runs on entirely different hardware with no trace. DiffFiles
// must surface the mismatch — as a warning, never a regression.
func TestDiffFilesWarnsOnEnvMismatch(t *testing.T) {
	recs := []Record{rec("k", 100, 0)}
	base := File{
		Env: Environment{
			GoVersion: "go1.23.0", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 8, GOMAXPROCS: 8, CPUModel: "Old CPU @ 2.0GHz",
		},
		Records: recs,
	}
	cur := base
	cur.Env.CPUModel = "New CPU @ 3.5GHz"
	cur.Env.GOMAXPROCS = 16

	d := DiffFiles(base, cur, 0.25)
	if d.HasRegressions() {
		t.Fatalf("environment drift must not be a regression: %+v", d.Regressions)
	}
	if len(d.EnvWarnings) != 2 {
		t.Fatalf("EnvWarnings = %v, want cpu_model and gomaxprocs", d.EnvWarnings)
	}
	joined := strings.Join(d.EnvWarnings, "\n")
	for _, want := range []string{"cpu_model", "gomaxprocs", "Old CPU", "New CPU"} {
		if !strings.Contains(joined, want) {
			t.Errorf("EnvWarnings missing %q: %v", want, d.EnvWarnings)
		}
	}
	if s := d.Summary(); !strings.Contains(s, "environment mismatch") {
		t.Errorf("Summary does not surface the warnings:\n%s", s)
	}
}

// A legacy baseline (bare record array → zero Environment) must compare
// warning-free against any host.
func TestDiffFilesLegacyBaselineNoWarnings(t *testing.T) {
	recs := []Record{rec("k", 100, 0)}
	d := DiffFiles(File{Records: recs}, File{Env: CurrentEnvironment(), Records: recs}, 0.25)
	if len(d.EnvWarnings) != 0 {
		t.Fatalf("zero baseline env must not warn: %v", d.EnvWarnings)
	}
	if d.HasRegressions() || d.Unchanged != 1 {
		t.Fatalf("records must still gate normally: %+v", d)
	}
}

// CurrentEnvironment must fill every non-best-effort field — the
// metadata the bugfix exists to record.
func TestCurrentEnvironmentPopulated(t *testing.T) {
	e := CurrentEnvironment()
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.NumCPU < 1 || e.GOMAXPROCS < 1 {
		t.Fatalf("CurrentEnvironment incomplete: %+v", e)
	}
}
