package hostbench

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Environment records where a host benchmark ran. Host numbers are only
// comparable on like hardware, so the baseline file carries its
// environment and Diff warns — without failing the gate — when the
// current machine differs (a v2 runner comparing against a v1 baseline
// explains a 20% "regression" better than the code does).
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the /proc/cpuinfo "model name" (best effort; empty
	// where the file is absent, e.g. non-Linux hosts).
	CPUModel string `json:"cpu_model,omitempty"`
}

// CurrentEnvironment captures the running host.
func CurrentEnvironment() Environment {
	return Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

// cpuModel reads the first "model name" line of /proc/cpuinfo.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// Mismatches compares a baseline environment against the current one
// and describes every field that differs. Fields the baseline left
// empty are skipped, so a legacy baseline with no environment block
// produces no warnings.
func (e Environment) Mismatches(current Environment) []string {
	var w []string
	diff := func(field, old, new string) {
		if old != "" && old != new {
			w = append(w, fmt.Sprintf("%s: baseline %q vs current %q", field, old, new))
		}
	}
	diff("go_version", e.GoVersion, current.GoVersion)
	diff("goos", e.GOOS, current.GOOS)
	diff("goarch", e.GOARCH, current.GOARCH)
	diff("cpu_model", e.CPUModel, current.CPUModel)
	if e.NumCPU != 0 && e.NumCPU != current.NumCPU {
		w = append(w, fmt.Sprintf("num_cpu: baseline %d vs current %d", e.NumCPU, current.NumCPU))
	}
	if e.GOMAXPROCS != 0 && e.GOMAXPROCS != current.GOMAXPROCS {
		w = append(w, fmt.Sprintf("gomaxprocs: baseline %d vs current %d", e.GOMAXPROCS, current.GOMAXPROCS))
	}
	return w
}

// File is the on-disk BENCH_host.json schema: the measured records plus
// the environment they were measured on. The pre-environment schema (a
// bare record array) is still read by crossbench for compatibility.
type File struct {
	Env     Environment `json:"env"`
	Records []Record    `json:"records"`
}

// RunFile measures every gated kernel (Run) and wraps the records with
// the current environment — the committable BENCH_host.json content.
func RunFile() (File, error) {
	recs, err := Run()
	if err != nil {
		return File{}, err
	}
	return File{Env: CurrentEnvironment(), Records: recs}, nil
}

// DiffFiles compares two environment-carrying runs: records gate
// exactly as Diff, and environment mismatches surface as warnings —
// never regressions, because measuring on different CI hardware is
// expected and must not hard-fail the gate.
func DiffFiles(old, new File, threshold float64) DiffResult {
	d := Diff(old.Records, new.Records, threshold)
	d.EnvWarnings = old.Env.Mismatches(new.Env)
	return d
}
