package hostbench

import "testing"

func rec(id string, ns, allocs float64) Record {
	return Record{ID: id, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestDiffClassification(t *testing.T) {
	old := []Record{
		rec("a", 100, 0), rec("b", 100, 0), rec("c", 100, 0),
		rec("d", 100, 2), rec("gone", 50, 0),
	}
	cur := []Record{
		rec("a", 110, 0),  // +10% < threshold → unchanged
		rec("b", 160, 0),  // +60% → regression
		rec("c", 100, 1),  // allocs drifted 0→1 → regression despite flat ns
		rec("d", 10, 1),   // faster AND fewer allocs → improvement
		rec("new", 10, 0), // coverage drift
	}
	d := Diff(old, cur, 0.25)
	if !d.HasRegressions() {
		t.Fatal("expected regressions")
	}
	if len(d.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want b and c", d.Regressions)
	}
	got := map[string]bool{}
	for _, r := range d.Regressions {
		got[r.ID] = true
	}
	if !got["b"] || !got["c"] {
		t.Fatalf("regressions = %+v, want b (ns) and c (allocs)", d.Regressions)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].ID != "d" {
		t.Fatalf("improvements = %+v, want d", d.Improvements)
	}
	if d.Unchanged != 1 {
		t.Fatalf("unchanged = %d, want 1 (a)", d.Unchanged)
	}
	if len(d.OnlyInOld) != 1 || d.OnlyInOld[0] != "gone" {
		t.Fatalf("onlyInOld = %v", d.OnlyInOld)
	}
	if len(d.OnlyInNew) != 1 || d.OnlyInNew[0] != "new" {
		t.Fatalf("onlyInNew = %v", d.OnlyInNew)
	}
}

func TestDiffAllocsStrictAtZeroThreshold(t *testing.T) {
	// Even with a huge ns threshold, one extra alloc/op must gate.
	d := Diff([]Record{rec("k", 100, 0)}, []Record{rec("k", 100, 0.5)}, 10)
	if !d.HasRegressions() {
		t.Fatal("alloc drift must be a regression at any ns threshold")
	}
}

func TestDiffZeroBaselineGates(t *testing.T) {
	// Regression test for the gate hole: a baseline record with
	// NsPerOp <= 0 used to leave RelNs at 0, so ANY new latency
	// classified as unchanged and the gate passed silently. Aligned
	// with sweep.Classify: a latency appearing from a non-positive
	// baseline is a regression.
	for _, oldNs := range []float64{0, -1} {
		d := Diff([]Record{rec("k", oldNs, 0)}, []Record{rec("k", 5000, 0)}, 0.25)
		if !d.HasRegressions() {
			t.Errorf("baseline %g ns → 5000 ns not flagged as regression", oldNs)
		}
		if len(d.Regressions) == 1 && d.Regressions[0].RelNs != 1 {
			t.Errorf("baseline %g ns: RelNs = %g, want sentinel 1", oldNs, d.Regressions[0].RelNs)
		}
	}
	// 0 → 0 stays unchanged (matching sweep semantics).
	d := Diff([]Record{rec("k", 0, 0)}, []Record{rec("k", 0, 0)}, 0.25)
	if d.HasRegressions() || d.Unchanged != 1 {
		t.Errorf("0 → 0 must be unchanged: %+v", d)
	}
}

func TestDiffIdenticalRunsClean(t *testing.T) {
	rs := []Record{rec("x", 123, 0), rec("y", 456, 3)}
	d := Diff(rs, rs, 0.25)
	if d.HasRegressions() || len(d.Improvements) != 0 || d.Unchanged != 2 {
		t.Fatalf("self-diff not clean: %+v", d)
	}
}
