package hostbench

import "testing"

// The kernel set at benchN must reproduce the exact record IDs the
// committed BENCH_host.json has always carried — the refactor that
// introduced buildKernels must not move the gate's vocabulary.
func TestBuildKernelsKeepsHistoricalIDs(t *testing.T) {
	ks, err := buildKernels(benchN, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"ntt_inplace/N8192", "intt_inplace/N8192",
		"vecmulmod_shoup/N8192", "vecmulmod_barrett/N8192",
		"vecaddmod/N8192", "automorphism_ntt/N8192",
		"matntt_forward/N8192", "bat_matmul/64x64x64",
		"bconv_approx/L2_to_2/N8192",
	}
	if len(ks) != len(want) {
		t.Fatalf("kernel count = %d, want %d", len(ks), len(want))
	}
	for i, k := range ks {
		if k.id != want[i] {
			t.Errorf("kernel[%d].id = %q, want %q", i, k.id, want[i])
		}
		if err := k.op(); err != nil {
			t.Errorf("%s: op failed: %v", k.id, err)
		}
	}
}

// Measure must return positive samples for every kernel at every size,
// with the size-independent BAT matmul appearing exactly once.
func TestMeasureSmoke(t *testing.T) {
	sizes := []int{512, 1024}
	samples, err := Measure(sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 9 kernels at the first size (with BAT), 8 at the second.
	if len(samples) != 17 {
		t.Fatalf("sample count = %d, want 17", len(samples))
	}
	bat := 0
	for _, s := range samples {
		if len(s.Ns) != 2 {
			t.Errorf("%s: %d repeats, want 2", s.ID, len(s.Ns))
		}
		if b := s.Best(); !(b > 0) {
			t.Errorf("%s: Best() = %v, want > 0", s.ID, b)
		}
		if s.Kernel == "bat_matmul" {
			bat++
		}
	}
	if bat != 1 {
		t.Errorf("bat_matmul measured %d times, want once", bat)
	}
}

// Degenerate inputs error cleanly rather than measuring nonsense.
func TestMeasureRejectsBadSizes(t *testing.T) {
	if _, err := Measure(nil, 3); err == nil {
		t.Error("empty size list must error")
	}
	if _, err := Measure([]int{100}, 3); err == nil {
		t.Error("non-power-of-two size must error")
	}
	if _, err := Measure([]int{128}, 3); err == nil {
		t.Error("size below the MAT split must error")
	}
}
