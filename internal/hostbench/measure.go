package hostbench

import (
	"fmt"
	"math"
	"time"
)

// Sample is one kernel's raw measurement at one size: every repeat's
// ns/op, unaggregated, so the calibration harness can both fit against
// a robust point estimate and report the spread it fitted through.
type Sample struct {
	// Kernel is the base name (the cross.CalibKernels vocabulary);
	// ID is the full hostbench record ID (base/size).
	Kernel string `json:"kernel"`
	ID     string `json:"id"`
	// N is the polynomial degree the kernel ran at (the containing
	// sweep size for the size-independent BAT matmul).
	N  int       `json:"n"`
	Ns []float64 `json:"ns_per_op"`
}

// Best returns the sample's minimum ns/op — the standard
// least-interference estimator for a deterministic kernel on a noisy
// shared host (every slower repeat is the same work plus interference).
func (s Sample) Best() float64 {
	best := math.Inf(1)
	for _, v := range s.Ns {
		best = math.Min(best, v)
	}
	return best
}

// measureBudget is the per-sample timing window: long enough to
// amortise timer resolution, short enough that a multi-size ×
// multi-repeat sweep stays a seconds-scale CI step (testing.Benchmark's
// ~1 s settling per invocation would cost minutes here).
const measureBudget = 2 * time.Millisecond

// Measure times every gated kernel at each degree, repeats times per
// point, and returns the raw samples in a stable order (sizes as given,
// kernels in the canonical Run order). The size-independent BAT matmul
// rides along with the first size only. Unlike Run it does not count
// allocations — it exists to feed measured latencies to internal/calib.
func Measure(sizes []int, repeats int) ([]Sample, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("hostbench: no sizes to measure")
	}
	if repeats < 1 {
		repeats = 1
	}
	var out []Sample
	for si, n := range sizes {
		ks, err := buildKernels(n, si == 0)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			iters, err := calibrateIters(k.op)
			if err != nil {
				return nil, err
			}
			ns := make([]float64, 0, repeats)
			for r := 0; r < repeats; r++ {
				v, err := timeOp(k.op, iters)
				if err != nil {
					return nil, err
				}
				ns = append(ns, v)
			}
			out = append(out, Sample{Kernel: k.base, ID: k.id, N: n, Ns: ns})
		}
	}
	return out, nil
}

// calibrateIters warms the kernel up and doubles the iteration count
// until one batch fills the measurement budget.
func calibrateIters(op func() error) (int, error) {
	if err := op(); err != nil { // warm-up: caches, page faults, JIT-free but honest
		return 0, err
	}
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		if time.Since(start) >= measureBudget || iters >= 1<<24 {
			return iters, nil
		}
		iters *= 2
	}
}

// timeOp returns one ns/op sample over a fixed iteration batch.
func timeOp(op func() error, iters int) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}
