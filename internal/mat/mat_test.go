package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64()
	}
	return v
}

func randPerm(rng *rand.Rand, n int) Permutation {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestIdentity(t *testing.T) {
	p := Identity(8)
	if !p.IsIdentity() {
		t.Fatal("Identity is not identity")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	v := randVec(rng, 8)
	if got := p.ApplyNew(v); !vecEq(got, v) {
		t.Fatal("identity changed vector")
	}
}

func vecEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestValidate(t *testing.T) {
	if err := (Permutation{0, 0, 1}).Validate(); err == nil {
		t.Error("expected error for repeated entry")
	}
	if err := (Permutation{0, 3}).Validate(); err == nil {
		t.Error("expected error for out-of-range entry")
	}
	if err := (Permutation{-1, 0}).Validate(); err == nil {
		t.Error("expected error for negative entry")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		p := randPerm(rng, 32)
		inv := p.Inverse()
		if !p.Compose(inv).IsIdentity() || !inv.Compose(p).IsIdentity() {
			t.Fatal("p∘p⁻¹ != id")
		}
		v := randVec(rng, 32)
		if !vecEq(inv.ApplyNew(p.ApplyNew(v)), v) {
			t.Fatal("inverse apply does not undo apply")
		}
	}
}

func TestComposeMatchesSequentialApply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randPerm(rng, 64)
	q := randPerm(rng, 64)
	v := randVec(rng, 64)
	seq := p.ApplyNew(q.ApplyNew(v))
	fused := p.Compose(q).ApplyNew(v)
	if !vecEq(seq, fused) {
		t.Fatal("Compose does not match sequential Apply")
	}
}

func TestBitReverse(t *testing.T) {
	p, err := BitReverse(8)
	if err != nil {
		t.Fatal(err)
	}
	want := Permutation{0, 4, 2, 6, 1, 5, 3, 7}
	if !p.Equal(want) {
		t.Fatalf("BitReverse(8) = %v want %v", p, want)
	}
	// Involution.
	if !p.Compose(p).IsIdentity() {
		t.Fatal("bit reversal is not an involution")
	}
	if _, err := BitReverse(12); err == nil {
		t.Error("expected error for non-power-of-two")
	}
	if _, err := BitReverse(0); err == nil {
		t.Error("expected error for zero")
	}
}

func TestTransposePermutation(t *testing.T) {
	// 2×3 matrix [0 1 2; 3 4 5] transposed is [0 3; 1 4; 2 5].
	p := Transpose(2, 3)
	in := []uint64{0, 1, 2, 3, 4, 5}
	want := []uint64{0, 3, 1, 4, 2, 5}
	if got := p.ApplyNew(in); !vecEq(got, want) {
		t.Fatalf("transpose permutation: %v want %v", got, want)
	}
	// Transpose(r,c) ∘ Transpose(c,r) = id.
	if !Transpose(3, 2).Compose(Transpose(2, 3)).IsIdentity() {
		t.Fatal("transpose round trip is not identity")
	}
}

func TestDigitSwap(t *testing.T) {
	// For R=C, digit swap equals the square transpose.
	if !DigitSwap(4, 4).Equal(Transpose(4, 4)) {
		t.Fatal("square DigitSwap != Transpose")
	}
	p := DigitSwap(2, 4) // R=2, C=4, n=8
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// slot j2·R+j1 = natural j2 + C·j1
	for j2 := 0; j2 < 4; j2++ {
		for j1 := 0; j1 < 2; j1++ {
			if p[j2*2+j1] != j2+4*j1 {
				t.Fatalf("DigitSwap[%d] = %d", j2*2+j1, p[j2*2+j1])
			}
		}
	}
}

func TestRotation(t *testing.T) {
	p := Rotation(5, 2)
	in := []uint64{10, 11, 12, 13, 14}
	want := []uint64{12, 13, 14, 10, 11}
	if got := p.ApplyNew(in); !vecEq(got, want) {
		t.Fatalf("rotation: %v want %v", got, want)
	}
	if !Rotation(5, 5).IsIdentity() || !Rotation(5, 0).IsIdentity() {
		t.Fatal("full/zero rotation should be identity")
	}
	if !Rotation(5, -2).Compose(Rotation(5, 2)).IsIdentity() {
		t.Fatal("negative rotation is not the inverse")
	}
}

func TestDenseMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randPerm(rng, 16)
	m := p.DenseMatrix()
	v := randVec(rng, 16)
	// Matrix-vector product must equal Apply.
	got := make([]uint64, 16)
	for i := 0; i < 16; i++ {
		var acc uint64
		for j := 0; j < 16; j++ {
			acc += m[i*16+j] * v[j]
		}
		got[i] = acc
	}
	if !vecEq(got, p.ApplyNew(v)) {
		t.Fatal("DenseMatrix product != Apply")
	}
	// Exactly one 1 per row and column.
	for i := 0; i < 16; i++ {
		var rowSum, colSum uint64
		for j := 0; j < 16; j++ {
			rowSum += m[i*16+j]
			colSum += m[j*16+i]
		}
		if rowSum != 1 || colSum != 1 {
			t.Fatal("DenseMatrix is not a permutation matrix")
		}
	}
}

func TestEmbedIntoVecParam(t *testing.T) {
	// π(a ⊙ w) == π(a) ⊙ π(w): embedding the permutation into the
	// parameter gives the permuted result from permuted input.
	rng := rand.New(rand.NewSource(5))
	n := 32
	pi := randPerm(rng, n)
	a, w := randVec(rng, n), randVec(rng, n)
	prod := make([]uint64, n)
	for i := range prod {
		prod[i] = a[i] * w[i]
	}
	want := pi.ApplyNew(prod)
	pa := pi.ApplyNew(a)
	pw := EmbedIntoVecParam(pi, w)
	got := make([]uint64, n)
	for i := range got {
		got[i] = pa[i] * pw[i]
	}
	if !vecEq(got, want) {
		t.Fatal("vec-param embedding identity violated")
	}
}

func matMulU64(a []uint64, ar, ac int, b []uint64, bc int) []uint64 {
	out := make([]uint64, ar*bc)
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var acc uint64
			for k := 0; k < ac; k++ {
				acc += a[i*ac+k] * b[k*bc+j]
			}
			out[i*bc+j] = acc
		}
	}
	return out
}

func TestEmbedIntoMatRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows, cols, w := 8, 6, 4
	pi := randPerm(rng, rows)
	a := randVec(rng, rows*cols)
	x := randVec(rng, cols*w)
	// (P@A)@X == P@(A@X)
	pa, err := EmbedIntoMatRows(pi, a, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	lhs := matMulU64(pa, rows, cols, x, w)
	ax := matMulU64(a, rows, cols, x, w)
	want := make([]uint64, rows*w)
	for i, src := range pi {
		copy(want[i*w:(i+1)*w], ax[src*w:(src+1)*w])
	}
	if !vecEq(lhs, want) {
		t.Fatal("row embedding identity violated")
	}
	if _, err := EmbedIntoMatRows(pi, a, rows+1, cols); err == nil {
		t.Error("expected shape error")
	}
}

func TestEmbedIntoMatCols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, cols := 5, 8
	pi := randPerm(rng, cols)
	a := randVec(rng, rows*cols)
	x := randVec(rng, cols)
	// (A with permuted cols) @ π(x) == A @ x ... with gather convention:
	// colEmbed[i][j] = A[i][π(j)], input x' with x'[j] = x[π(j)].
	pa, err := EmbedIntoMatCols(pi, a, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	px := pi.ApplyNew(x)
	lhs := matMulU64(pa, rows, cols, px, 1)
	want := matMulU64(a, rows, cols, x, 1)
	if !vecEq(lhs, want) {
		t.Fatal("column embedding identity violated")
	}
	if _, err := EmbedIntoMatCols(pi, a, rows, cols+1); err == nil {
		t.Error("expected shape error")
	}
}

func TestTransposeMatIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r, c, w := 6, 5, 7
	a := randVec(rng, r*c)
	b := randVec(rng, c*w)
	// (A@B)ᵀ == Bᵀ@Aᵀ — the MAT transpose-elimination identity.
	ab := matMulU64(a, r, c, b, w)
	lhs := TransposeMat(ab, r, w)
	rhs := matMulU64(TransposeMat(b, c, w), w, c, TransposeMat(a, r, c), r)
	if !vecEq(lhs, rhs) {
		t.Fatal("(A@B)ᵀ != Bᵀ@Aᵀ")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := []uint64{1, 2, 2, 3}
	if !IsSymmetric(sym, 2) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := []uint64{1, 2, 3, 4}
	if IsSymmetric(asym, 2) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestClassifyReordering(t *testing.T) {
	if ClassifyReordering(true, false) != EmbeddedOffline {
		t.Error("constant consumer should embed")
	}
	if ClassifyReordering(false, true) != DeferredLayout {
		t.Error("elementwise consumer should defer")
	}
	if ClassifyReordering(false, false) != RuntimeGather {
		t.Error("no consumer should gather")
	}
	for e, want := range map[EmbedResult]string{
		EmbeddedOffline: "embedded-offline", DeferredLayout: "deferred-layout",
		RuntimeGather: "runtime-gather", EmbedResult(9): "unknown",
	} {
		if e.String() != want {
			t.Errorf("EmbedResult(%d).String() = %q", e, e.String())
		}
	}
}

// Property: permutation group laws.
func TestPermGroupQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(60)
		p, q, s := randPerm(r, n), randPerm(r, n), randPerm(r, n)
		// Associativity.
		if !p.Compose(q).Compose(s).Equal(p.Compose(q.Compose(s))) {
			return false
		}
		// Inverse of compose.
		if !p.Compose(q).Inverse().Equal(q.Inverse().Compose(p.Inverse())) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
