package mat

import "fmt"

// Embedding rules (Fig. 9). MAT's core principle: a runtime reordering
// that feeds or follows an operation with a compile-time-known parameter
// can be applied to that parameter offline instead. Two canonical cases:
//
//   Permute(VecMul):  π(a ⊙ w) = a' ⊙ π(w) when a arrives as a' = π(a),
//                     or more usefully — defer π by handing the consumer
//                     π(w) and tagging the output layout.
//   Transpose(MatMul): (A @ B)ᵀ = Bᵀ @ Aᵀ, so a transpose after a matmul
//                     with constant A becomes a matmul with Aᵀ before.
//
// The compiler works with layout *tags*: every tensor carries the
// permutation relating its physical order to the logical one, ops
// propagate tags, and constants absorb tags at compile time. A tag that
// reaches an op with no constant to absorb it must be materialised as a
// runtime gather — MAT's fallback (automorphism, §V-E).

// EmbedIntoVecParam returns the reordered parameter w' = π(w) such that
// computing a ⊙ w' produces the same vector the runtime sequence
// "compute a ⊙ w then permute by π" would, for inputs already permuted
// by π: π(a) ⊙ π(w) = π(a ⊙ w).
func EmbedIntoVecParam(pi Permutation, w []uint64) []uint64 {
	return pi.ApplyNew(w)
}

// EmbedIntoMatRows permutes the rows of a constant rows×cols matrix so
// that its product against unchanged data emits permuted output:
// (P @ A) @ X = P @ (A @ X).
func EmbedIntoMatRows(pi Permutation, a []uint64, rows, cols int) ([]uint64, error) {
	if len(pi) != rows || len(a) != rows*cols {
		return nil, fmt.Errorf("mat: row embedding shape mismatch (perm %d, matrix %d×%d)", len(pi), rows, cols)
	}
	out := make([]uint64, len(a))
	for i, src := range pi {
		copy(out[i*cols:(i+1)*cols], a[src*cols:(src+1)*cols])
	}
	return out, nil
}

// EmbedIntoMatCols permutes the columns of a constant rows×cols matrix
// so that permuted input order is absorbed: (A @ Pᵀ) reads X in the
// order π delivered it.
func EmbedIntoMatCols(pi Permutation, a []uint64, rows, cols int) ([]uint64, error) {
	if len(pi) != cols || len(a) != rows*cols {
		return nil, fmt.Errorf("mat: column embedding shape mismatch (perm %d, matrix %d×%d)", len(pi), rows, cols)
	}
	out := make([]uint64, len(a))
	for i := 0; i < rows; i++ {
		for j, src := range pi {
			out[i*cols+j] = a[i*cols+src]
		}
	}
	return out, nil
}

// TransposeMat returns Aᵀ of a rows×cols row-major constant — the
// offline half of the (A@B)ᵀ = Bᵀ@Aᵀ rewrite.
func TransposeMat(a []uint64, rows, cols int) []uint64 {
	out := make([]uint64, len(a))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[j*rows+i] = a[i*cols+j]
		}
	}
	return out
}

// IsSymmetric reports whether a square matrix equals its transpose —
// the twiddle-factor symmetry ((TF_C)ᵀ = TF_C) that lets MAT swap
// multiplication order instead of materialising a transpose (§IV-B2a).
func IsSymmetric(a []uint64, n int) bool {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if a[i*n+j] != a[j*n+i] {
				return false
			}
		}
	}
	return true
}

// EmbedResult classifies how the compiler disposed of a reordering.
type EmbedResult int

const (
	// EmbeddedOffline: the permutation was absorbed into a constant;
	// zero runtime cost.
	EmbeddedOffline EmbedResult = iota
	// DeferredLayout: the permutation became a layout tag on the output
	// (consumed later or never); zero runtime cost.
	DeferredLayout
	// RuntimeGather: no constant could absorb it; the simulator charges
	// an XLU gather (the automorphism case of Fig. 12).
	RuntimeGather
)

func (e EmbedResult) String() string {
	switch e {
	case EmbeddedOffline:
		return "embedded-offline"
	case DeferredLayout:
		return "deferred-layout"
	case RuntimeGather:
		return "runtime-gather"
	default:
		return "unknown"
	}
}

// ClassifyReordering implements the compiler's embedding decision:
// a reordering followed by an op with a constant operand embeds; one
// feeding only element-wise ops defers as a layout tag; anything else
// gathers at runtime.
func ClassifyReordering(hasConstantConsumer, consumerElementwise bool) EmbedResult {
	switch {
	case hasConstantConsumer:
		return EmbeddedOffline
	case consumerElementwise:
		return DeferredLayout
	default:
		return RuntimeGather
	}
}
