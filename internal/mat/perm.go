// Package mat implements Memory-Aligned Transformation (§IV-B): the
// machinery for representing data reorderings as permutations, fusing
// them, and — wherever a reordering feeds an operation with a
// compile-time-known parameter — embedding it into that parameter
// offline so the runtime kernel never moves data (Fig. 9).
//
// The ring package's layout-invariant 3-step NTT consumes this package's
// bit-reversal and digit-swap permutations; the CROSS compiler uses the
// embedding rules to decide which reorderings vanish at compile time
// (all NTT transposes and bit-reversals) and which must fall back to a
// runtime gather (general automorphisms, the 21% of Rotate latency in
// Fig. 12).
package mat

import (
	"fmt"
	"math/bits"
)

// Permutation is a bijection on [0, n): out[i] = in[p[i]] under Apply.
// This "gather" convention composes left-to-right with function
// application: Apply(Compose(p, q), x) = Apply(p, Apply(q, x)).
type Permutation []int

// Identity returns the identity permutation on n elements.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate checks that p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("mat: permutation entry %d at %d out of range", v, i)
		}
		if seen[v] {
			return fmt.Errorf("mat: permutation repeats %d", v)
		}
		seen[v] = true
	}
	return nil
}

// IsIdentity reports whether p is the identity.
func (p Permutation) IsIdentity() bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// Apply gathers: out[i] = in[p[i]]. out must not alias in.
func (p Permutation) Apply(out, in []uint64) {
	if len(out) != len(p) || len(in) != len(p) {
		panic("mat: permutation length mismatch")
	}
	for i, v := range p {
		out[i] = in[v]
	}
}

// ApplyNew is Apply into a fresh slice.
func (p Permutation) ApplyNew(in []uint64) []uint64 {
	out := make([]uint64, len(in))
	p.Apply(out, in)
	return out
}

// ApplyBytes gathers a byte vector (BAT-compiled operands).
func (p Permutation) ApplyBytes(out, in []uint8) {
	if len(out) != len(p) || len(in) != len(p) {
		panic("mat: permutation length mismatch")
	}
	for i, v := range p {
		out[i] = in[v]
	}
}

// Inverse returns p⁻¹ (the scatter form of the same reordering).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Compose returns the permutation r with Apply(r, x) =
// Apply(p, Apply(q, x)), i.e. r[i] = q[p[i]].
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic("mat: composing permutations of different sizes")
	}
	r := make(Permutation, len(p))
	for i := range r {
		r[i] = q[p[i]]
	}
	return r
}

// Equal reports element-wise equality.
func (p Permutation) Equal(q Permutation) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// BitReverse returns the bit-reversal permutation on n = 2^k elements —
// the reordering radix-2 NTT outputs carry and MAT folds into twiddle
// rows/columns (§IV-B2b).
func BitReverse(n int) (Permutation, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("mat: bit reversal needs a power-of-two size, got %d", n)
	}
	width := uint(bits.Len(uint(n)) - 1)
	p := make(Permutation, n)
	for i := range p {
		p[i] = int(bits.Reverse64(uint64(i)) >> (64 - width))
	}
	return p, nil
}

// Transpose returns the permutation that re-reads an r×c row-major
// matrix as its transpose: out (c×r row-major) [j·r+i] = in[i·c+j].
// This is the explicit-reorder cost of the 4-step NTT that MAT removes.
func Transpose(r, c int) Permutation {
	p := make(Permutation, r*c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			p[j*r+i] = i*c + j
		}
	}
	return p
}

// DigitSwap returns the permutation mapping natural evaluation order to
// the 3-step NTT's native C×R layout: slot j2·r+j1 reads natural index
// j2 + c·j1 (ring.LayoutDigitSwap).
func DigitSwap(r, c int) Permutation {
	p := make(Permutation, r*c)
	for j2 := 0; j2 < c; j2++ {
		for j1 := 0; j1 < r; j1++ {
			p[j2*r+j1] = j2 + c*j1
		}
	}
	return p
}

// Rotation returns the cyclic left-rotation by k on n elements.
func Rotation(n, k int) Permutation {
	p := make(Permutation, n)
	kk := ((k % n) + n) % n
	for i := range p {
		p[i] = (i + kk) % n
	}
	return p
}

// DenseMatrix materialises p as its n×n 0/1 permutation matrix
// (row-major), the representation MAT multiplies into parameter
// matrices offline (§IV-B1). Exposed mainly for tests and for the
// compiler's algebraic sanity checks — production embedding uses the
// index form directly.
func (p Permutation) DenseMatrix() []uint64 {
	n := len(p)
	m := make([]uint64, n*n)
	for i, v := range p {
		m[i*n+v] = 1
	}
	return m
}
