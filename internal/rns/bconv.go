package rns

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"sync"
)

// Converter implements fast basis conversion (BConv, Fig. 15b) from a
// source basis B1 = {q_i} to a target basis B2 = {p_j}:
//
//	Conv_{B1→B2}(a)_j = Σ_i [a_i · q̂_i⁻¹]_{q_i} · [q̂_i]_{p_j}  (mod p_j)
//
// Step 1 is L independent N-length VecModMul's; step 2 is one
// (N, L, L')-ModMatMul whose left matrix [q̂_i]_{p_j} is compile-time
// known — exactly the structure BAT exploits in Tab. VI.
type Converter struct {
	From *Basis
	To   *Basis

	// table[j][i] = (Q/q_i) mod p_j; row-major per output limb so that
	// step 2 is a per-output-limb inner product over input limbs.
	table [][]uint64
	// qModP[j] = Q mod p_j, used by the exactness correction (−v·Q).
	qModP []uint64
	// qInv[i] = 1/q_i as float64 for the HPS overflow estimate v.
	qInv []float64

	// yPool recycles the step-1 intermediate limb matrix so the
	// steady-state ConvertApproxInto path allocates nothing.
	yPool sync.Pool // *limbScratch
}

// limbScratch is a pooled [L][N] limb matrix with its backing array.
type limbScratch struct {
	rows [][]uint64
	n    int
}

// getY borrows an l×n limb matrix (contents undefined).
func (c *Converter) getY(l, n int) *limbScratch {
	if s, ok := c.yPool.Get().(*limbScratch); ok && len(s.rows) == l && s.n == n {
		return s
	}
	return &limbScratch{rows: allocLimbs(l, n), n: n}
}

// NewConverter precomputes the BConv constants between two bases. The
// bases must be disjoint (all moduli pairwise distinct) for the CRT map
// to be well defined on the union.
func NewConverter(from, to *Basis) (*Converter, error) {
	fromSet := make(map[uint64]bool, from.L())
	for _, q := range from.Primes() {
		fromSet[q] = true
	}
	for _, p := range to.Primes() {
		if fromSet[p] {
			return nil, fmt.Errorf("rns: basis conversion requires disjoint bases; %d appears in both", p)
		}
	}
	c := &Converter{
		From:  from,
		To:    to,
		table: make([][]uint64, to.L()),
		qModP: make([]uint64, to.L()),
		qInv:  make([]float64, from.L()),
	}
	for i, m := range from.Moduli {
		c.qInv[i] = 1.0 / float64(m.Q)
	}
	for j, pm := range to.Moduli {
		row := make([]uint64, from.L())
		for i := range from.Moduli {
			row[i] = bigMod(from.qHat[i], pm.Q)
		}
		c.table[j] = row
		c.qModP[j] = bigMod(from.Q, pm.Q)
	}
	return c, nil
}

// Table returns the step-2 left matrix [q̂_i]_{p_j} indexed [j][i]. The
// CROSS compiler feeds this to BAT's offline pass.
func (c *Converter) Table() [][]uint64 { return c.table }

// Step1 computes y_i = [a_i · q̂_i⁻¹]_{q_i} for every input limb.
// in and out are limb-major: [L][N]. out may alias in.
func (c *Converter) Step1(out, in [][]uint64) {
	if len(in) != c.From.L() || len(out) != c.From.L() {
		panic("rns: Step1 limb count mismatch")
	}
	for i, m := range c.From.Moduli {
		m.VecScalarMulModShoup(out[i], in[i], c.From.qHatInv[i], c.From.qHatInvShoup[i])
	}
}

// step2Tile is the coefficient-block width of the lazy Step2
// accumulation: per tile the 128-bit partial sums live in two stack
// arrays while the limb loop streams each source row sequentially —
// cache-friendly in both directions.
const step2Tile = 32

// Step2 computes c_j = Σ_i y_i · table[j][i] mod p_j — the
// (N, L, L')-ModMatMul. y is limb-major [L][N]; out is [L'][N].
//
// Accumulation is lazy: each output coefficient gathers its L products
// in a 128-bit (hi, lo) pair via bits.Mul64 and reduces ONCE with the
// Barrett ⌊2^128/p⌋ constant — no per-term correction at all. A
// near-overflow fold (hi ≥ 2^62, reachable only for >60-bit moduli at
// large L) keeps the running sum exact.
func (c *Converter) Step2(out, y [][]uint64) {
	if len(y) != c.From.L() || len(out) != c.To.L() {
		panic("rns: Step2 limb count mismatch")
	}
	n := len(y[0])
	var lo, hi [step2Tile]uint64
	for j, pm := range c.To.Moduli {
		dst := out[j]
		row := c.table[j]
		for k0 := 0; k0 < n; k0 += step2Tile {
			kn := step2Tile
			if n-k0 < kn {
				kn = n - k0
			}
			for k := 0; k < kn; k++ {
				lo[k], hi[k] = 0, 0
			}
			for i := range y {
				w := row[i]
				src := y[i][k0 : k0+kn]
				for k := 0; k < len(src); k++ {
					ph, pl := bits.Mul64(src[k], w)
					var cr uint64
					lo[k], cr = bits.Add64(lo[k], pl, 0)
					hi[k] += ph + cr
					if hi[k] >= 1<<62 {
						lo[k] = pm.ReduceWide(hi[k], lo[k])
						hi[k] = 0
					}
				}
			}
			for k := 0; k < kn; k++ {
				dst[k0+k] = pm.ReduceWide(hi[k], lo[k])
			}
		}
	}
}

// ConvertApprox performs the fast (approximate) basis conversion used
// inside key-switching ModUp: the result equals a + e·Q mod p_j for some
// overflow 0 ≤ e < L. in is [L][N] over From; the returned slice is
// [L'][N] over To.
func (c *Converter) ConvertApprox(in [][]uint64) [][]uint64 {
	out := allocLimbs(c.To.L(), len(in[0]))
	c.ConvertApproxInto(out, in)
	return out
}

// ConvertApproxInto is ConvertApprox with a caller-provided [L'][N]
// destination; the step-1 intermediate comes from the converter's pool,
// so the steady state allocates nothing.
func (c *Converter) ConvertApproxInto(out, in [][]uint64) {
	n := len(in[0])
	ys := c.getY(c.From.L(), n)
	c.Step1(ys.rows, in)
	c.Step2(out, ys.rows)
	c.yPool.Put(ys)
}

// ConvertExact performs basis conversion with the HPS floating-point
// correction: since Σ y_i/q_i = v + x/Q exactly (q̂_i/Q = 1/q_i), the
// CRT overflow is v = ⌊Σ y_i/q_i⌋, which is computed per coefficient in
// float64 and subtracted as v·Q. The float estimate carries ≈L·2⁻⁵²
// absolute error, so the floor is correct unless x/Q falls within that
// distance of an integer — never the case for the ≤64-limb parameter
// sets of Tab. IV on random inputs, and checked by tests.
func (c *Converter) ConvertExact(in [][]uint64) [][]uint64 {
	n := len(in[0])
	ys := c.getY(c.From.L(), n)
	y := ys.rows
	c.Step1(y, in)
	out := allocLimbs(c.To.L(), n)
	c.Step2(out, y)
	defer c.yPool.Put(ys)

	// Overflow estimate and correction.
	for k := 0; k < n; k++ {
		sum := 0.0
		for i := range y {
			sum += float64(y[i][k]) * c.qInv[i]
		}
		v := uint64(math.Floor(sum))
		if v == 0 {
			continue
		}
		for j, pm := range c.To.Moduli {
			corr := pm.MulMod(v%pm.Q, c.qModP[j])
			out[j][k] = pm.SubMod(out[j][k], corr)
		}
	}
	return out
}

// OverflowBound returns the maximum CRT overflow e of ConvertApprox,
// i.e. L (the number of source limbs).
func (c *Converter) OverflowBound() uint64 { return uint64(c.From.L()) }

// allocLimbs allocates an [l][n] limb matrix backed by one contiguous
// buffer (single allocation, cache-friendly row access).
func allocLimbs(l, n int) [][]uint64 {
	backing := make([]uint64, l*n)
	out := make([][]uint64, l)
	for i := range out {
		out[i], backing = backing[:n:n], backing[n:]
	}
	return out
}

// AllocLimbs exposes the contiguous limb-matrix allocator to other
// packages in the reproduction.
func AllocLimbs(l, n int) [][]uint64 { return allocLimbs(l, n) }

// CopyLimbs deep-copies a limb matrix.
func CopyLimbs(in [][]uint64) [][]uint64 {
	if len(in) == 0 {
		return nil
	}
	out := allocLimbs(len(in), len(in[0]))
	for i := range in {
		copy(out[i], in[i])
	}
	return out
}

// bigMod returns x mod m for a big integer x and word-size m.
func bigMod(x *big.Int, m uint64) uint64 {
	return new(big.Int).Mod(x, new(big.Int).SetUint64(m)).Uint64()
}
