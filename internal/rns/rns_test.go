package rns

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cross/internal/modarith"
)

func testBases(t *testing.T) (*Basis, *Basis) {
	t.Helper()
	n := uint64(1 << 10)
	qs, err := modarith.GenerateNTTPrimes(28, n, 6)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := modarith.GenerateNTTPrimesAvoiding(28, n, 4, qs)
	if err != nil {
		t.Fatal(err)
	}
	return MustBasis(qs), MustBasis(ps)
}

func TestBasisEncodeDecodeRoundTrip(t *testing.T) {
	b, _ := testBases(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x := new(big.Int).Rand(rng, b.Q)
		res := b.Encode(x)
		got := b.Decode(res)
		if got.Cmp(x) != 0 {
			t.Fatalf("round trip: %v -> %v", x, got)
		}
	}
}

func TestBasisEncodeNegative(t *testing.T) {
	b, _ := testBases(t)
	x := big.NewInt(-12345)
	res := b.Encode(x)
	got := b.DecodeCentered(res)
	if got.Cmp(x) != 0 {
		t.Fatalf("centered decode of negative: got %v want %v", got, x)
	}
}

func TestDecodeCenteredRange(t *testing.T) {
	b, _ := testBases(t)
	rng := rand.New(rand.NewSource(2))
	half := new(big.Int).Rsh(b.Q, 1)
	negHalf := new(big.Int).Neg(half)
	for i := 0; i < 50; i++ {
		x := new(big.Int).Rand(rng, b.Q)
		c := b.DecodeCentered(b.Encode(x))
		if c.Cmp(negHalf) < 0 || c.Cmp(half) >= 0 {
			t.Fatalf("centered value %v outside [-Q/2, Q/2)", c)
		}
	}
}

func TestBasisErrors(t *testing.T) {
	if _, err := NewBasis(nil); err == nil {
		t.Error("expected error for empty basis")
	}
	if _, err := NewBasis([]uint64{12289, 12289}); err == nil {
		t.Error("expected error for duplicate modulus")
	}
	if _, err := NewBasis([]uint64{15}); err == nil {
		t.Error("expected error for composite modulus")
	}
}

func TestBasisPrefixExtend(t *testing.T) {
	b, aux := testBases(t)
	pre, err := b.Prefix(3)
	if err != nil {
		t.Fatal(err)
	}
	if pre.L() != 3 {
		t.Fatalf("prefix length %d", pre.L())
	}
	wantQ := big.NewInt(1)
	for _, q := range b.Primes()[:3] {
		wantQ.Mul(wantQ, new(big.Int).SetUint64(q))
	}
	if pre.Q.Cmp(wantQ) != 0 {
		t.Fatal("prefix Q mismatch")
	}
	if _, err := b.Prefix(0); err == nil {
		t.Error("expected error for prefix 0")
	}
	if _, err := b.Prefix(b.L() + 1); err == nil {
		t.Error("expected error for prefix too long")
	}
	ext, err := b.Extend(aux.Primes())
	if err != nil {
		t.Fatal(err)
	}
	if ext.L() != b.L()+aux.L() {
		t.Fatalf("extend length %d", ext.L())
	}
}

func TestConverterDisjointnessCheck(t *testing.T) {
	b, _ := testBases(t)
	if _, err := NewConverter(b, b); err == nil {
		t.Error("expected error converting basis to itself")
	}
}

func TestConvertExactMatchesCRT(t *testing.T) {
	from, to := testBases(t)
	conv, err := NewConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := 64
	in := AllocLimbs(from.L(), n)
	want := make([]*big.Int, n)
	for k := 0; k < n; k++ {
		x := new(big.Int).Rand(rng, from.Q)
		want[k] = x
		res := from.Encode(x)
		for i := range in {
			in[i][k] = res[i]
		}
	}
	out := conv.ConvertExact(in)
	for k := 0; k < n; k++ {
		for j, m := range to.Moduli {
			exp := new(big.Int).Mod(want[k], new(big.Int).SetUint64(m.Q)).Uint64()
			if out[j][k] != exp {
				t.Fatalf("coeff %d limb %d: got %d want %d", k, j, out[j][k], exp)
			}
		}
	}
}

func TestConvertApproxOverflowBounded(t *testing.T) {
	from, to := testBases(t)
	conv, err := NewConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	n := 32
	in := AllocLimbs(from.L(), n)
	xs := make([]*big.Int, n)
	for k := 0; k < n; k++ {
		x := new(big.Int).Rand(rng, from.Q)
		xs[k] = x
		res := from.Encode(x)
		for i := range in {
			in[i][k] = res[i]
		}
	}
	out := conv.ConvertApprox(in)
	bound := conv.OverflowBound()
	for k := 0; k < n; k++ {
		// The approximate result must equal x + e·Q mod p for a single
		// e in [0, L) consistent across all target limbs.
		found := false
		for e := uint64(0); e < bound; e++ {
			ok := true
			shifted := new(big.Int).Add(xs[k], new(big.Int).Mul(new(big.Int).SetUint64(e), from.Q))
			for j, m := range to.Moduli {
				exp := new(big.Int).Mod(shifted, new(big.Int).SetUint64(m.Q)).Uint64()
				if out[j][k] != exp {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("coeff %d: approx result not of the form x + e·Q for e < %d", k, bound)
		}
	}
}

func TestStep2MatchesNaiveMatMul(t *testing.T) {
	from, to := testBases(t)
	conv, err := NewConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n := 16
	y := AllocLimbs(from.L(), n)
	for i, m := range from.Moduli {
		for k := range y[i] {
			y[i][k] = rng.Uint64() % m.Q
		}
	}
	out := AllocLimbs(to.L(), n)
	conv.Step2(out, y)
	tab := conv.Table()
	for j, m := range to.Moduli {
		for k := 0; k < n; k++ {
			var want uint64
			for i := range y {
				want = m.AddMod(want, m.MulMod(y[i][k]%m.Q, tab[j][i]))
			}
			if out[j][k] != want {
				t.Fatalf("limb %d coeff %d: got %d want %d", j, k, out[j][k], want)
			}
		}
	}
}

func TestCopyLimbs(t *testing.T) {
	in := AllocLimbs(2, 4)
	in[0][0] = 7
	out := CopyLimbs(in)
	out[0][0] = 9
	if in[0][0] != 7 {
		t.Fatal("CopyLimbs aliases input")
	}
	if CopyLimbs(nil) != nil {
		t.Fatal("CopyLimbs(nil) should be nil")
	}
}

// Property: Encode/Decode is a bijection on [0, Q).
func TestEncodeDecodeQuick(t *testing.T) {
	b := MustBasis([]uint64{12289, 40961, 65537})
	f := func(lo, hi uint64) bool {
		x := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 32)
		x.Add(x, new(big.Int).SetUint64(lo))
		x.Mod(x, b.Q)
		return b.Decode(b.Encode(x)).Cmp(x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is a ring homomorphism limb-wise.
func TestRNSHomomorphismQuick(t *testing.T) {
	b := MustBasis([]uint64{12289, 40961, 65537})
	f := func(a0, b0 uint64) bool {
		x := new(big.Int).Mod(new(big.Int).SetUint64(a0), b.Q)
		y := new(big.Int).Mod(new(big.Int).SetUint64(b0), b.Q)
		rx, ry := b.Encode(x), b.Encode(y)
		sum := b.Encode(new(big.Int).Add(x, y))
		prod := b.Encode(new(big.Int).Mul(x, y))
		for i, m := range b.Moduli {
			if m.AddMod(rx[i], ry[i]) != sum[i] {
				return false
			}
			if m.MulMod(rx[i], ry[i]) != prod[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
