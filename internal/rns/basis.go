// Package rns implements the Residue Number System substrate (§II-A3).
//
// RNS represents a coefficient a ∈ [0, Q) by its residues modulo a chain
// of pairwise-coprime primes {q_0, ..., q_{L-1}} with Q = Π q_i; each
// residue vector of a degree-N polynomial is a "limb". The package
// provides the basis bookkeeping, exact CRT reconstruction (for tests and
// for the encoder), and the fast Basis Conversion (BConv) kernel of
// Fig. 15b, whose step 2 is the (N, L, L')-ModMatMul that BAT accelerates
// on the matrix engine (Tab. VI).
package rns

import (
	"fmt"
	"math/big"

	"cross/internal/modarith"
)

// Basis is an ordered set of RNS moduli B = {q_0, ..., q_{L-1}}.
// It precomputes, for every prime, q̂_i = Q/q_i and its inverse mod q_i —
// the constants of the CRT reconstruction and of BConv step 1.
type Basis struct {
	Moduli []*modarith.Modulus
	Q      *big.Int // Π q_i

	// qHatInv[i] = (Q/q_i)⁻¹ mod q_i, the step-1 constant of Fig. 15b.
	qHatInv []uint64
	// qHatInvShoup[i] is its Shoup quotient for the VPU fast path.
	qHatInvShoup []uint64
	// qHat[i] = Q/q_i as a big integer (used by exact reconstruction).
	qHat []*big.Int
}

// NewBasis builds a Basis from a list of distinct primes.
func NewBasis(primes []uint64) (*Basis, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	seen := make(map[uint64]bool, len(primes))
	for _, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("rns: duplicate modulus %d", q)
		}
		seen[q] = true
	}
	moduli, err := modarith.NewModuli(primes)
	if err != nil {
		return nil, err
	}
	b := &Basis{
		Moduli:       moduli,
		Q:            big.NewInt(1),
		qHatInv:      make([]uint64, len(primes)),
		qHatInvShoup: make([]uint64, len(primes)),
		qHat:         make([]*big.Int, len(primes)),
	}
	for _, q := range primes {
		b.Q.Mul(b.Q, new(big.Int).SetUint64(q))
	}
	for i, m := range moduli {
		qi := new(big.Int).SetUint64(m.Q)
		hat := new(big.Int).Div(b.Q, qi)
		b.qHat[i] = hat
		hatModQi := new(big.Int).Mod(hat, qi).Uint64()
		b.qHatInv[i] = m.InvMod(hatModQi)
		b.qHatInvShoup[i] = m.ShoupPrecompute(b.qHatInv[i])
	}
	return b, nil
}

// MustBasis is NewBasis that panics on error.
func MustBasis(primes []uint64) *Basis {
	b, err := NewBasis(primes)
	if err != nil {
		panic(err)
	}
	return b
}

// L returns the number of limbs in the basis.
func (b *Basis) L() int { return len(b.Moduli) }

// Primes returns the raw prime list.
func (b *Basis) Primes() []uint64 {
	out := make([]uint64, len(b.Moduli))
	for i, m := range b.Moduli {
		out[i] = m.Q
	}
	return out
}

// Prefix returns a Basis over the first l primes — the level-l ciphertext
// modulus chain Q_l used after l < L rescalings.
func (b *Basis) Prefix(l int) (*Basis, error) {
	if l <= 0 || l > len(b.Moduli) {
		return nil, fmt.Errorf("rns: prefix length %d out of range [1, %d]", l, len(b.Moduli))
	}
	return NewBasis(b.Primes()[:l])
}

// Extend returns a new Basis of this basis' primes followed by extra —
// e.g. Q‖P for hybrid key switching.
func (b *Basis) Extend(extra []uint64) (*Basis, error) {
	return NewBasis(append(b.Primes(), extra...))
}

// QHatInv returns the step-1 BConv constant (Q/q_i)⁻¹ mod q_i.
func (b *Basis) QHatInv(i int) uint64 { return b.qHatInv[i] }

// Encode maps a non-negative big integer x (reduced mod Q) to its
// residues, one per limb.
func (b *Basis) Encode(x *big.Int) []uint64 {
	t := new(big.Int).Mod(x, b.Q) // also normalises negatives to [0, Q)
	out := make([]uint64, len(b.Moduli))
	r := new(big.Int)
	for i, m := range b.Moduli {
		out[i] = r.Mod(t, new(big.Int).SetUint64(m.Q)).Uint64()
	}
	return out
}

// Decode reconstructs x ∈ [0, Q) from residues via exact CRT:
// x = Σ_i [res_i · q̂_i⁻¹]_{q_i} · q̂_i  (mod Q).
func (b *Basis) Decode(res []uint64) *big.Int {
	if len(res) != len(b.Moduli) {
		panic("rns: residue count mismatch")
	}
	acc := new(big.Int)
	term := new(big.Int)
	for i, m := range b.Moduli {
		yi := m.MulMod(res[i]%m.Q, b.qHatInv[i])
		term.SetUint64(yi)
		term.Mul(term, b.qHat[i])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, b.Q)
}

// DecodeCentered reconstructs x as a signed integer in [-Q/2, Q/2).
func (b *Basis) DecodeCentered(res []uint64) *big.Int {
	x := b.Decode(res)
	half := new(big.Int).Rsh(b.Q, 1)
	if x.Cmp(half) >= 0 {
		x.Sub(x, b.Q)
	}
	return x
}
