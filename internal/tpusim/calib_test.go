package tpusim

import "testing"

// A zero Calibration must resolve to the documented identity and price
// bit-identically to an explicitly-resolved one — the property that
// keeps the committed sweep baseline byte-stable while the calibration
// fields exist.
func TestCalibrationZeroIsIdentity(t *testing.T) {
	for _, spec := range AllSpecs() {
		if !spec.Calib.IsZero() {
			t.Fatalf("%s: factory spec carries a non-zero calibration %+v", spec.Name, spec.Calib)
		}
		resolved := spec.Calib.Resolve(spec)
		want := Calibration{
			LaunchOverhead: spec.DispatchOverhead,
			HBMFraction:    1,
			VMEMFraction:   1,
			NTTEfficiency:  1,
		}
		if resolved != want {
			t.Fatalf("%s: Resolve = %+v, want %+v", spec.Name, resolved, want)
		}

		plain := NewDevice(spec)
		explicit := NewDevice(spec.WithCalibration(resolved))
		cases := []struct {
			name   string
			plainT float64
			calT   float64
		}{
			{"dispatch", plain.DispatchTime(), explicit.DispatchTime()},
			{"matmul", plain.MatMulINT8Time(100, 300, 200), explicit.MatMulINT8Time(100, 300, 200)},
			{"vecop", plain.VecOpTime(1<<13, 10), explicit.VecOpTime(1<<13, 10)},
			{"hbm", plain.HBMTime(1 << 20), explicit.HBMTime(1 << 20)},
			{"copy", plain.CopyTime(1 << 16), explicit.CopyTime(1 << 16)},
		}
		for _, c := range cases {
			if c.plainT != c.calT {
				t.Errorf("%s/%s: zero-calib %v != resolved-calib %v (must be bit-identical)",
					spec.Name, c.name, c.plainT, c.calT)
			}
		}
	}
}

// Each constant must move exactly the term it names: halving a
// bandwidth fraction doubles that memory time, halving the efficiency
// doubles compute time, and the launch override replaces dispatch.
func TestCalibrationScalesPricing(t *testing.T) {
	spec := TPUv4()

	t.Run("launch override", func(t *testing.T) {
		d := NewDevice(spec.WithCalibration(Calibration{LaunchOverhead: 42e-6}))
		if got := d.DispatchTime(); got != 42e-6 {
			t.Fatalf("DispatchTime = %v, want the 42µs override", got)
		}
	})

	t.Run("hbm fraction", func(t *testing.T) {
		base := NewDevice(spec).HBMTime(1 << 20)
		half := NewDevice(spec.WithCalibration(Calibration{HBMFraction: 0.5})).HBMTime(1 << 20)
		if half != 2*base {
			t.Fatalf("HBMTime at fraction 0.5 = %v, want 2× the peak-time %v", half, base)
		}
	})

	t.Run("vmem fraction", func(t *testing.T) {
		base := NewDevice(spec).CopyTime(1 << 16)
		half := NewDevice(spec.WithCalibration(Calibration{VMEMFraction: 0.5})).CopyTime(1 << 16)
		if half != 2*base {
			t.Fatalf("CopyTime at fraction 0.5 = %v, want 2× the peak-time %v", half, base)
		}
	})

	t.Run("ntt efficiency", func(t *testing.T) {
		// A huge compute-bound matmul: compute dominates the roofline on
		// both sides, so halving efficiency should double the time up to
		// the constant fill term.
		d := NewDevice(spec)
		base := d.MatMulINT8Time(1<<13, 1<<13, 1<<13)
		half := NewDevice(spec.WithCalibration(Calibration{NTTEfficiency: 0.5})).MatMulINT8Time(1<<13, 1<<13, 1<<13)
		if half <= 1.9*base {
			t.Fatalf("compute-bound MatMulINT8Time at efficiency 0.5 = %v, want ≈2× %v", half, base)
		}
	})
}
