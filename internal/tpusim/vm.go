package tpusim

import "fmt"

// VM models a single-host TPU virtual machine: a group of tensor cores
// sharing one CPU host (§V-A "a TPU-VM refers to a group of TPU chips
// that share the same CPU host"). The paper's multi-core methodology is
// embarrassingly parallel — "we run the same kernel on each tensor core
// and report amortized single-batch latency" — which VM reproduces.
type VM struct {
	Spec  Spec
	Cores int
}

// Paper VM configurations (Tab. IV: v4-8, v5litepod-4, v5p-8, v6e-8).
func VMv4() VM  { return VM{Spec: TPUv4(), Cores: 8} }
func VMv5e() VM { return VM{Spec: TPUv5e(), Cores: 4} }
func VMv5p() VM { return VM{Spec: TPUv5p(), Cores: 8} }
func VMv6e() VM { return VM{Spec: TPUv6e(), Cores: 8} }

// AllVMs returns the four paper setups.
func AllVMs() []VM { return []VM{VMv4(), VMv5e(), VMv5p(), VMv6e()} }

// VMByName resolves a setup by its spec name.
func VMByName(name string) (VM, bool) {
	for _, vm := range AllVMs() {
		if vm.Spec.Name == name {
			return vm, true
		}
	}
	return VM{}, false
}

// Name renders the paper's setup naming ("TPUv6e-8").
func (vm VM) Name() string { return fmt.Sprintf("%s-%d", vm.Spec.Name, vm.Cores) }

// AmortizedLatency converts one core's kernel latency to the VM-level
// amortized single-batch latency: all cores run independent instances,
// so per-instance latency divides by the core count.
func (vm VM) AmortizedLatency(perCore float64) float64 {
	return perCore / float64(vm.Cores)
}

// Throughput converts one core's throughput to the VM's.
func (vm VM) Throughput(perCore float64) float64 {
	return perCore * float64(vm.Cores)
}

// PowerW returns the VM's approximate power draw.
func (vm VM) PowerW() float64 { return vm.Spec.WattsPerCore * float64(vm.Cores) }

// CoresForPower returns how many of this generation's cores fit a
// power envelope (the §V-A power-matching rule, at least one core).
func (vm VM) CoresForPower(watts float64) int {
	n := int(watts / vm.Spec.WattsPerCore)
	if n < 1 {
		n = 1
	}
	if n > vm.Cores {
		n = vm.Cores
	}
	return n
}
