package tpusim

import (
	"fmt"
	"math"
)

// Pod models a multi-core TPU slice: N identical tensor cores joined by
// the inter-chip interconnect (ICI). Where VM reproduces the paper's
// embarrassingly-parallel methodology (independent instances per core,
// §V-A), Pod models cooperative execution of ONE kernel sharded across
// cores — the multi-chip scenario the paper leaves as future work and
// the ROADMAP's scaling axis.
//
// Collective times follow the standard ring-algorithm cost model
// (bandwidth-optimal on the TPU's torus, which embeds a ring): a
// payload of B bytes over n cores costs
//
//	AllReduce:     2(n−1) steps of B/n bytes  (reduce-scatter + all-gather)
//	AllGather:      (n−1) steps of B/n bytes
//	ReduceScatter:  (n−1) steps of B/n bytes
//	Broadcast:    ⌈log₂n⌉ steps of B bytes    (binomial tree)
//
// with every step additionally paying the per-hop ICILatency. The model
// is deliberately contention-free: CROSS's collectives are all
// nearest-neighbour ring phases, which the torus routes without link
// sharing.
type Pod struct {
	Spec  Spec
	Cores []*Device
	// Trace accumulates collective (ICI) time, which belongs to the pod
	// rather than to any single core.
	Trace *Trace
}

// NewPod builds an n-core pod of one generation. Every core gets its
// own empty trace; per-kernel latency on a symmetric (SPMD) schedule is
// the time of core 0 plus the pod's collective time.
func NewPod(spec Spec, cores int) (*Pod, error) {
	if cores < 1 {
		return nil, fmt.Errorf("tpusim: pod needs at least one core, got %d", cores)
	}
	p := &Pod{Spec: spec, Cores: make([]*Device, cores), Trace: NewTrace()}
	for i := range p.Cores {
		p.Cores[i] = NewDevice(spec)
	}
	return p, nil
}

// MustPod is NewPod that panics on error.
func MustPod(spec Spec, cores int) *Pod {
	p, err := NewPod(spec, cores)
	if err != nil {
		panic(err)
	}
	return p
}

// NumCores returns the core count.
func (p *Pod) NumCores() int { return len(p.Cores) }

// Core returns the representative tensor core (core 0). The pod's
// schedules are SPMD over symmetric cores, so core 0's trace stands for
// every core's compute time.
func (p *Pod) Core() *Device {
	if p == nil || len(p.Cores) == 0 {
		return nil
	}
	return p.Cores[0]
}

// CollectiveTrace exposes the pod's interconnect (ICI) trace.
func (p *Pod) CollectiveTrace() *Trace { return p.Trace }

// SetCollectiveTrace swaps the interconnect trace — used by the
// compiler to cost schedules without polluting the live trace.
func (p *Pod) SetCollectiveTrace(t *Trace) { p.Trace = t }

// Name renders the slice naming ("TPUv6e-4").
func (p *Pod) Name() string { return fmt.Sprintf("%s-%d", p.Spec.Name, len(p.Cores)) }

// Reset clears every core trace and the pod's collective trace.
func (p *Pod) Reset() {
	for _, d := range p.Cores {
		d.Trace.Reset()
	}
	p.Trace.Reset()
}

// step is the time of one ring phase moving `bytes` over one hop.
func (p *Pod) step(bytes float64) float64 {
	return bytes/p.Spec.ICIBandwidth + p.Spec.ICILatency
}

// AllReduceTime models a ring all-reduce of a `bytes` payload: every
// core ends with the element-wise reduction of all cores' buffers.
func (p *Pod) AllReduceTime(bytes int64) float64 {
	n := len(p.Cores)
	if n == 1 {
		return 0
	}
	return 2 * float64(n-1) * p.step(float64(bytes)/float64(n))
}

// AllGatherTime models a ring all-gather: the `bytes` payload is the
// FULL gathered buffer, of which each core contributes bytes/n.
func (p *Pod) AllGatherTime(bytes int64) float64 {
	n := len(p.Cores)
	if n == 1 {
		return 0
	}
	return float64(n-1) * p.step(float64(bytes)/float64(n))
}

// ReduceScatterTime models a ring reduce-scatter of a `bytes` payload:
// each core ends with its bytes/n shard of the reduction.
func (p *Pod) ReduceScatterTime(bytes int64) float64 {
	n := len(p.Cores)
	if n == 1 {
		return 0
	}
	return float64(n-1) * p.step(float64(bytes)/float64(n))
}

// BroadcastTime models a binomial-tree broadcast of `bytes` from one
// core to all others.
func (p *Pod) BroadcastTime(bytes int64) float64 {
	n := len(p.Cores)
	if n == 1 {
		return 0
	}
	steps := math.Ceil(math.Log2(float64(n)))
	return steps * p.step(float64(bytes))
}

// AllReduce charges a ring all-reduce to the pod trace.
func (p *Pod) AllReduce(bytes int64) float64 {
	t := p.AllReduceTime(bytes)
	p.Trace.Add(CatICI, t)
	return t
}

// AllGather charges a ring all-gather to the pod trace.
func (p *Pod) AllGather(bytes int64) float64 {
	t := p.AllGatherTime(bytes)
	p.Trace.Add(CatICI, t)
	return t
}

// ReduceScatter charges a ring reduce-scatter to the pod trace.
func (p *Pod) ReduceScatter(bytes int64) float64 {
	t := p.ReduceScatterTime(bytes)
	p.Trace.Add(CatICI, t)
	return t
}

// Broadcast charges a tree broadcast to the pod trace.
func (p *Pod) Broadcast(bytes int64) float64 {
	t := p.BroadcastTime(bytes)
	p.Trace.Add(CatICI, t)
	return t
}

// TotalSeconds returns the pod-level latency of the schedule executed
// so far: the busiest core's trace plus all collective time (the SPMD
// critical path — cores synchronise at every collective).
func (p *Pod) TotalSeconds() float64 {
	var busiest float64
	for _, d := range p.Cores {
		if t := d.Trace.Total(); t > busiest {
			busiest = t
		}
	}
	return busiest + p.Trace.Total()
}
