package tpusim

import "math"

// Device is one simulated tensor core: a Spec plus a running trace.
// Methods return the charged time in seconds and record it, so kernels
// can be costed compositionally. The model is deliberately serial —
// the paper's CROSS implementation does not pipeline across kernels
// (§V-E "Limited Inter-Kernel Optimization"), so op times add.
type Device struct {
	Spec  Spec
	Trace *Trace

	// collective is the device's interconnect trace. A bare core has no
	// interconnect, so nothing ever charges it — but it is owned and
	// swappable like a Pod's, so targets present one uniform collective
	// face and callers never need a nil-guard.
	collective *Trace
}

// NewDevice returns a device with empty compute and collective traces.
func NewDevice(spec Spec) *Device {
	return &Device{Spec: spec, Trace: NewTrace(), collective: NewTrace()}
}

// --- Target face ---
//
// A Device is the degenerate one-core lowering target: it satisfies the
// same method set as Pod (cross.Target), with every collective free and
// chargeless. This is what lets one compiler code path lower onto cores
// and pods alike — a 1-core pod and a bare device are bit-identical.

// Core returns the device itself: a single tensor core is its own
// representative core.
func (d *Device) Core() *Device { return d }

// NumCores reports the core count of the target (always 1).
func (d *Device) NumCores() int { return 1 }

// Name renders the target name ("TPUv6e").
func (d *Device) Name() string { return d.Spec.Name }

// AllGather is free on a single core (nothing to gather across).
func (d *Device) AllGather(bytes int64) float64 { return 0 }

// AllReduce is free on a single core.
func (d *Device) AllReduce(bytes int64) float64 { return 0 }

// Broadcast is free on a single core.
func (d *Device) Broadcast(bytes int64) float64 { return 0 }

// CollectiveTrace reports the interconnect trace. A bare core has no
// interconnect, so the trace stays empty — but it is always a real,
// owned trace, never nil, so a Device and a Pod take the identical
// costing code path (see Pod.CollectiveTrace).
func (d *Device) CollectiveTrace() *Trace { return d.collective }

// SetCollectiveTrace swaps the interconnect trace — the same hook
// trace-isolated costing uses on a Pod (see Pod.SetCollectiveTrace).
func (d *Device) SetCollectiveTrace(t *Trace) { d.collective = t }

// Reset clears the device's compute and collective traces.
func (d *Device) Reset() {
	d.Trace.Reset()
	d.collective.Reset()
}

// ceilDiv rounds the quotient up.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// MatMulINT8Time models an M×K by K×W INT8 matrix multiplication on the
// MXU. Dimensions are padded to the systolic tile (the zero padding the
// paper notes for non-128-divisible reduction dims in Tab. VI), compute
// runs at the core's peak MAC rate over the padded volume, and the
// roofline takes the max against streaming the operands through VMEM.
func (d *Device) MatMulINT8Time(m, k, w int) float64 {
	t := d.Spec.MXUDim
	mp := ceilDiv(m, t) * t
	kp := ceilDiv(k, t) * t
	wp := ceilDiv(w, t) * t
	macs := float64(mp) * float64(kp) * float64(wp)
	compute := macs / d.Spec.EffectivePeakMACs()
	// Pipeline fill: one pass of the array per K-tile column.
	fill := float64(ceilDiv(kp, t)) * float64(t) / d.Spec.ClockHz
	// Operand streaming: A and B read once (INT8), C written (INT32).
	// Reads and writes price against their own VMEM ports — Tab. IV
	// carries a ~2–3× read/write asymmetry, so folding the INT32 output
	// stream into read bandwidth understates memory time.
	readBytes := float64(mp*kp) + float64(kp*wp)
	writeBytes := 4 * float64(mp*wp)
	mem := readBytes/d.Spec.EffectiveVMEMReadBW() + writeBytes/d.Spec.EffectiveVMEMWriteBW()
	return math.Max(compute+fill, mem)
}

// MatMulINT8 charges an INT8 MXU matmul to a trace category.
func (d *Device) MatMulINT8(category string, m, k, w int) float64 {
	t := d.MatMulINT8Time(m, k, w)
	d.Trace.Add(category, t)
	return t
}

// MXUUtilization reports the fraction of the padded systolic volume
// doing useful work — the utilization metric behind Tab. V/VI analysis.
func (d *Device) MXUUtilization(m, k, w int) float64 {
	t := d.Spec.MXUDim
	mp := ceilDiv(m, t) * t
	kp := ceilDiv(k, t) * t
	wp := ceilDiv(w, t) * t
	return (float64(m) * float64(k) * float64(w)) / (float64(mp) * float64(kp) * float64(wp))
}

// VecOpTime models an element-wise VPU kernel over n 32-bit lanes where
// each output element costs opsPerElem ALU operations (e.g. a Harvey
// butterfly ≈ 6, a Montgomery VecModMul ≈ 10 — Alg. 1's op count).
// VReg granularity: n is padded to the (8,128) = 1024-element register
// group the TPU operates in lock step (§III-B2).
func (d *Device) VecOpTime(n int, opsPerElem float64) float64 {
	vreg := d.Spec.VPULanes * d.Spec.VPUSublanes
	np := ceilDiv(n, vreg) * vreg
	derate := d.Spec.VPUDerate
	if derate < 1 {
		derate = 1
	}
	compute := float64(np) * opsPerElem * derate / d.Spec.EffectiveVPUOps()
	// Every materialised HLO stage round-trips VMEM: opsPerElem stages
	// each streaming a 64-bit intermediate word pair in and the 64-bit
	// result back out (~8 bytes each way per element-stage). The two
	// halves of the round trip price against their own ports — write
	// bandwidth is 2–3× lower than read on v4/v5e/v6e (Tab. IV).
	stageBytes := float64(np) * 8 * opsPerElem
	mem := stageBytes/d.Spec.EffectiveVMEMReadBW() + stageBytes/d.Spec.EffectiveVMEMWriteBW()
	return math.Max(compute, mem)
}

// DispatchTime is the fixed XLA kernel-launch overhead (calibrated:
// Spec.Calib.LaunchOverhead when set, Spec.DispatchOverhead otherwise).
func (d *Device) DispatchTime() float64 { return d.Spec.EffectiveDispatch() }

// Dispatch charges one kernel launch to a category.
func (d *Device) Dispatch(category string) float64 {
	t := d.DispatchTime()
	d.Trace.Add(category, t)
	return t
}

// VecOp charges an element-wise VPU kernel.
func (d *Device) VecOp(category string, n int, opsPerElem float64) float64 {
	t := d.VecOpTime(n, opsPerElem)
	d.Trace.Add(category, t)
	return t
}

// TransposeTime models an XLU matrix transpose of n contiguous 32-bit
// elements — full-lane blocks move at XLUElemsPerCycle.
func (d *Device) TransposeTime(n int) float64 {
	return float64(n) / (float64(d.Spec.XLUElemsPerCycle) * d.Spec.ClockHz)
}

// Transpose charges an XLU transpose.
func (d *Device) Transpose(category string, n int) float64 {
	t := d.TransposeTime(n)
	d.Trace.Add(category, t)
	return t
}

// ShuffleTime models an XLU shuffle of n 32-bit elements that moves
// contiguous blocks of blockElems. Blocks smaller than a full VReg row
// waste lanes proportionally (§III-D1's tile-utilization collapse): the
// effective rate scales by min(1, blockElems/XLUElemsPerCycle). This is
// what makes per-stage bit-complement shuffling of the radix-2 NTT
// catastrophic on the TPU (Tab. X).
func (d *Device) ShuffleTime(n, blockElems int) float64 {
	if blockElems < 1 {
		blockElems = 1
	}
	// Blocks must fill a whole (8,128) VReg tile for full throughput;
	// smaller blocks waste the remaining lanes of every crossing —
	// §III-D's tile-utilization collapse.
	grain := d.Spec.VPUSublanes * d.Spec.VPULanes
	util := math.Min(1, float64(blockElems)/float64(grain))
	rate := float64(d.Spec.XLUElemsPerCycle) * d.Spec.ClockHz * util
	return float64(n) / rate
}

// Shuffle charges an XLU block shuffle.
func (d *Device) Shuffle(category string, n, blockElems int) float64 {
	t := d.ShuffleTime(n, blockElems)
	d.Trace.Add(category, t)
	return t
}

// GatherTime models a random gather/scatter of n elements — MAT's
// fallback for permutations it cannot embed (automorphism, §V-E).
func (d *Device) GatherTime(n int) float64 {
	return float64(n) / (float64(d.Spec.GatherElemsPerCycle) * d.Spec.ClockHz)
}

// Gather charges a random gather/scatter.
func (d *Device) Gather(category string, n int) float64 {
	t := d.GatherTime(n)
	d.Trace.Add(category, t)
	return t
}

// TypeConvertTime models the 32-bit↔byte relayout BAT inserts when
// chunk-stacking runtime operands (Fig. 12's 4% "Type Conversion").
func (d *Device) TypeConvertTime(n int) float64 {
	return d.VecOpTime(n, 2)
}

// TypeConvert charges a chunk-stack/merge conversion.
func (d *Device) TypeConvert(category string, n int) float64 {
	t := d.TypeConvertTime(n)
	d.Trace.Add(category, t)
	return t
}

// HBMTime models off-chip traffic of the given bytes.
func (d *Device) HBMTime(bytes int64) float64 {
	return float64(bytes) / d.Spec.EffectiveHBMBW()
}

// HBM charges off-chip traffic.
func (d *Device) HBM(category string, bytes int64) float64 {
	t := d.HBMTime(bytes)
	d.Trace.Add(category, t)
	return t
}

// CopyTime models an on-chip VMEM-to-VMEM copy/reshape.
func (d *Device) CopyTime(bytes int64) float64 {
	return float64(bytes) / d.Spec.EffectiveVMEMWriteBW()
}

// Copy charges an on-chip copy/reshape.
func (d *Device) Copy(category string, bytes int64) float64 {
	t := d.CopyTime(bytes)
	d.Trace.Add(category, t)
	return t
}

// FitsOnChip reports whether a working set fits the core's on-chip
// memory — the capacity test behind the batch-size knees of Fig. 11b.
func (d *Device) FitsOnChip(bytes int64) bool {
	return bytes <= d.Spec.OnChipCapacity
}
