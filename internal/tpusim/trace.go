package tpusim

import (
	"fmt"
	"sort"
	"strings"
)

// Category labels match the paper's Fig. 12 latency-breakdown legend so
// that the profiler output can be compared side by side. The vocabulary
// is shared across hardware backends (tpusim, gpusim): every backend
// charges the same compute categories so breakdowns compare across
// hardware, and each interconnect charges its own collective label
// (CatICI for the TPU fabric, CatNVLink for the GPU node fabric).
const (
	CatNTTMatMul   = "NTT-MatMul"
	CatINTTMatMul  = "INTT-MatMul"
	CatBConvMatMul = "BConv-MatMul"
	CatVecModOps   = "VecModOps"
	CatPermutation = "Permutation"
	CatTypeConv    = "Type Conversion"
	CatCopyReshape = "Copy+Reshape"
	CatHBM         = "HBM Traffic"
	CatICI         = "ICI Collective"
	CatNVLink      = "NVLink Collective"
	CatOther       = "Other"
)

// Trace accumulates simulated time per category — the reproduction's
// stand-in for the XLA profiler's trace viewer (§V-A methodology).
type Trace struct {
	seconds  map[string]float64
	order    []string
	observer func(category string, seconds float64)
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{seconds: make(map[string]float64)}
}

// Observe installs f as the trace's segment observer: every subsequent
// Add is reported to f in charge order, before the category total
// updates. This is the hook the compiler's DAG builder uses to turn a
// lowering's additive charge stream into dependency-DAG nodes; pass nil
// to detach. A trace has at most one observer and is not synchronised —
// observation is only meaningful while the trace is charged from a
// single goroutine (which Compiler.LowerOp guarantees).
func (t *Trace) Observe(f func(category string, seconds float64)) {
	t.observer = f
}

// Add charges d seconds to a category.
func (t *Trace) Add(category string, d float64) {
	if t.observer != nil {
		t.observer(category, d)
	}
	if _, ok := t.seconds[category]; !ok {
		t.order = append(t.order, category)
	}
	t.seconds[category] += d
}

// Total returns the summed simulated seconds.
func (t *Trace) Total() float64 {
	var s float64
	for _, v := range t.seconds {
		s += v
	}
	return s
}

// Seconds returns the time charged to one category.
func (t *Trace) Seconds(category string) float64 { return t.seconds[category] }

// Categories returns the charged categories in first-charge order — the
// deterministic iteration order map-based ByCategory cannot give.
func (t *Trace) Categories() []string {
	return append([]string(nil), t.order...)
}

// ByCategory returns a copy of the category map.
func (t *Trace) ByCategory() map[string]float64 {
	out := make(map[string]float64, len(t.seconds))
	for k, v := range t.seconds {
		out[k] = v
	}
	return out
}

// Reset clears the trace.
func (t *Trace) Reset() {
	t.seconds = make(map[string]float64)
	t.order = nil
}

// Breakdown renders the trace as percentage lines sorted by share,
// mirroring Fig. 12's horizontal bars.
func (t *Trace) Breakdown() string {
	total := t.Total()
	if total == 0 {
		return "(empty trace)"
	}
	cats := append([]string(nil), t.order...)
	sort.Slice(cats, func(i, j int) bool {
		return t.seconds[cats[i]] > t.seconds[cats[j]]
	})
	var b strings.Builder
	for _, c := range cats {
		fmt.Fprintf(&b, "%-16s %6.2f%%  (%.2f µs)\n", c, 100*t.seconds[c]/total, t.seconds[c]*1e6)
	}
	return b.String()
}
