package tpusim

import (
	"math"
	"testing"
)

func TestNewPodValidation(t *testing.T) {
	if _, err := NewPod(TPUv6e(), 0); err == nil {
		t.Error("expected error for zero cores")
	}
	p, err := NewPod(TPUv6e(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 4 || len(p.Cores) != 4 {
		t.Errorf("core count = %d", p.NumCores())
	}
	if p.Name() != "TPUv6e-4" {
		t.Errorf("name = %q", p.Name())
	}
	for _, d := range p.Cores {
		if d.Spec.Name != "TPUv6e" {
			t.Error("core spec mismatch")
		}
	}
}

func TestSingleCoreCollectivesAreFree(t *testing.T) {
	p := MustPod(TPUv5p(), 1)
	for name, f := range map[string]func(int64) float64{
		"allreduce":     p.AllReduceTime,
		"allgather":     p.AllGatherTime,
		"reducescatter": p.ReduceScatterTime,
		"broadcast":     p.BroadcastTime,
	} {
		if got := f(1 << 20); got != 0 {
			t.Errorf("%s on 1 core = %g, want 0", name, got)
		}
	}
}

func TestCollectiveCostModel(t *testing.T) {
	p := MustPod(TPUv6e(), 4)
	bytes := int64(4 << 20)
	chunk := float64(bytes) / 4

	wantAR := 2 * 3 * (chunk/p.Spec.ICIBandwidth + p.Spec.ICILatency)
	if got := p.AllReduceTime(bytes); math.Abs(got-wantAR) > 1e-12 {
		t.Errorf("allreduce = %g want %g", got, wantAR)
	}
	wantAG := 3 * (chunk/p.Spec.ICIBandwidth + p.Spec.ICILatency)
	if got := p.AllGatherTime(bytes); math.Abs(got-wantAG) > 1e-12 {
		t.Errorf("allgather = %g want %g", got, wantAG)
	}
	if got, want := p.AllReduceTime(bytes), 2*p.ReduceScatterTime(bytes); math.Abs(got-want) > 1e-12 {
		t.Error("allreduce should equal reduce-scatter + all-gather")
	}
	wantBC := 2 * (float64(bytes)/p.Spec.ICIBandwidth + p.Spec.ICILatency)
	if got := p.BroadcastTime(bytes); math.Abs(got-wantBC) > 1e-12 {
		t.Errorf("broadcast = %g want %g", got, wantBC)
	}
}

// TestBroadcastNonPowerOfTwoCores pins the binomial-tree step count on
// pod sizes that are not powers of two: ⌈log₂n⌉ rounds, each moving
// the full payload over one hop.
func TestBroadcastNonPowerOfTwoCores(t *testing.T) {
	bytes := int64(4 << 20)
	cases := []struct {
		cores int
		steps float64
	}{
		{3, 2}, // ⌈log₂3⌉
		{5, 3}, // ⌈log₂5⌉
		{6, 3}, // ⌈log₂6⌉
	}
	for _, tc := range cases {
		p := MustPod(TPUv5e(), tc.cores)
		want := tc.steps * (float64(bytes)/p.Spec.ICIBandwidth + p.Spec.ICILatency)
		if got := p.BroadcastTime(bytes); math.Abs(got-want) > 1e-12 {
			t.Errorf("%d cores: broadcast = %g, want %g (%g steps)", tc.cores, got, want, tc.steps)
		}
	}
	// Monotone in core count even across the non-power-of-two sizes.
	for _, pair := range [][2]int{{2, 3}, {4, 5}, {5, 6}} {
		lo := MustPod(TPUv5e(), pair[0]).BroadcastTime(bytes)
		hi := MustPod(TPUv5e(), pair[1]).BroadcastTime(bytes)
		if hi < lo {
			t.Errorf("broadcast shrank from %d to %d cores: %g → %g", pair[0], pair[1], lo, hi)
		}
	}
}

// Collective time must grow with the core count for a fixed payload
// (more hops), but sub-linearly for the bandwidth term (smaller
// chunks): the scaling behaviour the sharded compiler relies on.
func TestCollectiveScaling(t *testing.T) {
	bytes := int64(8 << 20)
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16} {
		p := MustPod(TPUv4(), n)
		ar := p.AllReduceTime(bytes)
		if ar <= prev {
			t.Errorf("allreduce not increasing at %d cores", n)
		}
		prev = ar
	}
	// Bandwidth term alone converges to 2·B/BW; with latency included,
	// a 16-core all-reduce must stay under 4× the 2-core one.
	p2, p16 := MustPod(TPUv4(), 2), MustPod(TPUv4(), 16)
	if p16.AllReduceTime(bytes) > 4*p2.AllReduceTime(bytes) {
		t.Error("allreduce bandwidth term scaling badly")
	}
}

func TestPodTraceAndTotal(t *testing.T) {
	p := MustPod(TPUv6e(), 2)
	p.Cores[0].VecOp(CatVecModOps, 1<<16, 10)
	p.Cores[1].VecOp(CatVecModOps, 1<<14, 10)
	col := p.AllReduce(1 << 20)
	if p.Trace.Seconds(CatICI) != col {
		t.Error("collective not charged to pod trace")
	}
	want := p.Cores[0].Trace.Total() + col
	if math.Abs(p.TotalSeconds()-want) > 1e-15 {
		t.Errorf("TotalSeconds = %g want busiest core + collectives = %g", p.TotalSeconds(), want)
	}
	p.Reset()
	if p.TotalSeconds() != 0 {
		t.Error("reset did not clear traces")
	}
}

func TestAllSpecsHaveICI(t *testing.T) {
	for _, s := range AllSpecs() {
		if s.ICIBandwidth <= 0 || s.ICILatency <= 0 {
			t.Errorf("%s missing ICI model", s.Name)
		}
	}
}
