package tpusim

// Calibration names the roofline model's free constants — the values
// that are NOT derivable from a part's published datasheet and were,
// before the calibration harness (internal/calib, DESIGN.md §15),
// hand-picked. Each field is a correction applied on top of the Spec's
// peak figures:
//
//   - LaunchOverhead replaces Spec.DispatchOverhead as the per-kernel
//     launch cost (XLA dispatch on TPUs, CUDA launch on GPUs);
//   - HBMFraction scales peak HBM bandwidth to the effectively
//     achievable streaming rate;
//   - VMEMFraction scales the peak VMEM read/write port bandwidths
//     (and the on-chip copy rate priced against the write port);
//   - NTTEfficiency scales the peak compute rates (MXU MACs and VPU
//     ALU ops) to the throughput NTT-shaped HE kernels actually
//     sustain.
//
// The zero value means "uncalibrated": every field resolves to the
// identity (LaunchOverhead → Spec.DispatchOverhead, fractions → 1), so
// a Spec with a zero Calibration prices bit-identically to the
// pre-calibration model — the property the sweep baseline's golden
// tests pin. Fitted values come from calib.Run, which least-squares
// fits them against ground-truth measurements (host kernels, published
// TPU/GPU figures) instead of hand-picking.
type Calibration struct {
	// LaunchOverhead is the fitted per-kernel-launch cost in seconds;
	// 0 means "use Spec.DispatchOverhead".
	LaunchOverhead float64 `json:"launch_overhead_s,omitempty"`

	// HBMFraction is the effective fraction of peak HBM bandwidth in
	// (0, 1]; 0 means 1 (peak).
	HBMFraction float64 `json:"hbm_fraction,omitempty"`

	// VMEMFraction is the effective fraction of the peak VMEM read and
	// write bandwidths in (0, 1]; 0 means 1 (peak).
	VMEMFraction float64 `json:"vmem_fraction,omitempty"`

	// NTTEfficiency is the achieved fraction of peak compute throughput
	// (MXU MAC rate and VPU ALU rate alike) in NTT-shaped kernels;
	// 0 means 1 (peak). Values above 1 are permitted: they mean the
	// hand-modelled op counts overstate the work.
	NTTEfficiency float64 `json:"ntt_efficiency,omitempty"`
}

// IsZero reports whether the calibration is entirely unset (identity).
func (c Calibration) IsZero() bool { return c == Calibration{} }

// Resolve fills the zero fields with their identity defaults for a
// spec: the documented "current values" the model used before
// calibration existed.
func (c Calibration) Resolve(s Spec) Calibration {
	if c.LaunchOverhead == 0 {
		c.LaunchOverhead = s.DispatchOverhead
	}
	if c.HBMFraction == 0 {
		c.HBMFraction = 1
	}
	if c.VMEMFraction == 0 {
		c.VMEMFraction = 1
	}
	if c.NTTEfficiency == 0 {
		c.NTTEfficiency = 1
	}
	return c
}

// --- effective (calibrated) figures ---
//
// Multiplying a bandwidth by a resolved fraction of exactly 1.0 is an
// IEEE-754 identity, so an uncalibrated Spec produces bit-identical
// times through these accessors — the device pricing in device.go
// calls only these, never the raw fields.

// EffectiveDispatch returns the calibrated per-kernel launch cost.
func (s Spec) EffectiveDispatch() float64 {
	if s.Calib.LaunchOverhead > 0 {
		return s.Calib.LaunchOverhead
	}
	return s.DispatchOverhead
}

// effFraction resolves a fraction field: 0 → 1 (peak).
func effFraction(f float64) float64 {
	if f > 0 {
		return f
	}
	return 1
}

// EffectiveHBMBW returns the calibrated HBM streaming bandwidth.
func (s Spec) EffectiveHBMBW() float64 {
	return s.HBMBandwidth * effFraction(s.Calib.HBMFraction)
}

// EffectiveVMEMReadBW returns the calibrated VMEM read-port bandwidth.
func (s Spec) EffectiveVMEMReadBW() float64 {
	return s.VMEMReadBW * effFraction(s.Calib.VMEMFraction)
}

// EffectiveVMEMWriteBW returns the calibrated VMEM write-port bandwidth.
func (s Spec) EffectiveVMEMWriteBW() float64 {
	return s.VMEMWriteBW * effFraction(s.Calib.VMEMFraction)
}

// EffectivePeakMACs returns the calibrated MXU MAC rate.
func (s Spec) EffectivePeakMACs() float64 {
	return s.PeakMACs * effFraction(s.Calib.NTTEfficiency)
}

// EffectiveVPUOps returns the calibrated VPU ALU rate.
func (s Spec) EffectiveVPUOps() float64 {
	return s.VPUOps * effFraction(s.Calib.NTTEfficiency)
}

// WithCalibration returns a copy of the spec carrying the given
// calibration — the hook the fitter uses to price candidate constants.
func (s Spec) WithCalibration(c Calibration) Spec {
	s.Calib = c
	return s
}
