package tpusim

import (
	"math"
	"strings"
	"testing"
)

func TestSpecsSane(t *testing.T) {
	for _, s := range AllSpecs() {
		if s.PeakMACs <= 0 || s.VPUOps <= 0 || s.HBMBandwidth <= 0 {
			t.Errorf("%s: non-positive rates", s.Name)
		}
		if s.MXUDim != 128 && s.MXUDim != 256 {
			t.Errorf("%s: unexpected MXU dim %d", s.Name, s.MXUDim)
		}
		// The arithmetic-mismatch premise (§III-B1): MXU must dwarf VPU.
		if r := s.MXUToVPURatio(); r < 20 {
			t.Errorf("%s: MXU/VPU ratio %.1f too small to motivate BAT", s.Name, r)
		}
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"TPUv4", "TPUv5e", "TPUv5p", "TPUv6e"} {
		s, ok := SpecByName(name)
		if !ok || s.Name != name {
			t.Errorf("SpecByName(%q) failed", name)
		}
	}
	if _, ok := SpecByName("TPUv99"); ok {
		t.Error("SpecByName accepted unknown name")
	}
}

func TestGenerationOrdering(t *testing.T) {
	// Newer generations are faster: v6e > v5p > v5e > v4 in peak MACs
	// and HBM bandwidth (Tab. IV).
	specs := AllSpecs()
	for i := 1; i < len(specs); i++ {
		if specs[i].PeakMACs <= specs[i-1].PeakMACs {
			t.Errorf("%s not faster than %s", specs[i].Name, specs[i-1].Name)
		}
		if specs[i].HBMBandwidth <= specs[i-1].HBMBandwidth {
			t.Errorf("%s HBM not faster than %s", specs[i].Name, specs[i-1].Name)
		}
	}
}

func TestMatMulTimeMonotone(t *testing.T) {
	d := NewDevice(TPUv6e())
	small := d.MatMulINT8Time(256, 256, 256)
	big := d.MatMulINT8Time(2048, 2048, 2048)
	if big <= small {
		t.Error("larger matmul should take longer")
	}
	// 512³ has 8× the MACs of 256³ — compute-bound scaling should be
	// within a factor of [4, 16] (padding and fill allowed).
	a := d.MatMulINT8Time(512, 512, 512)
	b := d.MatMulINT8Time(1024, 1024, 1024)
	if ratio := b / a; ratio < 4 || ratio > 16 {
		t.Errorf("1024³/512³ time ratio %.2f outside [4,16]", ratio)
	}
}

func TestMatMulPadding(t *testing.T) {
	d := NewDevice(TPUv4())
	// A 1×1×1 matmul still pays a full tile.
	tiny := d.MatMulINT8Time(1, 1, 1)
	tile := d.MatMulINT8Time(128, 128, 128)
	if tiny != tile {
		t.Error("sub-tile matmul should cost a full tile")
	}
	if u := d.MXUUtilization(64, 128, 128); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization of half-tile = %f want 0.5", u)
	}
	if u := d.MXUUtilization(128, 128, 128); u != 1 {
		t.Errorf("full tile utilization %f", u)
	}
}

func TestVecOpVRegPadding(t *testing.T) {
	d := NewDevice(TPUv4())
	// 1 element costs the same as a full (8,128) VReg group.
	if d.VecOpTime(1, 4) != d.VecOpTime(1024, 4) {
		t.Error("sub-VReg vector op should cost a full VReg")
	}
	if d.VecOpTime(1025, 4) <= d.VecOpTime(1024, 4) {
		t.Error("VReg boundary crossing should cost more")
	}
}

func TestShuffleGranularityPenalty(t *testing.T) {
	d := NewDevice(TPUv4())
	n := 1 << 14
	full := d.ShuffleTime(n, 1024)
	fine := d.ShuffleTime(n, 1)
	if fine/full < 100 {
		t.Errorf("fine-grained shuffle penalty %.0f× too small; §III-D demands coarse-granularity collapse", fine/full)
	}
	if d.ShuffleTime(n, 2048) != full {
		t.Error("utilization should cap at 1")
	}
	if d.ShuffleTime(n, 0) != fine {
		t.Error("blockElems < 1 should clamp to 1")
	}
}

func TestGatherSlowerThanTranspose(t *testing.T) {
	d := NewDevice(TPUv6e())
	n := 1 << 16
	if d.GatherTime(n) <= d.TransposeTime(n) {
		t.Error("random gather must be slower than block transpose")
	}
}

func TestRooflineMemoryBound(t *testing.T) {
	// A skinny matmul (tiny compute, big data) must be memory-bound:
	// time ≈ bytes/BW rather than MACs/peak.
	d := NewDevice(TPUv6e())
	m, k, w := 256, 256, 256
	tm := d.MatMulINT8Time(m, k, w)
	bytes := float64(m*k+k*w) + 4*float64(m*w)
	memOnly := bytes / d.Spec.VMEMReadBW
	if tm < memOnly {
		t.Error("roofline violated: time below memory bound")
	}
}

func TestRooflineWriteAsymmetry(t *testing.T) {
	// Regression test for the roofline write path: the INT32 matmul
	// output stream must be charged at VMEMWriteBW (2–3× slower than
	// read on v4/v5e/v6e), not folded into read bandwidth.
	d := NewDevice(TPUv4())
	// Wide and shallow: the m·w INT32 output dwarfs the INT8 inputs,
	// so the kernel is write-stream-bound on v4 (write BW = ½ read BW).
	m, k, w := 8192, 128, 8192
	read := float64(m*k) + float64(k*w)
	write := 4 * float64(m) * float64(w)
	want := read/d.Spec.VMEMReadBW + write/d.Spec.VMEMWriteBW
	if got := d.MatMulINT8Time(m, k, w); math.Abs(got-want) > want*1e-12 {
		t.Errorf("write-bound matmul = %g, want split-port memory time %g", got, want)
	}
	// On every generation the write stream alone lower-bounds the
	// charged time; the pre-fix model (all bytes at read bandwidth)
	// undercuts this on v4.
	for _, s := range AllSpecs() {
		dev := NewDevice(s)
		if got, bound := dev.MatMulINT8Time(m, k, w), write/s.VMEMWriteBW; got < bound {
			t.Errorf("%s: matmul %g below write-stream bound %g", s.Name, got, bound)
		}
	}
}

func TestVecOpWriteAsymmetry(t *testing.T) {
	// Regression test: each VPU element-stage writes its 64-bit result
	// back through the (slower) write port. A big memory-bound vector
	// op must price reads and writes on separate ports.
	d := NewDevice(TPUv4())
	n, ops := 1<<20, 6.0
	stageBytes := float64(n) * 8 * ops
	want := stageBytes/d.Spec.VMEMReadBW + stageBytes/d.Spec.VMEMWriteBW
	got := d.VecOpTime(n, ops)
	if math.Abs(got-want) > want*1e-12 {
		t.Errorf("memory-bound vec op = %g, want split-port memory time %g", got, want)
	}
	// Strictly slower than the pre-fix model, which pushed the whole
	// 16-byte round trip through read bandwidth.
	if old := 2 * stageBytes / d.Spec.VMEMReadBW; got <= old {
		t.Errorf("vec op %g not slower than the all-read-bandwidth model %g", got, old)
	}
}

func TestTraceAccumulation(t *testing.T) {
	d := NewDevice(TPUv4())
	d.MatMulINT8(CatNTTMatMul, 256, 256, 256)
	d.VecOp(CatVecModOps, 4096, 10)
	d.Gather(CatPermutation, 4096)
	d.TypeConvert(CatTypeConv, 4096)
	d.HBM(CatHBM, 1<<20)
	d.Copy(CatCopyReshape, 1<<20)
	d.Transpose(CatPermutation, 1024)
	d.Shuffle(CatPermutation, 1024, 8)

	total := d.Trace.Total()
	var sum float64
	for _, v := range d.Trace.ByCategory() {
		sum += v
	}
	if math.Abs(total-sum) > 1e-15 {
		t.Error("trace total != sum of categories")
	}
	if d.Trace.Seconds(CatNTTMatMul) <= 0 {
		t.Error("category not charged")
	}
	b := d.Trace.Breakdown()
	if !strings.Contains(b, CatVecModOps) {
		t.Error("breakdown missing category")
	}
	d.Trace.Reset()
	if d.Trace.Total() != 0 {
		t.Error("reset failed")
	}
	if d.Trace.Breakdown() != "(empty trace)" {
		t.Error("empty breakdown")
	}
}

func TestFitsOnChip(t *testing.T) {
	d := NewDevice(TPUv6e())
	if !d.FitsOnChip(1 << 20) {
		t.Error("1 MB should fit")
	}
	if d.FitsOnChip(1 << 30) {
		t.Error("1 GB should not fit")
	}
}

func TestV6eLargerTile(t *testing.T) {
	v4 := NewDevice(TPUv4())
	v6 := NewDevice(TPUv6e())
	// Same sub-tile op: v6e pads to 256 but has far higher peak;
	// a full 256³ op must still be far faster on v6e.
	if v6.MatMulINT8Time(256, 256, 256) >= v4.MatMulINT8Time(256, 256, 256) {
		t.Error("v6e should beat v4 on a 256³ matmul")
	}
}
