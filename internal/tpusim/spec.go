// Package tpusim is the TPU substitute for this reproduction: an
// analytical performance model of the TPU generations the paper
// evaluates (v4, v5e, v5p, v6e — Tab. IV), exposing the three
// architectural units CROSS schedules onto (Fig. 4):
//
//   - MXU: the 128×128 (256×256 on v6e) INT8 systolic matrix engine;
//   - VPU: 2048 32-bit SIMD ALUs organised as 128 lanes × 8 sublanes,
//     operating lock-step on (8, 128) 4 KB vector registers;
//   - XLU: the cross-lane unit for transpose/shuffle/gather, whose
//     coarse granularity is the villain of §III-D.
//
// The model is a roofline: every operation is charged
// max(compute time, memory time) and appended to a category trace so
// that latency breakdowns (Fig. 12) fall out of execution. Absolute
// times are not silicon-accurate; the comparative shapes — MXU≫VPU
// throughput ratio, reorder granularity penalties, batch-capacity
// knees — follow the paper's published per-core specifications.
//
// Real hardware substitution note (DESIGN.md §2): the paper measures
// real TPUs through JAX/XLA; this package replaces them because the
// reproduction environment has no accelerator. Functional results are
// computed bit-exactly on the CPU by the callers; this package accounts
// time only.
package tpusim

// Spec describes one tensor core of a TPU generation. Compute and
// bandwidth figures for one tensor core come from the paper's Tab. IV
// (obtained by the authors from XProf); microarchitectural shape
// parameters from Fig. 4 and the cited TPU papers.
type Spec struct {
	Name string

	// MXU systolic array.
	MXUDim  int // systolic array dimension (128; 256 on v6e)
	NumMXUs int // MXUs per tensor core

	// PeakMACs is the tensor core's peak INT8 MAC rate (MAC/s),
	// derived from Tab. IV GFLOPs (1 FLOP pair = 1 MAC).
	PeakMACs float64

	// VPU.
	VPULanes    int     // SIMD lanes (128)
	VPUSublanes int     // sublanes per lane (8)
	VPUOps      float64 // peak 32-bit ALU ops/s for the core
	ClockHz     float64

	// Memory system (bytes/s, per tensor core, Tab. IV).
	HBMBandwidth   float64
	VMEMReadBW     float64
	VMEMWriteBW    float64
	OnChipCapacity int64 // bytes of effectively usable on-chip memory

	// XLU reordering engine.
	XLUElemsPerCycle    int // contiguous 32-bit elements moved per cycle
	GatherElemsPerCycle int // random-access gather/scatter rate

	// VPUDerate models XLA's materialisation of HLO intermediates:
	// every logical ALU op on the VPU costs this many effective ops
	// (each HLO stage writes its result back to VMEM rather than
	// staying in registers — no fusion across modular-arithmetic
	// stages, §V-E).
	VPUDerate float64

	// DispatchOverhead is the per-kernel-launch cost of the XLA
	// runtime (seconds) — the fixed price every lowered kernel
	// sequence pays regardless of batch, and the reason batching
	// helps small problems so much (Fig. 11b).
	DispatchOverhead float64

	// WattsPerCore approximates TDP per tensor core, used only to scale
	// core counts to a comparison platform's power envelope (§V-A
	// metric methodology).
	WattsPerCore float64

	// Inter-chip interconnect (ICI), the fabric a Pod's cores
	// communicate over. ICIBandwidth is the per-core injection
	// bandwidth into the fabric (bytes/s, the per-chip aggregate link
	// figure from the TPU platform documentation scaled to one tensor
	// core); ICILatency is the fixed per-hop cost of one neighbour
	// exchange (link traversal + collective-runtime launch).
	ICIBandwidth float64
	ICILatency   float64

	// Calib carries the model's fitted free constants (calib.go). The
	// zero value resolves to the identity — DispatchOverhead as-is and
	// every bandwidth/compute figure at peak — which reproduces the
	// pre-calibration model bit-exactly; the calibration harness
	// (internal/calib) fits the fields against ground-truth
	// measurements instead of hand-picking them.
	Calib Calibration
}

const gib = 1024 * 1024 * 1024

// TPUv4 returns the v4 tensor-core model (Tab. IV column 1; CMEM-backed
// on-chip capacity per Fig. 4).
func TPUv4() Spec {
	return Spec{
		Name:                "TPUv4",
		MXUDim:              128,
		NumMXUs:             4,
		PeakMACs:            139800e9 / 2,
		VPULanes:            128,
		VPUSublanes:         8,
		VPUOps:              1.2e12,
		ClockHz:             1.05e9,
		HBMBandwidth:        572 * gib,
		VMEMReadBW:          2003 * gib,
		VMEMWriteBW:         1001 * gib,
		OnChipCapacity:      80 << 20, // 16 MB VMEM + ½ of 128 MB CMEM
		XLUElemsPerCycle:    128,
		GatherElemsPerCycle: 8,
		VPUDerate:           3,
		DispatchOverhead:    15e-6,
		WattsPerCore:        96,
		ICIBandwidth:        150 * gib, // ½ of the chip's 2400 Gbps (2 cores/chip)
		ICILatency:          1e-6,
	}
}

// TPUv5e returns the v5e tensor-core model (Tab. IV column 2).
func TPUv5e() Spec {
	return Spec{
		Name:                "TPUv5e",
		MXUDim:              128,
		NumMXUs:             4,
		PeakMACs:            202700e9 / 2,
		VPULanes:            128,
		VPUSublanes:         8,
		VPUOps:              1.6e12,
		ClockHz:             1.4e9,
		HBMBandwidth:        763 * gib,
		VMEMReadBW:          17166 * gib,
		VMEMWriteBW:         5722 * gib,
		OnChipCapacity:      40 << 20,
		XLUElemsPerCycle:    128,
		GatherElemsPerCycle: 8,
		VPUDerate:           3,
		DispatchOverhead:    8e-6,
		WattsPerCore:        55,
		ICIBandwidth:        200 * gib, // 1600 Gbps, one core per chip
		ICILatency:          1e-6,
	}
}

// TPUv5p returns the v5p tensor-core model (Tab. IV column 3).
func TPUv5p() Spec {
	return Spec{
		Name:                "TPUv5p",
		MXUDim:              128,
		NumMXUs:             4,
		PeakMACs:            236700e9 / 2,
		VPULanes:            128,
		VPUSublanes:         8,
		VPUOps:              1.9e12,
		ClockHz:             1.75e9,
		HBMBandwidth:        1287 * gib,
		VMEMReadBW:          20027 * gib,
		VMEMWriteBW:         6676 * gib,
		OnChipCapacity:      96 << 20,
		XLUElemsPerCycle:    128,
		GatherElemsPerCycle: 8,
		VPUDerate:           3,
		DispatchOverhead:    6e-6,
		WattsPerCore:        110,
		ICIBandwidth:        300 * gib, // ½ of the chip's 4800 Gbps (2 cores/chip)
		ICILatency:          1e-6,
	}
}

// TPUv6e returns the v6e tensor-core model (Tab. IV column 4; 256×256
// systolic array per the table footnote).
func TPUv6e() Spec {
	return Spec{
		Name:                "TPUv6e",
		MXUDim:              256,
		NumMXUs:             2,
		PeakMACs:            918000e9 / 2,
		VPULanes:            128,
		VPUSublanes:         8,
		VPUOps:              3.2e12,
		ClockHz:             1.7e9,
		HBMBandwidth:        1526 * gib,
		VMEMReadBW:          21696 * gib,
		VMEMWriteBW:         15020 * gib,
		OnChipCapacity:      12 << 20,
		XLUElemsPerCycle:    128,
		GatherElemsPerCycle: 8,
		VPUDerate:           3,
		DispatchOverhead:    3e-6,
		WattsPerCore:        90,
		ICIBandwidth:        448 * gib, // 3584 Gbps, one core per chip
		ICILatency:          1e-6,
	}
}

// AllSpecs returns the four modelled generations in the paper's order.
func AllSpecs() []Spec {
	return []Spec{TPUv4(), TPUv5e(), TPUv5p(), TPUv6e()}
}

// SpecByName resolves a generation by its Tab. IV name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MXUToVPURatio returns the throughput ratio that motivates BAT
// (§III-B1: ~58× on v4, versus ~4× for a GPU's tensor-to-CUDA cores).
func (s Spec) MXUToVPURatio() float64 {
	return (2 * s.PeakMACs) / s.VPUOps
}
