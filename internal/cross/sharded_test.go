package cross

import (
	"math"
	"testing"

	"cross/internal/tpusim"
)

func mustSharded(t *testing.T, spec tpusim.Spec, cores int, p Params) *ShardedCompiler {
	t.Helper()
	pod, err := tpusim.NewPod(spec, cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(pod, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(nil, SetA()); err == nil {
		t.Error("expected error for nil pod")
	}
	pod := tpusim.MustPod(tpusim.TPUv6e(), 2)
	if _, err := NewSharded(pod, Params{}); err == nil {
		t.Error("expected validation error for zero params")
	}
	c, err := New(tpusim.NewDevice(tpusim.TPUv6e()), SetB())
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.LowerSharded(pod)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCores() != 2 || s.P.LogN != SetB().LogN {
		t.Error("LowerSharded lost configuration")
	}
}

// A one-core pod must reproduce the single-core compiler exactly: the
// sharded lowering degenerates to the paper's model with zero
// collective cost.
func TestShardedOneCoreIdentity(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D"} {
		p, err := NamedSet(name)
		if err != nil {
			t.Fatal(err)
		}
		single, err := New(tpusim.NewDevice(tpusim.TPUv6e()), p)
		if err != nil {
			t.Fatal(err)
		}
		s := mustSharded(t, tpusim.TPUv6e(), 1, p)

		pairs := [][2]float64{
			{single.Snapshot(single.CostHEMult), s.Snapshot(s.CostHEMult)},
			{single.Snapshot(single.CostKeySwitch), s.Snapshot(s.CostKeySwitch)},
			{single.Snapshot(single.CostRescale), s.Snapshot(s.CostRescale)},
			{single.Snapshot(single.CostRotate), s.Snapshot(s.CostRotate)},
			{single.Snapshot(single.CostHEAdd), s.Snapshot(s.CostHEAdd)},
			{single.Snapshot(func() float64 { return single.CostNTTMat(8) }),
				s.Snapshot(func() float64 { return s.CostNTTMat(8) })},
			{single.Snapshot(func() float64 { return single.CostBConv(p.N(), 4, 8, true) }),
				s.Snapshot(func() float64 { return s.CostBConv(p.N(), 4, 8) })},
		}
		for i, pr := range pairs {
			if pr[0] != pr[1] {
				t.Errorf("Set%s pair %d: single %g != sharded-1 %g", name, i, pr[0], pr[1])
			}
		}
	}
}

// Large kernels must get strictly faster with more cores — the
// acceptance bar for the pod layer. SetC and SetD are the paper's
// large configurations.
func TestShardedSpeedupOnLargeKernels(t *testing.T) {
	for _, name := range []string{"C", "D"} {
		p, err := NamedSet(name)
		if err != nil {
			t.Fatal(err)
		}
		single, err := New(tpusim.NewDevice(tpusim.TPUv6e()), p)
		if err != nil {
			t.Fatal(err)
		}
		base := single.Snapshot(single.CostHEMult)
		prev := base
		for _, cores := range []int{2, 4, 8} {
			s := mustSharded(t, tpusim.TPUv6e(), cores, p)
			got := s.Snapshot(s.CostHEMult)
			if got >= base {
				t.Errorf("Set%s %d cores: sharded HE-Mult %g ≥ single-core %g", name, cores, got, base)
			}
			// The largest set must keep improving through 8 cores;
			// smaller sets may hit their scaling knee earlier (the
			// collective latency term grows with the core count).
			if name == "D" && got >= prev {
				t.Errorf("Set%s %d cores: HE-Mult %g not below %d-core time %g", name, cores, got, cores/2, prev)
			}
			prev = got
		}
	}
}

// The pure limb-parallel NTT batch has no collectives and must scale
// nearly linearly when the batch divides evenly.
func TestShardedNTTScalesLinearly(t *testing.T) {
	p := SetD()
	single, err := New(tpusim.NewDevice(tpusim.TPUv6e()), p)
	if err != nil {
		t.Fatal(err)
	}
	base := single.Snapshot(func() float64 { return single.CostNTTMat(64) })
	s := mustSharded(t, tpusim.TPUv6e(), 8, p)
	got := s.Snapshot(func() float64 { return s.CostNTTMat(64) })
	want := single.Snapshot(func() float64 { return single.CostNTTMat(8) })
	if got != want {
		t.Errorf("sharded NTT(64) on 8 cores = %g, want per-core NTT(8) = %g", got, want)
	}
	if base/got < 2 {
		t.Errorf("NTT batch speedup %g too low", base/got)
	}
}

// Collective time must appear in the pod trace (and only there), and
// the core trace must shrink as work shards.
func TestShardedTraceAccounting(t *testing.T) {
	p := SetD()
	s := mustSharded(t, tpusim.TPUv6e(), 4, p)
	s.Pod.Reset()
	s.CostKeySwitch()
	ici := s.CollectiveSeconds()
	if ici <= 0 {
		t.Fatal("key switch on 4 cores produced no collective time")
	}
	if s.Pod.Cores[0].Trace.Seconds(tpusim.CatICI) != 0 {
		t.Error("collective time leaked into a core trace")
	}
	total := s.Pod.TotalSeconds()
	if total <= ici {
		t.Error("pod total should include core compute on top of collectives")
	}
	// Snapshot must not pollute either trace.
	before := s.Pod.Trace.Total()
	s.Snapshot(s.CostHEMult)
	if s.Pod.Trace.Total() != before {
		t.Error("Snapshot polluted the pod trace")
	}
}

// Collective overhead must keep the model honest: with an absurdly slow
// ICI, sharding should stop paying off (no free lunch in the model).
func TestShardedRespectsICICost(t *testing.T) {
	p := SetC()
	spec := tpusim.TPUv6e()
	spec.ICIBandwidth = 1e6 // 1 MB/s
	spec.ICILatency = 1e-2  // 10 ms per hop
	single, err := New(tpusim.NewDevice(tpusim.TPUv6e()), p)
	if err != nil {
		t.Fatal(err)
	}
	base := single.Snapshot(single.CostHEMult)
	s := mustSharded(t, spec, 8, p)
	got := s.Snapshot(s.CostHEMult)
	if got <= base {
		t.Error("crippled ICI should make sharding slower than single-core")
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Error("degenerate sharded time")
	}
}
