package cross

import (
	"testing"

	"cross/internal/tpusim"
)

// Every named calibration kernel must price to a positive, finite
// schedule on a single core, and unknown names must error — the
// contract internal/calib pairs measurements against.
func TestPredictKernelCoversCalibVocabulary(t *testing.T) {
	p := Params{LogN: 13, LogQ: 28, L: 2, Dnum: 1, R: 128, C: 64}
	c, err := Compile(tpusim.NewDevice(tpusim.TPUv4()), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range CalibKernels() {
		s, err := c.PredictKernel(k)
		if err != nil {
			t.Fatalf("PredictKernel(%q): %v", k, err)
		}
		if s.Total <= 0 {
			t.Errorf("PredictKernel(%q).Total = %v, want > 0", k, s.Total)
		}
		if s.Op != k {
			t.Errorf("PredictKernel(%q).Op = %q", k, s.Op)
		}
	}
	if _, err := c.PredictKernel("no_such_kernel"); err == nil {
		t.Fatal("PredictKernel with an unknown name must error")
	}
}

// The prediction must respond to the calibration constants it exists to
// fit: scaling a constant moves the predicted time. This is what makes
// the fitter's search space non-degenerate.
func TestPredictKernelRespondsToCalibration(t *testing.T) {
	p := Params{LogN: 13, LogQ: 28, L: 2, Dnum: 1, R: 128, C: 64}
	spec := tpusim.TPUv4()
	base, err := Compile(tpusim.NewDevice(spec), p)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Compile(tpusim.NewDevice(spec.WithCalibration(tpusim.Calibration{
		LaunchOverhead: 10 * spec.DispatchOverhead,
		HBMFraction:    0.5,
		VMEMFraction:   0.5,
		NTTEfficiency:  0.5,
	})), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range CalibKernels() {
		b, _ := base.PredictKernel(k)
		s, _ := slow.PredictKernel(k)
		if s.Total <= b.Total {
			t.Errorf("%s: derated calibration predicts %v, want > uncalibrated %v", k, s.Total, b.Total)
		}
	}
}
