package cross

import (
	"fmt"
	"strings"
	"sync"

	"cross/internal/tpusim"
)

// Program composes multi-operator HE workloads into one costed
// schedule, §V-A style (total kernel invocations × per-operator
// schedule, no pipelining or fusion — the paper's worst case). The
// builder is fluent:
//
//	sched := NewProgram(c).HEMult().Rotate(1).Bootstrap(bs).Batch(64).Lower()
//
// Per-operator schedules are memoized, so a program with thousands of
// repeated operators lowers each distinct operator once. Batch
// replicates the whole program (the serving axis: one schedule per
// request, no cross-request fusion).
type Program struct {
	c     *Compiler
	steps []progStep
	batch int

	// mu guards memo: building a program is single-goroutine (the
	// fluent builder is not synchronised), but Lower may be called
	// concurrently — sweep workers share lowered programs.
	mu   sync.Mutex
	memo map[string]*Schedule

	// cache, when set, is a process-wide schedule cache shared across
	// programs and goroutines (WithCache); the local memo then only
	// dedupes the key rendering.
	cache *ScheduleCache
}

// progStep is one operator × repetition entry.
type progStep struct {
	key   string // memoization key (operators with identical cost share one)
	label string // display label
	count int
	lower func() *Schedule
}

// NewProgram starts an empty program on a compiler.
func NewProgram(c *Compiler) *Program {
	return &Program{c: c, batch: 1, memo: make(map[string]*Schedule)}
}

// Compiler returns the program's compiler.
func (p *Program) Compiler() *Compiler { return p.c }

// WithCache routes the program's per-operator memoization through a
// shared ScheduleCache, so identical operators lowered by other
// programs (or other sweep workers) on an equivalent target are reused
// instead of re-lowered. Returns the program for chaining.
func (p *Program) WithCache(sc *ScheduleCache) *Program {
	p.cache = sc
	return p
}

// append records count repetitions of one operator (no-op for count ≤ 0).
func (p *Program) append(key, label string, count int, f func() *Schedule) *Program {
	if count <= 0 {
		return p
	}
	p.steps = append(p.steps, progStep{key: key, label: label, count: count, lower: f})
	return p
}

// HEMult appends one ciphertext multiplication.
func (p *Program) HEMult() *Program { return p.HEMultN(1) }

// HEMultN appends n ciphertext multiplications.
func (p *Program) HEMultN(n int) *Program {
	return p.append("mult", "HE-Mult", n, p.c.LowerHEMult)
}

// HEAdd appends one ciphertext addition.
func (p *Program) HEAdd() *Program { return p.HEAddN(1) }

// HEAddN appends n ciphertext additions.
func (p *Program) HEAddN(n int) *Program {
	return p.append("add", "HE-Add", n, p.c.LowerHEAdd)
}

// PtMul appends one plaintext-ciphertext multiplication.
func (p *Program) PtMul() *Program { return p.PtMulN(1) }

// PtMulN appends n plaintext-ciphertext multiplications.
func (p *Program) PtMulN(n int) *Program {
	return p.append("ptmul", "PtMul", n, p.c.LowerPtMul)
}

// PtAdd appends one plaintext-ciphertext addition.
func (p *Program) PtAdd() *Program { return p.PtAddN(1) }

// PtAddN appends n plaintext-ciphertext additions.
func (p *Program) PtAddN(n int) *Program {
	return p.append("ptadd", "PtAdd", n, p.c.LowerPtAdd)
}

// Rotate appends a slot rotation by k. The simulated cost is
// independent of k (every rotation is one automorphism gather plus one
// key switch), so all rotations share one memoized schedule.
func (p *Program) Rotate(k int) *Program { return p.RotateN(k, 1) }

// RotateN appends n rotations by k.
func (p *Program) RotateN(k, n int) *Program {
	_ = k // cost is amount-independent; kept for schedule fidelity
	return p.append("rotate", "Rotate", n, p.c.LowerRotate)
}

// Conjugate appends the conjugation rotation.
func (p *Program) Conjugate() *Program {
	return p.append("conj", "Conjugate", 1, p.c.LowerConjugate)
}

// Rescale appends one standalone rescaling.
func (p *Program) Rescale() *Program { return p.RescaleN(1) }

// RescaleN appends n standalone rescalings.
func (p *Program) RescaleN(n int) *Program {
	return p.append("rescale", "Rescale", n, p.c.LowerRescale)
}

// KeySwitch appends one hybrid key switch.
func (p *Program) KeySwitch() *Program {
	return p.append("keyswitch", "KeySwitch", 1, p.c.LowerKeySwitch)
}

// NTT appends one batched MAT NTT launch.
func (p *Program) NTT(batch int) *Program {
	key := fmt.Sprintf("ntt/%d", batch)
	return p.append(key, fmt.Sprintf("NTT×%d", batch), 1,
		func() *Schedule { return p.c.LowerNTT(batch) })
}

// Bootstrap appends one packed bootstrapping with the given operator
// budget.
func (p *Program) Bootstrap(s BootstrapSchedule) *Program {
	key := fmt.Sprintf("bootstrap/%+v", s) // whole struct: collision-free if fields grow
	return p.append(key, "Bootstrap", 1,
		func() *Schedule { return p.c.LowerBootstrap(s) })
}

// Batch sets the program's replication factor: the whole operator
// sequence runs b times (b ≥ 1). Returns the program for chaining.
func (p *Program) Batch(b int) *Program {
	if b >= 1 {
		p.batch = b
	}
	return p
}

// Steps returns the number of distinct operator entries recorded.
func (p *Program) Steps() int { return len(p.steps) }

// OpCount returns the total operator count (entries × repetitions ×
// batch).
func (p *Program) OpCount() int {
	var n int
	for _, st := range p.steps {
		n += st.count
	}
	return n * p.batch
}

// sched returns the memoized schedule for one step. Safe for
// concurrent Lower calls: the local memo is mutex-guarded and held
// through the lowering, so each distinct operator lowers once per
// program (or once per process with a shared cache).
func (p *Program) sched(st progStep) *Schedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.memo[st.key]; ok {
		return s
	}
	var s *Schedule
	if p.cache != nil {
		s = p.cache.GetOrLower(scheduleKey(p.c, st.key), func() *Schedule { return st.lower() })
	} else {
		s = st.lower()
	}
	p.memo[st.key] = s
	return s
}

// Lower lowers the whole program into one Schedule: per-operator
// schedules are lowered once (memoized) and combined — totals and
// kernel counts scale by repetition and batch, traces merge by
// category. Operators execute serially with no fusion, so times add
// (§V-A methodology).
func (p *Program) Lower() *Schedule {
	trace := tpusim.NewTrace()
	var total, collective, overlapped float64
	var kernels KernelCounts
	var dagNodes, dagEdges int
	var labels []string
	for _, st := range p.steps {
		s := p.sched(st)
		total += float64(st.count) * s.Total
		collective += float64(st.count) * s.Collective
		// Operators execute serially with no cross-op fusion (§V-A), so
		// overlap is intra-op only: overlapped program time is the sum
		// of per-op overlapped times.
		overlapped += float64(st.count) * s.Overlapped
		kernels = kernels.plus(s.Kernels.times(st.count * p.batch))
		dagNodes += st.count * p.batch * s.DAGNodes
		dagEdges += st.count * p.batch * s.DAGEdges
		for cat, sec := range s.Trace.ByCategory() {
			trace.Add(cat, sec*float64(st.count*p.batch))
		}
		if st.count == 1 {
			labels = append(labels, st.label)
		} else {
			labels = append(labels, fmt.Sprintf("%d×%s", st.count, st.label))
		}
	}
	total *= float64(p.batch)
	collective *= float64(p.batch)
	overlapped *= float64(p.batch)

	op := "Program[" + strings.Join(labels, " + ") + "]"
	if p.batch > 1 {
		op = fmt.Sprintf("%d×%s", p.batch, op)
	}
	return &Schedule{
		Op:         op,
		Target:     p.c.T.Name(),
		Cores:      p.c.T.NumCores(),
		Params:     p.c.P,
		Total:      total,
		Collective: collective,
		Overlapped: overlapped,
		DAGNodes:   dagNodes,
		DAGEdges:   dagEdges,
		Trace:      trace,
		Kernels:    kernels,
	}
}
