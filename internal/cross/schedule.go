package cross

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"cross/internal/tpusim"
)

// errNilTarget rejects Compile(nil, …) and nil/empty pods.
var errNilTarget = errors.New("cross: lowering needs a target with at least one core")

// KernelCounts tallies the kernel invocations of one lowering — the
// Schedule IR's op-count face. Counts are launches, not elements: one
// batched NTT of 64 limbs is one NTT entry. The JSON names are part of
// the sweep-record schema (DESIGN.md §9) that BENCH_baseline.json and
// the CI perf gate diff on — rename with care.
type KernelCounts struct {
	NTTs        int `json:"ntts"`        // batched MAT NTT launches
	INTTs       int `json:"intts"`       // batched MAT INTT launches
	BConvs      int `json:"bconvs"`      // basis conversions (step 1 + step 2)
	MatMuls     int `json:"matmuls"`     // standalone ModMatMul lowerings (Tab. V ablations)
	VecMuls     int `json:"vecmuls"`     // element-wise modular multiplication launches
	VecAdds     int `json:"vecadds"`     // element-wise modular addition launches
	Gathers     int `json:"gathers"`     // automorphism gathers (the permutation MAT cannot embed)
	Collectives int `json:"collectives"` // inter-core collectives (all-gather/all-reduce/broadcast)
}

// Total returns the overall kernel-launch count.
func (k KernelCounts) Total() int {
	return k.NTTs + k.INTTs + k.BConvs + k.MatMuls + k.VecMuls + k.VecAdds + k.Gathers + k.Collectives
}

// plus returns the element-wise sum.
func (k KernelCounts) plus(o KernelCounts) KernelCounts {
	return KernelCounts{
		NTTs:        k.NTTs + o.NTTs,
		INTTs:       k.INTTs + o.INTTs,
		BConvs:      k.BConvs + o.BConvs,
		MatMuls:     k.MatMuls + o.MatMuls,
		VecMuls:     k.VecMuls + o.VecMuls,
		VecAdds:     k.VecAdds + o.VecAdds,
		Gathers:     k.Gathers + o.Gathers,
		Collectives: k.Collectives + o.Collectives,
	}
}

// times returns the counts scaled by n.
func (k KernelCounts) times(n int) KernelCounts {
	return KernelCounts{
		NTTs:        k.NTTs * n,
		INTTs:       k.INTTs * n,
		BConvs:      k.BConvs * n,
		MatMuls:     k.MatMuls * n,
		VecMuls:     k.VecMuls * n,
		VecAdds:     k.VecAdds * n,
		Gathers:     k.Gathers * n,
		Collectives: k.Collectives * n,
	}
}

// String renders the non-zero counts.
func (k KernelCounts) String() string {
	var parts []string
	add := func(name string, v int) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("ntt", k.NTTs)
	add("intt", k.INTTs)
	add("bconv", k.BConvs)
	add("matmul", k.MatMuls)
	add("vecmul", k.VecMuls)
	add("vecadd", k.VecAdds)
	add("gather", k.Gathers)
	add("collective", k.Collectives)
	if len(parts) == 0 {
		return "(no kernels)"
	}
	return strings.Join(parts, " ")
}

// Schedule is the compiler's lowering artifact: one HE operator (or a
// whole Program) lowered onto a Target, carrying the end-to-end
// latency, the per-category compute breakdown, kernel-invocation
// counts, and the shard/collective metadata of the lowering. Where the
// legacy Cost* methods return a bare float64, a Schedule is the
// structured IR downstream consumers (harness reports, workload
// estimators, cmd tools, serving-scale batching) compose without
// re-deriving anything.
type Schedule struct {
	Op     string // operator name ("HE-Mult", "Program[…]", …)
	Target string // target name ("TPUv6e", "TPUv6e-4")
	Cores  int    // cores the lowering sharded across
	Params Params // parameter set the schedule was lowered under

	// Total is the end-to-end simulated latency in seconds: the
	// representative core's compute time plus all collective time (the
	// SPMD critical path — cores synchronise at every collective).
	Total float64

	// Collective is the inter-chip (ICI) share of Total; zero on
	// single-core targets.
	Collective float64

	// Trace is the per-category breakdown (Fig. 12's legend), with the
	// collective share under tpusim.CatICI.
	Trace *tpusim.Trace

	// Kernels counts the kernel launches of the lowering.
	Kernels KernelCounts
}

// Compute returns the core-compute share of Total (Total − Collective).
func (s *Schedule) Compute() float64 { return s.Total - s.Collective }

// Seconds returns the time charged to one trace category.
func (s *Schedule) Seconds(category string) float64 { return s.Trace.Seconds(category) }

// Breakdown renders the Fig. 12-style percentage breakdown.
func (s *Schedule) Breakdown() string { return s.Trace.Breakdown() }

// String renders a one-schedule summary.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (%d core", s.Op, s.Target, s.Cores)
	if s.Cores != 1 {
		b.WriteString("s")
	}
	fmt.Fprintf(&b, "): %.2f µs", s.Total*1e6)
	if s.Collective > 0 {
		fmt.Fprintf(&b, " (%.2f µs collective)", s.Collective*1e6)
	}
	fmt.Fprintf(&b, "\nkernels: %s\n%s", s.Kernels, s.Breakdown())
	return b.String()
}

// LowerOp lowers an arbitrary costing closure into a Schedule: the
// closure runs against fresh compute and collective traces (the live
// traces are untouched) and the elapsed time, breakdown, and kernel
// counts are captured. This is the generic escape hatch; the named
// Lower* methods cover the standard operators.
func (c *Compiler) LowerOp(op string, f func() float64) *Schedule {
	// One lowering at a time per compiler: the trace swap and tally
	// reset below are compiler-global state. Cost closures never call
	// LowerOp back (they compose Cost* methods only), so the lock is
	// not reentered.
	c.mu.Lock()
	defer c.mu.Unlock()

	savedCompute := c.Dev.Trace
	c.Dev.Trace = tpusim.NewTrace()
	savedCollective := c.T.CollectiveTrace()
	c.T.SetCollectiveTrace(tpusim.NewTrace())
	savedTally := c.tally
	c.tally = KernelCounts{}
	// Restore under defer so a panicking closure cannot leave the
	// compiler charging the throwaway traces.
	defer func() {
		c.Dev.Trace = savedCompute
		c.T.SetCollectiveTrace(savedCollective)
		c.tally = savedTally
	}()

	total := f()

	s := &Schedule{
		Op:      op,
		Target:  c.T.Name(),
		Cores:   c.T.NumCores(),
		Params:  c.P,
		Total:   total,
		Trace:   c.Dev.Trace,
		Kernels: c.tally,
	}
	s.Collective = c.T.CollectiveTrace().Total()
	if s.Collective > 0 {
		s.Trace.Add(tpusim.CatICI, s.Collective)
	}

	if math.IsNaN(total) || total < 0 {
		panic("cross: cost function returned invalid time")
	}
	return s
}

// --- HE operator schedules (Tab. VIII) ---

// LowerHEAdd lowers a ciphertext addition.
func (c *Compiler) LowerHEAdd() *Schedule { return c.LowerOp("HE-Add", c.CostHEAdd) }

// LowerHEMult lowers a full ciphertext multiplication (tensor product,
// relinearisation, rescale).
func (c *Compiler) LowerHEMult() *Schedule { return c.LowerOp("HE-Mult", c.CostHEMult) }

// LowerRescale lowers one rescaling.
func (c *Compiler) LowerRescale() *Schedule { return c.LowerOp("Rescale", c.CostRescale) }

// LowerRotate lowers a slot rotation (automorphism + key switch).
func (c *Compiler) LowerRotate() *Schedule { return c.LowerOp("Rotate", c.CostRotate) }

// LowerConjugate lowers the conjugation rotation.
func (c *Compiler) LowerConjugate() *Schedule { return c.LowerOp("Conjugate", c.CostConjugate) }

// LowerKeySwitch lowers one hybrid key switch.
func (c *Compiler) LowerKeySwitch() *Schedule { return c.LowerOp("KeySwitch", c.CostKeySwitch) }

// LowerPtMul lowers a plaintext-ciphertext multiplication.
func (c *Compiler) LowerPtMul() *Schedule { return c.LowerOp("PtMul", c.CostPtMul) }

// LowerPtAdd lowers a plaintext-ciphertext addition.
func (c *Compiler) LowerPtAdd() *Schedule { return c.LowerOp("PtAdd", c.CostPtAdd) }

// --- kernel schedules ---

// LowerNTT lowers a batch of MAT NTTs, limb-sharded across the target.
func (c *Compiler) LowerNTT(batch int) *Schedule {
	return c.LowerOp(fmt.Sprintf("NTT×%d", batch), func() float64 { return c.CostNTTMat(batch) })
}

// LowerINTT lowers a batch of inverse transforms.
func (c *Compiler) LowerINTT(batch int) *Schedule {
	return c.LowerOp(fmt.Sprintf("INTT×%d", batch), func() float64 { return c.CostINTTMat(batch) })
}

// LowerBConv lowers a basis conversion of an N-coefficient polynomial
// from l to lOut limbs.
func (c *Compiler) LowerBConv(n, l, lOut int, useBAT bool) *Schedule {
	return c.LowerOp(fmt.Sprintf("BConv %d→%d", l, lOut),
		func() float64 { return c.CostBConv(n, l, lOut, useBAT) })
}

// LowerAutomorphism lowers τ_t on `limbs` polynomial limbs.
func (c *Compiler) LowerAutomorphism(limbs int) *Schedule {
	return c.LowerOp("Automorphism", func() float64 { return c.CostAutomorphism(limbs) })
}

// --- composite schedules ---

// LowerBootstrap lowers one packed bootstrapping.
func (c *Compiler) LowerBootstrap(s BootstrapSchedule) *Schedule {
	return c.LowerOp("Bootstrap", func() float64 { return c.CostBootstrap(s) })
}

// LowerBootstrapHoisted lowers the packed bootstrapping with hoisted
// BSGS rotation groups of the given size.
func (c *Compiler) LowerBootstrapHoisted(s BootstrapSchedule, groupSize int) *Schedule {
	return c.LowerOp("Bootstrap(hoisted)", func() float64 { return c.CostBootstrapHoisted(s, groupSize) })
}

// LowerRotateHoisted lowers `count` rotations of one ciphertext with a
// shared decomposition.
func (c *Compiler) LowerRotateHoisted(count int) *Schedule {
	return c.LowerOp(fmt.Sprintf("Rotate(hoisted)×%d", count),
		func() float64 { return c.CostRotateHoisted(count) })
}
