package cross

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"cross/internal/tpusim"
)

// errNilTarget rejects Compile(nil, …) and nil/empty pods.
var errNilTarget = errors.New("cross: lowering needs a target with at least one core")

// KernelCounts tallies the kernel invocations of one lowering — the
// Schedule IR's op-count face. Counts are launches, not elements: one
// batched NTT of 64 limbs is one NTT entry. The JSON names are part of
// the sweep-record schema (DESIGN.md §9) that BENCH_baseline.json and
// the CI perf gate diff on — rename with care.
type KernelCounts struct {
	NTTs        int `json:"ntts"`        // batched MAT NTT launches
	INTTs       int `json:"intts"`       // batched MAT INTT launches
	BConvs      int `json:"bconvs"`      // basis conversions (step 1 + step 2)
	MatMuls     int `json:"matmuls"`     // standalone ModMatMul lowerings (Tab. V ablations)
	VecMuls     int `json:"vecmuls"`     // element-wise modular multiplication launches
	VecAdds     int `json:"vecadds"`     // element-wise modular addition launches
	Gathers     int `json:"gathers"`     // automorphism gathers (the permutation MAT cannot embed)
	Collectives int `json:"collectives"` // inter-core collectives (all-gather/all-reduce/broadcast)
}

// Total returns the overall kernel-launch count.
func (k KernelCounts) Total() int {
	return k.NTTs + k.INTTs + k.BConvs + k.MatMuls + k.VecMuls + k.VecAdds + k.Gathers + k.Collectives
}

// plus returns the element-wise sum.
func (k KernelCounts) plus(o KernelCounts) KernelCounts {
	return KernelCounts{
		NTTs:        k.NTTs + o.NTTs,
		INTTs:       k.INTTs + o.INTTs,
		BConvs:      k.BConvs + o.BConvs,
		MatMuls:     k.MatMuls + o.MatMuls,
		VecMuls:     k.VecMuls + o.VecMuls,
		VecAdds:     k.VecAdds + o.VecAdds,
		Gathers:     k.Gathers + o.Gathers,
		Collectives: k.Collectives + o.Collectives,
	}
}

// times returns the counts scaled by n.
func (k KernelCounts) times(n int) KernelCounts {
	return KernelCounts{
		NTTs:        k.NTTs * n,
		INTTs:       k.INTTs * n,
		BConvs:      k.BConvs * n,
		MatMuls:     k.MatMuls * n,
		VecMuls:     k.VecMuls * n,
		VecAdds:     k.VecAdds * n,
		Gathers:     k.Gathers * n,
		Collectives: k.Collectives * n,
	}
}

// String renders the non-zero counts.
func (k KernelCounts) String() string {
	var parts []string
	add := func(name string, v int) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("ntt", k.NTTs)
	add("intt", k.INTTs)
	add("bconv", k.BConvs)
	add("matmul", k.MatMuls)
	add("vecmul", k.VecMuls)
	add("vecadd", k.VecAdds)
	add("gather", k.Gathers)
	add("collective", k.Collectives)
	if len(parts) == 0 {
		return "(no kernels)"
	}
	return strings.Join(parts, " ")
}

// Schedule is the compiler's lowering artifact: one HE operator (or a
// whole Program) lowered onto a Target, carrying the end-to-end
// latency, the per-category compute breakdown, kernel-invocation
// counts, and the shard/collective metadata of the lowering. Where the
// legacy Cost* methods return a bare float64, a Schedule is the
// structured IR downstream consumers (harness reports, workload
// estimators, cmd tools, serving-scale batching) compose without
// re-deriving anything.
type Schedule struct {
	Op     string // operator name ("HE-Mult", "Program[…]", …)
	Target string // target name ("TPUv6e", "TPUv6e-4")
	Cores  int    // cores the lowering sharded across
	Params Params // parameter set the schedule was lowered under

	// Total is the end-to-end simulated latency in seconds: the
	// representative core's compute time plus all collective time (the
	// SPMD critical path — cores synchronise at every collective).
	Total float64

	// Collective is the interconnect (ICI or NVLink) share of Total;
	// zero on single-core targets.
	Collective float64

	// Overlapped is the end-to-end latency under the overlap-aware
	// execution model (DESIGN.md §13): the makespan of the lowering's
	// segment DAG, where HBM streaming double-buffers behind compute
	// and ICI collectives run asynchronously on the link. Always in
	// (0, Total] for a non-empty lowering; Total stays the serial
	// (paper-faithful §V-E) model.
	Overlapped float64

	// DAGNodes and DAGEdges summarise the segment DAG Overlapped was
	// executed from. The graph itself is not retained (schedules are
	// cached process-wide); program-level schedules sum their ops'.
	DAGNodes int
	DAGEdges int

	// Trace is the per-category breakdown (Fig. 12's legend), with the
	// collective share under the target's interconnect category
	// (tpusim.CatICI or tpusim.CatNVLink).
	Trace *tpusim.Trace

	// Kernels counts the kernel launches of the lowering.
	Kernels KernelCounts
}

// Compute returns the core-compute share of Total (Total − Collective).
func (s *Schedule) Compute() float64 { return s.Total - s.Collective }

// SerialTotal returns the fully serialized latency — the pre-DAG
// additive model, bit-identical to Total (golden-tested against
// BENCH_baseline.json).
func (s *Schedule) SerialTotal() float64 { return s.Total }

// OverlappedTotal returns the overlap-aware latency (the DAG makespan).
func (s *Schedule) OverlappedTotal() float64 { return s.Overlapped }

// OverlapFraction reports the share of the serial latency hidden by
// overlap: (SerialTotal − OverlappedTotal) / SerialTotal, clamped to
// [0, 1]; zero for an empty schedule.
func (s *Schedule) OverlapFraction() float64 {
	if s.Total <= 0 {
		return 0
	}
	f := (s.Total - s.Overlapped) / s.Total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// PricedTotal selects the latency downstream consumers charge for:
// OverlappedTotal when overlap is set, SerialTotal otherwise. This is
// the single switch sweep/serve/harness/crossbench price through.
func (s *Schedule) PricedTotal(overlap bool) float64 {
	if overlap {
		return s.Overlapped
	}
	return s.Total
}

// Seconds returns the time charged to one trace category.
func (s *Schedule) Seconds(category string) float64 { return s.Trace.Seconds(category) }

// Breakdown renders the Fig. 12-style percentage breakdown.
func (s *Schedule) Breakdown() string { return s.Trace.Breakdown() }

// String renders a one-schedule summary.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (%d core", s.Op, s.Target, s.Cores)
	if s.Cores != 1 {
		b.WriteString("s")
	}
	fmt.Fprintf(&b, "): %.2f µs", s.Total*1e6)
	if s.Collective > 0 {
		fmt.Fprintf(&b, " (%.2f µs collective)", s.Collective*1e6)
	}
	if f := s.OverlapFraction(); f > 0 {
		fmt.Fprintf(&b, " — overlapped %.2f µs (%.1f%% hidden)", s.Overlapped*1e6, 100*f)
	}
	fmt.Fprintf(&b, "\nkernels: %s\n%s", s.Kernels, s.Breakdown())
	return b.String()
}

// LowerOp lowers an arbitrary costing closure into a Schedule: the
// closure runs against fresh compute and collective traces (the live
// traces are untouched) and the elapsed time, breakdown, and kernel
// counts are captured. The charge stream is simultaneously recorded as
// a segment DAG (dag.go) and executed by the discrete-event engine
// (engine.go) to produce the overlapped latency; Total remains the
// plain serial sum. This is the generic escape hatch; the named Lower*
// methods cover the standard operators.
func (c *Compiler) LowerOp(op string, f func() float64) *Schedule {
	// One lowering at a time per compiler: the trace swap and tally
	// reset below are compiler-global state. Cost closures never call
	// LowerOp back (they compose Cost* methods only), so the lock is
	// not reentered.
	c.mu.Lock()
	defer c.mu.Unlock()

	// Both fresh traces feed one DAG builder, so compute charges and
	// collective charges interleave in true issue order — LowerOp holds
	// the compiler lock, so the stream is single-goroutine.
	b := newDAGBuilder()

	savedCompute := c.Dev.Trace
	c.Dev.Trace = tpusim.NewTrace()
	c.Dev.Trace.Observe(b.segment)
	savedCollective := c.T.CollectiveTrace()
	collective := tpusim.NewTrace()
	collective.Observe(b.segment)
	c.T.SetCollectiveTrace(collective)
	savedTally := c.tally
	c.tally = KernelCounts{}
	// Restore under defer so a panicking closure cannot leave the
	// compiler charging the throwaway traces.
	defer func() {
		c.Dev.Trace = savedCompute
		c.T.SetCollectiveTrace(savedCollective)
		c.tally = savedTally
	}()

	total := f()

	// Detach the observers before the roll-up Adds below: the summary
	// collective charges are bookkeeping, not new segments.
	c.Dev.Trace.Observe(nil)
	collective.Observe(nil)

	s := &Schedule{
		Op:      op,
		Target:  c.T.Name(),
		Cores:   c.T.NumCores(),
		Params:  c.P,
		Total:   total,
		Trace:   c.Dev.Trace,
		Kernels: c.tally,
	}
	// Roll the collective breakdown into the schedule trace per
	// category, in first-charge order, so multi-fabric vocabularies
	// (CatICI on pods, CatNVLink on GPU nodes) survive the roll-up.
	// Zero-second categories are skipped: a 1-core pod charges CatICI
	// at 0 s, and adding it would perturb category order baselines.
	ct := c.T.CollectiveTrace()
	s.Collective = ct.Total()
	for _, cat := range ct.Categories() {
		if sec := ct.Seconds(cat); sec > 0 {
			s.Trace.Add(cat, sec)
		}
	}

	if math.IsNaN(total) || total < 0 {
		panic("cross: cost function returned invalid time")
	}

	overlapped, err := b.d.Execute()
	if err != nil {
		// The builder only ever emits back-edges, so a cycle here is a
		// builder bug, not a data condition.
		panic("cross: lowering produced an unexecutable segment DAG: " + err.Error())
	}
	// The makespan sums segment durations along paths in a different
	// association order than the closure's running total, so it can
	// exceed Total by a few ulps on overlap-free DAGs; clamp so
	// Overlapped ≤ Total holds exactly.
	if overlapped > total {
		overlapped = total
	}
	s.Overlapped = overlapped
	s.DAGNodes = len(b.d.Nodes)
	s.DAGEdges = b.d.Edges()
	return s
}

// --- HE operator schedules (Tab. VIII) ---

// LowerHEAdd lowers a ciphertext addition.
func (c *Compiler) LowerHEAdd() *Schedule { return c.LowerOp("HE-Add", c.CostHEAdd) }

// LowerHEMult lowers a full ciphertext multiplication (tensor product,
// relinearisation, rescale).
func (c *Compiler) LowerHEMult() *Schedule { return c.LowerOp("HE-Mult", c.CostHEMult) }

// LowerRescale lowers one rescaling.
func (c *Compiler) LowerRescale() *Schedule { return c.LowerOp("Rescale", c.CostRescale) }

// LowerRotate lowers a slot rotation (automorphism + key switch).
func (c *Compiler) LowerRotate() *Schedule { return c.LowerOp("Rotate", c.CostRotate) }

// LowerConjugate lowers the conjugation rotation.
func (c *Compiler) LowerConjugate() *Schedule { return c.LowerOp("Conjugate", c.CostConjugate) }

// LowerKeySwitch lowers one hybrid key switch.
func (c *Compiler) LowerKeySwitch() *Schedule { return c.LowerOp("KeySwitch", c.CostKeySwitch) }

// LowerPtMul lowers a plaintext-ciphertext multiplication.
func (c *Compiler) LowerPtMul() *Schedule { return c.LowerOp("PtMul", c.CostPtMul) }

// LowerPtAdd lowers a plaintext-ciphertext addition.
func (c *Compiler) LowerPtAdd() *Schedule { return c.LowerOp("PtAdd", c.CostPtAdd) }

// --- kernel schedules ---

// LowerNTT lowers a batch of MAT NTTs, limb-sharded across the target.
func (c *Compiler) LowerNTT(batch int) *Schedule {
	return c.LowerOp(fmt.Sprintf("NTT×%d", batch), func() float64 { return c.CostNTTMat(batch) })
}

// LowerINTT lowers a batch of inverse transforms.
func (c *Compiler) LowerINTT(batch int) *Schedule {
	return c.LowerOp(fmt.Sprintf("INTT×%d", batch), func() float64 { return c.CostINTTMat(batch) })
}

// LowerBConv lowers a basis conversion of an N-coefficient polynomial
// from l to lOut limbs.
func (c *Compiler) LowerBConv(n, l, lOut int, useBAT bool) *Schedule {
	return c.LowerOp(fmt.Sprintf("BConv %d→%d", l, lOut),
		func() float64 { return c.CostBConv(n, l, lOut, useBAT) })
}

// LowerAutomorphism lowers τ_t on `limbs` polynomial limbs.
func (c *Compiler) LowerAutomorphism(limbs int) *Schedule {
	return c.LowerOp("Automorphism", func() float64 { return c.CostAutomorphism(limbs) })
}

// --- composite schedules ---

// LowerBootstrap lowers one packed bootstrapping.
func (c *Compiler) LowerBootstrap(s BootstrapSchedule) *Schedule {
	return c.LowerOp("Bootstrap", func() float64 { return c.CostBootstrap(s) })
}

// LowerBootstrapHoisted lowers the packed bootstrapping with hoisted
// BSGS rotation groups of the given size.
func (c *Compiler) LowerBootstrapHoisted(s BootstrapSchedule, groupSize int) *Schedule {
	return c.LowerOp("Bootstrap(hoisted)", func() float64 { return c.CostBootstrapHoisted(s, groupSize) })
}

// LowerRotateHoisted lowers `count` rotations of one ciphertext with a
// shared decomposition.
func (c *Compiler) LowerRotateHoisted(count int) *Schedule {
	return c.LowerOp(fmt.Sprintf("Rotate(hoisted)×%d", count),
		func() float64 { return c.CostRotateHoisted(count) })
}
