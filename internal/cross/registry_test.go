package cross

import (
	"strings"
	"testing"

	"cross/internal/tpusim"
)

// TestRegistryTPUEntries checks the TPU backend's self-registration:
// all four Tab. IV parts are present, in the paper's order, with the
// paper's VM core counts as representative scale.
func TestRegistryTPUEntries(t *testing.T) {
	infos := RegisteredTargets()
	vms := tpusim.AllVMs()
	if len(infos) < len(vms) {
		t.Fatalf("registry has %d entries, want at least the %d TPU parts", len(infos), len(vms))
	}
	for i, vm := range vms {
		info := infos[i]
		if info.Name != vm.Spec.Name {
			t.Errorf("registry[%d] = %q, want %q (paper order)", i, info.Name, vm.Spec.Name)
		}
		if info.Family != "tpu" {
			t.Errorf("%s: family %q, want tpu", info.Name, info.Family)
		}
		if info.RepCores != vm.Cores {
			t.Errorf("%s: RepCores %d, want the Tab. IV VM core count %d", info.Name, info.RepCores, vm.Cores)
		}
	}
}

// TestRegistryContract checks every registered part — whatever backend
// it came from — honours the registry contract: valid metadata, a
// working factory at 1 and RepCores, a 1-core target with free
// collectives, and a name match between entry and instance.
func TestRegistryContract(t *testing.T) {
	for _, info := range RegisteredTargets() {
		if info.RepCores < 1 {
			t.Errorf("%s: RepCores %d, want >= 1", info.Name, info.RepCores)
		}
		if info.Family == "" {
			t.Errorf("%s: empty family", info.Name)
		}

		single, err := info.New(1)
		if err != nil {
			t.Errorf("%s: New(1): %v", info.Name, err)
			continue
		}
		if single.NumCores() != 1 {
			t.Errorf("%s: New(1).NumCores() = %d", info.Name, single.NumCores())
		}
		if got := single.AllReduce(1 << 20); got != 0 {
			t.Errorf("%s: 1-core AllReduce = %g, want free", info.Name, got)
		}

		rep, err := info.New(info.RepCores)
		if err != nil {
			t.Errorf("%s: New(RepCores=%d): %v", info.Name, info.RepCores, err)
			continue
		}
		if rep.NumCores() != info.RepCores {
			t.Errorf("%s: New(%d).NumCores() = %d", info.Name, info.RepCores, rep.NumCores())
		}
		if !strings.HasPrefix(rep.Name(), info.Name) {
			t.Errorf("%s: representative target named %q, want the part name as prefix", info.Name, rep.Name())
		}
	}
}

// TestTargetByName covers the lookup face and its registry-derived
// error message.
func TestTargetByName(t *testing.T) {
	tgt, err := TargetByName("TPUv6e", 16)
	if err != nil {
		t.Fatalf("TargetByName(TPUv6e, 16): %v", err)
	}
	if tgt.Name() != "TPUv6e-16" || tgt.NumCores() != 16 {
		t.Errorf("got %q with %d cores", tgt.Name(), tgt.NumCores())
	}

	_, err = TargetByName("TPUv9", 4)
	if err == nil {
		t.Fatal("unknown device should fail")
	}
	if !strings.Contains(err.Error(), "TPUv4") || !strings.Contains(err.Error(), TargetNames()) {
		t.Errorf("error %q should embed the registry-derived valid-device list %q", err, TargetNames())
	}
}

// TestTargetByNameMatchesDirectConstruction is the bit-identity
// anchor: a registry-built TPU pod must be constructed exactly as
// sweep/serve built pods before the registry existed.
func TestTargetByNameMatchesDirectConstruction(t *testing.T) {
	viaRegistry, err := TargetByName("TPUv5p", 8)
	if err != nil {
		t.Fatal(err)
	}
	direct := tpusim.MustPod(tpusim.TPUv5p(), 8)
	p := SetB()
	a, err := Compile(viaRegistry, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(direct, p)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.LowerHEMult(), b.LowerHEMult()
	if sa.Total != sb.Total || sa.Overlapped != sb.Overlapped || sa.Collective != sb.Collective {
		t.Errorf("registry pod prices (%.17g, %.17g, %.17g), direct pod (%.17g, %.17g, %.17g) — must be bit-identical",
			sa.Total, sa.Overlapped, sa.Collective, sb.Total, sb.Overlapped, sb.Collective)
	}
}

// TestRegisterTargetRejectsInvalid covers the panicking guard paths.
func TestRegisterTargetRejectsInvalid(t *testing.T) {
	mustPanic := func(name string, info TargetInfo) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterTarget should panic", name)
			}
		}()
		RegisterTarget(info)
	}
	valid := func(cores int) (Target, error) { return tpusim.NewPod(tpusim.TPUv4(), cores) }
	mustPanic("empty name", TargetInfo{Family: "tpu", RepCores: 8, New: valid})
	mustPanic("nil factory", TargetInfo{Name: "X", Family: "tpu", RepCores: 8})
	mustPanic("zero RepCores", TargetInfo{Name: "X", Family: "tpu", New: valid})
	mustPanic("duplicate", TargetInfo{Name: "TPUv4", Family: "tpu", RepCores: 8, New: valid})
}
