package cross

import "cross/internal/tpusim"

// ShardedCompiler is the legacy handle for pod-scale lowering. The
// sharded lowering itself moved into Compiler: every Cost*/Lower*
// method is target-aware, and a *tpusim.Pod is just another Target, so
// this type is now a thin wrapper that pins the pod field for old
// callers. New code should use Compile(pod, params) directly.
//
// Deprecated: use Compile with a *tpusim.Pod target.
type ShardedCompiler struct {
	*Compiler
	Pod *tpusim.Pod
}

// NewSharded validates the parameters and builds a pod compiler.
//
// Deprecated: use Compile(pod, p).
func NewSharded(pod *tpusim.Pod, p Params) (*ShardedCompiler, error) {
	if pod == nil || len(pod.Cores) == 0 {
		return nil, errNilTarget
	}
	c, err := Compile(pod, p)
	if err != nil {
		return nil, err
	}
	return &ShardedCompiler{Compiler: c, Pod: pod}, nil
}

// LowerSharded re-targets this compiler's parameter set at a pod.
//
// Deprecated: use Compile(pod, c.P).
func (c *Compiler) LowerSharded(pod *tpusim.Pod) (*ShardedCompiler, error) {
	return NewSharded(pod, c.P)
}

// CostBConv keeps the legacy three-argument pod signature (BAT is
// always on in the sharded lowering).
//
// Deprecated: use Compiler.CostBConv or LowerBConv.
func (s *ShardedCompiler) CostBConv(n, l, lOut int) float64 {
	return s.Compiler.CostBConv(n, l, lOut, true)
}

// CostVecModMulLocal charges an n-element multiplication whose operand
// range is already core-local (NOT divided by the core count) — used
// for per-digit work inside the key switch.
//
// Deprecated: local costing is an internal detail of the unified
// lowering.
func (s *ShardedCompiler) CostVecModMulLocal(n int) float64 {
	return s.costVecModMulAlg(n, s.P.Red)
}

// CostVecModAddLocal is the core-local addition analogue.
//
// Deprecated: local costing is an internal detail of the unified
// lowering.
func (s *ShardedCompiler) CostVecModAddLocal(n int) float64 {
	return s.costVecModAddLocal(n)
}

// CollectiveSeconds reports the interconnect time accumulated in the
// target's collective trace — ICI on a pod, NVLink on a GPU node; the
// trace's total, so every fabric vocabulary is counted. (Defined on
// Compiler so both faces share it.) Every Target owns a collective
// trace — a bare device's just stays empty — so no nil-guard is needed.
func (c *Compiler) CollectiveSeconds() float64 {
	return c.T.CollectiveTrace().Total()
}
