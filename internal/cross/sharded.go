package cross

import (
	"fmt"

	"cross/internal/tpusim"
)

// Sharded lowering (pod-scale CROSS). The single-core compiler lowers
// every HE kernel onto one tensor core; ShardedCompiler lowers the same
// schedules onto a tpusim.Pod, splitting the two parallelism axes HE
// kernels expose:
//
//   - limb parallelism: RNS limbs are independent through NTT/INTT and
//     all element-wise arithmetic, so batches of limb transforms split
//     across cores with no communication;
//   - slot parallelism: element-wise VecMod* kernels split their
//     element range across cores with no communication.
//
// Communication appears exactly where the mathematics mixes limbs or
// digits:
//
//   - BConv step 2 multiplies ALL source limbs into every destination
//     limb, so the coefficient-domain source must be all-gathered
//     before each core computes its destination-limb shard;
//   - the key-switch inner product accumulates across digits that live
//     on different cores, costing one all-reduce of the two
//     accumulator polynomials over the extended basis.
//
// The schedule is SPMD and the cores are symmetric, so the pod latency
// of a kernel is core 0's time plus the collective time; both are
// charged to their respective traces (core trace / pod trace).
type ShardedCompiler struct {
	Pod *tpusim.Pod
	P   Params

	// c0 lowers the per-core work onto core 0 — by symmetry every
	// other core performs identical work in parallel.
	c0 *Compiler
}

// NewSharded validates the parameters and builds a pod compiler.
func NewSharded(pod *tpusim.Pod, p Params) (*ShardedCompiler, error) {
	if pod == nil || len(pod.Cores) == 0 {
		return nil, fmt.Errorf("cross: sharded lowering needs a pod with at least one core")
	}
	c0, err := New(pod.Cores[0], p)
	if err != nil {
		return nil, err
	}
	return &ShardedCompiler{Pod: pod, P: p, c0: c0}, nil
}

// LowerSharded re-targets this compiler's parameter set at a pod,
// returning the sharded lowering mode.
func (c *Compiler) LowerSharded(pod *tpusim.Pod) (*ShardedCompiler, error) {
	return NewSharded(pod, c.P)
}

// NumCores returns the pod's core count.
func (s *ShardedCompiler) NumCores() int { return len(s.Pod.Cores) }

// shard returns the per-core share of `units` independent work units
// (the critical path is the core with the ceiling share).
func (s *ShardedCompiler) shard(units int) int {
	n := s.NumCores()
	if units <= 0 {
		return 0
	}
	return (units + n - 1) / n
}

// --- element-wise kernels (slot-parallel, no communication) ---

// CostVecModMul charges an n-element modular multiplication with the
// element range sharded across cores.
func (s *ShardedCompiler) CostVecModMul(n int) float64 {
	return s.c0.CostVecModMul(s.shard(n))
}

// CostVecModAdd charges an n-element modular addition, sharded.
func (s *ShardedCompiler) CostVecModAdd(n int) float64 {
	return s.c0.CostVecModAdd(s.shard(n))
}

// --- NTT (limb-parallel, no communication) ---

// CostNTTMat charges `batch` limb NTTs round-robined across cores:
// each core transforms its ⌈batch/n⌉ share and the outputs stay
// sharded (element-wise consumers are layout- and placement-agnostic,
// the MAT property extended across the pod).
func (s *ShardedCompiler) CostNTTMat(batch int) float64 {
	return s.c0.CostNTTMat(s.shard(batch))
}

// CostINTTMat is the sharded inverse transform.
func (s *ShardedCompiler) CostINTTMat(batch int) float64 {
	return s.c0.CostINTTMat(s.shard(batch))
}

// --- BConv (the limb-mixing kernel: gather, then shard outputs) ---

// CostBConv charges a basis conversion of an N-coefficient polynomial
// from l to lOut limbs across the pod: step 1 is limb-parallel, the
// coefficient-domain source is all-gathered (step 2 consumes every
// source limb), and each core computes its ⌈lOut/n⌉ destination limbs
// with the BAT MXU matmul.
func (s *ShardedCompiler) CostBConv(n, l, lOut int) float64 {
	// Every core needs the full l-limb source for its matmul shard.
	return s.costBConvGathered(n, l, lOut) + s.Pod.AllGather(int64(4*n*l))
}

// --- HE operators ---

// CostKeySwitch charges one hybrid key switch across the pod. The
// dnum ModUp digits are independent and round-robin across cores; the
// cross-digit inner-product accumulation costs one all-reduce of both
// accumulator polynomials over the extended basis; ModDown proceeds
// limb-parallel with a sharded BConv per result polynomial.
func (s *ShardedCompiler) CostKeySwitch() float64 {
	n := s.P.N()
	alpha := s.P.Alpha()
	dnum := s.P.Dnum
	l := s.P.L
	ext := l + alpha

	var t float64
	// ModUp: each core runs its ⌈dnum/n⌉ digits serially; a digit's
	// INTT → BConv → NTT chain is core-local, so the single-core
	// lowering applies unchanged.
	dShard := s.shard(dnum)
	for d := 0; d < dShard; d++ {
		t += s.c0.CostINTTMat(alpha)
		t += s.c0.CostBConv(n, alpha, ext-alpha, true)
		t += s.c0.CostNTTMat(ext - alpha)
	}
	// evk inner product over the local digits, then all-reduce the two
	// accumulator polynomials (ext limbs × N coefficients × 4 bytes).
	t += s.CostVecModMulLocal(dShard * 2 * ext * n)
	t += s.CostVecModAddLocal((dShard - 1) * 2 * ext * n)
	t += s.Pod.AllReduce(int64(2 * ext * n * 4))
	// ModDown ×2 result polynomials, limb-parallel.
	for p := 0; p < 2; p++ {
		t += s.CostINTTMat(alpha)
		t += s.Pod.AllGather(int64(4 * n * alpha))
		t += s.costBConvGathered(n, alpha, l)
		t += s.CostNTTMat(l)
		t += s.CostVecModAdd(l * n) // subtract
		t += s.CostVecModMul(l * n) // × P⁻¹ mod q_i
	}
	return t
}

// costBConvGathered is CostBConv minus the all-gather (the caller has
// already paid to replicate the source): step 1 limb-sharded, then the
// step-2 BAT matmul over the full source with the output limbs
// sharded.
func (s *ShardedCompiler) costBConvGathered(n, l, lOut int) float64 {
	k := s.P.K()
	dev := s.c0.Dev
	alg := s.P.Red
	t := dev.Dispatch(tpusim.CatOther)
	t += dev.VecOp(tpusim.CatVecModOps, n*s.shard(l), opsMul32+redOps(alg))
	t += dev.TypeConvert(tpusim.CatTypeConv, n*l)
	t += dev.MatMulINT8(tpusim.CatBConvMatMul, n, k*l, k*s.shard(lOut))
	t += dev.VecOp(tpusim.CatVecModOps, n*s.shard(lOut), opsChunkMerge+redOps(alg))
	t += dev.HBM(tpusim.CatHBM, int64(k*l*k*s.shard(lOut)))
	return t
}

// CostVecModMulLocal charges an n-element multiplication whose operand
// range is already core-local (NOT divided by the core count) — used
// for per-digit work inside the key switch.
func (s *ShardedCompiler) CostVecModMulLocal(n int) float64 {
	return s.c0.CostVecModMul(n)
}

// CostVecModAddLocal is the core-local addition analogue.
func (s *ShardedCompiler) CostVecModAddLocal(n int) float64 {
	return s.c0.CostVecModAdd(n)
}

// CostRescale charges one rescaling across the pod: the dropped top
// limb is inverse-transformed on one core and replicated (it is the
// BConv source for every output limb), then the L−1 output limbs
// proceed limb-parallel.
func (s *ShardedCompiler) CostRescale() float64 {
	n := s.P.N()
	l := s.P.L
	var t float64
	for p := 0; p < 2; p++ {
		t += s.c0.CostINTTMat(1)
		t += s.Pod.Broadcast(int64(4 * n))
		t += s.costBConvGathered(n, 1, l-1)
		t += s.CostNTTMat(l - 1)
		t += s.CostVecModAdd((l - 1) * n)
		t += s.CostVecModMul((l - 1) * n) // × q_L⁻¹ mod q_i
	}
	return t
}

// CostHEAdd charges a ciphertext addition (slot-parallel).
func (s *ShardedCompiler) CostHEAdd() float64 {
	return s.CostVecModAdd(2 * s.P.L * s.P.N())
}

// CostHEMult charges a full ciphertext multiplication across the pod:
// the tensor product is slot-parallel, relinearisation is the sharded
// key switch, and the rescale is limb-parallel.
func (s *ShardedCompiler) CostHEMult() float64 {
	n := s.P.N()
	l := s.P.L
	t := s.CostVecModMul(4 * l * n)
	t += s.CostVecModAdd(l * n)
	t += s.CostKeySwitch()
	t += s.CostVecModAdd(2 * l * n)
	t += s.CostRescale()
	return t
}

// CostAutomorphism charges τ_t on `limbs` polynomial limbs, sharded:
// the gather permutes each limb independently.
func (s *ShardedCompiler) CostAutomorphism(limbs int) float64 {
	dev := s.c0.Dev
	return dev.Dispatch(tpusim.CatOther) +
		dev.Gather(tpusim.CatPermutation, s.shard(limbs)*s.P.N())
}

// CostRotate charges a slot rotation: the limb-sharded automorphism on
// both polynomials plus the sharded key switch.
func (s *ShardedCompiler) CostRotate() float64 {
	return s.CostAutomorphism(2*s.P.L) + s.CostKeySwitch()
}

// MeasureHEOps costs the four Tab. VIII operators on the pod,
// trace-isolated.
func (s *ShardedCompiler) MeasureHEOps() HEOpLatencies {
	return HEOpLatencies{
		Add:     s.Snapshot(s.CostHEAdd),
		Mult:    s.Snapshot(s.CostHEMult),
		Rescale: s.Snapshot(s.CostRescale),
		Rotate:  s.Snapshot(s.CostRotate),
	}
}

// Snapshot runs a costing closure without polluting the core-0 trace
// or the pod's collective trace, returning only the simulated time.
func (s *ShardedCompiler) Snapshot(f func() float64) float64 {
	savedPod := s.Pod.Trace
	s.Pod.Trace = tpusim.NewTrace()
	defer func() { s.Pod.Trace = savedPod }()
	return s.c0.Snapshot(f)
}

// CollectiveSeconds reports the ICI time accumulated in the pod trace.
func (s *ShardedCompiler) CollectiveSeconds() float64 {
	return s.Pod.Trace.Seconds(tpusim.CatICI)
}
