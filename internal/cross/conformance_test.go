package cross_test

import (
	"testing"

	"cross/internal/cross"
	"cross/internal/cross/crosstest"
	"cross/internal/tpusim"
)

// TestTargetConformanceTPU runs the shared Target conformance suite
// against the TPU backend — the same suite gpusim (and any third
// backend) runs, so the contract cannot drift per backend.
func TestTargetConformanceTPU(t *testing.T) {
	for _, spec := range tpusim.AllSpecs() {
		spec := spec
		crosstest.Conformance(t, crosstest.Backend{
			Name:      "tpusim/" + spec.Name,
			NewDevice: func() cross.Target { return tpusim.NewDevice(spec) },
			NewNode:   func(cores int) cross.Target { return tpusim.MustPod(spec, cores) },
		})
	}
}
