package cross

import (
	"strings"
	"testing"

	"cross/internal/tpusim"
)

// --- Golden equality: every legacy Cost* wrapper returns bit-identical
// values to its Schedule.Total replacement, on SetA–SetD × all four TPU
// specs (the api_redesign acceptance bar). ---

func TestGoldenCostEqualsScheduleTotal(t *testing.T) {
	for _, spec := range tpusim.AllSpecs() {
		for _, name := range []string{"A", "B", "C", "D"} {
			p, err := NamedSet(name)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(tpusim.NewDevice(spec), p)
			if err != nil {
				t.Fatal(err)
			}
			bs := DefaultBootstrapSchedule(p)
			pairs := []struct {
				op     string
				legacy float64
				sched  *Schedule
			}{
				{"HE-Add", c.Snapshot(c.CostHEAdd), c.LowerHEAdd()},
				{"HE-Mult", c.Snapshot(c.CostHEMult), c.LowerHEMult()},
				{"Rescale", c.Snapshot(c.CostRescale), c.LowerRescale()},
				{"Rotate", c.Snapshot(c.CostRotate), c.LowerRotate()},
				{"Conjugate", c.Snapshot(c.CostConjugate), c.LowerConjugate()},
				{"KeySwitch", c.Snapshot(c.CostKeySwitch), c.LowerKeySwitch()},
				{"PtMul", c.Snapshot(c.CostPtMul), c.LowerPtMul()},
				{"PtAdd", c.Snapshot(c.CostPtAdd), c.LowerPtAdd()},
				{"NTT×8", c.Snapshot(func() float64 { return c.CostNTTMat(8) }), c.LowerNTT(8)},
				{"INTT×8", c.Snapshot(func() float64 { return c.CostINTTMat(8) }), c.LowerINTT(8)},
				{"BConv", c.Snapshot(func() float64 { return c.CostBConv(p.N(), 4, 8, true) }),
					c.LowerBConv(p.N(), 4, 8, true)},
				{"Bootstrap", c.Snapshot(func() float64 { return c.CostBootstrap(bs) }), c.LowerBootstrap(bs)},
				{"RotateHoisted", c.Snapshot(func() float64 { return c.CostRotateHoisted(4) }), c.LowerRotateHoisted(4)},
			}
			for _, pr := range pairs {
				if pr.legacy != pr.sched.Total {
					t.Errorf("%s Set%s %s: legacy %g != schedule %g",
						spec.Name, name, pr.op, pr.legacy, pr.sched.Total)
				}
			}
		}
	}
}

// A 1-core Pod schedule must be bit-identical to the Device schedule:
// both satisfy Target and share one lowering code path, where the
// 1-core pod's shards are whole and its collectives free.
func TestGoldenDevicePodScheduleIdentity(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D"} {
		p, err := NamedSet(name)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), p)
		if err != nil {
			t.Fatal(err)
		}
		pod, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 1), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]*Schedule{
			{dev.LowerHEMult(), pod.LowerHEMult()},
			{dev.LowerRotate(), pod.LowerRotate()},
			{dev.LowerRescale(), pod.LowerRescale()},
			{dev.LowerNTT(64), pod.LowerNTT(64)},
		} {
			d, q := pair[0], pair[1]
			if d.Total != q.Total {
				t.Errorf("Set%s %s: device total %g != 1-core pod total %g", name, d.Op, d.Total, q.Total)
			}
			if q.Collective != 0 {
				t.Errorf("Set%s %s: 1-core pod charged collective time %g", name, q.Op, q.Collective)
			}
			if d.Kernels != q.Kernels {
				t.Errorf("Set%s %s: kernel counts diverge: %v vs %v", name, d.Op, d.Kernels, q.Kernels)
			}
			for cat, sec := range d.Trace.ByCategory() {
				if q.Trace.Seconds(cat) != sec {
					t.Errorf("Set%s %s: category %s %g != %g", name, d.Op, cat, sec, q.Trace.Seconds(cat))
				}
			}
		}
	}
}

func TestDeviceCollectiveTraceOwned(t *testing.T) {
	// Regression test for the Target asymmetry: Device.CollectiveTrace
	// used to return nil, forcing nil-guards into every consumer. Both
	// target kinds now own a real (empty, for a bare core) collective
	// trace and take the identical costing code path.
	dev := tpusim.NewDevice(tpusim.TPUv6e())
	pod := tpusim.MustPod(tpusim.TPUv6e(), 1)
	for _, tgt := range []Target{dev, pod} {
		ct := tgt.CollectiveTrace()
		if ct == nil {
			t.Fatalf("%s: CollectiveTrace is nil", tgt.Name())
		}
		// The swap hook must be honoured, not a no-op.
		fresh := tpusim.NewTrace()
		tgt.SetCollectiveTrace(fresh)
		if tgt.CollectiveTrace() != fresh {
			t.Errorf("%s: SetCollectiveTrace did not swap", tgt.Name())
		}
		tgt.SetCollectiveTrace(ct)
	}

	// Guard-free consumers work on both targets and agree bit-for-bit.
	p := SetC()
	cd, err := Compile(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(pod, p)
	if err != nil {
		t.Fatal(err)
	}
	sd, sp := cd.LowerHEMult(), cp.LowerHEMult()
	if sd.Total != sp.Total || sd.Collective != 0 || sp.Collective != 0 {
		t.Errorf("device/1-core-pod schedules diverge: %g/%g collective %g/%g",
			sd.Total, sp.Total, sd.Collective, sp.Collective)
	}
	if cd.CollectiveSeconds() != 0 || cp.CollectiveSeconds() != 0 {
		t.Error("CollectiveSeconds non-zero on collective-free targets")
	}
	// Lowering restores the live collective trace on both targets.
	if dev.CollectiveTrace() == nil || pod.CollectiveTrace() == nil {
		t.Error("live collective trace lost after lowering")
	}
	// Reset clears the device's collective trace without nilling it.
	dev.Reset()
	if dev.CollectiveTrace() == nil || dev.CollectiveTrace().Total() != 0 {
		t.Error("Reset broke the device collective trace")
	}
}

func TestCompileRejectsBadTargets(t *testing.T) {
	if _, err := Compile(nil, SetA()); err == nil {
		t.Error("expected error for nil target")
	}
	if _, err := Compile((*tpusim.Pod)(nil), SetA()); err == nil {
		t.Error("expected error for typed-nil pod")
	}
	if _, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), Params{}); err == nil {
		t.Error("expected validation error for zero params")
	}
}

func TestScheduleMetadata(t *testing.T) {
	p := SetD()
	c, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 4), p)
	if err != nil {
		t.Fatal(err)
	}
	s := c.LowerHEMult()
	if s.Op != "HE-Mult" || s.Target != "TPUv6e-4" || s.Cores != 4 {
		t.Errorf("schedule metadata wrong: %+v", s)
	}
	if s.Collective <= 0 {
		t.Error("4-core HE-Mult should charge collective time")
	}
	if s.Seconds(tpusim.CatICI) != s.Collective {
		t.Error("ICI trace category should equal Collective")
	}
	if got := s.Compute() + s.Collective; got != s.Total {
		t.Errorf("Compute+Collective = %g != Total %g", got, s.Total)
	}
	if s.Kernels.Collectives == 0 || s.Kernels.NTTs == 0 || s.Kernels.VecMuls == 0 {
		t.Errorf("kernel counts degenerate: %v", s.Kernels)
	}
	if !strings.Contains(s.String(), "HE-Mult") || !strings.Contains(s.String(), "collective") {
		t.Errorf("String() missing fields: %s", s.String())
	}
	// Lowering must not pollute the live traces.
	if c.Dev.Trace.Total() != 0 || c.CollectiveSeconds() != 0 {
		t.Error("LowerHEMult polluted the live traces")
	}
}

func TestScheduleKernelCountsMatchTextbook(t *testing.T) {
	p := SetD()
	c, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), p)
	if err != nil {
		t.Fatal(err)
	}
	ks := c.LowerKeySwitch()
	// ModUp: dnum digits × (INTT + BConv + NTT); ModDown: 2 × (INTT +
	// BConv + NTT). Launch counts, not limb counts.
	wantNTT := p.Dnum + 2
	wantINTT := p.Dnum + 2
	wantBConv := p.Dnum + 2
	if ks.Kernels.NTTs != wantNTT || ks.Kernels.INTTs != wantINTT || ks.Kernels.BConvs != wantBConv {
		t.Errorf("key-switch kernels = %v, want ntt=%d intt=%d bconv=%d",
			ks.Kernels, wantNTT, wantINTT, wantBConv)
	}
	if ks.Kernels.Collectives != 0 {
		t.Error("single-core key switch should have no collectives")
	}
	// On 3 cores the digits shard 3→1 and collectives appear.
	c3, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 3), p)
	if err != nil {
		t.Fatal(err)
	}
	ks3 := c3.LowerKeySwitch()
	if ks3.Kernels.NTTs >= ks.Kernels.NTTs {
		t.Error("sharded ModUp should launch fewer local transforms")
	}
	if ks3.Kernels.Collectives == 0 {
		t.Error("multi-core key switch must pay collectives")
	}
}

func TestProgramComposesAndMemoizes(t *testing.T) {
	c, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), SetC())
	if err != nil {
		t.Fatal(err)
	}
	mult := c.LowerHEMult().Total
	rot := c.LowerRotate().Total

	prog := NewProgram(c).HEMultN(3).Rotate(1).Rotate(5)
	s := prog.Lower()
	want := 3*mult + rot + rot
	if s.Total != want {
		t.Errorf("program total %g != %g", s.Total, want)
	}
	if prog.Steps() != 3 || prog.OpCount() != 5 {
		t.Errorf("steps=%d opcount=%d", prog.Steps(), prog.OpCount())
	}
	// Memoization: the two Rotate entries share one lowering.
	if len(prog.memo) != 2 {
		t.Errorf("memo holds %d schedules, want 2 (mult, rotate)", len(prog.memo))
	}
	if !strings.Contains(s.Op, "3×HE-Mult") {
		t.Errorf("program op label: %s", s.Op)
	}
}

func TestProgramBatchReplicates(t *testing.T) {
	c, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), SetB())
	if err != nil {
		t.Fatal(err)
	}
	one := NewProgram(c).HEMult().Rescale().Lower()
	batched := NewProgram(c).HEMult().Rescale().Batch(64).Lower()
	if batched.Total != one.Total*64 {
		t.Errorf("batch-64 total %g != 64× single %g", batched.Total, one.Total*64)
	}
	if batched.Kernels.NTTs != one.Kernels.NTTs*64 {
		t.Error("batched kernel counts should scale")
	}
	if !strings.Contains(batched.Op, "64×") {
		t.Errorf("batched op label: %s", batched.Op)
	}
}

func TestProgramOnPodCarriesCollectives(t *testing.T) {
	c, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 4), SetD())
	if err != nil {
		t.Fatal(err)
	}
	s := NewProgram(c).HEMult().Rotate(1).Lower()
	if s.Collective <= 0 {
		t.Error("pod program should carry collective time")
	}
	if s.Cores != 4 {
		t.Errorf("cores = %d", s.Cores)
	}
	wantColl := c.LowerHEMult().Collective + c.LowerRotate().Collective
	if s.Collective != wantColl {
		t.Errorf("program collective %g != sum of ops %g", s.Collective, wantColl)
	}
}

func TestEmptyProgramLowersToZero(t *testing.T) {
	c, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), SetA())
	if err != nil {
		t.Fatal(err)
	}
	s := NewProgram(c).HEMultN(0).Lower()
	if s.Total != 0 || s.Kernels.Total() != 0 {
		t.Errorf("empty program not zero: %+v", s)
	}
}
