package cross

import (
	"sync"

	"cross/internal/modarith"
	"cross/internal/tpusim"
)

// VPU operation counts per element for the arithmetic primitives, on
// 32-bit lanes with 16-bit multiply primitives (the TPU's native
// shape, Alg. 1's "16-bit primitives"). These are the model's only
// hand-tuned constants; everything else derives from Tab. IV specs.
const (
	opsMul32 = 4 // 32×32→64-bit product from four 16-bit multiplies

	// Modular reduction of a 64-bit product (Fig. 13 ablation):
	opsMontgomeryRed = 11 // Alg. 1: 1 low mult + 4 16-bit mults + 6 adds/shifts
	opsBarrettRed    = 16 // Alg. 4: 64×32 high mult + mul-sub + 2 corrections
	opsShoupRed      = 24 // needs 64-bit multiplies, emulated on 32-bit lanes

	// Butterfly overhead beyond the modular multiply (add, sub, lazy
	// corrections) for the radix-2 kernel.
	opsButterflyExtra = 5

	// Chunk merge: K shifted adds plus carry normalisation.
	opsChunkMerge = 8
)

// redOps returns the per-element VPU cost of one modular reduction.
func redOps(alg modarith.ReduceAlgorithm) float64 {
	switch alg {
	case modarith.Montgomery:
		return opsMontgomeryRed
	case modarith.Shoup:
		return opsShoupRed
	case modarith.BATLazy:
		// handled structurally (MXU matmul); VPU side only merges.
		return opsChunkMerge
	default:
		return opsBarrettRed
	}
}

// Compiler lowers HE kernels for one Target and parameter set. The
// lowering is written once: independent work units (RNS limbs, slots,
// key-switch digits) shard across the target's cores and collective
// cost is charged exactly where the mathematics mixes limbs or digits
// (BConv step 2, the key-switch inner product). On a single-core
// target every shard is the whole and every collective is free, so the
// lowering reduces to the paper's single-core model bit-exactly.
type Compiler struct {
	// T is the lowering target: a *tpusim.Device or *tpusim.Pod.
	T Target
	// Dev is the target's representative core (T.Core()), kept as a
	// field because most of the lowering charges it directly.
	Dev *tpusim.Device
	P   Params

	// mu serialises LowerOp: a lowering swaps the live traces and the
	// kernel tally in place, so concurrent Lower* calls on one compiler
	// (sweep workers sharing a target) must not interleave. The
	// deprecated Cost* methods remain unsynchronised when called
	// directly — concurrent callers go through the Lower* face.
	mu sync.Mutex

	// tally counts kernel invocations for the Schedule IR.
	tally KernelCounts
}

// Compile validates the parameters and returns a compiler for any
// lowering target — a bare tensor core or a multi-core pod.
func Compile(t Target, p Params) (*Compiler, error) {
	if t == nil || t.Core() == nil {
		return nil, errNilTarget
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Compiler{T: t, Dev: t.Core(), P: p}, nil
}

// New builds a compiler for a single tensor core.
//
// Deprecated-ish: New remains for convenience; Compile is the general
// entry point and accepts pods too.
func New(dev *tpusim.Device, p Params) (*Compiler, error) {
	return Compile(dev, p)
}

// NumCores returns the target's core count.
func (c *Compiler) NumCores() int { return c.T.NumCores() }

// shard returns the per-core share of `units` independent work units
// (the critical path is the core with the ceiling share).
func (c *Compiler) shard(units int) int {
	if units <= 0 {
		return 0
	}
	n := c.T.NumCores()
	return (units + n - 1) / n
}

// --- collective helpers (tallied for the Schedule IR) ---

func (c *Compiler) allGather(bytes int64) float64 {
	if c.T.NumCores() > 1 {
		c.tally.Collectives++
	}
	return c.T.AllGather(bytes)
}

func (c *Compiler) allReduce(bytes int64) float64 {
	if c.T.NumCores() > 1 {
		c.tally.Collectives++
	}
	return c.T.AllReduce(bytes)
}

func (c *Compiler) broadcast(bytes int64) float64 {
	if c.T.NumCores() > 1 {
		c.tally.Collectives++
	}
	return c.T.Broadcast(bytes)
}

// --- VecModMul (Fig. 13a) ---

// CostVecModMul returns the simulated time of an n-element modular
// multiplication of two runtime vectors under the configured reduction
// algorithm, with the element range sharded across the target's cores
// (slot parallelism — no communication). BATLazy routes the reduction
// through the MXU (a skinny (n, K, K) matmul) — faithfully reproducing
// why it loses on the TPU's 128-wide tiles (§V-F2).
//
// Deprecated: equivalent to LowerOp("VecModMul", …).Total; prefer the
// Schedule-returning Lower* methods for new code.
func (c *Compiler) CostVecModMul(n int) float64 {
	return c.costVecModMulAlg(c.shard(n), c.P.Red)
}

// costVecModMulAlg is the core-local lowering (no sharding).
func (c *Compiler) costVecModMulAlg(n int, alg modarith.ReduceAlgorithm) float64 {
	c.tally.VecMuls++
	if alg == modarith.BATLazy {
		t := c.Dev.Dispatch(tpusim.CatOther)
		t += c.Dev.VecOp(tpusim.CatVecModOps, n, opsMul32)
		t += c.Dev.TypeConvert(tpusim.CatTypeConv, n)
		k := c.P.K()
		// One (n, K, K) INT8 matmul folds the overflow bytes (§J);
		// reduction dimension K=4 strands the systolic array.
		t += c.Dev.MatMulINT8(tpusim.CatOther, n, k, k)
		t += c.Dev.VecOp(tpusim.CatVecModOps, n, opsChunkMerge)
		return t
	}
	return c.Dev.Dispatch(tpusim.CatOther) + c.Dev.VecOp(tpusim.CatVecModOps, n, opsMul32+redOps(alg))
}

// CostVecModAdd returns the time of an n-element modular addition,
// slot-sharded across the target.
//
// Deprecated: prefer the Schedule-returning Lower* methods.
func (c *Compiler) CostVecModAdd(n int) float64 {
	return c.costVecModAddLocal(c.shard(n))
}

// costVecModAddLocal is the core-local addition (no sharding).
func (c *Compiler) costVecModAddLocal(n int) float64 {
	c.tally.VecAdds++
	return c.Dev.Dispatch(tpusim.CatOther) + c.Dev.VecOp(tpusim.CatVecModOps, n, 3)
}

// --- High-precision ModMatMul (Tab. V) ---
//
// The ModMatMul ablations are single-core analysis kernels (Tab. V's
// benchmark runs on one tensor core); they charge the representative
// core whatever the target.

// CostMatModMulBAT lowers an (H, V, W) modular matmul with pre-known
// left operand through BAT: one dense (KH, KV, W) INT8 matmul, runtime
// chunk-stacking of the right operand only, and a K-length merge chain.
func (c *Compiler) CostMatModMulBAT(h, v, w int) float64 {
	k := c.P.K()
	c.tally.MatMuls++
	t := c.Dev.Dispatch(tpusim.CatOther)
	t += c.Dev.TypeConvert(tpusim.CatTypeConv, v*w) // RUNTIMECOMPILERIGHT
	t += c.Dev.MatMulINT8(tpusim.CatNTTMatMul, k*h, k*v, w)
	// Merge K partial-sum rows per output + one lazy reduction.
	t += c.Dev.VecOp(tpusim.CatVecModOps, h*w, opsChunkMerge+redOps(c.P.Red))
	// Operand residency: dense left matrix streamed from HBM once.
	t += c.Dev.HBM(tpusim.CatHBM, int64(k*h*k*v))
	return t
}

// CostMatModMulBaseline lowers the same matmul the SoTA GPU way
// (Fig. 7 left): the sparse Toeplitz expansion has (2K−1)/K more rows
// (~43% zeros), the left operand is chunk-converted at runtime because
// the sparse form isn't cached as bytes, and the carry chain is double
// length (2K−1 merges).
func (c *Compiler) CostMatModMulBaseline(h, v, w int) float64 {
	k := c.P.K()
	c.tally.MatMuls++
	rows := (2*k - 1) * h
	t := 2 * c.Dev.Dispatch(tpusim.CatOther)
	t += c.Dev.TypeConvert(tpusim.CatTypeConv, v*w+h*v) // both operands
	t += c.Dev.MatMulINT8(tpusim.CatNTTMatMul, rows, k*v, w)
	t += c.Dev.VecOp(tpusim.CatVecModOps, h*w, float64(2*k-1)*2+redOps(c.P.Red))
	// Sparse operand is (2K−1)/K ≈ 1.75× larger in memory (Fig. 3 ❶).
	t += c.Dev.HBM(tpusim.CatHBM, int64(rows*k*v))
	return t
}

// --- BConv step 2 (Tab. VI) ---

// CostBConv returns the simulated time of a full basis conversion of an
// N-coefficient polynomial from l to lOut limbs. Step 1 is
// limb-parallel; step 2 multiplies ALL source limbs into every
// destination limb, so on a multi-core target the coefficient-domain
// source is all-gathered before each core computes its ⌈lOut/n⌉
// destination limbs. With BAT the step-2 (N, L, L')-ModMatMul runs on
// the MXU as (N, KL, KL'); without, it runs as L·L' scalar passes on
// the VPU (§III-C1).
//
// Deprecated: prefer LowerBConv, which returns the full Schedule.
func (c *Compiler) CostBConv(n, l, lOut int, useBAT bool) float64 {
	return c.costBConvGathered(n, l, lOut, useBAT) + c.allGather(int64(4*n*l))
}

// costBConvGathered is CostBConv minus the all-gather (the caller has
// already paid to replicate the source): step 1 limb-sharded, then the
// step-2 matmul over the full source with the output limbs sharded.
func (c *Compiler) costBConvGathered(n, l, lOut int, useBAT bool) float64 {
	return c.costBConvShardedBy(n, l, lOut, useBAT, c.shard)
}

// costBConvLocal is the fully core-local basis conversion — used for
// per-digit ModUp work inside the key switch, where a digit's whole
// chain lives on one core.
func (c *Compiler) costBConvLocal(n, l, lOut int, useBAT bool) float64 {
	return c.costBConvShardedBy(n, l, lOut, useBAT, func(units int) int { return units })
}

// costBConvShardedBy is the one BConv cost model; sh maps a limb count
// to the per-core share (the identity for core-local conversions).
func (c *Compiler) costBConvShardedBy(n, l, lOut int, useBAT bool, sh func(int) int) float64 {
	c.tally.BConvs++
	alg := c.P.Red
	// Step 1: l independent N-length VecModMul (both strategies).
	t := c.Dev.Dispatch(tpusim.CatOther)
	t += c.Dev.VecOp(tpusim.CatVecModOps, n*sh(l), opsMul32+redOps(alg))
	if useBAT {
		k := c.P.K()
		t += c.Dev.TypeConvert(tpusim.CatTypeConv, n*l)
		t += c.Dev.MatMulINT8(tpusim.CatBConvMatMul, n, k*l, k*sh(lOut))
		t += c.Dev.VecOp(tpusim.CatVecModOps, n*sh(lOut), opsChunkMerge+redOps(alg))
		t += c.Dev.HBM(tpusim.CatHBM, int64(k*l*k*sh(lOut)))
		return t
	}
	// VPU path: for each of the lOut output limbs, an l-term
	// multiply-accumulate over every coefficient.
	t += c.Dev.VecOp(tpusim.CatVecModOps, n*sh(lOut), float64(l)*(opsMul32+redOps(alg)+1))
	t += c.Dev.HBM(tpusim.CatHBM, int64(4*l*sh(lOut)))
	return t
}

// --- NTT variants (Tab. VII, Tab. X, Fig. 11, Fig. 13b) ---

// NTTWorkingSetBytes estimates the on-chip footprint of a batch of
// MAT NTTs: the two BAT-compiled twiddle matrices, the element-wise
// twist, and per-batch input/output/intermediate tiles. Drives the
// batch-capacity knee of Fig. 11b.
func (c *Compiler) NTTWorkingSetBytes(batch int) int64 {
	k := int64(c.P.K())
	r, cc := int64(c.P.R), int64(c.P.C)
	n := int64(c.P.N())
	params := (k*cc)*(k*cc) + (k*r)*(k*r) + 4*n // T1, T3, twist
	perBatch := 4 * n * 3                       // in, out, intermediate
	return params + int64(batch)*perBatch
}

// CostNTTMat returns the simulated latency of `batch` layout-invariant
// 3-step NTTs of one limb (Fig. 10 row 3), round-robined across the
// target's cores: each core transforms its ⌈batch/n⌉ share and the
// outputs stay sharded (element-wise consumers are layout- and
// placement-agnostic, the MAT property extended across the pod). On
// one core: two BAT INT8 matmuls on the MXU, the element-wise twist
// and Montgomery reductions on the VPU, and zero reordering.
//
// Deprecated: prefer LowerNTT, which returns the full Schedule.
func (c *Compiler) CostNTTMat(batch int) float64 {
	return c.costNTTMatAlg(c.shard(batch), c.P.Red, tpusim.CatNTTMatMul)
}

// CostINTTMat is the sharded inverse transform (same structure,
// inverse matrices) charged to the INTT category.
//
// Deprecated: prefer LowerINTT.
func (c *Compiler) CostINTTMat(batch int) float64 {
	return c.costNTTMatAlg(c.shard(batch), c.P.Red, tpusim.CatINTTMatMul)
}

// costNTTMatAlg is the core-local MAT NTT lowering of one batch.
func (c *Compiler) costNTTMatAlg(batch int, alg modarith.ReduceAlgorithm, matCat string) float64 {
	if matCat == tpusim.CatINTTMatMul {
		c.tally.INTTs++
	} else {
		c.tally.NTTs++
	}
	k := c.P.K()
	r, cc := c.P.R, c.P.C
	n := c.P.N()

	// One XLA launch covers the fused 3-step plan.
	t := c.Dev.Dispatch(tpusim.CatOther)
	// Chunk-stack the input coefficients (Fig. 12 "Type Conversion").
	t += c.Dev.TypeConvert(tpusim.CatTypeConv, n*batch)
	// Step 1: TF(KC×KC) @ coef(KC×R) per batch element — batched as a
	// wider right-hand side.
	t += c.Dev.MatMulINT8(matCat, k*cc, k*cc, r*batch)
	t += c.vecReduce(n*batch, alg)
	// Step 2: element-wise twist on the VPU.
	t += c.costVecModMulConst(n*batch, alg)
	// XLA relayout of the intermediate to (8,128) tiles between steps
	// (Fig. 12 "Copy+Reshape").
	t += c.Dev.Copy(tpusim.CatCopyReshape, int64(4*n*batch))
	// Step 3: TF(KR×KR) @ (KR×C).
	t += c.Dev.TypeConvert(tpusim.CatTypeConv, n*batch)
	t += c.Dev.MatMulINT8(matCat, k*r, k*r, cc*batch)
	t += c.vecReduce(n*batch, alg)

	// Off-chip traffic: data always streams; parameters amortise across
	// the batch only while the working set fits on-chip (Fig. 11b).
	paramBytes := int64((k*cc)*(k*cc) + (k*r)*(k*r) + 4*n)
	dataBytes := int64(4 * n * 2 * batch)
	if c.Dev.FitsOnChip(c.NTTWorkingSetBytes(batch)) {
		t += c.Dev.HBM(tpusim.CatHBM, paramBytes+dataBytes)
	} else {
		t += c.Dev.HBM(tpusim.CatHBM, paramBytes*int64(batch)+dataBytes)
	}
	return t
}

// vecReduce charges the post-matmul merge + modular reduction.
func (c *Compiler) vecReduce(n int, alg modarith.ReduceAlgorithm) float64 {
	if alg == modarith.BATLazy {
		k := c.P.K()
		t := c.Dev.MatMulINT8(tpusim.CatOther, n, k, k)
		t += c.Dev.VecOp(tpusim.CatVecModOps, n, opsChunkMerge)
		return t
	}
	return c.Dev.VecOp(tpusim.CatVecModOps, n, opsChunkMerge+redOps(alg))
}

// costVecModMulConst is an element-wise multiply by compile-time
// constants (the twist): the constant side is pre-reduced, so one
// multiply + one reduction per element.
func (c *Compiler) costVecModMulConst(n int, alg modarith.ReduceAlgorithm) float64 {
	if alg == modarith.BATLazy {
		return c.costVecModMulAlg(n, alg)
	}
	return c.Dev.VecOp(tpusim.CatVecModOps, n, opsMul32+redOps(alg))
}

// CostNTTMatWithRed is the Fig. 13b ablation entry: the MAT NTT with an
// explicit reduction-algorithm override (core-local — the ablation is a
// single-core experiment).
func (c *Compiler) CostNTTMatWithRed(batch int, alg modarith.ReduceAlgorithm) float64 {
	return c.costNTTMatAlg(batch, alg, tpusim.CatNTTMatMul)
}

// CostNTTRadix2 returns the simulated latency of `batch` radix-2
// Cooley–Tukey NTTs (Alg. 3) on one core: log2(N) stages of VPU
// butterflies each followed by a bit-complement shuffle whose block
// size halves per stage — the fine-grained reordering that collapses
// XLU utilization (§F1, Tab. X).
func (c *Compiler) CostNTTRadix2(batch int) float64 {
	n := c.P.N()
	var t float64
	butterflyOps := opsMul32 + redOps(c.P.Red) + opsButterflyExtra
	half := n
	for stage := 0; stage < c.P.LogN; stage++ {
		half >>= 1
		t += 2 * c.Dev.Dispatch(tpusim.CatOther)
		t += c.Dev.VecOp(tpusim.CatVecModOps, n/2*batch, butterflyOps)
		t += c.Dev.Shuffle(tpusim.CatPermutation, n*batch, half)
	}
	t += c.Dev.HBM(tpusim.CatHBM, int64(4*n*2*batch)+int64(4*n))
	return t
}

// CostNTT4Step returns the simulated latency of the GPU-style 4-step
// NTT on one core: the same matrix pipeline as MAT plus the explicit
// runtime transpose and bit-reverse shuffles MAT eliminates (§III-D1).
func (c *Compiler) CostNTT4Step(batch int) float64 {
	n := c.P.N()
	t := c.costNTTMatAlg(batch, c.P.Red, tpusim.CatNTTMatMul)
	// Runtime transpose of the R×C tile per batch element.
	t += 2 * c.Dev.Dispatch(tpusim.CatOther)
	t += c.Dev.Transpose(tpusim.CatPermutation, n*batch)
	// Bit-reverse shuffle: element-granular.
	t += c.Dev.Shuffle(tpusim.CatPermutation, n*batch, 1)
	// Extra layout round trip through VMEM.
	t += c.Dev.Copy(tpusim.CatCopyReshape, int64(4*n*batch))
	return t
}

// CostAutomorphism returns the cost of τ_t on `limbs` polynomial limbs,
// limb-sharded across the target: MAT cannot embed a general
// automorphism, so each limb lowers to a random gather (§V-E) —
// Fig. 12's 21% Permutation share.
func (c *Compiler) CostAutomorphism(limbs int) float64 {
	c.tally.Gathers++
	return c.Dev.Dispatch(tpusim.CatOther) +
		c.Dev.Gather(tpusim.CatPermutation, c.shard(limbs)*c.P.N())
}

// NTTThroughput returns NTTs/second at a batch size on the target.
func (c *Compiler) NTTThroughput(batch int) float64 {
	lat := c.snapshot(func() float64 { return c.CostNTTMat(batch) })
	return float64(batch) / lat
}

// BestNTTBatch sweeps powers of two up to maxBatch and returns the
// batch size with peak throughput and that throughput — the knee
// finder behind Fig. 11b.
func (c *Compiler) BestNTTBatch(maxBatch int) (int, float64) {
	best, bestThr := 1, 0.0
	for b := 1; b <= maxBatch; b <<= 1 {
		if thr := c.NTTThroughput(b); thr > bestThr {
			best, bestThr = b, thr
		}
	}
	return best, bestThr
}

// snapshot runs a costing closure without polluting the target's
// traces, returning only the elapsed simulated time.
func (c *Compiler) snapshot(f func() float64) float64 {
	return c.LowerOp("snapshot", f).Total
}

// Snapshot exposes trace-isolated costing for harness code.
//
// Deprecated: equivalent to LowerOp(…).Total; prefer the Lower* methods
// which also return the breakdown and kernel counts.
func (c *Compiler) Snapshot(f func() float64) float64 { return c.snapshot(f) }
