package cross

import (
	"testing"

	"cross/internal/modarith"
	"cross/internal/tpusim"
)

func v6eCompiler(t testing.TB, p Params) *Compiler {
	t.Helper()
	c, err := New(tpusim.NewDevice(tpusim.TPUv6e()), p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParamsValidate(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D"} {
		p, err := NamedSet(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("set %s invalid: %v", name, err)
		}
		if p.K() != 4 {
			t.Errorf("set %s: K = %d want 4 for 28-bit moduli", name, p.K())
		}
	}
	if _, err := NamedSet("Z"); err == nil {
		t.Error("expected error for unknown set")
	}
	bad := SetA()
	bad.R = 3
	if err := bad.Validate(); err == nil {
		t.Error("expected error for non-power-of-two split")
	}
	bad = SetA()
	bad.Dnum = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for dnum 0")
	}
	bad = SetA()
	bad.LogQ = 40
	if err := bad.Validate(); err == nil {
		t.Error("expected error for LogQ > 32")
	}
}

func TestParamsDerived(t *testing.T) {
	d := SetD()
	if d.N() != 1<<16 || d.L != 51 || d.Dnum != 3 {
		t.Fatal("Set D constants drifted from Tab. IV")
	}
	if d.Alpha() != 17 {
		t.Fatalf("Set D alpha = %d want ⌈51/3⌉ = 17", d.Alpha())
	}
	if d.R*d.C != d.N() {
		t.Fatal("default split does not cover N")
	}
	// Paper sweeps (128,512),(256,256),(512,128) at N=2^16.
	cands := d.SplitCandidates()
	want := map[[2]int]bool{{128, 512}: true, {256, 256}: true, {512, 128}: true}
	found := 0
	for _, rc := range cands {
		if want[rc] {
			found++
		}
	}
	if found != 3 {
		t.Errorf("SplitCandidates misses paper sweep points: %v", cands)
	}
}

func TestBATBeatsSparseBaseline(t *testing.T) {
	// Tab. V headline: BAT wins on every size, by roughly 1.2–2×.
	c := v6eCompiler(t, SetD())
	cases := [][3]int{{512, 256, 256}, {1024, 256, 256}, {2048, 256, 256},
		{4096, 256, 256}, {1024, 512, 512}, {2048, 2048, 2048}}
	for _, hvw := range cases {
		batT := c.Snapshot(func() float64 { return c.CostMatModMulBAT(hvw[0], hvw[1], hvw[2]) })
		baseT := c.Snapshot(func() float64 { return c.CostMatModMulBaseline(hvw[0], hvw[1], hvw[2]) })
		speedup := baseT / batT
		if speedup <= 1.0 {
			t.Errorf("(%d,%d,%d): BAT speedup %.2f ≤ 1", hvw[0], hvw[1], hvw[2], speedup)
		}
		if speedup > 3.0 {
			t.Errorf("(%d,%d,%d): BAT speedup %.2f implausibly high (paper: ≤1.62)", hvw[0], hvw[1], hvw[2], speedup)
		}
	}
}

func TestBConvBATSpeedup(t *testing.T) {
	// Tab. VI: BAT wins 2.5–7.2× on BConv step 2.
	c := v6eCompiler(t, SetD())
	n := 1 << 16
	for _, ll := range [][2]int{{12, 28}, {12, 36}, {16, 40}, {24, 56}} {
		with := c.Snapshot(func() float64 { return c.CostBConv(n, ll[0], ll[1], true) })
		without := c.Snapshot(func() float64 { return c.CostBConv(n, ll[0], ll[1], false) })
		speedup := without / with
		if speedup < 1.5 {
			t.Errorf("BConv (%d→%d): speedup %.2f too small", ll[0], ll[1], speedup)
		}
		if speedup > 20 {
			t.Errorf("BConv (%d→%d): speedup %.2f implausible", ll[0], ll[1], speedup)
		}
	}
}

func TestMATNTTBeatsRadix2OnTPU(t *testing.T) {
	// Tab. X: the O(N√N) MAT NTT beats the O(N log N) radix-2 NTT on
	// the TPU by an order of magnitude, because shuffles dominate.
	for _, set := range []Params{SetA(), SetB(), SetC()} {
		c := v6eCompiler(t, set)
		batch := 128
		mat := c.Snapshot(func() float64 { return c.CostNTTMat(batch) })
		radix2 := c.Snapshot(func() float64 { return c.CostNTTRadix2(batch) })
		if ratio := radix2 / mat; ratio < 5 {
			t.Errorf("N=2^%d: radix-2/MAT ratio %.1f; paper reports ~25–30×", set.LogN, ratio)
		}
	}
}

func TestMATBeats4Step(t *testing.T) {
	// MAT removes the 4-step's transpose + bit-reverse; it must be
	// strictly faster at every batch size.
	c := v6eCompiler(t, SetC())
	for _, batch := range []int{1, 8, 64} {
		mat := c.Snapshot(func() float64 { return c.CostNTTMat(batch) })
		four := c.Snapshot(func() float64 { return c.CostNTT4Step(batch) })
		if four <= mat {
			t.Errorf("batch %d: 4-step (%.2eµs) not slower than MAT (%.2eµs)", batch, four*1e6, mat*1e6)
		}
	}
}

func TestBatchImprovesThroughputUntilCapacity(t *testing.T) {
	// Fig. 11b: throughput rises with batch, then falls after the
	// on-chip working set spills.
	c := v6eCompiler(t, SetD())
	thr1 := c.NTTThroughput(1)
	best, bestThr := c.BestNTTBatch(128)
	if bestThr <= thr1 {
		t.Error("batching should improve throughput")
	}
	if best < 2 || best > 64 {
		t.Errorf("Set D optimal batch %d outside plausible range (paper: 8)", best)
	}
	// Past the knee throughput must not keep rising.
	if thrBig := c.NTTThroughput(best * 8); thrBig > bestThr {
		t.Errorf("throughput still rising at batch %d", best*8)
	}
}

func TestSmallerDegreePeaksAtLargerBatch(t *testing.T) {
	// Fig. 11b: Set A peaks at batch 32, Set D at 8 — smaller degrees
	// leave room for more batching.
	cA := v6eCompiler(t, SetA())
	cD := v6eCompiler(t, SetD())
	bestA, _ := cA.BestNTTBatch(128)
	bestD, _ := cD.BestNTTBatch(128)
	if bestA < bestD {
		t.Errorf("Set A best batch %d < Set D best batch %d", bestA, bestD)
	}
}

func TestModRedOrdering(t *testing.T) {
	// Fig. 13a: Montgomery < Barrett < Shoup on the TPU VPU; BAT lazy
	// loses badly (MXU starvation).
	c := v6eCompiler(t, SetD())
	n := SetD().N() * 8
	mont := c.Snapshot(func() float64 { return c.costVecModMulAlg(n, modarith.Montgomery) })
	barrett := c.Snapshot(func() float64 { return c.costVecModMulAlg(n, modarith.Barrett) })
	shoup := c.Snapshot(func() float64 { return c.costVecModMulAlg(n, modarith.Shoup) })
	lazy := c.Snapshot(func() float64 { return c.costVecModMulAlg(n, modarith.BATLazy) })
	if !(mont < barrett && barrett < shoup) {
		t.Errorf("VecModMul ordering violated: mont=%.3g barrett=%.3g shoup=%.3g", mont, barrett, shoup)
	}
	if lazy <= mont {
		t.Errorf("BAT lazy (%.3g) should lose to Montgomery (%.3g) on the TPU", lazy, mont)
	}
	ratio := barrett / mont
	if ratio < 1.1 || ratio > 2.0 {
		t.Errorf("Barrett/Montgomery ratio %.2f outside plausible band (paper geomean 1.42)", ratio)
	}
}

func TestNTTModRedOrdering(t *testing.T) {
	// Fig. 13b: Montgomery best for the NTT too.
	c := v6eCompiler(t, SetD())
	batch := 8
	mont := c.Snapshot(func() float64 { return c.CostNTTMatWithRed(batch, modarith.Montgomery) })
	shoup := c.Snapshot(func() float64 { return c.CostNTTMatWithRed(batch, modarith.Shoup) })
	lazy := c.Snapshot(func() float64 { return c.CostNTTMatWithRed(batch, modarith.BATLazy) })
	if mont >= shoup {
		t.Error("Montgomery NTT should beat Shoup NTT")
	}
	if lazy <= mont {
		t.Error("BAT-lazy NTT should lose to Montgomery NTT")
	}
}

func TestKeySwitchCountsTextbook(t *testing.T) {
	c := v6eCompiler(t, SetD())
	k := c.keySwitchCounts()
	l, alpha, dnum := 51, 17, 3
	ext := l + alpha
	if k.INTTLimbs != dnum*alpha+2*alpha {
		t.Errorf("INTT limbs %d", k.INTTLimbs)
	}
	if k.NTTLimbs != dnum*(ext-alpha)+2*l {
		t.Errorf("NTT limbs %d", k.NTTLimbs)
	}
	if k.VecMulN != dnum*2*ext+2*l {
		t.Errorf("VecMul count %d", k.VecMulN)
	}
}

func TestHEOpRelativeCosts(t *testing.T) {
	c := v6eCompiler(t, SetD())
	ops := c.MeasureHEOps()
	// Structural orderings from Tab. VIII: Add ≪ Rescale < Mult;
	// Rotate is mult-like (dominated by the same key switch).
	if !(ops.Add < ops.Rescale && ops.Rescale < ops.Mult) {
		t.Errorf("ordering violated: add=%.3g rescale=%.3g mult=%.3g", ops.Add, ops.Rescale, ops.Mult)
	}
	if ops.Rotate >= ops.Mult {
		t.Errorf("rotate (%.3g) should be ≤ mult (%.3g): same key switch, no tensor product", ops.Rotate, ops.Mult)
	}
	if ops.Mult/ops.Add < 20 {
		t.Errorf("mult/add ratio %.1f too small (paper: ~145× on v6e-8)", ops.Mult/ops.Add)
	}
}

func TestHEMultBreakdownShape(t *testing.T) {
	// Fig. 12: on v6e Set D, HE-Mult is VPU-bound — VecModOps is the
	// largest category and NTT/INTT/BConv matmuls stay a minority.
	c := v6eCompiler(t, SetD())
	c.Dev.Trace.Reset()
	c.CostHEMult()
	tr := c.Dev.Trace
	total := tr.Total()
	vec := tr.Seconds(tpusim.CatVecModOps) / total
	mm := (tr.Seconds(tpusim.CatNTTMatMul) + tr.Seconds(tpusim.CatINTTMatMul) + tr.Seconds(tpusim.CatBConvMatMul)) / total
	if vec < 0.25 {
		t.Errorf("VecModOps share %.0f%% too small; paper: 51%%", vec*100)
	}
	if mm > 0.5 {
		t.Errorf("MatMul share %.0f%% too large; paper: ~25%%", mm*100)
	}
}

func TestRotateHasPermutationShare(t *testing.T) {
	c := v6eCompiler(t, SetD())
	c.Dev.Trace.Reset()
	c.CostRotate()
	tr := c.Dev.Trace
	perm := tr.Seconds(tpusim.CatPermutation) / tr.Total()
	if perm < 0.03 || perm > 0.6 {
		t.Errorf("Rotate permutation share %.0f%% implausible (paper: 21%%)", perm*100)
	}
}

func TestBootstrapCost(t *testing.T) {
	c := v6eCompiler(t, SetB())
	s := DefaultBootstrapSchedule(SetB())
	if s.Rotations <= 0 || s.Mults <= 0 {
		t.Fatal("degenerate bootstrap schedule")
	}
	boot := c.Snapshot(func() float64 { return c.CostBootstrap(s) })
	mult := c.Snapshot(c.CostHEMult)
	if boot < float64(s.Mults)*mult {
		t.Error("bootstrap cheaper than its own multiplications")
	}
}

func TestGenerationalScaling(t *testing.T) {
	// Tab. VII: every newer generation delivers more NTT/s.
	var prev float64
	for _, spec := range tpusim.AllSpecs() {
		c, err := New(tpusim.NewDevice(spec), SetB())
		if err != nil {
			t.Fatal(err)
		}
		_, thr := c.BestNTTBatch(128)
		if thr <= prev {
			t.Errorf("%s NTT throughput %.0f not above predecessor %.0f", spec.Name, thr, prev)
		}
		prev = thr
	}
}

func TestHigherDegreeLowerThroughput(t *testing.T) {
	// Tab. VII: throughput drops superlinearly with degree (O(N√N)).
	var prev float64 = 1e30
	for _, set := range []Params{SetA(), SetB(), SetC()} {
		c := v6eCompiler(t, set)
		_, thr := c.BestNTTBatch(128)
		if thr >= prev {
			t.Errorf("N=2^%d throughput %.0f not below smaller degree", set.LogN, thr)
		}
		prev = thr
	}
}

func TestNewRejectsInvalidParams(t *testing.T) {
	bad := SetA()
	bad.L = 0
	if _, err := New(tpusim.NewDevice(tpusim.TPUv4()), bad); err == nil {
		t.Error("expected validation error")
	}
}
