package cross

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cross/internal/tpusim"
)

// TargetInfo describes one registered device family member: a hardware
// part every layer above the simulators (sweep, serve, harness, the
// CLI) can instantiate by name without importing its backend package.
// Backends register at init time; the registry is the single source of
// the valid-device list, so help text, error messages and Fig. 12 core
// counts cannot drift as backends are added.
type TargetInfo struct {
	// Name is the part name users type ("TPUv6e", "H100").
	Name string

	// Family groups parts by backend ("tpu", "gpu") for reports that
	// compare across hardware classes.
	Family string

	// RepCores is the part's representative scale-out degree: the
	// paper's Tab. IV VM core count for TPUs, the standard DGX/HGX node
	// size for GPUs. Used when a table needs "the" multi-core
	// configuration of a part.
	RepCores int

	// New builds the part at the given core (chip/GPU) count. cores=1
	// must yield the degenerate single-core target whose collectives
	// are free.
	New func(cores int) (Target, error)
}

var (
	registryMu sync.RWMutex
	registry   []TargetInfo
)

// RegisterTarget adds a part to the registry. Backends call it from
// init(); registering a duplicate name or an invalid entry panics,
// because it is a programming error no caller could recover from.
func RegisterTarget(info TargetInfo) {
	if info.Name == "" || info.New == nil || info.RepCores < 1 {
		panic(fmt.Sprintf("cross: invalid target registration %+v", info))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, have := range registry {
		if have.Name == info.Name {
			panic(fmt.Sprintf("cross: target %q registered twice", info.Name))
		}
	}
	registry = append(registry, info)
}

// RegisteredTargets returns the registry in registration order (TPUs
// first — the paper's Tab. IV order — then each extra backend in its
// own declaration order). The slice is a copy; mutating it is safe.
func RegisteredTargets() []TargetInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]TargetInfo(nil), registry...)
}

// TargetInfoByName resolves a registered part by name.
func TargetInfoByName(name string) (TargetInfo, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	for _, info := range registry {
		if info.Name == name {
			return info, true
		}
	}
	return TargetInfo{}, false
}

// TargetByName instantiates a registered part at the given core count.
// Unknown names report the full valid-device list, so every caller's
// error message stays in sync with the registry.
func TargetByName(name string, cores int) (Target, error) {
	info, ok := TargetInfoByName(name)
	if !ok {
		return nil, fmt.Errorf("cross: unknown device %q (valid: %s)", name, TargetNames())
	}
	return info.New(cores)
}

// TargetNames renders the registered part names as a comma-separated
// list in registration order — the one string help text and error
// messages should embed.
func TargetNames() string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, len(registry))
	for i, info := range registry {
		names[i] = info.Name
	}
	return strings.Join(names, ", ")
}

// FamilyNames returns the distinct registered families, sorted.
func FamilyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, info := range registry {
		if !seen[info.Family] {
			seen[info.Family] = true
			out = append(out, info.Family)
		}
	}
	sort.Strings(out)
	return out
}

// The TPU backend registers here rather than in tpusim because tpusim
// cannot import cross (cross imports tpusim). Representative core
// counts are the paper's Tab. IV VM setups (v4-8, v5litepod-4, v5p-8,
// v6e-8). The factory is exactly `tpusim.NewPod(spec, cores)` — the
// construction sweep and serve used before the registry existed — so
// registry-built targets reproduce the committed baseline bit for bit.
func init() {
	for _, vm := range tpusim.AllVMs() {
		spec := vm.Spec
		RegisterTarget(TargetInfo{
			Name:     spec.Name,
			Family:   "tpu",
			RepCores: vm.Cores,
			New: func(cores int) (Target, error) {
				return tpusim.NewPod(spec, cores)
			},
		})
	}
}
