package cross

import (
	"fmt"
	"sync"
)

// ScheduleCache memoizes lowered Schedules across compilers, programs,
// and goroutines — the shared cache behind the sweep engine's worker
// pool. A Schedule is a pure function of (target name, parameter set,
// operator), so a cached artifact is bit-identical to a fresh lowering
// on an equivalent target and sharing it across workers cannot change
// results, only skip work.
//
// Concurrency: the map is mutex-guarded and each entry lowers exactly
// once (sync.Once), so two workers racing on the same key do the work
// once and both observe the same *Schedule. Distinct keys lower
// concurrently — the per-entry Once is taken outside the map lock.
// Schedules must be treated as immutable once published (all package
// code does).
type ScheduleCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	s    *Schedule
}

// NewScheduleCache returns an empty cache.
func NewScheduleCache() *ScheduleCache {
	return &ScheduleCache{m: make(map[string]*cacheEntry)}
}

// GetOrLower returns the cached Schedule for key, lowering it with f on
// the first request. Concurrent callers with the same key block until
// the single lowering completes and then share its result.
func (sc *ScheduleCache) GetOrLower(key string, f func() *Schedule) *Schedule {
	sc.mu.Lock()
	e, ok := sc.m[key]
	if !ok {
		e = &cacheEntry{}
		sc.m[key] = e
	}
	sc.mu.Unlock()
	e.once.Do(func() { e.s = f() })
	return e.s
}

// Len reports the number of memoized schedules.
func (sc *ScheduleCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.m)
}

// scheduleKey renders the cache key of one operator lowering on one
// compiler: target identity, full parameter set, operator. Params is a
// flat comparable struct, so %+v is a stable, collision-free encoding.
func scheduleKey(c *Compiler, op string) string {
	return fmt.Sprintf("%s|%+v|%s", c.T.Name(), c.P, op)
}
