// Package crosstest holds the shared cross.Target conformance suite:
// the behavioural contract every hardware backend (tpusim, gpusim, any
// third) must satisfy beyond the compile-time interface check. Backends
// invoke it from their own test packages, so a new backend gets its
// correctness checks for free:
//
//	func TestConformance(t *testing.T) {
//	    crosstest.Conformance(t, crosstest.Backend{
//	        Name:      "gpusim/H100",
//	        NewDevice: func() cross.Target { return gpusim.NewDevice(gpusim.H100()) },
//	        NewNode:   func(cores int) cross.Target { return gpusim.MustNode(gpusim.H100(), cores) },
//	    })
//	}
package crosstest

import (
	"testing"

	"cross/internal/cross"
	"cross/internal/tpusim"
)

// Backend describes one hardware backend under conformance test.
type Backend struct {
	// Name labels subtests ("tpusim/TPUv6e", "gpusim/H100").
	Name string

	// NewDevice builds the backend's single-core target. Each call must
	// return a fresh target.
	NewDevice func() cross.Target

	// NewNode builds the backend's multi-core target at a core count
	// (a pod, a GPU node). Each call must return a fresh target;
	// cores=1 must be accepted.
	NewNode func(cores int) cross.Target
}

// collectives applies each collective method by index, so the suite
// can iterate the three uniformly.
var collectives = []struct {
	name string
	call func(t cross.Target, bytes int64) float64
}{
	{"AllGather", func(t cross.Target, b int64) float64 { return t.AllGather(b) }},
	{"AllReduce", func(t cross.Target, b int64) float64 { return t.AllReduce(b) }},
	{"Broadcast", func(t cross.Target, b int64) float64 { return t.Broadcast(b) }},
}

// Conformance runs the full suite against one backend.
func Conformance(t *testing.T, b Backend) {
	t.Helper()
	t.Run(b.Name, func(t *testing.T) {
		t.Run("DeviceBasics", func(t *testing.T) { conformBasics(t, b.NewDevice()) })
		t.Run("NodeBasics", func(t *testing.T) { conformBasics(t, b.NewNode(4)) })
		t.Run("SingleCoreDegenerate", func(t *testing.T) { conformDegenerate(t, b) })
		t.Run("CollectivesMonotone", func(t *testing.T) { conformMonotone(t, b.NewNode(8)) })
		t.Run("CollectiveTraceOwnership", func(t *testing.T) { conformTraceOwnership(t, b.NewNode(4)) })
		t.Run("OverlapFraction", func(t *testing.T) { conformOverlap(t, b) })
	})
}

// conformBasics checks the structural invariants any target must hold:
// a non-nil core, a positive core count, a non-empty name, and an owned
// (never-nil) collective trace.
func conformBasics(t *testing.T, tgt cross.Target) {
	t.Helper()
	if tgt.Core() == nil {
		t.Fatal("Core() returned nil")
	}
	if tgt.NumCores() < 1 {
		t.Fatalf("NumCores() = %d, want >= 1", tgt.NumCores())
	}
	if tgt.Name() == "" {
		t.Error("Name() is empty")
	}
	if tgt.CollectiveTrace() == nil {
		t.Fatal("CollectiveTrace() returned nil — the contract is never-nil")
	}
	for _, c := range collectives {
		if sec := c.call(tgt, 1<<20); sec < 0 {
			t.Errorf("%s(1 MiB) = %g, want non-negative", c.name, sec)
		}
	}
}

// conformDegenerate checks that the backend's 1-core node is the same
// machine as its bare device: free collectives and a bit-identical
// compute schedule for a representative HE lowering.
func conformDegenerate(t *testing.T, b Backend) {
	t.Helper()
	node := b.NewNode(1)
	for _, c := range collectives {
		if sec := c.call(node, 1<<24); sec != 0 {
			t.Errorf("1-core node %s(16 MiB) = %g, want 0 (collectives are free on one core)", c.name, sec)
		}
	}

	p := cross.SetB()
	lower := func(tgt cross.Target) *cross.Schedule {
		comp, err := cross.Compile(tgt, p)
		if err != nil {
			t.Fatalf("Compile(%s): %v", tgt.Name(), err)
		}
		return comp.LowerHEMult()
	}
	dev, nod := lower(b.NewDevice()), lower(node)
	if dev.Total != nod.Total {
		t.Errorf("HE-Mult total: device %.17g != 1-core node %.17g (must be bit-identical)", dev.Total, nod.Total)
	}
	if dev.Overlapped != nod.Overlapped {
		t.Errorf("HE-Mult overlapped: device %.17g != 1-core node %.17g", dev.Overlapped, nod.Overlapped)
	}
	if dev.Kernels != nod.Kernels {
		t.Errorf("HE-Mult kernels: device %+v != 1-core node %+v", dev.Kernels, nod.Kernels)
	}
	if nod.Collective != 0 {
		t.Errorf("1-core node HE-Mult collective share = %g, want 0", nod.Collective)
	}
}

// conformMonotone checks collective costs are non-negative and
// non-decreasing in payload size on a multi-core target, and strictly
// positive for a non-trivial payload.
func conformMonotone(t *testing.T, tgt cross.Target) {
	t.Helper()
	sizes := []int64{0, 1, 4 << 10, 1 << 20, 16 << 20, 1 << 30}
	for _, c := range collectives {
		prev := -1.0
		for _, bytes := range sizes {
			sec := c.call(tgt, bytes)
			if sec < 0 {
				t.Errorf("%s(%d) = %g, want non-negative", c.name, bytes, sec)
			}
			if sec < prev {
				t.Errorf("%s(%d) = %g < %s(previous size) = %g, want monotone in bytes", c.name, bytes, sec, c.name, prev)
			}
			prev = sec
		}
		if sec := c.call(tgt, 1<<20); sec <= 0 {
			t.Errorf("%s(1 MiB) on %d cores = %g, want > 0", c.name, tgt.NumCores(), sec)
		}
	}
}

// conformTraceOwnership checks the collective-trace contract LowerOp
// relies on: charges land in the owned trace, SetCollectiveTrace swaps
// where subsequent charges go, and the original trace is untouched
// after a swap.
func conformTraceOwnership(t *testing.T, tgt cross.Target) {
	t.Helper()
	orig := tgt.CollectiveTrace()
	sec := tgt.AllReduce(1 << 20)
	if got := orig.Total(); got != sec {
		t.Fatalf("owned trace total = %g after AllReduce returning %g, want equal", got, sec)
	}

	swapped := tpusim.NewTrace()
	tgt.SetCollectiveTrace(swapped)
	if tgt.CollectiveTrace() != swapped {
		t.Fatal("CollectiveTrace() does not return the trace installed by SetCollectiveTrace")
	}
	before := orig.Total()
	sec2 := tgt.AllGather(1 << 20)
	if got := swapped.Total(); got != sec2 {
		t.Errorf("swapped trace total = %g after AllGather returning %g, want equal", got, sec2)
	}
	if got := orig.Total(); got != before {
		t.Errorf("original trace total moved %g → %g after the swap; charges leaked", before, got)
	}
}

// conformOverlap checks the overlap model's bounds on both target
// shapes: OverlapFraction ∈ [0, 1] and 0 < Overlapped ≤ Total for a
// non-empty lowering.
func conformOverlap(t *testing.T, b Backend) {
	t.Helper()
	p := cross.SetB()
	for _, tgt := range []cross.Target{b.NewDevice(), b.NewNode(8)} {
		comp, err := cross.Compile(tgt, p)
		if err != nil {
			t.Fatalf("Compile(%s): %v", tgt.Name(), err)
		}
		for _, s := range []*cross.Schedule{comp.LowerHEMult(), comp.LowerRotate(), comp.LowerKeySwitch()} {
			if f := s.OverlapFraction(); f < 0 || f > 1 {
				t.Errorf("%s on %s: OverlapFraction = %g, want in [0, 1]", s.Op, tgt.Name(), f)
			}
			if s.Overlapped <= 0 || s.Overlapped > s.Total {
				t.Errorf("%s on %s: Overlapped %g outside (0, Total=%g]", s.Op, tgt.Name(), s.Overlapped, s.Total)
			}
		}
	}
}
