package cross

// Hoisted-rotation lowering (Halevi–Shoup, used by the MAD packed
// bootstrapping the paper adopts): when one ciphertext feeds many
// rotations — the BSGS baby steps of CoeffToSlot/SlotToCoeff — the
// digit decomposition (INTT + ModUp + NTT) is computed once and shared;
// each additional rotation pays only the automorphism gather, the evk
// inner product, and the ModDown. The functional twin is
// ckks.Evaluator.RotateHoisted.

// CostDecompose charges the rotation-independent half of a key switch:
// INTT of all limbs plus per-digit ModUp (BConv + NTT of the extended
// limbs).
func (c *Compiler) CostDecompose() float64 {
	n := c.P.N()
	alpha := c.P.Alpha()
	dnum := c.P.Dnum
	l := c.P.L
	ext := l + alpha

	t := c.CostINTTMat(l)
	for d := 0; d < dnum; d++ {
		t += c.CostBConv(n, alpha, ext-alpha, true)
		t += c.CostNTTMat(ext - alpha)
	}
	return t
}

// CostApplyHoisted charges the per-rotation remainder: the automorphism
// gather over the extended digits, the evk inner product, and ModDown
// of both accumulator polynomials.
func (c *Compiler) CostApplyHoisted() float64 {
	n := c.P.N()
	alpha := c.P.Alpha()
	dnum := c.P.Dnum
	l := c.P.L
	ext := l + alpha

	// Automorphism over every extended digit + the c0 polynomial.
	t := c.CostAutomorphism(dnum*ext + l)
	// evk inner product.
	t += c.CostVecModMul(dnum * 2 * ext * n)
	t += c.CostVecModAdd((dnum - 1) * 2 * ext * n)
	// ModDown ×2.
	for p := 0; p < 2; p++ {
		t += c.CostINTTMat(alpha)
		t += c.CostBConv(n, alpha, l, true)
		t += c.CostNTTMat(l)
		t += c.CostVecModAdd(l * n)
		t += c.CostVecModMul(l * n)
	}
	return t
}

// CostRotateHoisted charges a batch of rotations of one ciphertext with
// a shared decomposition. For count = 1 this is strictly more expensive
// than CostRotate only by bookkeeping noise; the win grows linearly
// with count (the hoisting ablation of DESIGN.md §5).
func (c *Compiler) CostRotateHoisted(count int) float64 {
	if count < 1 {
		return 0
	}
	t := c.CostDecompose()
	for i := 0; i < count; i++ {
		t += c.CostApplyHoisted()
	}
	return t
}

// CostBootstrapHoisted prices the packed-bootstrapping schedule with
// hoisted BSGS rotations: the schedule's rotations arrive in groups
// sharing one decomposition (the baby steps of each linear-transform
// level). groupSize is the average sharing factor; the MAD design
// shares ~√(rotations per level).
func (c *Compiler) CostBootstrapHoisted(s BootstrapSchedule, groupSize int) float64 {
	if groupSize < 1 {
		groupSize = 1
	}
	var t float64
	groups := (s.Rotations + groupSize - 1) / groupSize
	for g := 0; g < groups; g++ {
		remaining := s.Rotations - g*groupSize
		if remaining > groupSize {
			remaining = groupSize
		}
		t += c.CostRotateHoisted(remaining)
	}
	for i := 0; i < s.Mults; i++ {
		t += c.CostHEMult()
	}
	for i := 0; i < s.PtMuls; i++ {
		t += c.CostPtMul()
	}
	for i := 0; i < s.Adds; i++ {
		t += c.CostHEAdd()
	}
	for i := 0; i < s.Rescales; i++ {
		t += c.CostRescale()
	}
	return t
}
