package cross

import (
	"testing"

	"cross/internal/tpusim"
)

func TestHoistingAmortizesDecomposition(t *testing.T) {
	c := v6eCompiler(t, SetD())
	plain := c.Snapshot(c.CostRotate)
	h1 := c.Snapshot(func() float64 { return c.CostRotateHoisted(1) })
	h8 := c.Snapshot(func() float64 { return c.CostRotateHoisted(8) })

	// One hoisted rotation costs about one plain rotation.
	if ratio := h1 / plain; ratio < 0.7 || ratio > 1.5 {
		t.Errorf("single hoisted rotation %.2f× a plain rotation", ratio)
	}
	// Eight hoisted rotations must be cheaper than eight plain ones.
	if h8 >= 8*plain {
		t.Errorf("hoisting gained nothing: 8 hoisted %.3g vs 8 plain %.3g", h8, 8*plain)
	}
	// And the amortized cost decreases monotonically with group size.
	prev := h1
	for _, k := range []int{2, 4, 8, 16} {
		hk := c.Snapshot(func() float64 { return c.CostRotateHoisted(k) })
		if hk/float64(k) >= prev {
			t.Errorf("amortized hoisted cost not decreasing at count %d", k)
		}
		prev = hk / float64(k)
	}
}

func TestHoistedDecomposeSplit(t *testing.T) {
	c := v6eCompiler(t, SetB())
	dec := c.Snapshot(c.CostDecompose)
	app := c.Snapshot(c.CostApplyHoisted)
	h3 := c.Snapshot(func() float64 { return c.CostRotateHoisted(3) })
	if diff := h3 - (dec + 3*app); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("hoisted cost not compositional: %.3g vs %.3g", h3, dec+3*app)
	}
	if c.Snapshot(func() float64 { return c.CostRotateHoisted(0) }) != 0 {
		t.Error("zero rotations should cost nothing")
	}
}

func TestBootstrapHoistingHelps(t *testing.T) {
	c := v6eCompiler(t, SetD())
	s := DefaultBootstrapSchedule(SetD())
	plain := c.Snapshot(func() float64 { return c.CostBootstrap(s) })
	hoisted := c.Snapshot(func() float64 { return c.CostBootstrapHoisted(s, 8) })
	if hoisted >= plain {
		t.Errorf("hoisted bootstrap %.3g not cheaper than plain %.3g", hoisted, plain)
	}
	// groupSize 1 degenerates to roughly the plain schedule.
	g1 := c.Snapshot(func() float64 { return c.CostBootstrapHoisted(s, 1) })
	if ratio := g1 / plain; ratio < 0.8 || ratio > 1.3 {
		t.Errorf("group-1 hoisted bootstrap %.2f× plain", ratio)
	}
}

func TestVMModel(t *testing.T) {
	vms := tpusim.AllVMs()
	if len(vms) != 4 {
		t.Fatal("expected 4 paper VM setups")
	}
	wantCores := map[string]int{"TPUv4": 8, "TPUv5e": 4, "TPUv5p": 8, "TPUv6e": 8}
	for _, vm := range vms {
		if vm.Cores != wantCores[vm.Spec.Name] {
			t.Errorf("%s: %d cores, want %d (Tab. IV)", vm.Spec.Name, vm.Cores, wantCores[vm.Spec.Name])
		}
		if vm.AmortizedLatency(8) != 8/float64(vm.Cores) {
			t.Errorf("%s: amortization wrong", vm.Name())
		}
		if vm.Throughput(10) != 10*float64(vm.Cores) {
			t.Errorf("%s: throughput scaling wrong", vm.Name())
		}
		if vm.PowerW() <= 0 {
			t.Errorf("%s: no power", vm.Name())
		}
	}
	if _, ok := tpusim.VMByName("TPUv6e"); !ok {
		t.Error("VMByName failed")
	}
	if _, ok := tpusim.VMByName("nope"); ok {
		t.Error("VMByName accepted garbage")
	}
	v6 := tpusim.VMv6e()
	if v6.CoresForPower(50) != 1 {
		t.Error("power matching should floor at 1 core")
	}
	if v6.CoresForPower(1e6) != v6.Cores {
		t.Error("power matching should cap at VM size")
	}
	if v6.Name() != "TPUv6e-8" {
		t.Errorf("Name() = %q", v6.Name())
	}
}
