package cross

import (
	"testing"
)

// fuzzDAG decodes a byte string into a bounded random DAG: node count,
// durations, and backward-only dependency edges all come from the
// input, so the graph is acyclic by construction. The decoder is
// deliberately total — any input yields some DAG.
func fuzzDAG(data []byte) *SegDAG {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := 1 + int(next())%32
	d := NewSegDAG()
	for i := 0; i < n; i++ {
		kind := SegKind(next() % 4)
		dur := float64(1+int(next())) * 1e-7
		var deps []int
		if i > 0 {
			for e := int(next()) % 4; e > 0; e-- {
				deps = append(deps, int(next())%i)
			}
		}
		d.Add(kind, "fuzz", dur, deps...)
	}
	return d
}

// permuteDAG rebuilds d with its nodes inserted in a rotated order
// (dependency indices remapped), preserving the graph's structure.
// Rotation keeps the permutation cheap and deterministic while still
// exercising every insertion position across seeds of different sizes.
func permuteDAG(d *SegDAG, shift int) *SegDAG {
	n := len(d.Nodes)
	if n == 0 {
		return NewSegDAG()
	}
	perm := make([]int, n) // perm[old] = new
	for old := range perm {
		perm[old] = (old + shift) % n
	}
	nodes := make([]SegNode, n)
	for old, nd := range d.Nodes {
		deps := make([]int, len(nd.Deps))
		for i, dep := range nd.Deps {
			deps[i] = perm[dep]
		}
		nodes[perm[old]] = SegNode{Kind: nd.Kind, Label: nd.Label, Dur: nd.Dur, Deps: deps}
	}
	return &SegDAG{Nodes: nodes}
}

// FuzzDAGExecOrder pins the engine's determinism contract on random
// bounded DAGs: cycle-free inputs always execute (never deadlock), the
// makespan is exactly invariant to node insertion order, and an
// injected cycle is reported as an error rather than a hang.
func FuzzDAGExecOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{5, 1, 10, 2, 0, 0, 3, 20, 1, 1, 7, 30, 2, 2, 1})
	f.Add([]byte{31, 255, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := fuzzDAG(data)
		want, err := d.Execute()
		if err != nil {
			t.Fatalf("acyclic-by-construction DAG failed: %v", err)
		}
		if want < 0 {
			t.Fatalf("negative makespan %g", want)
		}

		// Permutation invariance: the same graph under different node
		// insertion orders must produce the bit-identical makespan (the
		// engine takes max over the same operand sets).
		for _, shift := range []int{1, len(d.Nodes) / 2, len(d.Nodes) - 1} {
			if shift <= 0 {
				continue
			}
			got, err := permuteDAG(d, shift).Execute()
			if err != nil {
				t.Fatalf("permuted DAG (shift %d) failed: %v", shift, err)
			}
			if got != want {
				t.Fatalf("makespan not permutation-invariant: %.17g (shift %d) vs %.17g", got, shift, want)
			}
		}

		// Cycle injection: closing a back edge from the first node to
		// the last must surface as an error, never a hang or a result.
		if n := len(d.Nodes); n > 1 {
			c := permuteDAG(d, 0) // structural copy
			c.Nodes[0].Deps = append(c.Nodes[0].Deps, n-1)
			c.Nodes[n-1].Deps = append(c.Nodes[n-1].Deps, 0)
			if _, err := c.Execute(); err == nil {
				t.Fatal("injected cycle executed without error")
			}
		}
	})
}
