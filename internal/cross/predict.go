package cross

import (
	"fmt"

	"cross/internal/modarith"
)

// Calibration kernel names: the vocabulary shared between the host
// benchmark (internal/hostbench, which measures them) and the
// calibration harness (internal/calib, which prices them through
// PredictKernel and fits the model's free constants against the
// measurements). Each name is the base ID of the matching hostbench
// record.
const (
	KernelNTT           = "ntt_inplace"
	KernelINTT          = "intt_inplace"
	KernelVecMulShoup   = "vecmulmod_shoup"
	KernelVecMulBarrett = "vecmulmod_barrett"
	KernelVecAdd        = "vecaddmod"
	KernelAutomorphism  = "automorphism_ntt"
	KernelMatNTT        = "matntt_forward"
	KernelBATMatMul     = "bat_matmul"
	KernelBConv         = "bconv_approx"
)

// CalibKernels lists every named calibration kernel in measurement
// order (the order hostbench emits records in).
func CalibKernels() []string {
	return []string{
		KernelNTT, KernelINTT, KernelVecMulShoup, KernelVecMulBarrett,
		KernelVecAdd, KernelAutomorphism, KernelMatNTT, KernelBATMatMul,
		KernelBConv,
	}
}

// PredictKernel prices one named calibration kernel through the
// roofline/Schedule IR on the compiler's target and returns its
// Schedule — the simulator's *predicted* latency for the same work a
// hostbench measurement times. The kernel's size is the compiler's
// parameter set: element-wise kernels cover N = c.P.N() elements, the
// transforms run one N-point instance (batch 1, one limb), BConv
// converts 2→2 limbs (the hostbench ModUp shape), and the BAT matmul is
// the fixed 64×64×64 ablation size. Sizes match internal/hostbench
// kernel for kernel, so predicted and measured points pair directly.
//
// The mapping per kernel:
//
//   - ntt_inplace / intt_inplace: the radix-2 Cooley–Tukey lowering
//     (Alg. 3) — the algorithm the host kernels actually run (the model
//     prices forward and inverse identically; the host INTT's extra
//     normalisation lands in the fitted constants);
//   - vecmulmod_shoup / vecmulmod_barrett: the element-wise modular
//     multiply under that explicit reduction algorithm;
//   - vecaddmod: the element-wise modular add;
//   - automorphism_ntt: the one-limb gather lowering (§V-E);
//   - matntt_forward: the 3-step MAT NTT of one limb (Fig. 10);
//   - bat_matmul: the BAT ModMatMul ablation (Tab. V);
//   - bconv_approx: the 2→2-limb basis conversion on the VPU path
//     (the host converter is scalar, not matmul-based).
func (c *Compiler) PredictKernel(kernel string) (*Schedule, error) {
	n := c.P.N()
	var f func() float64
	switch kernel {
	case KernelNTT, KernelINTT:
		f = func() float64 { return c.CostNTTRadix2(1) }
	case KernelVecMulShoup:
		f = func() float64 { return c.costVecModMulAlg(c.shard(n), modarith.Shoup) }
	case KernelVecMulBarrett:
		f = func() float64 { return c.costVecModMulAlg(c.shard(n), modarith.Barrett) }
	case KernelVecAdd:
		f = func() float64 { return c.CostVecModAdd(n) }
	case KernelAutomorphism:
		f = func() float64 { return c.CostAutomorphism(1) }
	case KernelMatNTT:
		f = func() float64 { return c.CostNTTMat(1) }
	case KernelBATMatMul:
		f = func() float64 { return c.CostMatModMulBAT(64, 64, 64) }
	case KernelBConv:
		f = func() float64 { return c.CostBConv(n, 2, 2, false) }
	default:
		return nil, fmt.Errorf("cross: unknown calibration kernel %q (have %v)", kernel, CalibKernels())
	}
	return c.LowerOp(kernel, f), nil
}
