package cross

// HE operator lowering (§III-A's Scheduling layer). Each CKKS operator
// is a fixed schedule of HE kernels; CROSS lowers every kernel with
// BAT+MAT and the simulator accumulates per-category time, regenerating
// the operator latencies of Tab. VIII and the breakdowns of Fig. 12.
//
// The schedules implement full-RNS CKKS with hybrid key switching
// (Han–Ki, [37]): L ciphertext limbs split into dnum digits of
// α = ⌈L/dnum⌉ limbs each, with α auxiliary (special) primes P.

// KeySwitchCounts tallies the kernel invocations of one hybrid key
// switch at level L — exposed so tests can check the schedule against
// the textbook operation counts.
type KeySwitchCounts struct {
	INTTLimbs int // limbs inverse-transformed (digit extraction + ModDown)
	NTTLimbs  int // limbs forward-transformed (ModUp + ModDown)
	BConvIn   int // total source limbs across basis conversions
	BConvOut  int // total destination limbs
	VecMulN   int // N-length modular multiplications (evk inner product…)
	VecAddN   int // N-length modular additions
}

// keySwitchCounts derives the schedule for the configured params.
func (c *Compiler) keySwitchCounts() KeySwitchCounts {
	l := c.P.L
	alpha := c.P.Alpha()
	dnum := c.P.Dnum
	ext := l + alpha // limbs after ModUp (Q ∪ P)

	var k KeySwitchCounts
	// Per digit: extract α limbs to coefficient domain, convert to the
	// remaining L−α+α = L extended limbs, transform back.
	k.INTTLimbs += dnum * alpha
	k.BConvIn += dnum * alpha
	k.BConvOut += dnum * (ext - alpha)
	k.NTTLimbs += dnum * (ext - alpha)
	// Inner product with the two evk polynomials over the extended
	// basis, accumulated across digits.
	k.VecMulN += dnum * 2 * ext
	k.VecAddN += (dnum - 1) * 2 * ext
	// ModDown for both result polynomials: INTT the α special limbs,
	// convert to Q, NTT, subtract, multiply by P⁻¹.
	k.INTTLimbs += 2 * alpha
	k.BConvIn += 2 * alpha
	k.BConvOut += 2 * l
	k.NTTLimbs += 2 * l
	k.VecMulN += 2 * l
	k.VecAddN += 2 * l
	return k
}

// CostKeySwitch charges one hybrid key switch and returns its time.
func (c *Compiler) CostKeySwitch() float64 {
	n := c.P.N()
	alpha := c.P.Alpha()
	dnum := c.P.Dnum
	l := c.P.L
	ext := l + alpha

	var t float64
	// Digit loop: INTT(α) → BConv(α → ext−α) → NTT(ext−α).
	for d := 0; d < dnum; d++ {
		t += c.CostINTTMat(alpha)
		t += c.CostBConv(n, alpha, ext-alpha, true)
		t += c.CostNTTMat(ext - alpha)
	}
	// evk inner product.
	t += c.CostVecModMul(dnum * 2 * ext * n)
	t += c.CostVecModAdd((dnum - 1) * 2 * ext * n)
	// ModDown ×2 polys.
	for p := 0; p < 2; p++ {
		t += c.CostINTTMat(alpha)
		t += c.CostBConv(n, alpha, l, true)
		t += c.CostNTTMat(l)
		t += c.CostVecModAdd(l * n) // subtract
		t += c.CostVecModMul(l * n) // × P⁻¹ mod q_i
	}
	return t
}

// CostHEAdd charges a ciphertext addition (2 polys × L limbs).
func (c *Compiler) CostHEAdd() float64 {
	return c.CostVecModAdd(2 * c.P.L * c.P.N())
}

// CostHEMult charges a full ciphertext multiplication: tensor product,
// relinearisation (key switch), and rescale (§III-A HE Multiplication).
func (c *Compiler) CostHEMult() float64 {
	n := c.P.N()
	l := c.P.L
	// Tensor product: d0 = a₁a₂, d2 = b₁b₂, d1 = a₁b₂ + a₂b₁.
	t := c.CostVecModMul(4 * l * n)
	t += c.CostVecModAdd(l * n)
	// Relinearise d2.
	t += c.CostKeySwitch()
	// Combine and rescale.
	t += c.CostVecModAdd(2 * l * n)
	t += c.CostRescale()
	return t
}

// CostRescale charges one rescaling: drop the top limb of both polys —
// INTT(top limb), BConv(1 → L−1), NTT(L−1), then subtract and scale.
func (c *Compiler) CostRescale() float64 {
	n := c.P.N()
	l := c.P.L
	var t float64
	for p := 0; p < 2; p++ {
		t += c.CostINTTMat(1)
		t += c.CostBConv(n, 1, l-1, true)
		t += c.CostNTTMat(l - 1)
		t += c.CostVecModAdd((l - 1) * n)
		t += c.CostVecModMul((l - 1) * n) // × q_L⁻¹ mod q_i
	}
	return t
}

// CostRotate charges a slot rotation: the automorphism permutation on
// both polynomials (the gather MAT cannot embed, §V-E) plus a key
// switch with the rotation key.
func (c *Compiler) CostRotate() float64 {
	t := c.CostAutomorphism(2 * c.P.L)
	t += c.CostKeySwitch()
	return t
}

// CostConjugate is a rotation by the conjugation Galois element — the
// same lowering as CostRotate.
func (c *Compiler) CostConjugate() float64 { return c.CostRotate() }

// CostPtMul charges a plaintext-ciphertext multiplication (2 polys ×
// L limbs VecModMul, no key switch).
func (c *Compiler) CostPtMul() float64 {
	return c.CostVecModMul(2 * c.P.L * c.P.N())
}

// CostPtAdd charges a plaintext-ciphertext addition.
func (c *Compiler) CostPtAdd() float64 {
	return c.CostVecModAdd(c.P.L * c.P.N())
}

// HEOpLatencies bundles the four benchmark operators of Tab. VIII.
type HEOpLatencies struct {
	Add, Mult, Rescale, Rotate float64 // seconds
}

// MeasureHEOps costs all four operators trace-isolated.
func (c *Compiler) MeasureHEOps() HEOpLatencies {
	return HEOpLatencies{
		Add:     c.snapshot(c.CostHEAdd),
		Mult:    c.snapshot(c.CostHEMult),
		Rescale: c.snapshot(c.CostRescale),
		Rotate:  c.snapshot(c.CostRotate),
	}
}

// BootstrapSchedule is the kernel-count schedule of the packed
// bootstrapping algorithm the paper adopts (MAD [3]): BSGS linear
// transforms for CoeffToSlot/SlotToCoeff plus a polynomial EvalMod.
// Counts follow the paper's §V-A estimation methodology — total kernel
// invocations × profiled per-kernel latency, no pipelining or fusion.
type BootstrapSchedule struct {
	Rotations int // slot rotations across CtS + StC (BSGS)
	Mults     int // ciphertext-ciphertext multiplications (EvalMod)
	PtMuls    int // plaintext multiplications (diagonal matrices, poly coeffs)
	Adds      int // ciphertext additions
	Rescales  int // standalone rescalings
}

// DefaultBootstrapSchedule returns the MAD packed-bootstrapping
// operator budget: CoeffToSlot and SlotToCoeff as multi-level BSGS
// linear transforms with hoisted rotations (≈ logN rotations per level
// after hoisting), and EvalMod as a Paterson–Stockmeyer sine
// approximation (≈ logN + 4 ciphertext multiplications). Counts grow
// logarithmically with degree, matching the memory-aware design of [3]
// rather than a naive √N-rotation transform.
func DefaultBootstrapSchedule(p Params) BootstrapSchedule {
	rot := 2*p.LogN + 32 // CtS + StC rotations after hoisting
	return BootstrapSchedule{
		Rotations: rot,
		Mults:     p.LogN + 4, // EvalMod (Paterson–Stockmeyer)
		PtMuls:    2*rot + 16,
		Adds:      2*rot + 32,
		Rescales:  24,
	}
}

// CostBootstrap charges one packed bootstrapping.
func (c *Compiler) CostBootstrap(s BootstrapSchedule) float64 {
	var t float64
	for i := 0; i < s.Rotations; i++ {
		t += c.CostRotate()
	}
	for i := 0; i < s.Mults; i++ {
		t += c.CostHEMult()
	}
	for i := 0; i < s.PtMuls; i++ {
		t += c.CostPtMul()
	}
	for i := 0; i < s.Adds; i++ {
		t += c.CostHEAdd()
	}
	for i := 0; i < s.Rescales; i++ {
		t += c.CostRescale()
	}
	return t
}
