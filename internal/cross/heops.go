package cross

import "cross/internal/tpusim"

// HE operator lowering (§III-A's Scheduling layer). Each CKKS operator
// is a fixed schedule of HE kernels; CROSS lowers every kernel with
// BAT+MAT and the simulator accumulates per-category time, regenerating
// the operator latencies of Tab. VIII and the breakdowns of Fig. 12.
//
// The schedules implement full-RNS CKKS with hybrid key switching
// (Han–Ki, [37]): L ciphertext limbs split into dnum digits of
// α = ⌈L/dnum⌉ limbs each, with α auxiliary (special) primes P.
//
// Every operator is lowered once, against the Target interface. The
// two parallelism axes HE kernels expose shard across the target's
// cores:
//
//   - limb parallelism: RNS limbs are independent through NTT/INTT and
//     all element-wise arithmetic, so batches of limb transforms split
//     across cores with no communication;
//   - slot parallelism: element-wise VecMod* kernels split their
//     element range across cores with no communication.
//
// Communication appears exactly where the mathematics mixes limbs or
// digits:
//
//   - BConv step 2 multiplies ALL source limbs into every destination
//     limb, so the coefficient-domain source must be all-gathered
//     before each core computes its destination-limb shard;
//   - the key-switch inner product accumulates across digits that live
//     on different cores, costing one all-reduce of the two
//     accumulator polynomials over the extended basis.
//
// On a single-core target every shard is the whole batch and every
// collective is free, so the lowering is bit-identical to the paper's
// single-core model.

// KeySwitchCounts tallies the kernel invocations of one hybrid key
// switch at level L — exposed so tests can check the schedule against
// the textbook operation counts.
type KeySwitchCounts struct {
	INTTLimbs int // limbs inverse-transformed (digit extraction + ModDown)
	NTTLimbs  int // limbs forward-transformed (ModUp + ModDown)
	BConvIn   int // total source limbs across basis conversions
	BConvOut  int // total destination limbs
	VecMulN   int // N-length modular multiplications (evk inner product…)
	VecAddN   int // N-length modular additions
}

// keySwitchCounts derives the schedule for the configured params.
func (c *Compiler) keySwitchCounts() KeySwitchCounts {
	l := c.P.L
	alpha := c.P.Alpha()
	dnum := c.P.Dnum
	ext := l + alpha // limbs after ModUp (Q ∪ P)

	var k KeySwitchCounts
	// Per digit: extract α limbs to coefficient domain, convert to the
	// remaining L−α+α = L extended limbs, transform back.
	k.INTTLimbs += dnum * alpha
	k.BConvIn += dnum * alpha
	k.BConvOut += dnum * (ext - alpha)
	k.NTTLimbs += dnum * (ext - alpha)
	// Inner product with the two evk polynomials over the extended
	// basis, accumulated across digits.
	k.VecMulN += dnum * 2 * ext
	k.VecAddN += (dnum - 1) * 2 * ext
	// ModDown for both result polynomials: INTT the α special limbs,
	// convert to Q, NTT, subtract, multiply by P⁻¹.
	k.INTTLimbs += 2 * alpha
	k.BConvIn += 2 * alpha
	k.BConvOut += 2 * l
	k.NTTLimbs += 2 * l
	k.VecMulN += 2 * l
	k.VecAddN += 2 * l
	return k
}

// CostKeySwitch charges one hybrid key switch and returns its time.
// The dnum ModUp digits are independent and round-robin across cores
// (a digit's INTT → BConv → NTT chain is core-local); the cross-digit
// inner-product accumulation costs one all-reduce of both accumulator
// polynomials over the extended basis; ModDown proceeds limb-parallel
// with a gathered BConv per result polynomial.
//
// Deprecated: prefer LowerKeySwitch.
func (c *Compiler) CostKeySwitch() float64 {
	n := c.P.N()
	alpha := c.P.Alpha()
	dnum := c.P.Dnum
	l := c.P.L
	ext := l + alpha

	var t float64
	// ModUp: each core runs its ⌈dnum/n⌉ digits serially.
	dShard := c.shard(dnum)
	for d := 0; d < dShard; d++ {
		t += c.costNTTMatAlg(alpha, c.P.Red, tpusim.CatINTTMatMul)
		t += c.costBConvLocal(n, alpha, ext-alpha, true)
		t += c.costNTTMatAlg(ext-alpha, c.P.Red, tpusim.CatNTTMatMul)
	}
	// evk inner product over the local digits, then all-reduce the two
	// accumulator polynomials (ext limbs × N coefficients × 4 bytes).
	t += c.costVecModMulAlg(dShard*2*ext*n, c.P.Red)
	t += c.costVecModAddLocal((dShard - 1) * 2 * ext * n)
	t += c.allReduce(int64(2 * ext * n * 4))
	// ModDown ×2 result polynomials, limb-parallel.
	for p := 0; p < 2; p++ {
		t += c.CostINTTMat(alpha)
		t += c.allGather(int64(4 * n * alpha))
		t += c.costBConvGathered(n, alpha, l, true)
		t += c.CostNTTMat(l)
		t += c.CostVecModAdd(l * n) // subtract
		t += c.CostVecModMul(l * n) // × P⁻¹ mod q_i
	}
	return t
}

// CostHEAdd charges a ciphertext addition (2 polys × L limbs,
// slot-parallel).
//
// Deprecated: prefer LowerHEAdd.
func (c *Compiler) CostHEAdd() float64 {
	return c.CostVecModAdd(2 * c.P.L * c.P.N())
}

// CostHEMult charges a full ciphertext multiplication: tensor product
// (slot-parallel), relinearisation (key switch), and rescale
// (limb-parallel) — §III-A HE Multiplication.
//
// Deprecated: prefer LowerHEMult.
func (c *Compiler) CostHEMult() float64 {
	n := c.P.N()
	l := c.P.L
	// Tensor product: d0 = a₁a₂, d2 = b₁b₂, d1 = a₁b₂ + a₂b₁.
	t := c.CostVecModMul(4 * l * n)
	t += c.CostVecModAdd(l * n)
	// Relinearise d2.
	t += c.CostKeySwitch()
	// Combine and rescale.
	t += c.CostVecModAdd(2 * l * n)
	t += c.CostRescale()
	return t
}

// CostRescale charges one rescaling: drop the top limb of both polys —
// the dropped limb is inverse-transformed on one core and replicated
// (it is the BConv source for every output limb), then the L−1 output
// limbs proceed limb-parallel.
//
// Deprecated: prefer LowerRescale.
func (c *Compiler) CostRescale() float64 {
	n := c.P.N()
	l := c.P.L
	var t float64
	for p := 0; p < 2; p++ {
		t += c.costNTTMatAlg(1, c.P.Red, tpusim.CatINTTMatMul)
		t += c.broadcast(int64(4 * n))
		t += c.costBConvGathered(n, 1, l-1, true)
		t += c.CostNTTMat(l - 1)
		t += c.CostVecModAdd((l - 1) * n)
		t += c.CostVecModMul((l - 1) * n) // × q_L⁻¹ mod q_i
	}
	return t
}

// CostRotate charges a slot rotation: the limb-sharded automorphism
// permutation on both polynomials (the gather MAT cannot embed, §V-E)
// plus a key switch with the rotation key.
//
// Deprecated: prefer LowerRotate.
func (c *Compiler) CostRotate() float64 {
	t := c.CostAutomorphism(2 * c.P.L)
	t += c.CostKeySwitch()
	return t
}

// CostConjugate is a rotation by the conjugation Galois element — the
// same lowering as CostRotate.
//
// Deprecated: prefer LowerConjugate.
func (c *Compiler) CostConjugate() float64 { return c.CostRotate() }

// CostPtMul charges a plaintext-ciphertext multiplication (2 polys ×
// L limbs VecModMul, no key switch).
//
// Deprecated: prefer LowerPtMul.
func (c *Compiler) CostPtMul() float64 {
	return c.CostVecModMul(2 * c.P.L * c.P.N())
}

// CostPtAdd charges a plaintext-ciphertext addition.
//
// Deprecated: prefer LowerPtAdd.
func (c *Compiler) CostPtAdd() float64 {
	return c.CostVecModAdd(c.P.L * c.P.N())
}

// HEOpLatencies bundles the four benchmark operators of Tab. VIII.
type HEOpLatencies struct {
	Add, Mult, Rescale, Rotate float64 // seconds
}

// MeasureHEOps costs all four operators trace-isolated.
func (c *Compiler) MeasureHEOps() HEOpLatencies {
	return HEOpLatencies{
		Add:     c.LowerHEAdd().Total,
		Mult:    c.LowerHEMult().Total,
		Rescale: c.LowerRescale().Total,
		Rotate:  c.LowerRotate().Total,
	}
}

// BootstrapSchedule is the kernel-count schedule of the packed
// bootstrapping algorithm the paper adopts (MAD [3]): BSGS linear
// transforms for CoeffToSlot/SlotToCoeff plus a polynomial EvalMod.
// Counts follow the paper's §V-A estimation methodology — total kernel
// invocations × profiled per-kernel latency, no pipelining or fusion.
type BootstrapSchedule struct {
	Rotations int // slot rotations across CtS + StC (BSGS)
	Mults     int // ciphertext-ciphertext multiplications (EvalMod)
	PtMuls    int // plaintext multiplications (diagonal matrices, poly coeffs)
	Adds      int // ciphertext additions
	Rescales  int // standalone rescalings
}

// DefaultBootstrapSchedule returns the MAD packed-bootstrapping
// operator budget: CoeffToSlot and SlotToCoeff as multi-level BSGS
// linear transforms with hoisted rotations (≈ logN rotations per level
// after hoisting), and EvalMod as a Paterson–Stockmeyer sine
// approximation (≈ logN + 4 ciphertext multiplications). Counts grow
// logarithmically with degree, matching the memory-aware design of [3]
// rather than a naive √N-rotation transform.
func DefaultBootstrapSchedule(p Params) BootstrapSchedule {
	rot := 2*p.LogN + 32 // CtS + StC rotations after hoisting
	return BootstrapSchedule{
		Rotations: rot,
		Mults:     p.LogN + 4, // EvalMod (Paterson–Stockmeyer)
		PtMuls:    2*rot + 16,
		Adds:      2*rot + 32,
		Rescales:  24,
	}
}

// CostBootstrap charges one packed bootstrapping.
//
// Deprecated: prefer LowerBootstrap.
func (c *Compiler) CostBootstrap(s BootstrapSchedule) float64 {
	var t float64
	for i := 0; i < s.Rotations; i++ {
		t += c.CostRotate()
	}
	for i := 0; i < s.Mults; i++ {
		t += c.CostHEMult()
	}
	for i := 0; i < s.PtMuls; i++ {
		t += c.CostPtMul()
	}
	for i := 0; i < s.Adds; i++ {
		t += c.CostHEAdd()
	}
	for i := 0; i < s.Rescales; i++ {
		t += c.CostRescale()
	}
	return t
}
