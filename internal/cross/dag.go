package cross

import (
	"fmt"

	"cross/internal/tpusim"
)

// This file is the overlap-aware half of the Schedule IR (DESIGN.md
// §13): instead of summing every charged segment, a lowering is
// recorded as a dependency DAG of timed segments on four resources —
// compute (MXU/VPU/XLU), VMEM relayout, HBM streaming, and the ICI
// link — and executed by the discrete-event engine in engine.go. The
// serial total stays the plain sum (bit-identical to the pre-DAG
// model); the DAG's makespan is the overlapped total.

// SegKind classifies which resource a DAG segment occupies. Segments
// on different resources may overlap; segments on the same resource
// serialize (each kind keeps in-order issue on its unit).
type SegKind uint8

const (
	// SegCompute runs on the core's functional units (MXU, VPU, XLU).
	SegCompute SegKind = iota
	// SegVMEM is an on-chip copy/reshape between kernels.
	SegVMEM
	// SegHBM is off-chip operand streaming (double-buffered limbs).
	SegHBM
	// SegICI is an interconnect collective on the target's fabric —
	// the pod's ICI links or a GPU node's NVLink.
	SegICI
)

// String names the kind for labels and test failure messages.
func (k SegKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegVMEM:
		return "vmem"
	case SegHBM:
		return "hbm"
	case SegICI:
		return "ici"
	}
	return fmt.Sprintf("SegKind(%d)", uint8(k))
}

// SegNode is one timed segment of a schedule DAG. Deps are indices of
// nodes that must finish before this one starts.
type SegNode struct {
	Kind  SegKind
	Label string
	Dur   float64
	Deps  []int
}

// SegDAG is a dependency DAG of timed segments. Nodes are append-only;
// an edge dep→i means node i starts no earlier than dep finishes.
type SegDAG struct {
	Nodes []SegNode
}

// NewSegDAG returns an empty DAG.
func NewSegDAG() *SegDAG { return &SegDAG{} }

// Add appends a node and returns its index, for use as a dependency of
// later nodes.
func (d *SegDAG) Add(kind SegKind, label string, dur float64, deps ...int) int {
	id := len(d.Nodes)
	d.Nodes = append(d.Nodes, SegNode{
		Kind:  kind,
		Label: label,
		Dur:   dur,
		Deps:  append([]int(nil), deps...),
	})
	return id
}

// Edges counts dependency edges.
func (d *SegDAG) Edges() int {
	n := 0
	for _, nd := range d.Nodes {
		n += len(nd.Deps)
	}
	return n
}

// SerialSum is the sum of every segment duration — the DAG's latency
// under the fully serial (no-overlap) execution model.
func (d *SegDAG) SerialSum() float64 {
	var s float64
	for _, nd := range d.Nodes {
		s += nd.Dur
	}
	return s
}

// segKindOf maps a trace category to the resource its segment occupies.
// Everything that is not interconnect, off-chip streaming, or an
// inter-kernel relayout runs on the core's functional units.
func segKindOf(category string) SegKind {
	switch category {
	case tpusim.CatICI, tpusim.CatNVLink:
		return SegICI
	case tpusim.CatHBM:
		return SegHBM
	case tpusim.CatCopyReshape:
		return SegVMEM
	default:
		return SegCompute
	}
}

// dagBuilder turns a lowering's ordered charge stream (observed via
// tpusim.Trace.Observe) into a SegDAG. Edge rules (DESIGN.md §13):
//
//   - Compute and VMEM segments form the serial on-core chain, in
//     charge order — the paper's CROSS kernels do not pipeline across
//     each other (§V-E), so consecutive compute charges merge into one
//     run node and a VMEM relayout punctuates the run.
//   - An HBM segment depends on the serial node *before* the run it
//     was issued under plus the previous HBM segment (the link is
//     in-order): double-buffered streaming that overlaps the current
//     compute run. The next serial node then depends on every HBM
//     segment issued since the last one — the buffer-swap barrier.
//   - An ICI segment depends on the serial chain tail at its issue
//     point plus the previous ICI segment: an async in-order link with
//     no consumer edge back into the chain, so a collective is hidden
//     behind whatever compute follows it and only the DAG's makespan
//     (the op's retire barrier) waits for it — which is exactly what
//     bends pod-scaling curves at the ICI-bound knee.
type dagBuilder struct {
	d          *SegDAG
	tail       int   // current serial-chain tail (-1 when empty)
	prev       int   // serial node before tail (-1 when none)
	lastHBM    int   // previous HBM node (-1 when none)
	lastICI    int   // previous ICI node (-1 when none)
	pendingHBM []int // HBM nodes the next serial node must wait on
	merging    bool  // tail is an open compute run absorbing charges
}

func newDAGBuilder() *dagBuilder {
	return &dagBuilder{d: NewSegDAG(), tail: -1, prev: -1, lastHBM: -1, lastICI: -1}
}

// serialNode appends a node to the serial on-core chain, closing it
// over any HBM segments issued since the previous chain node.
func (b *dagBuilder) serialNode(kind SegKind, label string, sec float64) {
	deps := make([]int, 0, 1+len(b.pendingHBM))
	if b.tail >= 0 {
		deps = append(deps, b.tail)
	}
	deps = append(deps, b.pendingHBM...)
	b.pendingHBM = b.pendingHBM[:0]
	id := b.d.Add(kind, label, sec, deps...)
	b.prev, b.tail = b.tail, id
}

// segment consumes one observed trace charge. Zero-duration charges
// (e.g. single-core collectives) produce no node.
func (b *dagBuilder) segment(category string, sec float64) {
	if sec <= 0 {
		return
	}
	switch segKindOf(category) {
	case SegCompute:
		if b.merging && len(b.pendingHBM) == 0 {
			b.d.Nodes[b.tail].Dur += sec
			return
		}
		b.serialNode(SegCompute, "compute", sec)
		b.merging = true
	case SegVMEM:
		b.serialNode(SegVMEM, category, sec)
		b.merging = false
	case SegHBM:
		deps := make([]int, 0, 2)
		if b.prev >= 0 {
			deps = append(deps, b.prev)
		}
		if b.lastHBM >= 0 {
			deps = append(deps, b.lastHBM)
		}
		b.lastHBM = b.d.Add(SegHBM, category, sec, deps...)
		b.pendingHBM = append(b.pendingHBM, b.lastHBM)
	case SegICI:
		deps := make([]int, 0, 2)
		if b.tail >= 0 {
			deps = append(deps, b.tail)
		}
		if b.lastICI >= 0 {
			deps = append(deps, b.lastICI)
		}
		b.lastICI = b.d.Add(SegICI, category, sec, deps...)
		b.merging = false
	}
}
