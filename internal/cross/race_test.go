package cross

import (
	"sync"
	"testing"

	"cross/internal/tpusim"
)

// The sweep engine lowers concurrently on shared compilers, programs,
// and a shared schedule cache. These tests are the `go test -race`
// tripwires for that path: before the Compiler/Program memoization was
// mutex-guarded, each of them raced on the live trace swap in LowerOp
// or on the program memo map.

// TestConcurrentLowerOnSharedCompiler hammers one compiler from many
// goroutines and checks every goroutine observes the serial answer.
func TestConcurrentLowerOnSharedCompiler(t *testing.T) {
	c, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 4), SetC())
	if err != nil {
		t.Fatal(err)
	}
	wantMult := c.LowerHEMult().Total
	wantRot := c.LowerRotate().Total

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, 2*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if got := c.LowerHEMult().Total; got != wantMult {
					errs <- "HE-Mult total changed under concurrency"
					return
				}
				if got := c.LowerRotate().Total; got != wantRot {
					errs <- "Rotate total changed under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentOverlappedLower is the DAG engine's race tripwire:
// the observer attach/detach and DAG build/execute in LowerOp are
// compiler-global state under the same lock as the trace swap, and the
// overlapped makespan must be as deterministic under concurrency as
// the serial total.
func TestConcurrentOverlappedLower(t *testing.T) {
	c, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 8), SetD())
	if err != nil {
		t.Fatal(err)
	}
	ref := c.LowerHEMult()
	wantOv, wantNodes := ref.Overlapped, ref.DAGNodes
	if wantOv <= 0 || wantOv >= ref.Total {
		t.Fatalf("reference lowering shows no overlap (%g of %g) — tripwire is vacuous", wantOv, ref.Total)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				s := c.LowerHEMult()
				if s.Overlapped != wantOv || s.DAGNodes != wantNodes {
					errs <- "overlapped lowering changed under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentProgramLower lowers one shared Program from many
// goroutines; the memo map write used to race.
func TestConcurrentProgramLower(t *testing.T) {
	c, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), SetB())
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(c).HEMultN(3).RotateN(1, 2).HEAdd().Rescale()
	want := prog.Lower().Total

	const workers = 8
	var wg sync.WaitGroup
	totals := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			totals[w] = prog.Lower().Total
		}(w)
	}
	wg.Wait()
	for w, got := range totals {
		if got != want {
			t.Errorf("worker %d: Program total %.9g != serial %.9g", w, got, want)
		}
	}
}

// TestScheduleCacheSharedAcrossPrograms runs distinct programs over a
// shared cache concurrently and checks (a) cached results are
// bit-identical to uncached lowerings and (b) each distinct operator
// lowered exactly once process-wide.
func TestScheduleCacheSharedAcrossPrograms(t *testing.T) {
	sc := NewScheduleCache()
	const workers = 8
	var wg sync.WaitGroup
	totals := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker builds its own pod/compiler/program — only
			// the cache is shared, as in the sweep engine.
			c, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 2), SetA())
			if err != nil {
				t.Error(err)
				return
			}
			totals[w] = NewProgram(c).WithCache(sc).HEMult().Rotate(1).Lower().Total
		}(w)
	}
	wg.Wait()

	cUn, err := Compile(tpusim.MustPod(tpusim.TPUv6e(), 2), SetA())
	if err != nil {
		t.Fatal(err)
	}
	want := NewProgram(cUn).HEMult().Rotate(1).Lower().Total
	for w, got := range totals {
		if got != want {
			t.Errorf("worker %d: cached total %.9g != uncached %.9g", w, got, want)
		}
	}
	if sc.Len() != 2 {
		t.Errorf("cache has %d entries, want 2 (mult, rotate)", sc.Len())
	}
}
