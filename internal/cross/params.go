// Package cross is the paper's primary contribution: the compiler that
// lowers CKKS HE kernels onto an AI accelerator by (1) BAT — rewriting
// high-precision modular arithmetic as dense INT8 matrix multiplication
// for the MXU — and (2) MAT — embedding every embeddable reordering into
// offline parameters so kernels are layout-invariant (§IV).
//
// The package has two faces:
//
//   - a lowering/cost face: each HE kernel (NTT, INTT, BConv, VecMod*,
//     automorphism) is lowered to a stream of tpusim operations under
//     either the CROSS strategy or the SoTA-GPU baseline strategy, and
//     the simulated latency is returned (this regenerates Tab. V–X and
//     the figures);
//   - a functional face: the same plans execute bit-exactly on the CPU
//     through internal/ring and internal/bat, which is how every
//     lowering is verified against the naive oracles.
package cross

import (
	"fmt"

	"cross/internal/bat"
	"cross/internal/modarith"
)

// Params fixes one CKKS security/performance configuration (Tab. IV).
type Params struct {
	LogN int  // ring degree exponent; N = 1 << LogN
	LogQ uint // bits per RNS prime (28 in every paper set)
	L    int  // number of ciphertext-modulus limbs
	Dnum int  // hybrid key-switching digit count
	// R, C split the layout-invariant 3-step NTT; R·C must equal N.
	R, C int
	// Red selects the VPU modular-reduction algorithm (Fig. 13).
	Red modarith.ReduceAlgorithm
}

// N returns the ring degree.
func (p Params) N() int { return 1 << p.LogN }

// K returns the number of 8-bit chunks per coefficient (Tab. I).
func (p Params) K() int { return bat.NumChunks(p.LogQ) }

// Alpha returns the limbs per key-switching digit, ⌈L/dnum⌉.
func (p Params) Alpha() int {
	if p.Dnum <= 0 {
		return p.L
	}
	return (p.L + p.Dnum - 1) / p.Dnum
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.LogN < 3 || p.LogN > 17 {
		return fmt.Errorf("cross: LogN %d outside [3, 17]", p.LogN)
	}
	if p.LogQ < 10 || p.LogQ > 32 {
		return fmt.Errorf("cross: LogQ %d outside BAT's [10, 32] range", p.LogQ)
	}
	if p.L < 1 {
		return fmt.Errorf("cross: L must be ≥ 1")
	}
	if p.Dnum < 1 || p.Dnum > p.L {
		return fmt.Errorf("cross: dnum %d outside [1, L=%d]", p.Dnum, p.L)
	}
	if p.R*p.C != p.N() {
		return fmt.Errorf("cross: split %d×%d does not cover N=%d", p.R, p.C, p.N())
	}
	if p.R < 2 || p.C < 2 || p.R&(p.R-1) != 0 || p.C&(p.C-1) != 0 {
		return fmt.Errorf("cross: split factors (%d, %d) must be powers of two ≥ 2", p.R, p.C)
	}
	return nil
}

// WithSplit returns a copy with a different (R, C) NTT split — the
// sweep dimension of the §V-A configuration search.
func (p Params) WithSplit(r, c int) Params {
	p.R, p.C = r, c
	return p
}

// defaultSplit picks (128, N/128), the paper's standalone-NTT choice
// that pins one dimension to the lane count (§V-A).
func defaultSplit(logN int) (int, int) {
	n := 1 << logN
	r := 128
	if n/r < 2 {
		r = n / 2
	}
	return r, n / r
}

// SetA..SetD are the paper's parameter sets (Tab. IV).
func SetA() Params {
	r, c := defaultSplit(12)
	return Params{LogN: 12, LogQ: 28, L: 4, Dnum: 3, R: r, C: c, Red: modarith.Montgomery}
}

// SetB is N=2^13, L=8.
func SetB() Params {
	r, c := defaultSplit(13)
	return Params{LogN: 13, LogQ: 28, L: 8, Dnum: 3, R: r, C: c, Red: modarith.Montgomery}
}

// SetC is N=2^14, L=15.
func SetC() Params {
	r, c := defaultSplit(14)
	return Params{LogN: 14, LogQ: 28, L: 15, Dnum: 3, R: r, C: c, Red: modarith.Montgomery}
}

// SetD is N=2^16, L=51 — the default CROSS configuration (§V-A).
func SetD() Params {
	r, c := defaultSplit(16)
	return Params{LogN: 16, LogQ: 28, L: 51, Dnum: 3, R: r, C: c, Red: modarith.Montgomery}
}

// NamedSet resolves "A".."D".
func NamedSet(name string) (Params, error) {
	switch name {
	case "A":
		return SetA(), nil
	case "B":
		return SetB(), nil
	case "C":
		return SetC(), nil
	case "D":
		return SetD(), nil
	default:
		return Params{}, fmt.Errorf("cross: unknown parameter set %q", name)
	}
}

// SplitCandidates returns the (R, C) pairs the paper sweeps for HE
// operator evaluation: {(128,512),(256,256),(512,128)} at N=2^16,
// scaled analogously for other degrees.
func (p Params) SplitCandidates() [][2]int {
	n := p.N()
	var out [][2]int
	for r := 64; r <= 1024; r <<= 1 {
		c := n / r
		if c >= 64 && r*c == n {
			out = append(out, [2]int{r, c})
		}
	}
	if len(out) == 0 {
		out = append(out, [2]int{p.R, p.C})
	}
	return out
}
