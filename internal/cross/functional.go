package cross

import (
	"fmt"

	"cross/internal/bat"
	"cross/internal/modarith"
	"cross/internal/ring"
)

// Functional execution of the CROSS lowering (the compiler's second
// face): this file runs the *exact arithmetic the TPU would execute* —
// uint8 operands, int32 systolic accumulation, chunk merges, word-level
// reductions — end to end for the layout-invariant 3-step NTT (Fig. 10
// row 3) and for BConv step 2. It exists to prove, bit for bit, that
// the BAT+MAT rewrite computes the same function as the reference
// kernels; the cost model prices precisely this op stream.

// NTTExecutor is the offline-compiled functional form of the MAT NTT
// for one ring: BAT-compiled step-1/step-3 twiddle matrices per limb
// plus the element-wise twist, in the plan's evaluation layout.
type NTTExecutor struct {
	Ring *ring.Ring
	Plan *ring.MatNTTPlan
	R, C int

	limbs []*nttExecLimb
}

type nttExecLimb struct {
	step1 *bat.MatMulPlan // (C, C) twiddles, BAT-compiled
	step3 *bat.MatMulPlan // (R, R) twiddles (transposed for left-mult)
	tw    []uint64        // C×R element-wise twist
	twS   []uint64
}

// NewNTTExecutor BAT-compiles the plan's twiddle matrices offline
// (OFFLINECOMPILELEFT applied to T1 and T3ᵀ).
func NewNTTExecutor(rg *ring.Ring, plan *ring.MatNTTPlan) (*NTTExecutor, error) {
	ex := &NTTExecutor{Ring: rg, Plan: plan, R: plan.R, C: plan.C,
		limbs: make([]*nttExecLimb, rg.L())}
	for i := range rg.Moduli {
		t1, tw, t3 := plan.Matrices(i)
		m := rg.Moduli[i]
		step1, err := bat.OfflineCompileLeft(m, t1, plan.C, plan.C)
		if err != nil {
			return nil, fmt.Errorf("cross: limb %d step1: %w", i, err)
		}
		// Step 3 computes Ã @ T3; with T3 symmetric ((ω^C)^{rj} =
		// (ω^C)^{jr}) the MAT identity (Ã@T3)ᵀ = T3ᵀ@Ãᵀ = T3@Ãᵀ lets
		// the same left-operand BAT form serve: we evaluate
		// Y ᵀ = T3' @ Ãᵀ where T3' is T3 with its columns pre-permuted
		// (already folded into the plan), i.e. T3 transposed row-major.
		t3T := transposeFlat(t3, plan.R, plan.R)
		step3, err := bat.OfflineCompileLeft(m, t3T, plan.R, plan.R)
		if err != nil {
			return nil, fmt.Errorf("cross: limb %d step3: %w", i, err)
		}
		twS := make([]uint64, len(tw))
		for k, w := range tw {
			twS[k] = m.ShoupPrecompute(w)
		}
		ex.limbs[i] = &nttExecLimb{step1: step1, step3: step3, tw: tw, twS: twS}
	}
	return ex, nil
}

func transposeFlat(a []uint64, rows, cols int) []uint64 {
	out := make([]uint64, len(a))
	transposeFlatInto(out, a, rows, cols)
	return out
}

// transposeFlatInto writes the transpose of a (rows×cols) into out
// (cols×rows). out must not alias a.
func transposeFlatInto(out, a []uint64, rows, cols int) {
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[j*rows+i] = a[i*cols+j]
		}
	}
}

// ForwardLimb executes the full CROSS NTT pipeline for one limb using
// only the operations the TPU lowering emits:
//
//	chunk-stack → INT8 MatMul (MXU) → merge+reduce (VPU) →
//	twist (VPU) → chunk-stack → INT8 MatMul → merge+reduce.
//
// Output matches ring.MatNTTPlan.ForwardLimb bit-exactly.
func (ex *NTTExecutor) ForwardLimb(i int, in []uint64) ([]uint64, error) {
	out := make([]uint64, len(in))
	if err := ex.ForwardLimbInto(i, in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardLimbInto is ForwardLimb with a caller-provided destination;
// all intermediates come from the ring's shared scratch arena (R·C ==
// N words each), so the steady state allocates nothing. in and out
// may alias.
func (ex *NTTExecutor) ForwardLimbInto(i int, in, out []uint64) error {
	lm := ex.limbs[i]
	m := ex.Ring.Moduli[i]
	r, c := ex.R, ex.C
	if len(in) != r*c {
		return fmt.Errorf("cross: input length %d != N=%d", len(in), r*c)
	}
	if len(out) != r*c {
		return fmt.Errorf("cross: output length %d != N=%d", len(out), r*c)
	}

	// Step 1: A = T1 @ X with X the C×R reshape of the input.
	ab := ex.Ring.GetScratch()
	defer ex.Ring.PutScratch(ab)
	a := (*ab)[:c*r]
	if err := lm.step1.MulInto(a, in, r, 1); err != nil {
		return err
	}
	// Step 2: element-wise twist (VPU).
	m.VecMulModShoup(a, a, lm.tw, lm.twS)
	// Step 3: Y = Ã @ T3 evaluated as Yᵀ = T3ᵀ @ Ãᵀ (MAT transpose
	// identity; the "transpose" of operands is a compile-time reindex,
	// not a runtime shuffle — we simply read Ã column-major).
	atb := ex.Ring.GetScratch()
	defer ex.Ring.PutScratch(atb)
	aT := (*atb)[:c*r]
	transposeFlatInto(aT, a, c, r)
	yT := a // step-1 buffer is free again after the transpose
	if err := lm.step3.MulInto(yT, aT, c, 1); err != nil {
		return err
	}
	transposeFlatInto(out, yT, r, c)
	return nil
}

// Forward executes every limb of a polynomial in place.
func (ex *NTTExecutor) Forward(p *ring.Poly) error {
	for i := 0; i <= p.Level(); i++ {
		if err := ex.ForwardLimbInto(i, p.Coeffs[i], p.Coeffs[i]); err != nil {
			return err
		}
	}
	return nil
}

// BConvStep2BAT executes basis-conversion step 2 through the BAT
// pipeline: for each target modulus p_j the compile-time row
// [q̂_0…q̂_{L-1}]_{p_j} is BAT-compiled and the (1, L, N) low-precision
// MatMul accumulates the converted limb. y is limb-major [L][N]
// (step-1 output); table is [L'][L] (rns.Converter.Table layout);
// moduli are the L' target primes. The result is congruent limb-wise
// to rns.Converter.Step2.
func BConvStep2BAT(moduli []*modarith.Modulus, table [][]uint64, y [][]uint64) ([][]uint64, error) {
	if len(moduli) != len(table) {
		return nil, fmt.Errorf("cross: %d moduli for %d table rows", len(moduli), len(table))
	}
	l := len(y)
	if l == 0 {
		return nil, fmt.Errorf("cross: empty source")
	}
	n := len(y[0])
	flat := make([]uint64, l*n)
	for i := range y {
		copy(flat[i*n:(i+1)*n], y[i])
	}
	out := make([][]uint64, len(moduli))
	for j, m := range moduli {
		plan, err := bat.OfflineCompileLeft(m, table[j], 1, l)
		if err != nil {
			return nil, fmt.Errorf("cross: target limb %d: %w", j, err)
		}
		row, err := plan.Mul(flat, n)
		if err != nil {
			return nil, fmt.Errorf("cross: target limb %d: %w", j, err)
		}
		out[j] = row
	}
	return out, nil
}

// ExecuteVecModMulConv1D is the functional fallback path for
// ciphertext×ciphertext element-wise multiplication (Fig. 16): both
// operands unknown, scheduled as 1-D convolution over 8-bit chunks.
func ExecuteVecModMulConv1D(rg *ring.Ring, limb int, dst, a, b []uint64) {
	bat.Conv1DVecMul(rg.Moduli[limb], dst, a, b)
}
