package cross

import "cross/internal/tpusim"

// Target is the hardware a Compiler lowers onto: one simulated tensor
// core (*tpusim.Device) or a multi-core slice (*tpusim.Pod). The
// compiler's lowering is written once against this interface — work
// shards across NumCores() and the collective methods price the
// inter-chip synchronisation the mathematics demands. A bare device is
// the 1-core degenerate case: every collective is free, so the lowering
// reduces bit-exactly to the paper's single-core model.
type Target interface {
	// Core returns the representative tensor core. Schedules are SPMD
	// over symmetric cores, so all compute is charged to this core's
	// trace; the pod-level latency is core time plus collective time.
	Core() *tpusim.Device

	// NumCores reports how many cores share the work.
	NumCores() int

	// Name renders the target ("TPUv6e", "TPUv6e-4").
	Name() string

	// AllGather prices replicating a sharded buffer of `bytes` total
	// size onto every core (ring algorithm; free on one core).
	AllGather(bytes int64) float64

	// AllReduce prices the element-wise reduction of per-core buffers
	// of `bytes` each (reduce-scatter + all-gather ring phases).
	AllReduce(bytes int64) float64

	// Broadcast prices replicating `bytes` from one core to all others
	// (binomial tree).
	Broadcast(bytes int64) float64

	// CollectiveTrace exposes the interconnect trace. Never nil: a
	// target without an interconnect (a bare device) owns an empty
	// trace, so devices and pods take the identical costing code path.
	CollectiveTrace() *tpusim.Trace

	// SetCollectiveTrace swaps the interconnect trace — the hook
	// trace-isolated costing uses.
	SetCollectiveTrace(*tpusim.Trace)
}

// Both tpusim targets satisfy the interface.
var (
	_ Target = (*tpusim.Device)(nil)
	_ Target = (*tpusim.Pod)(nil)
)
