package cross

import (
	"math"
	"testing"

	"cross/internal/tpusim"
)

// --- engine property tests (hand-built DAGs) ---

// TestEngineChainEqualsSerialSum: on a pure chain the makespan is the
// left-to-right sum of durations — exactly the serial model, bit for
// bit (same association order as a running sum).
func TestEngineChainEqualsSerialSum(t *testing.T) {
	d := NewSegDAG()
	durs := []float64{3.5e-6, 1e-7, 9.25e-6, 2e-8, 4.875e-6}
	prev := -1
	var want float64
	for _, dur := range durs {
		if prev < 0 {
			prev = d.Add(SegCompute, "n", dur)
		} else {
			prev = d.Add(SegCompute, "n", dur, prev)
		}
		want += dur
	}
	got, err := d.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("chain makespan = %.17g, want serial sum %.17g (must be bit-identical)", got, want)
	}
}

// TestEngineDiamondCriticalPath: fork-join diamonds resolve to the
// critical path, not the sum.
func TestEngineDiamondCriticalPath(t *testing.T) {
	// a → {b, c} → d with c the long arm.
	d := NewSegDAG()
	a := d.Add(SegCompute, "a", 1.0)
	b := d.Add(SegHBM, "b", 2.0, a)
	c := d.Add(SegCompute, "c", 5.0, a)
	d.Add(SegCompute, "d", 3.0, b, c)
	got, err := d.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 + 5.0 + 3.0; got != want {
		t.Errorf("diamond makespan = %g, want critical path %g", got, want)
	}

	// Wide fork-join: the makespan is the longest arm plus the join.
	f := NewSegDAG()
	src := f.Add(SegCompute, "src", 1.0)
	arms := []int{}
	for i, dur := range []float64{2, 7, 3, 5} {
		kind := SegCompute
		if i%2 == 1 {
			kind = SegICI
		}
		arms = append(arms, f.Add(kind, "arm", dur, src))
	}
	f.Add(SegCompute, "join", 2.0, arms...)
	got, err = f.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 + 7.0 + 2.0; got != want {
		t.Errorf("fork-join makespan = %g, want %g", got, want)
	}
}

// TestEngineDisconnectedComponents: independent components overlap
// fully — the makespan is the longest component.
func TestEngineDisconnectedComponents(t *testing.T) {
	d := NewSegDAG()
	d.Add(SegCompute, "x", 4.0)
	d.Add(SegICI, "y", 9.0)
	d.Add(SegHBM, "z", 2.0)
	got, err := d.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if got != 9.0 {
		t.Errorf("makespan = %g, want 9 (longest independent segment)", got)
	}
}

// TestEngineEmptyDAG: no segments, zero makespan.
func TestEngineEmptyDAG(t *testing.T) {
	got, err := NewSegDAG().Execute()
	if err != nil || got != 0 {
		t.Errorf("empty DAG: (%g, %v), want (0, nil)", got, err)
	}
}

// TestEngineCycleIsErrorNotHang: a dependency cycle must be reported
// as an error — the engine counts unexecutable nodes instead of
// waiting on them, so this returns promptly by construction.
func TestEngineCycleIsErrorNotHang(t *testing.T) {
	d := NewSegDAG()
	a := d.Add(SegCompute, "a", 1.0)
	b := d.Add(SegCompute, "b", 1.0, a)
	d.Nodes[a].Deps = append(d.Nodes[a].Deps, b) // close the cycle
	if _, err := d.Execute(); err == nil {
		t.Fatal("cyclic DAG executed without error")
	}

	// Self-loop.
	s := NewSegDAG()
	x := s.Add(SegCompute, "x", 1.0)
	s.Nodes[x].Deps = append(s.Nodes[x].Deps, x)
	if _, err := s.Execute(); err == nil {
		t.Fatal("self-loop executed without error")
	}
}

// TestEngineRejectsOutOfRangeDep: malformed indices are an error, not
// a panic or a silent skip.
func TestEngineRejectsOutOfRangeDep(t *testing.T) {
	d := NewSegDAG()
	d.Add(SegCompute, "a", 1.0, 7)
	if _, err := d.Execute(); err == nil {
		t.Fatal("out-of-range dependency executed without error")
	}
}

// --- schedule-level property tests (real lowerings) ---

// overlapTargets enumerates a representative target × params grid.
func overlapTargets(t *testing.T) []*Compiler {
	t.Helper()
	var out []*Compiler
	for _, spec := range tpusim.AllSpecs() {
		for _, p := range []Params{SetA(), SetC(), SetD()} {
			for _, cores := range []int{1, 4, 16} {
				pod, err := tpusim.NewPod(spec, cores)
				if err != nil {
					t.Fatal(err)
				}
				c, err := Compile(pod, p)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// TestOverlappedBoundedBySerial: for every real lowering,
// 0 < OverlappedTotal ≤ SerialTotal, OverlapFraction ∈ [0, 1], and
// the makespan can never undercut the on-core serial chain (Total −
// Collective − HBM) nor the in-order ICI chain (Collective).
func TestOverlappedBoundedBySerial(t *testing.T) {
	for _, c := range overlapTargets(t) {
		for _, s := range []*Schedule{
			c.LowerHEMult(),
			c.LowerRotate(),
			c.LowerKeySwitch(),
			c.LowerNTT(64),
			c.LowerBootstrap(DefaultBootstrapSchedule(c.P)),
		} {
			id := s.Op + " on " + s.Target
			if s.Overlapped <= 0 || s.Overlapped > s.Total {
				t.Errorf("%s: overlapped %g outside (0, total=%g]", id, s.Overlapped, s.Total)
			}
			if s.SerialTotal() != s.Total {
				t.Errorf("%s: SerialTotal %g != Total %g", id, s.SerialTotal(), s.Total)
			}
			if f := s.OverlapFraction(); f < 0 || f > 1 || math.IsNaN(f) {
				t.Errorf("%s: overlap fraction %g outside [0,1]", id, f)
			}
			// Only HBM and ICI segments leave the serial chain, so the
			// makespan is bounded below by both the chain and the ICI
			// sequence (small slack for fp association).
			chain := s.Total - s.Collective - s.Seconds(tpusim.CatHBM)
			slack := 1e-9 * s.Total
			if s.Overlapped < chain-slack {
				t.Errorf("%s: overlapped %g below on-core chain %g", id, s.Overlapped, chain)
			}
			if s.Overlapped < s.Collective-slack {
				t.Errorf("%s: overlapped %g below ICI chain %g", id, s.Overlapped, s.Collective)
			}
			if s.DAGNodes <= 0 || s.DAGEdges < s.DAGNodes-1 {
				t.Errorf("%s: implausible DAG shape (%d nodes, %d edges)", id, s.DAGNodes, s.DAGEdges)
			}
		}
	}
}

// TestOverlapAcceptanceBootstrap is the PR's acceptance criterion:
// multi-core SetC/SetD Bootstrap must show OverlappedTotal strictly
// below SerialTotal with a positive reported overlap fraction, and the
// hidden share must grow with the core count as more ICI time hides
// behind compute (the pod-scaling bend).
func TestOverlapAcceptanceBootstrap(t *testing.T) {
	for _, set := range []string{"C", "D"} {
		p, err := NamedSet(set)
		if err != nil {
			t.Fatal(err)
		}
		prevFrac := 0.0
		for _, cores := range []int{2, 4, 8} {
			pod, err := tpusim.NewPod(tpusim.TPUv6e(), cores)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(pod, p)
			if err != nil {
				t.Fatal(err)
			}
			s := c.LowerBootstrap(DefaultBootstrapSchedule(p))
			if s.OverlappedTotal() >= s.SerialTotal() {
				t.Errorf("Set%s %d-core Bootstrap: overlapped %g not below serial %g",
					set, cores, s.OverlappedTotal(), s.SerialTotal())
			}
			f := s.OverlapFraction()
			if f <= 0 {
				t.Errorf("Set%s %d-core Bootstrap: overlap fraction %g not positive", set, cores, f)
			}
			if f <= prevFrac {
				t.Errorf("Set%s: overlap fraction %g at %d cores not above %g at the previous size",
					set, f, cores, prevFrac)
			}
			prevFrac = f
		}
	}
}

// TestOverlapDeviceEqualsOnePod: the 1-core degenerate case — a bare
// Device and a 1-core Pod produce identical overlapped latencies, like
// every other Schedule field.
func TestOverlapDeviceEqualsOnePod(t *testing.T) {
	p := SetC()
	dev, err := Compile(tpusim.NewDevice(tpusim.TPUv6e()), p)
	if err != nil {
		t.Fatal(err)
	}
	pod1, err := tpusim.NewPod(tpusim.TPUv6e(), 1)
	if err != nil {
		t.Fatal(err)
	}
	podc, err := Compile(pod1, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := dev.LowerHEMult(), podc.LowerHEMult()
	if a.Overlapped != b.Overlapped || a.DAGNodes != b.DAGNodes || a.DAGEdges != b.DAGEdges {
		t.Errorf("device (%g, %d, %d) != 1-core pod (%g, %d, %d)",
			a.Overlapped, a.DAGNodes, a.DAGEdges, b.Overlapped, b.DAGNodes, b.DAGEdges)
	}
}

// TestProgramOverlappedComposes: a program's overlapped latency is the
// count- and batch-scaled sum of its operators' (ops serialize across
// boundaries — no cross-op overlap).
func TestProgramOverlappedComposes(t *testing.T) {
	pod, err := tpusim.NewPod(tpusim.TPUv6e(), 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(pod, SetC())
	if err != nil {
		t.Fatal(err)
	}
	mult, rot := c.LowerHEMult(), c.LowerRotate()
	s := NewProgram(c).HEMultN(3).Rotate(1).Batch(2).Lower()
	want := 2 * (3*mult.Overlapped + rot.Overlapped)
	if diff := math.Abs(s.Overlapped - want); diff > 1e-12*want {
		t.Errorf("program overlapped %g, want %g", s.Overlapped, want)
	}
	if s.Overlapped <= 0 || s.Overlapped > s.Total {
		t.Errorf("program overlapped %g outside (0, total=%g]", s.Overlapped, s.Total)
	}
	if s.PricedTotal(false) != s.Total || s.PricedTotal(true) != s.Overlapped {
		t.Errorf("PricedTotal switch broken: (%g, %g) vs total %g overlapped %g",
			s.PricedTotal(false), s.PricedTotal(true), s.Total, s.Overlapped)
	}
}
