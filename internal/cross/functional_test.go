package cross

import (
	"math/rand"
	"testing"

	"cross/internal/modarith"
	"cross/internal/ring"
	"cross/internal/rns"
)

func funcTestRing(t testing.TB, n, limbs int) *ring.Ring {
	t.Helper()
	primes, err := modarith.GenerateNTTPrimes(28, uint64(n), limbs)
	if err != nil {
		t.Fatal(err)
	}
	return ring.MustRing(n, primes)
}

func TestNTTExecutorMatchesPlan(t *testing.T) {
	// The full CROSS lowering (uint8 MXU arithmetic + VPU merges) must
	// be bit-identical to the word-level MAT NTT — which is itself
	// bit-identical to radix-2. This closes the chain
	// MXU-int8 ≡ MAT ≡ radix-2 ≡ naive.
	rng := rand.New(rand.NewSource(1))
	for _, order := range []ring.Layout{ring.LayoutDigitSwap, ring.LayoutBitRev} {
		for _, tc := range []struct{ n, r, c int }{{64, 8, 8}, {256, 16, 16}, {256, 4, 64}} {
			rg := funcTestRing(t, tc.n, 2)
			plan, err := ring.NewMatNTTPlan(rg, tc.r, tc.c, order)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := NewNTTExecutor(rg, plan)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rg.Moduli {
				in := make([]uint64, tc.n)
				for k := range in {
					in[k] = rng.Uint64() % rg.Moduli[i].Q
				}
				want := make([]uint64, tc.n)
				plan.ForwardLimb(i, in, want)
				got, err := ex.ForwardLimb(i, in)
				if err != nil {
					t.Fatal(err)
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("N=%d (R=%d,C=%d) order=%v limb=%d slot=%d: MXU-int8 %d, word-level %d",
							tc.n, tc.r, tc.c, order, i, k, got[k], want[k])
					}
				}
			}
		}
	}
}

func TestNTTExecutorForwardPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rg := funcTestRing(t, 128, 3)
	plan, err := ring.NewMatNTTPlan(rg, 8, 16, ring.LayoutBitRev)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewNTTExecutor(rg, plan)
	if err != nil {
		t.Fatal(err)
	}
	p := rg.NewPoly()
	for i, m := range rg.Moduli {
		for k := range p.Coeffs[i] {
			p.Coeffs[i][k] = rng.Uint64() % m.Q
		}
	}
	want := p.CopyNew()
	rg.NTT(want) // radix-2, bit-reversed output
	if err := ex.Forward(p); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(want) {
		t.Fatal("BAT-executed NTT poly differs from radix-2 NTT")
	}
}

func TestNTTExecutorInputValidation(t *testing.T) {
	rg := funcTestRing(t, 64, 1)
	plan, err := ring.NewMatNTTPlan(rg, 8, 8, ring.LayoutDigitSwap)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewNTTExecutor(rg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ForwardLimb(0, make([]uint64, 32)); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestBConvStep2BATMatchesConverter(t *testing.T) {
	n := uint64(1 << 10)
	qs, err := modarith.GenerateNTTPrimes(28, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := modarith.GenerateNTTPrimesAvoiding(28, n, 3, qs)
	if err != nil {
		t.Fatal(err)
	}
	from := rns.MustBasis(qs)
	to := rns.MustBasis(ps)
	conv, err := rns.NewConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	cols := 32
	y := rns.AllocLimbs(from.L(), cols)
	for i, m := range from.Moduli {
		for k := range y[i] {
			y[i][k] = rng.Uint64() % m.Q
		}
	}
	want := rns.AllocLimbs(to.L(), cols)
	conv.Step2(want, y)

	got, err := BConvStep2BAT(to.Moduli, conv.Table(), y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		for k := range want[j] {
			if got[j][k] != want[j][k] {
				t.Fatalf("limb %d coeff %d: BAT %d converter %d", j, k, got[j][k], want[j][k])
			}
		}
	}
}

func TestBConvStep2BATValidation(t *testing.T) {
	m := modarith.MustModulus(12289)
	if _, err := BConvStep2BAT([]*modarith.Modulus{m}, nil, [][]uint64{{1}}); err == nil {
		t.Error("expected moduli/table mismatch error")
	}
	if _, err := BConvStep2BAT(nil, nil, nil); err == nil {
		t.Error("expected empty-source error")
	}
}

func TestExecuteVecModMulConv1D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rg := funcTestRing(t, 64, 1)
	m := rg.Moduli[0]
	a := make([]uint64, 64)
	b := make([]uint64, 64)
	for i := range a {
		a[i], b[i] = rng.Uint64()%m.Q, rng.Uint64()%m.Q
	}
	dst := make([]uint64, 64)
	ExecuteVecModMulConv1D(rg, 0, dst, a, b)
	for i := range dst {
		if dst[i] != m.MulMod(a[i], b[i]) {
			t.Fatalf("conv1d fallback wrong at %d", i)
		}
	}
}
