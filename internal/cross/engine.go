package cross

import (
	"container/heap"
	"fmt"
)

// The discrete-event engine that executes a SegDAG — the same
// exact-ordered event-loop shape as internal/serve's simulator
// (min-heap keyed by time with a deterministic tiebreak), generalized
// from request arrivals to segment completions.
//
// Determinism contract (DESIGN.md §13): the makespan is a pure
// function of the DAG's node set and edges. A ready node starts at the
// max of its dependencies' finish times, and max/+ over float64 are
// exact and order-independent over a fixed operand set, so the result
// is invariant to node insertion order and to heap pop order among
// ties — there is no resource contention to arbitrate. The (time,
// node-index) tiebreak makes even the *event order* total, which is
// what the fuzz harness pins.

// segEvent is one segment completion.
type segEvent struct {
	at   float64 // finish time
	node int     // node index — deterministic tiebreak
}

// segEventHeap is a min-heap on (at, node).
type segEventHeap []segEvent

func (h segEventHeap) Len() int { return len(h) }
func (h segEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].node < h[j].node
}
func (h segEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *segEventHeap) Push(x any)   { *h = append(*h, x.(segEvent)) }
func (h *segEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Execute runs the DAG to completion and returns its makespan — the
// overlapped latency. Malformed dependencies (out-of-range indices)
// and dependency cycles are reported as errors; a cycle can never
// deadlock the engine because unexecutable nodes are counted, not
// waited on.
func (d *SegDAG) Execute() (float64, error) {
	n := len(d.Nodes)
	if n == 0 {
		return 0, nil
	}
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, nd := range d.Nodes {
		for _, dep := range nd.Deps {
			if dep < 0 || dep >= n {
				return 0, fmt.Errorf("cross: DAG node %d dependency %d out of range [0,%d)", i, dep, n)
			}
			indeg[i]++
			succ[dep] = append(succ[dep], i)
		}
	}

	// ready[i] is the max finish time over i's satisfied dependencies.
	ready := make([]float64, n)
	h := make(segEventHeap, 0, n)
	for i, nd := range d.Nodes {
		if indeg[i] == 0 {
			h = append(h, segEvent{at: nd.Dur, node: i})
		}
	}
	heap.Init(&h)

	var makespan float64
	executed := 0
	for h.Len() > 0 {
		e := heap.Pop(&h).(segEvent)
		executed++
		if e.at > makespan {
			makespan = e.at
		}
		for _, s := range succ[e.node] {
			if e.at > ready[s] {
				ready[s] = e.at
			}
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(&h, segEvent{at: ready[s] + d.Nodes[s].Dur, node: s})
			}
		}
	}
	if executed != n {
		return 0, fmt.Errorf("cross: DAG has a dependency cycle (%d of %d segments unreachable)", n-executed, n)
	}
	return makespan, nil
}
