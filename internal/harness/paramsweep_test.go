package harness

import (
	"strings"
	"testing"
)

// TestMonotonicityNotes: the Param Sweep violation note must name the
// knob that broke monotonicity — the L-loop and dnum-loop track their
// own flags, and the note must not collapse them into one
// undiagnosable string.
func TestMonotonicityNotes(t *testing.T) {
	cases := []struct {
		limbMono, dnumMono bool
		wantSubstr         []string
		wantAbsent         []string
	}{
		{true, true, []string{"grows with both"}, []string{"VIOLATED"}},
		{false, true, []string{"VIOLATED", "limb count L"}, []string{"dnum"}},
		{true, false, []string{"VIOLATED", "digit number dnum"}, []string{"limb count"}},
		{false, false, []string{"VIOLATED", "limb count L", "digit number dnum"}, nil},
	}
	for _, tc := range cases {
		got := monotonicityNotes(tc.limbMono, tc.dnumMono)
		for _, want := range tc.wantSubstr {
			if !strings.Contains(got, want) {
				t.Errorf("monotonicityNotes(%v, %v) = %q: missing %q",
					tc.limbMono, tc.dnumMono, got, want)
			}
		}
		for _, absent := range tc.wantAbsent {
			if strings.Contains(got, absent) {
				t.Errorf("monotonicityNotes(%v, %v) = %q: wrongly names %q",
					tc.limbMono, tc.dnumMono, got, absent)
			}
		}
	}
}

// TestParamSweepHolds: the report itself stays green on the current
// model (both knobs monotone).
func TestParamSweepHolds(t *testing.T) {
	r := ParamSweep()
	if strings.Contains(r.Notes, "VIOLATED") {
		t.Errorf("Param Sweep violated: %s", r.Notes)
	}
}
