package harness

import (
	"strings"
	"testing"
)

func TestAllReportsRenderWithoutViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("full report regeneration is slow")
	}
	reports := AllReports()
	if len(reports) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(reports))
	}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" || r.Body == "" {
			t.Errorf("%s: incomplete report", r.ID)
		}
		if strings.Contains(r.Notes, "VIOLATED") {
			t.Errorf("%s: shape check failed: %s", r.ID, r.Notes)
		}
		if !strings.Contains(r.String(), r.Title) {
			t.Errorf("%s: String() missing title", r.ID)
		}
	}
}

func TestReportByID(t *testing.T) {
	for _, id := range []string{"Table V", "tablev", "Fig 11b", "fig11b", "TABLE X"} {
		if _, ok := ReportByID(id); !ok {
			t.Errorf("ReportByID(%q) not found", id)
		}
	}
	if _, ok := ReportByID("Table Z"); ok {
		t.Error("found nonexistent report")
	}
	ids := IDs()
	if len(ids) != 16 {
		t.Errorf("IDs() returned %d entries", len(ids))
	}
}

func TestReportByIDUnknownHandling(t *testing.T) {
	// Unknown identifiers — including near-misses, empty strings, and
	// normalisation edge cases — must return ok=false and a zero
	// Report, never panic or fuzzy-match.
	for _, id := range []string{"", "table", "Table", "V", "Table VZ", "fig", "  ", "Core", "scaling core"} {
		r, ok := ReportByID(id)
		if ok {
			t.Errorf("ReportByID(%q) unexpectedly found %q", id, r.ID)
			continue
		}
		if r.ID != "" || r.Title != "" || r.Body != "" || r.Notes != "" {
			t.Errorf("ReportByID(%q): non-zero report on miss: %+v", id, r)
		}
	}
	// Normalisation strips spaces and dots but must not ignore other
	// characters.
	if _, ok := ReportByID("Table. V"); !ok {
		t.Error("dot/space normalisation regressed")
	}
	if _, ok := ReportByID("Table-V"); ok {
		t.Error("hyphenated ID should not match")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("a", "bb")
	tb.row("1", "2")
	tb.row("333", "4")
	s := tb.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "333") {
		t.Error("table formatting broken")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(4, 9); g < 5.9 || g > 6.1 {
		t.Errorf("geomean(4,9) = %f", g)
	}
	if g := geomean(0, 0); g != 0 {
		t.Errorf("geomean of zeros = %f", g)
	}
	if g := geomean(5, 0); g != 5 {
		t.Errorf("geomean should skip zeros, got %f", g)
	}
}

func TestIndividualReportsFast(t *testing.T) {
	// The cheap reports run even in -short mode.
	for _, f := range []func() Report{Fig5, TableV, TableVI, Fig12} {
		r := f()
		if strings.Contains(r.Notes, "VIOLATED") {
			t.Errorf("%s: %s", r.ID, r.Notes)
		}
	}
}
