package harness

import (
	"fmt"
	"strconv"
	"strings"

	"cross/internal/cross"
	"cross/internal/sweep"
)

// This file is the cross-hardware face of the harness: the TPU-vs-GPU
// comparison no HE paper reproduction currently tells (ROADMAP item 2).
// Importing sweep also pulls in the gpusim registration, so every
// report in this package sees the full device registry.

// RepresentativeCores maps every registered device to its
// representative scale-out degree (registry metadata: Tab. IV VM sizes
// for TPUs, DGX/HGX node sizes for GPUs). Tables that need "the"
// multi-core configuration of a part read this instead of a hardcoded
// map, so a newly registered device cannot be silently dropped.
func RepresentativeCores() map[string]int {
	out := make(map[string]int)
	for _, info := range cross.RegisteredTargets() {
		out[info.Name] = info.RepCores
	}
	return out
}

// ParseTargetSpec resolves a "NAME" or "NAME-CORES" target string
// ("H100-8", "TPUv6e-16", "A100-80GB", "A100-80GB-4") against the
// device registry. Device names may themselves contain dashes, so only
// a trailing "-<integer>" whose prefix is a registered name counts as
// a core suffix; a bare registered name means one core.
func ParseTargetSpec(s string) (name string, cores int, err error) {
	if i := strings.LastIndex(s, "-"); i > 0 {
		if n, convErr := strconv.Atoi(s[i+1:]); convErr == nil {
			if _, ok := cross.TargetInfoByName(s[:i]); ok {
				if n < 1 {
					return "", 0, fmt.Errorf("harness: target %q needs at least one core", s)
				}
				return s[:i], n, nil
			}
		}
	}
	if _, ok := cross.TargetInfoByName(s); ok {
		return s, 1, nil
	}
	return "", 0, fmt.Errorf("harness: unknown target %q (valid devices: %s; append -N for cores, e.g. H100-8)",
		s, cross.TargetNames())
}

// VersusEntry is one (target, workload) cell of a cross-hardware
// comparison. Field names are the stable JSON schema crossbench
// -versus -json emits.
type VersusEntry struct {
	Target      string             `json:"target"`       // instantiated name ("H100-8")
	Device      string             `json:"device"`       // registered part name
	Family      string             `json:"family"`       // registry family ("tpu", "gpu")
	Cores       int                `json:"cores"`        // instantiated scale
	Workload    string             `json:"workload"`     // sweep workload name
	TotalS      float64            `json:"total_s"`      // serial latency
	OverlappedS float64            `json:"overlapped_s"` // overlap-aware latency
	CollectiveS float64            `json:"collective_s"` // interconnect share of TotalS
	Kernels     cross.KernelCounts `json:"kernel_counts"`
}

// VersusResult is one cross-hardware comparison: every requested
// target priced on every workload under one parameter set, in request
// order (targets outer, workloads inner).
type VersusResult struct {
	Set     string        `json:"set"`
	Targets []string      `json:"targets"`
	Entries []VersusEntry `json:"entries"`
}

// Versus prices the named targets ("TPUv6e-16", "H100-8") against each
// other on every sweep workload under one parameter set — the engine
// behind crossbench -versus.
func Versus(targets []string, set string) (*VersusResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("harness: versus needs at least one target")
	}
	p, err := cross.NamedSet(set)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	res := &VersusResult{Set: set, Targets: append([]string(nil), targets...)}
	cache := cross.NewScheduleCache()
	for _, spec := range targets {
		name, cores, err := ParseTargetSpec(spec)
		if err != nil {
			return nil, err
		}
		info, _ := cross.TargetInfoByName(name)
		for _, wl := range sweep.DefaultWorkloads {
			// Targets are stateful trace accumulators: one fresh target
			// per cell, one shared schedule cache across all of them.
			tgt, err := cross.TargetByName(name, cores)
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			comp, err := cross.Compile(tgt, p)
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			prog, err := sweep.BuildProgram(comp, wl)
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			s := prog.WithCache(cache).Lower()
			res.Entries = append(res.Entries, VersusEntry{
				Target:      tgt.Name(),
				Device:      name,
				Family:      info.Family,
				Cores:       cores,
				Workload:    wl,
				TotalS:      s.Total,
				OverlappedS: s.Overlapped,
				CollectiveS: s.Collective,
				Kernels:     s.Kernels,
			})
		}
	}
	return res, nil
}

// Report renders the comparison as an aligned table: workloads down,
// targets across, serial and overlapped columns per target, with the
// fastest serial target per workload marked.
func (v *VersusResult) Report() Report {
	byWl := make(map[string][]VersusEntry)
	var names []string
	for _, e := range v.Entries {
		byWl[e.Workload] = append(byWl[e.Workload], e)
	}
	seen := make(map[string]bool)
	for _, e := range v.Entries {
		if !seen[e.Target] {
			seen[e.Target] = true
			names = append(names, e.Target)
		}
	}

	cols := []string{"workload"}
	for _, n := range names {
		cols = append(cols, n+" ms", n+" ovl ms", n+" coll ms")
	}
	cols = append(cols, "fastest")
	t := newTable(cols...)

	for _, wl := range sweep.DefaultWorkloads {
		entries := byWl[wl]
		if len(entries) == 0 {
			continue
		}
		row := []string{wl}
		best, bestT := "", 0.0
		for _, e := range entries {
			row = append(row,
				fmt.Sprintf("%.3f", e.TotalS*1e3),
				fmt.Sprintf("%.3f", e.OverlappedS*1e3),
				fmt.Sprintf("%.3f", e.CollectiveS*1e3))
			if best == "" || e.TotalS < bestT {
				best, bestT = e.Target, e.TotalS
			}
		}
		row = append(row, best)
		t.row(row...)
	}
	return Report{
		ID:    "Cross-Hardware",
		Title: fmt.Sprintf("Cross-hardware comparison, Set %s (%s)", v.Set, strings.Join(v.Targets, " vs ")),
		Body:  t.String(),
		Notes: "serial and overlap-aware latencies per workload; collective column is ICI time on TPU pods, NVLink time on GPU nodes",
	}
}

// CrossHardware is the registry-wide comparison report (AllReports
// member): every registered device at its representative core count,
// priced on every workload under Set B.
func CrossHardware() Report {
	var targets []string
	for _, info := range cross.RegisteredTargets() {
		targets = append(targets, fmt.Sprintf("%s-%d", info.Name, info.RepCores))
	}
	v, err := Versus(targets, "B")
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	r := v.Report()
	r.Title = "Cross-hardware comparison, Set B (every registered device at representative scale)"
	return r
}
