package harness

import (
	"fmt"

	"cross/internal/cross"
	"cross/internal/tpusim"
)

// scalingCores is the pod-size axis of the core-count sweep.
var scalingCores = []int{1, 2, 4, 8}

// CoreScaling is the pod-scale scaling sweep (beyond-paper: the §VI
// "multi-chip" direction the paper leaves as future work). For every
// parameter set it lowers HE-Mult and a 64-limb NTT batch onto
// 1/2/4/8-core pods of one generation and reports speedup over the
// single-core lowering — the TPU analogue of mgpusim's work-group ×
// compute-unit sweeps.
func CoreScaling() Report {
	return coreScalingOn(tpusim.TPUv6e())
}

// CoreScalingOn runs the sweep on a caller-chosen generation
// (cmd/crossbench's -scaling -device path).
func CoreScalingOn(spec tpusim.Spec) Report { return coreScalingOn(spec) }

func coreScalingOn(spec tpusim.Spec) Report {
	t := newTable("Set", "Cores", "HE-Mult µs", "Speedup", "Overlap µs", "Hidden %", "NTT×64 µs", "NTT Speedup", "ICI µs")

	ok := true
	for _, name := range []string{"A", "B", "C", "D"} {
		p, err := cross.NamedSet(name)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		var multBase, nttBase float64
		for _, cores := range scalingCores {
			pod, err := tpusim.NewPod(spec, cores)
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			// One Compile call covers every pod size: the pod is just
			// another Target, and the Schedule carries the collective
			// share as first-class metadata.
			sc, err := cross.Compile(pod, p)
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			ms := sc.LowerHEMult()
			mult, ici := ms.Total, ms.Collective
			ntt := sc.LowerNTT(64).Total
			if cores == 1 {
				multBase, nttBase = mult, ntt
			}
			// Acceptance bar: multi-core sharded latency strictly below
			// the single-core lowering on the large sets, and the
			// overlap-aware makespan never above the serial model.
			if cores > 1 && (name == "C" || name == "D") && mult >= multBase {
				ok = false
			}
			if cores > 1 && ntt >= nttBase {
				ok = false
			}
			if ms.OverlappedTotal() > ms.SerialTotal() {
				ok = false
			}
			t.row("Set "+name, fmt.Sprint(cores), us(mult),
				fmt.Sprintf("%.2f×", multBase/mult),
				us(ms.OverlappedTotal()),
				fmt.Sprintf("%.1f%%", 100*ms.OverlapFraction()),
				us(ntt), fmt.Sprintf("%.2f×", nttBase/ntt),
				us(ici))
		}
	}

	notes := "multi-core pods beat the single-core lowering on the large sets, the limb-parallel NTT batch scales near-linearly, and collective (ICI) time grows with the core count — small sets hit their scaling knee early because the per-hop latency term grows while the digit-level win saturates; the overlap column (DAG makespan, DESIGN.md §13) shows how much of that ICI time hides behind compute until the ICI-bound knee"
	if !ok {
		notes = "VIOLATED: sharded lowering not faster than single-core on large kernels, or overlapped makespan above serial"
	}
	return Report{
		ID:    "Core Scaling",
		Title: fmt.Sprintf("Pod core-count scaling sweep (%s, beyond-paper §VI direction)", spec.Name),
		Body:  t.String(),
		Notes: notes,
	}
}
