package harness

import (
	"fmt"

	"cross/internal/cross"
)

// scalingCores is the pod-size axis of the core-count sweep.
var scalingCores = []int{1, 2, 4, 8}

// CoreScaling is the pod-scale scaling sweep (beyond-paper: the §VI
// "multi-chip" direction the paper leaves as future work). For every
// parameter set it lowers HE-Mult and a 64-limb NTT batch onto
// 1/2/4/8-core targets of one device and reports speedup over the
// single-core lowering — the TPU analogue of mgpusim's work-group ×
// compute-unit sweeps.
func CoreScaling() Report {
	r, err := CoreScalingOn("TPUv6e")
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return r
}

// CoreScalingOn runs the sweep on a caller-chosen registered device
// (cmd/crossbench's -scaling -device path) — any registry name, TPU
// or GPU.
func CoreScalingOn(name string) (Report, error) {
	if _, ok := cross.TargetInfoByName(name); !ok {
		return Report{}, fmt.Errorf("harness: unknown device %q (valid: %s)", name, cross.TargetNames())
	}
	return coreScalingOn(name), nil
}

func coreScalingOn(device string) Report {
	t := newTable("Set", "Cores", "HE-Mult µs", "Speedup", "Overlap µs", "Hidden %", "NTT×64 µs", "NTT Speedup", "Coll µs")

	ok := true
	for _, name := range []string{"A", "B", "C", "D"} {
		p, err := cross.NamedSet(name)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		var multBase, nttBase float64
		for _, cores := range scalingCores {
			tgt, err := cross.TargetByName(device, cores)
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			// One Compile call covers every target size: a pod or GPU
			// node is just another Target, and the Schedule carries the
			// collective share as first-class metadata.
			sc, err := cross.Compile(tgt, p)
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			ms := sc.LowerHEMult()
			mult, ici := ms.Total, ms.Collective
			ntt := sc.LowerNTT(64).Total
			if cores == 1 {
				multBase, nttBase = mult, ntt
			}
			// Acceptance bar: multi-core sharded latency strictly below
			// the single-core lowering on the large sets, and the
			// overlap-aware makespan never above the serial model.
			if cores > 1 && (name == "C" || name == "D") && mult >= multBase {
				ok = false
			}
			if cores > 1 && ntt >= nttBase {
				ok = false
			}
			if ms.OverlappedTotal() > ms.SerialTotal() {
				ok = false
			}
			t.row("Set "+name, fmt.Sprint(cores), us(mult),
				fmt.Sprintf("%.2f×", multBase/mult),
				us(ms.OverlappedTotal()),
				fmt.Sprintf("%.1f%%", 100*ms.OverlapFraction()),
				us(ntt), fmt.Sprintf("%.2f×", nttBase/ntt),
				us(ici))
		}
	}

	notes := "multi-core targets beat the single-core lowering on the large sets, the limb-parallel NTT batch scales near-linearly, and collective (ICI/NVLink) time grows with the core count — small sets hit their scaling knee early because the per-hop latency term grows while the digit-level win saturates; the overlap column (DAG makespan, DESIGN.md §13) shows how much of that collective time hides behind compute until the interconnect-bound knee"
	if !ok {
		notes = "VIOLATED: sharded lowering not faster than single-core on large kernels, or overlapped makespan above serial"
	}
	return Report{
		ID:    "Core Scaling",
		Title: fmt.Sprintf("Core-count scaling sweep (%s, beyond-paper §VI direction)", device),
		Body:  t.String(),
		Notes: notes,
	}
}
