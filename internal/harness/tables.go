package harness

import (
	"fmt"

	"cross/internal/cross"
	"cross/internal/refdata"
	"cross/internal/tpusim"
)

// paperTableV holds the published baseline/BAT latencies (µs) and
// speedups of Tab. V for side-by-side display.
var paperTableV = []struct {
	H, V, W        int
	Base, BAT, Spd float64
}{
	{512, 256, 256, 6.00, 4.57, 1.31},
	{1024, 256, 256, 9.40, 6.88, 1.37},
	{2048, 256, 256, 15.43, 11.06, 1.39},
	{4096, 256, 256, 29.09, 20.14, 1.44},
	{1024, 512, 512, 20.58, 16.32, 1.26},
	{2048, 512, 512, 38.49, 28.48, 1.35},
	{1024, 1024, 1024, 59.13, 40.69, 1.45},
	{2048, 1024, 1024, 113.91, 81.71, 1.39},
	{2048, 2048, 2048, 365.28, 224.80, 1.62},
}

// TableV regenerates Tab. V: BAT vs the sparse GPU baseline on
// M_{H×V} @ M_{V×W} mod q, one TPUv6e tensor core.
func TableV() Report {
	c := newCompiler(tpusim.TPUv6e(), cross.SetD())
	t := newTable("H", "V", "W", "baseline µs", "BAT µs", "speedup", "paper speedup")
	allWin := true
	for _, row := range paperTableV {
		base := c.LowerOp("ModMatMul-baseline", func() float64 { return c.CostMatModMulBaseline(row.H, row.V, row.W) }).Total
		bat := c.LowerOp("ModMatMul-BAT", func() float64 { return c.CostMatModMulBAT(row.H, row.V, row.W) }).Total
		if bat >= base {
			allWin = false
		}
		t.row(fmt.Sprint(row.H), fmt.Sprint(row.V), fmt.Sprint(row.W),
			us(base), us(bat), fmt.Sprintf("%.2f×", base/bat), fmt.Sprintf("%.2f×", row.Spd))
	}
	notes := "BAT must win every size by ~1.2–2× (paper: 1.26–1.62×)"
	if !allWin {
		notes = "VIOLATED: baseline beat BAT on some size"
	}
	return Report{ID: "Table V", Title: "BAT vs baseline ModMatMul (TPUv6e, 1 TC)", Body: t.String(), Notes: notes}
}

// paperTableVI holds Tab. VI's published values (µs).
var paperTableVI = []struct {
	L, LOut        int
	Base, BAT, Spd float64
}{
	{12, 28, 815.28, 135.91, 6.00},
	{12, 36, 1054.89, 147.28, 7.16},
	{16, 40, 165.18, 65.77, 2.51},
	{24, 56, 318.92, 94.67, 3.37},
}

// TableVI regenerates Tab. VI: BConv step 2 with and without BAT at
// N = 2^16.
func TableVI() Report {
	c := newCompiler(tpusim.TPUv6e(), cross.SetD())
	n := 1 << 16
	t := newTable("limbs l", "limbs l'", "baseline µs", "BAT µs", "speedup", "paper speedup")
	ok := true
	for _, row := range paperTableVI {
		base := c.LowerBConv(n, row.L, row.LOut, false).Total
		bat := c.LowerBConv(n, row.L, row.LOut, true).Total
		if bat >= base {
			ok = false
		}
		t.row(fmt.Sprint(row.L), fmt.Sprint(row.LOut),
			us(base), us(bat), fmt.Sprintf("%.2f×", base/bat), fmt.Sprintf("%.2f×", row.Spd))
	}
	notes := "BAT wins every configuration; larger limb counts gain more MXU utilization (paper: ≤7.16×)"
	if !ok {
		notes = "VIOLATED: VPU baseline beat BAT"
	}
	return Report{ID: "Table VI", Title: "BConv with vs without BAT (TPUv6e, 1 TC)", Body: t.String(), Notes: notes}
}

// TableVII regenerates Tab. VII / Fig. 11a: NTT throughput per TPU
// generation against the published GPU rows, using each setup's
// representative core count from the device registry (the Tab. IV VM
// sizes — 8, 4, 8, 8 — so the table cannot drift from the registry as
// backends are added).
func TableVII() Report {
	coreCount := RepresentativeCores()
	sets := []cross.Params{cross.SetA(), cross.SetB(), cross.SetC()}
	t := newTable("platform", "N=2^12 kNTT/s", "N=2^13", "N=2^14", "paper (2^12/13/14)")
	for _, b := range refdata.NTTBaselines() {
		t.row(b.Name+" ("+b.Platform+")",
			fmt.Sprintf("%.0f", b.KNTTs[0]), fmt.Sprintf("%.0f", b.KNTTs[1]), fmt.Sprintf("%.0f", b.KNTTs[2]),
			"(published)")
	}
	monotone := true
	var prev [3]float64
	for _, spec := range tpusim.AllSpecs() {
		var thr [3]float64
		for i, set := range sets {
			c := newCompiler(spec, set)
			_, best := c.BestNTTBatch(128)
			thr[i] = best * float64(coreCount[spec.Name]) / 1e3
			if thr[i] <= prev[i] && prev[i] > 0 {
				monotone = false
			}
		}
		paper := refdata.PaperNTTTPU[spec.Name]
		t.row(fmt.Sprintf("%s-%d (sim)", spec.Name, coreCount[spec.Name]),
			fmt.Sprintf("%.0f", thr[0]), fmt.Sprintf("%.0f", thr[1]), fmt.Sprintf("%.0f", thr[2]),
			fmt.Sprintf("%.0f / %.0f / %.0f", paper[0], paper[1], paper[2]))
		prev = thr
	}
	notes := "throughput falls with degree (O(N√N)); every newer generation is faster"
	if !monotone {
		notes = "VIOLATED: generation ordering broken"
	}
	return Report{ID: "Table VII", Title: "NTT throughput (kNTT/s) across TPU generations", Body: t.String(), Notes: notes}
}

// paperTableX holds Tab. X's published values (µs, batch 128, TPUv4).
var paperTableX = []struct {
	LogN, R, C     int
	Radix2, MATNTT float64
}{
	{12, 128, 64, 2420, 91.8},
	{13, 128, 64, 4999, 165.4},
	{14, 128, 128, 10530, 355.5},
	{15, 256, 128, 22228, 812.3},
	{16, 256, 128, 46996, 1844.8},
}

// TableX regenerates Tab. X: radix-2 Cooley–Tukey vs MAT NTT on TPUv4,
// batch 128.
func TableX() Report {
	t := newTable("N", "radix-2 µs", "MAT µs", "speedup", "paper speedup")
	ok := true
	for _, row := range paperTableX {
		// Paper's split for this table; R·C may be N/2·2 off for odd
		// logN, so derive C from N and the listed R.
		n := 1 << row.LogN
		p := cross.SetA()
		p.LogN = row.LogN
		p.R = row.R
		p.C = n / row.R
		c := newCompiler(tpusim.TPUv4(), p)
		radix2 := c.LowerOp("NTT-radix2", func() float64 { return c.CostNTTRadix2(128) }).Total
		mat := c.LowerNTT(128).Total
		if radix2/mat < 5 {
			ok = false
		}
		paperSpd := row.Radix2 / row.MATNTT
		t.row(fmt.Sprintf("2^%d", row.LogN), us(radix2), us(mat),
			fmt.Sprintf("%.1f×", radix2/mat), fmt.Sprintf("%.1f×", paperSpd))
	}
	notes := "MAT beats radix-2 by an order of magnitude despite O(N√N) > O(N log N) — the shuffles dominate (paper: 25–30×)"
	if !ok {
		notes = "VIOLATED: radix-2 competitive with MAT on TPU"
	}
	return Report{ID: "Table X", Title: "Radix-2 CT NTT vs MAT NTT (TPUv4, batch 128)", Body: t.String(), Notes: notes}
}
