package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cross/internal/ckks"
	"cross/internal/cross"
	"cross/internal/modarith"
	"cross/internal/refdata"
	"cross/internal/ring"
	"cross/internal/tpusim"
)

// Fig5 renders the device-efficiency landscape (TOPs/W).
func Fig5() Report {
	t := newTable("device", "class", "power W", "INT8 TOPs", "TOPs/W")
	pts := refdata.DeviceLandscape()
	var bestGPU, bestASIC float64
	for _, p := range pts {
		eff := p.INT8TOPs / p.PowerW
		switch p.Class {
		case "GPU":
			if eff > bestGPU {
				bestGPU = eff
			}
		case "AI ASIC":
			if eff > bestASIC {
				bestASIC = eff
			}
		}
		t.row(p.Name, p.Class, fmt.Sprintf("%.0f", p.PowerW),
			fmt.Sprintf("%.0f", p.INT8TOPs), fmt.Sprintf("%.2f", eff))
	}
	notes := fmt.Sprintf("AI ASIC frontier %.2f TOPs/W vs best GPU %.2f — ASICs on the efficient frontier (Fig. 5 takeaway)", bestASIC, bestGPU)
	if bestASIC <= bestGPU*0.8 {
		notes = "VIOLATED: AI ASICs fell off the efficiency frontier"
	}
	return Report{ID: "Fig 5", Title: "Device energy-efficiency landscape", Body: t.String(), Notes: notes}
}

// paperFig11b quotes the batch-sweep takeaway: optimal batch per set on
// one v6e tensor core and the throughput gain over batch 1.
var paperFig11b = map[string]struct {
	Batch int
	Gain  float64
}{
	"A": {32, 7.7}, "B": {16, 2.9}, "C": {16, 1.5}, "D": {8, 1.4},
}

// Fig11b regenerates the batch-size sweep on one TPUv6e tensor core.
func Fig11b() Report {
	t := newTable("set", "batch sweep (normalised NTT/s)", "best batch", "gain", "paper best/gain")
	orderOK := true
	var prevBest = 1 << 20
	for _, name := range []string{"A", "B", "C", "D"} {
		p, err := cross.NamedSet(name)
		if err != nil {
			panic(err)
		}
		c := newCompiler(tpusim.TPUv6e(), p)
		base := c.NTTThroughput(1)
		var sweep string
		best, bestThr := 1, base
		for b := 1; b <= 128; b <<= 1 {
			thr := c.NTTThroughput(b)
			sweep += fmt.Sprintf("%.1f ", thr/base)
			if thr > bestThr {
				best, bestThr = b, thr
			}
		}
		if best > prevBest {
			orderOK = false
		}
		prevBest = best
		pp := paperFig11b[name]
		t.row("Set "+name, sweep, fmt.Sprint(best),
			fmt.Sprintf("%.1f×", bestThr/base),
			fmt.Sprintf("%d / %.1f×", pp.Batch, pp.Gain))
	}
	notes := "batching improves throughput until the working set spills on-chip memory; higher degrees peak at smaller batches (paper: 32/16/16/8)"
	if !orderOK {
		notes = "VIOLATED: optimal batch not non-increasing with degree"
	}
	return Report{ID: "Fig 11b", Title: "NTT throughput vs batch size (TPUv6e, 1 TC)", Body: t.String(), Notes: notes}
}

// Fig13a regenerates the VecModMul modular-reduction ablation on one
// TPUv6e tensor core under Set D (ciphertext = 2 polys × L limbs).
func Fig13a() Report {
	p := cross.SetD()
	elems := 2 * p.L * p.N()
	t := newTable("batch", "Barrett µs", "Montgomery µs", "Shoup µs", "BAT-lazy µs")
	algs := []modarith.ReduceAlgorithm{modarith.Barrett, modarith.Montgomery, modarith.Shoup, modarith.BATLazy}
	montBest := true
	for b := 1; b <= 64; b <<= 1 {
		var lat [4]float64
		for i, alg := range algs {
			pp := p
			pp.Red = alg
			c := newCompiler(tpusim.TPUv6e(), pp)
			lat[i] = c.LowerOp("VecModMul", func() float64 { return c.CostVecModMul(elems * b) }).Total
		}
		if !(lat[1] < lat[0] && lat[0] < lat[2] && lat[1] < lat[3]) {
			montBest = false
		}
		t.row(fmt.Sprint(b), us(lat[0]), us(lat[1]), us(lat[2]), us(lat[3]))
	}
	notes := "Montgomery < Barrett < Shoup on the VPU; BAT-lazy loses to the K=4 MXU starvation (paper Fig. 13a: Montgomery optimal, 1.42× over Barrett)"
	if !montBest {
		notes = "VIOLATED: Montgomery not optimal"
	}
	return Report{ID: "Fig 13a", Title: "VecModMul vs modular-reduction algorithm (Set D)", Body: t.String(), Notes: notes}
}

// Fig13b regenerates the NTT modular-reduction ablation.
func Fig13b() Report {
	p := cross.SetD()
	t := newTable("batch", "Barrett µs", "Montgomery µs", "Shoup µs", "BAT-lazy µs")
	algs := []modarith.ReduceAlgorithm{modarith.Barrett, modarith.Montgomery, modarith.Shoup, modarith.BATLazy}
	montBest := true
	for b := 1; b <= 128; b <<= 1 {
		var lat [4]float64
		for i, alg := range algs {
			c := newCompiler(tpusim.TPUv6e(), p)
			lat[i] = c.LowerOp("NTT-ablation", func() float64 { return c.CostNTTMatWithRed(b, alg) }).Total
		}
		if b > 1 && !(lat[1] <= lat[0] && lat[0] <= lat[2]) {
			montBest = false
		}
		t.row(fmt.Sprint(b), us(lat[0]), us(lat[1]), us(lat[2]), us(lat[3]))
	}
	notes := "Montgomery optimal for the NTT too; the single-batch point is memory-bound and masks the gap (paper Fig. 13b)"
	if !montBest {
		notes = "VIOLATED: NTT reduction ordering broken"
	}
	return Report{ID: "Fig 13b", Title: "NTT vs modular-reduction algorithm (Set D)", Body: t.String(), Notes: notes}
}

// Fig14 reproduces the CPU-side kernel breakdown of HE operators: the
// functional CKKS evaluator runs on this host, per-kernel wall times
// are measured in isolation, and the operator mix is weighted by the
// evaluator's true kernel counters (the OpenFHE profiling methodology
// of §F).
func Fig14() Report {
	p := ckks.MustParameters(12, 28, 8, 4)
	kg := ckks.NewKeyGenerator(p, 3)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	gk, err := kg.GenGaloisKey(sk, p.RingQP.GaloisElementForRotation(1))
	if err != nil {
		panic(err)
	}
	ev := ckks.NewEvaluator(p, rlk, map[uint64]*ckks.GaloisKey{gk.GaloisEl: gk})
	enc := ckks.NewEncoder(p)
	ctr := ckks.NewEncryptor(p, pk, 5)

	vals := make([]complex128, p.Slots())
	rng := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = complex(rng.Float64(), rng.Float64())
	}
	pt, err := enc.Encode(vals)
	if err != nil {
		panic(err)
	}
	ct := ctr.Encrypt(pt)

	// Per-kernel unit times on this host.
	unit := measureUnitTimes(p)

	var body string
	for _, op := range []struct {
		name string
		run  func() error
	}{
		{"(CKKS) Mult. & Relin.", func() error { _, e := ev.MulRelin(ct, ct); return e }},
		{"(CKKS) Rotation", func() error { _, e := ev.Rotate(ct, 1); return e }},
		{"(CKKS) Rescale", func() error { _, e := ev.Rescale(ct); return e }},
	} {
		ev.ResetCounters()
		if err := op.run(); err != nil {
			panic(err)
		}
		kc := ev.Kc
		cats := map[string]float64{
			"NTT":       float64(kc.NTTLimbs) * unit.nttLimb,
			"INTT":      float64(kc.INTTLimbs) * unit.nttLimb,
			"BasisConv": float64(kc.BConvCalls) * unit.bconv,
			"VecModMul": float64(kc.VecMulN) * unit.vecMul,
			"VecModAdd": float64(kc.VecAddN) * unit.vecAdd,
			"Automorph": float64(kc.Automorph) * unit.autoLimb,
		}
		var total float64
		for _, v := range cats {
			total += v
		}
		body += op.name + ":\n"
		type kv struct {
			k string
			v float64
		}
		var list []kv
		for k, v := range cats {
			list = append(list, kv{k, v})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
		for _, e := range list {
			if e.v == 0 {
				continue
			}
			body += fmt.Sprintf("  %-10s %5.1f%%\n", e.k, 100*e.v/total)
		}
	}
	return Report{
		ID: "Fig 14", Title: "CPU kernel breakdown of HE operators (host wall clock)",
		Body:  body,
		Notes: "NTT+INTT and VecModMul dominate, as in the paper's OpenFHE profile (45–86% transform share)",
	}
}

type unitTimes struct {
	nttLimb, bconv, vecMul, vecAdd, autoLimb float64
}

// measureUnitTimes times the primitive kernels on the host.
func measureUnitTimes(p *ckks.Parameters) unitTimes {
	rq := p.RingQP
	n := p.N()
	smp := ring.NewSampler(1)
	poly := rq.NewPoly()
	smp.Uniform(rq, poly)

	timeIt := func(iters int, f func()) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start).Seconds() / float64(iters)
	}

	var u unitTimes
	u.nttLimb = timeIt(64, func() { rq.NTTLimb(0, poly.Coeffs[0]) })
	m := rq.Moduli[0]
	a := poly.Coeffs[0]
	b := poly.Coeffs[1%len(poly.Coeffs)]
	dst := make([]uint64, n)
	u.vecMul = timeIt(64, func() { m.VecMulMod(dst, a, b, modarith.Barrett) })
	u.vecAdd = timeIt(64, func() { m.VecAddMod(dst, a, b) })
	idx, err := rq.AutomorphismNTTIndex(3)
	if err != nil {
		panic(err)
	}
	out := ring.NewPoly(1, n)
	in := ring.NewPoly(1, n)
	copy(in.Coeffs[0], a)
	u.autoLimb = timeIt(64, func() { rq.AutomorphismNTT(in, out, idx) })
	// One BConv ≈ alpha limbs of step-1 mults plus the (N, α, L) inner
	// products; approximate with measured vector ops.
	u.bconv = float64(p.Alpha)*u.vecMul + float64(p.L)*float64(p.Alpha)*u.vecMul/4
	return u
}
