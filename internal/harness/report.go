// Package harness regenerates every table and figure of the paper's
// evaluation section (§V) from the reproduction's simulator and
// functional kernels, rendering paper-reported values side by side with
// measured ones. cmd/crossbench is a thin CLI over this package, and
// EXPERIMENTS.md is generated from its output.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cross/internal/cross"
	"cross/internal/tpusim"
)

// Report is one regenerated experiment.
type Report struct {
	ID    string // e.g. "Table V"
	Title string
	Body  string // preformatted rows
	Notes string // fidelity commentary (what should and does hold)
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	b.WriteString(r.Body)
	if r.Notes != "" {
		b.WriteString("shape check: " + r.Notes + "\n")
	}
	return b.String()
}

// table accumulates aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range widths {
		widths[i] = w
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func us(seconds float64) string { return fmt.Sprintf("%.2f", seconds*1e6) }

func geomean(vals ...float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// newCompiler builds a single-core compiler or panics
// (harness-internal misuse).
func newCompiler(spec tpusim.Spec, p cross.Params) *cross.Compiler {
	c, err := cross.Compile(tpusim.NewDevice(spec), p)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return c
}

// bestSplit sweeps the paper's (R,C) candidates and returns the
// compiler whose HE-Mult schedule is fastest (§V-A: "we sweep three
// (R,C) configurations and report results using the best-performing
// one").
func bestSplit(spec tpusim.Spec, p cross.Params) *cross.Compiler {
	best := newCompiler(spec, p)
	bestT := best.LowerHEMult().Total
	for _, rc := range p.SplitCandidates() {
		cand, err := cross.Compile(tpusim.NewDevice(spec), p.WithSplit(rc[0], rc[1]))
		if err != nil {
			continue
		}
		if t := cand.LowerHEMult().Total; t < bestT {
			best, bestT = cand, t
		}
	}
	return best
}

// AllReports regenerates the full evaluation section in paper order.
func AllReports() []Report {
	return []Report{
		Fig5(),
		TableV(),
		TableVI(),
		TableVII(),
		Fig11b(),
		TableVIII(),
		Fig12(),
		TableIX(),
		Fig13a(),
		Fig13b(),
		TableX(),
		Fig14(),
		Workloads(),
		ParamSweep(),
		CoreScaling(),
		CrossHardware(),
	}
}

// ReportByID finds one experiment by its identifier (case-insensitive,
// e.g. "tableV", "fig11b").
func ReportByID(id string) (Report, bool) {
	norm := func(s string) string {
		s = strings.ToLower(s)
		s = strings.ReplaceAll(s, " ", "")
		s = strings.ReplaceAll(s, ".", "")
		return s
	}
	want := norm(id)
	for _, r := range AllReports() {
		if norm(r.ID) == want {
			return r, true
		}
	}
	return Report{}, false
}

// IDs lists the available experiment identifiers.
func IDs() []string {
	var out []string
	for _, r := range AllReports() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}
