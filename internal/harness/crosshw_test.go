package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"cross/internal/cross"
	"cross/internal/sweep"
)

// TestRepresentativeCoresCoversRegistry is the anti-drift guard that
// replaced TableVII's hardcoded core-count map: every registered
// device must carry a usable representative core count, and the TPU
// entries must still be the Tab. IV VM sizes.
func TestRepresentativeCoresCoversRegistry(t *testing.T) {
	cores := RepresentativeCores()
	infos := cross.RegisteredTargets()
	if len(cores) != len(infos) {
		t.Fatalf("RepresentativeCores has %d entries, registry has %d", len(cores), len(infos))
	}
	for _, info := range infos {
		n, ok := cores[info.Name]
		if !ok {
			t.Errorf("%s: no representative core count", info.Name)
			continue
		}
		if n < 1 {
			t.Errorf("%s: representative core count %d < 1", info.Name, n)
		}
		if _, err := cross.TargetByName(info.Name, n); err != nil {
			t.Errorf("%s at %d cores: %v", info.Name, n, err)
		}
	}
	for name, want := range map[string]int{"TPUv4": 8, "TPUv5e": 4, "TPUv5p": 8, "TPUv6e": 8} {
		if got := cores[name]; got != want {
			t.Errorf("%s: representative cores = %d, want Tab. IV's %d", name, got, want)
		}
	}
}

func TestParseTargetSpec(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		cores int
	}{
		{"TPUv6e-16", "TPUv6e", 16},
		{"H100-8", "H100", 8},
		{"A100-80GB", "A100-80GB", 1}, // dash in the part name is not a core suffix
		{"A100-80GB-4", "A100-80GB", 4},
		{"TPUv4", "TPUv4", 1},
	}
	for _, c := range cases {
		name, cores, err := ParseTargetSpec(c.in)
		if err != nil {
			t.Errorf("ParseTargetSpec(%q): %v", c.in, err)
			continue
		}
		if name != c.name || cores != c.cores {
			t.Errorf("ParseTargetSpec(%q) = (%q, %d), want (%q, %d)", c.in, name, cores, c.name, c.cores)
		}
	}
	for _, bad := range []string{"", "Hopper", "H100-0", "H100--2", "TPUv6e-"} {
		if _, _, err := ParseTargetSpec(bad); err == nil {
			t.Errorf("ParseTargetSpec(%q): expected error", bad)
		}
	}
	if _, _, err := ParseTargetSpec("Hopper"); err == nil || !strings.Contains(err.Error(), cross.TargetNames()) {
		t.Errorf("unknown-target error should list valid devices, got %v", err)
	}
}

// TestVersusSchema pins the -versus engine: entry order (targets
// outer, workloads inner), the stable JSON field names, and agreement
// with a direct registry-built lowering.
func TestVersusSchema(t *testing.T) {
	v, err := Versus([]string{"TPUv6e-16", "H100-8"}, "D")
	if err != nil {
		t.Fatal(err)
	}
	wls := sweep.DefaultWorkloads
	if want := 2 * len(wls); len(v.Entries) != want {
		t.Fatalf("got %d entries, want %d", len(v.Entries), want)
	}
	for i, e := range v.Entries {
		wantTarget := "TPUv6e-16"
		if i >= len(wls) {
			wantTarget = "H100-8"
		}
		if e.Target != wantTarget || e.Workload != wls[i%len(wls)] {
			t.Errorf("entry %d: (%s, %s), want (%s, %s)", i, e.Target, e.Workload, wantTarget, wls[i%len(wls)])
		}
		if e.TotalS <= 0 || e.OverlappedS <= 0 || e.OverlappedS > e.TotalS {
			t.Errorf("entry %d: implausible latencies total=%g overlapped=%g", i, e.TotalS, e.OverlappedS)
		}
		if e.CollectiveS <= 0 { // both targets are multi-core
			t.Errorf("entry %d: collective share %g, want > 0", i, e.CollectiveS)
		}
	}
	if v.Entries[0].Family != "tpu" || v.Entries[len(wls)].Family != "gpu" {
		t.Error("family metadata wrong")
	}

	raw, err := json.Marshal(v.Entries[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"target"`, `"device"`, `"family"`, `"cores"`, `"workload"`, `"total_s"`, `"overlapped_s"`, `"collective_s"`, `"kernel_counts"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON schema missing %s in %s", key, raw)
		}
	}

	// Cross-check one cell against a direct lowering.
	tgt, err := cross.TargetByName("H100", 8)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cross.Compile(tgt, cross.SetD())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sweep.BuildProgram(comp, "HE-Mult")
	if err != nil {
		t.Fatal(err)
	}
	if want := prog.Lower().Total; v.Entries[len(wls)].TotalS != want {
		t.Errorf("H100-8 HE-Mult: versus %g != direct %g", v.Entries[len(wls)].TotalS, want)
	}

	r := v.Report()
	for _, want := range []string{"TPUv6e-16", "H100-8", "fastest", "HE-Mult"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("report body missing %q", want)
		}
	}
}

func TestVersusRejectsBadInput(t *testing.T) {
	if _, err := Versus(nil, "D"); err == nil {
		t.Error("empty target list accepted")
	}
	if _, err := Versus([]string{"TPUv6e-16"}, "Z"); err == nil {
		t.Error("unknown set accepted")
	}
	if _, err := Versus([]string{"Hopper-8"}, "D"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestCoreScalingOnGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("full scaling sweep is slow")
	}
	r, err := CoreScalingOn("H100")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Notes, "VIOLATED") {
		t.Errorf("H100 scaling shape check failed: %s", r.Notes)
	}
	if _, err := CoreScalingOn("Hopper"); err == nil {
		t.Error("unknown device accepted")
	}
}
