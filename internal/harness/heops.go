package harness

import (
	"fmt"

	"cross/internal/cross"
	"cross/internal/refdata"
	"cross/internal/tpusim"
	"cross/internal/workload"
)

// TableVIII regenerates the HE-operator comparison: CROSS on a
// power-matched TPUv6e configuration against each published baseline
// (§V-A methodology — amortised single-batch latency with the baseline's
// security configuration, cores scaled to the baseline's power).
func TableVIII() Report {
	t := newTable("library", "config", "Add µs", "Mult µs", "Rescale µs", "Rotate µs", "eff. gain", "paper gain")
	okAll := true
	for _, b := range refdata.HEBaselines() {
		t.row(b.Name+" ["+b.Platform+"]", b.Config,
			fmt.Sprintf("%.0f", b.Add), fmt.Sprintf("%.0f", b.Mult),
			naIfZero(b.Rescale), fmt.Sprintf("%.0f", b.Rotate), "(published)", "")

		p := cross.SetD()
		p.LogN = b.CrossLogN
		p.L = b.CrossL
		p.Dnum = b.CrossDnum
		r, cc := 128, p.N()/128
		p.R, p.C = r, cc
		c := bestSplit(tpusim.TPUv6e(), p)
		ops := c.MeasureHEOps()
		cores := float64(b.MatchedCores)
		add, mult, resc, rot := ops.Add/cores, ops.Mult/cores, ops.Rescale/cores, ops.Rotate/cores

		// Energy efficiency per the paper: average of HE-Mult and
		// Rotate at equal power ⇒ latency ratio.
		gain := geomean(b.Mult/(mult*1e6), b.Rotate/(rot*1e6))
		paperGain := refdata.PaperEfficiencyRatios[b.Name]
		paperCell := ""
		if paperGain > 0 {
			paperCell = fmt.Sprintf("%.2f×", paperGain)
			if (gain > 1) != (paperGain > 1) {
				okAll = false
			}
		}
		t.row(fmt.Sprintf("CROSS v6e×%d (sim)", b.MatchedCores),
			fmt.Sprintf("%d,28,%d", b.CrossL, b.CrossDnum),
			us(add), us(mult), us(resc), us(rot),
			fmt.Sprintf("%.2f×", gain), paperCell)
	}
	notes := "CROSS wins against every public CPU/GPU/FPGA baseline and loses to the HE ASICs on Mult/Rotate (paper: 451×…1.15× gains; 0.03–0.42× vs ASICs)"
	if !okAll {
		notes = "VIOLATED: win/lose direction flipped against a public baseline"
	}
	return Report{ID: "Table VIII", Title: "HE operator latency & energy efficiency (power-matched)", Body: t.String(), Notes: notes}
}

func naIfZero(v float64) string {
	if v == 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.0f", v)
}

// Fig12 regenerates the latency breakdown of HE-Mult and Rotate on one
// TPUv6e tensor core under Set D — straight off the Schedule IR's
// per-category trace.
func Fig12() Report {
	var body string
	vecDominant := true
	c := newCompiler(tpusim.TPUv6e(), cross.SetD())
	for _, sched := range []*cross.Schedule{c.LowerHEMult(), c.LowerRotate()} {
		body += sched.Op + ":\n" + sched.Breakdown() + "\n"
		if sched.Seconds(tpusim.CatVecModOps) < sched.Seconds(tpusim.CatNTTMatMul) {
			vecDominant = false
		}
	}
	notes := "VecModOps dominates both operators (paper: 51%/38%); matmuls stay a minority; Rotate shows the Permutation share MAT cannot embed (paper: 21%)"
	if !vecDominant {
		notes = "VIOLATED: VPU no longer the bottleneck"
	}
	return Report{ID: "Fig 12", Title: "Latency breakdown of HE-Mult and Rotate (TPUv6e, Set D)", Body: body, Notes: notes}
}

// TableIX regenerates the packed-bootstrapping comparison.
func TableIX() Report {
	t := newTable("platform", "latency ms", "paper ms")
	for _, b := range refdata.BootstrapBaselines() {
		t.row(b.Name+" ["+b.Platform+"]", fmt.Sprintf("%.1f", b.LatencyMs), "(published)")
	}
	sched := cross.DefaultBootstrapSchedule(cross.SetD())
	var v6e float64
	for _, vm := range tpusim.AllVMs() {
		c := newCompiler(vm.Spec, cross.SetD())
		// MAD's BSGS transforms hoist the rotation decompositions; the
		// baby-step groups share ~8 rotations per decomposition.
		lat := c.LowerBootstrapHoisted(sched, 8).Total
		amort := vm.AmortizedLatency(lat) * 1e3
		if vm.Spec.Name == "TPUv6e" {
			v6e = amort
		}
		t.row(vm.Name()+" (sim)", fmt.Sprintf("%.1f", amort),
			fmt.Sprintf("%.1f", refdata.PaperBootstrapTPU[vm.Spec.Name]))
	}
	ok := v6e < refdata.BootstrapBaselines()[0].LatencyMs && v6e > refdata.BootstrapBaselines()[2].LatencyMs
	notes := "v6e beats the GPU libraries but trails CraterLake by ~5× (paper: 21.5 ms vs 3.91 ms)"
	if !ok {
		notes = "VIOLATED: bootstrap ordering vs baselines flipped"
	}
	return Report{ID: "Table IX", Title: "Packed bootstrapping latency", Body: t.String(), Notes: notes}
}

// Workloads regenerates the §V-D ML workload estimates.
func Workloads() Report {
	t := newTable("workload", "metric", "measured", "paper")
	cMnist := newCompiler(tpusim.TPUv6e(), workload.MNISTParams())
	_, perImage := workload.EstimateMNIST(cMnist)
	t.row("MNIST CNN (v6e, sim)", "amortised ms/image",
		fmt.Sprintf("%.0f", perImage*1e3), fmt.Sprintf("%.0f", refdata.MNISTLatencyMs))
	t.row("Orion (published)", "amortised ms/image",
		fmt.Sprintf("%.0f", refdata.OrionMNISTLatencyMs), "(baseline)")

	cLR := newCompiler(tpusim.TPUv6e(), cross.SetD())
	iter := workload.EstimateHELR(cLR)
	t.row("HELR logistic regression (v6e, sim)", "ms/iteration",
		fmt.Sprintf("%.0f", iter*1e3), fmt.Sprintf("%.0f", refdata.HELRIterationMs))

	ok := perImage*1e3 < refdata.OrionMNISTLatencyMs
	notes := "MNIST inference beats the Orion baseline by ~10×; both estimates follow the paper's kernel-count × profiled-latency methodology (§V-A)"
	if !ok {
		notes = "VIOLATED: MNIST estimate slower than Orion"
	}
	return Report{ID: "Workloads", Title: "HE ML workloads (§V-D)", Body: t.String(), Notes: notes}
}
