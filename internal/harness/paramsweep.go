package harness

import (
	"fmt"

	"cross/internal/cross"
	"cross/internal/tpusim"
)

// ParamSweep regenerates §V-C(c) "Effects of Security Parameters":
// increasing either the total limb count L or the digit number dnum
// increases the required computation and hence HE-Mult/Rotate latency
// on the TPU. This is also the ablation for design choice #6 of
// DESIGN.md §5.
func ParamSweep() Report {
	t := newTable("L", "dnum", "alpha", "Mult µs", "Rotate µs")
	base := cross.SetD()

	limbMono := true
	var prevMult float64
	for _, l := range []int{24, 36, 51, 64} {
		p := base
		p.L = l
		c := newCompiler(tpusim.TPUv6e(), p)
		ops := c.MeasureHEOps()
		if ops.Mult <= prevMult {
			limbMono = false
		}
		prevMult = ops.Mult
		t.row(fmt.Sprint(l), fmt.Sprint(p.Dnum), fmt.Sprint(p.Alpha()),
			us(ops.Mult), us(ops.Rotate))
	}

	dnumMono := true
	prevMult = 0
	for _, dnum := range []int{1, 2, 3, 6, 12} {
		p := base
		p.Dnum = dnum
		c := newCompiler(tpusim.TPUv6e(), p)
		ops := c.MeasureHEOps()
		if dnum > 1 && ops.Mult <= prevMult {
			dnumMono = false
		}
		prevMult = ops.Mult
		t.row(fmt.Sprint(p.L), fmt.Sprint(dnum), fmt.Sprint(p.Alpha()),
			us(ops.Mult), us(ops.Rotate))
	}

	notes := "latency grows with both the limb count and the digit number (§V-C-c) — more limbs mean more kernels, more digits mean more ModUp transforms"
	if !limbMono || !dnumMono {
		notes = "VIOLATED: latency not monotone in L or dnum"
	}
	return Report{ID: "Param Sweep", Title: "Effects of security parameters (TPUv6e, §V-C-c)", Body: t.String(), Notes: notes}
}
