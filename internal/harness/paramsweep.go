package harness

import (
	"fmt"
	"strings"

	"cross/internal/cross"
	"cross/internal/tpusim"
)

// ParamSweep regenerates §V-C(c) "Effects of Security Parameters":
// increasing either the total limb count L or the digit number dnum
// increases the required computation and hence HE-Mult/Rotate latency
// on the TPU. This is also the ablation for design choice #6 of
// DESIGN.md §5.
func ParamSweep() Report {
	t := newTable("L", "dnum", "alpha", "Mult µs", "Rotate µs")
	base := cross.SetD()

	limbMono := true
	var prevMult float64
	for _, l := range []int{24, 36, 51, 64} {
		p := base
		p.L = l
		c := newCompiler(tpusim.TPUv6e(), p)
		ops := c.MeasureHEOps()
		if ops.Mult <= prevMult {
			limbMono = false
		}
		prevMult = ops.Mult
		t.row(fmt.Sprint(l), fmt.Sprint(p.Dnum), fmt.Sprint(p.Alpha()),
			us(ops.Mult), us(ops.Rotate))
	}

	dnumMono := true
	prevMult = 0
	for _, dnum := range []int{1, 2, 3, 6, 12} {
		p := base
		p.Dnum = dnum
		c := newCompiler(tpusim.TPUv6e(), p)
		ops := c.MeasureHEOps()
		if dnum > 1 && ops.Mult <= prevMult {
			dnumMono = false
		}
		prevMult = ops.Mult
		t.row(fmt.Sprint(p.L), fmt.Sprint(dnum), fmt.Sprint(p.Alpha()),
			us(ops.Mult), us(ops.Rotate))
	}

	return Report{
		ID:    "Param Sweep",
		Title: "Effects of security parameters (TPUv6e, §V-C-c)",
		Body:  t.String(),
		Notes: monotonicityNotes(limbMono, dnumMono),
	}
}

// monotonicityNotes renders the Param Sweep fidelity note. The two
// sweep loops track monotonicity per knob, so a violation names the
// knob (or knobs) that broke rather than collapsing both into one
// undiagnosable string.
func monotonicityNotes(limbMono, dnumMono bool) string {
	if limbMono && dnumMono {
		return "latency grows with both the limb count and the digit number (§V-C-c) — more limbs mean more kernels, more digits mean more ModUp transforms"
	}
	var broken []string
	if !limbMono {
		broken = append(broken, "the limb count L")
	}
	if !dnumMono {
		broken = append(broken, "the digit number dnum")
	}
	return "VIOLATED: HE-Mult latency not monotone in " + strings.Join(broken, " nor in ")
}
