package calib

import (
	"math"
	"testing"

	"cross/internal/tpusim"
)

// synthModel is a separable four-term model whose global optimum is
// exactly the planted constants: every point costs
// a·Launch + b/HBM + c/VMEM + d/NTT.
type synthModel struct {
	feats [][4]float64
}

func (m synthModel) predict(c tpusim.Calibration) ([]float64, error) {
	out := make([]float64, len(m.feats))
	for i, f := range m.feats {
		out[i] = f[0]*c.LaunchOverhead*1e9 + f[1]/c.HBMFraction + f[2]/c.VMEMFraction + f[3]/c.NTTEfficiency
	}
	return out, nil
}

func synth() synthModel {
	return synthModel{feats: [][4]float64{
		{1, 0, 0, 0}, {0, 100, 0, 0}, {0, 0, 100, 0}, {0, 0, 0, 100},
		{1, 50, 0, 0}, {0, 30, 30, 0}, {1, 0, 0, 200}, {2, 10, 80, 40},
	}}
}

var synthDefaults = tpusim.Calibration{LaunchOverhead: 1e-6, HBMFraction: 1, VMEMFraction: 1, NTTEfficiency: 1}

// The fitter must be bit-identical across repeated runs and across any
// worker count — the determinism contract that keeps BENCH_calib.json
// diffable.
func TestFitDeterministicAcrossRunsAndWorkers(t *testing.T) {
	m := synth()
	planted := tpusim.Calibration{LaunchOverhead: 2.3e-6, HBMFraction: 0.6, VMEMFraction: 1.7, NTTEfficiency: 0.8}
	meas, err := m.predict(planted)
	if err != nil {
		t.Fatal(err)
	}
	var first FitResult
	for i, workers := range []int{1, 1, 4, 8} {
		fr, err := Fit(synthDefaults, AllConstants(), meas, m.predict, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = fr
			continue
		}
		if fr != first {
			t.Fatalf("workers=%d: result %+v differs from first run %+v (must be bit-identical)", workers, fr, first)
		}
	}
}

// Planting constants and fitting from offset defaults must recover
// them within the grid resolution, and must never fit worse than the
// defaults.
func TestFitRecoversPlantedConstants(t *testing.T) {
	m := synth()
	planted := tpusim.Calibration{LaunchOverhead: 2e-6, HBMFraction: 0.5, VMEMFraction: 2, NTTEfficiency: 0.71}
	meas, err := m.predict(planted)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Fit(synthDefaults, AllConstants(), meas, m.predict, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ObjAfter > fr.ObjBefore {
		t.Fatalf("fit made the objective worse: %v > %v", fr.ObjAfter, fr.ObjBefore)
	}
	within := func(name string, got, want float64) {
		if r := got / want; r < 1/1.5 || r > 1.5 {
			t.Errorf("%s = %v, want within 1.5× of planted %v", name, got, want)
		}
	}
	within("LaunchOverhead", fr.Constants.LaunchOverhead, planted.LaunchOverhead)
	within("HBMFraction", fr.Constants.HBMFraction, planted.HBMFraction)
	within("VMEMFraction", fr.Constants.VMEMFraction, planted.VMEMFraction)
	within("NTTEfficiency", fr.Constants.NTTEfficiency, planted.NTTEfficiency)
	if fr.ObjAfter > 0.1 {
		t.Errorf("residual objective %v, want near zero for a realisable model", fr.ObjAfter)
	}
}

// When the defaults already explain the data exactly, the fit must
// keep them (the default candidate always participates).
func TestFitKeepsPerfectDefaults(t *testing.T) {
	m := synth()
	meas, err := m.predict(synthDefaults)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Fit(synthDefaults, AllConstants(), meas, m.predict, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ObjAfter != 0 {
		t.Fatalf("ObjAfter = %v, want exactly 0", fr.ObjAfter)
	}
	if fr.Constants != synthDefaults {
		t.Fatalf("constants drifted from perfect defaults: %+v", fr.Constants)
	}
}

// Fitted constants must respect the bounded window around defaults.
func TestFitRespectsBounds(t *testing.T) {
	// A model the constants cannot explain: predictions 1000× too
	// slow. The fit would love NTTEfficiency → ∞; the bound stops it.
	predict := func(c tpusim.Calibration) ([]float64, error) {
		return []float64{1000 / c.NTTEfficiency, 2000 / c.NTTEfficiency, 4000 / c.NTTEfficiency, 8000 / c.NTTEfficiency}, nil
	}
	meas := []float64{1, 2, 4, 8}
	fr, err := Fit(synthDefaults, AllConstants(), meas, predict, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.Constants.NTTEfficiency; got > fitBoundRange*synthDefaults.NTTEfficiency+1e-12 {
		t.Fatalf("NTTEfficiency %v escaped the ±%v× bound", got, fitBoundRange)
	}
	if got := fr.Constants.NTTEfficiency; math.Abs(got-fitBoundRange) > 1e-9 {
		t.Fatalf("NTTEfficiency = %v, want pinned at the %v bound", got, fitBoundRange)
	}
}

// Degenerate inputs must error cleanly, never fit garbage.
func TestFitDegenerateInputs(t *testing.T) {
	m := synth()
	ok := func(c tpusim.Calibration) ([]float64, error) { return m.predict(c) }
	cases := []struct {
		name    string
		mask    FitMask
		meas    []float64
		predict func(tpusim.Calibration) ([]float64, error)
	}{
		{"empty mask", FitMask{}, []float64{1, 2, 3, 4, 5, 6, 7, 8}, ok},
		{"single point, four constants", AllConstants(), []float64{1}, ok},
		{"no points", AllConstants(), nil, ok},
		{"zero measurement", AllConstants(), []float64{1, 0, 3, 4, 5, 6, 7, 8}, ok},
		{"negative measurement", AllConstants(), []float64{1, -2, 3, 4, 5, 6, 7, 8}, ok},
		{"NaN measurement", AllConstants(), []float64{1, math.NaN(), 3, 4, 5, 6, 7, 8}, ok},
		{"non-positive prediction", AllConstants(), []float64{1, 2, 3, 4, 5, 6, 7, 8},
			func(tpusim.Calibration) ([]float64, error) {
				return []float64{0, 0, 0, 0, 0, 0, 0, 0}, nil
			}},
		{"short prediction", AllConstants(), []float64{1, 2, 3, 4, 5, 6, 7, 8},
			func(tpusim.Calibration) ([]float64, error) { return []float64{1}, nil }},
	}
	for _, c := range cases {
		if _, err := Fit(synthDefaults, c.mask, c.meas, c.predict, 1); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
	// Unresolved defaults (zero fields) must be rejected too.
	if _, err := Fit(tpusim.Calibration{}, AllConstants(), []float64{1, 2, 3, 4}, ok, 1); err == nil {
		t.Error("unresolved defaults: expected an error")
	}
	// A single point CAN determine a single constant.
	one := func(c tpusim.Calibration) ([]float64, error) { return []float64{100 / c.NTTEfficiency}, nil }
	if _, err := Fit(synthDefaults, FitMask{NTT: true}, []float64{50}, one, 1); err != nil {
		t.Errorf("one point, one constant must fit: %v", err)
	}
}

// The real published-GPU group must fit bit-identically at every
// worker count — the end-to-end determinism the CI gate relies on
// (host points are measured, but published groups must never wobble).
func TestGPUGroupFitDeterministic(t *testing.T) {
	g := gpuGroup()
	meas := make([]float64, len(g.points))
	for i, pt := range g.points {
		meas[i] = pt.meas
	}
	var first FitResult
	for i, workers := range []int{1, 8} {
		fr, err := Fit(g.defaults, g.mask, meas, g.predict, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = fr
		} else if fr != first {
			t.Fatalf("workers=%d: %+v differs from %+v", workers, fr, first)
		}
	}
	if first.ObjAfter > first.ObjBefore {
		t.Fatalf("fitting the A100 made the objective worse")
	}
	// The unmasked constant must keep its default.
	if first.Constants.VMEMFraction != g.defaults.VMEMFraction {
		t.Fatalf("VMEM fraction moved despite an unmasked axis: %v", first.Constants.VMEMFraction)
	}
}
