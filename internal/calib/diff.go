package calib

import (
	"fmt"
	"math"
	"strings"

	"cross/internal/tpusim"
)

// Delta is one record's baseline-vs-current model-error comparison.
type Delta struct {
	ID     string `json:"id"`
	Source string `json:"source"`
	// OldAbsErr / NewAbsErr are |RelErrFitted| in the two reports;
	// Drift is New − Old (positive = model got worse against ground
	// truth).
	OldAbsErr float64 `json:"old_abs_err"`
	NewAbsErr float64 `json:"new_abs_err"`
	Drift     float64 `json:"drift"`
	Class     string  `json:"class"`
}

// Delta classes (shared vocabulary with sweep/hostbench diffs).
const (
	ClassRegression  = "regression"
	ClassImprovement = "improvement"
	ClassUnchanged   = "unchanged"
)

// DiffResult is the classified comparison of two calibration reports —
// the calib-gate's verdict.
type DiffResult struct {
	Threshold float64 `json:"threshold"`
	// Regressions hold published-source records whose fitted model
	// error grew beyond the threshold — deterministic, so any entry is
	// a real model change, and the gate fails.
	Regressions  []Delta `json:"regressions"`
	Improvements []Delta `json:"improvements"`
	Unchanged    int     `json:"unchanged"`

	OnlyInOld []string `json:"only_in_old,omitempty"`
	OnlyInNew []string `json:"only_in_new,omitempty"`

	// ConstantDrift holds published-spec fitted constants that moved
	// relative to the baseline — also deterministic, also fails the
	// gate (the model changed even if the error happens to stay flat).
	ConstantDrift []string `json:"constant_drift,omitempty"`

	// Warnings collect everything measured on real (variable) hardware:
	// host-record error drift, host-spec constant drift, and
	// environment mismatches. Never a failure — CI runners differ.
	Warnings []string `json:"warnings,omitempty"`
}

// HasRegressions reports whether the gate should fail: a deterministic
// model-error regression or a fitted-constant drift on a published
// spec.
func (d DiffResult) HasRegressions() bool {
	return len(d.Regressions) > 0 || len(d.ConstantDrift) > 0
}

// Summary renders the human-readable gate report.
func (d DiffResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calib diff @ |rel err| drift threshold %.2f: %d regression(s), %d constant drift(s), %d improvement(s), %d unchanged\n",
		d.Threshold, len(d.Regressions), len(d.ConstantDrift), len(d.Improvements), d.Unchanged)
	for _, r := range d.Regressions {
		fmt.Fprintf(&b, "  REGRESSION  %-40s model error %.1f%% → %.1f%%\n", r.ID, r.OldAbsErr*100, r.NewAbsErr*100)
	}
	for _, c := range d.ConstantDrift {
		fmt.Fprintf(&b, "  CONSTANT DRIFT  %s\n", c)
	}
	for _, r := range d.Improvements {
		fmt.Fprintf(&b, "  improvement %-40s model error %.1f%% → %.1f%%\n", r.ID, r.OldAbsErr*100, r.NewAbsErr*100)
	}
	if len(d.OnlyInOld) > 0 {
		fmt.Fprintf(&b, "  only in baseline: %v\n", d.OnlyInOld)
	}
	if len(d.OnlyInNew) > 0 {
		fmt.Fprintf(&b, "  only in new run: %v\n", d.OnlyInNew)
	}
	for _, w := range d.Warnings {
		fmt.Fprintf(&b, "  WARNING %s\n", w)
	}
	return b.String()
}

// Diff compares two calibration reports. Records match on ID; each
// matched pair classifies by the absolute drift of its fitted model
// error (|RelErrFitted|): growth beyond the threshold is a regression
// for published-source records and a warning for host-source ones
// (host ground truth moves with the CI machine — hard-failing on it
// would gate on hardware, not on the model). Fitted constants of
// published specs are compared field-by-field at the same relative
// threshold, and environment mismatches surface as warnings via
// hostbench.Environment.
func Diff(old, new *Report, threshold float64) DiffResult {
	if threshold < 0 {
		threshold = 0
	}
	d := DiffResult{Threshold: threshold}

	oldByID := make(map[string]Record, len(old.Records))
	for _, r := range old.Records {
		oldByID[r.ID] = r
	}
	seen := make(map[string]bool, len(new.Records))
	for _, r := range new.Records {
		seen[r.ID] = true
		o, ok := oldByID[r.ID]
		if !ok {
			d.OnlyInNew = append(d.OnlyInNew, r.ID)
			continue
		}
		delta := Delta{
			ID: r.ID, Source: r.Source,
			OldAbsErr: math.Abs(o.RelErrFitted),
			NewAbsErr: math.Abs(r.RelErrFitted),
		}
		delta.Drift = delta.NewAbsErr - delta.OldAbsErr
		switch {
		case delta.Drift > threshold:
			delta.Class = ClassRegression
		case delta.Drift < -threshold:
			delta.Class = ClassImprovement
		default:
			delta.Class = ClassUnchanged
		}
		switch {
		case delta.Class == ClassRegression && r.Source == SourceHost:
			d.Warnings = append(d.Warnings, fmt.Sprintf(
				"host record %s: model error %.1f%% → %.1f%% (measured hardware varies; not gated)",
				r.ID, delta.OldAbsErr*100, delta.NewAbsErr*100))
			d.Unchanged++
		case delta.Class == ClassRegression:
			d.Regressions = append(d.Regressions, delta)
		case delta.Class == ClassImprovement:
			d.Improvements = append(d.Improvements, delta)
		default:
			d.Unchanged++
		}
	}
	for _, r := range old.Records {
		if !seen[r.ID] {
			d.OnlyInOld = append(d.OnlyInOld, r.ID)
		}
	}

	// Fitted constants: deterministic for published specs → gate;
	// host spec → warn.
	oldFits := make(map[string]SpecFit, len(old.Fits))
	for _, f := range old.Fits {
		oldFits[f.Spec] = f
	}
	for _, f := range new.Fits {
		of, ok := oldFits[f.Spec]
		if !ok {
			continue
		}
		drift := constantDrift(of.Fitted, f.Fitted, threshold)
		if len(drift) == 0 {
			continue
		}
		msg := fmt.Sprintf("%s: %s", f.Spec, strings.Join(drift, ", "))
		if f.Source == SourceHost {
			d.Warnings = append(d.Warnings, "host constants drifted — "+msg)
		} else {
			d.ConstantDrift = append(d.ConstantDrift, msg)
		}
	}

	for _, w := range old.Env.Mismatches(new.Env) {
		d.Warnings = append(d.Warnings, "environment mismatch — "+w)
	}
	return d
}

// constantDrift describes each calibration field whose relative change
// exceeds the threshold.
func constantDrift(old, new tpusim.Calibration, threshold float64) []string {
	var out []string
	check := func(name string, o, n float64) {
		if o > 0 && math.Abs(n/o-1) > threshold {
			out = append(out, fmt.Sprintf("%s %.3g → %.3g", name, o, n))
		}
	}
	check("launch_overhead_s", old.LaunchOverhead, new.LaunchOverhead)
	check("hbm_fraction", old.HBMFraction, new.HBMFraction)
	check("vmem_fraction", old.VMEMFraction, new.VMEMFraction)
	check("ntt_efficiency", old.NTTEfficiency, new.NTTEfficiency)
	return out
}
