package calib

import (
	"fmt"
	"math"
	"sync"

	"cross/internal/tpusim"
)

// FitMask selects which calibration constants a fit is allowed to
// vary. A spec with few measured points fits a reduced mask (the rule
// below: at least as many distinct points as varied constants), the
// rest staying at their defaults.
type FitMask struct {
	Launch bool `json:"launch"`
	HBM    bool `json:"hbm"`
	VMEM   bool `json:"vmem"`
	NTT    bool `json:"ntt"`
}

// AllConstants varies every calibration constant.
func AllConstants() FitMask { return FitMask{Launch: true, HBM: true, VMEM: true, NTT: true} }

// Count returns the number of varied constants.
func (m FitMask) Count() int {
	n := 0
	for _, b := range []bool{m.Launch, m.HBM, m.VMEM, m.NTT} {
		if b {
			n++
		}
	}
	return n
}

// FitResult is one spec's fitted constants with the before/after
// objective (sum of squared relative errors) that proves the fit
// helped.
type FitResult struct {
	Defaults  tpusim.Calibration `json:"defaults"`
	Constants tpusim.Calibration `json:"constants"`
	ObjBefore float64            `json:"objective_before"`
	ObjAfter  float64            `json:"objective_after"`
}

// fitSpans are the per-pass neighbourhood half-widths of the
// coarse-to-fine grid search: each pass scans {s⁻², s⁻¹, 1, s, s²}
// multipliers per varied constant around the incumbent, so the search
// covers 16× down to ±19% in four deterministic passes.
var fitSpans = []float64{4, 2, math.Sqrt2, 1.189207115002721}

// fitGridRadius is the half-width of each pass's multiplier grid
// (multipliers span s^-radius … s^+radius).
const fitGridRadius = 2

// fitBoundRange bounds every fitted constant to
// [default/fitBoundRange, default×fitBoundRange]: the constants are
// corrections to nominal figures, and an unbounded multiplicative walk
// otherwise compounds across passes into physically meaningless values
// (an "effective bandwidth fraction" of 181 just deletes the memory
// term from the roofline). The model's structural error — e.g. a
// too-shallow latency-vs-degree slope — must stay visible as residual
// error, not vanish into corner constants.
const fitBoundRange = 8.0

// Fit least-squares fits the masked calibration constants of one spec
// against measured latencies: it minimises Σ ((pred−meas)/meas)² — the
// scale-free relative-error objective, so a 2× overshoot on a 100 ns
// kernel weighs the same as on a 100 ms bootstrap, and the RMS of the
// minimised quantity is exactly the relative model error the report
// headlines — by deterministic coarse-to-fine multiplicative grid
// search around the defaults.
//
// predict prices every measured point under a candidate calibration
// (same order and length as meas, strictly positive). It must be safe
// for concurrent calls: candidates are evaluated on `parallel` workers,
// objectives land in an indexed slice, and the argmin scan is serial
// with a first-index tie-break — the result is bit-identical across
// runs and across any worker count.
//
// The defaults are always a candidate (the identity multiplier), so
// ObjAfter ≤ ObjBefore by construction: fitting can only help.
//
// Degenerate inputs error cleanly: fewer points than varied constants
// (the system is underdetermined), an empty mask, non-positive or
// non-finite measurements, and non-positive predictions all fail
// rather than fit garbage.
func Fit(defaults tpusim.Calibration, mask FitMask, meas []float64,
	predict func(tpusim.Calibration) ([]float64, error), parallel int) (FitResult, error) {
	k := mask.Count()
	if k == 0 {
		return FitResult{}, fmt.Errorf("calib: empty fit mask — nothing to fit")
	}
	if len(meas) < k {
		return FitResult{}, fmt.Errorf("calib: %d measured point(s) cannot determine %d constant(s)", len(meas), k)
	}
	for i, v := range meas {
		if !(v > 0) || math.IsInf(v, 0) {
			return FitResult{}, fmt.Errorf("calib: measured point %d is %v, want a positive finite latency", i, v)
		}
	}
	if defaults.LaunchOverhead <= 0 || defaults.HBMFraction <= 0 ||
		defaults.VMEMFraction <= 0 || defaults.NTTEfficiency <= 0 {
		return FitResult{}, fmt.Errorf("calib: defaults %+v are not fully resolved", defaults)
	}
	if parallel < 1 {
		parallel = 1
	}

	objective := func(c tpusim.Calibration) (float64, error) {
		pred, err := predict(c)
		if err != nil {
			return 0, err
		}
		if len(pred) != len(meas) {
			return 0, fmt.Errorf("calib: predictor returned %d point(s) for %d measurement(s)", len(pred), len(meas))
		}
		obj := 0.0
		for i, p := range pred {
			if !(p > 0) || math.IsInf(p, 0) {
				return 0, fmt.Errorf("calib: predicted point %d is %v under %+v", i, p, c)
			}
			d := p/meas[i] - 1
			obj += d * d
		}
		return obj, nil
	}

	objBefore, err := objective(defaults)
	if err != nil {
		return FitResult{}, err
	}
	best, bestObj := defaults, objBefore

	for _, span := range fitSpans {
		cands := neighborhood(best, defaults, mask, span)
		objs := make([]float64, len(cands))
		errs := make([]error, len(cands))

		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					objs[i], errs[i] = objective(cands[i])
				}
			}()
		}
		for i := range cands {
			idx <- i
		}
		close(idx)
		wg.Wait()

		// Serial argmin with strict < : the first-enumerated candidate
		// wins ties, independent of worker scheduling.
		for i := range cands {
			if errs[i] != nil {
				return FitResult{}, errs[i]
			}
			if objs[i] < bestObj {
				best, bestObj = cands[i], objs[i]
			}
		}
	}
	return FitResult{Defaults: defaults, Constants: best, ObjBefore: objBefore, ObjAfter: bestObj}, nil
}

// neighborhood enumerates the full multiplier cross-product around the
// incumbent for the masked constants, in a fixed order (Launch, HBM,
// VMEM, NTT varying fastest-to-slowest) — the deterministic candidate
// stream the argmin's first-index tie-break is defined over. The
// identity multiplier is part of every axis, so the incumbent itself
// is always a candidate, and every value clamps to the bounded window
// around the defaults (fitBoundRange).
func neighborhood(base, defaults tpusim.Calibration, mask FitMask, span float64) []tpusim.Calibration {
	muls := make([]float64, 0, 2*fitGridRadius+1)
	for e := -fitGridRadius; e <= fitGridRadius; e++ {
		muls = append(muls, math.Pow(span, float64(e)))
	}
	axis := func(on bool) []float64 {
		if on {
			return muls
		}
		return []float64{1}
	}
	clamp := func(v, def float64) float64 {
		return math.Min(math.Max(v, def/fitBoundRange), def*fitBoundRange)
	}
	var out []tpusim.Calibration
	for _, ml := range axis(mask.Launch) {
		for _, mh := range axis(mask.HBM) {
			for _, mv := range axis(mask.VMEM) {
				for _, mn := range axis(mask.NTT) {
					out = append(out, tpusim.Calibration{
						LaunchOverhead: clamp(base.LaunchOverhead*ml, defaults.LaunchOverhead),
						HBMFraction:    clamp(base.HBMFraction*mh, defaults.HBMFraction),
						VMEMFraction:   clamp(base.VMEMFraction*mv, defaults.VMEMFraction),
						NTTEfficiency:  clamp(base.NTTEfficiency*mn, defaults.NTTEfficiency),
					})
				}
			}
		}
	}
	return out
}
