// Package calib is the reproduction's ground-truth calibration
// harness (DESIGN.md §15): it pairs every measurable kernel latency
// with the simulator's prediction for the same work, fits the model's
// free constants (tpusim.Calibration) by deterministic least squares,
// and emits the committable BENCH_calib.json report that CI diffs —
// so the roofline model's error against ground truth is a gated,
// versioned number instead of folklore.
//
// Three measurement sources, one fit procedure per spec:
//
//   - host: internal/hostbench times the real Go kernels at several
//     degrees on the CI machine; predictions price the same kernels
//     through cross.PredictKernel on the synthetic HostSpec.
//   - published TPU: the paper's measured Tab. VII NTT throughputs and
//     Tab. IX bootstrap latencies (internal/refdata), predicted with
//     the exact harness methodology (BestNTTBatch × VM cores;
//     LowerBootstrapHoisted amortized over the VM).
//   - published GPU: WarpDrive's A100 NTT row, predicted on the
//     gpusim backend. (H100 has no published NTT figure in refdata,
//     so it keeps default constants.)
package calib

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"cross/internal/cross"
	"cross/internal/gpusim"
	"cross/internal/hostbench"
	"cross/internal/modarith"
	"cross/internal/refdata"
	"cross/internal/tpusim"
)

// Measurement sources.
const (
	SourceHost      = "host"      // timed on this machine (noisy, warning-gated)
	SourcePublished = "published" // quoted from the paper (deterministic, hard-gated)
)

// Config controls a calibration run.
type Config struct {
	// Sizes are the polynomial degrees the host kernels are measured
	// at (default 4096, 8192, 16384 — the paper's Tab. VII degrees).
	Sizes []int `json:"sizes"`
	// Repeats is the number of raw timing samples per host point
	// (default 5); the minimum is the fitted estimate.
	Repeats int `json:"repeats"`
	// Parallel is the fitter's worker count (default 1). Any value
	// produces bit-identical results; more workers are just faster.
	Parallel int `json:"-"`
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4096, 8192, 16384}
	}
	if c.Repeats < 1 {
		c.Repeats = 5
	}
	if c.Parallel < 1 {
		c.Parallel = 1
	}
	return c
}

// Record is one calibration point: a kernel's measured ground-truth
// latency against the model's prediction under default and fitted
// constants.
type Record struct {
	// ID is "<spec>/<kernel-id>" ("TPUv4/ntt_throughput/N4096").
	ID     string `json:"id"`
	Spec   string `json:"spec"`
	Source string `json:"source"`
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	// Samples are the raw per-repeat timings of host points (ns).
	Samples []float64 `json:"samples_ns,omitempty"`
	// MeasuredNs is the ground truth the fit targets (best-of-samples
	// for host points, the published figure otherwise).
	MeasuredNs float64 `json:"measured_ns"`
	// PredictedNs is the model under default (hand-picked) constants;
	// FittedNs under the fitted ones.
	PredictedNs float64 `json:"predicted_ns"`
	FittedNs    float64 `json:"fitted_ns"`
	// RelErr is PredictedNs/MeasuredNs − 1; RelErrFitted the same for
	// FittedNs. RelErrFitted is the number the CI gate tracks.
	RelErr       float64 `json:"rel_err"`
	RelErrFitted float64 `json:"rel_err_fitted"`
}

// SpecFit is one spec's fitted constants with before/after error.
type SpecFit struct {
	Spec     string             `json:"spec"`
	Source   string             `json:"source"`
	Points   int                `json:"points"`
	Mask     FitMask            `json:"mask"`
	Defaults tpusim.Calibration `json:"defaults"`
	Fitted   tpusim.Calibration `json:"fitted"`
	// RMSRelErr is the root-mean-square relative error
	// √(Σ ((pred−meas)/meas)² / points) — the metric the fit minimises,
	// so After ≤ Before always holds: fitted constants never model
	// worse than the hand-picked defaults.
	RMSRelErrBefore float64 `json:"rms_rel_err_before"`
	RMSRelErrAfter  float64 `json:"rms_rel_err_after"`
	// Mean |rel err| across the spec's points, as information: unlike
	// the RMS relative error it is not the fitted objective, so it can
	// occasionally move the other way.
	MeanAbsRelErrBefore float64 `json:"mean_abs_rel_err_before"`
	MeanAbsRelErrAfter  float64 `json:"mean_abs_rel_err_after"`
	ObjBefore           float64 `json:"objective_before"`
	ObjAfter            float64 `json:"objective_after"`
}

// Report is the committable BENCH_calib.json content: every record,
// every spec's fit, and the environment the host points were measured
// on. Field and slice orders are deterministic.
type Report struct {
	Env     hostbench.Environment `json:"env"`
	Sizes   []int                 `json:"sizes"`
	Repeats int                   `json:"repeats"`
	Records []Record              `json:"records"`
	Fits    []SpecFit             `json:"fits"`
	// RMSRelErr across ALL records under default vs fitted constants —
	// the headline "fitting helped" number; After ≤ Before by
	// construction (each spec's fit minimises exactly this).
	RMSRelErrBefore float64 `json:"rms_rel_err_before"`
	RMSRelErrAfter  float64 `json:"rms_rel_err_after"`
	// Mean |rel err| across all records (informational).
	MeanAbsRelErrBefore float64 `json:"mean_abs_rel_err_before"`
	MeanAbsRelErrAfter  float64 `json:"mean_abs_rel_err_after"`
}

// point is one measured latency awaiting prediction.
type point struct {
	kernel  string
	id      string // kernel-id within the spec ("ntt_throughput/N4096")
	n       int
	meas    float64 // ns
	samples []float64
}

// group binds one spec's points to a calibrated predictor.
type group struct {
	spec     string
	source   string
	mask     FitMask
	defaults tpusim.Calibration
	points   []point
	// predict prices every point (ns, same order) under a candidate
	// calibration; it must be safe for concurrent calls.
	predict func(tpusim.Calibration) ([]float64, error)
}

// hostParams builds the compiler parameter set matching one hostbench
// degree: two 28-bit limbs, no decomposition, the paper's standalone
// 128×(N/128) MAT split.
func hostParams(n int) cross.Params {
	return cross.Params{
		LogN: bits.Len(uint(n)) - 1, LogQ: 28, L: 2, Dnum: 1,
		R: 128, C: n / 128, Red: modarith.Montgomery,
	}
}

// hostGroup measures the Go kernels and pairs them with PredictKernel
// on the synthetic host spec.
func hostGroup(cfg Config) (group, error) {
	samples, err := hostbench.Measure(cfg.Sizes, cfg.Repeats)
	if err != nil {
		return group{}, err
	}
	spec := HostSpec()
	g := group{
		spec:     spec.Name,
		source:   SourceHost,
		mask:     AllConstants(),
		defaults: tpusim.Calibration{}.Resolve(spec),
	}
	for _, s := range samples {
		g.points = append(g.points, point{
			kernel: s.Kernel, id: s.ID, n: s.N,
			meas: s.Best(), samples: s.Ns,
		})
	}
	points := g.points
	g.predict = func(cal tpusim.Calibration) ([]float64, error) {
		comps := make(map[int]*cross.Compiler, len(cfg.Sizes))
		out := make([]float64, len(points))
		for i, pt := range points {
			c, ok := comps[pt.n]
			if !ok {
				var err error
				c, err = cross.Compile(tpusim.NewDevice(spec.WithCalibration(cal)), hostParams(pt.n))
				if err != nil {
					return nil, err
				}
				comps[pt.n] = c
			}
			s, err := c.PredictKernel(pt.kernel)
			if err != nil {
				return nil, err
			}
			out[i] = s.Total * 1e9
		}
		return out, nil
	}
	return g, nil
}

// tpuSets are the Tab. VII parameter sets for N = 2^12, 2^13, 2^14.
var tpuSets = func() []cross.Params {
	return []cross.Params{cross.SetA(), cross.SetB(), cross.SetC()}
}

// tpuGroup pairs one TPU generation's published Tab. VII/IX figures
// with the harness's own prediction methodology: NTT throughput at the
// best batch ≤ 128 scaled by the VM's core count (harness.TableVII),
// and the hoisted bootstrap amortized over the VM (harness.TableIX).
func tpuGroup(vm tpusim.VM) group {
	spec := vm.Spec
	knt := refdata.PaperNTTTPU[spec.Name]
	g := group{
		spec:     spec.Name,
		source:   SourcePublished,
		mask:     AllConstants(), // 4 points determine 4 constants
		defaults: tpusim.Calibration{}.Resolve(spec),
	}
	for i, set := range tpuSets() {
		n := 1 << set.LogN
		g.points = append(g.points, point{
			kernel: "ntt_throughput", id: fmt.Sprintf("ntt_throughput/N%d", n), n: n,
			// kNTT/s on the whole VM → ns per NTT on the VM.
			meas: 1e6 / knt[i],
		})
	}
	g.points = append(g.points, point{
		kernel: "bootstrap_amortized", id: "bootstrap_amortized/SetD", n: 1 << 16,
		meas: refdata.PaperBootstrapTPU[spec.Name] * 1e6,
	})
	g.predict = func(cal tpusim.Calibration) ([]float64, error) {
		calSpec := spec.WithCalibration(cal)
		out := make([]float64, 0, 4)
		for _, set := range tpuSets() {
			c, err := cross.Compile(tpusim.NewDevice(calSpec), set)
			if err != nil {
				return nil, err
			}
			_, thr := c.BestNTTBatch(128)
			out = append(out, 1e9/(thr*float64(vm.Cores)))
		}
		c, err := cross.Compile(tpusim.NewDevice(calSpec), cross.SetD())
		if err != nil {
			return nil, err
		}
		sched := cross.DefaultBootstrapSchedule(cross.SetD())
		lat := c.LowerBootstrapHoisted(sched, 8).Total
		out = append(out, vm.AmortizedLatency(lat)*1e9)
		return out, nil
	}
	return g
}

// gpuGroup pairs the A100 against WarpDrive's published NTT row — the
// faster of the two published A100 rows, i.e. the one closer to the
// hardware limit the roofline models. Three points fit three constants
// (launch, HBM, NTT efficiency); the VMEM fraction keeps its default.
func gpuGroup() group {
	spec := gpusim.A100_40GB()
	var wd refdata.NTTBaseline
	for _, b := range refdata.NTTBaselines() {
		if b.Name == "WarpDrive" {
			wd = b
		}
	}
	g := group{
		spec:     spec.Name,
		source:   SourcePublished,
		mask:     FitMask{Launch: true, HBM: true, NTT: true},
		defaults: tpusim.Calibration{}.Resolve(spec.CoreSpec()),
	}
	for i, set := range tpuSets() {
		n := 1 << set.LogN
		g.points = append(g.points, point{
			kernel: "ntt_throughput", id: fmt.Sprintf("ntt_throughput/N%d", n), n: n,
			meas: 1e6 / wd.KNTTs[i], // one A100
		})
	}
	g.predict = func(cal tpusim.Calibration) ([]float64, error) {
		out := make([]float64, 0, 3)
		for _, set := range tpuSets() {
			c, err := cross.Compile(gpusim.NewDevice(spec.WithCalibration(cal)), set)
			if err != nil {
				return nil, err
			}
			_, thr := c.BestNTTBatch(128)
			out = append(out, 1e9/thr)
		}
		return out, nil
	}
	return g
}

// Run measures, predicts, and fits every spec, returning the full
// report. Published-source content is deterministic; host records
// carry real timings and vary with the machine (the gate treats them
// as warnings, Diff).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	hg, err := hostGroup(cfg)
	if err != nil {
		return nil, err
	}
	groups := []group{hg}
	for _, vm := range tpusim.AllVMs() {
		groups = append(groups, tpuGroup(vm))
	}
	groups = append(groups, gpuGroup())

	rep := &Report{
		Env:     hostbench.CurrentEnvironment(),
		Sizes:   cfg.Sizes,
		Repeats: cfg.Repeats,
	}
	var sumBefore, sumAfter float64
	var sumObjBefore, sumObjAfter float64
	var total int
	for _, g := range groups {
		meas := make([]float64, len(g.points))
		for i, pt := range g.points {
			meas[i] = pt.meas
		}
		fr, err := Fit(g.defaults, g.mask, meas, g.predict, cfg.Parallel)
		if err != nil {
			return nil, fmt.Errorf("calib: fitting %s: %w", g.spec, err)
		}
		before, err := g.predict(fr.Defaults)
		if err != nil {
			return nil, err
		}
		after, err := g.predict(fr.Constants)
		if err != nil {
			return nil, err
		}

		sf := SpecFit{
			Spec: g.spec, Source: g.source, Points: len(g.points), Mask: g.mask,
			Defaults: fr.Defaults, Fitted: fr.Constants,
			RMSRelErrBefore: math.Sqrt(fr.ObjBefore / float64(len(g.points))),
			RMSRelErrAfter:  math.Sqrt(fr.ObjAfter / float64(len(g.points))),
			ObjBefore:       fr.ObjBefore, ObjAfter: fr.ObjAfter,
		}
		sumObjBefore += fr.ObjBefore
		sumObjAfter += fr.ObjAfter
		for i, pt := range g.points {
			relErr := before[i]/pt.meas - 1
			relFit := after[i]/pt.meas - 1
			rep.Records = append(rep.Records, Record{
				ID:   g.spec + "/" + pt.id,
				Spec: g.spec, Source: g.source, Kernel: pt.kernel, N: pt.n,
				Samples: pt.samples, MeasuredNs: pt.meas,
				PredictedNs: before[i], FittedNs: after[i],
				RelErr: relErr, RelErrFitted: relFit,
			})
			sf.MeanAbsRelErrBefore += math.Abs(relErr)
			sf.MeanAbsRelErrAfter += math.Abs(relFit)
			sumBefore += math.Abs(relErr)
			sumAfter += math.Abs(relFit)
			total++
		}
		sf.MeanAbsRelErrBefore /= float64(len(g.points))
		sf.MeanAbsRelErrAfter /= float64(len(g.points))
		rep.Fits = append(rep.Fits, sf)
	}
	rep.RMSRelErrBefore = math.Sqrt(sumObjBefore / float64(total))
	rep.RMSRelErrAfter = math.Sqrt(sumObjAfter / float64(total))
	rep.MeanAbsRelErrBefore = sumBefore / float64(total)
	rep.MeanAbsRelErrAfter = sumAfter / float64(total)
	return rep, nil
}

// Summary renders the human-readable report crossbench prints.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calibration: %d record(s), RMS rel err %.3f → %.3f, mean |rel err| %.1f%% → %.1f%% (default → fitted constants)\n",
		len(r.Records), r.RMSRelErrBefore, r.RMSRelErrAfter,
		r.MeanAbsRelErrBefore*100, r.MeanAbsRelErrAfter*100)
	for _, f := range r.Fits {
		fmt.Fprintf(&b, "  %-10s %-9s %d point(s): RMS %.3f → %.3f  launch %.2gs→%.2gs hbm %.2f vmem %.2f ntt %.2f\n",
			f.Spec, f.Source, f.Points,
			f.RMSRelErrBefore, f.RMSRelErrAfter,
			f.Defaults.LaunchOverhead, f.Fitted.LaunchOverhead,
			f.Fitted.HBMFraction, f.Fitted.VMEMFraction, f.Fitted.NTTEfficiency)
	}
	return b.String()
}
