package calib

import "cross/internal/tpusim"

// HostSpec models the CI host CPU as a roofline Spec, so the same
// Schedule-IR lowerings that price TPU kernels can price the kernels
// hostbench actually measures. The host is the one machine where
// ground truth is free — internal/hostbench times the real Go kernels
// — which makes it the densest calibration source: every measured
// point here exercises the same code paths (dispatch constant, VPU op
// counts, VMEM round-trips) the TPU predictions depend on.
//
// The nominal figures below are deliberately round, generic
// server-CPU-class numbers (one core, scalar-ish SIMD, cache-resident
// working sets). They do NOT need to be accurate: they are the
// *defaults* the fitter starts from, and internal/calib's job is to
// replace the free constants (launch overhead, effective-bandwidth
// fractions, compute efficiency) with fitted values; the fixed shape
// parameters (lane counts, tile sizes) only set the model's structure.
func HostSpec() tpusim.Spec {
	return tpusim.Spec{
		Name:    "host-cpu",
		MXUDim:  8, // SIMD-width matmul tile; the CPU has no systolic array
		NumMXUs: 1,
		// ~2 GMAC/s: a scalar 64-bit modular-multiply loop.
		PeakMACs: 2e9,
		// One scalar "vector unit": 4-wide × 1, ~12 Gop/s at 3 GHz.
		VPULanes:    4,
		VPUSublanes: 1,
		VPUOps:      1.2e10,
		ClockHz:     3e9,
		// Memory: streaming DRAM plays HBM; L1/L2-resident working sets
		// play VMEM (the benchmark buffers are tens of KB and Go
		// kernels fuse their stages, so per-stage round-trips mostly
		// hit cache).
		HBMBandwidth:        5e10,
		VMEMReadBW:          3e11,
		VMEMWriteBW:         1.5e11,
		OnChipCapacity:      32 << 20,
		XLUElemsPerCycle:    4,
		GatherElemsPerCycle: 1,
		// Go kernels keep intermediates in registers — no XLA
		// materialisation derate.
		VPUDerate: 1,
		// A function call plays the kernel launch (~100 ns covers the
		// call plus the per-call slice-header bookkeeping).
		DispatchOverhead: 1e-7,
		WattsPerCore:     65,
		// No interconnect: single core, collectives never charge.
		ICIBandwidth: 1e10,
		ICILatency:   1e-6,
	}
}
