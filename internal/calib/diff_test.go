package calib

import (
	"strings"
	"testing"

	"cross/internal/hostbench"
	"cross/internal/tpusim"
)

func calibRec(id, source string, relFit float64) Record {
	return Record{
		ID: id, Spec: strings.SplitN(id, "/", 2)[0], Source: source,
		MeasuredNs: 1000, PredictedNs: 1000 * (1 + relFit), FittedNs: 1000 * (1 + relFit),
		RelErr: relFit, RelErrFitted: relFit,
	}
}

func baseReport() *Report {
	return &Report{
		Env: hostbench.Environment{GoVersion: "go1.23.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GOMAXPROCS: 8},
		Records: []Record{
			calibRec("TPUv4/ntt_throughput/N4096", SourcePublished, 0.05),
			calibRec("TPUv4/bootstrap_amortized/SetD", SourcePublished, -0.10),
			calibRec("host-cpu/vecaddmod/N8192", SourceHost, 0.08),
		},
		Fits: []SpecFit{
			{Spec: "TPUv4", Source: SourcePublished,
				Fitted: tpusim.Calibration{LaunchOverhead: 1e-5, HBMFraction: 0.5, VMEMFraction: 0.5, NTTEfficiency: 2}},
			{Spec: "host-cpu", Source: SourceHost,
				Fitted: tpusim.Calibration{LaunchOverhead: 1e-7, HBMFraction: 1, VMEMFraction: 1, NTTEfficiency: 1}},
		},
	}
}

// The gate test, same pattern as sweep.Classify's: injected model
// drift on a published record must fail the diff.
func TestDiffGatesInjectedModelDrift(t *testing.T) {
	old := baseReport()
	cur := baseReport()
	// Inject drift: the TPUv4 NTT model error grows 5% → 30%.
	cur.Records[0].RelErrFitted = 0.30
	d := Diff(old, cur, 0.10)
	if !d.HasRegressions() {
		t.Fatal("injected 25-point model-error drift must fail the gate")
	}
	if len(d.Regressions) != 1 || d.Regressions[0].ID != "TPUv4/ntt_throughput/N4096" {
		t.Fatalf("regressions = %+v", d.Regressions)
	}
	if s := d.Summary(); !strings.Contains(s, "REGRESSION") {
		t.Errorf("summary does not flag the regression:\n%s", s)
	}
}

// The same drift on a HOST record must warn, not fail — host ground
// truth moves with the CI machine.
func TestDiffHostDriftWarnsOnly(t *testing.T) {
	old := baseReport()
	cur := baseReport()
	cur.Records[2].RelErrFitted = 0.50
	d := Diff(old, cur, 0.10)
	if d.HasRegressions() {
		t.Fatalf("host drift must not fail the gate: %+v", d.Regressions)
	}
	if len(d.Warnings) == 0 || !strings.Contains(d.Warnings[0], "host record") {
		t.Fatalf("expected a host-record warning, got %v", d.Warnings)
	}
}

// Error shrinking beyond the threshold is an improvement; within it,
// unchanged.
func TestDiffImprovementAndUnchanged(t *testing.T) {
	old := baseReport()
	cur := baseReport()
	cur.Records[1].RelErrFitted = 0.02 // |−0.10| → 0.02: improvement
	d := Diff(old, cur, 0.05)
	if d.HasRegressions() {
		t.Fatalf("unexpected regressions: %+v", d.Regressions)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].ID != "TPUv4/bootstrap_amortized/SetD" {
		t.Fatalf("improvements = %+v", d.Improvements)
	}
	if d.Unchanged != 2 {
		t.Fatalf("unchanged = %d, want 2", d.Unchanged)
	}
}

// Fitted-constant drift on a published spec is deterministic, so it
// gates; the same drift on the host spec warns.
func TestDiffConstantDrift(t *testing.T) {
	old := baseReport()
	cur := baseReport()
	cur.Fits[0].Fitted.NTTEfficiency = 4 // published: 2 → 4
	cur.Fits[1].Fitted.LaunchOverhead = 1e-6
	d := Diff(old, cur, 0.10)
	if !d.HasRegressions() {
		t.Fatal("published constant drift must fail the gate")
	}
	if len(d.ConstantDrift) != 1 || !strings.Contains(d.ConstantDrift[0], "TPUv4") {
		t.Fatalf("ConstantDrift = %v", d.ConstantDrift)
	}
	foundHost := false
	for _, w := range d.Warnings {
		if strings.Contains(w, "host constants drifted") {
			foundHost = true
		}
	}
	if !foundHost {
		t.Fatalf("host constant drift must warn: %v", d.Warnings)
	}
}

// Environment mismatches surface as warnings through the report diff.
func TestDiffEnvMismatchWarns(t *testing.T) {
	old := baseReport()
	cur := baseReport()
	cur.Env.GoVersion = "go1.24.0"
	d := Diff(old, cur, 0.10)
	if d.HasRegressions() {
		t.Fatal("env mismatch must not fail the gate")
	}
	found := false
	for _, w := range d.Warnings {
		if strings.Contains(w, "go_version") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a go_version warning, got %v", d.Warnings)
	}
}

// Identical reports diff clean, and coverage drift is reported.
func TestDiffCleanAndCoverage(t *testing.T) {
	old := baseReport()
	d := Diff(old, baseReport(), 0.10)
	if d.HasRegressions() || len(d.Improvements) != 0 || d.Unchanged != 3 || len(d.Warnings) != 0 {
		t.Fatalf("self-diff not clean: %+v", d)
	}

	cur := baseReport()
	cur.Records = cur.Records[:2]
	cur.Records = append(cur.Records, calibRec("H100/ntt_throughput/N4096", SourcePublished, 0.01))
	d = Diff(old, cur, 0.10)
	if len(d.OnlyInOld) != 1 || len(d.OnlyInNew) != 1 {
		t.Fatalf("coverage drift not reported: %+v", d)
	}
}
