package serve

import (
	"fmt"
	"math"
	"sort"

	"cross/internal/faults"
)

// ChaosConfig selects one chaos sweep: a base serving scenario run
// repeatedly across a grid of crash MTBFs. Every other fault knob
// (deadline, retries, hedging, shedding, stragglers) comes from
// Serve.Faults and is held fixed across the grid, so the sweep
// isolates the crash-rate axis — the "requests/sec at N nines" curve
// a capacity planner prices fleets against.
type ChaosConfig struct {
	Serve Config `json:"serve"`

	// MTBFGrid is the per-pod mean-time-between-crashes values to
	// sweep, in seconds; a 0 entry disables crashes (the availability
	// ceiling). Empty resolves to {0, 4H, 2H, H, H/2, H/4, H/8} for
	// horizon H, sorted healthiest-first.
	MTBFGrid []float64 `json:"mtbf_grid"`
}

// ChaosPoint is one grid cell: the crash MTBF plus the availability
// summary of the run under it.
type ChaosPoint struct {
	MTBFS        float64      `json:"mtbf_s"`
	Goodput      float64      `json:"goodput"`
	Requests     int          `json:"requests"`
	Completed    int          `json:"completed"`
	Shed         int          `json:"shed"`
	TimedOut     int          `json:"timed_out"`
	Failed       int          `json:"failed"`
	Retries      int          `json:"retries"`
	Hedges       int          `json:"hedges"`
	HedgesWon    int          `json:"hedges_won"`
	Crashes      int          `json:"crashes"`
	DowntimeFrac float64      `json:"downtime_frac"` // mean per-pod downtime / makespan
	LatencyGood  LatencyStats `json:"latency_good"`
}

// ChaosResult is the stable record of one chaos sweep: the resolved
// base config plus one point per grid cell, healthiest-first.
type ChaosResult struct {
	Config Config       `json:"config"`
	Points []ChaosPoint `json:"points"`
}

// defaultMTBFGrid spans no-crashes down to an MTBF of horizon/8 in
// factor-of-2 steps — wide enough to show the full goodput cliff.
func defaultMTBFGrid(horizonS float64) []float64 {
	return []float64{0, 4 * horizonS, 2 * horizonS, horizonS,
		horizonS / 2, horizonS / 4, horizonS / 8}
}

// Chaos runs the MTBF grid. The service-time table is priced once and
// shared across every cell (it never depends on the fault config), so
// an N-point sweep costs one pricing pass plus N event-loop runs; the
// result is deterministic because each cell is.
func Chaos(cc ChaosConfig) (*ChaosResult, error) {
	base, pt, capRate, err := prepare(cc.Serve)
	if err != nil {
		return nil, err
	}
	grid := append([]float64(nil), cc.MTBFGrid...)
	if len(grid) == 0 {
		grid = defaultMTBFGrid(base.HorizonS)
	}
	for _, m := range grid {
		if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("serve: chaos MTBF grid values must be finite and ≥ 0, got %g", m)
		}
	}
	// Healthiest-first: descending MTBF with the crash-free cell (0)
	// leading — the stable record order.
	sort.SliceStable(grid, func(i, j int) bool {
		if (grid[i] == 0) != (grid[j] == 0) {
			return grid[i] == 0
		}
		return grid[i] > grid[j]
	})

	res := &ChaosResult{Config: base}
	for _, m := range grid {
		cfg := base
		var f faults.Config
		if base.Faults != nil {
			f = *base.Faults
		}
		f.MTBFS = m
		if m > 0 {
			f.MTTRS = 0 // re-derive MTTR from this cell's MTBF unless pinned
			if base.Faults != nil && base.Faults.MTTRS > 0 {
				f.MTTRS = base.Faults.MTTRS
			}
			f.HeartbeatS = 0
			if base.Faults != nil && base.Faults.HeartbeatS > 0 {
				f.HeartbeatS = base.Faults.HeartbeatS
			}
			f = f.WithDefaults(cfg.HorizonS)
		}
		if f.IsZero() {
			cfg.Faults = nil
		} else {
			cfg.Faults = &f
		}
		r := runPrepared(cfg, pt, capRate)
		p := ChaosPoint{
			MTBFS:     m,
			Goodput:   r.AchievedRate,
			Requests:  r.Requests,
			Completed: r.Completed,
		}
		if av := r.Availability; av != nil {
			p.Shed, p.TimedOut, p.Failed = av.Shed, av.TimedOut, av.Failed
			p.Retries, p.Hedges, p.HedgesWon = av.Retries, av.Hedges, av.HedgesWon
			p.Crashes = av.Crashes
			p.LatencyGood = av.LatencyGood
			if r.MakespanS > 0 && len(av.PodDowntimeS) > 0 {
				var down float64
				for _, d := range av.PodDowntimeS {
					down += d
				}
				p.DowntimeFrac = down / (r.MakespanS * float64(len(av.PodDowntimeS)))
			}
		} else {
			p.LatencyGood = r.Latency
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Summary renders the human-readable chaos table.
func (cr *ChaosResult) Summary() string {
	c := cr.Config
	out := fmt.Sprintf(
		"chaos sweep: %s ×%d pods, Set%s, offered %.1f req/s, deadline %gs, retries %d, hedge %v\n"+
			"%12s %10s %12s %10s %6s %6s %6s %8s %8s %6s %6s\n",
		c.Spec, c.Pods, c.Set, c.Rate, faultDeadline(c), faultRetries(c), faultHedge(c),
		"mtbf_s", "goodput", "p99_good_ms", "completed", "shed", "t/out", "fail", "retries", "hedgewin", "crash", "down%")
	for _, p := range cr.Points {
		mtbf := "∞"
		if p.MTBFS > 0 {
			mtbf = fmt.Sprintf("%.4g", p.MTBFS)
		}
		out += fmt.Sprintf("%12s %10.1f %12.3f %10d %6d %6d %6d %8d %8d %6d %6.1f\n",
			mtbf, p.Goodput, p.LatencyGood.P99S*1e3, p.Completed,
			p.Shed, p.TimedOut, p.Failed, p.Retries, p.HedgesWon, p.Crashes, 100*p.DowntimeFrac)
	}
	return out
}

func faultDeadline(c Config) float64 {
	if c.Faults == nil {
		return 0
	}
	return c.Faults.DeadlineS
}

func faultRetries(c Config) int {
	if c.Faults == nil {
		return 0
	}
	return c.Faults.MaxRetries
}

func faultHedge(c Config) bool {
	return c.Faults != nil && c.Faults.Hedge
}
