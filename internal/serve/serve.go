// Package serve is the discrete-event serving simulator: the layer
// that turns the per-operator Schedule IR into an end-to-end system
// study of "heavy traffic from millions of users" (the ROADMAP's north
// star). An arrival source offers a workload mix {HE-Mult, Rotate,
// Bootstrap, MNIST, HELR} to a fleet of pods; a dynamic batching
// policy (max batch size + max queue delay) groups queued requests of
// one class into batched program launches priced via Program.Batch
// through the shared cross.ScheduleCache; and a dispatch policy
// (round-robin, least-loaded, join-shortest-queue, cheapest) spreads
// requests across the fleet. The output is one stable JSON record:
// offered load, achieved throughput, pod utilization, queue depth, and
// p50/p95/p99 latency.
//
// The serving model is built from four pluggable seams (DESIGN.md
// §12):
//
//   - Fleets: Config.Fleet declares a heterogeneous fleet as
//     {device, cores, count, dollar_per_hour} groups resolved through
//     the device registry, each with its own priced service-time table
//     and per-launch dispatch overhead; the legacy Spec/Pods form is
//     the implicit single group. PolicyCheapest dispatches on
//     committed dollar-time.
//   - SLO classes: Config.Classes gives workloads per-class deadlines,
//     fleet-wide admission limits, and strict-priority (non-preemptive)
//     launch ordering, with per-class stats in the record.
//   - Arrivals: ArrivalSource generates the offered stream — seeded
//     Poisson (the default), deterministic trace replay from a
//     JSON/CSV file, or a caller-supplied source.
//   - Statistics: Config.Stats selects stored exact nearest-rank
//     quantiles (the default) or O(1)-memory streaming P² estimators,
//     which unlock 10^6+-request horizons.
//
// serve.Plan composes these into a capacity planner: for candidate
// fleet shapes it bisects the offered rate against a p99 SLO and
// reports requests/sec/dollar.
//
// Determinism contract (DESIGN.md §12): a Result is a pure function of
// its Config. Arrivals come from an owned splitmix64 PRNG (no
// dependency on math/rand's stream) or a fixed trace, the event loop
// is sequential with total event ordering (time, then insertion
// sequence), and the only concurrency — pre-pricing the batch-size ×
// workload service tables — computes pure Schedules whose values are
// independent of worker count. The JSON encoding of a Result is
// therefore bit-identical across runs and across Parallel values for a
// fixed seed (tested). A Config that uses none of the new seams
// (homogeneous fleet, Poisson arrivals, stored stats) produces a
// record byte-identical to the pre-seam simulator, pinned by
// testdata/golden_prefault.json.
//
// Fault model (DESIGN.md §16): Config.Faults threads the deterministic
// injectors of internal/faults through the event loop — pod
// crash/recover on exponential MTBF/MTTR clocks (an in-flight batch on
// a crashed pod is lost and retried), transient straggler windows that
// multiply a pod's service times, and i.i.d. batch-level transient
// errors — plus the client-side recovery machinery production stacks
// use to survive them: per-request deadlines (a timed-out request is
// never completed), retries with capped exponential backoff and
// deterministic jitter, hedged dispatch with first-wins cancellation,
// queue-depth admission control, and heartbeat-timeout down-pod
// detection (dispatch keeps routing to a just-crashed pod until the
// timeout fires — no oracle knowledge). Fault streams are seeded
// independently of arrivals, so one request trace replays under many
// fault seeds; a nil or zero-valued fault config reproduces the
// fault-free record byte-identically. Injector streams are split per
// pod, so they stay independent over non-uniform fleet groups too.
//
// Batching model: a batch of b same-class requests is priced as the
// b-replicated program (Program.Batch semantics: operator work scales
// linearly) minus the amortised kernel-launch overhead — stacking b
// operands into each kernel keeps the launch count constant, so b−1 of
// the b per-request dispatch shares are saved (the Fig. 11b batching
// effect). Service time is strictly increasing in b while per-request
// time strictly decreases, which is what makes batching win at high
// load. Each fleet group amortises its own part's dispatch overhead.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cross/internal/cross"
	"cross/internal/faults"
	"cross/internal/sweep"
)

// Dispatch policies.
const (
	PolicyRoundRobin  = "round-robin"
	PolicyLeastLoaded = "least-loaded"
	PolicyJSQ         = "jsq" // join the shortest queue
	// PolicyCheapest minimizes committed cost: the candidate pod's
	// queue-drain time plus the request's own service time, weighted by
	// the pod's hourly price — on a heterogeneous fleet it prefers the
	// cheapest pod that is not already backed up.
	PolicyCheapest = "cheapest"
)

// Policies lists every dispatch policy.
var Policies = []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyJSQ, PolicyCheapest}

// MixEntry is one workload class and its share of the arrival stream.
// Weights are relative (normalised internally); order is significant
// only for deterministic tie-breaks and the JSON echo. Class names the
// SLO class (Config.Classes) the workload's requests belong to; empty
// means the implicit default class (no deadline, no limit, priority 0).
type MixEntry struct {
	Workload string  `json:"workload"`
	Weight   float64 `json:"weight"`
	Class    string  `json:"class,omitempty"`
}

// DefaultMix is the standard serving mix: operator traffic dominated
// by cheap ops with a tail of full MNIST inferences.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Workload: sweep.WorkloadHEMult, Weight: 0.5},
		{Workload: sweep.WorkloadRotate, Weight: 0.3},
		{Workload: sweep.WorkloadMNIST, Weight: 0.2},
	}
}

// SLOClass is one service-level class: requests of its workloads get a
// per-class deadline, a fleet-wide queued-admission limit, and a
// strict (non-preemptive) launch priority — higher Priority launches
// first when both classes have a launchable batch on a pod.
type SLOClass struct {
	Name     string `json:"name"`
	Priority int    `json:"priority"`

	// DeadlineS is the per-request deadline from arrival (0 falls back
	// to the fleet-wide Faults.DeadlineS, if any).
	DeadlineS float64 `json:"deadline_s,omitempty"`

	// QueueLimit sheds an arrival when the class already has this many
	// requests queued fleet-wide (0 = unbounded). Checked before the
	// per-pod fault-layer QueueLimit.
	QueueLimit int `json:"queue_limit,omitempty"`
}

// Config selects one serving scenario. The zero value resolves to a
// 4-pod TPUv6e fleet under Set B serving DefaultMix at 70% of fleet
// capacity with batching up to 8. The resolved Config is echoed in
// the Result, so a record is self-describing and reproducible.
type Config struct {
	Seed int64 `json:"seed"` // arrival PRNG seed (0 → 1)

	Spec        string `json:"spec"`          // device name from the cross registry (default TPUv6e)
	Set         string `json:"set"`           // parameter-set letter (default "B")
	Pods        int    `json:"pods"`          // fleet size M (default 4)
	CoresPerPod int    `json:"cores_per_pod"` // cores/GPUs per fleet unit (default 1)

	// Fleet declares a heterogeneous fleet as device groups; mutually
	// exclusive with Spec/Pods/CoresPerPod (which describe the implicit
	// single group). Pod indices run group by group in declaration
	// order.
	Fleet []FleetGroup `json:"fleet,omitempty"`

	Policy string `json:"policy"` // dispatch policy (default round-robin)

	// Rate is the offered load in requests/s; ≤ 0 resolves to 70% of
	// the fleet's max-batch capacity (the echoed Config carries the
	// resolved value). With trace replay the trace defines the
	// arrivals and Rate echoes the trace's average offered rate.
	Rate float64 `json:"rate"`

	// HorizonS is the arrival window in simulated seconds; requests
	// arriving within it are all served to completion (the simulation
	// drains), so overload shows up as makespan ≫ horizon. With trace
	// replay, 0 resolves to the trace's last arrival time.
	HorizonS float64 `json:"horizon_s"`

	// TracePath replays arrivals from a trace file (JSON array of
	// {"t", "workload"} or CSV "t,workload" lines) instead of the
	// Poisson process; see LoadTrace for the schema. TraceEvents
	// supplies the same programmatically (it wins when both are set —
	// TracePath then only annotates the record). An unset Mix is
	// derived from the trace's composition.
	TracePath   string       `json:"trace_path,omitempty"`
	TraceEvents []TraceEvent `json:"-"`

	// Source overrides the arrival stream entirely. The caller owns
	// determinism: the Result is only reproducible if the source is.
	Source ArrivalSource `json:"-"`

	// MaxBatch caps the per-launch batch size (default 8; 1 disables
	// batching). MaxDelayS caps how long an idle pod holds a non-full
	// batch open waiting for more same-class arrivals (0 = launch as
	// soon as the pod is free; batches then form only from backlog).
	MaxBatch  int     `json:"max_batch"`
	MaxDelayS float64 `json:"max_delay_s"`

	Mix []MixEntry `json:"mix"` // workload mix (default DefaultMix)

	// Classes defines the SLO classes Mix entries may reference; empty
	// means one implicit class with fleet-wide knobs only (the legacy
	// behaviour).
	Classes []SLOClass `json:"classes,omitempty"`

	// Overlap prices service times at Schedule.OverlappedTotal (the
	// overlap-aware DAG makespan) instead of the serial SerialTotal —
	// the downstream half of the Schedule.PricedTotal switch. Part of
	// the record schema: two runs differing only in Overlap are
	// distinguishable from their echoed Configs.
	Overlap bool `json:"overlap"`

	// Stats selects the latency-statistics engine: "" or "stored" for
	// exact nearest-rank quantiles over retained samples (the legacy
	// path), "streaming" for O(1)-memory P² estimators (exact below
	// streamExactCutoff samples) that unlock 10^6+-request horizons.
	Stats string `json:"stats,omitempty"`

	// Faults enables the deterministic fault-injection and recovery
	// layer (DESIGN.md §16): pod crash/recover, transient stragglers,
	// batch-level transient errors, per-request deadlines, retries with
	// capped backoff, hedged dispatch, and admission control. nil — or
	// a pointer to the zero value, which withDefaults collapses to nil
	// — reproduces the fault-free Result byte-identically.
	Faults *faults.Config `json:"faults,omitempty"`

	// Parallel is the worker count for pre-pricing the service-time
	// table; ≤ 0 means NumCPU. Results are bit-identical at every
	// value, so it is excluded from the record schema.
	Parallel int `json:"-"`
}

// withDefaults resolves zero-value fields (Rate is resolved later,
// after pricing, because auto-rate needs the capacity).
func (cfg Config) withDefaults() Config {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Fleet) == 0 {
		if cfg.Spec == "" {
			cfg.Spec = "TPUv6e"
		}
		if cfg.Pods == 0 {
			cfg.Pods = 4
		}
		if cfg.CoresPerPod == 0 {
			cfg.CoresPerPod = 1
		}
	} else {
		fleet := append([]FleetGroup(nil), cfg.Fleet...) // copy: never mutate the caller's groups
		for i := range fleet {
			if fleet[i].Cores == 0 {
				fleet[i].Cores = 1
			}
			if fleet[i].DollarPerHour == 0 {
				fleet[i].DollarPerHour = defaultGroupDollar(fleet[i].Device, fleet[i].Cores)
			}
		}
		cfg.Fleet = fleet
	}
	if cfg.Set == "" {
		cfg.Set = "B"
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyRoundRobin
	}
	if cfg.HorizonS == 0 {
		cfg.HorizonS = 0.25
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}
	if cfg.Faults != nil {
		if cfg.Faults.IsZero() {
			cfg.Faults = nil // zero-valued faults ≡ fault-free, byte-identically
		} else {
			f := cfg.Faults.WithDefaults(cfg.HorizonS)
			cfg.Faults = &f // copy: never mutate the caller's config
		}
	}
	return cfg
}

// validate rejects configurations the simulator cannot price.
func (cfg Config) validate() error {
	if len(cfg.Fleet) > 0 {
		if cfg.Spec != "" || cfg.Pods != 0 || cfg.CoresPerPod != 0 {
			return fmt.Errorf("serve: fleet and spec/pods/cores_per_pod are mutually exclusive — describe the whole fleet as groups")
		}
		for i, g := range cfg.Fleet {
			if _, ok := cross.TargetInfoByName(g.Device); !ok {
				return fmt.Errorf("serve: fleet group %d: unknown device %q (valid: %s)", i, g.Device, cross.TargetNames())
			}
			if g.Cores < 1 {
				return fmt.Errorf("serve: fleet group %d: pods need at least one core, got %d", i, g.Cores)
			}
			if g.Count < 1 {
				return fmt.Errorf("serve: fleet group %d: count must be ≥ 1, got %d", i, g.Count)
			}
			if g.DollarPerHour < 0 || math.IsNaN(g.DollarPerHour) || math.IsInf(g.DollarPerHour, 0) {
				return fmt.Errorf("serve: fleet group %d: dollar_per_hour must be finite and ≥ 0, got %g", i, g.DollarPerHour)
			}
		}
	} else {
		if _, ok := cross.TargetInfoByName(cfg.Spec); !ok {
			return fmt.Errorf("serve: unknown device %q (valid: %s)", cfg.Spec, cross.TargetNames())
		}
		if cfg.Pods < 1 {
			return fmt.Errorf("serve: fleet needs at least one pod, got %d", cfg.Pods)
		}
		if cfg.CoresPerPod < 1 {
			return fmt.Errorf("serve: pods need at least one core, got %d", cfg.CoresPerPod)
		}
	}
	if _, err := cross.NamedSet(cfg.Set); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	valid := false
	for _, p := range Policies {
		if cfg.Policy == p {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("serve: unknown policy %q (have %v)", cfg.Policy, Policies)
	}
	if cfg.HorizonS <= 0 {
		return fmt.Errorf("serve: horizon must be positive, got %g", cfg.HorizonS)
	}
	if cfg.MaxBatch < 1 {
		return fmt.Errorf("serve: max batch must be ≥ 1, got %d", cfg.MaxBatch)
	}
	if cfg.MaxDelayS < 0 {
		return fmt.Errorf("serve: max queue delay must be ≥ 0, got %g", cfg.MaxDelayS)
	}
	if cfg.Stats != "" && cfg.Stats != StatsStored && cfg.Stats != StatsStreaming {
		return fmt.Errorf("serve: unknown stats mode %q (have %q, %q)", cfg.Stats, StatsStored, StatsStreaming)
	}
	classIdx := make(map[string]int, len(cfg.Classes))
	for i, c := range cfg.Classes {
		if c.Name == "" {
			return fmt.Errorf("serve: class %d: empty name", i)
		}
		if _, dup := classIdx[c.Name]; dup {
			return fmt.Errorf("serve: class %q defined more than once", c.Name)
		}
		classIdx[c.Name] = i
		if c.DeadlineS < 0 || math.IsNaN(c.DeadlineS) || math.IsInf(c.DeadlineS, 0) {
			return fmt.Errorf("serve: class %q: deadline must be finite and ≥ 0, got %g", c.Name, c.DeadlineS)
		}
		if c.QueueLimit < 0 {
			return fmt.Errorf("serve: class %q: queue limit must be ≥ 0, got %d", c.Name, c.QueueLimit)
		}
	}
	// withDefaults guarantees a non-empty mix, so positive weights and
	// distinct workloads are all that is left to check. Duplicates must
	// be rejected: two entries for one workload would silently become
	// two classes with split weights and misleading per-workload stats.
	seen := make(map[string]bool, len(cfg.Mix))
	for _, e := range cfg.Mix {
		if e.Weight <= 0 {
			return fmt.Errorf("serve: mix weight for %q must be positive, got %g", e.Workload, e.Weight)
		}
		if seen[e.Workload] {
			return fmt.Errorf("%w: %q appears more than once", ErrDuplicateWorkload, e.Workload)
		}
		seen[e.Workload] = true
		if e.Class != "" {
			if _, ok := classIdx[e.Class]; !ok {
				return fmt.Errorf("serve: mix entry %q names unknown class %q", e.Workload, e.Class)
			}
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// ErrDuplicateWorkload is returned when Config.Mix names one workload
// in more than one entry.
var ErrDuplicateWorkload = errors.New("serve: duplicate workload in mix")

// LatencyStats summarises a request-latency distribution (seconds).
// Quantiles are nearest-rank over the completed requests (P²
// estimates in streaming mode).
type LatencyStats struct {
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P95S  float64 `json:"p95_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

// PodStats is one pod's share of the run. Device is present only for
// explicit heterogeneous fleets (it names the pod's group part).
type PodStats struct {
	Pod           int     `json:"pod"`
	Device        string  `json:"device,omitempty"`
	Served        int     `json:"served"`  // requests completed
	Batches       int     `json:"batches"` // program launches
	BusyS         float64 `json:"busy_s"`
	Utilization   float64 `json:"utilization"` // BusyS / makespan
	MaxQueueDepth int     `json:"max_queue_depth"`
}

// WorkloadStats is one request class's share of the run. Requests
// counts delivered requests of the class (fault-free, every arrival is
// delivered, so it equals the arrival count).
type WorkloadStats struct {
	Workload string       `json:"workload"`
	Requests int          `json:"requests"`
	Latency  LatencyStats `json:"latency"`
}

// ClassStats is one SLO class's share of the run, present only when
// Config.Classes is set. Requests counts arrivals of the class;
// Completed + Shed + TimedOut + Failed + late deliveries accounts for
// all of them.
type ClassStats struct {
	Class     string       `json:"class"`
	Priority  int          `json:"priority"`
	Requests  int          `json:"requests"`
	Completed int          `json:"completed"` // delivered within deadline
	Shed      int          `json:"shed"`
	TimedOut  int          `json:"timed_out"`
	Failed    int          `json:"failed"`
	Goodput   float64      `json:"goodput"` // Completed / makespan
	Latency   LatencyStats `json:"latency"` // delivered requests
}

// CostStats is the record's cost section, present only for explicit
// heterogeneous fleets (Config.Fleet set).
type CostStats struct {
	DollarPerHour    float64 `json:"dollar_per_hour"`     // fleet hourly price
	RPSPerDollarHour float64 `json:"rps_per_dollar_hour"` // AchievedRate / DollarPerHour
	DollarPerMillion float64 `json:"dollar_per_million"`  // $ per 10^6 completed requests
}

// AvailabilityStats is the record's availability section, present
// only when the fault layer is enabled (Config.Faults non-nil).
// Completed + Shed + TimedOut + Failed always equals Requests.
type AvailabilityStats struct {
	// Goodput is requests completed within deadline per second of
	// makespan — the "requests/sec at N nines" capacity axis.
	Goodput float64 `json:"goodput"`

	Shed     int `json:"shed"`      // rejected by admission control
	TimedOut int `json:"timed_out"` // deadline expired before delivery
	Failed   int `json:"failed"`    // lost and retry budget exhausted
	Late     int `json:"late"`      // delivered after deadline (subset of timed out)

	Retries     int `json:"retries"`      // re-dispatches after lost launches
	Hedges      int `json:"hedges"`       // hedge launches issued
	HedgesWon   int `json:"hedges_won"`   // hedges that beat their primary
	Crashes     int `json:"crashes"`      // pod crash events
	BatchErrors int `json:"batch_errors"` // transiently failed launches

	// PodDowntimeS is each pod's total crashed time inside the run.
	PodDowntimeS []float64 `json:"pod_downtime_s"`

	// LatencyGood conditions the latency distribution on requests
	// completed within their deadline (Latency includes late
	// deliveries).
	LatencyGood LatencyStats `json:"latency_good"`
}

// Result is one serving run: the resolved Config plus the measured
// system behaviour. Field names are the stable JSON record schema
// (DESIGN.md §12); the encoding is bit-identical across runs and
// Parallel values for a fixed Config.
type Result struct {
	Config Config `json:"config"`

	// CapacityRate is the fleet's sustainable throughput ceiling
	// (requests/s) at full batches under the configured mix — the
	// saturation asymptote AchievedRate approaches under overload.
	CapacityRate float64 `json:"capacity_rate"`

	OfferedRate float64 `json:"offered_rate"` // resolved arrival rate
	Requests    int     `json:"requests"`     // arrivals in the horizon

	// Completed counts requests that finished within their deadline,
	// derived from finish events — fault-free the run drains, so it
	// equals Requests; under faults the rest are shed, timed out, or
	// failed (see Availability).
	Completed    int     `json:"completed"`
	MakespanS    float64 `json:"makespan_s"`    // last delivery time
	AchievedRate float64 `json:"achieved_rate"` // Completed / MakespanS

	MeanBatch     float64 `json:"mean_batch"`      // delivered requests per launch
	MaxQueueDepth int     `json:"max_queue_depth"` // fleet-wide peak

	Latency   LatencyStats    `json:"latency"`
	Pods      []PodStats      `json:"pods"`
	Workloads []WorkloadStats `json:"workloads"`

	// Classes is present only when Config.Classes is set.
	Classes []ClassStats `json:"classes,omitempty"`

	// Cost is present only for explicit heterogeneous fleets.
	Cost *CostStats `json:"cost,omitempty"`

	// Availability is present only when Config.Faults is enabled.
	Availability *AvailabilityStats `json:"availability,omitempty"`
}

// groupPrices is one fleet group's priced service-time model: for
// every mix class w, the base single-request latency and the batched
// service time for every batch size 1..MaxBatch, amortised with this
// part's own dispatch overhead.
type groupPrices struct {
	device        string
	cores         int
	count         int
	dollarPerHour float64
	base          []float64   // [class] single-request schedule total
	svc           [][]float64 // [class][b-1] batched service time, dispatch-amortised
}

// priceTable is the fleet's pre-priced service-time model: one
// groupPrices per fleet group plus the pod-index → group mapping.
type priceTable struct {
	groups   []groupPrices
	podGroup []int // [pod] group index
}

// groupOf returns the price table of the pod's group.
func (pt *priceTable) groupOf(pod int) *groupPrices { return &pt.groups[pt.podGroup[pod]] }

// price lowers every (group, class, batch) service time concurrently
// through one shared ScheduleCache (cache keys include the target
// name, so groups never collide). Schedules are pure functions of
// (target, params, operator), so the resulting table is independent of
// the worker count.
func price(cfg Config) (*priceTable, error) {
	fleet := cfg.resolvedFleet()
	params, err := cross.NamedSet(cfg.Set)
	if err != nil {
		return nil, err
	}

	pt := &priceTable{groups: make([]groupPrices, len(fleet))}
	// Each group's probe target supplies its own per-launch dispatch
	// overhead (XLA dispatch on TPUs, CUDA kernel launch on GPUs) for
	// the batching amortisation — a mixed-generation fleet must not
	// amortise an H100's launch cost with a TPU's constant.
	dispatch := make([]float64, len(fleet))
	for gi, g := range fleet {
		probe, err := cross.TargetByName(g.Device, g.Cores)
		if err != nil {
			return nil, err
		}
		dispatch[gi] = probe.Core().Spec.DispatchOverhead
		pt.groups[gi] = groupPrices{
			device: g.Device, cores: g.Cores, count: g.Count,
			dollarPerHour: g.DollarPerHour,
		}
		for p := 0; p < g.Count; p++ {
			pt.podGroup = append(pt.podGroup, gi)
		}
	}

	type task struct{ group, class, batch int }
	tasks := make([]task, 0, len(fleet)*len(cfg.Mix)*cfg.MaxBatch)
	raw := make([][][]float64, len(fleet))
	launches := make([][]int, len(fleet))
	for gi := range fleet {
		raw[gi] = make([][]float64, len(cfg.Mix))
		launches[gi] = make([]int, len(cfg.Mix))
		for w := range cfg.Mix {
			raw[gi][w] = make([]float64, cfg.MaxBatch)
			for b := 1; b <= cfg.MaxBatch; b++ {
				tasks = append(tasks, task{group: gi, class: w, batch: b})
			}
		}
	}

	cache := cross.NewScheduleCache()
	errs := make([]error, len(tasks))
	idx := make(chan int, len(tasks))
	for i := range tasks {
		idx <- i
	}
	close(idx)

	workers := cfg.Parallel
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t := tasks[i]
				g := fleet[t.group]
				// Targets are stateful trace accumulators, so every task
				// builds its own; only the schedule cache is shared.
				tgt, err := cross.TargetByName(g.Device, g.Cores)
				if err != nil {
					errs[i] = err
					continue
				}
				comp, err := cross.Compile(tgt, params)
				if err != nil {
					errs[i] = err
					continue
				}
				prog, err := sweep.BuildProgram(comp, cfg.Mix[t.class].Workload)
				if err != nil {
					errs[i] = err
					continue
				}
				s := prog.WithCache(cache).Batch(t.batch).Lower()
				raw[t.group][t.class][t.batch-1] = s.PricedTotal(cfg.Overlap)
				if t.batch == 1 {
					// Kernel launches per request (collectives are not XLA
					// launches and are not amortised by operand stacking).
					launches[t.group][t.class] = s.Kernels.Total() - s.Kernels.Collectives
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: pricing %s×%d on %s: %w",
				cfg.Mix[tasks[i].class].Workload, tasks[i].batch, fleet[tasks[i].group].Device, err)
		}
	}

	// Amortise dispatch: stacking b requests into each kernel keeps the
	// launch count constant, so a b-batch saves (b−1) of the per-request
	// dispatch shares (Fig. 11b). Guarded: the saving can never exceed
	// the request itself.
	for gi := range fleet {
		g := &pt.groups[gi]
		g.base = make([]float64, len(cfg.Mix))
		g.svc = raw[gi]
		for w := range cfg.Mix {
			g.base[w] = raw[gi][w][0]
			disp := float64(launches[gi][w]) * dispatch[gi]
			if disp >= g.base[w] {
				disp = 0
			}
			for b := 2; b <= cfg.MaxBatch; b++ {
				raw[gi][w][b-1] -= float64(b-1) * disp
			}
		}
	}
	return pt, nil
}

// capacity returns the fleet's sustainable request rate at full
// batches: each group contributes count / (its mix-weighted
// per-request service time at MaxBatch).
func (pt *priceTable) capacity(cfg Config) float64 {
	var sumW float64
	for _, e := range cfg.Mix {
		sumW += e.Weight
	}
	var capRate float64
	for _, g := range pt.groups {
		var mean float64
		for w, e := range cfg.Mix {
			perReq := g.svc[w][cfg.MaxBatch-1] / float64(cfg.MaxBatch)
			mean += (e.Weight / sumW) * perReq
		}
		if mean > 0 {
			capRate += float64(g.count) / mean
		}
	}
	return capRate
}

// meanBase is the pod-count-weighted, mix-weighted single-request
// service time — the scale the fault layer's auto-derived knobs
// (retry backoff base, heartbeat timeout) resolve against.
func (pt *priceTable) meanBase(cfg Config) float64 {
	var sumW float64
	for _, e := range cfg.Mix {
		sumW += e.Weight
	}
	total := 0
	for _, g := range pt.groups {
		total += g.count
	}
	var mean float64
	for _, g := range pt.groups {
		var m float64
		for w, e := range cfg.Mix {
			m += (e.Weight / sumW) * g.base[w]
		}
		mean += (float64(g.count) / float64(total)) * m
	}
	return mean
}

// autoRateFraction is the load factor auto-rate resolves to: busy
// enough to exercise queueing, below the saturation knee.
const autoRateFraction = 0.7

// maxRequests bounds the arrival count so an absurd rate × horizon
// cannot exhaust memory; streaming stats raise the bound (latencies
// are no longer retained, only the request table remains per-arrival).
const (
	maxRequests          = 2_000_000
	maxRequestsStreaming = 100_000_000
)

// prepare resolves and validates the config, prices the service-time
// table, and resolves the offered rate against fleet capacity — the
// shared front half of Run, Chaos and Plan (which re-use one table
// across many runs; the table never depends on the fault config or the
// offered rate).
func prepare(cfg Config) (Config, *priceTable, float64, error) {
	// Trace resolution comes first: an unset horizon resolves to the
	// trace's end (not the Poisson default) and an unset mix to the
	// trace's composition.
	if cfg.TracePath != "" && len(cfg.TraceEvents) == 0 {
		ev, err := LoadTrace(cfg.TracePath)
		if err != nil {
			return cfg, nil, 0, err
		}
		cfg.TraceEvents = ev
	}
	if len(cfg.TraceEvents) > 0 {
		if err := validateTrace(cfg.TraceEvents, cfg.Mix); err != nil {
			return cfg, nil, 0, err
		}
		if len(cfg.Mix) == 0 {
			cfg.Mix = mixFromTrace(cfg.TraceEvents)
		}
		if cfg.HorizonS == 0 {
			if last := cfg.TraceEvents[len(cfg.TraceEvents)-1].T; last > 0 {
				cfg.HorizonS = last
			}
		}
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return cfg, nil, 0, err
	}
	pt, err := price(cfg)
	if err != nil {
		return cfg, nil, 0, err
	}
	capRate := pt.capacity(cfg)
	reqCap := maxRequests
	if cfg.Stats == StatsStreaming {
		reqCap = maxRequestsStreaming
	}
	if len(cfg.TraceEvents) > 0 {
		n := 0
		for _, e := range cfg.TraceEvents {
			if e.T <= cfg.HorizonS {
				n++
			}
		}
		if n == 0 {
			return cfg, nil, 0, fmt.Errorf("serve: trace has no events within the %g s horizon", cfg.HorizonS)
		}
		if n > reqCap {
			return cfg, nil, 0, fmt.Errorf("serve: trace has %d events, exceeding the %d-request cap", n, reqCap)
		}
		cfg.Rate = float64(n) / cfg.HorizonS // echo: the trace's average offered rate
		return cfg, pt, capRate, nil
	}
	if cfg.Rate <= 0 {
		cfg.Rate = autoRateFraction * capRate
	}
	if cfg.Rate <= 0 {
		return cfg, nil, 0, fmt.Errorf("serve: resolved arrival rate is zero (capacity %g)", capRate)
	}
	if cfg.Rate*cfg.HorizonS > float64(reqCap) {
		return cfg, nil, 0, fmt.Errorf("serve: rate %g × horizon %g s exceeds the %d-request cap",
			cfg.Rate, cfg.HorizonS, reqCap)
	}
	return cfg, pt, capRate, nil
}

// runPrepared executes one prepared scenario: service-time-derived
// fault knobs are resolved here (they need the priced table), then
// the event loop runs to completion. The resolved fault config is
// echoed in the record, so a fault run is self-describing.
func runPrepared(cfg Config, pt *priceTable, capRate float64) *Result {
	if cfg.Faults != nil {
		f := *cfg.Faults
		mean := pt.meanBase(cfg)
		if f.MaxRetries > 0 && f.RetryBackoffS == 0 {
			f.RetryBackoffS = mean
		}
		if f.Crashes() && f.HeartbeatS == 0 {
			f.HeartbeatS = mean
		}
		cfg.Faults = &f
	}
	s := newSim(cfg, pt)
	s.run()
	return s.result(capRate)
}

// Run executes one serving scenario to completion and returns its
// record. See the package comment for the determinism contract.
func Run(cfg Config) (*Result, error) {
	cfg, pt, capRate, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	return runPrepared(cfg, pt, capRate), nil
}

// fleetLabel renders the fleet for the human-readable summary.
func (cfg Config) fleetLabel() string {
	if len(cfg.Fleet) == 0 {
		return fmt.Sprintf("%s ×%d pods (%d core(s) each)", cfg.Spec, cfg.Pods, cfg.CoresPerPod)
	}
	out := ""
	for i, g := range cfg.Fleet {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%s×%d (%d core(s))", g.Device, g.Count, g.Cores)
	}
	return out
}

// Summary renders the human-readable face of the record.
func (r *Result) Summary() string {
	load := 0.0
	if r.CapacityRate > 0 {
		load = r.OfferedRate / r.CapacityRate
	}
	pricing := ""
	if r.Config.Overlap {
		pricing = ", overlap-priced"
	}
	if r.Config.Stats == StatsStreaming {
		pricing += ", streaming stats"
	}
	arrivals := ""
	if len(r.Config.TraceEvents) > 0 || r.Config.TracePath != "" {
		arrivals = ", trace replay"
	}
	out := fmt.Sprintf(
		"serve %s, Set%s, policy %s, batch ≤ %d%s%s\n"+
			"offered %.1f req/s (%.0f%% of capacity %.1f), achieved %.1f req/s over %.4f s\n"+
			"latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  (mean %.3f, max %.3f)\n"+
			"batches %.2f requests/launch, peak queue depth %d\n",
		r.Config.fleetLabel(), r.Config.Set, r.Config.Policy, r.Config.MaxBatch, pricing, arrivals,
		r.OfferedRate, 100*load, r.CapacityRate, r.AchievedRate, r.MakespanS,
		r.Latency.P50S*1e3, r.Latency.P95S*1e3, r.Latency.P99S*1e3, r.Latency.MeanS*1e3, r.Latency.MaxS*1e3,
		r.MeanBatch, r.MaxQueueDepth)
	for _, p := range r.Pods {
		dev := ""
		if p.Device != "" {
			dev = " " + p.Device
		}
		out += fmt.Sprintf("  pod %d%s: served %5d in %4d launches, %5.1f%% busy, peak depth %d\n",
			p.Pod, dev, p.Served, p.Batches, 100*p.Utilization, p.MaxQueueDepth)
	}
	for _, w := range r.Workloads {
		out += fmt.Sprintf("  %-10s %6d requests, p50 %.3f ms, p99 %.3f ms\n",
			w.Workload, w.Requests, w.Latency.P50S*1e3, w.Latency.P99S*1e3)
	}
	for _, c := range r.Classes {
		out += fmt.Sprintf("  class %-10s prio %d: %6d requests, completed %d (shed %d, timed out %d, failed %d), goodput %.1f req/s, p99 %.3f ms\n",
			c.Class, c.Priority, c.Requests, c.Completed, c.Shed, c.TimedOut, c.Failed, c.Goodput, c.Latency.P99S*1e3)
	}
	if c := r.Cost; c != nil {
		out += fmt.Sprintf("cost: $%.2f/hr → %.2f req/s per $/hr ($%.3f per million requests)\n",
			c.DollarPerHour, c.RPSPerDollarHour, c.DollarPerMillion)
	}
	if av := r.Availability; av != nil {
		var down float64
		for _, d := range av.PodDowntimeS {
			down += d
		}
		downFrac := 0.0
		if r.MakespanS > 0 && len(av.PodDowntimeS) > 0 {
			downFrac = down / (r.MakespanS * float64(len(av.PodDowntimeS)))
		}
		out += fmt.Sprintf(
			"faults: goodput %.1f req/s, completed %d / shed %d / timed out %d / failed %d (late %d)\n"+
				"        retries %d, hedges %d (%d won), crashes %d, batch errors %d, fleet downtime %.1f%%\n"+
				"        in-deadline latency p50 %.3f ms  p99 %.3f ms\n",
			av.Goodput, r.Completed, av.Shed, av.TimedOut, av.Failed, av.Late,
			av.Retries, av.Hedges, av.HedgesWon, av.Crashes, av.BatchErrors, 100*downFrac,
			av.LatencyGood.P50S*1e3, av.LatencyGood.P99S*1e3)
	}
	return out
}
