// Package serve is the discrete-event serving simulator: the layer
// that turns the per-operator Schedule IR into an end-to-end system
// study of "heavy traffic from millions of users" (the ROADMAP's north
// star). An open-loop arrival process offers a configurable workload
// mix {HE-Mult, Rotate, Bootstrap, MNIST, HELR} at a fixed rate to a
// fleet of M identical pods; a dynamic batching policy (max batch size
// + max queue delay) groups queued requests of one class into batched
// program launches priced via Program.Batch through the shared
// cross.ScheduleCache; and a dispatch policy (round-robin,
// least-loaded, join-shortest-queue) spreads requests across the
// fleet. The output is one stable JSON record: offered load, achieved
// throughput, pod utilization, queue depth, and p50/p95/p99 latency.
//
// Determinism contract (DESIGN.md §12): a Result is a pure function of
// its Config. Arrivals come from an owned splitmix64 PRNG (no
// dependency on math/rand's stream), the event loop is sequential with
// total event ordering (time, then insertion sequence), and the only
// concurrency — pre-pricing the batch-size × workload service table —
// computes pure Schedules whose values are independent of worker
// count. The JSON encoding of a Result is therefore bit-identical
// across runs and across Parallel values for a fixed seed (tested).
//
// Fault model (DESIGN.md §16): Config.Faults threads the deterministic
// injectors of internal/faults through the event loop — pod
// crash/recover on exponential MTBF/MTTR clocks (an in-flight batch on
// a crashed pod is lost and retried), transient straggler windows that
// multiply a pod's service times, and i.i.d. batch-level transient
// errors — plus the client-side recovery machinery production stacks
// use to survive them: per-request deadlines (a timed-out request is
// never completed), retries with capped exponential backoff and
// deterministic jitter, hedged dispatch with first-wins cancellation,
// queue-depth admission control, and heartbeat-timeout down-pod
// detection (dispatch keeps routing to a just-crashed pod until the
// timeout fires — no oracle knowledge). Fault streams are seeded
// independently of arrivals, so one request trace replays under many
// fault seeds; a nil or zero-valued fault config reproduces the
// fault-free record byte-identically.
//
// Batching model: a batch of b same-class requests is priced as the
// b-replicated program (Program.Batch semantics: operator work scales
// linearly) minus the amortised kernel-launch overhead — stacking b
// operands into each kernel keeps the launch count constant, so b−1 of
// the b per-request dispatch shares are saved (the Fig. 11b batching
// effect). Service time is strictly increasing in b while per-request
// time strictly decreases, which is what makes batching win at high
// load.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"cross/internal/cross"
	"cross/internal/faults"
	"cross/internal/sweep"
)

// Dispatch policies.
const (
	PolicyRoundRobin  = "round-robin"
	PolicyLeastLoaded = "least-loaded"
	PolicyJSQ         = "jsq" // join the shortest queue
)

// Policies lists every dispatch policy.
var Policies = []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyJSQ}

// MixEntry is one workload class and its share of the arrival stream.
// Weights are relative (normalised internally); order is significant
// only for deterministic tie-breaks and the JSON echo.
type MixEntry struct {
	Workload string  `json:"workload"`
	Weight   float64 `json:"weight"`
}

// DefaultMix is the standard serving mix: operator traffic dominated
// by cheap ops with a tail of full MNIST inferences.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Workload: sweep.WorkloadHEMult, Weight: 0.5},
		{Workload: sweep.WorkloadRotate, Weight: 0.3},
		{Workload: sweep.WorkloadMNIST, Weight: 0.2},
	}
}

// Config selects one serving scenario. The zero value resolves to a
// 4-pod TPUv6e fleet under Set B serving DefaultMix at 70% of fleet
// capacity with batching up to 8. The resolved Config is echoed in
// the Result, so a record is self-describing and reproducible.
type Config struct {
	Seed int64 `json:"seed"` // arrival PRNG seed (0 → 1)

	Spec        string `json:"spec"`          // device name from the cross registry (default TPUv6e)
	Set         string `json:"set"`           // parameter-set letter (default "B")
	Pods        int    `json:"pods"`          // fleet size M (default 4)
	CoresPerPod int    `json:"cores_per_pod"` // cores/GPUs per fleet unit (default 1)

	Policy string `json:"policy"` // dispatch policy (default round-robin)

	// Rate is the offered load in requests/s; ≤ 0 resolves to 70% of
	// the fleet's max-batch capacity (the echoed Config carries the
	// resolved value).
	Rate float64 `json:"rate"`

	// HorizonS is the arrival window in simulated seconds; requests
	// arriving within it are all served to completion (the simulation
	// drains), so overload shows up as makespan ≫ horizon.
	HorizonS float64 `json:"horizon_s"`

	// MaxBatch caps the per-launch batch size (default 8; 1 disables
	// batching). MaxDelayS caps how long an idle pod holds a non-full
	// batch open waiting for more same-class arrivals (0 = launch as
	// soon as the pod is free; batches then form only from backlog).
	MaxBatch  int     `json:"max_batch"`
	MaxDelayS float64 `json:"max_delay_s"`

	Mix []MixEntry `json:"mix"` // workload mix (default DefaultMix)

	// Overlap prices service times at Schedule.OverlappedTotal (the
	// overlap-aware DAG makespan) instead of the serial SerialTotal —
	// the downstream half of the Schedule.PricedTotal switch. Part of
	// the record schema: two runs differing only in Overlap are
	// distinguishable from their echoed Configs.
	Overlap bool `json:"overlap"`

	// Faults enables the deterministic fault-injection and recovery
	// layer (DESIGN.md §16): pod crash/recover, transient stragglers,
	// batch-level transient errors, per-request deadlines, retries with
	// capped backoff, hedged dispatch, and admission control. nil — or
	// a pointer to the zero value, which withDefaults collapses to nil
	// — reproduces the fault-free Result byte-identically.
	Faults *faults.Config `json:"faults,omitempty"`

	// Parallel is the worker count for pre-pricing the service-time
	// table; ≤ 0 means NumCPU. Results are bit-identical at every
	// value, so it is excluded from the record schema.
	Parallel int `json:"-"`
}

// withDefaults resolves zero-value fields (Rate is resolved later,
// after pricing, because auto-rate needs the capacity).
func (cfg Config) withDefaults() Config {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Spec == "" {
		cfg.Spec = "TPUv6e"
	}
	if cfg.Set == "" {
		cfg.Set = "B"
	}
	if cfg.Pods == 0 {
		cfg.Pods = 4
	}
	if cfg.CoresPerPod == 0 {
		cfg.CoresPerPod = 1
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyRoundRobin
	}
	if cfg.HorizonS == 0 {
		cfg.HorizonS = 0.25
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}
	if cfg.Faults != nil {
		if cfg.Faults.IsZero() {
			cfg.Faults = nil // zero-valued faults ≡ fault-free, byte-identically
		} else {
			f := cfg.Faults.WithDefaults(cfg.HorizonS)
			cfg.Faults = &f // copy: never mutate the caller's config
		}
	}
	return cfg
}

// validate rejects configurations the simulator cannot price.
func (cfg Config) validate() error {
	if _, ok := cross.TargetInfoByName(cfg.Spec); !ok {
		return fmt.Errorf("serve: unknown device %q (valid: %s)", cfg.Spec, cross.TargetNames())
	}
	if _, err := cross.NamedSet(cfg.Set); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if cfg.Pods < 1 {
		return fmt.Errorf("serve: fleet needs at least one pod, got %d", cfg.Pods)
	}
	if cfg.CoresPerPod < 1 {
		return fmt.Errorf("serve: pods need at least one core, got %d", cfg.CoresPerPod)
	}
	valid := false
	for _, p := range Policies {
		if cfg.Policy == p {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("serve: unknown policy %q (have %v)", cfg.Policy, Policies)
	}
	if cfg.HorizonS <= 0 {
		return fmt.Errorf("serve: horizon must be positive, got %g", cfg.HorizonS)
	}
	if cfg.MaxBatch < 1 {
		return fmt.Errorf("serve: max batch must be ≥ 1, got %d", cfg.MaxBatch)
	}
	if cfg.MaxDelayS < 0 {
		return fmt.Errorf("serve: max queue delay must be ≥ 0, got %g", cfg.MaxDelayS)
	}
	// withDefaults guarantees a non-empty mix, so positive weights and
	// distinct workloads are all that is left to check. Duplicates must
	// be rejected: two entries for one workload would silently become
	// two classes with split weights and misleading per-workload stats.
	seen := make(map[string]bool, len(cfg.Mix))
	for _, e := range cfg.Mix {
		if e.Weight <= 0 {
			return fmt.Errorf("serve: mix weight for %q must be positive, got %g", e.Workload, e.Weight)
		}
		if seen[e.Workload] {
			return fmt.Errorf("%w: %q appears more than once", ErrDuplicateWorkload, e.Workload)
		}
		seen[e.Workload] = true
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// ErrDuplicateWorkload is returned when Config.Mix names one workload
// in more than one entry.
var ErrDuplicateWorkload = errors.New("serve: duplicate workload in mix")

// LatencyStats summarises a request-latency distribution (seconds).
// Quantiles are nearest-rank over the completed requests.
type LatencyStats struct {
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P95S  float64 `json:"p95_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

// PodStats is one pod's share of the run.
type PodStats struct {
	Pod           int     `json:"pod"`
	Served        int     `json:"served"`  // requests completed
	Batches       int     `json:"batches"` // program launches
	BusyS         float64 `json:"busy_s"`
	Utilization   float64 `json:"utilization"` // BusyS / makespan
	MaxQueueDepth int     `json:"max_queue_depth"`
}

// WorkloadStats is one request class's share of the run. Requests
// counts delivered requests of the class (fault-free, every arrival is
// delivered, so it equals the arrival count).
type WorkloadStats struct {
	Workload string       `json:"workload"`
	Requests int          `json:"requests"`
	Latency  LatencyStats `json:"latency"`
}

// AvailabilityStats is the record's availability section, present
// only when the fault layer is enabled (Config.Faults non-nil).
// Completed + Shed + TimedOut + Failed always equals Requests.
type AvailabilityStats struct {
	// Goodput is requests completed within deadline per second of
	// makespan — the "requests/sec at N nines" capacity axis.
	Goodput float64 `json:"goodput"`

	Shed     int `json:"shed"`      // rejected by admission control
	TimedOut int `json:"timed_out"` // deadline expired before delivery
	Failed   int `json:"failed"`    // lost and retry budget exhausted
	Late     int `json:"late"`      // delivered after deadline (subset of timed out)

	Retries     int `json:"retries"`      // re-dispatches after lost launches
	Hedges      int `json:"hedges"`       // hedge launches issued
	HedgesWon   int `json:"hedges_won"`   // hedges that beat their primary
	Crashes     int `json:"crashes"`      // pod crash events
	BatchErrors int `json:"batch_errors"` // transiently failed launches

	// PodDowntimeS is each pod's total crashed time inside the run.
	PodDowntimeS []float64 `json:"pod_downtime_s"`

	// LatencyGood conditions the latency distribution on requests
	// completed within their deadline (Latency includes late
	// deliveries).
	LatencyGood LatencyStats `json:"latency_good"`
}

// Result is one serving run: the resolved Config plus the measured
// system behaviour. Field names are the stable JSON record schema
// (DESIGN.md §12); the encoding is bit-identical across runs and
// Parallel values for a fixed Config.
type Result struct {
	Config Config `json:"config"`

	// CapacityRate is the fleet's sustainable throughput ceiling
	// (requests/s) at full batches under the configured mix — the
	// saturation asymptote AchievedRate approaches under overload.
	CapacityRate float64 `json:"capacity_rate"`

	OfferedRate float64 `json:"offered_rate"` // resolved arrival rate
	Requests    int     `json:"requests"`     // arrivals in the horizon

	// Completed counts requests that finished within their deadline,
	// derived from finish events — fault-free the run drains, so it
	// equals Requests; under faults the rest are shed, timed out, or
	// failed (see Availability).
	Completed    int     `json:"completed"`
	MakespanS    float64 `json:"makespan_s"`    // last delivery time
	AchievedRate float64 `json:"achieved_rate"` // Completed / MakespanS

	MeanBatch     float64 `json:"mean_batch"`      // delivered requests per launch
	MaxQueueDepth int     `json:"max_queue_depth"` // fleet-wide peak

	Latency   LatencyStats    `json:"latency"`
	Pods      []PodStats      `json:"pods"`
	Workloads []WorkloadStats `json:"workloads"`

	// Availability is present only when Config.Faults is enabled.
	Availability *AvailabilityStats `json:"availability,omitempty"`
}

// priceTable is the pre-priced service-time model: for every mix class
// w, the base single-request latency and the batched service time for
// every batch size 1..MaxBatch.
type priceTable struct {
	base []float64   // [class] single-request schedule total
	svc  [][]float64 // [class][b-1] batched service time, dispatch-amortised
}

// price lowers every (class, batch) service time concurrently through
// one shared ScheduleCache. Schedules are pure functions of (target,
// params, operator), so the resulting table is independent of the
// worker count.
func price(cfg Config) (*priceTable, error) {
	// One probe target supplies the per-launch dispatch overhead the
	// batching amortisation uses (XLA dispatch on TPUs, CUDA kernel
	// launch on GPUs) — identical across a fleet of one part.
	probe, err := cross.TargetByName(cfg.Spec, cfg.CoresPerPod)
	if err != nil {
		return nil, err
	}
	dispatchOverhead := probe.Core().Spec.DispatchOverhead
	params, err := cross.NamedSet(cfg.Set)
	if err != nil {
		return nil, err
	}

	type task struct{ class, batch int }
	tasks := make([]task, 0, len(cfg.Mix)*cfg.MaxBatch)
	for w := range cfg.Mix {
		for b := 1; b <= cfg.MaxBatch; b++ {
			tasks = append(tasks, task{class: w, batch: b})
		}
	}

	raw := make([][]float64, len(cfg.Mix))
	launches := make([]int, len(cfg.Mix))
	for w := range raw {
		raw[w] = make([]float64, cfg.MaxBatch)
	}

	cache := cross.NewScheduleCache()
	errs := make([]error, len(tasks))
	idx := make(chan int, len(tasks))
	for i := range tasks {
		idx <- i
	}
	close(idx)

	workers := cfg.Parallel
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t := tasks[i]
				// Targets are stateful trace accumulators, so every task
				// builds its own; only the schedule cache is shared.
				tgt, err := cross.TargetByName(cfg.Spec, cfg.CoresPerPod)
				if err != nil {
					errs[i] = err
					continue
				}
				comp, err := cross.Compile(tgt, params)
				if err != nil {
					errs[i] = err
					continue
				}
				prog, err := sweep.BuildProgram(comp, cfg.Mix[t.class].Workload)
				if err != nil {
					errs[i] = err
					continue
				}
				s := prog.WithCache(cache).Batch(t.batch).Lower()
				raw[t.class][t.batch-1] = s.PricedTotal(cfg.Overlap)
				if t.batch == 1 {
					// Kernel launches per request (collectives are not XLA
					// launches and are not amortised by operand stacking).
					launches[t.class] = s.Kernels.Total() - s.Kernels.Collectives
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: pricing %s×%d: %w", cfg.Mix[tasks[i].class].Workload, tasks[i].batch, err)
		}
	}

	// Amortise dispatch: stacking b requests into each kernel keeps the
	// launch count constant, so a b-batch saves (b−1) of the per-request
	// dispatch shares (Fig. 11b). Guarded: the saving can never exceed
	// the request itself.
	pt := &priceTable{base: make([]float64, len(cfg.Mix)), svc: raw}
	for w := range cfg.Mix {
		pt.base[w] = raw[w][0]
		disp := float64(launches[w]) * dispatchOverhead
		if disp >= pt.base[w] {
			disp = 0
		}
		for b := 2; b <= cfg.MaxBatch; b++ {
			raw[w][b-1] -= float64(b-1) * disp
		}
	}
	return pt, nil
}

// capacity returns the fleet's sustainable request rate at full
// batches: Pods / (mix-weighted per-request service time at MaxBatch).
func (pt *priceTable) capacity(cfg Config) float64 {
	var sumW, mean float64
	for _, e := range cfg.Mix {
		sumW += e.Weight
	}
	for w, e := range cfg.Mix {
		perReq := pt.svc[w][cfg.MaxBatch-1] / float64(cfg.MaxBatch)
		mean += (e.Weight / sumW) * perReq
	}
	if mean <= 0 {
		return 0
	}
	return float64(cfg.Pods) / mean
}

// meanBase is the mix-weighted single-request service time — the
// scale the fault layer's auto-derived knobs (retry backoff base,
// heartbeat timeout) resolve against.
func (pt *priceTable) meanBase(cfg Config) float64 {
	var sumW, mean float64
	for _, e := range cfg.Mix {
		sumW += e.Weight
	}
	for w, e := range cfg.Mix {
		mean += (e.Weight / sumW) * pt.base[w]
	}
	return mean
}

// autoRateFraction is the load factor auto-rate resolves to: busy
// enough to exercise queueing, below the saturation knee.
const autoRateFraction = 0.7

// maxRequests bounds the arrival count so an absurd rate × horizon
// cannot exhaust memory.
const maxRequests = 2_000_000

// prepare resolves and validates the config, prices the service-time
// table, and resolves the offered rate against fleet capacity — the
// shared front half of Run and Chaos (which re-uses one table across
// a whole fault grid; the table never depends on the fault config).
func prepare(cfg Config) (Config, *priceTable, float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return cfg, nil, 0, err
	}
	pt, err := price(cfg)
	if err != nil {
		return cfg, nil, 0, err
	}
	capRate := pt.capacity(cfg)
	if cfg.Rate <= 0 {
		cfg.Rate = autoRateFraction * capRate
	}
	if cfg.Rate <= 0 {
		return cfg, nil, 0, fmt.Errorf("serve: resolved arrival rate is zero (capacity %g)", capRate)
	}
	if cfg.Rate*cfg.HorizonS > maxRequests {
		return cfg, nil, 0, fmt.Errorf("serve: rate %g × horizon %g s exceeds the %d-request cap",
			cfg.Rate, cfg.HorizonS, maxRequests)
	}
	return cfg, pt, capRate, nil
}

// runPrepared executes one prepared scenario: service-time-derived
// fault knobs are resolved here (they need the priced table), then
// the event loop runs to completion. The resolved fault config is
// echoed in the record, so a fault run is self-describing.
func runPrepared(cfg Config, pt *priceTable, capRate float64) *Result {
	if cfg.Faults != nil {
		f := *cfg.Faults
		mean := pt.meanBase(cfg)
		if f.MaxRetries > 0 && f.RetryBackoffS == 0 {
			f.RetryBackoffS = mean
		}
		if f.Crashes() && f.HeartbeatS == 0 {
			f.HeartbeatS = mean
		}
		cfg.Faults = &f
	}
	s := newSim(cfg, pt)
	s.run()
	return s.result(capRate)
}

// Run executes one serving scenario to completion and returns its
// record. See the package comment for the determinism contract.
func Run(cfg Config) (*Result, error) {
	cfg, pt, capRate, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	return runPrepared(cfg, pt, capRate), nil
}

// Summary renders the human-readable face of the record.
func (r *Result) Summary() string {
	load := 0.0
	if r.CapacityRate > 0 {
		load = r.OfferedRate / r.CapacityRate
	}
	pricing := ""
	if r.Config.Overlap {
		pricing = ", overlap-priced"
	}
	out := fmt.Sprintf(
		"serve %s ×%d pods (%d core(s) each), Set%s, policy %s, batch ≤ %d%s\n"+
			"offered %.1f req/s (%.0f%% of capacity %.1f), achieved %.1f req/s over %.4f s\n"+
			"latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  (mean %.3f, max %.3f)\n"+
			"batches %.2f requests/launch, peak queue depth %d\n",
		r.Config.Spec, r.Config.Pods, r.Config.CoresPerPod, r.Config.Set, r.Config.Policy, r.Config.MaxBatch, pricing,
		r.OfferedRate, 100*load, r.CapacityRate, r.AchievedRate, r.MakespanS,
		r.Latency.P50S*1e3, r.Latency.P95S*1e3, r.Latency.P99S*1e3, r.Latency.MeanS*1e3, r.Latency.MaxS*1e3,
		r.MeanBatch, r.MaxQueueDepth)
	for _, p := range r.Pods {
		out += fmt.Sprintf("  pod %d: served %5d in %4d launches, %5.1f%% busy, peak depth %d\n",
			p.Pod, p.Served, p.Batches, 100*p.Utilization, p.MaxQueueDepth)
	}
	for _, w := range r.Workloads {
		out += fmt.Sprintf("  %-10s %6d requests, p50 %.3f ms, p99 %.3f ms\n",
			w.Workload, w.Requests, w.Latency.P50S*1e3, w.Latency.P99S*1e3)
	}
	if av := r.Availability; av != nil {
		var down float64
		for _, d := range av.PodDowntimeS {
			down += d
		}
		downFrac := 0.0
		if r.MakespanS > 0 && len(av.PodDowntimeS) > 0 {
			downFrac = down / (r.MakespanS * float64(len(av.PodDowntimeS)))
		}
		out += fmt.Sprintf(
			"faults: goodput %.1f req/s, completed %d / shed %d / timed out %d / failed %d (late %d)\n"+
				"        retries %d, hedges %d (%d won), crashes %d, batch errors %d, fleet downtime %.1f%%\n"+
				"        in-deadline latency p50 %.3f ms  p99 %.3f ms\n",
			av.Goodput, r.Completed, av.Shed, av.TimedOut, av.Failed, av.Late,
			av.Retries, av.Hedges, av.HedgesWon, av.Crashes, av.BatchErrors, 100*downFrac,
			av.LatencyGood.P50S*1e3, av.LatencyGood.P99S*1e3)
	}
	return out
}
