package serve

import (
	"encoding/json"
	"testing"
)

// mixedFleet is the canonical heterogeneous test fleet: two TPU pods
// plus one H100 node — two different backends, so per-group pricing
// differences are maximal.
func mixedFleet() []FleetGroup {
	return []FleetGroup{
		{Device: "TPUv6e", Cores: 1, Count: 2},
		{Device: "H100", Cores: 1, Count: 1},
	}
}

// TestFleetPerGroupDispatchOverhead is the satellite-1 regression: in
// a mixed TPUv6e+H100 fleet, each group's batching amortisation must
// use its own part's dispatch overhead. The per-group tables of the
// mixed fleet must therefore be bit-identical to the tables priced for
// the corresponding homogeneous fleets — pricing a group can never
// depend on what else is in the fleet.
func TestFleetPerGroupDispatchOverhead(t *testing.T) {
	mixed := Config{Set: "B", Fleet: mixedFleet(), MaxBatch: 8, Mix: hemultOnly()}.withDefaults()
	mpt, err := price(mixed)
	if err != nil {
		t.Fatal(err)
	}
	for gi, dev := range []string{"TPUv6e", "H100"} {
		homo := Config{Spec: dev, Set: "B", Pods: 1, MaxBatch: 8, Mix: hemultOnly()}.withDefaults()
		hpt, err := price(homo)
		if err != nil {
			t.Fatal(err)
		}
		for w := range mixed.Mix {
			if mpt.groups[gi].base[w] != hpt.groups[0].base[w] {
				t.Errorf("group %s base[%d]: mixed %g != homogeneous %g",
					dev, w, mpt.groups[gi].base[w], hpt.groups[0].base[w])
			}
			for b := 0; b < mixed.MaxBatch; b++ {
				if mpt.groups[gi].svc[w][b] != hpt.groups[0].svc[w][b] {
					t.Errorf("group %s svc[%d][%d]: mixed %g != homogeneous %g (dispatch overhead amortised with the wrong part?)",
						dev, w, b, mpt.groups[gi].svc[w][b], hpt.groups[0].svc[w][b])
				}
			}
		}
	}
	// The two backends genuinely differ — otherwise this test proves
	// nothing about per-group amortisation.
	if mpt.groups[0].svc[0][mixed.MaxBatch-1] == mpt.groups[1].svc[0][mixed.MaxBatch-1] {
		t.Fatal("TPUv6e and H100 priced identically; pick more distinct groups")
	}
}

// TestServeHeteroFleet: a mixed fleet drains, pods are labelled with
// their group device, pod indices follow declaration order, the cost
// section is present, and the record is byte-deterministic.
func TestServeHeteroFleet(t *testing.T) {
	cfg := Config{
		Seed: 3, Set: "B", Fleet: mixedFleet(),
		Policy: PolicyLeastLoaded, HorizonS: 0.02, MaxBatch: 4,
		Mix: hemultOnly(),
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 || r.Completed != r.Requests {
		t.Fatalf("mixed fleet did not drain: %d of %d", r.Completed, r.Requests)
	}
	if len(r.Pods) != 3 {
		t.Fatalf("want 3 pods, got %d", len(r.Pods))
	}
	for i, want := range []string{"TPUv6e", "TPUv6e", "H100"} {
		if r.Pods[i].Device != want {
			t.Errorf("pod %d device %q, want %q", i, r.Pods[i].Device, want)
		}
	}
	if r.Cost == nil || r.Cost.DollarPerHour <= 0 || r.Cost.RPSPerDollarHour <= 0 {
		t.Fatalf("cost section missing or empty: %+v", r.Cost)
	}
	// Echoed fleet carries resolved prices; legacy fields stay unset.
	if r.Config.Spec != "" || r.Config.Pods != 0 {
		t.Errorf("fleet config leaked legacy fields: spec %q pods %d", r.Config.Spec, r.Config.Pods)
	}
	for i, g := range r.Config.Fleet {
		if g.DollarPerHour <= 0 {
			t.Errorf("fleet group %d: unresolved dollar_per_hour", i)
		}
	}
	first, _ := json.Marshal(r)
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(r2)
	if string(first) != string(second) {
		t.Fatal("mixed-fleet record not deterministic")
	}
}

// TestFleetCapacityIsSumOfGroups: a mixed fleet's capacity equals the
// sum of the homogeneous capacities of its groups.
func TestFleetCapacityIsSumOfGroups(t *testing.T) {
	capOf := func(cfg Config) float64 {
		cfg = cfg.withDefaults()
		pt, err := price(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pt.capacity(cfg)
	}
	mixed := capOf(Config{Set: "B", Fleet: mixedFleet(), MaxBatch: 4, Mix: hemultOnly()})
	tpu := capOf(Config{Spec: "TPUv6e", Set: "B", Pods: 2, MaxBatch: 4, Mix: hemultOnly()})
	gpu := capOf(Config{Spec: "H100", Set: "B", Pods: 1, MaxBatch: 4, Mix: hemultOnly()})
	if diff := mixed - (tpu + gpu); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mixed capacity %g != %g + %g", mixed, tpu, gpu)
	}
}

// TestPolicyCheapest: under light load on a fleet with a wide price
// spread, cost-aware dispatch concentrates traffic on the cheap group
// while every request still completes.
func TestPolicyCheapest(t *testing.T) {
	cfg := Config{
		Seed: 5, Set: "B",
		Fleet: []FleetGroup{
			{Device: "TPUv5e", Cores: 1, Count: 1, DollarPerHour: 1},
			{Device: "TPUv5e", Cores: 1, Count: 1, DollarPerHour: 100},
		},
		Policy: PolicyCheapest, HorizonS: 0.05, MaxBatch: 2,
		Rate: 50, // far below one pod's capacity: no queueing pressure
		Mix:  hemultOnly(),
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != r.Requests || r.Requests == 0 {
		t.Fatalf("cheapest policy lost requests: %d of %d", r.Completed, r.Requests)
	}
	if r.Pods[0].Served <= r.Pods[1].Served {
		t.Errorf("cheapest policy ignored prices: cheap pod served %d, expensive pod %d",
			r.Pods[0].Served, r.Pods[1].Served)
	}
}

// TestFleetValidation covers the fleet-specific config errors.
func TestFleetValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fleet+spec", Config{Spec: "TPUv6e", Fleet: mixedFleet()}},
		{"fleet+pods", Config{Pods: 2, Fleet: mixedFleet()}},
		{"unknown device", Config{Fleet: []FleetGroup{{Device: "TPUv9", Count: 1}}}},
		{"zero count", Config{Fleet: []FleetGroup{{Device: "TPUv6e", Count: 0}}}},
		{"negative dollars", Config{Fleet: []FleetGroup{{Device: "TPUv6e", Count: 1, DollarPerHour: -1}}}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}

// TestParseFleet pins the CLI fleet grammar, dash-safe for device
// names like A100-80GB.
func TestParseFleet(t *testing.T) {
	fleet, err := ParseFleet("TPUv6e:1:4+A100-80GB:8:2:31.2")
	if err != nil {
		t.Fatal(err)
	}
	want := []FleetGroup{
		{Device: "TPUv6e", Cores: 1, Count: 4},
		{Device: "A100-80GB", Cores: 8, Count: 2, DollarPerHour: 31.2},
	}
	if len(fleet) != len(want) {
		t.Fatalf("got %d groups, want %d", len(fleet), len(want))
	}
	for i := range want {
		if fleet[i] != want[i] {
			t.Errorf("group %d: got %+v, want %+v", i, fleet[i], want[i])
		}
	}
	for _, bad := range []string{"", "TPUv6e", "TPUv6e:1", "TPUv6e:x:1", "TPUv6e:1:1:2:3"} {
		if _, err := ParseFleet(bad); err == nil {
			t.Errorf("ParseFleet(%q) accepted", bad)
		}
	}
	fleets, err := ParseFleets("TPUv6e:1:4,TPUv6e:1:2+H100:1:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fleets) != 2 || len(fleets[1]) != 2 {
		t.Fatalf("ParseFleets shape wrong: %+v", fleets)
	}
}
