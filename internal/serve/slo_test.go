package serve

import (
	"testing"

	"cross/internal/sweep"
)

// twoClassConfig: one fleet, two workloads mapped onto two SLO
// classes with distinct priorities.
func twoClassConfig() Config {
	return Config{
		Seed: 11, Spec: "TPUv5e", Set: "B", Pods: 1,
		Policy: PolicyJSQ, HorizonS: 0.05, MaxBatch: 2,
		Mix: []MixEntry{
			{Workload: sweep.WorkloadHEMult, Weight: 1, Class: "interactive"},
			{Workload: sweep.WorkloadRotate, Weight: 1, Class: "batch"},
		},
		Classes: []SLOClass{
			{Name: "interactive", Priority: 10},
			{Name: "batch", Priority: 0},
		},
	}
}

// TestSLOClassStatsPresent: per-class sections appear in the record,
// cover every request exactly once, and are byte-deterministic.
func TestSLOClassStatsPresent(t *testing.T) {
	r, err := Run(twoClassConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 2 {
		t.Fatalf("want 2 class sections, got %d", len(r.Classes))
	}
	total := 0
	for _, cs := range r.Classes {
		total += cs.Requests
	}
	if total != r.Requests {
		t.Errorf("class sections cover %d requests, fleet saw %d", total, r.Requests)
	}
	if r.Classes[0].Class != "interactive" || r.Classes[0].Priority != 10 {
		t.Errorf("class section order/identity wrong: %+v", r.Classes[0])
	}
}

// TestSLOPriorityLowersLatency: under sustained overload, the
// high-priority class must see a lower p99 than the low-priority class
// sharing the same pod. Strict priority is the whole point of the
// seam; this is its observable effect.
func TestSLOPriorityLowersLatency(t *testing.T) {
	cfg := twoClassConfig()
	cfg.Rate = 0 // auto: 1.5× capacity per withDefaults — heavy backlog
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hi, lo *ClassStats
	for i := range r.Classes {
		switch r.Classes[i].Class {
		case "interactive":
			hi = &r.Classes[i]
		case "batch":
			lo = &r.Classes[i]
		}
	}
	if hi == nil || lo == nil {
		t.Fatal("missing class sections")
	}
	if hi.Completed == 0 || lo.Completed == 0 {
		t.Fatalf("both classes must complete work: hi %d lo %d", hi.Completed, lo.Completed)
	}
	if hi.Latency.P99S >= lo.Latency.P99S {
		t.Errorf("priority had no effect: interactive p99 %.6fs >= batch p99 %.6fs",
			hi.Latency.P99S, lo.Latency.P99S)
	}
}

// TestSLOClassDeadlineWithoutFaults: a class deadline must time
// requests out even when the fault layer is disabled — deadlines
// belong to the SLO seam, not the fault seam.
func TestSLOClassDeadlineWithoutFaults(t *testing.T) {
	cfg := twoClassConfig()
	cfg.Rate = 0 // overload: queues grow, waits exceed any tight deadline
	cfg.Classes[1].DeadlineS = 1e-6
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range r.Classes {
		switch cs.Class {
		case "batch":
			if cs.TimedOut == 0 {
				t.Error("deadline class reports no timeouts")
			}
		case "interactive":
			if cs.TimedOut != 0 {
				t.Errorf("deadline leaked across classes: interactive timed out %d", cs.TimedOut)
			}
		}
	}
}

// TestSLOClassQueueLimitSheds: a class admission limit sheds that
// class at the front door while the unlimited class is untouched.
func TestSLOClassQueueLimitSheds(t *testing.T) {
	cfg := twoClassConfig()
	cfg.Rate = 0 // overload so the queue cap binds
	cfg.Classes[1].QueueLimit = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hi, lo *ClassStats
	for i := range r.Classes {
		switch r.Classes[i].Class {
		case "interactive":
			hi = &r.Classes[i]
		case "batch":
			lo = &r.Classes[i]
		}
	}
	if lo.Shed == 0 {
		t.Error("queue-limited class shed nothing under overload")
	}
	if hi.Shed != 0 {
		t.Errorf("unlimited class shed %d requests", hi.Shed)
	}
	if got := lo.Completed + lo.Shed + lo.TimedOut + lo.Failed; got != lo.Requests {
		t.Errorf("shed class accounting broken: %d of %d requests accounted", got, lo.Requests)
	}
}

// TestSLOValidation covers the class-specific config errors.
func TestSLOValidation(t *testing.T) {
	base := twoClassConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty class name", func(c *Config) { c.Classes[0].Name = "" }},
		{"duplicate class name", func(c *Config) { c.Classes[1].Name = "interactive" }},
		{"negative deadline", func(c *Config) { c.Classes[0].DeadlineS = -1 }},
		{"negative queue limit", func(c *Config) { c.Classes[0].QueueLimit = -1 }},
		{"unknown class in mix", func(c *Config) { c.Mix[0].Class = "premium" }},
		{"class without classes", func(c *Config) { c.Classes = nil }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Mix = append([]MixEntry(nil), base.Mix...)
		cfg.Classes = append([]SLOClass(nil), base.Classes...)
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}

// TestSLOZeroPriorityMatchesLegacy: classes that only *name* traffic
// (all priorities zero, no deadlines, no limits) must not perturb the
// simulation — the request timeline is identical to the same config
// with no classes at all, proving the legacy path is the degenerate
// case of the SLO seam rather than a separate code path.
func TestSLOZeroPriorityMatchesLegacy(t *testing.T) {
	cfg := twoClassConfig()
	cfg.Classes = []SLOClass{{Name: "interactive"}, {Name: "batch"}}
	with, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := cfg
	plain.Classes = nil
	plain.Mix = []MixEntry{
		{Workload: sweep.WorkloadHEMult, Weight: 1},
		{Workload: sweep.WorkloadRotate, Weight: 1},
	}
	without, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if with.Requests != without.Requests ||
		with.Completed != without.Completed ||
		with.Latency != without.Latency ||
		with.AchievedRate != without.AchievedRate {
		t.Errorf("zero-priority classes perturbed the sim:\nwith:    %+v\nwithout: %+v",
			with.Latency, without.Latency)
	}
}
