package serve

import (
	"container/heap"
	"math"

	"cross/internal/faults"
)

// rng is a splitmix64 PRNG. The simulator owns its generator rather
// than using math/rand so the determinism contract depends on nothing
// but this file: the stream for a given seed can never drift with a
// toolchain upgrade. (The fault model owns separate streams in
// internal/faults, seeded independently — the same arrival trace
// replays under different fault seeds and vice versa.)
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential draw with the given rate (mean 1/rate) —
// the open-loop Poisson inter-arrival time.
func (r *rng) exp(rate float64) float64 {
	// 1−u ∈ (0, 1], so the log argument is never zero.
	return -math.Log(1-r.float64()) / rate
}

// Event kinds, in deterministic tie-break vocabulary: events at the
// same instant fire in insertion order (seq), which the single
// sequential loop makes total.
const (
	evArrival  = iota
	evDeadline // batch-hold deadline (MaxDelayS)
	evDone     // a launch finished on a pod (aux = exec id)
	evCrash    // pod crash (fault injector)
	evRecover  // pod recovery
	evSuspect  // heartbeat timeout: mark a crashed pod down (aux = gen)
	evSlowOn   // straggler window opens
	evSlowOff  // straggler window closes
	evTimeout  // per-request deadline expired (req)
	evRetry    // backoff elapsed: re-dispatch a lost request (req)
	evHedge    // hedge delay elapsed for a batch (aux = batch id)
)

type event struct {
	at   float64
	seq  int64
	kind int
	pod  int
	req  int // request index (arrival/timeout/retry)
	aux  int // exec id (done), batch id (hedge), pod generation (suspect)
}

// eventHeap is a min-heap on (time, insertion sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Request states. Terminal states are stDone (delivered within
// deadline), stLate (delivered after its deadline — already counted
// timed out), stTimedOut, stShed, and stFailed.
const (
	stQueued    = iota // waiting in a pod's class FIFO
	stInFlight         // member of a running launch
	stRetryWait        // lost to a crash/batch error; backoff pending
	stDone
	stLate
	stTimedOut
	stShed
	stFailed
)

// request is one offered unit of work.
type request struct {
	class    int // mix index
	arrival  float64
	finish   float64
	deadline float64 // absolute; +Inf when none
	state    int
	pod      int // queue owner while stQueued
	retries  int // re-dispatches consumed
}

// exec is one physical launch of a batch on one pod (hedging can run
// two execs of the same logical batch).
type exec struct {
	batch int
	pod   int
	start float64
	svc   float64 // actual (straggler-inflated) service time
	fails bool    // transient batch error drawn at launch
	hedge bool
}

// batchState is one logical batch: the member requests plus the execs
// still running it. At most two execs are ever live (the primary and
// one hedge — evHedge refuses a second hedge), so the live set is a
// fixed array, not a heap-allocated slice.
type batchState struct {
	class   int
	members []int
	live    [2]int // exec ids still running
	nlive   int
	won     bool // delivered (first exec to finish cleanly wins)
	hedged  bool
}

func (b *batchState) addLive(ei int) {
	b.live[b.nlive] = ei
	b.nlive++
}

func (b *batchState) removeLive(ei int) {
	switch {
	case b.nlive > 0 && b.live[0] == ei:
		b.live[0] = b.live[1]
		b.nlive--
	case b.nlive > 1 && b.live[1] == ei:
		b.nlive--
	}
}

// intQueue is an index-tracked FIFO of request ids: O(1) amortised
// push/pop via a head offset, replacing the O(n) slice splice the
// pre-refactor per-class queues paid on every timeout dequeue (which
// dominates at 10^6+-request horizons). The backing array compacts
// once the dead prefix is both long and the majority, so memory stays
// proportional to the live queue.
type intQueue struct {
	buf  []int
	head int
}

func (q *intQueue) push(id int) { q.buf = append(q.buf, id) }
func (q *intQueue) peek() int   { return q.buf[q.head] }
func (q *intQueue) pop() int {
	v := q.buf[q.head]
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}
func (q *intQueue) reset() { q.buf = q.buf[:0]; q.head = 0 }

// podState is one pod's runtime state: per-class FIFO queues, the
// running launch, the fault-model state, and its share of the run's
// statistics. Queue removal is lazy: a request that times out while
// queued just stops being stQueued, and its queue entry is discarded
// when it reaches the head — nq tracks the live count per class.
type podState struct {
	queues    []intQueue // per-class FIFOs of request indices
	nq        []int      // per-class live (still-queued) counts
	queued    int
	backlogS  float64 // estimated queued base work (least-loaded/cheapest)
	busy      bool
	cur       int // exec id + 1 while busy (0 = idle); stale evDone detector
	busyUntil float64
	deadline  float64 // earliest armed batching deadline (+Inf when none)

	up        bool    // crashed pods cannot launch
	suspected bool    // heartbeat timeout fired: dispatch skips the pod
	gen       int     // crash generation (stale evSuspect detector)
	slow      float64 // service-time multiplier (1 = healthy)
	downSince float64
	downtimeS float64

	served, batches, maxDepth int
	busyS                     float64
}

// sim is one serving run in flight.
type sim struct {
	cfg     Config
	pt      *priceTable
	fc      *faults.Config // nil = fault-free (bit-identical legacy path)
	inj     *faults.Injector
	reqs    []request
	pods    []podState
	execs   []exec
	batches []batchState
	h       eventHeap
	seq     int64
	rr      int // round-robin cursor
	pending int // requests not yet in a terminal state

	// SLO wiring (identity values when Config.Classes is empty).
	classPrio   []int // [mix class] launch priority
	mixSLO      []int // [mix class] SLO-class index, -1 = implicit default
	classQueued []int // [SLO class] fleet-wide queued count (nil without classes)

	retries, hedges, hedgesWon, crashes, batchErrors int
	shed, timedOut, failed, late                     int
}

func newSim(cfg Config, pt *priceTable) *sim {
	pods := cfg.totalPods()
	s := &sim{cfg: cfg, pt: pt, fc: cfg.Faults, pods: make([]podState, pods)}
	for i := range s.pods {
		s.pods[i].queues = make([]intQueue, len(cfg.Mix))
		s.pods[i].nq = make([]int, len(cfg.Mix))
		s.pods[i].deadline = math.Inf(1)
		s.pods[i].up = true
		s.pods[i].slow = 1
	}

	// SLO wiring: map each mix class to its SLO class (if any), its
	// launch priority, and its effective deadline — the class deadline
	// when set, else the fleet-wide fault deadline, else none.
	s.mixSLO = make([]int, len(cfg.Mix))
	s.classPrio = make([]int, len(cfg.Mix))
	fleetDeadline := math.Inf(1)
	if s.fc != nil && s.fc.DeadlineS > 0 {
		fleetDeadline = s.fc.DeadlineS
	}
	deadlines := make([]float64, len(cfg.Mix))
	sloIdx := make(map[string]int, len(cfg.Classes))
	for i, c := range cfg.Classes {
		sloIdx[c.Name] = i
	}
	if len(cfg.Classes) > 0 {
		s.classQueued = make([]int, len(cfg.Classes))
	}
	for w, e := range cfg.Mix {
		s.mixSLO[w] = -1
		deadlines[w] = fleetDeadline
		if e.Class == "" {
			continue
		}
		si := sloIdx[e.Class]
		s.mixSLO[w] = si
		s.classPrio[w] = cfg.Classes[si].Priority
		if d := cfg.Classes[si].DeadlineS; d > 0 {
			deadlines[w] = d
		}
	}

	// Arrivals from the configured source: the seeded Poisson process
	// (the legacy stream, draw-for-draw identical), trace replay, or a
	// caller-supplied source. All arrival events are pushed up front so
	// their heap sequence numbers — and therefore same-instant
	// tie-breaks — stay deterministic.
	src := cfg.Source
	if src == nil {
		if len(cfg.TraceEvents) > 0 {
			classOf := make(map[string]int, len(cfg.Mix))
			for w, e := range cfg.Mix {
				classOf[e.Workload] = w
			}
			src = &traceSource{events: cfg.TraceEvents, classOf: classOf, horizon: cfg.HorizonS}
		} else {
			src = newPoissonSource(cfg.Seed, cfg.Rate, cfg.HorizonS, cfg.Mix)
		}
	}
	for {
		t, class, ok := src.Next()
		if !ok {
			break
		}
		s.reqs = append(s.reqs, request{class: class, arrival: t, deadline: t + deadlines[class]})
	}
	s.pending = len(s.reqs)
	for i, r := range s.reqs {
		s.push(event{at: r.arrival, kind: evArrival, req: i})
	}

	// Fault timelines: each pod's first crash and first straggler
	// window, drawn from its own streams (no dependency on the request
	// stream, and — because streams are split per pod index — no
	// dependency on how the fleet is grouped). Subsequent events chain
	// from the handlers.
	if s.fc != nil {
		s.inj = faults.NewInjector(*s.fc, pods)
		for i := range s.pods {
			if d, ok := s.inj.NextCrashDelay(i); ok {
				s.push(event{at: d, kind: evCrash, pod: i})
			}
			if d, ok := s.inj.NextStragglerDelay(i); ok {
				s.push(event{at: d, kind: evSlowOn, pod: i})
			}
		}
	}
	return s
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.h, e)
}

// noteEnqueued/noteDequeued keep the pod-level and fleet-wide
// class-queue accounting exact as entries come and go.
func (s *sim) noteEnqueued(p *podState, class int) {
	p.queued++
	p.nq[class]++
	if s.classQueued != nil {
		if si := s.mixSLO[class]; si >= 0 {
			s.classQueued[si]++
		}
	}
}

func (s *sim) noteDequeued(p *podState, class int) {
	p.queued--
	p.nq[class]--
	if s.classQueued != nil {
		if si := s.mixSLO[class]; si >= 0 {
			s.classQueued[si]--
		}
	}
}

// dispatch picks the pod a fresh arrival (or re-dispatch) joins. Pods
// detected down by a heartbeat timeout are skipped — a just-crashed
// pod still receives dispatches until its evSuspect fires (no oracle
// knowledge). If every pod is suspected the filter is dropped: the
// request queues and waits out the outage.
func (s *sim) dispatch(req int, now float64) int {
	eligible := func(i int) bool { return !s.pods[i].suspected }
	any := false
	for i := range s.pods {
		if eligible(i) {
			any = true
			break
		}
	}
	if !any {
		eligible = func(int) bool { return true }
	}
	switch s.cfg.Policy {
	case PolicyLeastLoaded:
		// Least total outstanding work: remaining service of the running
		// batch plus the estimated queued work. Ties go to the lowest
		// index, so the choice is deterministic.
		best, bestLoad := -1, math.Inf(1)
		for i := range s.pods {
			if !eligible(i) {
				continue
			}
			p := &s.pods[i]
			load := p.backlogS
			if p.busy {
				load += p.busyUntil - now
			}
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	case PolicyJSQ:
		best, bestLen := -1, math.MaxInt
		for i := range s.pods {
			if !eligible(i) {
				continue
			}
			if l := s.pods[i].queued + s.inFlightCount(i); l < bestLen {
				best, bestLen = i, l
			}
		}
		return best
	case PolicyCheapest:
		// Minimum committed dollar-time: the pod's expected drain time
		// for this request (queued work + remaining busy time + the
		// request's own service on this part) weighted by the pod's
		// hourly price. On a homogeneous fleet this degrades to
		// least-loaded; on a mixed fleet it prefers the cheapest pod
		// that is not already backed up. Ties go to the lowest index.
		best, bestScore := -1, math.Inf(1)
		class := s.reqs[req].class
		for i := range s.pods {
			if !eligible(i) {
				continue
			}
			p := &s.pods[i]
			g := s.pt.groupOf(i)
			wait := p.backlogS
			if p.busy {
				wait += p.busyUntil - now
			}
			score := g.dollarPerHour / 3600 * (wait + g.base[class])
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		return best
	default: // round-robin
		for range s.pods {
			p := s.rr % len(s.pods)
			s.rr++
			if eligible(p) {
				return p
			}
		}
		return s.rr % len(s.pods) // unreachable: eligible always admits someone
	}
}

// inFlightCount is the number of requests the pod's running launch
// holds (JSQ counts them as queue occupancy).
func (s *sim) inFlightCount(pi int) int {
	p := &s.pods[pi]
	if !p.busy {
		return 0
	}
	return len(s.batches[s.execs[p.cur-1].batch].members)
}

// enqueue admits a request into a pod's class FIFO.
func (s *sim) enqueue(pi, id int) {
	r := &s.reqs[id]
	p := &s.pods[pi]
	r.state = stQueued
	r.pod = pi
	p.queues[r.class].push(id)
	s.noteEnqueued(p, r.class)
	p.backlogS += s.pt.groupOf(pi).base[r.class]
	if p.queued > p.maxDepth {
		p.maxDepth = p.queued
	}
}

// dequeue settles the accounting for a still-queued request that just
// left the queue logically (deadline expiry). The queue entry itself
// stays behind and is discarded lazily when it reaches the head — the
// caller flips the request out of stQueued, which is what marks the
// entry dead.
func (s *sim) dequeue(id int) {
	r := &s.reqs[id]
	p := &s.pods[r.pod]
	s.noteDequeued(p, r.class)
	p.backlogS -= s.pt.groupOf(r.pod).base[r.class]
	if p.queued == 0 {
		p.backlogS = 0 // kill float accumulation drift at the fixpoint
	}
}

// queueHead returns the request at the head of the pod's class FIFO,
// discarding lazily-deleted entries on the way. The caller guarantees
// p.nq[class] > 0, so a live head exists.
func (s *sim) queueHead(p *podState, class int) int {
	q := &p.queues[class]
	for {
		id := q.peek()
		if s.reqs[id].state == stQueued {
			return id
		}
		q.pop()
	}
}

// admit routes a request through admission control and dispatch: the
// SLO class's fleet-wide queue limit is the front door, the fault
// layer's per-pod queue limit the back door.
func (s *sim) admit(id int, now float64) (pi int, ok bool) {
	r := &s.reqs[id]
	if s.classQueued != nil {
		if si := s.mixSLO[r.class]; si >= 0 {
			if lim := s.cfg.Classes[si].QueueLimit; lim > 0 && s.classQueued[si] >= lim {
				r.state = stShed
				s.shed++
				s.pending--
				return 0, false
			}
		}
	}
	pi = s.dispatch(id, now)
	if s.fc != nil && s.fc.QueueLimit > 0 && s.pods[pi].queued >= s.fc.QueueLimit {
		r.state = stShed
		s.shed++
		s.pending--
		return pi, false
	}
	s.enqueue(pi, id)
	return pi, true
}

// maybeLaunch starts the next batch on an idle pod, or arms a batching
// deadline when holding the batch open is still allowed.
func (s *sim) maybeLaunch(pi int, now float64) {
	p := &s.pods[pi]
	if p.busy || p.queued == 0 || !p.up {
		return
	}
	g := s.pt.groupOf(pi)
	// A class is launchable when its batch is full or its head request's
	// delay budget is spent. Among launchable classes, strict SLO
	// priority wins first; within a priority, serve the class whose head
	// has waited longest (FIFO across classes; ties break on the lower
	// class index) — a full batch in one class must never sit behind
	// another class's still-unexpired head. The expiry test compares
	// against the deadline instant itself (not the age): the deadline
	// event fires at exactly oldest+MaxDelayS, and re-deriving the same
	// float expression makes the ≥ test exact.
	class := -1
	bestPrio := 0
	var bestHead, oldestHead float64
	oldestAll := -1
	for c := range p.queues {
		if p.nq[c] == 0 {
			continue
		}
		head := s.reqs[s.queueHead(p, c)].arrival
		if oldestAll == -1 || head < oldestHead {
			oldestAll, oldestHead = c, head
		}
		launchable := p.nq[c] >= s.cfg.MaxBatch ||
			s.cfg.MaxDelayS <= 0 || now >= head+s.cfg.MaxDelayS
		if !launchable {
			continue
		}
		prio := s.classPrio[c]
		if class == -1 || prio > bestPrio || (prio == bestPrio && head < bestHead) {
			class, bestPrio, bestHead = c, prio, head
		}
	}
	if class == -1 {
		// Nothing launchable yet: hold for more arrivals, waking at the
		// earliest delay deadline (the overall-oldest head's).
		if want := oldestHead + s.cfg.MaxDelayS; want < p.deadline {
			p.deadline = want
			s.push(event{at: want, kind: evDeadline, pod: pi})
		}
		return
	}

	want := p.nq[class]
	if want > s.cfg.MaxBatch {
		want = s.cfg.MaxBatch
	}
	members := make([]int, 0, want)
	q := &p.queues[class]
	for len(members) < want {
		id := q.pop()
		r := &s.reqs[id]
		if r.state != stQueued {
			continue // lazily-deleted entry (timed out while queued)
		}
		members = append(members, id)
		r.state = stInFlight
		s.noteDequeued(p, class)
		p.backlogS -= g.base[class]
	}
	if p.queued == 0 {
		p.backlogS = 0 // kill float accumulation drift at the fixpoint
	}
	p.deadline = math.Inf(1)
	b := len(members)

	bi := len(s.batches)
	s.batches = append(s.batches, batchState{class: class, members: members})
	s.startExec(bi, pi, now, false)

	if s.fc != nil && s.fc.Hedge {
		delay := s.fc.HedgeDelayS
		if delay <= 0 {
			delay = faults.HedgeAutoFactor * g.svc[class][b-1]
		}
		s.push(event{at: now + delay, kind: evHedge, aux: bi})
	}
}

// startExec launches one physical execution of a batch on a pod:
// service priced from the pod's group table (a hedge landing on a
// different group runs at that group's speed), inflated by an open
// straggler window, transient-error drawn at launch.
func (s *sim) startExec(bi, pi int, now float64, hedge bool) {
	b := &s.batches[bi]
	svc := s.pt.groupOf(pi).svc[b.class][len(b.members)-1]
	p := &s.pods[pi]
	if p.slow > 1 {
		svc *= p.slow
	}
	ei := len(s.execs)
	fails := false
	if s.fc != nil {
		fails = s.inj.LaunchFails()
	}
	s.execs = append(s.execs, exec{batch: bi, pod: pi, start: now, svc: svc, fails: fails, hedge: hedge})
	b.addLive(ei)
	p.busy = true
	p.cur = ei + 1
	p.busyUntil = now + svc
	p.batches++
	s.push(event{at: p.busyUntil, kind: evDone, pod: pi, aux: ei})
}

// deliver completes a batch: every member still pending finishes now;
// members that already timed out are delivered late (counted, but not
// completed).
func (s *sim) deliver(bi, pi int, now float64) {
	b := &s.batches[bi]
	s.pods[pi].served += len(b.members)
	for _, id := range b.members {
		r := &s.reqs[id]
		r.finish = now
		switch r.state {
		case stInFlight:
			r.state = stDone
			s.pending--
		case stTimedOut:
			r.state = stLate
			s.late++
		}
	}
}

// loseBatch handles a batch whose every exec is gone (crash or batch
// error) without a delivery: members re-enter dispatch after backoff,
// or fail once their retry budget is spent.
func (s *sim) loseBatch(bi int, now float64) {
	b := &s.batches[bi]
	for _, id := range b.members {
		r := &s.reqs[id]
		if r.state != stInFlight {
			continue // already timed out
		}
		if r.retries < s.fc.MaxRetries {
			r.retries++
			s.retries++
			r.state = stRetryWait
			s.push(event{at: now + s.inj.RetryBackoff(r.retries), kind: evRetry, req: id})
		} else {
			r.state = stFailed
			s.failed++
			s.pending--
		}
	}
}

// finishExec retires a completed exec: a clean finish wins the batch
// (first-wins — the other exec, if any, is cancelled and its pod freed
// immediately); a transient error that leaves no exec alive loses it.
func (s *sim) finishExec(ei int, now float64) {
	ex := &s.execs[ei]
	p := &s.pods[ex.pod]
	p.busy = false
	p.cur = 0
	p.busyS += ex.svc
	b := &s.batches[ex.batch]
	b.removeLive(ei)
	if ex.fails {
		s.batchErrors++
		if !b.won && b.nlive == 0 {
			s.loseBatch(ex.batch, now)
		}
	} else if !b.won {
		b.won = true
		if ex.hedge {
			s.hedgesWon++
		}
		s.deliver(ex.batch, ex.pod, now)
		for _, oi := range b.live[:b.nlive] {
			o := &s.execs[oi]
			op := &s.pods[o.pod]
			if op.cur == oi+1 { // still running it: cancel, free the pod
				op.busy = false
				op.cur = 0
				op.busyS += now - o.start
				s.maybeLaunch(o.pod, now)
			}
		}
		b.nlive = 0
	}
	s.maybeLaunch(ex.pod, now)
}

// crashPod loses the pod's running exec (if any) and schedules
// detection and recovery. Dispatch keeps routing to the pod until the
// heartbeat timeout fires — those are the bounded doomed dispatches.
func (s *sim) crashPod(pi int, now float64) {
	p := &s.pods[pi]
	p.up = false
	p.gen++
	p.downSince = now
	s.crashes++
	if p.busy {
		ei := p.cur - 1
		ex := &s.execs[ei]
		p.busy = false
		p.cur = 0
		p.busyS += now - ex.start
		b := &s.batches[ex.batch]
		b.removeLive(ei)
		if !b.won && b.nlive == 0 {
			s.loseBatch(ex.batch, now)
		}
	}
	p.deadline = math.Inf(1)
	s.push(event{at: now + s.fc.HeartbeatS, kind: evSuspect, pod: pi, aux: p.gen})
	s.push(event{at: now + s.inj.RecoverDelay(pi), kind: evRecover, pod: pi})
}

// suspectPod is the heartbeat timeout: if the pod is still down, mark
// it for dispatch avoidance and re-route everything queued on it.
func (s *sim) suspectPod(pi, gen int, now float64) {
	p := &s.pods[pi]
	if p.up || p.gen != gen {
		return // recovered before detection: stale timeout
	}
	p.suspected = true
	g := s.pt.groupOf(pi)
	for c := range p.queues {
		q := &p.queues[c]
		// Snapshot and reset before re-admitting: the all-suspected
		// fallback can legitimately re-queue a request onto this pod.
		ids := append([]int(nil), q.buf[q.head:]...)
		q.reset()
		for _, id := range ids {
			if s.reqs[id].state != stQueued {
				continue // lazily-deleted entry: accounting already settled
			}
			s.noteDequeued(p, c)
			p.backlogS -= g.base[c]
			if target, ok := s.admit(id, now); ok {
				s.maybeLaunch(target, now)
			}
		}
	}
	if p.queued == 0 {
		p.backlogS = 0 // all-suspected fallback can re-queue onto this pod
	}
}

// run drains the event heap. Fault-free, every offered request is
// served to completion, so overload manifests as makespan, not loss;
// under faults, requests resolve as completed, shed, timed out, or
// failed, and the self-perpetuating fault timelines stop rescheduling
// once no request remains pending (so the heap still drains).
func (s *sim) run() {
	for s.h.Len() > 0 {
		e := heap.Pop(&s.h).(event)
		switch e.kind {
		case evArrival:
			pi, ok := s.admit(e.req, e.at)
			if !ok {
				break
			}
			if d := s.reqs[e.req].deadline; !math.IsInf(d, 1) {
				s.push(event{at: d, kind: evTimeout, req: e.req})
			}
			s.maybeLaunch(pi, e.at)
		case evDeadline:
			s.pods[e.pod].deadline = math.Inf(1)
			s.maybeLaunch(e.pod, e.at)
		case evDone:
			if s.pods[e.pod].cur != e.aux+1 {
				break // stale: the exec was cancelled or lost to a crash
			}
			s.finishExec(e.aux, e.at)
		case evCrash:
			if s.pending == 0 {
				break // run resolved: let the fault timeline die out
			}
			s.crashPod(e.pod, e.at)
		case evRecover:
			p := &s.pods[e.pod]
			p.up = true
			p.suspected = false
			p.downtimeS += e.at - p.downSince
			if s.pending > 0 {
				if d, ok := s.inj.NextCrashDelay(e.pod); ok {
					s.push(event{at: e.at + d, kind: evCrash, pod: e.pod})
				}
			}
			s.maybeLaunch(e.pod, e.at)
		case evSuspect:
			s.suspectPod(e.pod, e.aux, e.at)
		case evSlowOn:
			if s.pending == 0 {
				break
			}
			p := &s.pods[e.pod]
			p.slow = s.fc.StragglerFactor
			s.push(event{at: e.at + s.inj.StragglerDuration(e.pod), kind: evSlowOff, pod: e.pod})
		case evSlowOff:
			p := &s.pods[e.pod]
			p.slow = 1
			if s.pending > 0 {
				if d, ok := s.inj.NextStragglerDelay(e.pod); ok {
					s.push(event{at: e.at + d, kind: evSlowOn, pod: e.pod})
				}
			}
		case evTimeout:
			r := &s.reqs[e.req]
			switch r.state {
			case stQueued:
				s.dequeue(e.req)
				r.state = stTimedOut
				s.timedOut++
				s.pending--
			case stInFlight, stRetryWait:
				r.state = stTimedOut
				s.timedOut++
				s.pending--
			}
		case evRetry:
			r := &s.reqs[e.req]
			if r.state != stRetryWait {
				break // timed out while backing off
			}
			if pi, ok := s.admit(e.req, e.at); ok {
				s.maybeLaunch(pi, e.at)
			}
		case evHedge:
			b := &s.batches[e.aux]
			if b.won || b.hedged || b.nlive == 0 {
				break // already done, already hedged, or lost (retry path owns it)
			}
			primary := s.execs[b.live[0]].pod
			hp := -1
			for i := range s.pods {
				p := &s.pods[i]
				if i != primary && p.up && !p.suspected && !p.busy {
					hp = i
					break
				}
			}
			if hp == -1 {
				break // no spare capacity: hedge forfeited
			}
			b.hedged = true
			s.hedges++
			s.startExec(e.aux, hp, e.at, true)
		}
	}
}

// latencyStats summarises a sorted latency slice with nearest-rank
// quantiles — the exact oracle the streaming P² path is tested
// against.
func latencyStats(sorted []float64) LatencyStats {
	n := len(sorted)
	if n == 0 {
		return LatencyStats{}
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencyStats{
		MeanS: sum / float64(n),
		P50S:  q(0.50),
		P95S:  q(0.95),
		P99S:  q(0.99),
		MaxS:  sorted[n-1],
	}
}

// result assembles the stable record after the run drains. Completed
// is derived by counting requests that actually finished within their
// deadline — never assumed from the arrival count. Latencies feed the
// accumulators in request-index order, so streaming estimates are as
// deterministic as the stored path.
func (s *sim) result(capacityRate float64) *Result {
	r := &Result{
		Config:       s.cfg,
		CapacityRate: capacityRate,
		OfferedRate:  s.cfg.Rate,
		Requests:     len(s.reqs),
	}

	streaming := s.cfg.Stats == StatsStreaming
	lats := newLatAccum(streaming, len(s.reqs))
	good := newLatAccum(streaming, len(s.reqs))
	perClass := make([]latAccum, len(s.cfg.Mix))
	for w := range perClass {
		perClass[w] = newLatAccum(streaming, 0)
	}
	type classAgg struct {
		requests, completed, shed, timedOut, failed int
		lat                                         latAccum
	}
	var slo []classAgg
	if len(s.cfg.Classes) > 0 {
		slo = make([]classAgg, len(s.cfg.Classes))
		for i := range slo {
			slo[i].lat = newLatAccum(streaming, 0)
		}
	}

	for i := range s.reqs {
		req := &s.reqs[i]
		if req.finish > r.MakespanS {
			r.MakespanS = req.finish
		}
		var agg *classAgg
		if slo != nil {
			if si := s.mixSLO[req.class]; si >= 0 {
				agg = &slo[si]
				agg.requests++
				switch req.state {
				case stShed:
					agg.shed++
				case stTimedOut, stLate:
					agg.timedOut++ // late deliveries did time out
				case stFailed:
					agg.failed++
				}
			}
		}
		if req.state != stDone && req.state != stLate {
			continue // never delivered: no latency sample
		}
		l := req.finish - req.arrival
		lats.add(l)
		perClass[req.class].add(l)
		if agg != nil {
			agg.lat.add(l)
		}
		if req.state == stDone {
			r.Completed++
			good.add(l)
			if agg != nil {
				agg.completed++
			}
		}
	}
	r.Latency = lats.stats()
	if r.MakespanS > 0 {
		r.AchievedRate = float64(r.Completed) / r.MakespanS
	}

	var batches int
	hetero := len(s.cfg.Fleet) > 0
	for i := range s.pods {
		p := &s.pods[i]
		util := 0.0
		if r.MakespanS > 0 {
			util = p.busyS / r.MakespanS
		}
		ps := PodStats{
			Pod: i, Served: p.served, Batches: p.batches,
			BusyS: p.busyS, Utilization: util, MaxQueueDepth: p.maxDepth,
		}
		if hetero {
			ps.Device = s.pt.groupOf(i).device
		}
		r.Pods = append(r.Pods, ps)
		batches += p.batches
		if p.maxDepth > r.MaxQueueDepth {
			r.MaxQueueDepth = p.maxDepth
		}
	}
	if batches > 0 {
		r.MeanBatch = float64(r.Completed+s.late) / float64(batches)
	}

	for w, e := range s.cfg.Mix {
		r.Workloads = append(r.Workloads, WorkloadStats{
			Workload: e.Workload,
			Requests: perClass[w].count(),
			Latency:  perClass[w].stats(),
		})
	}

	for i := range slo {
		c := s.cfg.Classes[i]
		goodput := 0.0
		if r.MakespanS > 0 {
			goodput = float64(slo[i].completed) / r.MakespanS
		}
		r.Classes = append(r.Classes, ClassStats{
			Class: c.Name, Priority: c.Priority,
			Requests: slo[i].requests, Completed: slo[i].completed,
			Shed: slo[i].shed, TimedOut: slo[i].timedOut, Failed: slo[i].failed,
			Goodput: goodput, Latency: slo[i].lat.stats(),
		})
	}

	if hetero {
		d := FleetDollarPerHour(s.cfg.Fleet)
		cost := &CostStats{DollarPerHour: d}
		if d > 0 && r.AchievedRate > 0 {
			cost.RPSPerDollarHour = r.AchievedRate / d
			cost.DollarPerMillion = d / (r.AchievedRate * 3600) * 1e6
		}
		r.Cost = cost
	}

	if s.fc != nil {
		av := &AvailabilityStats{
			Goodput:      r.AchievedRate,
			Shed:         s.shed,
			TimedOut:     s.timedOut,
			Failed:       s.failed,
			Late:         s.late,
			Retries:      s.retries,
			Hedges:       s.hedges,
			HedgesWon:    s.hedgesWon,
			Crashes:      s.crashes,
			BatchErrors:  s.batchErrors,
			PodDowntimeS: make([]float64, len(s.pods)),
			LatencyGood:  good.stats(),
		}
		for i := range s.pods {
			p := &s.pods[i]
			d := p.downtimeS
			if !p.up && r.MakespanS > p.downSince {
				d += r.MakespanS - p.downSince // still down at the end of the run
			}
			av.PodDowntimeS[i] = d
		}
		r.Availability = av
	}
	return r
}
