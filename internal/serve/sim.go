package serve

import (
	"container/heap"
	"math"
	"sort"
)

// rng is a splitmix64 PRNG. The simulator owns its generator rather
// than using math/rand so the determinism contract depends on nothing
// but this file: the stream for a given seed can never drift with a
// toolchain upgrade.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential draw with the given rate (mean 1/rate) —
// the open-loop Poisson inter-arrival time.
func (r *rng) exp(rate float64) float64 {
	// 1−u ∈ (0, 1], so the log argument is never zero.
	return -math.Log(1-r.float64()) / rate
}

// Event kinds, in deterministic tie-break vocabulary: events at the
// same instant fire in insertion order (seq), which the single
// sequential loop makes total.
const (
	evArrival = iota
	evDeadline
	evDone
)

type event struct {
	at   float64
	seq  int64
	kind int
	pod  int
	req  int // arrival: request index
}

// eventHeap is a min-heap on (time, insertion sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// request is one offered unit of work.
type request struct {
	class   int // mix index
	arrival float64
	finish  float64
}

// podState is one pod's runtime state: per-class FIFO queues, the
// running batch, and its share of the run's statistics.
type podState struct {
	queues    [][]int // per-class FIFOs of request indices
	queued    int
	backlogS  float64 // estimated queued base work (least-loaded policy)
	inFlight  []int
	busy      bool
	busyUntil float64
	deadline  float64 // earliest armed batching deadline (+Inf when none)

	served, batches, maxDepth int
	busyS                     float64
}

// sim is one serving run in flight.
type sim struct {
	cfg  Config
	pt   *priceTable
	reqs []request
	pods []podState
	h    eventHeap
	seq  int64
	rr   int // round-robin cursor
}

func newSim(cfg Config, pt *priceTable) *sim {
	s := &sim{cfg: cfg, pt: pt, pods: make([]podState, cfg.Pods)}
	for i := range s.pods {
		s.pods[i].queues = make([][]int, len(cfg.Mix))
		s.pods[i].deadline = math.Inf(1)
	}

	// Open-loop arrivals: exponential inter-arrival times at the offered
	// rate, workload class drawn from the mix — all from the seeded
	// generator, so the offered trace is a pure function of the Config.
	gen := rng{state: uint64(cfg.Seed)}
	var sumW float64
	for _, e := range cfg.Mix {
		sumW += e.Weight
	}
	t := 0.0
	for {
		t += gen.exp(cfg.Rate)
		if t > cfg.HorizonS {
			break
		}
		u := gen.float64() * sumW
		class := len(cfg.Mix) - 1
		for w, e := range cfg.Mix {
			if u < e.Weight {
				class = w
				break
			}
			u -= e.Weight
		}
		s.reqs = append(s.reqs, request{class: class, arrival: t})
	}
	for i, r := range s.reqs {
		s.push(event{at: r.arrival, kind: evArrival, req: i})
	}
	return s
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.h, e)
}

// dispatch picks the pod a fresh arrival joins.
func (s *sim) dispatch(req int, now float64) int {
	switch s.cfg.Policy {
	case PolicyLeastLoaded:
		// Least total outstanding work: remaining service of the running
		// batch plus the estimated queued work. Ties go to the lowest
		// index, so the choice is deterministic.
		best, bestLoad := 0, math.Inf(1)
		for i := range s.pods {
			p := &s.pods[i]
			load := p.backlogS
			if p.busy {
				load += p.busyUntil - now
			}
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	case PolicyJSQ:
		best, bestLen := 0, math.MaxInt
		for i := range s.pods {
			if l := s.pods[i].queued + len(s.pods[i].inFlight); l < bestLen {
				best, bestLen = i, l
			}
		}
		return best
	default: // round-robin
		p := s.rr % s.cfg.Pods
		s.rr++
		return p
	}
}

// maybeLaunch starts the next batch on an idle pod, or arms a batching
// deadline when holding the batch open is still allowed.
func (s *sim) maybeLaunch(pi int, now float64) {
	p := &s.pods[pi]
	if p.busy || p.queued == 0 {
		return
	}
	// A class is launchable when its batch is full or its head request's
	// delay budget is spent. Serve the launchable class whose head has
	// waited longest (FIFO across classes; ties break on the lower class
	// index) — a full batch in one class must never sit behind another
	// class's still-unexpired head. The expiry test compares against the
	// deadline instant itself (not the age): the deadline event fires at
	// exactly oldest+MaxDelayS, and re-deriving the same float
	// expression makes the ≥ test exact.
	class, oldestAll := -1, -1
	for c := range p.queues {
		if len(p.queues[c]) == 0 {
			continue
		}
		head := s.reqs[p.queues[c][0]].arrival
		if oldestAll == -1 || head < s.reqs[p.queues[oldestAll][0]].arrival {
			oldestAll = c
		}
		launchable := len(p.queues[c]) >= s.cfg.MaxBatch ||
			s.cfg.MaxDelayS <= 0 || now >= head+s.cfg.MaxDelayS
		if launchable && (class == -1 || head < s.reqs[p.queues[class][0]].arrival) {
			class = c
		}
	}
	if class == -1 {
		// Nothing launchable yet: hold for more arrivals, waking at the
		// earliest delay deadline (the overall-oldest head's).
		if want := s.reqs[p.queues[oldestAll][0]].arrival + s.cfg.MaxDelayS; want < p.deadline {
			p.deadline = want
			s.push(event{at: want, kind: evDeadline, pod: pi})
		}
		return
	}
	q := p.queues[class]

	b := len(q)
	if b > s.cfg.MaxBatch {
		b = s.cfg.MaxBatch
	}
	batch := append([]int(nil), q[:b]...)
	p.queues[class] = q[b:]
	p.queued -= b
	for _, id := range batch {
		p.backlogS -= s.pt.base[s.reqs[id].class]
	}
	if p.queued == 0 {
		p.backlogS = 0 // kill float accumulation drift at the fixpoint
	}
	svc := s.pt.svc[class][b-1]
	p.busy = true
	p.busyUntil = now + svc
	p.busyS += svc
	p.batches++
	p.inFlight = batch
	p.deadline = math.Inf(1)
	s.push(event{at: p.busyUntil, kind: evDone, pod: pi})
}

// run drains the event heap: every offered request is served to
// completion, so overload manifests as makespan, not loss.
func (s *sim) run() {
	for s.h.Len() > 0 {
		e := heap.Pop(&s.h).(event)
		switch e.kind {
		case evArrival:
			r := &s.reqs[e.req]
			pi := s.dispatch(e.req, e.at)
			p := &s.pods[pi]
			p.queues[r.class] = append(p.queues[r.class], e.req)
			p.queued++
			p.backlogS += s.pt.base[r.class]
			if p.queued > p.maxDepth {
				p.maxDepth = p.queued
			}
			s.maybeLaunch(pi, e.at)
		case evDeadline:
			s.pods[e.pod].deadline = math.Inf(1)
			s.maybeLaunch(e.pod, e.at)
		case evDone:
			p := &s.pods[e.pod]
			for _, id := range p.inFlight {
				s.reqs[id].finish = e.at
			}
			p.served += len(p.inFlight)
			p.inFlight = nil
			p.busy = false
			s.maybeLaunch(e.pod, e.at)
		}
	}
}

// latencyStats summarises a sorted latency slice with nearest-rank
// quantiles.
func latencyStats(sorted []float64) LatencyStats {
	n := len(sorted)
	if n == 0 {
		return LatencyStats{}
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencyStats{
		MeanS: sum / float64(n),
		P50S:  q(0.50),
		P95S:  q(0.95),
		P99S:  q(0.99),
		MaxS:  sorted[n-1],
	}
}

// result assembles the stable record after the run drains.
func (s *sim) result(capacityRate float64) *Result {
	r := &Result{
		Config:       s.cfg,
		CapacityRate: capacityRate,
		OfferedRate:  s.cfg.Rate,
		Requests:     len(s.reqs),
		Completed:    len(s.reqs),
	}

	lats := make([]float64, 0, len(s.reqs))
	perClass := make([][]float64, len(s.cfg.Mix))
	for i := range s.reqs {
		req := &s.reqs[i]
		if req.finish > r.MakespanS {
			r.MakespanS = req.finish
		}
		l := req.finish - req.arrival
		lats = append(lats, l)
		perClass[req.class] = append(perClass[req.class], l)
	}
	sort.Float64s(lats)
	r.Latency = latencyStats(lats)
	if r.MakespanS > 0 {
		r.AchievedRate = float64(r.Completed) / r.MakespanS
	}

	var batches int
	for i := range s.pods {
		p := &s.pods[i]
		util := 0.0
		if r.MakespanS > 0 {
			util = p.busyS / r.MakespanS
		}
		r.Pods = append(r.Pods, PodStats{
			Pod: i, Served: p.served, Batches: p.batches,
			BusyS: p.busyS, Utilization: util, MaxQueueDepth: p.maxDepth,
		})
		batches += p.batches
		if p.maxDepth > r.MaxQueueDepth {
			r.MaxQueueDepth = p.maxDepth
		}
	}
	if batches > 0 {
		r.MeanBatch = float64(r.Completed) / float64(batches)
	}

	for w, e := range s.cfg.Mix {
		sort.Float64s(perClass[w])
		r.Workloads = append(r.Workloads, WorkloadStats{
			Workload: e.Workload,
			Requests: len(perClass[w]),
			Latency:  latencyStats(perClass[w]),
		})
	}
	return r
}
