package serve

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
)

// quantGen is a tiny deterministic generator for test distributions
// (splitmix-style, independent of the simulator's PRNG).
type quantGen struct{ s uint64 }

func (g *quantGen) next() float64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestP2AgainstExact drives the P² estimator over distributions with
// very different tail shapes and bounds its relative error against the
// exact nearest-rank quantile. P² is an approximation; the bounds here
// are the contract the streaming mode ships with.
func TestP2AgainstExact(t *testing.T) {
	const n = 50_000
	dists := []struct {
		name string
		gen  func(u float64) float64
		tol  map[float64]float64 // quantile -> allowed relative error
	}{
		{
			name: "uniform",
			gen:  func(u float64) float64 { return u },
			tol:  map[float64]float64{0.5: 0.02, 0.95: 0.02, 0.99: 0.02},
		},
		{
			// Bimodal: two well-separated service-time modes, like a
			// cache-hit/cache-miss split. Quantiles sit inside a mode,
			// far from the overall mean.
			name: "bimodal",
			gen: func(u float64) float64 {
				if u < 0.8 {
					return 1 + u // [1,1.8)
				}
				return 100 + u*10 // [100,110)
			},
			tol: map[float64]float64{0.5: 0.05, 0.95: 0.05, 0.99: 0.05},
		},
		{
			// Heavy tail: Pareto-ish via inverse transform. The p99
			// lives deep in the tail where P² markers are sparsest —
			// the hardest case, hence the loosest bound.
			name: "heavy-tail",
			gen: func(u float64) float64 {
				return math.Pow(1-u*0.999999, -1.0/1.5)
			},
			tol: map[float64]float64{0.5: 0.05, 0.95: 0.10, 0.99: 0.25},
		},
	}
	for _, d := range dists {
		g := &quantGen{s: 42}
		q50, q95, q99 := newP2(0.5), newP2(0.95), newP2(0.99)
		qs := map[float64]*p2Quantile{0.5: &q50, 0.95: &q95, 0.99: &q99}
		all := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := d.gen(g.next())
			all = append(all, x)
			for _, q := range qs {
				q.add(x)
			}
		}
		sort.Float64s(all)
		for p, q := range qs {
			exact := exactQuantile(all, p)
			got := q.value()
			rel := math.Abs(got-exact) / exact
			if rel > d.tol[p] {
				t.Errorf("%s p%g: P² %.6g vs exact %.6g (rel err %.3f > %.3f)",
					d.name, p*100, got, exact, rel, d.tol[p])
			}
		}
	}
}

// TestP2DegenerateInputs: constant streams and tiny samples must not
// divide by zero or drift.
func TestP2DegenerateInputs(t *testing.T) {
	// All-equal: every marker height is the same; parabolic adjustment
	// denominators vanish and must be guarded.
	q := newP2(0.99)
	for i := 0; i < 10_000; i++ {
		q.add(7.25)
	}
	if got := q.value(); got != 7.25 {
		t.Errorf("all-equal stream: p99 %g, want 7.25", got)
	}

	// n < 5: the estimator has not initialised its markers and must
	// fall back to exact nearest-rank on the buffered points.
	for _, n := range []int{1, 2, 3, 4} {
		q := newP2(0.5)
		vals := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := float64((i*7)%5 + 1)
			q.add(v)
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		if got, want := q.value(), exactQuantile(vals, 0.5); got != want {
			t.Errorf("n=%d: p50 %g, want exact %g", n, got, want)
		}
	}

	// Empty estimator reports zero, matching latencyStats(nil).
	qe := newP2(0.95)
	if got := qe.value(); got != 0 {
		t.Errorf("empty estimator: %g, want 0", got)
	}
}

// TestStreamAccumExactBelowCutoff: under streamExactCutoff samples the
// streaming accumulator must agree bit-for-bit with the stored path —
// it is still exact there, only the representation differs.
func TestStreamAccumExactBelowCutoff(t *testing.T) {
	g := &quantGen{s: 9}
	stored := newLatAccum(false, 0)
	stream := newLatAccum(true, 0)
	for i := 0; i < streamExactCutoff-1; i++ {
		x := g.next()
		stored.add(x)
		stream.add(x)
	}
	a, b := stored.stats(), stream.stats()
	if a != b {
		t.Fatalf("below cutoff, streaming != stored:\nstored:    %+v\nstreaming: %+v", a, b)
	}
}

// TestStreamAccumAboveCutoff: past the cutoff the markers take over;
// mean and max stay exact, quantiles stay within the P² contract.
func TestStreamAccumAboveCutoff(t *testing.T) {
	g := &quantGen{s: 3}
	const n = 20_000
	stream := newLatAccum(true, 0)
	all := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := 0.001 + g.next()*0.01
		stream.add(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	got := stream.stats()
	exact := latencyStats(all)
	if math.Abs(got.MeanS-exact.MeanS) > 1e-12 {
		t.Errorf("streaming mean %g != exact %g", got.MeanS, exact.MeanS)
	}
	if got.MaxS != exact.MaxS {
		t.Errorf("streaming max %g != exact %g", got.MaxS, exact.MaxS)
	}
	for _, c := range []struct {
		name       string
		got, exact float64
	}{
		{"p50", got.P50S, exact.P50S},
		{"p95", got.P95S, exact.P95S},
		{"p99", got.P99S, exact.P99S},
	} {
		if rel := math.Abs(c.got-c.exact) / c.exact; rel > 0.05 {
			t.Errorf("streaming %s %g vs exact %g (rel err %.3f)", c.name, c.got, c.exact, rel)
		}
	}
}

// TestServeStreamingMatchesStoredBelowCutoff: a whole Run whose
// request count stays under the cutoff must produce identical latency
// sections in both stats modes — streaming is a drop-in there.
func TestServeStreamingMatchesStoredBelowCutoff(t *testing.T) {
	base := Config{
		Seed: 7, Spec: "TPUv5e", Set: "B", Pods: 2,
		Policy: PolicyJSQ, Rate: 2000, HorizonS: 0.05, MaxBatch: 4,
		Mix: hemultOnly(),
	}
	stored, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Requests >= streamExactCutoff {
		t.Fatalf("test premise broken: %d requests >= cutoff %d", stored.Requests, streamExactCutoff)
	}
	scfg := base
	scfg.Stats = StatsStreaming
	streaming, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Latency != streaming.Latency {
		t.Errorf("latency sections differ below cutoff:\nstored:    %+v\nstreaming: %+v",
			stored.Latency, streaming.Latency)
	}
	if stored.Requests != streaming.Requests || stored.Completed != streaming.Completed {
		t.Errorf("request accounting differs between stats modes")
	}
}

// TestServeStreamingParallelBitIdentical: satellite-3 requirement —
// streaming-stats records are bit-identical across Parallel {1,4,8}.
// The pricing worker pool must not leak nondeterminism into the
// streaming path any more than the stored one.
func TestServeStreamingParallelBitIdentical(t *testing.T) {
	var ref []byte
	for _, par := range []int{1, 4, 8} {
		cfg := Config{
			Seed: 7, Spec: "TPUv5e", Set: "B", Pods: 3,
			Policy: PolicyJSQ, HorizonS: 0.02, MaxBatch: 4,
			Mix: hemultOnly(), Parallel: par,
			Stats: StatsStreaming,
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Config.Parallel = 0 // normalise the echoed knob before comparing
		blob, _ := json.Marshal(r)
		if ref == nil {
			ref = blob
		} else if string(blob) != string(ref) {
			t.Fatalf("streaming record differs at Parallel=%d", par)
		}
	}
}

// TestStoredModeCapsStreamingLifts: the stored mode refuses scenarios
// whose expected request count exceeds its memory cap; streaming mode
// accepts the same scenario.
func TestStoredModeCapsStreamingLifts(t *testing.T) {
	cfg := Config{
		Spec: "TPUv5e", Set: "B", Pods: 1,
		Rate: float64(maxRequests) * 4, HorizonS: 1, MaxBatch: 4,
		Mix: hemultOnly(),
	}
	if _, _, _, err := prepare(cfg); err == nil {
		t.Fatal("stored mode accepted a scenario beyond its request cap")
	}
	cfg.Stats = StatsStreaming
	if _, _, _, err := prepare(cfg); err != nil {
		t.Fatalf("streaming mode rejected the same scenario: %v", err)
	}
}
