package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cross/internal/sweep"
)

// rampTrace: a small deterministic trace mixing two workloads with an
// accelerating arrival pattern no Poisson source would produce.
func rampTrace() []TraceEvent {
	ev := make([]TraceEvent, 0, 30)
	t := 0.0
	for i := 0; i < 30; i++ {
		t += 0.002 / float64(1+i%5) // bursty, nondecreasing
		w := sweep.WorkloadHEMult
		if i%3 == 0 {
			w = sweep.WorkloadRotate
		}
		ev = append(ev, TraceEvent{T: t, Workload: w})
	}
	return ev
}

// TestServeTraceReplay: replaying a trace admits exactly the trace's
// events, echoes the derived rate/horizon/mix, and is byte-deterministic.
func TestServeTraceReplay(t *testing.T) {
	events := rampTrace()
	cfg := Config{
		Seed: 1, Spec: "TPUv5e", Set: "B", Pods: 2,
		Policy: PolicyJSQ, MaxBatch: 4,
		TraceEvents: events,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != len(events) {
		t.Fatalf("trace has %d events, sim saw %d requests", len(events), r.Requests)
	}
	if r.Completed != r.Requests {
		t.Fatalf("trace replay did not drain: %d of %d", r.Completed, r.Requests)
	}
	// Horizon defaults to the last event time; rate is echoed as n/T.
	last := events[len(events)-1].T
	if r.Config.HorizonS != last {
		t.Errorf("derived horizon %g, want last event time %g", r.Config.HorizonS, last)
	}
	wantRate := float64(len(events)) / last
	if r.Config.Rate != wantRate {
		t.Errorf("echoed rate %g, want %g", r.Config.Rate, wantRate)
	}
	// Mix is derived from trace composition in first-appearance order.
	if len(r.Config.Mix) != 2 || r.Config.Mix[0].Workload != sweep.WorkloadRotate {
		t.Errorf("derived mix wrong: %+v", r.Config.Mix)
	}
	first, _ := json.Marshal(r)
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(r2)
	if string(first) != string(second) {
		t.Fatal("trace replay not deterministic")
	}
}

// TestServeTraceHorizonTruncates: an explicit horizon shorter than the
// trace drops the tail events.
func TestServeTraceHorizonTruncates(t *testing.T) {
	events := []TraceEvent{
		{T: 0.001, Workload: sweep.WorkloadHEMult},
		{T: 0.002, Workload: sweep.WorkloadHEMult},
		{T: 0.500, Workload: sweep.WorkloadHEMult},
	}
	r, err := Run(Config{
		Seed: 1, Spec: "TPUv5e", Set: "B", Pods: 1, MaxBatch: 2,
		HorizonS:    0.01,
		TraceEvents: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 2 {
		t.Fatalf("horizon 0.01 should admit 2 of 3 events, got %d", r.Requests)
	}
}

// TestTraceValidation: malformed traces are rejected up front.
func TestTraceValidation(t *testing.T) {
	cases := []struct {
		name   string
		events []TraceEvent
		mix    []MixEntry
	}{
		{"decreasing times", []TraceEvent{
			{T: 0.2, Workload: sweep.WorkloadHEMult},
			{T: 0.1, Workload: sweep.WorkloadHEMult},
		}, nil},
		{"negative time", []TraceEvent{{T: -1, Workload: sweep.WorkloadHEMult}}, nil},
		{"unknown workload", []TraceEvent{{T: 0.1, Workload: "warp-drive"}}, nil},
		{"workload outside mix", []TraceEvent{{T: 0.1, Workload: sweep.WorkloadRotate}},
			hemultOnly()},
	}
	for _, tc := range cases {
		cfg := Config{Spec: "TPUv5e", Set: "B", Pods: 1, TraceEvents: tc.events, Mix: tc.mix}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: trace accepted", tc.name)
		}
	}
}

// TestLoadTraceJSONAndCSV: both on-disk formats load to the same events.
func TestLoadTraceJSONAndCSV(t *testing.T) {
	dir := t.TempDir()
	want := []TraceEvent{
		{T: 0.001, Workload: sweep.WorkloadHEMult},
		{T: 0.003, Workload: sweep.WorkloadRotate},
		{T: 0.004, Workload: sweep.WorkloadHEMult},
	}

	jpath := filepath.Join(dir, "trace.json")
	blob, _ := json.Marshal(want)
	if err := os.WriteFile(jpath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	cpath := filepath.Join(dir, "trace.csv")
	csv := "t,workload\n# ramp segment\n0.001," + sweep.WorkloadHEMult +
		"\n0.003," + sweep.WorkloadRotate + "\n0.004," + sweep.WorkloadHEMult + "\n"
	if err := os.WriteFile(cpath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{jpath, cpath} {
		got, err := LoadTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d events, want %d", path, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s event %d: got %+v, want %+v", path, i, got[i], want[i])
			}
		}
	}

	if _, err := LoadTrace(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing trace file accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("t,workload\nnot-a-number,"+sweep.WorkloadHEMult+"\n"), 0o644)
	if _, err := LoadTrace(bad); err == nil {
		t.Error("malformed CSV accepted")
	}
}

// TestTracePathEndToEnd: Config.TracePath loads the file during
// prepare and replays it, same as inline TraceEvents.
func TestTracePathEndToEnd(t *testing.T) {
	dir := t.TempDir()
	events := rampTrace()
	blob, _ := json.Marshal(events)
	path := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	fromPath, err := Run(Config{
		Seed: 1, Spec: "TPUv5e", Set: "B", Pods: 2, Policy: PolicyJSQ,
		MaxBatch: 4, TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	inline, err := Run(Config{
		Seed: 1, Spec: "TPUv5e", Set: "B", Pods: 2, Policy: PolicyJSQ,
		MaxBatch: 4, TraceEvents: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromPath.Requests != inline.Requests || fromPath.Latency != inline.Latency {
		t.Errorf("trace-path run differs from inline events: %+v vs %+v",
			fromPath.Latency, inline.Latency)
	}
}

// TestPoissonSourceMatchesLegacyDraws: the extracted Poisson source is
// the legacy arrival loop verbatim — pinned indirectly by the golden
// test, but checked directly here at the source level: draws are
// reproducible and respect the horizon.
func TestPoissonSourceMatchesLegacyDraws(t *testing.T) {
	mix := []MixEntry{
		{Workload: sweep.WorkloadHEMult, Weight: 3},
		{Workload: sweep.WorkloadRotate, Weight: 1},
	}
	a := newPoissonSource(7, 1000, 0.1, mix)
	b := newPoissonSource(7, 1000, 0.1, mix)
	n := 0
	for {
		ta, ca, oka := a.Next()
		tb, cb, okb := b.Next()
		if oka != okb || ta != tb || ca != cb {
			t.Fatalf("draw %d diverged: (%g,%d,%v) vs (%g,%d,%v)", n, ta, ca, oka, tb, cb, okb)
		}
		if !oka {
			break
		}
		if ta > 0.1 {
			t.Fatalf("draw %d beyond horizon: %g", n, ta)
		}
		if ca < 0 || ca >= len(mix) {
			t.Fatalf("draw %d class out of range: %d", n, ca)
		}
		n++
	}
	if n == 0 {
		t.Fatal("poisson source produced no arrivals")
	}
}
