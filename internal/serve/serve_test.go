package serve

import (
	"encoding/json"
	"math"
	"testing"

	"cross/internal/sweep"
)

// hemultOnly is the single-class mix the load-shape tests use: one
// service-time distribution, so queueing effects are easy to reason
// about.
func hemultOnly() []MixEntry {
	return []MixEntry{{Workload: sweep.WorkloadHEMult, Weight: 1}}
}

// TestServeDeterministic is the determinism contract: the JSON record
// is bit-identical across runs and across pre-pricing worker counts
// for a fixed seed.
func TestServeDeterministic(t *testing.T) {
	base := Config{
		Seed:     7,
		Spec:     "TPUv5e",
		Set:      "B",
		Pods:     3,
		Policy:   PolicyJSQ,
		HorizonS: 0.02,
		MaxBatch: 4,
	}
	var golden []byte
	for _, parallel := range []int{1, 4, 8} {
		for run := 0; run < 2; run++ {
			cfg := base
			cfg.Parallel = parallel
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if golden == nil {
				golden = got
				if r.Requests == 0 {
					t.Fatal("determinism test served zero requests — widen the horizon")
				}
				continue
			}
			if string(got) != string(golden) {
				t.Fatalf("parallel=%d run=%d: record drifted from golden\n got: %s\nwant: %s",
					parallel, run, got, golden)
			}
		}
	}
}

// TestServeSeedChangesArrivals: a different seed is a different
// offered trace (the PRNG is actually wired in).
func TestServeSeedChangesArrivals(t *testing.T) {
	cfg := Config{Spec: "TPUv5e", Pods: 2, HorizonS: 0.02, Mix: hemultOnly()}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests == b.Requests && a.Latency == b.Latency {
		t.Error("seed change left the run identical")
	}
}

// TestServeSaturation drives offered load through the pod-capacity
// knee: tail latency must rise with load, and achieved throughput must
// track offered load below capacity then saturate at the fleet ceiling
// above it.
func TestServeSaturation(t *testing.T) {
	probe, err := Run(Config{
		Spec: "TPUv4", Set: "A", Pods: 2, MaxBatch: 1,
		HorizonS: 0.001, Mix: hemultOnly(),
	})
	if err != nil {
		t.Fatal(err)
	}
	capacity := probe.CapacityRate
	if capacity <= 0 {
		t.Fatal("zero capacity")
	}
	// Horizon sized so the lightest run still sees ~500 requests.
	horizon := 1000 / capacity

	fractions := []float64{0.5, 0.9, 2, 4}
	results := make([]*Result, len(fractions))
	for i, f := range fractions {
		r, err := Run(Config{
			Seed: 3, Spec: "TPUv4", Set: "A", Pods: 2, MaxBatch: 1,
			Rate: f * capacity, HorizonS: horizon, Mix: hemultOnly(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed != r.Requests {
			t.Fatalf("load %gx: %d of %d completed", f, r.Completed, r.Requests)
		}
		results[i] = r
		t.Logf("load %.1fx: offered %.0f/s achieved %.0f/s p99 %.3gs (n=%d)",
			f, r.OfferedRate, r.AchievedRate, r.Latency.P99S, r.Requests)
	}

	// p99 latency rises as offered rate crosses capacity.
	for i := 1; i < len(results); i++ {
		if results[i].Latency.P99S <= results[i-1].Latency.P99S {
			t.Errorf("p99 did not rise from %gx to %gx load: %g → %g",
				fractions[i-1], fractions[i], results[i-1].Latency.P99S, results[i].Latency.P99S)
		}
	}
	// Below the knee: achieved ≈ offered.
	if r := results[0]; r.AchievedRate < 0.9*r.OfferedRate {
		t.Errorf("sub-capacity run lost throughput: achieved %g of offered %g", r.AchievedRate, r.OfferedRate)
	}
	// Above the knee: achieved saturates at the capacity ceiling —
	// doubling offered load (2x → 4x) gains almost nothing.
	over2, over4 := results[2], results[3]
	if over4.AchievedRate > 1.05*capacity {
		t.Errorf("achieved %g exceeds capacity ceiling %g", over4.AchievedRate, capacity)
	}
	if over4.AchievedRate > 1.1*over2.AchievedRate {
		t.Errorf("no saturation plateau: 2x achieves %g, 4x achieves %g", over2.AchievedRate, over4.AchievedRate)
	}
}

// TestBatchingBeatsNoBatching: at an offered rate above the no-batch
// capacity, dynamic batching amortises kernel-launch overhead into
// higher sustained throughput and a lower tail (the Fig. 11b effect at
// the serving level).
func TestBatchingBeatsNoBatching(t *testing.T) {
	probe, err := Run(Config{
		Spec: "TPUv4", Set: "A", Pods: 1, MaxBatch: 1,
		HorizonS: 0.001, Mix: hemultOnly(),
	})
	if err != nil {
		t.Fatal(err)
	}
	noBatchCap := probe.CapacityRate
	rate := 1.3 * noBatchCap
	horizon := 800 / rate

	run := func(maxBatch int) *Result {
		t.Helper()
		r, err := Run(Config{
			Seed: 5, Spec: "TPUv4", Set: "A", Pods: 1,
			MaxBatch: maxBatch, Rate: rate, HorizonS: horizon, Mix: hemultOnly(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unbatched := run(1)
	batched := run(8)
	t.Logf("no-batch: achieved %.0f/s p99 %.3gs; batch≤8: achieved %.0f/s p99 %.3gs (mean batch %.2f)",
		unbatched.AchievedRate, unbatched.Latency.P99S,
		batched.AchievedRate, batched.Latency.P99S, batched.MeanBatch)

	if batched.MeanBatch <= 1 {
		t.Error("overloaded pod formed no batches")
	}
	if batched.AchievedRate <= unbatched.AchievedRate {
		t.Errorf("batching did not lift throughput: %g vs %g", batched.AchievedRate, unbatched.AchievedRate)
	}
	if batched.Latency.P99S >= unbatched.Latency.P99S {
		t.Errorf("batching did not cut the tail: p99 %g vs %g", batched.Latency.P99S, unbatched.Latency.P99S)
	}
}

// TestServeBatchServiceModel pins the batching cost model: batched
// service time is strictly increasing in b, per-request time strictly
// decreasing (the amortisation that makes batching worth it), and the
// amortised saving never exceeds the replicated program time.
func TestServeBatchServiceModel(t *testing.T) {
	cfg := Config{Spec: "TPUv4", Set: "A", MaxBatch: 8, Mix: hemultOnly()}.withDefaults()
	pt, err := price(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := pt.groups[0].svc[0]
	for b := 1; b < len(svc); b++ {
		if svc[b] <= svc[b-1] {
			t.Errorf("service time not increasing: svc[%d]=%g ≤ svc[%d]=%g", b+1, svc[b], b, svc[b-1])
		}
		perNew, perOld := svc[b]/float64(b+1), svc[b-1]/float64(b)
		if perNew >= perOld {
			t.Errorf("per-request time not decreasing at b=%d: %g ≥ %g", b+1, perNew, perOld)
		}
	}
	if svc[0] != pt.groups[0].base[0] {
		t.Errorf("batch-1 service %g != base %g", svc[0], pt.groups[0].base[0])
	}
}

// TestServePoliciesAndSchema: every dispatch policy drains a
// heterogeneous mix and the record's internal accounting adds up.
func TestServePoliciesAndSchema(t *testing.T) {
	for _, policy := range Policies {
		r, err := Run(Config{
			Seed: 11, Spec: "TPUv5e", Set: "B", Pods: 3, Policy: policy,
			HorizonS: 0.05, MaxBatch: 4,
			Mix: []MixEntry{
				{Workload: sweep.WorkloadHEMult, Weight: 0.6},
				{Workload: sweep.WorkloadRotate, Weight: 0.4},
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if r.Requests == 0 || r.Completed != r.Requests {
			t.Fatalf("%s: %d of %d completed", policy, r.Completed, r.Requests)
		}
		var served, wl int
		for _, p := range r.Pods {
			served += p.Served
			if p.Utilization < 0 || p.Utilization > 1 {
				t.Errorf("%s: pod %d utilization %g outside [0,1]", policy, p.Pod, p.Utilization)
			}
		}
		for _, w := range r.Workloads {
			wl += w.Requests
		}
		if served != r.Completed || wl != r.Completed {
			t.Errorf("%s: accounting mismatch: pods %d, workloads %d, completed %d",
				policy, served, wl, r.Completed)
		}
		if r.MeanBatch < 1 {
			t.Errorf("%s: mean batch %g < 1", policy, r.MeanBatch)
		}
		if r.MakespanS <= 0 || r.AchievedRate <= 0 {
			t.Errorf("%s: empty makespan/throughput", policy)
		}
	}
}

// TestServeMaxDelayHoldsBatches: with a queue-delay budget an idle pod
// holds a non-full batch open, so launches are fewer and fuller than
// launch-on-free batching under the same trace.
func TestServeMaxDelayHoldsBatches(t *testing.T) {
	base := Config{
		Seed: 13, Spec: "TPUv5e", Set: "B", Pods: 1, MaxBatch: 8,
		HorizonS: 0.02, Mix: hemultOnly(),
	}
	eager, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	held := base
	held.MaxDelayS = 0.005
	patient, err := Run(held)
	if err != nil {
		t.Fatal(err)
	}
	if patient.MeanBatch <= eager.MeanBatch {
		t.Errorf("delay budget did not grow batches: %g (delay) vs %g (eager)",
			patient.MeanBatch, eager.MeanBatch)
	}
	if patient.Completed != patient.Requests {
		t.Error("held batches were never flushed")
	}
}

// TestFullBatchNotStrandedBehindOtherClass (white-box): a full batch
// in one class must launch immediately even when another class's head
// request arrived earlier but is still inside its delay budget — the
// hold-open rule applies per class, not to the pod.
func TestFullBatchNotStrandedBehindOtherClass(t *testing.T) {
	cfg := Config{
		Spec: "TPUv5e", Set: "B", Pods: 1, MaxBatch: 2, MaxDelayS: 1.0,
		Rate: 1, HorizonS: 1,
		Mix: []MixEntry{
			{Workload: sweep.WorkloadRotate, Weight: 0.5},
			{Workload: sweep.WorkloadHEMult, Weight: 0.5},
		},
	}.withDefaults()
	pt, err := price(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &sim{cfg: cfg, pt: pt, pods: make([]podState, 1)}
	s.classPrio = make([]int, len(cfg.Mix))
	s.mixSLO = []int{-1, -1}
	s.pods[0].queues = make([]intQueue, len(cfg.Mix))
	s.pods[0].nq = make([]int, len(cfg.Mix))
	s.pods[0].deadline = math.Inf(1)
	s.pods[0].up = true
	// One class-0 request, then a full class-1 batch shortly after.
	s.reqs = []request{
		{class: 0, arrival: 0.001, deadline: math.Inf(1)},
		{class: 1, arrival: 0.002, deadline: math.Inf(1)},
		{class: 1, arrival: 0.003, deadline: math.Inf(1)},
	}
	s.pending = len(s.reqs)
	for i, r := range s.reqs {
		s.push(event{at: r.arrival, kind: evArrival, req: i})
	}
	s.run()

	// The full class-1 batch launches at its second arrival, far before
	// the class-0 delay deadline at t=1.001.
	if got := s.reqs[1].finish; got >= 0.5 {
		t.Errorf("full batch stranded behind unexpired class: finished at %g s", got)
	}
	// The lone class-0 request still waits out its own delay budget.
	if got := s.reqs[0].finish; got < 1.001 {
		t.Errorf("non-full batch launched before its deadline: finished at %g s", got)
	}
	for i, r := range s.reqs {
		if r.finish <= r.arrival {
			t.Errorf("request %d never served", i)
		}
	}
}

// TestServeAutoRate: Rate ≤ 0 resolves to the documented fraction of
// fleet capacity, and the resolved value is echoed in the record.
func TestServeAutoRate(t *testing.T) {
	r, err := Run(Config{Spec: "TPUv5e", Pods: 2, HorizonS: 0.01, Mix: hemultOnly()})
	if err != nil {
		t.Fatal(err)
	}
	want := autoRateFraction * r.CapacityRate
	if r.OfferedRate != want || r.Config.Rate != want {
		t.Errorf("auto rate = %g (config %g), want %g", r.OfferedRate, r.Config.Rate, want)
	}
}

// TestServeValidation: unpriceable configurations are rejected.
func TestServeValidation(t *testing.T) {
	bad := []Config{
		{Spec: "TPUv99"},
		{Set: "Z"},
		{Policy: "random"},
		{Pods: -1},
		{CoresPerPod: -2},
		{HorizonS: -1},
		{MaxBatch: -3},
		{MaxDelayS: -1},
		{Mix: []MixEntry{{Workload: sweep.WorkloadHEMult, Weight: -1}}},
		{Mix: []MixEntry{{Workload: "Quantum", Weight: 1}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestServeOverlapPricing: the Overlap flag routes pricing through
// Schedule.OverlappedTotal — service times shrink, so at a fixed
// offered rate the overlap-priced fleet has strictly more capacity and
// no worse latency than the serial-priced one, and the flag is echoed
// in the record schema.
func TestServeOverlapPricing(t *testing.T) {
	base := Config{
		Seed:        3,
		Set:         "D",
		Pods:        2,
		CoresPerPod: 4,
		Rate:        500,
		HorizonS:    0.02,
		MaxBatch:    4,
		Mix:         hemultOnly(),
	}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Overlap = true
	overlapped, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}

	if !overlapped.Config.Overlap || serial.Config.Overlap {
		t.Errorf("Overlap flag not echoed: serial=%v overlapped=%v",
			serial.Config.Overlap, overlapped.Config.Overlap)
	}
	if overlapped.CapacityRate <= serial.CapacityRate {
		t.Errorf("overlap pricing capacity %g not above serial %g",
			overlapped.CapacityRate, serial.CapacityRate)
	}
	if overlapped.Latency.P99S > serial.Latency.P99S {
		t.Errorf("overlap pricing p99 %g above serial %g",
			overlapped.Latency.P99S, serial.Latency.P99S)
	}
	if overlapped.Requests != serial.Requests {
		t.Errorf("arrival trace changed with pricing: %d vs %d requests",
			overlapped.Requests, serial.Requests)
	}
}

// TestServeGPUFleet prices a serving run on a GPU fleet through the
// same pipeline as TPU fleets: the registry resolves the device, the
// record schema is unchanged, and the run is deterministic. An H100
// fleet must out-serve an equal A100-40GB fleet (strictly higher
// capacity) since the part dominates on every roofline axis.
func TestServeGPUFleet(t *testing.T) {
	base := Config{
		Seed:     11,
		Spec:     "H100",
		Set:      "B",
		Pods:     2,
		HorizonS: 0.02,
		MaxBatch: 4,
		Mix:      hemultOnly(),
	}
	h100, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if h100.Requests == 0 || h100.Completed != h100.Requests {
		t.Fatalf("GPU fleet served %d/%d requests", h100.Completed, h100.Requests)
	}
	if h100.CapacityRate <= 0 {
		t.Fatalf("GPU fleet capacity %g, want positive", h100.CapacityRate)
	}
	if h100.Config.Spec != "H100" {
		t.Errorf("echoed spec %q", h100.Config.Spec)
	}

	again, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(h100)
	jb, _ := json.Marshal(again)
	if string(ja) != string(jb) {
		t.Error("GPU fleet record not deterministic across runs")
	}

	a100cfg := base
	a100cfg.Spec = "A100-40GB"
	a100, err := Run(a100cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h100.CapacityRate <= a100.CapacityRate {
		t.Errorf("H100 fleet capacity %g req/s should exceed A100-40GB's %g",
			h100.CapacityRate, a100.CapacityRate)
	}
}

// TestServeMultiGPUNodes runs a fleet of 8-GPU NVLink nodes — the
// CoresPerPod axis on the GPU backend — and checks collectives priced
// into the service times still leave a well-formed record.
func TestServeMultiGPUNodes(t *testing.T) {
	r, err := Run(Config{
		Seed:        3,
		Spec:        "A100-80GB",
		Pods:        2,
		CoresPerPod: 8,
		HorizonS:    0.02,
		MaxBatch:    2,
		Mix:         hemultOnly(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 || r.Completed != r.Requests {
		t.Fatalf("served %d/%d requests", r.Completed, r.Requests)
	}
	if r.Latency.P99S < r.Latency.P50S || r.Latency.P50S <= 0 {
		t.Errorf("degenerate latency distribution: %+v", r.Latency)
	}
}
