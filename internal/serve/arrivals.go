package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ArrivalSource generates the offered request stream: successive calls
// return nondecreasing arrival times and the mix-class index of each
// request, with ok = false once the stream is exhausted. The simulator
// consumes a source exactly once per run, in order, so a deterministic
// source yields a deterministic run. The built-in sources are the
// seeded Poisson process (the legacy arrival model, bit-identical to
// the pre-interface stream) and trace replay; Config.Source accepts a
// custom implementation, in which case the caller owns keeping the
// Result reproducible.
type ArrivalSource interface {
	Next() (t float64, class int, ok bool)
}

// poissonSource is the open-loop Poisson arrival process: exponential
// inter-arrival times at the offered rate, class drawn from the mix —
// all from the seeded splitmix64 generator, preserving the exact draw
// order of the pre-interface simulator (one exp draw, then one class
// draw per arrival).
type poissonSource struct {
	gen     rng
	rate    float64
	horizon float64
	weights []float64
	sumW    float64
	t       float64
}

func newPoissonSource(seed int64, rate, horizonS float64, mix []MixEntry) *poissonSource {
	p := &poissonSource{gen: rng{state: uint64(seed)}, rate: rate, horizon: horizonS}
	for _, e := range mix {
		p.weights = append(p.weights, e.Weight)
		p.sumW += e.Weight
	}
	return p
}

func (p *poissonSource) Next() (float64, int, bool) {
	p.t += p.gen.exp(p.rate)
	if p.t > p.horizon {
		return 0, 0, false
	}
	u := p.gen.float64() * p.sumW
	class := len(p.weights) - 1
	for w, wt := range p.weights {
		if u < wt {
			class = w
			break
		}
		u -= wt
	}
	return p.t, class, true
}

// TraceEvent is one arrival in a replayed trace: an absolute arrival
// time (seconds from the start of the run) and a workload name that
// must appear in the mix.
type TraceEvent struct {
	T        float64 `json:"t"`
	Workload string  `json:"workload"`
}

// traceSource replays a validated trace; events beyond the horizon are
// dropped, mirroring the Poisson source's horizon cut.
type traceSource struct {
	events  []TraceEvent
	classOf map[string]int
	horizon float64
	i       int
}

func (ts *traceSource) Next() (float64, int, bool) {
	if ts.i >= len(ts.events) {
		return 0, 0, false
	}
	e := ts.events[ts.i]
	if e.T > ts.horizon {
		return 0, 0, false // nondecreasing trace: everything after is out too
	}
	ts.i++
	return e.T, ts.classOf[e.Workload], true
}

// validateTrace enforces the trace contract: at least one event,
// finite nonnegative nondecreasing times, and workloads drawn from the
// mix (when a mix is configured; an empty mix is derived from the
// trace instead).
func validateTrace(events []TraceEvent, mix []MixEntry) error {
	if len(events) == 0 {
		return fmt.Errorf("serve: trace has no events")
	}
	classOf := map[string]bool{}
	for _, e := range mix {
		classOf[e.Workload] = true
	}
	prev := 0.0
	for i, e := range events {
		if e.T < 0 || e.T != e.T {
			return fmt.Errorf("serve: trace event %d: time %g must be finite and ≥ 0", i, e.T)
		}
		if e.T < prev {
			return fmt.Errorf("serve: trace event %d: time %g before predecessor %g (times must be nondecreasing)", i, e.T, prev)
		}
		prev = e.T
		if e.Workload == "" {
			return fmt.Errorf("serve: trace event %d: empty workload", i)
		}
		if len(mix) > 0 && !classOf[e.Workload] {
			return fmt.Errorf("serve: trace event %d: workload %q not in the mix", i, e.Workload)
		}
	}
	return nil
}

// mixFromTrace derives a Mix from a trace's composition: one entry per
// distinct workload in first-appearance order, weighted by its share
// of the events. Weights only matter for capacity/auto-rate math and
// the record echo — the replay itself follows the trace exactly.
func mixFromTrace(events []TraceEvent) []MixEntry {
	counts := map[string]int{}
	var order []string
	for _, e := range events {
		if counts[e.Workload] == 0 {
			order = append(order, e.Workload)
		}
		counts[e.Workload]++
	}
	mix := make([]MixEntry, 0, len(order))
	for _, w := range order {
		mix = append(mix, MixEntry{Workload: w, Weight: float64(counts[w]) / float64(len(events))})
	}
	return mix
}

// LoadTrace reads a trace file: a JSON array of {"t": seconds,
// "workload": name} objects, or CSV lines "t,workload" (a header line
// and #-comments are skipped). The format is chosen by content, not
// extension: a leading '[' means JSON.
func LoadTrace(path string) ([]TraceEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: trace: %w", err)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var events []TraceEvent
		if err := json.Unmarshal(data, &events); err != nil {
			return nil, fmt.Errorf("serve: trace %s: %w", path, err)
		}
		return events, nil
	}
	var events []TraceEvent
	for ln, line := range strings.Split(trimmed, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("serve: trace %s line %d: want \"t,workload\", got %q", path, ln+1, line)
		}
		tf, wf := strings.TrimSpace(fields[0]), strings.TrimSpace(fields[1])
		if ln == 0 && strings.EqualFold(tf, "t") {
			continue // header
		}
		t, err := strconv.ParseFloat(tf, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: trace %s line %d: bad time: %w", path, ln+1, err)
		}
		events = append(events, TraceEvent{T: t, Workload: wf})
	}
	return events, nil
}
