package serve

import (
	"math"
	"sort"
)

// Latency-statistics modes (Config.Stats). Stored keeps every latency
// sample and computes exact nearest-rank quantiles — the legacy
// behaviour and the byte-identity path. Streaming keeps O(1) memory
// per distribution via P² quantile estimators, unlocking 10^6+-request
// horizons; below streamExactCutoff samples it still answers exactly
// (the estimator buffers until the cutoff), so short streaming runs
// agree with stored runs bit-for-bit.
const (
	StatsStored    = "stored"
	StatsStreaming = "streaming"
)

// streamExactCutoff is the sample count up to which the streaming
// accumulator answers with exact nearest-rank quantiles from a
// retained buffer. Past the cutoff the buffer is replayed into the P²
// markers and dropped. The cutoff is also what the P² tests use as
// the oracle boundary.
const streamExactCutoff = 1000

// p2Quantile is the P² algorithm of Jain & Chlamtac (CACM 1985): a
// single quantile estimated from five markers whose heights are
// adjusted toward their ideal positions with a piecewise-parabolic
// prediction. O(1) memory, deterministic in feed order, and bounded by
// the observed min/max (markers 0 and 4 track the extremes).
type p2Quantile struct {
	p    float64
	n    int        // observations fed
	pos  [5]int     // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	q    [5]float64 // marker heights
	buf  [5]float64 // first five observations, pre-initialisation
}

func newP2(p float64) p2Quantile { return p2Quantile{p: p} }

func (e *p2Quantile) add(x float64) {
	if e.n < 5 {
		e.buf[e.n] = x
		e.n++
		if e.n == 5 {
			b := e.buf
			sort.Float64s(b[:])
			e.q = b
			e.pos = [5]int{1, 2, 3, 4, 5}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.n++
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for i := 1; i < 4; i++ {
			if x >= e.q[i] {
				k = i
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	inc := [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
	for i := range e.want {
		e.want[i] += inc[i]
	}
	for i := 1; i <= 3; i++ {
		d := e.want[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			qn := e.parabolic(i, sign)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, sign)
			}
			e.q[i] = qn
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d.
func (e *p2Quantile) parabolic(i, d int) float64 {
	ni := float64(e.pos[i])
	nim := float64(e.pos[i-1])
	nip := float64(e.pos[i+1])
	df := float64(d)
	return e.q[i] + df/(nip-nim)*
		((ni-nim+df)*(e.q[i+1]-e.q[i])/(nip-ni)+
			(nip-ni-df)*(e.q[i]-e.q[i-1])/(ni-nim))
}

// linear is the fallback when the parabolic prediction would leave the
// bracketing heights.
func (e *p2Quantile) linear(i, d int) float64 {
	return e.q[i] + float64(d)*(e.q[i+d]-e.q[i])/float64(e.pos[i+d]-e.pos[i])
}

// value returns the current estimate; with fewer than five
// observations it falls back to exact nearest-rank on the buffer.
func (e *p2Quantile) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		b := append([]float64(nil), e.buf[:e.n]...)
		sort.Float64s(b)
		i := int(math.Ceil(e.p*float64(e.n))) - 1
		if i < 0 {
			i = 0
		}
		return b[i]
	}
	return e.q[2]
}

// latAccum accumulates one latency distribution. The two
// implementations share the contract that samples are fed in a
// deterministic order; stats() may be called once, at the end.
type latAccum interface {
	add(v float64)
	count() int
	stats() LatencyStats
}

// storedAccum is the exact path: keep everything, sort once, answer
// with nearest-rank quantiles — bit-identical to the pre-refactor
// stored-sorted-latency computation.
type storedAccum struct{ vals []float64 }

func newStoredAccum(capHint int) *storedAccum {
	return &storedAccum{vals: make([]float64, 0, capHint)}
}

func (a *storedAccum) add(v float64) { a.vals = append(a.vals, v) }
func (a *storedAccum) count() int    { return len(a.vals) }
func (a *storedAccum) stats() LatencyStats {
	sort.Float64s(a.vals)
	return latencyStats(a.vals)
}

// streamAccum is the O(1)-memory path: exact up to streamExactCutoff
// samples, P² markers beyond, with running mean and max throughout.
type streamAccum struct {
	n             int
	sum, max      float64
	exact         []float64 // retained until the cutoff spills
	q50, q95, q99 p2Quantile
}

func newStreamAccum() *streamAccum {
	return &streamAccum{q50: newP2(0.50), q95: newP2(0.95), q99: newP2(0.99)}
}

func (a *streamAccum) add(v float64) {
	a.n++
	if a.n == 1 || v > a.max {
		a.max = v
	}
	a.sum += v
	if a.exact != nil || a.n == 1 {
		a.exact = append(a.exact, v)
		if len(a.exact) <= streamExactCutoff {
			return
		}
		// Spill: replay the buffer into the markers (v included) and
		// drop it — from here on memory stays constant.
		for _, x := range a.exact {
			a.q50.add(x)
			a.q95.add(x)
			a.q99.add(x)
		}
		a.exact = nil
		return
	}
	a.q50.add(v)
	a.q95.add(v)
	a.q99.add(v)
}

func (a *streamAccum) count() int { return a.n }
func (a *streamAccum) stats() LatencyStats {
	if a.n == 0 {
		return LatencyStats{}
	}
	if a.exact != nil {
		sort.Float64s(a.exact)
		return latencyStats(a.exact)
	}
	return LatencyStats{
		MeanS: a.sum / float64(a.n),
		P50S:  a.q50.value(),
		P95S:  a.q95.value(),
		P99S:  a.q99.value(),
		MaxS:  a.max,
	}
}

// newLatAccum picks the accumulator for the configured stats mode.
func newLatAccum(streaming bool, capHint int) latAccum {
	if streaming {
		return newStreamAccum()
	}
	return newStoredAccum(capHint)
}
