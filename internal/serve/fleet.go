package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// FleetGroup is one homogeneous slice of a heterogeneous fleet: Count
// pods of one device part at Cores cores each, with an hourly price
// per pod. A Config either sets Spec/Pods/CoresPerPod (the legacy
// homogeneous form, byte-identical to pre-fleet records) or a Fleet of
// groups — never both. Pods are numbered group by group in declaration
// order, so pod indices (dispatch, fault streams, PodStats) stay
// deterministic for a fixed FleetSpec.
type FleetGroup struct {
	Device string `json:"device"`          // part name from the cross registry
	Cores  int    `json:"cores,omitempty"` // cores/GPUs per pod (0 → 1)
	Count  int    `json:"count"`           // pods in the group

	// DollarPerHour is the hourly price of one pod in the group; 0
	// resolves to Cores × the part's nominal per-chip price (the echoed
	// Config carries the resolved value, so req/s/$ figures are
	// reproducible from the record alone).
	DollarPerHour float64 `json:"dollar_per_hour,omitempty"`
}

// defaultDollarPerChipHour is the nominal on-demand per-chip hourly
// price used when a FleetGroup does not set DollarPerHour — published
// US list-price ballparks, fixed here so cost figures are
// deterministic, not market-accurate.
var defaultDollarPerChipHour = map[string]float64{
	"TPUv4":     3.22,
	"TPUv5e":    1.20,
	"TPUv5p":    4.20,
	"TPUv6e":    2.70,
	"A100-40GB": 2.90,
	"A100-80GB": 3.90,
	"H100":      8.00,
}

// unknownDollarPerChipHour prices parts registered after this table
// was written, so cost-aware dispatch never divides by zero.
const unknownDollarPerChipHour = 3.0

// defaultGroupDollar resolves a group's hourly pod price from the
// per-chip table.
func defaultGroupDollar(device string, cores int) float64 {
	per, ok := defaultDollarPerChipHour[device]
	if !ok {
		per = unknownDollarPerChipHour
	}
	return per * float64(cores)
}

// resolvedFleet returns the fleet as explicit groups: the configured
// groups (already defaulted by withDefaults) or the implicit single
// homogeneous group. The implicit group is never echoed into the
// record — legacy Configs marshal byte-identically.
func (cfg Config) resolvedFleet() []FleetGroup {
	if len(cfg.Fleet) > 0 {
		return cfg.Fleet
	}
	return []FleetGroup{{
		Device:        cfg.Spec,
		Cores:         cfg.CoresPerPod,
		Count:         cfg.Pods,
		DollarPerHour: defaultGroupDollar(cfg.Spec, cfg.CoresPerPod),
	}}
}

// totalPods is the fleet size M across all groups.
func (cfg Config) totalPods() int {
	if len(cfg.Fleet) == 0 {
		return cfg.Pods
	}
	n := 0
	for _, g := range cfg.Fleet {
		n += g.Count
	}
	return n
}

// FleetDollarPerHour sums the fleet's hourly price (the denominator of
// the req/s/$ planning metric).
func FleetDollarPerHour(fleet []FleetGroup) float64 {
	var d float64
	for _, g := range fleet {
		cores := g.Cores
		if cores == 0 {
			cores = 1
		}
		price := g.DollarPerHour
		if price == 0 {
			price = defaultGroupDollar(g.Device, cores)
		}
		d += float64(g.Count) * price
	}
	return d
}

// ParseFleet parses the CLI fleet syntax: "+"-joined groups of
// device:cores:count[:dollar_per_hour], e.g.
// "TPUv6e:1:4+H100:1:2:9.5". Device names may contain dashes
// (A100-80GB), so ":" is the field separator.
func ParseFleet(s string) ([]FleetGroup, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("serve: empty fleet spec")
	}
	var fleet []FleetGroup
	for _, part := range strings.Split(s, "+") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("serve: fleet group %q: want device:cores:count[:dollar_per_hour]", part)
		}
		g := FleetGroup{Device: strings.TrimSpace(fields[0])}
		cores, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("serve: fleet group %q: bad cores: %w", part, err)
		}
		count, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil {
			return nil, fmt.Errorf("serve: fleet group %q: bad count: %w", part, err)
		}
		g.Cores, g.Count = cores, count
		if len(fields) == 4 {
			d, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
			if err != nil {
				return nil, fmt.Errorf("serve: fleet group %q: bad dollar_per_hour: %w", part, err)
			}
			g.DollarPerHour = d
		}
		fleet = append(fleet, g)
	}
	return fleet, nil
}

// ParseFleets parses a comma-separated list of fleet specs (the
// -plan candidate set): "TPUv6e:1:4,TPUv6e:1:2+H100:1:1".
func ParseFleets(s string) ([][]FleetGroup, error) {
	var fleets [][]FleetGroup
	for _, one := range strings.Split(s, ",") {
		f, err := ParseFleet(one)
		if err != nil {
			return nil, err
		}
		fleets = append(fleets, f)
	}
	return fleets, nil
}
