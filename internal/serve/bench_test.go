package serve

import (
	"fmt"
	"testing"
)

// syntheticTable builds a priceTable directly, bypassing accelerator
// pricing, so benchmarks and large-horizon tests measure the event
// engine rather than schedule lowering. Service times are plausible
// HE-op magnitudes: 100 µs single-request, mildly sub-linear batching.
func syntheticTable(cfg Config) *priceTable {
	pt := &priceTable{}
	for _, g := range cfg.resolvedFleet() {
		gp := groupPrices{
			device: g.Device, cores: g.Cores, count: g.Count,
			dollarPerHour: g.DollarPerHour,
		}
		for range cfg.Mix {
			gp.base = append(gp.base, 1e-4)
			svc := make([]float64, cfg.MaxBatch)
			for b := 1; b <= cfg.MaxBatch; b++ {
				svc[b-1] = 1e-4 * (1 + 0.08*float64(b-1))
			}
			gp.svc = append(gp.svc, svc)
		}
		for p := 0; p < g.Count; p++ {
			pt.podGroup = append(pt.podGroup, len(pt.groups))
		}
		pt.groups = append(pt.groups, gp)
	}
	return pt
}

// benchConfig produces n requests in expectation at ~70% of the
// synthetic fleet's capacity, so queues stay bounded and the run
// drains.
func benchConfig(n int, streaming bool) Config {
	cfg := Config{
		Seed: 7, Spec: "TPUv5e", Set: "B", Pods: 4,
		Policy: PolicyJSQ, MaxBatch: 8,
		Mix: hemultOnly(),
	}
	if streaming {
		cfg.Stats = StatsStreaming
	}
	cfg = cfg.withDefaults()
	// Synthetic per-pod full-batch throughput: 8 / svc(8).
	perPod := 8.0 / (1e-4 * (1 + 0.08*7))
	cfg.Rate = 0.7 * perPod * float64(cfg.Pods)
	cfg.HorizonS = float64(n) / cfg.Rate
	return cfg
}

// BenchmarkSimHorizon is the satellite-2 smoke benchmark: simulator
// cost must scale roughly linearly in the request count. Before the
// index-tracked queue refactor, per-event O(queue) scans made long
// horizons superlinear; a 10× horizon costing ≫10× here is the
// regression signal.
func BenchmarkSimHorizon(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("requests=%d", n), func(b *testing.B) {
			cfg := benchConfig(n, true)
			pt := syntheticTable(cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := newSim(cfg, pt)
				s.run()
				r := s.result(pt.capacity(cfg))
				if r.Completed == 0 {
					b.Fatal("benchmark sim served nothing")
				}
			}
		})
	}
}

// TestMillionRequestStreamingHorizon is the ISSUE acceptance run: a
// ~10^6-request horizon completes under streaming statistics with
// full accounting. This is the scenario the stored mode refuses
// (maxRequests) and O(n)-scan queues made impractical.
func TestMillionRequestStreamingHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("million-request horizon skipped in -short mode")
	}
	const n = 1_000_000
	cfg := benchConfig(n, true)
	pt := syntheticTable(cfg)
	s := newSim(cfg, pt)
	s.run()
	r := s.result(pt.capacity(cfg))
	// Poisson fluctuation around n is a few per mille at this scale.
	if r.Requests < n*9/10 || r.Requests > n*11/10 {
		t.Fatalf("expected ~%d requests, got %d", n, r.Requests)
	}
	if r.Completed != r.Requests {
		t.Fatalf("streaming horizon did not drain: %d of %d", r.Completed, r.Requests)
	}
	if r.Latency.P99S <= 0 || r.Latency.MeanS <= 0 || r.Latency.MaxS < r.Latency.P99S {
		t.Errorf("degenerate latency section at scale: %+v", r.Latency)
	}
	if r.Latency.P50S > r.Latency.P95S || r.Latency.P95S > r.Latency.P99S {
		t.Errorf("quantiles not monotone: %+v", r.Latency)
	}
}
