package serve

import (
	"container/heap"
	"math"
	"sort"
	"testing"
)

// FuzzEventHeapOrder: whatever order events are pushed in, the heap
// pops them in the total (time, seq) order the determinism contract
// depends on — ties on time always break by sequence number.
func FuzzEventHeapOrder(f *testing.F) {
	f.Add([]byte{0}, uint8(3))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(0))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, rot uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			t.Skip()
		}
		// Decode events from the fuzz bytes: coarse times force
		// same-time collisions so the seq tiebreak is actually hit.
		var evs []event
		for i := 0; i+1 < len(raw); i += 2 {
			evs = append(evs, event{
				at:   float64(raw[i]%16) * 0.25,
				seq:  int64(raw[i+1]),
				kind: int(raw[i] % 11),
			})
		}
		if len(evs) == 0 {
			t.Skip()
		}

		pop := func(h eventHeap) []event {
			heap.Init(&h)
			out := make([]event, 0, h.Len())
			for h.Len() > 0 {
				out = append(out, heap.Pop(&h).(event))
			}
			return out
		}
		a := pop(append(eventHeap(nil), evs...))
		// A rotated push order must pop identically.
		r := int(rot) % len(evs)
		b := pop(append(append(eventHeap(nil), evs[r:]...), evs[:r]...))

		for i := 1; i < len(a); i++ {
			if a[i].at < a[i-1].at || (a[i].at == a[i-1].at && a[i].seq < a[i-1].seq) {
				t.Fatalf("pop %d out of order: (%g, %d) after (%g, %d)",
					i, a[i].at, a[i].seq, a[i-1].at, a[i-1].seq)
			}
		}
		for i := range a {
			if a[i].at != b[i].at || a[i].seq != b[i].seq {
				t.Fatalf("pop order depends on push order at %d: (%g, %d) vs (%g, %d)",
					i, a[i].at, a[i].seq, b[i].at, b[i].seq)
			}
		}
	})
}

// TestLatencyStatsQuantiles pins the nearest-rank definition
// (index ⌈p·n⌉ − 1 of the sorted sample) at its edges.
func TestLatencyStatsQuantiles(t *testing.T) {
	ramp := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + 1) // sorted: 1, 2, …, n
		}
		return v
	}
	for _, tc := range []struct {
		name               string
		in                 []float64
		p50, p95, p99, max float64
		mean               float64
	}{
		{"empty", nil, 0, 0, 0, 0, 0},
		{"n=1", []float64{4.5}, 4.5, 4.5, 4.5, 4.5, 4.5},
		{"n=2 p50 is the lower sample", []float64{1, 3}, 1, 3, 3, 3, 2},
		{"all equal", []float64{7, 7, 7, 7, 7}, 7, 7, 7, 7, 7},
		// n=100: ⌈0.5·100⌉−1 = 49 → 50; ⌈0.95·100⌉−1 = 94 → 95;
		// ⌈0.99·100⌉−1 = 98 → 99 (not the max).
		{"n=100 exact ranks", ramp(100), 50, 95, 99, 100, 50.5},
		// n=101: every ⌈p·n⌉ rounds up — p50 → index 50 → 51.
		{"n=101 round up", ramp(101), 51, 96, 100, 101, 51},
		// n=10: p99 collapses onto the max.
		{"n=10 p99 is max", ramp(10), 5, 10, 10, 10, 5.5},
	} {
		got := latencyStats(tc.in)
		if got.P50S != tc.p50 || got.P95S != tc.p95 || got.P99S != tc.p99 || got.MaxS != tc.max {
			t.Errorf("%s: got p50=%g p95=%g p99=%g max=%g, want %g/%g/%g/%g",
				tc.name, got.P50S, got.P95S, got.P99S, got.MaxS, tc.p50, tc.p95, tc.p99, tc.max)
		}
		if math.Abs(got.MeanS-tc.mean) > 1e-12 {
			t.Errorf("%s: mean %g, want %g", tc.name, got.MeanS, tc.mean)
		}
	}
}

// TestLatencyStatsMonotoneInP: on any sorted sample the nearest-rank
// quantiles are non-decreasing in p and bounded by the extremes.
func TestLatencyStatsMonotoneInP(t *testing.T) {
	rng := newSplitmix(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(rng.next()%40)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.next()%1000) / 100
		}
		sort.Float64s(v)
		s := latencyStats(v)
		if !(s.P50S <= s.P95S && s.P95S <= s.P99S && s.P99S <= s.MaxS) {
			t.Fatalf("n=%d: quantiles not monotone: %+v", n, s)
		}
		if s.P50S < v[0] || s.MaxS != v[n-1] {
			t.Fatalf("n=%d: quantiles escape the sample range: %+v", n, s)
		}
	}
}

// newSplitmix gives the internal tests a tiny deterministic generator
// without importing the fault package into this file's dependencies.
type splitmix struct{ s uint64 }

func newSplitmix(s uint64) *splitmix { return &splitmix{s: s} }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
