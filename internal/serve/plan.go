package serve

import (
	"fmt"
	"sort"
)

// planBisectIters is the fixed bisection depth Plan uses to find the
// highest feasible rate — fixed, not tolerance-driven, so the probe
// sequence (and therefore the record) is deterministic.
const planBisectIters = 8

// PlanConfig is one capacity-planning question: for each candidate
// fleet shape, what is the highest offered rate whose p99 latency
// stays at or below the target, and what does a request cost there?
type PlanConfig struct {
	// Base is the scenario every candidate inherits (mix, batching,
	// policy, SLO classes, faults, seed, horizon). Its own fleet
	// fields (Spec/Pods/CoresPerPod/Fleet) are ignored — each
	// candidate supplies the fleet — except as the device for the
	// default candidate ladder when Fleets is empty.
	Base Config `json:"base"`

	// Fleets is the candidate set; empty resolves to a 1/2/4/8-pod
	// ladder of the Base device.
	Fleets [][]FleetGroup `json:"fleets"`

	// TargetP99S is the SLO: p99 latency of delivered requests must
	// not exceed this many seconds.
	TargetP99S float64 `json:"target_p99_s"`
}

// PlanPoint is one candidate fleet's answer.
type PlanPoint struct {
	Fleet         []FleetGroup `json:"fleet"`
	CapacityRate  float64      `json:"capacity_rate"`   // full-batch throughput ceiling
	MaxRate       float64      `json:"max_rate"`        // highest probed rate meeting the SLO
	P99S          float64      `json:"p99_s"`           // p99 at MaxRate
	DollarPerHour float64      `json:"dollar_per_hour"` // fleet hourly price
	// RPSPerDollarHour is the planning metric: requests/sec sustained
	// at the SLO per dollar/hour of fleet — "requests/sec/dollar".
	RPSPerDollarHour float64 `json:"rps_per_dollar_hour"`
	// DollarPerMillion is the same answer in unit-cost form: dollars
	// per million requests served at MaxRate.
	DollarPerMillion float64 `json:"dollar_per_million,omitempty"`
	Feasible         bool    `json:"feasible"` // some probed rate met the SLO
}

// PlanResult is the capacity-planning record: every candidate's
// answer, sorted best-first by req/s/$ (infeasible candidates last).
type PlanResult struct {
	TargetP99S float64     `json:"target_p99_s"`
	Points     []PlanPoint `json:"points"`
}

// Plan sweeps the candidate fleets. For each candidate it prices the
// fleet once, then bisects the offered rate on (0, capacity] with a
// fixed probe count, running the full simulator at every probe; the
// highest rate whose delivered-request p99 meets the target is the
// candidate's operating point. Deterministic: probes are pure serve
// runs and the bisection sequence is fixed.
func Plan(pc PlanConfig) (*PlanResult, error) {
	if pc.TargetP99S <= 0 {
		return nil, fmt.Errorf("serve: plan needs a positive target p99, got %g", pc.TargetP99S)
	}
	fleets := pc.Fleets
	if len(fleets) == 0 {
		wd := pc.Base
		wd.Fleet = nil
		wd = wd.withDefaults()
		for _, n := range []int{1, 2, 4, 8} {
			fleets = append(fleets, []FleetGroup{{Device: wd.Spec, Cores: wd.CoresPerPod, Count: n}})
		}
	}

	res := &PlanResult{TargetP99S: pc.TargetP99S}
	for _, fleet := range fleets {
		base := pc.Base
		base.Spec, base.Pods, base.CoresPerPod = "", 0, 0
		base.Fleet = fleet
		base.Rate = 0 // resolved per probe below
		cfg, pt, capRate, err := prepare(base)
		if err != nil {
			return nil, fmt.Errorf("serve: plan fleet %v: %w", fleet, err)
		}
		probe := func(rate float64) (float64, bool) {
			c := cfg
			c.Rate = rate
			r := runPrepared(c, pt, capRate)
			return r.Latency.P99S, r.Latency.P99S <= pc.TargetP99S
		}

		pt99, ok := probe(capRate)
		point := PlanPoint{
			Fleet:         cfg.Fleet, // defaults resolved ($/hr filled in)
			CapacityRate:  capRate,
			DollarPerHour: FleetDollarPerHour(cfg.Fleet),
		}
		if ok {
			point.MaxRate, point.P99S, point.Feasible = capRate, pt99, true
		} else {
			lo, hi := 0.0, capRate
			for i := 0; i < planBisectIters; i++ {
				mid := 0.5 * (lo + hi)
				if p99, okm := probe(mid); okm {
					lo = mid
					point.MaxRate, point.P99S, point.Feasible = mid, p99, true
				} else {
					hi = mid
				}
			}
		}
		if point.Feasible && point.DollarPerHour > 0 {
			point.RPSPerDollarHour = point.MaxRate / point.DollarPerHour
			point.DollarPerMillion = point.DollarPerHour / (point.MaxRate * 3600) * 1e6
		}
		res.Points = append(res.Points, point)
	}

	sort.SliceStable(res.Points, func(i, j int) bool {
		a, b := res.Points[i], res.Points[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		return a.RPSPerDollarHour > b.RPSPerDollarHour
	})
	return res, nil
}

// Summary renders the frontier as a table, best req/s/$ first.
func (pr *PlanResult) Summary() string {
	out := fmt.Sprintf("capacity plan: p99 ≤ %.3f ms\n", pr.TargetP99S*1e3)
	for rank, p := range pr.Points {
		name := ""
		for i, g := range p.Fleet {
			if i > 0 {
				name += "+"
			}
			name += fmt.Sprintf("%s:%d:%d", g.Device, g.Cores, g.Count)
		}
		if !p.Feasible {
			out += fmt.Sprintf("  %d. %-34s infeasible at every probed rate ($%.2f/hr)\n",
				rank+1, name, p.DollarPerHour)
			continue
		}
		out += fmt.Sprintf("  %d. %-34s %8.1f req/s at p99 %.3f ms, $%.2f/hr → %.2f req/s/$hr ($%.3f/M)\n",
			rank+1, name, p.MaxRate, p.P99S*1e3, p.DollarPerHour, p.RPSPerDollarHour, p.DollarPerMillion)
	}
	return out
}
