package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func planBase() Config {
	return Config{
		Seed: 7, Set: "B",
		Policy: PolicyJSQ, HorizonS: 0.05, MaxBatch: 4,
		Mix: hemultOnly(),
	}
}

// TestPlanMixedFleetFrontier is the ISSUE acceptance scenario: plan a
// mixed TPUv6e+H100 candidate set and check the frontier is
// deterministic, SLO-respecting, and correctly ordered.
func TestPlanMixedFleetFrontier(t *testing.T) {
	pc := PlanConfig{
		Base: planBase(),
		Fleets: [][]FleetGroup{
			{{Device: "TPUv6e", Cores: 1, Count: 2}},
			{{Device: "H100", Cores: 1, Count: 1}},
			{{Device: "TPUv6e", Cores: 1, Count: 2}, {Device: "H100", Cores: 1, Count: 1}},
		},
		TargetP99S: 0.05,
	}
	pr, err := Plan(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Points) != 3 {
		t.Fatalf("want 3 frontier points, got %d", len(pr.Points))
	}
	feasibleSeen := 0
	for i, p := range pr.Points {
		if !p.Feasible {
			continue
		}
		feasibleSeen++
		if p.P99S > pc.TargetP99S {
			t.Errorf("point %d: p99 %g exceeds target %g", i, p.P99S, pc.TargetP99S)
		}
		if p.MaxRate <= 0 || p.MaxRate > p.CapacityRate {
			t.Errorf("point %d: max rate %g outside (0, capacity %g]", i, p.MaxRate, p.CapacityRate)
		}
		if p.DollarPerHour <= 0 || p.RPSPerDollarHour <= 0 || p.DollarPerMillion <= 0 {
			t.Errorf("point %d: cost fields unset: %+v", i, p)
		}
	}
	if feasibleSeen == 0 {
		t.Fatal("no candidate feasible; target too tight for the test to mean anything")
	}
	// Ordering: feasible before infeasible, then req/s/$ descending.
	for i := 1; i < len(pr.Points); i++ {
		a, b := pr.Points[i-1], pr.Points[i]
		if !a.Feasible && b.Feasible {
			t.Errorf("infeasible point ranked above feasible at %d", i)
		}
		if a.Feasible && b.Feasible && a.RPSPerDollarHour < b.RPSPerDollarHour {
			t.Errorf("frontier not sorted by req/s/$ at %d: %g < %g",
				i, a.RPSPerDollarHour, b.RPSPerDollarHour)
		}
	}
	// Determinism: the whole record is byte-identical across runs.
	first, _ := json.Marshal(pr)
	pr2, err := Plan(pc)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(pr2)
	if string(first) != string(second) {
		t.Fatal("plan frontier not deterministic")
	}
	// The summary names every candidate.
	sum := pr.Summary()
	for _, want := range []string{"TPUv6e:1:2", "H100:1:1", "req/s"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestPlanDefaultLadder: with no candidates, Plan sweeps a 1/2/4/8-pod
// ladder of the base device.
func TestPlanDefaultLadder(t *testing.T) {
	base := planBase()
	base.Spec = "TPUv5e"
	pr, err := Plan(PlanConfig{Base: base, TargetP99S: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Points) != 4 {
		t.Fatalf("default ladder should have 4 rungs, got %d", len(pr.Points))
	}
	counts := map[int]bool{}
	for _, p := range pr.Points {
		if len(p.Fleet) != 1 || p.Fleet[0].Device != "TPUv5e" {
			t.Errorf("ladder rung not homogeneous base device: %+v", p.Fleet)
		}
		counts[p.Fleet[0].Count] = true
	}
	for _, n := range []int{1, 2, 4, 8} {
		if !counts[n] {
			t.Errorf("ladder missing %d-pod rung", n)
		}
	}
}

// TestPlanInfeasibleTarget: an impossible SLO yields a frontier of
// infeasible points rather than an error — "nothing meets this" is a
// valid planning answer.
func TestPlanInfeasibleTarget(t *testing.T) {
	pr, err := Plan(PlanConfig{Base: planBase(), TargetP99S: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pr.Points {
		if p.Feasible {
			t.Errorf("point %d feasible at p99 ≤ 1ps", i)
		}
		if p.RPSPerDollarHour != 0 {
			t.Errorf("infeasible point %d reports efficiency %g", i, p.RPSPerDollarHour)
		}
	}
}

// TestPlanValidation: a plan without a positive target is rejected, as
// is one whose base config is broken.
func TestPlanValidation(t *testing.T) {
	if _, err := Plan(PlanConfig{Base: planBase()}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Plan(PlanConfig{Base: planBase(), TargetP99S: -1}); err == nil {
		t.Error("negative target accepted")
	}
	bad := planBase()
	bad.Set = "Z"
	if _, err := Plan(PlanConfig{Base: bad, TargetP99S: 0.1}); err == nil {
		t.Error("broken base config accepted")
	}
}
