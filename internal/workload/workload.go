// Package workload encodes the paper's end-to-end ML workloads (§V-D)
// as HE-operator schedules and estimates their latency with the paper's
// own methodology (§V-A): total kernel invocations × profiled
// per-kernel latency, assuming no pipelining or fusion (worst case).
//
// Substitution note (DESIGN.md §2): the paper runs a trained CNN on
// MNIST images and the HELR logistic-regression model; this package
// reproduces the *operator schedules* of those models and drives them
// with synthetic data in the examples — the latency estimate depends
// only on the schedule, not on the weights.
package workload

import (
	"fmt"

	"cross/internal/cross"
)

// OpCounts tallies HE operators for one workload execution.
type OpCounts struct {
	Mults    int // ciphertext × ciphertext (with relinearisation)
	PtMuls   int // plaintext × ciphertext
	Adds     int // ciphertext additions
	PtAdds   int // plaintext additions
	Rotates  int // slot rotations
	Rescales int // standalone rescalings beyond those inside Mult
}

// Add accumulates another count set.
func (o *OpCounts) Add(other OpCounts) {
	o.Mults += other.Mults
	o.PtMuls += other.PtMuls
	o.Adds += other.Adds
	o.PtAdds += other.PtAdds
	o.Rotates += other.Rotates
	o.Rescales += other.Rescales
}

// Total returns the overall operator count.
func (o OpCounts) Total() int {
	return o.Mults + o.PtMuls + o.Adds + o.PtAdds + o.Rotates + o.Rescales
}

// Program composes the operator counts into a cross.Program on the
// compiler's target — the one lowering artifact every estimator and
// report shares. Step order is fixed (Mults, PtMuls, Adds, PtAdds,
// Rotates, Rescales) so estimates are reproducible bit-for-bit.
func (o OpCounts) Program(c *cross.Compiler) *cross.Program {
	return cross.NewProgram(c).
		HEMultN(o.Mults).
		PtMulN(o.PtMuls).
		HEAddN(o.Adds).
		PtAddN(o.PtAdds).
		RotateN(1, o.Rotates).
		RescaleN(o.Rescales)
}

// EstimateLatency prices the schedule on a compiler's target, §V-A
// style (kernel invocations × per-operator schedule, no fusion).
func EstimateLatency(c *cross.Compiler, o OpCounts) float64 {
	return o.Program(c).Lower().Total
}

// ConvLayer describes one HE convolution lowered with the standard
// rotation-and-accumulate packing (§III-A Mapping): a k×k kernel with
// cIn input and cOut output channel groups packed per ciphertext.
type ConvLayer struct {
	Kernel   int // spatial kernel size (k)
	InGroups int // input channel groups per ciphertext packing
	Out      int // output channel groups
}

// Counts returns the layer's operator schedule: each output group needs
// k²·inGroups rotations + plaintext multiplications accumulated with
// additions, then one rescale.
func (l ConvLayer) Counts() OpCounts {
	taps := l.Kernel * l.Kernel * l.InGroups
	return OpCounts{
		Rotates:  (l.Kernel*l.Kernel - 1) * l.InGroups, // rotations are shared across output groups
		PtMuls:   taps * l.Out,
		PtAdds:   (taps - 1) * l.Out,
		Rescales: l.Out,
	}
}

// FCLayer is a fully-connected layer via the BSGS diagonal method.
type FCLayer struct {
	Rows, Cols int // logical matrix shape (slots)
}

// Counts returns the BSGS schedule: ~2√d rotations, d diagonals of
// plaintext mult/add for d = min(rows, cols) packed diagonals.
func (l FCLayer) Counts() OpCounts {
	d := l.Rows
	if l.Cols < d {
		d = l.Cols
	}
	sq := 1
	for sq*sq < d {
		sq <<= 1
	}
	return OpCounts{
		Rotates:  2 * sq,
		PtMuls:   d,
		PtAdds:   d - 1,
		Rescales: 1,
	}
}

// ActLayer is a polynomial activation (square for ReLU-substitute, the
// standard CKKS practice the referenced WISE network uses).
type ActLayer struct{ Degree int }

// Counts returns ⌈log2(degree)⌉ ciphertext multiplications.
func (l ActLayer) Counts() OpCounts {
	mults := 0
	for d := l.Degree; d > 1; d >>= 1 {
		mults++
	}
	return OpCounts{Mults: mults}
}

// PoolLayer is average pooling: rotations + additions + one plaintext
// scaling.
type PoolLayer struct{ Window int }

// Counts returns log2(window²) rotate-add pairs plus the 1/w² scaling.
func (l PoolLayer) Counts() OpCounts {
	steps := 0
	for w := l.Window * l.Window; w > 1; w >>= 1 {
		steps++
	}
	return OpCounts{Rotates: steps, Adds: steps, PtMuls: 1, Rescales: 1}
}

// MNISTNetwork returns the paper's §V-D CNN schedule:
// 2 × {Conv → ReLU(square) → AvgPool} → FC → ReLU → FC, on 3×32×32
// inputs with HE parameters N=2^13, L=18, dnum=3.
func MNISTNetwork() []OpCounts {
	return []OpCounts{
		ConvLayer{Kernel: 5, InGroups: 1, Out: 4}.Counts(),
		ActLayer{Degree: 2}.Counts(),
		PoolLayer{Window: 2}.Counts(),
		ConvLayer{Kernel: 5, InGroups: 4, Out: 8}.Counts(),
		ActLayer{Degree: 2}.Counts(),
		PoolLayer{Window: 2}.Counts(),
		FCLayer{Rows: 64, Cols: 512}.Counts(),
		ActLayer{Degree: 2}.Counts(),
		FCLayer{Rows: 10, Cols: 64}.Counts(),
	}
}

// MNISTParams returns the paper's MNIST HE configuration.
func MNISTParams() cross.Params {
	p, err := cross.NamedSet("B") // N=2^13 base
	if err != nil {
		panic(err)
	}
	p.L = 18
	p.Dnum = 3
	return p
}

// MNISTBatch is the evaluation batch size (images per run, §V-D).
const MNISTBatch = 64

// MNISTProgram composes the full CNN schedule into one cross.Program
// (per-image; chain .Batch(MNISTBatch) for the evaluation batch).
func MNISTProgram(c *cross.Compiler) *cross.Program {
	var counts OpCounts
	for _, l := range MNISTNetwork() {
		counts.Add(l)
	}
	return counts.Program(c)
}

// EstimateMNIST returns the batch-64 total and the amortised per-image
// latency on the compiler's target. One 3×32×32 image fills a
// 2^12-slot ciphertext, so the schedule runs once per image; batching
// amortises parameter residency but not operator work (§V-D reports
// the amortised per-image number).
func EstimateMNIST(c *cross.Compiler) (total, perImage float64) {
	perImage = MNISTProgram(c).Lower().Total
	return perImage * MNISTBatch, perImage
}

// HELRSchedule returns one iteration of the HELR logistic-regression
// training step [30]: a batched gradient computation — inner products
// via rotations, a degree-3 sigmoid approximation, and the weight
// update.
func HELRSchedule(features int) OpCounts {
	sq := 1
	for sq*sq < features {
		sq <<= 1
	}
	return OpCounts{
		// X·w inner product (BSGS) + backward X^T·e.
		Rotates: 4 * sq,
		PtMuls:  2 * features / 8,
		// sigmoid ≈ c0 + c1·z + c3·z³: two mults (z², then z²·z; the
		// c1·z and c3·z³ scalings are PtMuls counted above).
		Mults:    2,
		Adds:     2*features/8 + 4,
		PtAdds:   4,
		Rescales: 4,
	}
}

// HELRFeatures is the 14×14-pixel MNIST feature count of [30].
const HELRFeatures = 196

// HELRProgram composes one HELR training iteration into a Program.
func HELRProgram(c *cross.Compiler) *cross.Program {
	return HELRSchedule(HELRFeatures).Program(c)
}

// EstimateHELR returns the per-iteration latency on the compiler's
// target.
func EstimateHELR(c *cross.Compiler) float64 {
	return HELRProgram(c).Lower().Total
}

// Describe renders an operator-count summary.
func (o OpCounts) Describe() string {
	return fmt.Sprintf("mults=%d ptmuls=%d adds=%d ptadds=%d rotates=%d rescales=%d (total %d)",
		o.Mults, o.PtMuls, o.Adds, o.PtAdds, o.Rotates, o.Rescales, o.Total())
}
