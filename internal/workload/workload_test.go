package workload

import (
	"testing"

	"cross/internal/cross"
	"cross/internal/refdata"
	"cross/internal/tpusim"
)

func TestOpCountsArithmetic(t *testing.T) {
	a := OpCounts{Mults: 1, Rotates: 2}
	b := OpCounts{Mults: 3, Adds: 4}
	a.Add(b)
	if a.Mults != 4 || a.Rotates != 2 || a.Adds != 4 {
		t.Fatal("Add broken")
	}
	if a.Total() != 10 {
		t.Fatalf("Total = %d", a.Total())
	}
	if a.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestLayerCountsPositive(t *testing.T) {
	layers := []interface{ Counts() OpCounts }{
		ConvLayer{Kernel: 5, InGroups: 1, Out: 4},
		FCLayer{Rows: 64, Cols: 512},
		ActLayer{Degree: 2},
		PoolLayer{Window: 2},
	}
	for i, l := range layers {
		if l.Counts().Total() <= 0 {
			t.Errorf("layer %d has empty schedule", i)
		}
	}
	// Square activation is exactly one multiplication.
	if c := (ActLayer{Degree: 2}).Counts(); c.Mults != 1 {
		t.Errorf("square activation mults = %d", c.Mults)
	}
	// BSGS rotations ≈ 2√d.
	if c := (FCLayer{Rows: 64, Cols: 512}).Counts(); c.Rotates != 16 {
		t.Errorf("FC 64 BSGS rotations = %d want 16", c.Rotates)
	}
}

func TestMNISTEstimateShape(t *testing.T) {
	// The MNIST estimate must land within an order of magnitude of the
	// paper's 270 ms/image on a v6e core and beat the Orion baseline.
	p := MNISTParams()
	if p.N() != 1<<13 || p.L != 18 || p.Dnum != 3 {
		t.Fatal("MNIST params drifted from §V-D")
	}
	c, err := cross.New(tpusim.NewDevice(tpusim.TPUv6e()), p)
	if err != nil {
		t.Fatal(err)
	}
	total, perImage := EstimateMNIST(c)
	if total <= 0 {
		t.Fatal("empty estimate")
	}
	perImageMs := perImage * 1e3
	if perImageMs < refdata.MNISTLatencyMs/10 || perImageMs > refdata.MNISTLatencyMs*10 {
		t.Errorf("MNIST per-image %.1f ms outside 10× band of paper's %.0f ms", perImageMs, refdata.MNISTLatencyMs)
	}
	if perImageMs >= refdata.OrionMNISTLatencyMs {
		t.Errorf("MNIST per-image %.1f ms does not beat Orion's %.0f ms", perImageMs, refdata.OrionMNISTLatencyMs)
	}
}

func TestHELREstimateShape(t *testing.T) {
	c, err := cross.New(tpusim.NewDevice(tpusim.TPUv6e()), cross.SetD())
	if err != nil {
		t.Fatal(err)
	}
	iter := EstimateHELR(c)
	iterMs := iter * 1e3
	if iterMs < refdata.HELRIterationMs/10 || iterMs > refdata.HELRIterationMs*10 {
		t.Errorf("HELR iteration %.1f ms outside 10× band of paper's %.0f ms", iterMs, refdata.HELRIterationMs)
	}
}

func TestHELRSchedulePinned(t *testing.T) {
	// Regression pin for the HELR iteration schedule: the degree-3
	// sigmoid is exactly two ciphertext mults (z², then z²·z) — it was
	// once miscounted as three.
	got := HELRSchedule(HELRFeatures)
	want := OpCounts{
		Rotates:  64, // 4·√196 rounded up to a power of two (BSGS fwd+bwd)
		PtMuls:   49, // 2·196/8
		Mults:    2,
		Adds:     53, // 2·196/8 + 4
		PtAdds:   4,
		Rescales: 4,
	}
	if got != want {
		t.Errorf("HELR schedule drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestMNISTScheduleComposition(t *testing.T) {
	var counts OpCounts
	for _, l := range MNISTNetwork() {
		counts.Add(l)
	}
	// The network has 3 square activations.
	if counts.Mults < 3 {
		t.Errorf("mults %d < 3 activations", counts.Mults)
	}
	if counts.Rotates == 0 || counts.PtMuls == 0 {
		t.Error("conv/FC schedule incomplete")
	}
}

func TestEstimateLatencyAdditive(t *testing.T) {
	c, err := cross.New(tpusim.NewDevice(tpusim.TPUv4()), cross.SetB())
	if err != nil {
		t.Fatal(err)
	}
	a := OpCounts{Mults: 2}
	b := OpCounts{Rotates: 3}
	sum := a
	sum.Add(b)
	la := EstimateLatency(c, a)
	lb := EstimateLatency(c, b)
	ls := EstimateLatency(c, sum)
	if diff := ls - (la + lb); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("estimate not additive: %g vs %g", ls, la+lb)
	}
}
