package sweep

import (
	"math"
	"testing"
)

// rec builds a minimal record for diff tests.
func rec(id string, total float64) Record {
	return Record{ID: id, TotalS: total}
}

// TestDiffClassification is the gate's acceptance check: an injected
// +1% latency is flagged as a regression and a −1% is reported as an
// improvement at the CI threshold of 0.5%.
func TestDiffClassification(t *testing.T) {
	const threshold = 0.005
	old := []Record{
		rec("SetD/TPUv6e-1/HE-Mult", 100e-6),
		rec("SetD/TPUv6e-1/Rotate", 50e-6),
		rec("SetD/TPUv6e-1/MNIST", 2e-3),
	}
	newer := []Record{
		rec("SetD/TPUv6e-1/HE-Mult", 101e-6), // +1% → regression
		rec("SetD/TPUv6e-1/Rotate", 49.5e-6), // −1% → improvement
		rec("SetD/TPUv6e-1/MNIST", 2e-3),     // unchanged
	}

	d := Diff(old, newer, threshold)
	if !d.HasRegressions() {
		t.Fatal("+1% latency not flagged as regression")
	}
	if len(d.Regressions) != 1 || d.Regressions[0].ID != "SetD/TPUv6e-1/HE-Mult" {
		t.Errorf("regressions = %+v, want exactly the +1%% record", d.Regressions)
	}
	if got := d.Regressions[0].Rel; math.Abs(got-0.01) > 1e-9 {
		t.Errorf("regression rel = %g, want 0.01", got)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].ID != "SetD/TPUv6e-1/Rotate" {
		t.Errorf("improvements = %+v, want exactly the −1%% record", d.Improvements)
	}
	if got := d.Improvements[0].Rel; math.Abs(got+0.01) > 1e-9 {
		t.Errorf("improvement rel = %g, want −0.01", got)
	}
	if d.Unchanged != 1 {
		t.Errorf("unchanged = %d, want 1", d.Unchanged)
	}
}

// TestDiffThresholdBoundary: drift within ±threshold is unchanged;
// beyond it is classified.
func TestDiffThresholdBoundary(t *testing.T) {
	const threshold = 0.005
	cases := []struct {
		name  string
		newS  float64
		class string
	}{
		{"well within", 100.2e-6, ClassUnchanged},
		{"exactly at threshold", 100.5e-6, ClassUnchanged}, // gate is strict >
		{"just beyond", 100.6e-6, ClassRegression},
		{"faster within", 99.6e-6, ClassUnchanged},
		{"faster beyond", 99.4e-6, ClassImprovement},
	}
	for _, tc := range cases {
		d := Diff([]Record{rec("x", 100e-6)}, []Record{rec("x", tc.newS)}, threshold)
		var got string
		switch {
		case len(d.Regressions) == 1:
			got = ClassRegression
		case len(d.Improvements) == 1:
			got = ClassImprovement
		case d.Unchanged == 1:
			got = ClassUnchanged
		}
		if got != tc.class {
			t.Errorf("%s (%.4g): classified %q, want %q", tc.name, tc.newS, got, tc.class)
		}
	}
}

// TestDiffCoverageDrift: IDs on one side only are surfaced, not
// classified, and never gate.
func TestDiffCoverageDrift(t *testing.T) {
	old := []Record{rec("kept", 1), rec("removed", 1)}
	newer := []Record{rec("kept", 1), rec("added", 1)}
	d := Diff(old, newer, 0.005)
	if d.HasRegressions() {
		t.Error("coverage drift must not gate")
	}
	if len(d.OnlyInOld) != 1 || d.OnlyInOld[0] != "removed" {
		t.Errorf("OnlyInOld = %v", d.OnlyInOld)
	}
	if len(d.OnlyInNew) != 1 || d.OnlyInNew[0] != "added" {
		t.Errorf("OnlyInNew = %v", d.OnlyInNew)
	}
	if d.Unchanged != 1 {
		t.Errorf("unchanged = %d, want 1", d.Unchanged)
	}
}

// TestDiffZeroBaseline: a latency appearing from zero is a regression
// (guards against a hollowed-out baseline silently passing).
func TestDiffZeroBaseline(t *testing.T) {
	d := Diff([]Record{rec("x", 0)}, []Record{rec("x", 1e-6)}, 0.005)
	if !d.HasRegressions() {
		t.Error("0 → 1µs not flagged")
	}
	d = Diff([]Record{rec("x", 0)}, []Record{rec("x", 0)}, 0.005)
	if d.HasRegressions() || d.Unchanged != 1 {
		t.Error("0 → 0 must be unchanged")
	}
}

// TestClassifyEdgeCases pins Classify's corner semantics: zero and
// negative baselines regress (unless bit-equal), and Diff clamps a
// negative threshold to 0 so any drift classifies.
func TestClassifyEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		oldS, newS float64
		threshold  float64
		wantRel    float64
		wantClass  string
	}{
		{"zero to positive", 0, 1e-6, 0.005, 1, ClassRegression},
		{"zero to zero", 0, 0, 0.005, 0, ClassUnchanged},
		{"negative baseline", -1e-6, 1e-6, 0.005, 1, ClassRegression},
		{"equal values", 42e-6, 42e-6, 0.005, 0, ClassUnchanged},
		// Raw Classify does not clamp: with a negative threshold every
		// non-equal change lands on the regression side (Diff clamps
		// thresholds to 0 before classifying).
		{"negative threshold, increase", 100e-6, 100.0001e-6, -1, 1e-6, ClassRegression},
		{"negative threshold, decrease", 100e-6, 99.9999e-6, -1, -1e-6, ClassRegression},
	}
	for _, tc := range cases {
		rel, class := Classify(tc.oldS, tc.newS, tc.threshold)
		if class != tc.wantClass {
			t.Errorf("%s: class %q, want %q", tc.name, class, tc.wantClass)
		}
		if math.Abs(rel-tc.wantRel) > 1e-9 {
			t.Errorf("%s: rel %g, want %g", tc.name, rel, tc.wantRel)
		}
	}
	// Diff clamps a negative threshold to 0 — exact equality is still
	// unchanged, any drift classifies.
	d := Diff([]Record{rec("x", 1), rec("y", 1)}, []Record{rec("x", 1), rec("y", 1.0001)}, -0.5)
	if d.Unchanged != 1 || len(d.Regressions) != 1 {
		t.Errorf("negative threshold Diff: %+v", d)
	}
}

// TestDiffRealSweepSelfCompare: a sweep diffed against itself is clean
// — the no-change CI run goes green.
func TestDiffRealSweepSelfCompare(t *testing.T) {
	recs, err := Run(Config{
		Sets:     []string{"A", "C"},
		Specs:    []string{"TPUv6e"},
		Cores:    []int{1, 8},
		Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(recs, recs, 0.005)
	if d.HasRegressions() || len(d.Improvements) != 0 || len(d.OnlyInOld) != 0 || len(d.OnlyInNew) != 0 {
		t.Errorf("self-compare not clean: %s", d.Summary())
	}
	if len(d.OverlappedOnlyInOld) != 0 || len(d.OverlappedOnlyInNew) != 0 {
		t.Errorf("self-compare reports overlapped coverage drift: %s", d.Summary())
	}
	// Every real record carries both metrics, so each contributes two
	// unchanged comparisons (total_s and overlapped_s).
	if d.Unchanged != 2*len(recs) {
		t.Errorf("unchanged = %d, want %d", d.Unchanged, 2*len(recs))
	}
}

// TestDiffOverlappedClassified: the overlapped_s column gates like
// total_s — a +1% overlapped regression with an unchanged total is
// still a gate failure, tagged with its metric.
func TestDiffOverlappedClassified(t *testing.T) {
	old := []Record{{ID: "x", TotalS: 100e-6, OverlappedS: 80e-6}}
	newer := []Record{{ID: "x", TotalS: 100e-6, OverlappedS: 80.8e-6}}
	d := Diff(old, newer, 0.005)
	if !d.HasRegressions() {
		t.Fatal("+1% overlapped_s not flagged as regression")
	}
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != MetricOverlapped {
		t.Errorf("regressions = %+v, want exactly one overlapped_s delta", d.Regressions)
	}
	if d.Unchanged != 1 { // the total_s comparison
		t.Errorf("unchanged = %d, want 1", d.Unchanged)
	}
}

// TestDiffOverlappedSchemaMigration pins the coverage-drift bugfix: a
// baseline predating the overlapped_s column (OverlappedS == 0) must
// neither spuriously gate every record through the zero-baseline
// regression rule nor silently skip the metric — it is surfaced as
// metric-level coverage drift. Symmetrically for a new sweep that
// dropped the column.
func TestDiffOverlappedSchemaMigration(t *testing.T) {
	// Old baseline without the column vs new sweep with it.
	old := []Record{{ID: "x", TotalS: 100e-6}}
	newer := []Record{{ID: "x", TotalS: 100e-6, OverlappedS: 80e-6}}
	d := Diff(old, newer, 0.005)
	if d.HasRegressions() {
		t.Errorf("missing baseline column gated as regression: %s", d.Summary())
	}
	if len(d.OverlappedOnlyInNew) != 1 || d.OverlappedOnlyInNew[0] != "x" {
		t.Errorf("OverlappedOnlyInNew = %v, want [x]", d.OverlappedOnlyInNew)
	}

	// New sweep that hollowed the column out: must not classify 80µs→0
	// as an improvement.
	d = Diff(newer, old, 0.005)
	if len(d.Improvements) != 0 {
		t.Errorf("hollowed-out overlapped column classified as improvement: %+v", d.Improvements)
	}
	if len(d.OverlappedOnlyInOld) != 1 || d.OverlappedOnlyInOld[0] != "x" {
		t.Errorf("OverlappedOnlyInOld = %v, want [x]", d.OverlappedOnlyInOld)
	}

	// Neither side carries the column: nothing to compare, no drift.
	d = Diff([]Record{rec("x", 1)}, []Record{rec("x", 1)}, 0.005)
	if len(d.OverlappedOnlyInOld) != 0 || len(d.OverlappedOnlyInNew) != 0 {
		t.Errorf("column-free records report overlapped drift: %s", d.Summary())
	}
	if d.Unchanged != 1 {
		t.Errorf("unchanged = %d, want 1", d.Unchanged)
	}
}

// TestDiffFilterMetric: each CI gate sees only its own metric's deltas.
func TestDiffFilterMetric(t *testing.T) {
	old := []Record{{ID: "x", TotalS: 100e-6, OverlappedS: 80e-6}}
	newer := []Record{{ID: "x", TotalS: 102e-6, OverlappedS: 81e-6}}
	d := Diff(old, newer, 0.005)
	if len(d.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want one per metric", d.Regressions)
	}
	for _, metric := range []string{MetricTotal, MetricOverlapped} {
		f := d.FilterMetric(metric)
		if len(f.Regressions) != 1 || f.Regressions[0].Metric != metric {
			t.Errorf("FilterMetric(%q) = %+v", metric, f.Regressions)
		}
	}
	if f := d.FilterMetric(""); len(f.Regressions) != 2 {
		t.Errorf("FilterMetric(\"\") dropped deltas: %+v", f.Regressions)
	}
}
