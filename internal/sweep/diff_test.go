package sweep

import (
	"math"
	"testing"
)

// rec builds a minimal record for diff tests.
func rec(id string, total float64) Record {
	return Record{ID: id, TotalS: total}
}

// TestDiffClassification is the gate's acceptance check: an injected
// +1% latency is flagged as a regression and a −1% is reported as an
// improvement at the CI threshold of 0.5%.
func TestDiffClassification(t *testing.T) {
	const threshold = 0.005
	old := []Record{
		rec("SetD/TPUv6e-1/HE-Mult", 100e-6),
		rec("SetD/TPUv6e-1/Rotate", 50e-6),
		rec("SetD/TPUv6e-1/MNIST", 2e-3),
	}
	newer := []Record{
		rec("SetD/TPUv6e-1/HE-Mult", 101e-6), // +1% → regression
		rec("SetD/TPUv6e-1/Rotate", 49.5e-6), // −1% → improvement
		rec("SetD/TPUv6e-1/MNIST", 2e-3),     // unchanged
	}

	d := Diff(old, newer, threshold)
	if !d.HasRegressions() {
		t.Fatal("+1% latency not flagged as regression")
	}
	if len(d.Regressions) != 1 || d.Regressions[0].ID != "SetD/TPUv6e-1/HE-Mult" {
		t.Errorf("regressions = %+v, want exactly the +1%% record", d.Regressions)
	}
	if got := d.Regressions[0].Rel; math.Abs(got-0.01) > 1e-9 {
		t.Errorf("regression rel = %g, want 0.01", got)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].ID != "SetD/TPUv6e-1/Rotate" {
		t.Errorf("improvements = %+v, want exactly the −1%% record", d.Improvements)
	}
	if got := d.Improvements[0].Rel; math.Abs(got+0.01) > 1e-9 {
		t.Errorf("improvement rel = %g, want −0.01", got)
	}
	if d.Unchanged != 1 {
		t.Errorf("unchanged = %d, want 1", d.Unchanged)
	}
}

// TestDiffThresholdBoundary: drift within ±threshold is unchanged;
// beyond it is classified.
func TestDiffThresholdBoundary(t *testing.T) {
	const threshold = 0.005
	cases := []struct {
		name  string
		newS  float64
		class string
	}{
		{"well within", 100.2e-6, ClassUnchanged},
		{"exactly at threshold", 100.5e-6, ClassUnchanged}, // gate is strict >
		{"just beyond", 100.6e-6, ClassRegression},
		{"faster within", 99.6e-6, ClassUnchanged},
		{"faster beyond", 99.4e-6, ClassImprovement},
	}
	for _, tc := range cases {
		d := Diff([]Record{rec("x", 100e-6)}, []Record{rec("x", tc.newS)}, threshold)
		var got string
		switch {
		case len(d.Regressions) == 1:
			got = ClassRegression
		case len(d.Improvements) == 1:
			got = ClassImprovement
		case d.Unchanged == 1:
			got = ClassUnchanged
		}
		if got != tc.class {
			t.Errorf("%s (%.4g): classified %q, want %q", tc.name, tc.newS, got, tc.class)
		}
	}
}

// TestDiffCoverageDrift: IDs on one side only are surfaced, not
// classified, and never gate.
func TestDiffCoverageDrift(t *testing.T) {
	old := []Record{rec("kept", 1), rec("removed", 1)}
	newer := []Record{rec("kept", 1), rec("added", 1)}
	d := Diff(old, newer, 0.005)
	if d.HasRegressions() {
		t.Error("coverage drift must not gate")
	}
	if len(d.OnlyInOld) != 1 || d.OnlyInOld[0] != "removed" {
		t.Errorf("OnlyInOld = %v", d.OnlyInOld)
	}
	if len(d.OnlyInNew) != 1 || d.OnlyInNew[0] != "added" {
		t.Errorf("OnlyInNew = %v", d.OnlyInNew)
	}
	if d.Unchanged != 1 {
		t.Errorf("unchanged = %d, want 1", d.Unchanged)
	}
}

// TestDiffZeroBaseline: a latency appearing from zero is a regression
// (guards against a hollowed-out baseline silently passing).
func TestDiffZeroBaseline(t *testing.T) {
	d := Diff([]Record{rec("x", 0)}, []Record{rec("x", 1e-6)}, 0.005)
	if !d.HasRegressions() {
		t.Error("0 → 1µs not flagged")
	}
	d = Diff([]Record{rec("x", 0)}, []Record{rec("x", 0)}, 0.005)
	if d.HasRegressions() || d.Unchanged != 1 {
		t.Error("0 → 0 must be unchanged")
	}
}

// TestClassifyEdgeCases pins Classify's corner semantics: zero and
// negative baselines regress (unless bit-equal), and Diff clamps a
// negative threshold to 0 so any drift classifies.
func TestClassifyEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		oldS, newS float64
		threshold  float64
		wantRel    float64
		wantClass  string
	}{
		{"zero to positive", 0, 1e-6, 0.005, 1, ClassRegression},
		{"zero to zero", 0, 0, 0.005, 0, ClassUnchanged},
		{"negative baseline", -1e-6, 1e-6, 0.005, 1, ClassRegression},
		{"equal values", 42e-6, 42e-6, 0.005, 0, ClassUnchanged},
		// Raw Classify does not clamp: with a negative threshold every
		// non-equal change lands on the regression side (Diff clamps
		// thresholds to 0 before classifying).
		{"negative threshold, increase", 100e-6, 100.0001e-6, -1, 1e-6, ClassRegression},
		{"negative threshold, decrease", 100e-6, 99.9999e-6, -1, -1e-6, ClassRegression},
	}
	for _, tc := range cases {
		rel, class := Classify(tc.oldS, tc.newS, tc.threshold)
		if class != tc.wantClass {
			t.Errorf("%s: class %q, want %q", tc.name, class, tc.wantClass)
		}
		if math.Abs(rel-tc.wantRel) > 1e-9 {
			t.Errorf("%s: rel %g, want %g", tc.name, rel, tc.wantRel)
		}
	}
	// Diff clamps a negative threshold to 0 — exact equality is still
	// unchanged, any drift classifies.
	d := Diff([]Record{rec("x", 1), rec("y", 1)}, []Record{rec("x", 1), rec("y", 1.0001)}, -0.5)
	if d.Unchanged != 1 || len(d.Regressions) != 1 {
		t.Errorf("negative threshold Diff: %+v", d)
	}
}

// TestDiffRealSweepSelfCompare: a sweep diffed against itself is clean
// — the no-change CI run goes green.
func TestDiffRealSweepSelfCompare(t *testing.T) {
	recs, err := Run(Config{
		Sets:     []string{"A", "C"},
		Specs:    []string{"TPUv6e"},
		Cores:    []int{1, 8},
		Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(recs, recs, 0.005)
	if d.HasRegressions() || len(d.Improvements) != 0 || len(d.OnlyInOld) != 0 || len(d.OnlyInNew) != 0 {
		t.Errorf("self-compare not clean: %s", d.Summary())
	}
	if d.Unchanged != len(recs) {
		t.Errorf("unchanged = %d, want %d", d.Unchanged, len(recs))
	}
}
