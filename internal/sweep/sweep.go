// Package sweep is the repo's scale-and-regression harness: a
// worker-pool engine that lowers the full cross-product of
// {parameter sets × registered devices × core counts × workloads}
// concurrently and emits deterministic, stably-ordered records — the
// machine-readable perf surface CI diffs on every push (DESIGN.md §9).
// The device axis spans every part in the cross registry: the four TPU
// generations and the gpusim GPU parts.
//
// Determinism contract: a Record is a pure function of its case (the
// simulator is analytic — no clocks, no sampling), cases are
// enumerated in a fixed nested order, and workers write results by
// case index. The JSON encoding of a sweep is therefore bit-identical
// at any parallelism, which is what lets BENCH_baseline.json act as a
// perf-regression oracle: any byte-level drift in a latency is a real
// model change, not scheduling noise.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"cross/internal/cross"
	"cross/internal/workload"

	// The GPU backend registers its parts into the cross device
	// registry at init; importing it here puts them on the sweep's
	// default device axis.
	_ "cross/internal/gpusim"
)

// Workload names the sweep's workload axis. HE-Mult/Rotate/Bootstrap
// are single-operator programs; MNIST and HELR are the §V-D ML
// schedules.
const (
	WorkloadHEMult    = "HE-Mult"
	WorkloadRotate    = "Rotate"
	WorkloadBootstrap = "Bootstrap"
	WorkloadMNIST     = "MNIST"
	WorkloadHELR      = "HELR"
)

// DefaultCores is the pod-size axis of the full sweep.
var DefaultCores = []int{1, 2, 4, 8, 16}

// DefaultWorkloads lists every workload in report order.
var DefaultWorkloads = []string{
	WorkloadHEMult, WorkloadRotate, WorkloadBootstrap, WorkloadMNIST, WorkloadHELR,
}

// DefaultSets lists the paper's parameter sets (Tab. IV).
var DefaultSets = []string{"A", "B", "C", "D"}

// Config selects the sweep axes and the worker-pool width. Zero-value
// fields take the full default axis, so Config{} is the whole
// cross-product at Parallel = NumCPU.
type Config struct {
	Sets      []string `json:"sets,omitempty"`      // parameter sets ("A".."D")
	Specs     []string `json:"specs,omitempty"`     // device names (cross registry)
	Cores     []int    `json:"cores,omitempty"`     // core/GPU counts
	Workloads []string `json:"workloads,omitempty"` // workload names

	// Parallel is the worker count; ≤ 0 means runtime.NumCPU().
	// Output is bit-identical at every value (tested).
	Parallel int `json:"parallel,omitempty"`
}

// withDefaults fills empty axes.
func (cfg Config) withDefaults() Config {
	if len(cfg.Sets) == 0 {
		cfg.Sets = DefaultSets
	}
	if len(cfg.Specs) == 0 {
		// Registration order: the four TPU generations in the paper's
		// Tab. IV order, then the GPU parts — which keeps the 400
		// pre-GPU record IDs at the same enumeration positions.
		for _, info := range cross.RegisteredTargets() {
			cfg.Specs = append(cfg.Specs, info.Name)
		}
	}
	if len(cfg.Cores) == 0 {
		cfg.Cores = DefaultCores
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = DefaultWorkloads
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}
	return cfg
}

// Record is one sweep data point: one workload lowered onto one pod
// configuration under one parameter set. Field names are the stable
// JSON schema BENCH_baseline.json commits to (DESIGN.md §9).
type Record struct {
	ID          string             `json:"id"`            // "SetD/TPUv6e-8/MNIST"
	Spec        string             `json:"spec"`          // device name (registry)
	Cores       int                `json:"cores"`         // pod/node size
	Params      string             `json:"params"`        // parameter-set name
	Workload    string             `json:"workload"`      // workload name
	TotalS      float64            `json:"total_s"`       // end-to-end modeled latency (serial model)
	OverlappedS float64            `json:"overlapped_s"`  // overlap-aware latency (DAG makespan, ≤ total_s)
	CollectiveS float64            `json:"collective_s"`  // interconnect (ICI/NVLink) share of TotalS
	Kernels     cross.KernelCounts `json:"kernel_counts"` // launch tallies
}

// swcase is one enumerated cross-product point.
type swcase struct {
	set, spec, wl string
	cores         int
}

// id renders the stable record identifier.
func (c swcase) id() string {
	return fmt.Sprintf("Set%s/%s-%d/%s", c.set, c.spec, c.cores, c.wl)
}

// enumerate lists the cross-product in fixed nested order
// (sets → specs → cores → workloads), the order records are emitted in.
func enumerate(cfg Config) []swcase {
	var cases []swcase
	for _, set := range cfg.Sets {
		for _, spec := range cfg.Specs {
			for _, cores := range cfg.Cores {
				for _, wl := range cfg.Workloads {
					cases = append(cases, swcase{set: set, spec: spec, cores: cores, wl: wl})
				}
			}
		}
	}
	return cases
}

// BuildProgram composes one named workload on a compiler — the shared
// workload axis of the sweep engine and the serving simulator
// (internal/serve prices its request classes through this).
func BuildProgram(c *cross.Compiler, wl string) (*cross.Program, error) {
	switch wl {
	case WorkloadHEMult:
		return cross.NewProgram(c).HEMult(), nil
	case WorkloadRotate:
		return cross.NewProgram(c).Rotate(1), nil
	case WorkloadBootstrap:
		return cross.NewProgram(c).Bootstrap(cross.DefaultBootstrapSchedule(c.P)), nil
	case WorkloadMNIST:
		return workload.MNISTProgram(c), nil
	case WorkloadHELR:
		return workload.HELRProgram(c), nil
	default:
		return nil, fmt.Errorf("sweep: unknown workload %q (have %v)", wl, DefaultWorkloads)
	}
}

// runCase lowers one case. Every case builds its own target and
// compiler (targets are stateful trace accumulators); only the schedule
// cache is shared, so equivalent operators lower once process-wide.
func runCase(c swcase, cache *cross.ScheduleCache) (Record, error) {
	p, err := cross.NamedSet(c.set)
	if err != nil {
		return Record{}, err
	}
	tgt, err := cross.TargetByName(c.spec, c.cores)
	if err != nil {
		return Record{}, err
	}
	comp, err := cross.Compile(tgt, p)
	if err != nil {
		return Record{}, err
	}
	prog, err := BuildProgram(comp, c.wl)
	if err != nil {
		return Record{}, err
	}
	s := prog.WithCache(cache).Lower()
	return Record{
		ID:          c.id(),
		Spec:        c.spec,
		Cores:       c.cores,
		Params:      "Set" + c.set,
		Workload:    c.wl,
		TotalS:      s.Total,
		OverlappedS: s.Overlapped,
		CollectiveS: s.Collective,
		Kernels:     s.Kernels,
	}, nil
}

// Run executes the sweep on cfg.Parallel workers and returns the
// records in enumeration order. The order, and every value in every
// record, is independent of the worker count.
func Run(cfg Config) ([]Record, error) {
	cfg = cfg.withDefaults()
	cases := enumerate(cfg)
	records := make([]Record, len(cases))
	errs := make([]error, len(cases))
	cache := cross.NewScheduleCache()

	idx := make(chan int, len(cases))
	for i := range cases {
		idx <- i
	}
	close(idx)

	workers := cfg.Parallel
	if workers > len(cases) {
		workers = len(cases)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				records[i], errs[i] = runCase(cases[i], cache)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: case %s: %w", cases[i].id(), err)
		}
	}
	return records, nil
}
