package sweep

import (
	"bytes"
	"encoding/json"
	"testing"
)

// marshal renders records exactly as crossbench -sweep -json does.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSweepBitIdentical is the engine's core guarantee: the
// JSON of a parallel sweep byte-equals the serial sweep. Table-driven
// over widths so a scheduling-order dependence at any parallelism
// fails loudly. The record JSON includes overlapped_s, so this also
// pins the DAG engine's determinism at every parallelism.
func TestParallelSweepBitIdentical(t *testing.T) {
	base := Config{Parallel: 1}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range serial {
		if r.OverlappedS <= 0 {
			t.Fatalf("%s: overlapped_s = %g — byte-identity would vacuously cover the column", r.ID, r.OverlappedS)
		}
	}
	want := marshal(t, serial)

	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Parallel = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("parallel %d: %v", workers, err)
		}
		if !bytes.Equal(marshal(t, got), want) {
			t.Errorf("parallel %d sweep JSON differs from serial sweep", workers)
		}
	}
}

// TestSweepShape checks the cross-product enumeration: count, stable
// order, and well-formed records.
func TestSweepShape(t *testing.T) {
	cfg := Config{Parallel: 4}.withDefaults()
	recs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Sets) * len(cfg.Specs) * len(cfg.Cores) * len(cfg.Workloads)
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	if recs[0].ID != "SetA/TPUv4-1/HE-Mult" {
		t.Errorf("first record %q: enumeration order changed", recs[0].ID)
	}
	// The device axis is the registry in registration order: TPUs in
	// the paper's Tab. IV order, then the GPU parts — so the last TPU
	// record keeps its pre-GPU position and the sweep ends on the
	// newest GPU.
	last := recs[len(recs)-1]
	if last.ID != "SetD/H100-16/HELR" {
		t.Errorf("last record %q: enumeration order changed", last.ID)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if r.TotalS <= 0 {
			t.Errorf("%s: non-positive latency %g", r.ID, r.TotalS)
		}
		if r.OverlappedS <= 0 || r.OverlappedS > r.TotalS {
			t.Errorf("%s: overlapped %g outside (0, total=%g]", r.ID, r.OverlappedS, r.TotalS)
		}
		if r.CollectiveS < 0 || r.CollectiveS > r.TotalS {
			t.Errorf("%s: collective %g outside [0, total=%g]", r.ID, r.CollectiveS, r.TotalS)
		}
		if r.Cores == 1 && r.CollectiveS != 0 {
			t.Errorf("%s: single-core record has collective time %g", r.ID, r.CollectiveS)
		}
		if r.Kernels.Total() <= 0 {
			t.Errorf("%s: empty kernel tally", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate record id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestSweepSubsetConfig checks axis selection narrows the product.
func TestSweepSubsetConfig(t *testing.T) {
	recs, err := Run(Config{
		Sets:      []string{"B"},
		Specs:     []string{"TPUv6e"},
		Cores:     []int{1, 4},
		Workloads: []string{WorkloadRotate},
		Parallel:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "SetB/TPUv6e-1/Rotate" || recs[1].ID != "SetB/TPUv6e-4/Rotate" {
		t.Errorf("unexpected ids %q, %q", recs[0].ID, recs[1].ID)
	}
	// The 4-core pod pays ICI time the single core doesn't.
	if recs[1].CollectiveS <= 0 {
		t.Errorf("4-core rotate has no collective time")
	}
}

// TestSweepRejectsUnknownAxes checks error paths surface the case id.
func TestSweepRejectsUnknownAxes(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: []string{"Z"}},
		{Specs: []string{"TPUv9"}},
		{Workloads: []string{"Quake"}},
		{Cores: []int{0}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v: want error, got nil", cfg)
		}
	}
}
