package sweep

import (
	"encoding/json"
	"os"
	"testing"
)

// TestGoldenSerialEquivalence is the refactor's safety net: the full
// 400-case sweep (SetA–D × all 4 TPU specs × {1,2,4,8,16} cores × all
// 5 workloads) re-lowered through the DAG-building Schedule IR must
// reproduce the committed BENCH_baseline.json serial totals bit for
// bit — Schedule.SerialTotal is the pre-refactor additive model,
// untouched by the overlap engine. Collective shares and kernel
// tallies are held to the same standard, and the overlapped column is
// sanity-bounded against its own baseline value.
func TestGoldenSerialEquivalence(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline []Record
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}
	if len(baseline) != 400 {
		t.Fatalf("baseline has %d records, want the full 400-case cross-product", len(baseline))
	}

	recs, err := Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(baseline) {
		t.Fatalf("fresh sweep has %d records, baseline %d", len(recs), len(baseline))
	}

	byID := make(map[string]Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, want := range baseline {
		got, ok := byID[want.ID]
		if !ok {
			t.Errorf("%s: in baseline but not in fresh sweep", want.ID)
			continue
		}
		if got.TotalS != want.TotalS {
			t.Errorf("%s: SerialTotal %.17g != baseline total_s %.17g (must be bit-identical)",
				want.ID, got.TotalS, want.TotalS)
		}
		if got.CollectiveS != want.CollectiveS {
			t.Errorf("%s: collective_s %.17g != baseline %.17g", want.ID, got.CollectiveS, want.CollectiveS)
		}
		if got.Kernels != want.Kernels {
			t.Errorf("%s: kernel counts %+v != baseline %+v", want.ID, got.Kernels, want.Kernels)
		}
		if got.OverlappedS != want.OverlappedS {
			t.Errorf("%s: overlapped_s %.17g != baseline %.17g", want.ID, got.OverlappedS, want.OverlappedS)
		}
		if got.OverlappedS <= 0 || got.OverlappedS > got.TotalS {
			t.Errorf("%s: overlapped_s %g outside (0, total_s=%g]", want.ID, got.OverlappedS, got.TotalS)
		}
	}
}
