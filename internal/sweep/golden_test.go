package sweep

import (
	"encoding/json"
	"os"
	"testing"

	"cross/internal/cross"
)

// TestGoldenSerialEquivalence is the refactor's safety net: the full
// 700-case sweep (SetA–D × all 7 registered devices × {1,2,4,8,16}
// cores × all 5 workloads) re-lowered through the DAG-building
// Schedule IR must reproduce the committed BENCH_baseline.json serial
// totals bit for bit — Schedule.SerialTotal is the pre-refactor
// additive model, untouched by the overlap engine. Collective shares
// and kernel tallies are held to the same standard, and the overlapped
// column is sanity-bounded against its own baseline value.
func TestGoldenSerialEquivalence(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline []Record
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}
	if len(baseline) != 700 {
		t.Fatalf("baseline has %d records, want the full 700-case cross-product", len(baseline))
	}

	recs, err := Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(baseline) {
		t.Fatalf("fresh sweep has %d records, baseline %d", len(recs), len(baseline))
	}

	byID := make(map[string]Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, want := range baseline {
		got, ok := byID[want.ID]
		if !ok {
			t.Errorf("%s: in baseline but not in fresh sweep", want.ID)
			continue
		}
		if got.TotalS != want.TotalS {
			t.Errorf("%s: SerialTotal %.17g != baseline total_s %.17g (must be bit-identical)",
				want.ID, got.TotalS, want.TotalS)
		}
		if got.CollectiveS != want.CollectiveS {
			t.Errorf("%s: collective_s %.17g != baseline %.17g", want.ID, got.CollectiveS, want.CollectiveS)
		}
		if got.Kernels != want.Kernels {
			t.Errorf("%s: kernel counts %+v != baseline %+v", want.ID, got.Kernels, want.Kernels)
		}
		if got.OverlappedS != want.OverlappedS {
			t.Errorf("%s: overlapped_s %.17g != baseline %.17g", want.ID, got.OverlappedS, want.OverlappedS)
		}
		if got.OverlappedS <= 0 || got.OverlappedS > got.TotalS {
			t.Errorf("%s: overlapped_s %g outside (0, total_s=%g]", want.ID, got.OverlappedS, got.TotalS)
		}
	}
}

// TestGPURecordsAreCoverageDrift pins the baseline-migration semantics
// of the GPU backend landing: against a pre-GPU baseline (the committed
// baseline with the GPU-family records stripped — byte-wise exactly the
// 400-record file this repo shipped before gpusim), a fresh full sweep
// classifies every GPU case ID as coverage drift (OnlyInNew), never as
// a regression, and every pre-existing TPU record compares unchanged on
// both gated metrics.
func TestGPURecordsAreCoverageDrift(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline []Record
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}

	family := make(map[string]string)
	for _, info := range cross.RegisteredTargets() {
		family[info.Name] = info.Family
	}
	var preGPU []Record
	for _, r := range baseline {
		switch family[r.Spec] {
		case "tpu":
			preGPU = append(preGPU, r)
		case "gpu":
		default:
			t.Fatalf("%s: spec %q not in the registry", r.ID, r.Spec)
		}
	}
	if len(preGPU) != 400 {
		t.Fatalf("baseline carries %d TPU records, want the pre-GPU 400", len(preGPU))
	}

	fresh, err := Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(preGPU, fresh, 0.005)

	if d.HasRegressions() {
		t.Errorf("GPU axis growth classified as regression:\n%s", d.Summary())
	}
	if len(d.Improvements) > 0 {
		t.Errorf("GPU axis growth classified as improvement:\n%s", d.Summary())
	}
	if len(d.OnlyInOld) > 0 {
		t.Errorf("TPU records missing from the fresh sweep: %v", d.OnlyInOld)
	}

	onlyNew := make(map[string]bool, len(d.OnlyInNew))
	for _, id := range d.OnlyInNew {
		onlyNew[id] = true
	}
	var wantDrift int
	for _, r := range fresh {
		isGPU := family[r.Spec] == "gpu"
		if isGPU {
			wantDrift++
		}
		if isGPU != onlyNew[r.ID] {
			t.Errorf("%s: coverage-drift classification %v, want %v (family %s)",
				r.ID, onlyNew[r.ID], isGPU, family[r.Spec])
		}
	}
	if len(d.OnlyInNew) != wantDrift {
		t.Errorf("%d IDs in OnlyInNew, want the %d GPU cases", len(d.OnlyInNew), wantDrift)
	}
	// Every matched TPU record is unchanged on total_s and overlapped_s.
	if want := 2 * len(preGPU); d.Unchanged != want {
		t.Errorf("%d unchanged deltas, want %d (both metrics for all %d TPU records)",
			d.Unchanged, want, len(preGPU))
	}
}
