package sweep

import (
	"fmt"
	"strings"
)

// Diffing turns the sweep into a perf-regression oracle: CI runs a
// fresh sweep, diffs it against the committed BENCH_baseline.json, and
// fails when any modeled latency regressed beyond the threshold
// (DESIGN.md §9).

// Delta is one record's old-vs-new comparison on one metric.
type Delta struct {
	ID     string  `json:"id"`
	Metric string  `json:"metric"` // "total_s" | "overlapped_s"
	OldS   float64 `json:"old_s"`
	NewS   float64 `json:"new_s"`
	Rel    float64 `json:"rel"`   // NewS/OldS − 1 (signed fractional change)
	Class  string  `json:"class"` // "regression" | "improvement" | "unchanged"
}

// Delta classes.
const (
	ClassRegression  = "regression"
	ClassImprovement = "improvement"
	ClassUnchanged   = "unchanged"
)

// Gated metrics.
const (
	MetricTotal      = "total_s"
	MetricOverlapped = "overlapped_s"
)

// DiffResult is the classified comparison of two sweeps.
type DiffResult struct {
	Threshold    float64 `json:"threshold"`
	Regressions  []Delta `json:"regressions"`  // slower than old by > threshold
	Improvements []Delta `json:"improvements"` // faster than old by > threshold
	Unchanged    int     `json:"unchanged"`    // within ± threshold

	// Coverage drift: IDs present in only one sweep (axis added or
	// removed). Not a gate failure by itself, but surfaced so a
	// baseline refresh isn't silent.
	OnlyInOld []string `json:"only_in_old,omitempty"`
	OnlyInNew []string `json:"only_in_new,omitempty"`

	// Metric-level coverage drift: IDs whose overlapped_s column is
	// carried by only one side (a baseline predating the column, or a
	// new sweep that dropped it). Classifying such a pair through the
	// zero-baseline rule would spuriously gate every record — or,
	// worse, silently skip the metric — so it is surfaced as drift
	// instead (the bug the schema migration exposed).
	OverlappedOnlyInOld []string `json:"overlapped_only_in_old,omitempty"`
	OverlappedOnlyInNew []string `json:"overlapped_only_in_new,omitempty"`
}

// HasRegressions reports whether any latency regressed beyond the
// threshold — the CI gate condition.
func (d DiffResult) HasRegressions() bool { return len(d.Regressions) > 0 }

// FilterMetric returns a copy of d keeping only deltas of one metric
// (MetricTotal or MetricOverlapped) — how the CI sweep gate and the
// overlap gate each gate their own column of the same diff. Unchanged
// counts and coverage-drift lists are preserved as-is (they are not
// per-delta). An empty metric keeps everything.
func (d DiffResult) FilterMetric(metric string) DiffResult {
	if metric == "" {
		return d
	}
	keep := func(ds []Delta) []Delta {
		var out []Delta
		for _, dl := range ds {
			if dl.Metric == metric {
				out = append(out, dl)
			}
		}
		return out
	}
	d.Regressions = keep(d.Regressions)
	d.Improvements = keep(d.Improvements)
	return d
}

// Summary renders a human-readable gate report.
func (d DiffResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep diff @ threshold %.2f%%: %d regression(s), %d improvement(s), %d unchanged\n",
		d.Threshold*100, len(d.Regressions), len(d.Improvements), d.Unchanged)
	for _, r := range d.Regressions {
		fmt.Fprintf(&b, "  REGRESSION  %-40s %-12s %.4g s → %.4g s (%+.2f%%)\n", r.ID, r.Metric, r.OldS, r.NewS, r.Rel*100)
	}
	for _, r := range d.Improvements {
		fmt.Fprintf(&b, "  improvement %-40s %-12s %.4g s → %.4g s (%+.2f%%)\n", r.ID, r.Metric, r.OldS, r.NewS, r.Rel*100)
	}
	if len(d.OnlyInOld) > 0 {
		fmt.Fprintf(&b, "  only in baseline: %v\n", d.OnlyInOld)
	}
	if len(d.OnlyInNew) > 0 {
		fmt.Fprintf(&b, "  only in new sweep: %v\n", d.OnlyInNew)
	}
	if len(d.OverlappedOnlyInOld) > 0 {
		fmt.Fprintf(&b, "  overlapped_s only in baseline: %v\n", d.OverlappedOnlyInOld)
	}
	if len(d.OverlappedOnlyInNew) > 0 {
		fmt.Fprintf(&b, "  overlapped_s only in new sweep: %v\n", d.OverlappedOnlyInNew)
	}
	return b.String()
}

// Classify labels one old→new latency change against the fractional
// threshold. A non-positive baseline with any different new value is a
// regression (a latency appearing from zero is unboundedly worse — a
// hollowed-out baseline must not classify as unchanged). This is the
// shared gate semantics: hostbench.Diff classifies its wall-clock
// deltas through the same function.
func Classify(oldS, newS, threshold float64) (rel float64, class string) {
	switch {
	case oldS == newS:
		return 0, ClassUnchanged
	case oldS <= 0:
		return 1, ClassRegression
	}
	rel = newS/oldS - 1
	switch {
	case rel > threshold:
		return rel, ClassRegression
	case rel < -threshold:
		return rel, ClassImprovement
	default:
		return rel, ClassUnchanged
	}
}

// Diff compares two sweeps record-by-record (matched on ID) and
// classifies each latency change against the fractional threshold
// (0.005 = 0.5%). Both metrics are classified: total_s always, and
// overlapped_s when both sides carry the column (a record whose
// overlapped_s exists on only one side is metric-level coverage
// drift — see DiffResult — never a zero-baseline regression or a
// silent skip). Records appearing in only one sweep are reported, not
// classified. Deltas preserve the new sweep's record order, so the
// result is deterministic.
func Diff(old, new []Record, threshold float64) DiffResult {
	if threshold < 0 {
		threshold = 0
	}
	d := DiffResult{Threshold: threshold}

	classify := func(id, metric string, oldS, newS float64) {
		rel, class := Classify(oldS, newS, threshold)
		delta := Delta{ID: id, Metric: metric, OldS: oldS, NewS: newS, Rel: rel, Class: class}
		switch class {
		case ClassRegression:
			d.Regressions = append(d.Regressions, delta)
		case ClassImprovement:
			d.Improvements = append(d.Improvements, delta)
		default:
			d.Unchanged++
		}
	}

	oldByID := make(map[string]Record, len(old))
	for _, r := range old {
		oldByID[r.ID] = r
	}
	seen := make(map[string]bool, len(new))
	for _, r := range new {
		seen[r.ID] = true
		o, ok := oldByID[r.ID]
		if !ok {
			d.OnlyInNew = append(d.OnlyInNew, r.ID)
			continue
		}
		classify(r.ID, MetricTotal, o.TotalS, r.TotalS)
		switch {
		case o.OverlappedS == 0 && r.OverlappedS == 0:
			// Neither side carries the column — nothing to compare.
		case o.OverlappedS == 0:
			d.OverlappedOnlyInNew = append(d.OverlappedOnlyInNew, r.ID)
		case r.OverlappedS == 0:
			d.OverlappedOnlyInOld = append(d.OverlappedOnlyInOld, r.ID)
		default:
			classify(r.ID, MetricOverlapped, o.OverlappedS, r.OverlappedS)
		}
	}
	for _, r := range old {
		if !seen[r.ID] {
			d.OnlyInOld = append(d.OnlyInOld, r.ID)
		}
	}
	return d
}
