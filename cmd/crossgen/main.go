// Command crossgen generates and serialises CKKS material: it builds a
// parameter set, encrypts a test vector, writes the ciphertext to disk
// in the library's wire format, reads it back, and verifies the
// decryption — a smoke test of the serialization layer and a template
// for client/server deployments (Fig. 1's trusted-client flow).
//
// Usage:
//
//	crossgen -logn 12 -limbs 6 -out /tmp/ct.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"os"

	"cross"
	"cross/internal/ckks"
)

func main() {
	logN := flag.Int("logn", 12, "ring degree exponent")
	limbs := flag.Int("limbs", 6, "modulus chain length")
	dnum := flag.Int("dnum", 3, "key-switching digits")
	out := flag.String("out", "", "write the demo ciphertext to this path (optional)")
	flag.Parse()

	ctx, err := cross.NewContext(cross.ContextOptions{
		LogN: *logN, Limbs: *limbs, Dnum: *dnum,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameters: N=2^%d, L=%d, dnum=%d, %d slots, scale 2^28\n",
		*logN, *limbs, *dnum, ctx.Slots())
	fmt.Printf("modulus chain: %v\n", ctx.Params.QPrimes)
	fmt.Printf("special primes: %v\n", ctx.Params.PPrimes)

	z := make([]complex128, ctx.Slots())
	for i := range z {
		z[i] = complex(float64(i%17)/17, float64(i%5)/5)
	}
	ct, err := ctx.EncryptValues(z)
	if err != nil {
		log.Fatal(err)
	}

	path := *out
	tmp := false
	if path == "" {
		f, err := os.CreateTemp("", "crossgen-*.bin")
		if err != nil {
			log.Fatal(err)
		}
		path = f.Name()
		f.Close()
		tmp = true
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := ct.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d-byte ciphertext to %s\n", n, path)

	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	back, err := ckks.ReadCiphertext(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := back.Validate(ctx.Params); err != nil {
		log.Fatalf("deserialised ciphertext invalid: %v", err)
	}
	got := ctx.DecryptValues(back)
	var worst float64
	for i := range z {
		if e := cmplx.Abs(got[i] - z[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("read back, validated, decrypted: max error %.2e\n", worst)
	if worst > 1e-3 {
		log.Fatal("round-trip verification FAILED")
	}
	fmt.Println("round-trip verification PASSED")
	if tmp {
		os.Remove(path)
	}

	// Server-side preview: lower the canonical request (mult + rotate)
	// for these parameters onto a simulated TPUv6e core — the cost the
	// trusted-client flow's server would pay per ciphertext.
	printServerEstimate(*logN, *limbs, *dnum)
}

// printServerEstimate compiles a Program for the generated parameters
// and prints its schedule summary (skipped for configurations outside
// the simulator's envelope).
func printServerEstimate(logN, limbs, dnum int) {
	r := 128
	for r >= 2 && (1<<logN)/r < 2 {
		r >>= 1
	}
	p := cross.Params{LogN: logN, LogQ: 28, L: limbs, Dnum: dnum, R: r, C: (1 << logN) / r}
	comp, err := cross.Compile(cross.NewDevice(cross.TPUv6e()), p)
	if err != nil {
		fmt.Printf("(no TPU estimate: %v)\n", err)
		return
	}
	sched := cross.NewProgram(comp).HEMult().Rotate(1).Lower()
	fmt.Printf("server-side estimate (%s): mult+rotate = %.1f µs, %d kernel launches\n",
		sched.Target, sched.Total*1e6, sched.Kernels.Total())
}
